// Ablation X5 (extension): batch-size crossover between the GPU and iMARS.
//
// The paper compares single-query (online-serving) latency, where the GPU
// pays its kernel-launch overheads per query and loses by 16.8x. Production
// GPU serving instead batches queries, amortizing every launch-bound term.
// This bench models batched GPU throughput and finds the batch size at
// which the GPU's *throughput* catches the (pipelined) iMARS fabric — the
// honest boundary of the paper's claim.
//
// Batched-GPU model (documented assumptions on top of gpu_model.hpp's
// calibration):
//   * all launch-bound terms (the fitted bases, per-layer launches, the
//     per-pair concat kernels, top-k) amortize as 1/B;
//   * what remains per query is the bandwidth/compute floor:
//       ET traffic      (tables x dim x 4 B) / (320 GB/s x 50% efficiency),
//       DNN compute     2 x MACs / (8 TFLOP/s x 30% utilization),
//       NNS             the per-item term of the calibrated FAISS model.
#include <algorithm>
#include <iostream>

#include "baseline/gpu_model.hpp"
#include "core/calibration.hpp"
#include "harness.hpp"
#include "util/table.hpp"

using namespace imars;
using bench::PaperWorkloads;

namespace {

std::size_t mlp_macs(std::span<const std::size_t> dims) {
  std::size_t macs = 0;
  for (std::size_t i = 0; i + 1 < dims.size(); ++i) macs += dims[i] * dims[i + 1];
  return macs;
}

// Per-query bandwidth/compute floor of the MovieLens end-to-end query.
double gpu_floor_us(std::size_t candidates) {
  constexpr double kBwBytesPerUs = 320e3 * 0.5;   // 320 GB/s at 50% eff
  constexpr double kFlopPerUs = 8e6 * 0.3;        // 8 TFLOP/s at 30% util

  const double et_bytes =
      static_cast<double>((PaperWorkloads::kMlFilterTables +
                           candidates * PaperWorkloads::kMlRankTables) *
                          32 * 4);
  const double flops =
      2.0 * (static_cast<double>(mlp_macs(PaperWorkloads::kFilterDnnDims)) +
             static_cast<double>(candidates) *
                 static_cast<double>(mlp_macs(PaperWorkloads::kRankDnnDims)));
  const double nns_us = 0.1e-3 * PaperWorkloads::kMlItems;  // FAISS per-item
  return et_bytes / kBwBytesPerUs + flops / kFlopPerUs + nns_us;
}

}  // namespace

int main() {
  std::cout << "=== Ablation (extension): GPU batching vs iMARS ===\n\n";

  const baseline::GpuModel gpu;
  const std::size_t candidates = core::kEndToEndCandidates;

  // Launch-bound single-query total (matches bench_end_to_end's GPU side).
  const double gpu_launch_us =
      gpu.et_lookup(PaperWorkloads::kMlFilterTables).latency.us() +
      gpu.dnn(3, mlp_macs(PaperWorkloads::kFilterDnnDims)).latency.us() +
      gpu.nns(baseline::GpuNnsKind::kFaissAnn, PaperWorkloads::kMlItems)
          .latency.us() +
      static_cast<double>(candidates) *
          (gpu.et_lookup(PaperWorkloads::kMlRankTables).latency.us() +
           gpu.dnn(2, mlp_macs(PaperWorkloads::kRankDnnDims)).latency.us() +
           gpu.rank_pair_overhead().latency.us()) +
      gpu.topk(candidates).latency.us();

  // iMARS per-query latency (paper-composed; bench_end_to_end measures
  // ~43.5 us) and its pipelined service bound (bench_throughput).
  const double imars_query_us = 43.5;
  const double imars_pipelined_us = 34.0;

  const double floor_us = gpu_floor_us(candidates);

  util::Table t("Batch sweep (MovieLens end-to-end, per-query us and QPS)");
  t.header({"batch B", "GPU us/query", "GPU QPS", "iMARS QPS (pipelined)",
            "winner"});
  std::size_t crossover = 0;
  for (std::size_t b : {1ul, 2ul, 4ul, 8ul, 16ul, 32ul, 64ul, 128ul, 256ul,
                        1024ul}) {
    const double gpu_us = gpu_launch_us / static_cast<double>(b) + floor_us;
    const double gpu_qps = 1e6 / gpu_us;
    const double imars_qps = 1e6 / imars_pipelined_us;
    const bool gpu_wins = gpu_qps > imars_qps;
    if (gpu_wins && crossover == 0) crossover = b;
    t.row({std::to_string(b), util::Table::num(gpu_us, 2),
           util::Table::num(gpu_qps, 0), util::Table::num(imars_qps, 0),
           gpu_wins ? "GPU" : "iMARS"});
  }
  t.print(std::cout);

  std::cout << "\nGPU launch-bound cost: " << util::Table::num(gpu_launch_us, 1)
            << " us/query; bandwidth/compute floor: "
            << util::Table::num(floor_us, 2) << " us/query.\n"
            << "iMARS single-query latency: " << imars_query_us
            << " us (17.4x better than the unbatched GPU).\n";
  if (crossover != 0) {
    std::cout << "\nCrossover at batch ~" << crossover
              << ": beyond it the GPU's amortized throughput exceeds the\n"
                 "iMARS fabric's, while iMARS keeps a "
              << util::Table::num(gpu_launch_us / imars_query_us, 0)
              << "x advantage in single-query (tail) latency. The paper's\n"
                 "claim is an online-serving claim; batched offline scoring\n"
                 "remains GPU territory.\n";
  }
  return 0;
}
