// Ablation X2 (DESIGN.md): dimensioning B / M / C.
//
// Sec III-A1: "design parameters B, M and C largely impact the area,
// capacity and the performance of iMARS". This bench sweeps C (CMAs per
// mat) at fixed bank capacity, and B (banks), reporting capacity, the mats
// needed for the largest Criteo table, the worst-case ET-lookup latency and
// the chip area.
#include <iostream>

#include "util/rng.hpp"

#include "core/accelerator.hpp"
#include "core/area.hpp"
#include "core/calibration.hpp"
#include "core/mapping.hpp"
#include "core/perf_model.hpp"
#include "harness.hpp"
#include "util/table.hpp"

using namespace imars;
using bench::PaperWorkloads;

int main() {
  std::cout << "=== Ablation: fabric dimensioning (paper: B=32, M=4, C=32) "
               "===\n\n";

  const auto profile = device::DeviceProfile::fefet45();
  constexpr std::size_t kCriteoRows = 30000;  // largest Table I ET

  // ---- Sweep C at fixed per-bank CMA budget (M*C = 128). -----------------
  util::Table tc("C sweep (per-bank CMA budget fixed at M*C = 128)");
  tc.header({"C", "M", "mats for 30k-row ET", "ET lookup (us)",
             "intra-mat tree fan-in", "chip area (CMA-equiv)"});
  for (std::size_t c : {8, 16, 32, 64, 128}) {
    core::ArchConfig arch;
    arch.cmas_per_mat = c;
    arch.mats_per_bank = 128 / c;
    const core::EtMapping m(arch);
    const std::size_t cmas = m.cmas_for_rows(kCriteoRows);
    const std::size_t mats = m.mats_for_cmas(cmas);

    const core::PerfModel pm(arch, profile);
    core::EtLookupParams p;
    p.tables = PaperWorkloads::kCriteoTables;
    p.lookups_per_table = core::kWorstCaseLookupsPerTable;
    p.mats_per_table = mats;
    p.active_cmas = PaperWorkloads::kCriteoActiveCmas;

    tc.row({std::to_string(c), std::to_string(arch.mats_per_bank),
            std::to_string(mats),
            util::Table::num(pm.et_lookup(p).latency.us(), 3),
            std::to_string(c),
            util::Table::num(core::chip_area(arch, profile, 0).total(), 0)});
  }
  tc.print(std::cout);

  // ---- Sweep B. ------------------------------------------------------------
  std::cout << "\n";
  util::Table tb("B sweep (M=4, C=32)");
  tb.header({"B", "capacity (ET rows)", "fits Criteo (26 features)?",
             "chip area (CMA-equiv)"});
  for (std::size_t b : {8, 16, 26, 32, 64}) {
    core::ArchConfig arch;
    arch.banks = b;
    const bool fits = b >= 26;
    tb.row({std::to_string(b),
            std::to_string(b * arch.bank_capacity_rows()),
            fits ? "yes" : "no (one bank per sparse feature)",
            util::Table::num(core::chip_area(arch, profile, 0).total(), 0)});
  }
  tb.print(std::cout);

  // ---- Row placement (extension): sequential vs striped. ------------------
  std::cout << "\n";
  {
    util::Table tp("Row placement (extension): 16 contiguous multi-hot "
                   "lookups, actual placement");
    tp.header({"placement", "ET lookup (ns)"});
    for (const auto placement :
         {core::RowPlacement::kSequential, core::RowPlacement::kStriped}) {
      core::ArchConfig arch;
      arch.placement = placement;
      core::ImarsAccelerator acc(arch, profile);
      util::Xoshiro256 rng(9);
      const auto table = tensor::QMatrix::quantize(
          tensor::Matrix::randn(2048, 32, 0.5f, rng));
      const auto id = acc.load_uiet("t", table);
      acc.reset_energy();
      std::vector<std::size_t> idx;
      for (std::size_t i = 512; i < 528; ++i) idx.push_back(i);
      const core::LookupRequest req{id, idx, true};
      recsys::OpCost cost;
      (void)acc.lookup_pooled(std::span(&req, 1),
                              core::TimingMode::kActualPlacement, &cost);
      tp.row({placement == core::RowPlacement::kSequential ? "sequential (paper)"
                                                           : "striped (ext)",
              util::Table::num(cost.latency.value, 1)});
    }
    tp.print(std::cout);
  }

  std::cout
      << "\nReading: small C shifts arrays into more mats -> more\n"
         "intra-bank rounds and IBC serialization for big tables; large C\n"
         "widens the intra-mat tree (area, parasitics) without helping\n"
         "tables that already fit one mat. C=32 x M=4 is the smallest\n"
         "configuration that holds the 118-CMA Criteo table with one-round\n"
         "intra-bank accumulation -- the paper's choice. B is set by the\n"
         "feature count (26 sparse features -> 32 banks with headroom).\n";
  return 0;
}
