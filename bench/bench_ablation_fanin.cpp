// Ablation X1 (DESIGN.md): the intra-bank adder-tree fan-in.
//
// Sec III-A1 calls the fan-in of 4 "a design choice made as a compromise
// between area footprint of the iMARS banks and performance of the
// intra-bank addition". This bench sweeps the fan-in and reports, for a
// Criteo-sized bank (4 contributing mats) and a hypothetical 16-mat bank,
// the accumulation rounds, the ET-lookup latency, and the adder-tree area.
#include <iostream>

#include "adder/adder_tree.hpp"
#include "core/area.hpp"
#include "core/calibration.hpp"
#include "core/perf_model.hpp"
#include "harness.hpp"
#include "util/table.hpp"

using namespace imars;
using bench::PaperWorkloads;

int main() {
  std::cout << "=== Ablation: intra-bank adder tree fan-in (paper default 4) "
               "===\n\n";

  const auto profile = device::DeviceProfile::fefet45();

  util::Table t("Fan-in sweep");
  t.header({"fan-in", "rounds (4 mats)", "rounds (16 mats)",
            "Criteo ET lookup (us)", "tree area (CMA-equiv, whole chip)"});

  for (std::size_t fan_in : {2, 4, 8, 16}) {
    core::ArchConfig arch;
    arch.bank_fan_in = fan_in;
    const core::PerfModel pm(arch, profile);

    device::EnergyLedger scratch;
    const adder::IntraBankAdderTree tree(profile, &scratch, fan_in);

    core::EtLookupParams p;
    p.tables = PaperWorkloads::kCriteoTables;
    p.lookups_per_table = core::kWorstCaseLookupsPerTable;
    p.mats_per_table = PaperWorkloads::kCriteoMatsPerTable;
    p.active_cmas = PaperWorkloads::kCriteoActiveCmas;

    const auto area = core::chip_area(arch, profile, 0);
    t.row({std::to_string(fan_in), std::to_string(tree.rounds_for(4)),
           std::to_string(tree.rounds_for(16)),
           util::Table::num(pm.et_lookup(p).latency.us(), 3),
           util::Table::num(area.bank_trees, 1)});
  }
  t.print(std::cout);

  std::cout
      << "\nReading: fan-in 2 doubles the accumulation rounds for a 4-mat\n"
         "bank (and quadruples them at 16 mats); fan-in 8/16 only helps\n"
         "banks with more mats than the Criteo mapping uses, while the\n"
         "tree area grows linearly. Fan-in 4 matches the paper's choice:\n"
         "one-round accumulation for the largest mapped workload at the\n"
         "smallest area that achieves it.\n";
  return 0;
}
