// Ablation X3 (DESIGN.md): LSH signature length.
//
// Sec III-B fixes the signature length at 256 bits ("requires 2 CMAs to
// store a single entry"). This bench sweeps the length and reports the
// retrieval hit rate (size-matched top-10 by Hamming distance, against the
// fp32-cosine reference), the signature storage overhead, and the NNS
// energy (more signature CMAs must be searched).
#include <iostream>

#include "baseline/cpu_backend.hpp"
#include "baseline/exact_nns.hpp"
#include "core/perf_model.hpp"
#include "harness.hpp"
#include "lsh/lsh.hpp"
#include "recsys/metrics.hpp"
#include "util/table.hpp"

using namespace imars;
using bench::PaperWorkloads;

int main() {
  const bool quick = bench::quick_mode();
  const double scale = quick ? 0.05 : 0.25;
  const std::size_t topn = 10;

  std::cout << "=== Ablation: LSH signature length (paper: 256 bits) ===\n"
            << "(synthetic MovieLens at scale " << scale << ")\n\n";

  auto setup = bench::make_movielens(scale, quick ? 3 : 6, 0);
  const auto& ds = *setup.ds;
  const auto& model = *setup.model;

  // fp32-cosine reference HR.
  baseline::CpuBackendConfig ccfg;
  ccfg.variant = baseline::FilterVariant::kFp32Cosine;
  ccfg.candidates = topn;
  baseline::CpuBackend fp32(model, ccfg);
  const double hr_ref = recsys::hit_rate(
      ds.num_users(),
      [&](std::size_t u) {
        return fp32.filter(model.make_context(ds, u), nullptr);
      },
      [&](std::size_t u) { return ds.user(u).heldout; });

  const auto items_q = model.item_table().quantized();
  const auto deq = items_q.dequantize();
  const core::PerfModel pm(core::ArchConfig{},
                           device::DeviceProfile::fefet45());

  util::Table t("Signature-length sweep (HR@10 vs cost)");
  t.header({"bits", "HR@10", "vs fp32-cosine", "CMAs per entry",
            "NNS energy (nJ, MovieLens ItET)"});
  t.row({"fp32 cosine (ref)", util::Table::num(100.0 * hr_ref, 1) + "%", "-",
         "1 (no sigs)", "-"});

  for (std::size_t bits : {32, 64, 128, 256, 512}) {
    const lsh::RandomHyperplaneLsh hasher(model.config().emb_dim, bits, 2022);
    std::vector<util::BitVec> sigs;
    sigs.reserve(deq.rows());
    for (std::size_t r = 0; r < deq.rows(); ++r)
      sigs.push_back(hasher.encode(deq.row(r)));

    const double hr = recsys::hit_rate(
        ds.num_users(),
        [&](std::size_t u) {
          const auto ctx = model.make_context(ds, u);
          const auto q = hasher.encode(model.user_embedding(ctx));
          return baseline::topk_hamming(sigs, q, topn);
        },
        [&](std::size_t u) { return ds.user(u).heldout; });

    // Storage: ceil(bits/256) signature CMAs per data CMA; NNS searches all
    // of them (16 data CMAs for the full-size ItET).
    const std::size_t sig_per_data = (bits + 255) / 256;
    const std::size_t sig_cmas = 16 * sig_per_data;
    t.row({std::to_string(bits), util::Table::num(100.0 * hr, 1) + "%",
           util::Table::num(100.0 * (hr - hr_ref), 1) + " p.p.",
           std::to_string(1 + sig_per_data),
           util::Table::num(pm.nns(sig_cmas).energy.nj(), 2)});
  }
  t.print(std::cout);

  std::cout
      << "\nReading: short signatures lose hit rate (high Hamming-estimate\n"
         "variance); beyond 256 bits the gains flatten while every entry\n"
         "needs another CMA and every search touches more arrays. 256 bits\n"
         "-- exactly one extra CMA per entry -- is the paper's sweet spot.\n";
  return 0;
}
