// Ablation X4 (DESIGN.md): memory technology.
//
// Sec II-B argues for FeFET CMAs over CMOS (density, leakage) and ReRAM
// (write cost). This bench runs the Table III ET-lookup composition and the
// table-loading cost under the three device profiles, plus the area model.
// The CMOS/ReRAM profiles are documented estimates (device/profile.cpp);
// the comparison shows *why* the paper's technology choice holds, not
// exact competitor numbers.
#include <iostream>

#include "core/area.hpp"
#include "core/calibration.hpp"
#include "core/perf_model.hpp"
#include "harness.hpp"
#include "util/table.hpp"

using namespace imars;
using bench::PaperWorkloads;

int main() {
  std::cout << "=== Ablation: memory technology (FeFET vs CMOS vs ReRAM) "
               "===\n\n";

  const device::DeviceProfile profiles[] = {
      device::DeviceProfile::fefet45(),
      device::DeviceProfile::fefet22(),
      device::DeviceProfile::cmos45(),
      device::DeviceProfile::reram45(),
  };

  util::Table t("Technology sweep (Criteo ET lookup + fabric properties)");
  t.header({"technology", "ET lookup lat (us)", "ET lookup E (uJ)",
            "load 30k-row ET (us)", "search E/array (pJ)",
            "chip area (CMA-equiv)", "endurance (cycles)"});

  for (const auto& p : profiles) {
    const core::ArchConfig arch;
    const core::PerfModel pm(arch, p);

    core::EtLookupParams params;
    params.tables = PaperWorkloads::kCriteoTables;
    params.lookups_per_table = core::kWorstCaseLookupsPerTable;
    params.mats_per_table = PaperWorkloads::kCriteoMatsPerTable;
    params.active_cmas = PaperWorkloads::kCriteoActiveCmas;
    const auto lookup = pm.et_lookup(params);

    // Loading a 30,000-row table = 30,000 serialized row writes.
    const double load_us = p.cma_write.latency.us() * 30000.0;

    t.row({p.name, util::Table::num(lookup.latency.us(), 3),
           util::Table::num(lookup.energy.uj(), 2),
           util::Table::num(load_us, 0),
           util::Table::num(p.cma_search.energy.value, 1),
           util::Table::num(core::chip_area(arch, p, 0).total(), 0),
           std::to_string(p.endurance_cycles)});
  }
  t.print(std::cout);

  std::cout
      << "\nReading (Sec II-B's argument, quantified):\n"
         " * CMOS: fastest writes and lookups, but ~2.1x the cell area --\n"
         "   the ET capacity that fits one FeFET chip needs two CMOS chips\n"
         "   (and SRAM leaks statically, which this energy model does not\n"
         "   even charge).\n"
         " * ReRAM: competitive reads/searches, but table loads and every\n"
         "   in-place update pay ~10x latency and energy per write.\n"
         " * FeFET: near-CMOS speed at non-volatile, 1T-cell density --\n"
         "   the paper's choice. The projected 22nm FDSOI point (Dunkel et\n"
         "   al., cited by the paper for manufacturability) roughly halves\n"
         "   energy again at a quarter of the area.\n"
         " * Endurance: embedding tables are written once per deployment\n"
         "   and read at inference, so even ReRAM's ~1e7-cycle budget is\n"
         "   ample; wear only matters for GPCiM staging patterns (tracked\n"
         "   per-row by cma::Cma::row_writes).\n";
  return 0;
}
