// Reproduces Sec IV-B: algorithm-level accuracy (hit rate) of the filtering
// stage under the three data-representation / distance configurations:
//   (1) FP32 + cosine            -> paper HR 26.8%
//   (2) int8 + cosine            -> paper HR 26.2%
//   (3) int8 + LSH-256 Hamming   -> paper HR 20.8%  (~5.4 p.p. degradation)
//
// A YouTubeDNN filtering model is trained on the synthetic MovieLens-1M
// dataset (leave-one-out protocol, HR = hits / test users, as in the
// paper); each configuration retrieves a size-matched candidate set.
#include <iostream>

#include "baseline/cpu_backend.hpp"
#include "baseline/exact_nns.hpp"
#include "harness.hpp"
#include "recsys/metrics.hpp"
#include "util/table.hpp"

using namespace imars;
using baseline::CpuBackend;
using baseline::CpuBackendConfig;
using baseline::FilterVariant;

int main() {
  const bool quick = bench::quick_mode();
  const double scale = quick ? 0.05 : 0.5;
  const std::size_t epochs = quick ? 3 : 8;
  const std::size_t topn = 10;  // HR@10, the usual MovieLens protocol

  std::cout << "=== Sec IV-B: filtering-stage accuracy (HR@" << topn
            << ", leave-one-out) ===\n"
            << "(synthetic MovieLens at scale " << scale << ", " << epochs
            << " training epochs; set IMARS_BENCH_QUICK=1 for a fast run)\n\n";

  auto setup = bench::make_movielens(scale, epochs, 0);
  const auto& ds = *setup.ds;
  const auto& model = *setup.model;

  CpuBackendConfig base;
  base.candidates = topn;

  // (1) FP32 + cosine.
  CpuBackendConfig c1 = base;
  c1.variant = FilterVariant::kFp32Cosine;
  CpuBackend fp32(model, c1);

  // (2) int8 + cosine.
  CpuBackendConfig c2 = base;
  c2.variant = FilterVariant::kInt8Cosine;
  CpuBackend int8(model, c2);

  // (3) int8 + LSH Hamming, size-matched (top-n by signature distance).
  CpuBackendConfig c3 = base;
  c3.variant = FilterVariant::kInt8LshHamming;
  CpuBackend lshv(model, c3);

  const auto hr_backend = [&](CpuBackend& be) {
    return recsys::hit_rate(
        ds.num_users(),
        [&](std::size_t u) {
          return be.filter(model.make_context(ds, u), nullptr);
        },
        [&](std::size_t u) { return ds.user(u).heldout; });
  };
  const double hr1 = hr_backend(fp32);
  const double hr2 = hr_backend(int8);
  const double hr3 = recsys::hit_rate(
      ds.num_users(),
      [&](std::size_t u) {
        const auto ctx = model.make_context(ds, u);
        const auto q = lshv.signature_of(model.user_embedding(ctx));
        return baseline::topk_hamming(lshv.item_signatures(), q, topn);
      },
      [&](std::size_t u) { return ds.user(u).heldout; });

  util::Table t("Hit rate by configuration");
  t.header({"Configuration", "HR (measured)", "HR (paper)"});
  t.row({"(1) FP32 + cosine", util::Table::num(100.0 * hr1, 1) + "%", "26.8%"});
  t.row({"(2) int8 + cosine", util::Table::num(100.0 * hr2, 1) + "%", "26.2%"});
  t.row({"(3) int8 + LSH-256 Hamming", util::Table::num(100.0 * hr3, 1) + "%",
         "20.8%"});
  t.print(std::cout);

  std::cout << "\nDegradation (1)->(2): "
            << util::Table::num(100.0 * (hr1 - hr2), 1)
            << " p.p. [paper 0.6]\nDegradation (1)->(3): "
            << util::Table::num(100.0 * (hr1 - hr3), 1)
            << " p.p. [paper 5.4... paper reports ~5-6 p.p.]\n\n"
            << "Shape check: int8 quantization is nearly free; replacing\n"
            << "cosine with the TCAM-friendly Hamming distance costs a few\n"
            << "points of hit rate -- tolerable because the ranking stage\n"
            << "re-scores every candidate (Sec IV-B). Absolute HR depends\n"
            << "on the synthetic ground truth, so compare the deltas, not\n"
            << "the absolute percentages.\n";
  return 0;
}
