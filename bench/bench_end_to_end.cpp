// Reproduces Sec IV-C3: end-to-end comparison.
//
//   * MovieLens (filtering + ranking): paper reports 16.8x latency and
//     713x energy improvement; 22025 queries/s on iMARS vs 1311 on the GPU.
//   * Criteo Kaggle (ranking only): paper reports 13.2x latency and 57.8x
//     energy improvement.
//   * DNN stack alone: ~2.69x latency improvement (crossbars vs GPU).
//
// iMARS numbers are measured on the functional machine (real CMA banks,
// crossbar MLPs, TCAM NNS, CTR-buffer top-k); GPU numbers come from the
// calibrated cost model executing the identical trained model.
#include <iostream>

#include "baseline/cpu_backend.hpp"
#include "baseline/gpu_model.hpp"
#include "core/backend.hpp"
#include "core/calibration.hpp"
#include "core/perf_model.hpp"
#include "harness.hpp"
#include "util/table.hpp"

using namespace imars;
using bench::PaperWorkloads;
using recsys::OpKind;
using recsys::StageStats;

namespace {

std::size_t mlp_macs(std::span<const std::size_t> dims) {
  std::size_t macs = 0;
  for (std::size_t i = 0; i + 1 < dims.size(); ++i) macs += dims[i] * dims[i + 1];
  return macs;
}

}  // namespace

int main() {
  const bool quick = bench::quick_mode();
  const double scale = quick ? 0.04 : 1.0;  // full MovieLens-1M shape
  const std::size_t users_to_run = quick ? 20 : 100;
  const std::size_t k = 10;

  std::cout << "=== Sec IV-C3: end-to-end comparison ===\n"
            << "(functional iMARS vs calibrated GPU model; synthetic "
               "MovieLens at scale "
            << scale << ", " << users_to_run << " measured queries)\n\n";

  // ------------------ MovieLens: filtering + ranking ----------------------
  auto ml = bench::make_movielens(scale, quick ? 2 : 4, quick ? 1 : 2);

  std::vector<recsys::UserContext> calib;
  for (std::size_t u = 0; u < 8; ++u)
    calib.push_back(ml.model->make_context(*ml.ds, u));

  // Calibrate the fixed radius (the TCAM's adjustable dummy-cell reference,
  // Sec III-A1) so the candidate set averages ~kEndToEndCandidates items,
  // matching the GPU baseline's top-20 budget.
  core::ImarsBackendConfig icfg;
  icfg.timing = core::TimingMode::kWorstCaseSameArray;  // paper composition
  // Item buffer sized to the ranking budget: the priority encoder drains at
  // most kEndToEndCandidates matches per query (matching the GPU top-20).
  icfg.max_candidates = core::kEndToEndCandidates;
  {
    // One probe backend supplies the hardware user embeddings; candidate
    // counts per radius are evaluated with the software Hamming oracle
    // (bit-identical to the TCAM search, see test_accelerator).
    core::ImarsBackend probe(*ml.model, core::ArchConfig{},
                             device::DeviceProfile::fefet45(), icfg, calib);
    const auto items_q = ml.model->item_table().quantized();
    const auto deq = items_q.dequantize();
    std::vector<util::BitVec> sigs;
    sigs.reserve(deq.rows());
    for (std::size_t r = 0; r < deq.rows(); ++r)
      sigs.push_back(probe.signature_of(deq.row(r)));

    const std::size_t probe_users = std::min<std::size_t>(60, users_to_run);
    std::vector<util::BitVec> queries;
    for (std::size_t u = 0; u < probe_users; ++u) {
      const auto ctx = ml.model->make_context(*ml.ds, u);
      queries.push_back(
          probe.signature_of(probe.user_embedding_hw(ctx, nullptr)));
    }

    std::size_t best_radius = 96;
    double best_err = 1e18;
    for (std::size_t radius = 24; radius <= 120; radius += 4) {
      double total = 0.0;
      for (const auto& q : queries) {
        std::size_t count = 0;
        for (const auto& s : sigs)
          if (s.hamming(q) <= radius) ++count;
        total += static_cast<double>(
            std::min(count, icfg.max_candidates));
      }
      const double err = std::abs(total / static_cast<double>(probe_users) -
                                  static_cast<double>(core::kEndToEndCandidates));
      if (err < best_err) {
        best_err = err;
        best_radius = radius;
      }
    }
    icfg.nns_radius = best_radius;
    std::cerr << "  [calib] fixed radius " << best_radius << " -> ~"
              << core::kEndToEndCandidates << " candidates/query\n";
  }
  core::ImarsBackend imars_be(*ml.model, core::ArchConfig{},
                              device::DeviceProfile::fefet45(), icfg, calib);

  const baseline::GpuModel gpu;
  baseline::GpuBackendConfig gcfg;
  gcfg.candidates = core::kEndToEndCandidates;
  baseline::GpuModelBackend gpu_be(*ml.model, gpu, gcfg);

  StageStats gpu_f, gpu_r, hw_f, hw_r;
  std::size_t hw_candidates = 0;
  for (std::size_t u = 0; u < users_to_run; ++u) {
    const auto ctx = ml.model->make_context(*ml.ds, u);
    (void)recsys::recommend(gpu_be, ctx, k, &gpu_f, &gpu_r);
    StageStats hf, hr;
    const auto cands = imars_be.filter(ctx, &hf);
    hw_candidates += cands.size();
    (void)imars_be.rank(ctx, cands, k, &hr);
    hw_f.merge(hf);
    hw_r.merge(hr);
  }
  const double n = static_cast<double>(users_to_run);

  const double gpu_lat_us =
      (gpu_f.total().latency.us() + gpu_r.total().latency.us()) / n;
  const double hw_lat_us =
      (hw_f.total().latency.us() + hw_r.total().latency.us()) / n;
  const double gpu_e_uj =
      (gpu_f.total().energy.uj() + gpu_r.total().energy.uj()) / n;
  const double hw_e_uj =
      (hw_f.total().energy.uj() + hw_r.total().energy.uj()) / n;

  util::Table t("MovieLens end-to-end (per query averages)");
  t.header({"", "GPU (model)", "iMARS (measured)", "improvement", "paper"});
  t.row({"latency (us)", util::Table::num(gpu_lat_us, 1),
         util::Table::num(hw_lat_us, 2),
         util::Table::factor(gpu_lat_us / hw_lat_us), "16.8x"});
  t.row({"energy (uJ)", util::Table::num(gpu_e_uj, 0),
         util::Table::num(hw_e_uj, 2),
         util::Table::factor(gpu_e_uj / hw_e_uj), "713x"});
  t.row({"queries/s", util::Table::num(1e6 / gpu_lat_us, 0) + " [paper 1311]",
         util::Table::num(1e6 / hw_lat_us, 0) + " [paper 22025]", "", ""});
  t.row({"avg candidates/query",
         std::to_string(core::kEndToEndCandidates),
         util::Table::num(static_cast<double>(hw_candidates) / n, 1), "", ""});
  t.print(std::cout);

  // Per-op breakdown of the iMARS query.
  std::cout << "\n";
  util::Table b("iMARS per-query breakdown (us)");
  b.header({"stage", "ET Lookup", "DNN Stack", "NNS", "TopK", "Comm"});
  const auto row_of = [&](const char* name, const StageStats& s) {
    b.row({name, util::Table::num(s.at(OpKind::kEtLookup).latency.us() / n, 3),
           util::Table::num(s.at(OpKind::kDnn).latency.us() / n, 3),
           util::Table::num(s.at(OpKind::kNns).latency.us() / n, 5),
           util::Table::num(s.at(OpKind::kTopK).latency.us() / n, 3),
           util::Table::num(s.at(OpKind::kComm).latency.us() / n, 3)});
  };
  row_of("filtering", hw_f);
  row_of("ranking", hw_r);
  b.print(std::cout);

  // ------------------ DNN stack alone -------------------------------------
  const core::PerfModel pm(core::ArchConfig{},
                           device::DeviceProfile::fefet45());
  const double imars_dnn_us =
      pm.dnn(PaperWorkloads::kFilterDnnDims).latency.us();
  const double gpu_dnn_us =
      gpu.dnn(3, mlp_macs(PaperWorkloads::kFilterDnnDims)).latency.us();
  std::cout << "\nDNN stack (filtering tower): GPU "
            << util::Table::num(gpu_dnn_us, 2) << " us vs iMARS crossbars "
            << util::Table::num(imars_dnn_us, 2) << " us -> "
            << util::Table::factor(gpu_dnn_us / imars_dnn_us)
            << " [paper ~2.69x]\n\n";

  // ------------------ Criteo: ranking only --------------------------------
  auto cr = bench::make_criteo(quick ? 1000 : 6000, quick ? 1 : 2);
  std::vector<data::CriteoSample> ccalib;
  for (std::size_t i = 0; i < 8; ++i) ccalib.push_back(cr.ds->sample(i));
  core::ImarsCtrBackend imars_ctr(*cr.model, core::ArchConfig{},
                                  device::DeviceProfile::fefet45(),
                                  core::TimingMode::kWorstCaseSameArray,
                                  ccalib);
  baseline::GpuCtrBackend gpu_ctr(*cr.model, gpu);

  StageStats cg, ch;
  const std::size_t impressions = quick ? 20 : 100;
  for (std::size_t i = 0; i < impressions; ++i) {
    const auto& s = cr.ds->sample(i);
    (void)gpu_ctr.score(s.dense, s.sparse, &cg);
    (void)imars_ctr.score(s.dense, s.sparse, &ch);
  }
  const double ni = static_cast<double>(impressions);
  const double cg_lat = cg.total().latency.us() / ni;
  const double ch_lat = ch.total().latency.us() / ni;
  const double cg_e = cg.total().energy.uj() / ni;
  const double ch_e = ch.total().energy.uj() / ni;

  util::Table c("Criteo Kaggle ranking (per impression averages)");
  c.header({"", "GPU (model)", "iMARS (measured)", "improvement", "paper"});
  c.row({"latency (us)", util::Table::num(cg_lat, 2),
         util::Table::num(ch_lat, 2), util::Table::factor(cg_lat / ch_lat),
         "13.2x"});
  c.row({"energy (uJ)", util::Table::num(cg_e, 1), util::Table::num(ch_e, 2),
         util::Table::factor(cg_e / ch_e), "57.8x"});
  c.print(std::cout);

  bench::JsonReport json("e2e");
  json.record("movielens")
      .set("scale", scale)
      .set("users", users_to_run)
      .set("k", k)
      .set("gpu_latency_us", gpu_lat_us)
      .set("imars_latency_us", hw_lat_us)
      .set("latency_improvement", gpu_lat_us / hw_lat_us)
      .set("paper_latency_improvement", 16.8)
      .set("gpu_energy_uj", gpu_e_uj)
      .set("imars_energy_uj", hw_e_uj)
      .set("energy_improvement", gpu_e_uj / hw_e_uj)
      .set("paper_energy_improvement", 713.0)
      .set("imars_qps", 1e6 / hw_lat_us)
      .set("avg_candidates", static_cast<double>(hw_candidates) / n);
  json.record("dnn_stack")
      .set("gpu_latency_us", gpu_dnn_us)
      .set("imars_latency_us", imars_dnn_us)
      .set("latency_improvement", gpu_dnn_us / imars_dnn_us)
      .set("paper_latency_improvement", 2.69);
  json.record("criteo")
      .set("impressions", impressions)
      .set("gpu_latency_us", cg_lat)
      .set("imars_latency_us", ch_lat)
      .set("latency_improvement", cg_lat / ch_lat)
      .set("paper_latency_improvement", 13.2)
      .set("gpu_energy_uj", cg_e)
      .set("imars_energy_uj", ch_e)
      .set("energy_improvement", cg_e / ch_e)
      .set("paper_energy_improvement", 57.8);
  json.write();

  std::cout << "\nShape check: iMARS wins end-to-end on both workloads and\n"
               "both axes; the end-to-end improvement is dominated by the\n"
               "ranking stage (the filtering stage runs once per user while\n"
               "each candidate is scored in the ranking stage), exactly as\n"
               "the paper observes.\n";
  return 0;
}
