// Reproduces Fig. 2: operation breakdown of the filtering and ranking
// stages on the MovieLens dataset (GPU baseline).
//
// The paper profiles YouTubeDNN on the GTX 1080 and reports, per stage, the
// share of time spent in ET lookups, the DNN stack, and NNS / TopK. We
// compose the same per-stage totals from the calibrated GPU model (FAISS
// ANN search in the filtering stage, as used by the paper's accuracy
// experiment) and print both percentage sets.
#include <iostream>

#include "baseline/gpu_model.hpp"
#include "harness.hpp"
#include "util/table.hpp"

using namespace imars;
using baseline::GpuNnsKind;
using bench::PaperWorkloads;

namespace {

std::string pct(double part, double total) {
  return util::Table::num(100.0 * part / total, 1) + "%";
}

std::size_t mlp_macs(std::span<const std::size_t> dims) {
  std::size_t macs = 0;
  for (std::size_t i = 0; i + 1 < dims.size(); ++i) macs += dims[i] * dims[i + 1];
  return macs;
}

}  // namespace

int main() {
  std::cout << "=== Fig. 2: operation breakdown of filtering and ranking on "
               "MovieLens (GPU) ===\n\n";

  const baseline::GpuModel gpu;

  // ---- Filtering stage: one query. ---------------------------------------
  const double f_et = gpu.et_lookup(PaperWorkloads::kMlFilterTables).latency.us();
  const double f_dnn =
      gpu.dnn(3, mlp_macs(PaperWorkloads::kFilterDnnDims)).latency.us();
  const double f_nns =
      gpu.nns(GpuNnsKind::kFaissAnn, PaperWorkloads::kMlItems).latency.us();
  const double f_total = f_et + f_dnn + f_nns;

  util::Table tf("(a) Filtering stage");
  tf.header({"Operation", "latency (us)", "share", "paper"});
  tf.row({"ET Lookup", util::Table::num(f_et, 2), pct(f_et, f_total), "53%"});
  tf.row({"DNN Stack", util::Table::num(f_dnn, 2), pct(f_dnn, f_total), "36%"});
  tf.row({"NNS", util::Table::num(f_nns, 2), pct(f_nns, f_total), "11%"});
  tf.row({"total", util::Table::num(f_total, 2), "100%", "100%"});
  tf.print(std::cout);

  // ---- Ranking stage: one user-item pair + the final top-k. ---------------
  const double r_et = gpu.et_lookup(PaperWorkloads::kMlRankTables).latency.us();
  const double r_dnn =
      gpu.dnn(2, mlp_macs(PaperWorkloads::kRankDnnDims)).latency.us() +
      gpu.rank_pair_overhead().latency.us();
  const double r_topk = gpu.topk(20).latency.us();
  const double r_total = r_et + r_dnn + r_topk;

  std::cout << "\n";
  util::Table tr("(b) Ranking stage (per user-item pair)");
  tr.header({"Operation", "latency (us)", "share", "paper"});
  tr.row({"ET Lookup", util::Table::num(r_et, 2), pct(r_et, r_total), "23%"});
  tr.row({"DNN Stack", util::Table::num(r_dnn, 2), pct(r_dnn, r_total), "65%"});
  tr.row({"TopK", util::Table::num(r_topk, 2), pct(r_topk, r_total), "12%"});
  tr.row({"total", util::Table::num(r_total, 2), "100%", "100%"});
  tr.print(std::cout);

  std::cout << "\nShape check: ET lookups dominate the filtering stage and\n"
               "the DNN stack dominates ranking -- the imbalance that\n"
               "motivates accelerating *both* ET operations and the DNN\n"
               "stack in one fabric (Sec I).\n";
  return 0;
}
