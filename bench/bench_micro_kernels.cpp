// Hot-kernel microbenchmarks (google-benchmark): wall-clock throughput of
// the functional simulator's inner loops. These measure *simulator*
// performance (how fast the reproduction runs on the host), complementing
// the modeled hardware numbers in the other benches.
#include <benchmark/benchmark.h>

#include "cma/cma.hpp"
#include "data/zipf.hpp"
#include "lsh/lsh.hpp"
#include "nn/embedding.hpp"
#include "tensor/qtensor.hpp"
#include "util/bitvec.hpp"
#include "util/rng.hpp"
#include "xbar/crossbar.hpp"

using namespace imars;

namespace {

void BM_BitVecHamming(benchmark::State& state) {
  const auto bits = static_cast<std::size_t>(state.range(0));
  util::Xoshiro256 rng(1);
  util::BitVec a(bits), b(bits);
  for (std::size_t i = 0; i < bits; ++i) {
    a.set(i, rng.bernoulli(0.5));
    b.set(i, rng.bernoulli(0.5));
  }
  for (auto _ : state) benchmark::DoNotOptimize(a.hamming(b));
}
BENCHMARK(BM_BitVecHamming)->Arg(256)->Arg(1024);

void BM_CmaSearch(benchmark::State& state) {
  const auto profile = device::DeviceProfile::fefet45();
  device::EnergyLedger ledger;
  cma::Cma array(profile, &ledger);
  util::Xoshiro256 rng(2);
  for (std::size_t r = 0; r < 256; ++r) {
    util::BitVec row(256);
    for (std::size_t i = 0; i < 256; ++i) row.set(i, rng.bernoulli(0.5));
    array.write_row(r, row);
  }
  array.set_mode(cma::Mode::kTcam);
  util::BitVec q(256);
  for (auto _ : state) benchmark::DoNotOptimize(array.search(q, 96));
}
BENCHMARK(BM_CmaSearch);

void BM_CmaAccumulate(benchmark::State& state) {
  const auto profile = device::DeviceProfile::fefet45();
  device::EnergyLedger ledger;
  cma::Cma array(profile, &ledger);
  for (std::size_t r = 0; r < 32; ++r)
    array.write_row_i8(r, std::vector<std::int8_t>(32, static_cast<std::int8_t>(r)));
  array.set_mode(cma::Mode::kGpcim);
  std::vector<std::int32_t> acc(32, 0);
  for (auto _ : state) {
    for (std::size_t r = 0; r < 32; ++r) array.accumulate(r, acc);
    benchmark::DoNotOptimize(acc.data());
  }
}
BENCHMARK(BM_CmaAccumulate);

void BM_XbarGemv(benchmark::State& state) {
  const auto profile = device::DeviceProfile::fefet45();
  device::EnergyLedger ledger;
  xbar::Crossbar xb(profile, &ledger);
  util::Xoshiro256 rng(3);
  const auto w = tensor::QMatrix::quantize(
      tensor::Matrix::randn(256, 128, 1.0f, rng));
  xb.load_weights(w);
  std::vector<std::int8_t> in(256);
  for (auto& v : in)
    v = static_cast<std::int8_t>(static_cast<int>(rng.below(200)) - 100);
  for (auto _ : state) benchmark::DoNotOptimize(xb.gemv(in, nullptr));
}
BENCHMARK(BM_XbarGemv);

void BM_LshEncode(benchmark::State& state) {
  const auto bits = static_cast<std::size_t>(state.range(0));
  const lsh::RandomHyperplaneLsh hasher(32, bits, 4);
  util::Xoshiro256 rng(5);
  tensor::Vector v(32);
  for (auto& x : v) x = static_cast<float>(rng.normal());
  for (auto _ : state) benchmark::DoNotOptimize(hasher.encode(v));
}
BENCHMARK(BM_LshEncode)->Arg(64)->Arg(256);

void BM_EmbeddingPool(benchmark::State& state) {
  const auto lookups = static_cast<std::size_t>(state.range(0));
  util::Xoshiro256 rng(6);
  nn::EmbeddingTable table(4096, 32, rng);
  std::vector<std::size_t> idx(lookups);
  for (auto& i : idx) i = rng.below(4096);
  for (auto _ : state)
    benchmark::DoNotOptimize(table.lookup_pooled(idx, nn::Pooling::kMean));
}
BENCHMARK(BM_EmbeddingPool)->Arg(1)->Arg(8)->Arg(64);

void BM_ZipfSample(benchmark::State& state) {
  const data::ZipfSampler zipf(30000, 1.1);
  util::Xoshiro256 rng(7);
  for (auto _ : state) benchmark::DoNotOptimize(zipf.sample(rng));
}
BENCHMARK(BM_ZipfSample);

void BM_GemvI8(benchmark::State& state) {
  util::Xoshiro256 rng(8);
  const auto w = tensor::QMatrix::quantize(
      tensor::Matrix::randn(128, 256, 1.0f, rng));
  std::vector<std::int8_t> in(256, 3);
  for (auto _ : state) benchmark::DoNotOptimize(tensor::gemv_i8(w, in));
}
BENCHMARK(BM_GemvI8);

}  // namespace
