// Reproduces Sec IV-C2: the NNS operation comparison on the MovieLens ItET
// (~3952 items, one query):
//   * GPU, original cosine distance:   13.6 us / 0.34 mJ   (paper)
//   * GPU, LSH-256 Hamming:             6.97 us / 0.15 mJ  (paper)
//   * iMARS, TCAM threshold search:     3.8e4x / 2.8e4x better than GPU-LSH
//
// The iMARS number is measured on the functional machine: a real ItET is
// loaded (full MovieLens scale) and a real TCAM search executes, charging
// energy to the ledger.
#include <algorithm>
#include <iostream>

#include "baseline/exact_nns.hpp"
#include "baseline/gpu_model.hpp"
#include "baseline/ivf.hpp"
#include "core/accelerator.hpp"
#include "core/perf_model.hpp"
#include "harness.hpp"
#include "lsh/lsh.hpp"
#include "tensor/qtensor.hpp"
#include "util/rng.hpp"
#include "util/table.hpp"

using namespace imars;
using baseline::GpuNnsKind;
using bench::PaperWorkloads;

int main() {
  std::cout << "=== Sec IV-C2: NNS operation, MovieLens ItET ("
            << PaperWorkloads::kMlItems << " items) ===\n\n";

  const baseline::GpuModel gpu;
  const auto g_cos = gpu.nns(GpuNnsKind::kBruteCosine, PaperWorkloads::kMlItems);
  const auto g_lsh = gpu.nns(GpuNnsKind::kLsh256, PaperWorkloads::kMlItems);

  // Functional iMARS measurement: load a full-size ItET with signatures and
  // run one search.
  util::Xoshiro256 rng(7);
  const auto items = tensor::QMatrix::quantize(
      tensor::Matrix::randn(PaperWorkloads::kMlItems, 32, 0.5f, rng));
  const lsh::RandomHyperplaneLsh hasher(32, 256, 2022);
  const auto deq = items.dequantize();
  std::vector<util::BitVec> sigs;
  sigs.reserve(deq.rows());
  for (std::size_t r = 0; r < deq.rows(); ++r)
    sigs.push_back(hasher.encode(deq.row(r)));

  core::ImarsAccelerator acc(core::ArchConfig{},
                             device::DeviceProfile::fefet45());
  const auto itet = acc.load_itet("ItET", items, sigs);
  acc.reset_energy();

  tensor::Vector q(32);
  for (auto& x : q) x = static_cast<float>(rng.normal());
  recsys::OpCost hw;
  const auto matches = acc.nns(itet, hasher.encode(q), 96, &hw);

  util::Table t("NNS: one query, latency and energy");
  t.header({"Engine", "latency (us)", "energy (uJ)", "vs GPU-LSH (lat)",
            "vs GPU-LSH (energy)"});
  t.row({"GPU cosine (paper 13.6us / 340uJ)",
         util::Table::num(g_cos.latency.us(), 2),
         util::Table::num(g_cos.energy.uj(), 1), "-", "-"});
  t.row({"GPU LSH-256 (paper 6.97us / 150uJ)",
         util::Table::num(g_lsh.latency.us(), 2),
         util::Table::num(g_lsh.energy.uj(), 1), "1x", "1x"});
  t.row({"iMARS TCAM (measured, functional)",
         util::Table::num(hw.latency.us(), 5),
         util::Table::num(hw.energy.uj(), 5),
         util::Table::factor(g_lsh.latency / hw.latency) + " [paper 3.8e4x]",
         util::Table::factor(g_lsh.energy / hw.energy) + " [paper 2.8e4x]"});
  t.print(std::cout);

  std::cout << "\nThe search returned " << matches.size()
            << " candidates at radius 96 over " << PaperWorkloads::kMlItems
            << " items in O(1) array time: all "
            << PaperWorkloads::kMlItetSigCmas
            << " signature CMAs evaluate their matchlines in parallel\n"
               "(one 0.2 ns search, Table II), so the latency advantage\n"
               "over the GPU's O(n) scan is four orders of magnitude.\n";

  // Cross-check against the closed-form model.
  const core::PerfModel pm(core::ArchConfig{},
                           device::DeviceProfile::fefet45());
  const auto analytic = pm.nns(PaperWorkloads::kMlItetSigCmas);
  std::cout << "\nClosed-form cross-check: " << analytic.latency.value
            << " ns / " << analytic.energy.value
            << " pJ (functional: " << hw.latency.value << " ns / "
            << hw.energy.value << " pJ)\n";

  // Functional validation of the GPU FAISS model: an IVF-Flat index over
  // the same items. The calibrated FAISS latency assumes a ~1/8 scan
  // fraction; the recall measured here shows what that buys.
  {
    baseline::IvfIndex::Config icfg;
    icfg.nlist = 32;
    icfg.nprobe = 4;  // scan fraction 1/8
    const baseline::IvfIndex index(deq, icfg);

    double recall = 0.0;
    const int queries_n = 50;
    util::Xoshiro256 qrng(11);
    for (int t = 0; t < queries_n; ++t) {
      tensor::Vector v(32);
      for (auto& x : v) x = static_cast<float>(qrng.normal());
      const auto exact = baseline::topk_cosine(deq, v, 20);
      const auto approx = index.search(v, 20);
      int hits = 0;
      for (auto e : exact)
        if (std::find(approx.begin(), approx.end(), e) != approx.end())
          ++hits;
      recall += hits / 20.0;
    }
    std::cout << "\nIVF-Flat validation of the GPU FAISS point: nprobe 4/32"
              << " (scan fraction " << index.scan_fraction(4)
              << ") reaches recall@20 = "
              << util::Table::num(recall / queries_n, 2)
              << " -- the accuracy/latency trade the paper's FAISS baseline"
              << " makes in Fig. 2.\n";
  }
  return 0;
}
