// Frequency-aware placement & write-back benchmark (extension): hot-pinned
// vs uniform item placement on a mixed-technology filter/rank fabric, under
// two Zipf skews and a read-only vs 10%-update mix.
//
// Fabric: FeFET-22 + 2x FeFET-45 + ReRAM-45 behind one ServingRuntime.
// Three placements over the SAME open-loop Poisson stream:
//   uniform    modulo bucket ring (frequency- and capability-blind)
//   weighted   ShardMap::from_costs over measured per-item rank cost (PR 2)
//   pinned     weighted base + PlacementPolicy hot-row pins from a warmup
//              window (hot candidates land on the low-row-latency shards)
//
// The update-mix points drive the write-back cache model: 10% of arrivals
// are embedding-update writes absorbed by the periphery buffer (dirty rows,
// eviction flushes) instead of queries.
//
// Full-mode acceptance (exit nonzero on violation):
//   * pinned p99 strictly beats uniform p99 under BOTH skews, read-only
//     and update mix;
//   * per-query top-k parity between pinned and uniform placements
//     (placement moves work, never results).
//
// Emits BENCH_placement.json (bench/harness.hpp JsonReport).
#include <iostream>
#include <map>
#include <memory>

#include "core/backend_factory.hpp"
#include "core/calibration.hpp"
#include "harness.hpp"
#include "serve/runtime.hpp"
#include "serve/trace.hpp"
#include "util/table.hpp"

using namespace imars;

namespace {

struct PlacementPoint {
  std::string name;
  bool weighted = false;
  bool pinned = false;
};

struct LoadPoint {
  double zipf_s = 0.9;
  double update_fraction = 0.0;
};

std::string load_name(const LoadPoint& lp) {
  std::string name = "zipf" + util::Table::num(lp.zipf_s, 1);
  name += lp.update_fraction > 0.0
              ? "+upd" + util::Table::num(lp.update_fraction * 100.0, 0)
              : "+ro";
  return name;
}

}  // namespace

int main(int argc, char** argv) {
  // --self-profile / --trace <file>: observation only (harness.hpp); the
  // trace exports the pinned placement under the heaviest load point.
  const auto obs = bench::parse_observe_flags(argc, argv);
  const bool quick = bench::quick_mode();
  const double scale = quick ? 0.04 : 0.12;
  const std::size_t queries = quick ? 48 : 192;
  const std::size_t k = 10;

  std::cout << "=== Extension: frequency-aware placement & write-back ===\n"
            << "(synthetic MovieLens at scale " << scale << ", " << queries
            << " open-loop arrivals per point, mixed FeFET-22/45 + ReRAM-45 "
               "fabric)\n\n";

  auto ml = bench::make_movielens(scale, quick ? 2 : 3, 1);
  std::vector<recsys::UserContext> users;
  for (std::size_t u = 0; u < ml.ds->num_users(); ++u)
    users.push_back(ml.model->make_context(*ml.ds, u));
  std::vector<recsys::UserContext> calib(users.begin(), users.begin() + 8);

  const core::ArchConfig arch;
  const auto base_profile = device::DeviceProfile::fefet45();
  core::ImarsBackendConfig icfg;
  icfg.timing = core::TimingMode::kWorstCaseSameArray;
  icfg.max_candidates = core::kEndToEndCandidates;
  icfg.nns_radius = 64;
  const auto sharded_factory =
      core::imars_sharded_backend_factory(*ml.model, arch, icfg, calib);

  const std::vector<device::DeviceProfile> profiles = {
      device::DeviceProfile::fefet22(), device::DeviceProfile::fefet45(),
      device::DeviceProfile::fefet45(), device::DeviceProfile::reram45()};

  serve::TrafficSpec traffic;
  traffic.filter_features = ml.model->filter_features();
  traffic.rank_features = ml.model->rank_features();

  // Measured per-item rank cost of each technology (capability weights and
  // the anchor for the open-loop rate), probed on a throwaway fabric.
  std::vector<device::Ns> rank_costs;
  double qps_anchor = 0.0;
  {
    auto probe =
        std::make_unique<serve::ShardRouter>(sharded_factory, profiles,
                                             traffic);
    probe->bind_users(users);
    std::vector<std::size_t> probe_items;
    for (std::size_t i = 0; i < 16; ++i) probe_items.push_back(i);
    rank_costs = probe->probe_rank_cost(users.front(), probe_items);

    // Closed-loop capacity of the uniform fabric (the rate anchor).
    serve::ServingConfig cal_cfg;
    cal_cfg.k = k;
    cal_cfg.batcher.max_batch = 8;
    cal_cfg.batcher.max_wait = device::Ns{500000.0};
    cal_cfg.cache.capacity_rows = quick ? 96 : 128;
    cal_cfg.traffic = traffic;
    serve::ServingRuntime cal_rt(std::move(probe), cal_cfg, arch,
                                 base_profile, profiles);
    serve::LoadGenConfig cal_lg;
    cal_lg.clients = 16;
    cal_lg.total_queries = quick ? 32 : 96;
    cal_lg.num_users = users.size();
    cal_lg.user_zipf_s = 0.8;
    cal_lg.seed = 877;
    serve::LoadGenerator cal_gen(cal_lg);
    qps_anchor = cal_rt.run(cal_gen, users).qps();
  }
  std::cout << "  [calibrate] uniform closed-loop capacity: "
            << util::Table::num(qps_anchor, 0) << " QPS\n\n";

  const std::vector<PlacementPoint> placements = {
      {"uniform", false, false},
      {"weighted", true, false},
      {"pinned", false, true},  // uniform ring + hot pins
  };
  const std::vector<LoadPoint> loads = {
      {0.8, 0.0}, {0.8, 0.1}, {1.2, 0.0}, {1.2, 0.1}};

  // One runtime per placement, reused across load points (run() resets
  // clocks/cache; the pinned runtime re-profiles its warmup per run).
  std::vector<std::unique_ptr<serve::ServingRuntime>> runtimes;
  for (const auto& p : placements) {
    auto router = std::make_unique<serve::ShardRouter>(sharded_factory,
                                                       profiles, traffic);
    serve::ServingConfig cfg;
    cfg.k = k;
    cfg.batcher.max_batch = 8;
    cfg.batcher.max_wait = device::Ns{500000.0};
    // Deliberately smaller than the catalog's hot set: ET row traffic must
    // keep reaching the CMA arrays for placement to matter (a buffer that
    // swallows the whole catalog hides the technology difference), and
    // admission churn is what exercises dirty-row eviction flushes.
    cfg.cache.capacity_rows = quick ? 96 : 128;
    cfg.traffic = traffic;
    cfg.overlap = true;
    cfg.self_profile = obs.any();
    if (p.weighted) cfg.shard_map = serve::ShardMap::from_costs(rank_costs);
    if (p.pinned) {
      // Pins over the frequency- and capability-BLIND uniform ring: the
      // warmup-profiled hot rows carry ~all of the Zipf traffic, so the
      // pin layer alone must recover (and beat) what capability weighting
      // buys — the cold tail stays on the uniform ring.
      cfg.placement.enabled = true;
      cfg.placement.hot_rows = quick ? 48 : 96;
      cfg.placement.warmup_queries = quick ? 32 : 64;
      // The rank stage is row fetch + per-candidate DNN, so the greedy
      // balances on the measured whole-stage per-item cost rather than the
      // bare row timings.
      cfg.placement.shard_costs = rank_costs;
    }
    runtimes.push_back(std::make_unique<serve::ServingRuntime>(
        std::move(router), cfg, arch, base_profile, profiles));
  }

  bench::JsonReport json("placement");
  util::Table table("Placement grid (" + std::to_string(queries) +
                    " arrivals/point, open loop @1.2x capacity)");
  table.header({"load", "placement", "QPS", "p50 us", "p99 us", "pin rate",
                "hit rate", "wr hit", "flush KB"});

  bool p99_ok = true, parity_ok = true;
  for (const auto& lp : loads) {
    // id -> topk of the uniform run, for cross-placement parity.
    std::map<std::size_t, std::vector<recsys::ScoredItem>> uniform_topk;
    double uniform_p99 = 0.0, pinned_p99 = 0.0;
    for (std::size_t pi = 0; pi < placements.size(); ++pi) {
      const auto& p = placements[pi];
      serve::LoadGenConfig lg;
      lg.clients = 16;
      lg.total_queries = queries;
      lg.num_users = users.size();
      lg.user_zipf_s = lp.zipf_s;
      lg.seed = 877;  // identical stream for every placement
      lg.update_fraction = lp.update_fraction;
      lg.arrivals = serve::ArrivalProcess::kOpenPoisson;
      lg.rate_qps = 1.2 * qps_anchor;
      serve::LoadGenerator gen(lg);

      serve::TraceLog trace;
      const bool traced = !obs.trace_path.empty() && p.pinned &&
                          &lp == &loads.back();
      if (traced) runtimes[pi]->set_observer(&trace);
      const auto report = runtimes[pi]->run(gen, users);
      if (traced) {
        runtimes[pi]->set_observer(nullptr);
        trace.write(obs.trace_path);
        std::cout << "trace: " << trace.events().size() << " events -> "
                  << obs.trace_path << "\n";
      }
      if (obs.self_profile)
        bench::print_host_spans(load_name(lp) + "/" + p.name,
                                report.host_span_us, std::cout);
      const double p99 = report.p99_latency_ns();
      if (p.name == "uniform") {
        uniform_p99 = p99;
        for (const auto& q : report.queries) uniform_topk[q.id] = q.topk;
      }
      if (p.name == "pinned") {
        pinned_p99 = p99;
        // Placement permutation invariance: identical results per query.
        for (const auto& q : report.queries) {
          const auto it = uniform_topk.find(q.id);
          if (it == uniform_topk.end() || it->second.size() != q.topk.size()) {
            parity_ok = false;
            continue;
          }
          for (std::size_t j = 0; j < q.topk.size(); ++j)
            if (q.topk[j].item != it->second[j].item ||
                q.topk[j].score != it->second[j].score)
              parity_ok = false;
        }
      }

      table.row({load_name(lp), p.name, util::Table::num(report.qps(), 0),
                 util::Table::num(report.p50_latency_ns() * 1e-3, 1),
                 util::Table::num(p99 * 1e-3, 1),
                 util::Table::num(report.pin_hit_rate(), 2),
                 util::Table::num(report.cache.hit_rate(), 3),
                 util::Table::num(report.cache.write_hit_rate(), 2),
                 util::Table::num(
                     static_cast<double>(report.flush_bytes) / 1024.0, 1)});

      auto& rec = json.record(load_name(lp) + "/" + p.name)
                      .set("placement", p.name)
                      .set("zipf_s", lp.zipf_s)
                      .set("update_fraction", lp.update_fraction)
                      .set("queries", queries)
                      .set("rate_qps", lg.rate_qps)
                      .set("k", k)
                      .set("scale", scale)
                      .set("qps", report.qps())
                      .set("p50_us", report.p50_latency_ns() * 1e-3)
                      .set("p95_us", report.p95_latency_ns() * 1e-3)
                      .set("p99_us", p99 * 1e-3)
                      .set("pin_hit_rate", report.pin_hit_rate())
                      .set("pinned_rows",
                           runtimes[pi]->pipeline().shard_map().pinned_rows())
                      .set("cache_hit_rate", report.cache.hit_rate())
                      .set("updates", report.updates)
                      .set("update_write_hit_rate",
                           report.cache.write_hit_rate())
                      .set("flushes",
                           static_cast<std::size_t>(report.cache.flushes))
                      .set("flush_bytes", report.flush_bytes)
                      .set("update_cost_us",
                           report.update_cost.latency.value * 1e-3)
                      .set("makespan_ms", report.makespan.ms());
      for (std::size_t s = 0; s < profiles.size(); ++s)
        rec.set("tech_shard" + std::to_string(s), profiles[s].name)
            .set("util_shard" + std::to_string(s),
                 report.rank_utilization(s));
    }
    if (pinned_p99 >= uniform_p99) {
      p99_ok = false;
      std::cout << "  [accept] " << load_name(lp)
                << ": pinned p99 NOT better than uniform ("
                << util::Table::num(pinned_p99 * 1e-3, 1) << " vs "
                << util::Table::num(uniform_p99 * 1e-3, 1) << " us)\n";
    }
  }
  table.print(std::cout);
  json.write();

  std::cout << "\nReading: the uniform ring sends one quarter of every\n"
               "query's candidates to the slow ReRAM shard; the weighted map\n"
               "shrinks that slice, and the pin layer moves the Zipf-hot\n"
               "candidates (which appear in most queries) onto the FeFET-22\n"
               "rows, so the per-query critical path stops being paced by\n"
               "the slow technology. The update mix shows the write-back\n"
               "buffer absorbing hot-row writes (write hit rate) and paying\n"
               "deferred flushes on eviction.\n";

  if (!parity_ok)
    std::cout << "\nFAIL: placement changed per-query top-k results\n";
  if (!p99_ok && !quick)
    std::cout << "\nFAIL: pinned placement did not strictly beat uniform "
                 "p99 under skew\n";
  // Quick mode keeps the parity gate only (tiny streams make tail
  // percentiles noisy); full mode enforces the p99 acceptance too.
  return parity_ok && (quick || p99_ok) ? 0 : 1;
}
