// Million-user steady-state scaling bench (MARM-style, arXiv:2411.09425):
//
//   Part A — report-parity grid. The engine's optimized host path (state
//     pooling, partition/access scratch reuse, partial-sort top-k, SoA
//     report arena) must produce BIT-IDENTICAL simulated-time reports to
//     the pre-optimization reference path
//     (ServingConfig::reference_host_path) across
//     overlap x {closed, open} x class-count. Any mismatch fails the bench
//     (nonzero exit) — this is the CI gate for the optimization work.
//
//   Part B — cache scaling-law curves. Hit rate / p50 / p99 / QPS versus
//     hot-cache capacity across user populations {1e5, 1e6, 1e7} (reduced
//     in quick mode) with the cuckoo session layer churning, reporting
//     both the modeled metrics and the simulator's own wall-clock
//     (queries per host-second).
//
//   Part C — host speedup A/B. The quick scaling workload runs under both
//     host paths with self-profiling on; the acceptance figure is
//     reference host wall-clock / optimized host wall-clock >= 3x (also a
//     gate), with the two reports again compared field-for-field.
//
//   Part D — steady-state endurance (full mode): a 1e7-user population
//     driven through a ~1e6-slot session table to saturation, where every
//     arrival exercises the bounded cuckoo kick chain (forced evictions,
//     max kick chain <= the configured bound).
//
// The servable is synthetic (hash-scored candidates, ET-row traffic keyed
// by the candidate items) so host-path cost dominates and population
// scale is free — the engine, batcher, cache and session layers under
// test are the real ones. Emits BENCH_scaling.json.
#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdint>
#include <iostream>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include "core/config.hpp"
#include "core/perf_model.hpp"
#include "device/profile.hpp"
#include "harness.hpp"
#include "serve/runtime.hpp"
#include "serve_compare.hpp"
#include "util/table.hpp"

using namespace imars;
using device::Ns;

namespace {

/// splitmix64 — cheap deterministic scoring/item hash.
std::uint64_t mix(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

/// Synthetic single-stage sharded servable: `candidates` hash-derived
/// items per query (rotated by the session's query sequence, so session
/// state is live personalization input), hash scores, and one ET row per
/// candidate for the hot cache — item popularity inherits the user Zipf
/// skew through the per-user candidate sets.
class SynthServable final : public serve::ServableBackend {
 public:
  SynthServable(std::size_t shards, std::size_t candidates,
                std::size_t item_space, recsys::OpCost row_cost,
                recsys::OpCost score_cost)
      : shards_(shards),
        candidates_(candidates),
        item_space_(item_space),
        row_cost_(row_cost),
        score_cost_(score_cost) {
    spec_.stages = {{"score", serve::StageKind::kSharded, {}}};
    spec_.merge_topk = true;
  }

  std::string_view name() const override { return "synth-scaling"; }
  const serve::PipelineSpec& spec() const override { return spec_; }
  std::size_t shards() const override { return shards_; }

  std::vector<std::size_t> initial_items(
      const serve::Request& req) const override {
    std::vector<std::size_t> items(candidates_);
    // A session's candidate window drifts with its query sequence: repeat
    // visitors re-rank a partially fresh slate (per-session state feeding
    // request construction, not just telemetry).
    const std::uint64_t base =
        req.user * 0x9e3779b97f4a7c15ULL + (req.session_seq / 4u);
    for (std::size_t j = 0; j < candidates_; ++j)
      items[j] = mix(base + j) % item_space_;
    return items;
  }

  std::vector<std::size_t> run_replicated(std::size_t, std::size_t,
                                          const serve::Request&,
                                          recsys::StageStats*) override {
    return {};  // the graph has no replicated stage
  }

  std::vector<recsys::ScoredItem> run_sharded(
      std::size_t, std::size_t, const serve::Request& req,
      std::span<const std::size_t> slice, std::size_t k,
      recsys::StageStats* stats) override {
    const double n = static_cast<double>(slice.size());
    auto& et = stats->at(recsys::OpKind::kEtLookup);
    et.latency.value += row_cost_.latency.value * n;
    et.energy.value += row_cost_.energy.value * n;
    auto& dnn = stats->at(recsys::OpKind::kDnn);
    dnn.latency.value += score_cost_.latency.value * n;
    dnn.energy.value += score_cost_.energy.value * n;

    std::vector<recsys::ScoredItem> out;
    out.reserve(slice.size());
    for (std::size_t item : slice)
      out.push_back({item, static_cast<float>(
                               mix(item ^ (req.user << 1)) >> 40)});
    std::sort(out.begin(), out.end(), [](const auto& a, const auto& b) {
      return a.score != b.score ? a.score > b.score : a.item < b.item;
    });
    if (out.size() > k) out.resize(k);
    return out;
  }

  std::vector<serve::RowAccess> accesses(
      std::size_t stage, const serve::Request& req,
      std::span<const std::size_t> slice) const override {
    std::vector<serve::RowAccess> out;
    accesses_into(stage, req, slice, out);
    return out;
  }

  void accesses_into(std::size_t, const serve::Request&,
                     std::span<const std::size_t> slice,
                     std::vector<serve::RowAccess>& out) const override {
    for (std::size_t item : slice)
      out.push_back({0, static_cast<std::uint32_t>(item), false, false});
  }

 private:
  std::size_t shards_;
  std::size_t candidates_;
  std::size_t item_space_;
  recsys::OpCost row_cost_;
  recsys::OpCost score_cost_;
  serve::PipelineSpec spec_;
};

/// Timing constants shared by every fabric the bench builds.
struct SynthCosts {
  recsys::OpCost row;    ///< ET row fetch (the cache-creditable part)
  recsys::OpCost score;  ///< per-candidate scoring work
};

SynthCosts synth_costs(const core::ArchConfig& arch,
                       const device::DeviceProfile& profile) {
  const core::PerfModel model(arch, profile);
  const auto fetch = model.row_fetch();
  return {recsys::OpCost{fetch.latency, fetch.energy},
          recsys::OpCost{Ns{25.0}, device::Pj{40.0}}};
}

struct RunResult {
  serve::ServeReport report;
  double wall_ms = 0.0;        ///< whole run() wall-clock
  serve::SessionTable::Stats sessions;
  std::size_t session_occupancy = 0;
  double session_load = 0.0;
  std::size_t max_kick_chain = 0;
};

RunResult run_synth(const serve::ServingConfig& cfg,
                    const serve::LoadGenConfig& lg,
                    const core::ArchConfig& arch,
                    const device::DeviceProfile& profile,
                    std::size_t candidates) {
  const auto costs = synth_costs(arch, profile);
  serve::ServingRuntime rt(
      std::make_unique<SynthServable>(cfg.shards, candidates, lg.num_users,
                                      costs.row, costs.score),
      cfg, arch, profile);
  serve::LoadGenerator gen(lg);
  const auto t0 = std::chrono::steady_clock::now();
  RunResult r;
  r.report = rt.run(gen);
  r.wall_ms = std::chrono::duration<double, std::milli>(
                  std::chrono::steady_clock::now() - t0)
                  .count();
  if (const auto* s = gen.sessions(); s != nullptr) {
    r.sessions = s->stats();
    r.session_occupancy = s->occupancy();
    r.session_load = s->load_factor();
    r.max_kick_chain = s->max_kick_chain();
  }
  return r;
}

}  // namespace

int main() {
  const bool quick = bench::quick_mode();
  const core::ArchConfig arch;
  const auto profile = device::DeviceProfile::fefet45();
  bench::JsonReport json("scaling");

  std::cout << "=== Million-user steady state: host-path parity + cache "
               "scaling laws ===\n\n";

  // --- Part A: report-parity grid ----------------------------------------
  // reference_host_path re-enacts the pre-optimization allocation pattern;
  // every simulated figure must match the pooled path bit-for-bit across
  // overlap x arrival-process x class-count.
  const std::size_t grid_queries = quick ? 160 : 480;
  const std::size_t grid_users = 20000;
  bool parity_ok = true;

  // Calibrate an open-loop rate once from a closed-loop run (optimized
  // path; the rate only needs to be identical across each compared pair).
  double open_rate = 0.0;
  {
    serve::ServingConfig cfg;
    cfg.shards = 4;
    cfg.k = 8;
    cfg.batcher.max_batch = 16;
    cfg.cache.capacity_rows = 2048;
    serve::LoadGenConfig lg;
    lg.clients = 16;
    lg.total_queries = grid_queries;
    lg.num_users = grid_users;
    lg.seed = 11;
    const auto cal = run_synth(cfg, lg, arch, profile, 24);
    open_rate = cal.report.qps();
  }

  util::Table parity_table("Report-parity grid (reference vs optimized)");
  parity_table.header({"cell", "queries", "batches", "identical"});
  // mode 0 = phased, 1 = async overlap, 2 = overlap + speculative dispatch
  // windows (the regime where the event loop dispatches ahead of pending
  // completions under a provable horizon — both host paths must still
  // agree bit-for-bit).
  for (const int mode : {0, 1, 2})
    for (const bool open : {false, true})
      for (const std::size_t classes : {std::size_t{1}, std::size_t{2}}) {
        const bool overlap = mode >= 1;
        serve::ServingConfig cfg;
        cfg.shards = 4;
        cfg.k = 8;
        cfg.batcher.max_batch = 16;
        cfg.cache.capacity_rows = 2048;
        cfg.overlap = overlap;
        cfg.speculate = mode == 2;
        if (classes == 2) {
          serve::QosClassConfig hi;
          hi.name = "interactive";
          hi.max_batch = 8;
          hi.max_wait = Ns{100000.0};
          hi.weight = 2.0;
          serve::QosClassConfig lo;
          lo.name = "bulk";
          lo.max_batch = 32;
          lo.max_wait = Ns{400000.0};
          lo.weight = 1.0;
          cfg.qos.classes = {hi, lo};
        }
        serve::LoadGenConfig lg;
        lg.clients = 16;
        lg.total_queries = grid_queries;
        lg.num_users = grid_users;
        lg.seed = 11;
        if (open) {
          lg.arrivals = serve::ArrivalProcess::kOpenPoisson;
          lg.rate_qps = open_rate;
        }
        if (classes == 2) lg.class_mix = {0.6, 0.4};
        // Session layer on in half the cells (keyed off overlap so the
        // grid also proves parity under session-stamped requests).
        if (overlap) {
          lg.session_mode = true;
          lg.session_capacity = 4096;
          lg.session_churn = 0.01;
        }
        // Closed-loop speculation only has room to run ahead when clients
        // think between queries (the think time extends the safe horizon).
        if (mode == 2 && !open) lg.think = Ns{40000.0};

        auto opt = run_synth(cfg, lg, arch, profile, 24);
        cfg.reference_host_path = true;
        auto ref = run_synth(cfg, lg, arch, profile, 24);

        const std::string cell =
            std::string(mode == 2 ? "spec" : (overlap ? "overlap" : "phased")) +
            (open ? ":open" : ":closed") + ":c" + std::to_string(classes);
        const bool same = bench::reports_equal(opt.report, ref.report, cell);
        parity_ok = parity_ok && same;
        parity_table.row({cell, std::to_string(opt.report.size()),
                          std::to_string(opt.report.batches),
                          same ? "yes" : "NO"});
        json.record("parity:" + cell)
            .set("overlap", overlap ? 1 : 0)
            .set("arrivals", open ? "poisson" : "closed")
            .set("classes", classes)
            .set("queries", opt.report.size())
            .set("identical", same ? 1 : 0);
      }
  parity_table.print(std::cout);
  std::cout << (parity_ok ? "parity grid: all cells bit-identical\n\n"
                          : "parity grid: MISMATCH (see above)\n\n");

  // --- Part B: cache scaling-law curves ----------------------------------
  // Hit rate / latency / QPS versus hot-cache capacity across population
  // scales, with the session layer churning. Streaming reports bound
  // memory, so the curve points scale to 1e7 users without retaining
  // per-query records.
  const std::vector<std::size_t> populations =
      quick ? std::vector<std::size_t>{100000, 1000000}
            : std::vector<std::size_t>{100000, 1000000, 10000000};
  const std::vector<std::size_t> capacities =
      quick ? std::vector<std::size_t>{2048, 16384}
            : std::vector<std::size_t>{2048, 16384, 131072};
  const std::size_t curve_queries = quick ? 4000 : 60000;

  util::Table curve_table("Cache scaling laws (session churn on)");
  curve_table.header({"users", "cache rows", "hit rate", "p50 us", "p99 us",
                      "QPS", "sess hit", "wall ms", "q/host-s"});
  for (const std::size_t pop : populations)
    for (const std::size_t cap : capacities) {
      serve::ServingConfig cfg;
      cfg.shards = 4;
      cfg.k = 8;
      cfg.batcher.max_batch = 32;
      cfg.cache.capacity_rows = cap;
      cfg.overlap = true;
      cfg.streaming_report = true;
      serve::LoadGenConfig lg;
      lg.clients = 32;
      lg.total_queries = curve_queries;
      lg.num_users = pop;
      lg.user_zipf_s = 0.9;
      lg.seed = 23;
      lg.arrivals = serve::ArrivalProcess::kOpenPoisson;
      lg.rate_qps = open_rate;
      lg.session_mode = true;
      lg.session_capacity = std::max<std::size_t>(pop / 10, 4096);
      lg.session_churn = 0.01;

      const auto r = run_synth(cfg, lg, arch, profile, 24);
      const double qphs =
          r.wall_ms > 0.0
              ? static_cast<double>(r.report.size()) / (r.wall_ms * 1e-3)
              : 0.0;
      curve_table.row(
          {std::to_string(pop), std::to_string(cap),
           util::Table::num(r.report.cache.hit_rate(), 3),
           util::Table::num(r.report.p50_latency_ns() * 1e-3, 1),
           util::Table::num(r.report.p99_latency_ns() * 1e-3, 1),
           util::Table::num(r.report.qps(), 0),
           util::Table::num(r.sessions.hit_rate(), 3),
           util::Table::num(r.wall_ms, 1), util::Table::num(qphs, 0)});
      json.record("scale:u" + std::to_string(pop) + ":c" +
                  std::to_string(cap))
          .set("users", pop)
          .set("cache_rows", cap)
          .set("queries", r.report.size())
          .set("cache_hit_rate", r.report.cache.hit_rate())
          .set("p50_us", r.report.p50_latency_ns() * 1e-3)
          .set("p99_us", r.report.p99_latency_ns() * 1e-3)
          .set("qps", r.report.qps())
          .set("session_hit_rate", r.sessions.hit_rate())
          .set("session_arrivals",
               static_cast<std::size_t>(r.sessions.arrivals))
          .set("session_departures",
               static_cast<std::size_t>(r.sessions.departures))
          .set("session_occupancy", r.session_occupancy)
          .set("wall_ms", r.wall_ms)
          .set("queries_per_host_second", qphs);
    }
  curve_table.print(std::cout);

  // --- Part C: host speedup A/B ------------------------------------------
  // The same scaling workload under both host paths with self-profiling:
  // the acceptance figure is reference/optimized profiled host wall-clock.
  const std::size_t ab_queries = quick ? 6000 : 30000;
  serve::ServingConfig ab_cfg;
  ab_cfg.shards = 4;
  ab_cfg.k = 8;
  ab_cfg.batcher.max_batch = 32;
  ab_cfg.cache.capacity_rows = 16384;
  ab_cfg.overlap = true;
  ab_cfg.self_profile = true;
  serve::LoadGenConfig ab_lg;
  ab_lg.clients = 32;
  ab_lg.total_queries = ab_queries;
  ab_lg.num_users = 100000;
  ab_lg.seed = 23;
  ab_lg.arrivals = serve::ArrivalProcess::kOpenPoisson;
  ab_lg.rate_qps = open_rate;
  ab_lg.session_mode = true;
  ab_lg.session_capacity = 16384;
  ab_lg.session_churn = 0.01;

  // Untimed warmup: the A/B pair runs back to back, but the first of the
  // two otherwise pays for whatever state the scaling sweep above left
  // behind (allocator arenas, page cache, CPU clocks) — measured as a 4x
  // inflation of the first run's dispatch span in full mode. One throwaway
  // run equalizes the starting conditions for both timed runs.
  run_synth(ab_cfg, ab_lg, arch, profile, 24);
  auto ab_opt = run_synth(ab_cfg, ab_lg, arch, profile, 24);
  ab_cfg.reference_host_path = true;
  auto ab_ref = run_synth(ab_cfg, ab_lg, arch, profile, 24);
  const bool ab_same =
      bench::reports_equal(ab_opt.report, ab_ref.report, "speedup A/B");
  parity_ok = parity_ok && ab_same;

  const double opt_us = ab_opt.report.host_total_us();
  const double ref_us = ab_ref.report.host_total_us();
  const double speedup = opt_us > 0.0 ? ref_us / opt_us : 0.0;

  util::Table ab_table("Host hot-path wall-clock (self-profiled spans, " +
                       std::to_string(ab_queries) + " queries)");
  ab_table.header({"span", "reference us", "optimized us", "speedup"});
  for (const auto& [name, r_us] : ab_ref.report.host_span_us) {
    double o_us = 0.0;
    for (const auto& [oname, ous] : ab_opt.report.host_span_us)
      if (oname == name) o_us = ous;
    ab_table.row({name, util::Table::num(r_us, 0), util::Table::num(o_us, 0),
                  o_us > 0.0 ? util::Table::factor(r_us / o_us) : "-"});
  }
  ab_table.row({"TOTAL", util::Table::num(ref_us, 0),
                util::Table::num(opt_us, 0), util::Table::factor(speedup)});
  ab_table.print(std::cout);

  auto& ab_json = json.record("host_speedup");
  ab_json.set("queries", ab_queries)
      .set("reference_host_us", ref_us)
      .set("optimized_host_us", opt_us)
      .set("host_speedup", speedup)
      .set("reports_identical", ab_same ? 1 : 0)
      .set("reference_wall_ms", ab_ref.wall_ms)
      .set("optimized_wall_ms", ab_opt.wall_ms);
  for (const auto& [name, us] : ab_ref.report.host_span_us)
    ab_json.set("ref_" + name + "_us", us);
  for (const auto& [name, us] : ab_opt.report.host_span_us)
    ab_json.set("opt_" + name + "_us", us);

  // --- Part D: steady-state endurance (full mode) -------------------------
  // A 1e7-user population through a ~1e6-slot session table until the
  // cuckoo layer saturates: near-capacity occupancy, forced evictions
  // absorbing the overflow, kick chains still bounded.
  if (!quick) {
    serve::ServingConfig cfg;
    cfg.shards = 4;
    cfg.k = 8;
    cfg.batcher.max_batch = 32;
    cfg.cache.capacity_rows = 131072;
    cfg.overlap = true;
    cfg.streaming_report = true;
    serve::LoadGenConfig lg;
    lg.clients = 32;
    lg.total_queries = 3000000;
    lg.num_users = 10000000;
    lg.user_zipf_s = 0.9;
    lg.seed = 31;
    lg.arrivals = serve::ArrivalProcess::kOpenPoisson;
    lg.rate_qps = open_rate;
    lg.session_mode = true;
    lg.session_capacity = 1000000;
    lg.session_max_kicks = 32;
    lg.session_churn = 0.002;

    const auto r = run_synth(cfg, lg, arch, profile, 24);
    const double qphs =
        r.wall_ms > 0.0
            ? static_cast<double>(r.report.size()) / (r.wall_ms * 1e-3)
            : 0.0;
    std::cout << "\nsteady state (1e7 users, 1e6-slot session table, "
              << r.report.size() << " queries):\n  live sessions "
              << r.session_occupancy << " (load "
              << util::Table::num(r.session_load, 3) << "), arrivals "
              << r.sessions.arrivals << ", departures "
              << r.sessions.departures << " (forced "
              << r.sessions.forced_evictions << "), max kick chain "
              << r.max_kick_chain << "\n  session hit rate "
              << util::Table::num(r.sessions.hit_rate(), 3)
              << ", cache hit rate "
              << util::Table::num(r.report.cache.hit_rate(), 3) << ", p99 "
              << util::Table::num(r.report.p99_latency_ns() * 1e-3, 1)
              << " us, wall " << util::Table::num(r.wall_ms * 1e-3, 1)
              << " s (" << util::Table::num(qphs, 0) << " q/host-s)\n";
    json.record("steady_state")
        .set("users", lg.num_users)
        .set("queries", r.report.size())
        .set("session_slots", lg.session_capacity)
        .set("session_occupancy", r.session_occupancy)
        .set("session_load", r.session_load)
        .set("session_hit_rate", r.sessions.hit_rate())
        .set("session_arrivals",
             static_cast<std::size_t>(r.sessions.arrivals))
        .set("session_departures",
             static_cast<std::size_t>(r.sessions.departures))
        .set("forced_evictions",
             static_cast<std::size_t>(r.sessions.forced_evictions))
        .set("max_kick_chain", r.max_kick_chain)
        .set("cache_hit_rate", r.report.cache.hit_rate())
        .set("p99_us", r.report.p99_latency_ns() * 1e-3)
        .set("qps", r.report.qps())
        .set("wall_ms", r.wall_ms)
        .set("queries_per_host_second", qphs);
  }

  json.write();

  const bool speedup_ok = speedup >= 3.0;
  std::cout << "\nhost speedup (reference / optimized): "
            << util::Table::factor(speedup)
            << (speedup_ok ? " (>= 3x acceptance met)"
                           : " (BELOW the 3x acceptance bar)")
            << "\nparity: "
            << (parity_ok ? "all compared reports bit-identical"
                          : "MISMATCH — optimization changed reports")
            << "\n";
  return parity_ok && speedup_ok ? 0 : 1;
}
