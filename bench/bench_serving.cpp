// Serving-runtime benchmark (extension): batched + sharded throughput
// scaling over the functional iMARS machine, with the frequency-aware
// hot-embedding cache.
//
// Ablation grid against the serial single-backend baseline on the same
// synthetic Zipf workload:
//   serial      1 shard,  batch 1, 1 client, no cache  (the seed's mode)
//   batched     1 shard,  batch 8, closed loop, no cache
//   sharded     4 shards, batch 1, closed loop, no cache
//   full        4 shards, batch 8, closed loop, no cache
//   full+cache  4 shards, batch 8, closed loop, 4096-row hot cache
//
// Emits BENCH_serving.json records (bench/harness.hpp JsonReport).
#include <chrono>
#include <iostream>
#include <string>
#include <string_view>

#include "core/backend_factory.hpp"
#include "core/calibration.hpp"
#include "harness.hpp"
#include "serve/runtime.hpp"
#include "serve/trace.hpp"
#include "serve_compare.hpp"
#include "util/table.hpp"

using namespace imars;

namespace {

struct GridPoint {
  std::string name;
  std::size_t shards;
  std::size_t max_batch;
  std::size_t clients;
  std::size_t cache_rows;
};

}  // namespace

int main(int argc, char** argv) {
  // --trace <file>: export the saturated open-loop point as Chrome
  // trace-event JSON (pure observation — every figure stays bit-identical).
  std::string trace_path;
  for (int i = 1; i < argc; ++i)
    if (std::string_view(argv[i]) == "--trace" && i + 1 < argc)
      trace_path = argv[++i];

  const bool quick = bench::quick_mode();
  const double scale = quick ? 0.04 : 0.12;
  const std::size_t queries = quick ? 24 : 96;
  const std::size_t k = 10;

  std::cout << "=== Extension: concurrent serving runtime ===\n"
            << "(synthetic MovieLens at scale " << scale << ", " << queries
            << " Zipf-skewed queries per configuration)\n\n";

  auto ml = bench::make_movielens(scale, quick ? 2 : 3, 1);
  std::vector<recsys::UserContext> users;
  for (std::size_t u = 0; u < ml.ds->num_users(); ++u)
    users.push_back(ml.model->make_context(*ml.ds, u));
  std::vector<recsys::UserContext> calib(users.begin(),
                                         users.begin() + 8);

  const core::ArchConfig arch;
  const auto profile = device::DeviceProfile::fefet45();
  core::ImarsBackendConfig icfg;
  icfg.timing = core::TimingMode::kWorstCaseSameArray;
  icfg.max_candidates = core::kEndToEndCandidates;
  icfg.nns_radius = 64;
  const auto factory =
      core::imars_backend_factory(*ml.model, arch, profile, icfg, calib);

  const std::vector<GridPoint> grid = {
      {"serial", 1, 1, 1, 0},          {"batched", 1, 8, 16, 0},
      {"sharded", 4, 1, 16, 0},        {"full", 4, 8, 16, 0},
      {"full+cache", 4, 8, 16, 4096},
  };

  bench::JsonReport json("serving");
  util::Table table("Serving runtime (" + std::to_string(queries) +
                    " queries, k=" + std::to_string(k) + ")");
  table.header({"config", "QPS", "p50 us", "p95 us", "p99 us", "batch",
                "hit rate", "max rank util"});

  double qps_serial = 0.0, qps_full_cache = 0.0;
  serve::ServeReport fullcache;
  for (const auto& g : grid) {
    serve::ServingConfig cfg;
    cfg.shards = g.shards;
    cfg.k = k;
    cfg.batcher.max_batch = g.max_batch;
    cfg.batcher.max_wait = device::Ns{500000.0};  // 500 us deadline
    cfg.cache.capacity_rows = g.cache_rows;
    cfg.traffic.filter_features = ml.model->filter_features();
    cfg.traffic.rank_features = ml.model->rank_features();
    serve::ServingRuntime rt(factory, cfg, arch, profile);

    serve::LoadGenConfig lg;
    lg.clients = g.clients;
    lg.total_queries = queries;
    lg.num_users = users.size();
    lg.user_zipf_s = 0.9;
    lg.seed = 77;  // same workload for every configuration
    serve::LoadGenerator gen(lg);

    const auto report = rt.run(gen, users);
    double max_util = 0.0;
    for (std::size_t s = 0; s < g.shards; ++s)
      max_util = std::max(max_util, report.rank_utilization(s));

    if (g.name == "serial") qps_serial = report.qps();
    if (g.name == "full+cache") {
      qps_full_cache = report.qps();
      fullcache = report;
    }

    table.row({g.name, util::Table::num(report.qps(), 0),
               util::Table::num(report.p50_latency_ns() * 1e-3, 1),
               util::Table::num(report.p95_latency_ns() * 1e-3, 1),
               util::Table::num(report.p99_latency_ns() * 1e-3, 1),
               util::Table::num(report.mean_batch_size(), 1),
               util::Table::num(report.cache.hit_rate(), 3),
               util::Table::num(max_util, 2)});

    json.record(g.name)
        .set("shards", g.shards)
        .set("max_batch", g.max_batch)
        .set("clients", g.clients)
        .set("cache_rows", g.cache_rows)
        .set("queries", queries)
        .set("k", k)
        .set("zipf_s", 0.9)
        .set("scale", scale)
        .set("qps", report.qps())
        .set("p50_us", report.p50_latency_ns() * 1e-3)
        .set("p95_us", report.p95_latency_ns() * 1e-3)
        .set("p99_us", report.p99_latency_ns() * 1e-3)
        .set("mean_latency_us", report.mean_latency_ns() * 1e-3)
        .set("mean_batch", report.mean_batch_size())
        .set("batches", report.batches)
        .set("cache_hit_rate", report.cache.hit_rate())
        .set("cache_hits", static_cast<std::size_t>(report.cache.hits))
        .set("mean_energy_pj", report.mean_energy_pj())
        .set("max_rank_util", max_util)
        .set("makespan_ms", report.makespan.ms());
  }
  table.print(std::cout);

  // --- Open-loop arrivals: saturation / tail-latency knee -----------------
  // Poisson arrivals at fractions of the closed-loop capacity; past 1.0x
  // the queues grow without bound and the tail explodes (the closed loop
  // cannot produce this regime — it self-throttles to the fabric). The
  // stream is longer than the closed-loop grid's so the backlog has time
  // to accumulate past the knee.
  const std::size_t open_queries = queries * 4;
  std::cout << "\n";
  util::Table open_table("Open-loop Poisson arrivals (full+cache fabric, "
                         "overlap on)");
  open_table.header({"offered load", "rate qps", "QPS", "p50 us", "p99 us",
                     "mean batch"});
  serve::ServingConfig open_cfg;
  open_cfg.shards = 4;
  open_cfg.k = k;
  open_cfg.batcher.max_batch = 8;
  open_cfg.batcher.max_wait = device::Ns{500000.0};
  open_cfg.cache.capacity_rows = 4096;
  open_cfg.traffic.filter_features = ml.model->filter_features();
  open_cfg.traffic.rank_features = ml.model->rank_features();
  open_cfg.overlap = true;  // open loop: batches overlap on worker threads
  open_cfg.self_profile = !trace_path.empty();  // host spans ride along
  // One fabric for the whole sweep: run() resets clocks/usage/cache, so
  // only the offered rate varies between points.
  serve::ServingRuntime open_rt(factory, open_cfg, arch, profile);
  serve::TraceLog trace;
  for (const double frac : {0.6, 0.9, 1.2}) {
    serve::LoadGenConfig lg;
    lg.clients = 16;
    lg.total_queries = open_queries;
    lg.num_users = users.size();
    lg.user_zipf_s = 0.9;
    lg.seed = 77;
    lg.arrivals = serve::ArrivalProcess::kOpenPoisson;
    lg.rate_qps = frac * qps_full_cache;
    serve::LoadGenerator gen(lg);

    // Trace the saturated point only: each run() resets the simulated
    // clock, so spans from two sweep points would overlap on one track.
    const bool traced = !trace_path.empty() && frac == 1.2;
    if (traced) open_rt.set_observer(&trace);
    const auto report = open_rt.run(gen, users);
    if (traced) {
      open_rt.set_observer(nullptr);
      trace.write(trace_path);
      std::cout << "trace: " << trace.events().size() << " events -> "
                << trace_path << "\n";
    }
    const std::string name =
        "open@" + util::Table::num(frac, 1) + "x";
    open_table.row({name, util::Table::num(lg.rate_qps, 0),
                    util::Table::num(report.qps(), 0),
                    util::Table::num(report.p50_latency_ns() * 1e-3, 1),
                    util::Table::num(report.p99_latency_ns() * 1e-3, 1),
                    util::Table::num(report.mean_batch_size(), 1)});
    json.record(name)
        .set("shards", open_cfg.shards)
        .set("max_batch", open_cfg.batcher.max_batch)
        .set("cache_rows", open_cfg.cache.capacity_rows)
        .set("queries", open_queries)
        .set("k", k)
        .set("arrivals", "poisson")
        .set("offered_frac", frac)
        .set("rate_qps", lg.rate_qps)
        .set("qps", report.qps())
        .set("p50_us", report.p50_latency_ns() * 1e-3)
        .set("p95_us", report.p95_latency_ns() * 1e-3)
        .set("p99_us", report.p99_latency_ns() * 1e-3)
        .set("mean_batch", report.mean_batch_size())
        .set("cache_hit_rate", report.cache.hit_rate())
        .set("makespan_ms", report.makespan.ms());
  }
  open_table.print(std::cout);

  // --- Closed-loop speculation A/B: host wall-clock with overlap on ------
  // The closed loop used to force lockstep collection (the next arrival
  // depends on a pending completion). Speculative dispatch windows prove a
  // horizon from the inflight batches' dispatch times, the pipeline's
  // structural service floor and the clients' think time, and keep
  // dispatching inside it. Simulated reports must stay bit-identical to
  // phased mode; the win is host wall-clock (workers compute batch b while
  // the host batches b+1).
  double service_sum = 0.0;
  for (const auto& q : fullcache.queries)
    service_sum += (q.complete - q.dispatch).value;
  const device::Ns think{fullcache.size() > 0
                             ? service_sum / double(fullcache.size())
                             : 0.0};
  const std::size_t spec_queries = queries * 4;

  serve::ServingConfig spec_cfg;
  spec_cfg.shards = 4;
  spec_cfg.k = k;
  spec_cfg.batcher.max_batch = 8;
  spec_cfg.batcher.max_wait = device::Ns{500000.0};
  spec_cfg.cache.capacity_rows = 4096;
  spec_cfg.traffic.filter_features = ml.model->filter_features();
  spec_cfg.traffic.rank_features = ml.model->rank_features();

  serve::LoadGenConfig spec_lg;
  spec_lg.clients = 16;
  spec_lg.total_queries = spec_queries;
  spec_lg.num_users = users.size();
  spec_lg.user_zipf_s = 0.9;
  spec_lg.seed = 77;
  spec_lg.think = think;  // think time extends the provable horizon

  auto timed_run = [&](const serve::ServingConfig& cfg, double& wall_ms) {
    serve::ServingRuntime rt(factory, cfg, arch, profile);
    serve::LoadGenerator gen(spec_lg);
    const auto t0 = std::chrono::steady_clock::now();
    const auto report = rt.run(gen, users);
    wall_ms = std::chrono::duration<double, std::milli>(
                  std::chrono::steady_clock::now() - t0)
                  .count();
    return report;
  };

  double phased_ms = 0.0, spec_ms = 0.0;
  const auto cl_phased = timed_run(spec_cfg, phased_ms);
  spec_cfg.overlap = true;
  spec_cfg.speculate = true;
  const auto cl_spec = timed_run(spec_cfg, spec_ms);
  const bool cl_same =
      bench::reports_equal(cl_spec, cl_phased, "closed-loop speculation");
  const double spec_speedup = spec_ms > 0.0 ? phased_ms / spec_ms : 0.0;

  std::cout << "\n";
  util::Table spec_table("Closed-loop speculative dispatch (" +
                         std::to_string(spec_queries) + " queries, think " +
                         util::Table::num(think.us(), 1) + " us)");
  spec_table.header({"mode", "wall ms", "proceeds", "stalls", "peak inflight",
                     "identical"});
  auto spec_row = [&](const std::string& name, const serve::ServeReport& r,
                      double wall_ms, bool same) {
    spec_table.row({name, util::Table::num(wall_ms, 1),
                    std::to_string(r.spec.window_proceeds),
                    std::to_string(r.spec.window_stalls),
                    std::to_string(r.spec.peak_inflight),
                    same ? "yes" : "NO"});
    json.record(name)
        .set("queries", spec_queries)
        .set("think_us", think.us())
        .set("wall_ms", wall_ms)
        .set("window_proceeds",
             static_cast<std::size_t>(r.spec.window_proceeds))
        .set("window_stalls", static_cast<std::size_t>(r.spec.window_stalls))
        .set("peak_inflight", r.spec.peak_inflight)
        .set("reports_identical", same ? 1 : 0)
        .set("qps", r.qps())
        .set("makespan_ms", r.makespan.ms());
  };
  spec_row("spec_closed_phased", cl_phased, phased_ms, cl_same);
  spec_row("spec_closed_overlap", cl_spec, spec_ms, cl_same);
  spec_table.print(std::cout);
  std::cout << "\nclosed-loop host wall-clock (phased / speculative): "
            << util::Table::factor(spec_speedup) << ", simulated reports "
            << (cl_same ? "bit-identical" : "MISMATCH (see above)") << "\n";
  json.record("spec_closed_speedup")
      .set("phased_wall_ms", phased_ms)
      .set("speculative_wall_ms", spec_ms)
      .set("host_speedup", spec_speedup)
      .set("reports_identical", cl_same ? 1 : 0);
  json.write();

  const double speedup = qps_serial > 0.0 ? qps_full_cache / qps_serial : 0.0;
  std::cout << "\nbatched+sharded+cached speedup over serial baseline: "
            << util::Table::factor(speedup) << "\n"
            << "Reading: batching keeps both pipeline stages occupied\n"
               "(filter of query q+1 overlaps ranking of query q), sharding\n"
               "splits the per-candidate ranking loop across replicas, and\n"
               "the hot-embedding cache serves Zipf-hot UIET/ItET rows from\n"
               "the periphery buffer instead of the CMA arrays.\n";
  return (speedup > 2.0 && cl_same) ? 0 : 1;
}
