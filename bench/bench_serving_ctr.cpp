// Criteo/DLRM serving benchmark (extension): the ranking-only CTR workload
// through the same batcher/cache/staged-pipeline/report path as the
// two-stage YouTubeDNN bench (ROADMAP "larger-scale serving bench" item).
//
// The fabric is deliberately *heterogeneous* — mixed device technologies
// behind one runtime — to exercise capability-weighted placement:
//   serial      1 FeFET-45 shard, closed loop (the capacity anchor)
//   uniform     4 shards (FeFET-45, FeFET-22, ReRAM-45 x2), modulo split,
//               open-loop Poisson at 1.5x aggregate capacity, overlap on
//   weighted    same fabric + load, ShardMap weighted by measured score cost
//   weighted+$  weighted + 8192-row hot-embedding cache
//
// Emits BENCH_serving_ctr.json records (bench/harness.hpp JsonReport) with
// per-shard utilization and the capability shares.
#include <iostream>

#include "core/backend_factory.hpp"
#include "harness.hpp"
#include "serve/runtime.hpp"
#include "serve/servable_ctr.hpp"
#include "serve/trace.hpp"
#include "util/table.hpp"

using namespace imars;

namespace {

struct GridPoint {
  std::string name;
  std::size_t shards;
  bool weighted;
  std::size_t cache_rows;
};

}  // namespace

int main(int argc, char** argv) {
  // --self-profile / --trace <file>: observation only (harness.hpp); the
  // trace exports the most loaded point, weighted+cache.
  const auto obs = bench::parse_observe_flags(argc, argv);
  const bool quick = bench::quick_mode();
  const std::size_t train_samples = quick ? 800 : 4000;
  const std::size_t queries = quick ? 32 : 128;
  const std::size_t population = quick ? 128 : 512;

  std::cout << "=== Extension: CTR (DLRM/Criteo) serving runtime ===\n"
            << "(synthetic Criteo, " << queries
            << " Zipf-skewed impressions per configuration, mixed-technology "
               "fabric)\n\n";

  auto cr = bench::make_criteo(train_samples, quick ? 1 : 2);
  std::vector<data::CriteoSample> samples;
  for (std::size_t i = 0; i < std::min(population, cr.ds->size()); ++i)
    samples.push_back(cr.ds->sample(i));
  std::vector<data::CriteoSample> calib(samples.begin(), samples.begin() + 8);

  const core::ArchConfig arch;
  const auto base_profile = device::DeviceProfile::fefet45();
  const auto factory = core::imars_ctr_backend_factory(
      *cr.model, arch, core::TimingMode::kWorstCaseSameArray, calib);

  // Paper-baseline shard first (the serial point), then one fast FeFET-22
  // shard and two slow ReRAM shards.
  const std::vector<device::DeviceProfile> fabric = {
      device::DeviceProfile::fefet45(), device::DeviceProfile::fefet22(),
      device::DeviceProfile::reram45(), device::DeviceProfile::reram45()};

  const std::vector<GridPoint> grid = {
      {"serial", 1, false, 0},
      {"uniform", 4, false, 0},
      {"weighted", 4, true, 0},
      {"weighted+cache", 4, true, 8192},
  };

  bench::JsonReport json("serving_ctr");
  util::Table table("CTR serving (" + std::to_string(queries) +
                    " impressions)");
  table.header({"config", "QPS", "p50 us", "p95 us", "p99 us", "hit rate",
                "util s0..s3"});

  double qps_serial = 0.0, qps_uniform = 0.0, qps_weighted = 0.0;
  for (const auto& g : grid) {
    std::vector<device::DeviceProfile> profiles(
        fabric.begin(), fabric.begin() + g.shards);
    auto servable =
        std::make_unique<serve::CtrServable>(factory, profiles);
    servable->bind_samples(samples);

    serve::ServingConfig cfg;
    cfg.k = 1;
    cfg.batcher.max_batch = 16;
    cfg.batcher.max_wait = device::Ns{500000.0};  // 500 us deadline
    cfg.cache.capacity_rows = g.cache_rows;
    if (g.weighted) {
      // Capability from each shard's measured per-impression score cost.
      cfg.shard_map = serve::ShardMap::from_costs(
          servable->probe_score_cost(samples.front()));
    }
    // The sharded points are driven open-loop above fabric capacity (with
    // cross-batch overlap), so QPS measures what the fabric can actually
    // sustain — a closed loop would self-throttle to the client count and
    // mask the placement difference.
    const bool open = g.shards > 1 && qps_serial > 0.0;
    cfg.overlap = open;
    cfg.self_profile = obs.any();
    serve::ServingRuntime rt(std::move(servable), cfg, arch, base_profile,
                             profiles);

    serve::LoadGenConfig lg;
    lg.clients = g.shards == 1 ? 1 : 16;
    lg.total_queries = queries;
    lg.num_users = samples.size();
    lg.user_zipf_s = 0.9;
    lg.seed = 177;  // same impression stream for every configuration
    if (open) {
      lg.arrivals = serve::ArrivalProcess::kOpenPoisson;
      lg.rate_qps = 1.5 * static_cast<double>(g.shards) * qps_serial;
    }
    serve::LoadGenerator gen(lg);

    serve::TraceLog trace;
    const bool traced =
        !obs.trace_path.empty() && g.name == "weighted+cache";
    if (traced) rt.set_observer(&trace);
    const auto report = rt.run(gen);
    if (traced) {
      rt.set_observer(nullptr);
      trace.write(obs.trace_path);
      std::cout << "trace: " << trace.events().size() << " events -> "
                << obs.trace_path << "\n";
    }
    if (obs.self_profile)
      bench::print_host_spans(g.name, report.host_span_us, std::cout);
    if (g.name == "serial") qps_serial = report.qps();
    if (g.name == "uniform") qps_uniform = report.qps();
    if (g.name == "weighted") qps_weighted = report.qps();

    std::string utils;
    for (std::size_t s = 0; s < g.shards; ++s)
      utils += (s ? " " : "") + util::Table::num(report.rank_utilization(s), 2);
    table.row({g.name, util::Table::num(report.qps(), 0),
               util::Table::num(report.p50_latency_ns() * 1e-3, 1),
               util::Table::num(report.p95_latency_ns() * 1e-3, 1),
               util::Table::num(report.p99_latency_ns() * 1e-3, 1),
               util::Table::num(report.cache.hit_rate(), 3), utils});

    auto& rec = json.record(g.name)
                    .set("shards", g.shards)
                    .set("arrivals", open ? "poisson" : "closed")
                    .set("rate_qps", open ? lg.rate_qps : 0.0)
                    .set("weighted", g.weighted ? 1 : 0)
                    .set("cache_rows", g.cache_rows)
                    .set("queries", queries)
                    .set("population", samples.size())
                    .set("zipf_s", 0.9)
                    .set("qps", report.qps())
                    .set("p50_us", report.p50_latency_ns() * 1e-3)
                    .set("p95_us", report.p95_latency_ns() * 1e-3)
                    .set("p99_us", report.p99_latency_ns() * 1e-3)
                    .set("mean_batch", report.mean_batch_size())
                    .set("cache_hit_rate", report.cache.hit_rate())
                    .set("mean_energy_pj", report.mean_energy_pj())
                    .set("makespan_ms", report.makespan.ms());
    for (std::size_t s = 0; s < g.shards; ++s) {
      rec.set("tech_shard" + std::to_string(s), profiles[s].name)
          .set("util_shard" + std::to_string(s), report.rank_utilization(s));
      if (g.weighted)
        rec.set("share_shard" + std::to_string(s),
                rt.pipeline().shard_map().share(s));
    }
  }
  table.print(std::cout);
  json.write();

  const double scaling = qps_serial > 0.0 ? qps_weighted / qps_serial : 0.0;
  const double vs_uniform =
      qps_uniform > 0.0 ? qps_weighted / qps_uniform : 0.0;
  std::cout << "\nweighted sharding over serial: "
            << util::Table::factor(scaling)
            << "; weighted over uniform split on the mixed fabric: "
            << util::Table::factor(vs_uniform) << "\n"
            << "Reading: DLRM scoring shards by impression, so throughput\n"
               "scales with the shard count; on a mixed-technology fabric\n"
               "the capability-weighted ShardMap routes proportionally more\n"
               "of the stream to the FeFET-22 shard and keeps the slow\n"
               "ReRAM shards off the critical path.\n";
  return scaling > 1.5 && vs_uniform > 0.95 ? 0 : 1;
}
