// Stage-DAG serving benchmark (extension): tower-parallel CTR vs the same
// three stages linearized (ISSUE 4 / ROADMAP "deeper stage graphs").
//
// DLRM's serving flow is a graph: the dense bottom-MLP tower runs on the
// crossbars while the 26 embedding gathers run on the CMA banks — disjoint
// hardware that a linear stage chain needlessly serializes (MicroRec,
// arXiv:2010.05894, wins its inference latency exactly here). Three graphs
// over the SAME model, replicas and arrival stream:
//
//   fused    one sharded score stage (the pre-DAG CtrServable; reference)
//   chain    gather -> dense -> interact as a linear chain (same per-stage
//            work as the DAG, serialized — isolates the graph effect from
//            the stage split)
//   dag      gather ∥ dense joining at interact (CtrGraph::kTowerDag)
//
// The open-loop Poisson stream is driven above the CHAIN's closed-loop
// capacity, where queueing amplifies the per-query critical-path gap into
// a tail-latency gap. Top-k/score parity between chain and dag is asserted
// query by query (the graphs must never change results, only timing).
//
// Emits BENCH_serving_dag.json (bench/harness.hpp JsonReport) with
// QPS/p50/p99 per graph, the p99/QPS deltas, and per-node utilization.
// Exit code 0 iff parity holds and the dag beats the chain on p99 and QPS.
#include <iostream>

#include "core/backend_factory.hpp"
#include "harness.hpp"
#include "serve/runtime.hpp"
#include "serve/servable_ctr.hpp"
#include "serve/trace.hpp"
#include "util/table.hpp"

using namespace imars;

int main(int argc, char** argv) {
  // --self-profile / --trace <file>: observation only (harness.hpp); the
  // trace exports the tower-parallel dag point.
  const auto obs = bench::parse_observe_flags(argc, argv);
  const bool quick = bench::quick_mode();
  const std::size_t train_samples = quick ? 800 : 4000;
  const std::size_t queries = quick ? 48 : 192;
  const std::size_t population = quick ? 128 : 512;
  const std::size_t shards = 2;

  std::cout << "=== Extension: stage-DAG serving (tower-parallel CTR) ===\n"
            << "(synthetic Criteo, " << queries
            << " Zipf-skewed impressions per graph, " << shards
            << " FeFET-45 shards)\n\n";

  auto cr = bench::make_criteo(train_samples, quick ? 1 : 2);
  std::vector<data::CriteoSample> samples;
  for (std::size_t i = 0; i < std::min(population, cr.ds->size()); ++i)
    samples.push_back(cr.ds->sample(i));
  std::vector<data::CriteoSample> calib(samples.begin(), samples.begin() + 8);

  const core::ArchConfig arch;
  const auto profile = device::DeviceProfile::fefet45();
  const std::vector<device::DeviceProfile> profiles(shards, profile);
  const auto factory = core::imars_ctr_backend_factory(
      *cr.model, arch, core::TimingMode::kWorstCaseSameArray, calib);

  auto make_runtime = [&](serve::CtrGraph graph, bool open, double rate_qps)
      -> std::pair<std::unique_ptr<serve::ServingRuntime>,
                   serve::LoadGenConfig> {
    auto servable =
        std::make_unique<serve::CtrServable>(factory, profiles, graph);
    servable->bind_samples(samples);
    serve::ServingConfig cfg;
    cfg.k = 1;
    cfg.batcher.max_batch = 16;
    cfg.batcher.max_wait = device::Ns{500000.0};
    cfg.overlap = open;
    cfg.self_profile = obs.any();
    auto rt = std::make_unique<serve::ServingRuntime>(std::move(servable),
                                                      cfg, arch, profile);
    serve::LoadGenConfig lg;
    lg.clients = 16;
    lg.total_queries = queries;
    lg.num_users = samples.size();
    lg.user_zipf_s = 0.9;
    lg.seed = 233;  // same impression stream for every graph
    if (open) {
      lg.arrivals = serve::ArrivalProcess::kOpenPoisson;
      lg.rate_qps = rate_qps;
    }
    return {std::move(rt), lg};
  };

  // Closed-loop capacity probe of the linearized graph: the overload rate
  // is anchored above what the CHAIN can sustain.
  double chain_capacity = 0.0;
  {
    auto [rt, lg] = make_runtime(serve::CtrGraph::kTowerChain, false, 0.0);
    serve::LoadGenerator gen(lg);
    chain_capacity = rt->run(gen).qps();
  }
  const double rate = 1.3 * chain_capacity;
  std::cout << "chain capacity probe: " << util::Table::num(chain_capacity, 0)
            << " qps; offered open-loop load " << util::Table::num(rate, 0)
            << " qps (1.3x)\n\n";

  bench::JsonReport json("serving_dag");
  json.record("capacity")
      .set("chain_capacity_qps", chain_capacity)
      .set("rate_qps", rate)
      .set("queries", queries)
      .set("shards", shards);

  struct GraphPoint {
    std::string name;
    serve::CtrGraph graph;
  };
  const std::vector<GraphPoint> grid = {
      {"fused", serve::CtrGraph::kFused},
      {"chain", serve::CtrGraph::kTowerChain},
      {"dag", serve::CtrGraph::kTowerDag},
  };

  util::Table table("tower-parallel vs linearized CTR (" +
                    std::to_string(queries) + " impressions, open loop)");
  table.header({"graph", "QPS", "p50 us", "p99 us", "node util s0"});

  std::vector<serve::ServeReport> reports;
  for (const auto& g : grid) {
    auto [rt, lg] = make_runtime(g.graph, true, rate);
    serve::LoadGenerator gen(lg);
    serve::TraceLog trace;
    const bool traced = !obs.trace_path.empty() && g.name == "dag";
    if (traced) rt->set_observer(&trace);
    reports.push_back(rt->run(gen));
    if (traced) {
      rt->set_observer(nullptr);
      trace.write(obs.trace_path);
      std::cout << "trace: " << trace.events().size() << " events -> "
                << obs.trace_path << "\n";
    }
    const auto& report = reports.back();
    if (obs.self_profile)
      bench::print_host_spans(g.name, report.host_span_us, std::cout);

    std::string utils;
    for (const auto& node : report.stage_names[0]) {
      if (!utils.empty()) utils += " ";
      utils += node.substr(0, 3) + "=" +
               util::Table::num(report.stage_utilization(0, node), 2);
    }
    table.row({g.name, util::Table::num(report.qps(), 0),
               util::Table::num(report.p50_latency_ns() * 1e-3, 1),
               util::Table::num(report.p99_latency_ns() * 1e-3, 1), utils});

    auto& rec = json.record(g.name)
                    .set("queries", queries)
                    .set("rate_qps", rate)
                    .set("qps", report.qps())
                    .set("p50_us", report.p50_latency_ns() * 1e-3)
                    .set("p95_us", report.p95_latency_ns() * 1e-3)
                    .set("p99_us", report.p99_latency_ns() * 1e-3)
                    .set("mean_batch", report.mean_batch_size())
                    .set("makespan_ms", report.makespan.ms());
    for (std::size_t s = 0; s < shards; ++s)
      for (const auto& node : report.stage_names[0])
        rec.set("util_" + node + "_s" + std::to_string(s),
                report.stage_utilization(s, node));
  }
  table.print(std::cout);

  // Result parity: the graphs must rank identically — same queries in the
  // same order with the same top-k ids and scores.
  bool parity = true;
  const auto& fused = reports[0];
  const auto& chain = reports[1];
  const auto& dag = reports[2];
  for (const auto* other : {&fused, &chain}) {
    if (other->size() != dag.size()) parity = false;
    for (std::size_t i = 0; parity && i < dag.size(); ++i) {
      const auto& a = other->queries[i];
      const auto& b = dag.queries[i];
      if (a.id != b.id || a.topk.size() != b.topk.size()) parity = false;
      for (std::size_t j = 0; parity && j < a.topk.size(); ++j)
        if (a.topk[j].item != b.topk[j].item ||
            a.topk[j].score != b.topk[j].score)
          parity = false;
    }
  }

  const double p99_chain = chain.p99_latency_ns();
  const double p99_dag = dag.p99_latency_ns();
  const double p99_gain = p99_chain > 0.0 ? 1.0 - p99_dag / p99_chain : 0.0;
  const double qps_gain =
      chain.qps() > 0.0 ? dag.qps() / chain.qps() - 1.0 : 0.0;
  const double p99_vs_fused = fused.p99_latency_ns() > 0.0
                                  ? 1.0 - p99_dag / fused.p99_latency_ns()
                                  : 0.0;
  json.record("delta")
      .set("p99_gain", p99_gain)
      .set("qps_gain", qps_gain)
      .set("p99_gain_vs_fused", p99_vs_fused)
      .set("qps_gain_vs_fused",
           fused.qps() > 0.0 ? dag.qps() / fused.qps() - 1.0 : 0.0)
      .set("parity", parity ? 1 : 0);
  json.write();

  const bool tail_ok = p99_dag < p99_chain;
  const bool qps_ok = dag.qps() >= chain.qps();
  std::cout << "\ntower-parallel dag vs linearized chain: p99 "
            << util::Table::num(p99_chain * 1e-3, 1) << " us -> "
            << util::Table::num(p99_dag * 1e-3, 1) << " us ("
            << util::Table::num(p99_gain * 100.0, 1) << "% lower), QPS "
            << util::Table::num(chain.qps(), 0) << " -> "
            << util::Table::num(dag.qps(), 0) << " (+"
            << util::Table::num(qps_gain * 100.0, 1) << "%); vs the fused\n"
            << "pre-DAG graph: p99 "
            << util::Table::num(p99_vs_fused * 100.0, 1)
            << "% lower; top-k parity " << (parity ? "OK" : "FAIL") << "\n"
            << "Reading: splitting the fused score into per-tower stage\n"
               "units is where most of the tail collapses (queries pipeline\n"
               "across the gather/dense/interact units instead of queueing\n"
               "on one fused unit); the DAG edge then overlaps the CMA\n"
               "gathers with the crossbar bottom-MLP, trimming the\n"
               "remaining critical path — a small margin here because\n"
               "iMARS's in-memory gather is already fast, exactly the\n"
               "paper's point.\n";
  return (parity && tail_ok && qps_ok) ? 0 : 1;
}
