// Full-funnel serving benchmark: the FunnelServable's four-stage
// retrieval -> filter -> rank -> re-rank DAG served end-to-end by the
// generic stage-pipeline engine, gated on three exit conditions:
//
//   recall   — the ANN retrieval tier (IVF-Flat) keeps recall@k >= 0.95
//              against the exact cosine top-k over the item table;
//   tail     — the fused funnel's end-to-end p99 beats a non-fused
//              two-pass baseline (pass 1: retrieval+filter+rank service
//              emitting the rank survivors; pass 2: a second serving
//              round trip that re-admits each query at its pass-1
//              completion and runs the precise re-rank), i.e. fusing the
//              funnel into one dispatch saves the second batching round;
//   parity   — the overlap-invariance contract holds for the funnel
//              across the full regime grid (open/closed x gated/ungated,
//              overlap off vs on, bit-identical reports), the degenerate
//              funnel (fixed retrieval, no re-rank) is bit-identical to
//              the two-stage ShardRouter it collapses to, and
//              MicroRec-style table combining keeps every query's top-k
//              items and scores while strictly cutting device time.
//
// Emits BENCH_funnel.json. Exit 0 iff all three gates hold.
#include <algorithm>
#include <cstddef>
#include <iostream>
#include <memory>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "baseline/exact_nns.hpp"
#include "core/backend_factory.hpp"
#include "core/calibration.hpp"
#include "harness.hpp"
#include "serve/runtime.hpp"
#include "serve/servable_funnel.hpp"
#include "serve/trace.hpp"
#include "serve_compare.hpp"
#include "util/stats.hpp"
#include "util/table.hpp"

using namespace imars;

namespace {

double sum_device_us(const serve::ServeReport& r) {
  double us = 0.0;
  for (const auto& q : r.queries) us += q.device_time.value * 1e-3;
  return us;
}

/// Same top-k items AND scores for every query (order-sensitive: the merge
/// is deterministic, so a reordering is a real divergence).
bool results_match(const serve::ServeReport& a, const serve::ServeReport& b) {
  if (a.queries.size() != b.queries.size()) return false;
  for (std::size_t i = 0; i < a.queries.size(); ++i) {
    const auto& qa = a.queries[i];
    const auto& qb = b.queries[i];
    if (qa.id != qb.id || qa.topk.size() != qb.topk.size()) return false;
    for (std::size_t j = 0; j < qa.topk.size(); ++j)
      if (qa.topk[j].item != qb.topk[j].item ||
          qa.topk[j].score != qb.topk[j].score)
        return false;
  }
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  // --trace <file>: export the fused open-loop run as Chrome trace-event
  // JSON (pure observation — every figure stays bit-identical).
  const auto observe = bench::parse_observe_flags(argc, argv);
  const bool quick = bench::quick_mode();
  const double scale = quick ? 0.02 : 0.05;
  const std::size_t queries = quick ? 36 : 96;
  const std::size_t k = 10;
  const std::size_t shards = 2;

  std::cout << "=== Extension: full-funnel serving "
               "(retrieve->filter->rank->re-rank) ===\n"
            << "(synthetic MovieLens at scale " << scale << ", " << queries
            << " queries per run, k=" << k << ", " << shards << " shards)\n\n";

  auto ml = bench::make_movielens(scale, 1, 1, 505);
  std::vector<recsys::UserContext> users;
  for (std::size_t u = 0; u < ml.ds->num_users(); ++u)
    users.push_back(ml.model->make_context(*ml.ds, u));
  std::vector<recsys::UserContext> calib(users.begin(), users.begin() + 8);

  const core::ArchConfig arch;
  const auto profile = device::DeviceProfile::fefet45();
  const std::vector<device::DeviceProfile> profs(shards, profile);
  core::ImarsBackendConfig icfg;
  icfg.timing = core::TimingMode::kWorstCaseSameArray;
  icfg.max_candidates = core::kEndToEndCandidates;
  icfg.nns_radius = 64;
  const auto factory =
      core::imars_backend_factory(*ml.model, arch, profile, icfg, calib);

  serve::FunnelConfig fcfg;
  fcfg.retrieval = serve::RetrievalKind::kIvf;
  fcfg.retrieve_k = quick ? 40 : 64;
  fcfg.filter_radius = 120;
  fcfg.rank_keep = 24;
  fcfg.ivf.nlist = 8;
  fcfg.ivf.nprobe = 6;

  // --- gate 1: retrieval recall@k vs the exact cosine top-k --------------
  serve::FunnelServable probe(*ml.model, arch, factory, profs, fcfg);
  const auto& item_mat = ml.model->item_table().matrix();
  const std::size_t audit_users = std::min<std::size_t>(48, users.size());
  double recall_sum = 0.0;
  for (std::size_t u = 0; u < audit_users; ++u) {
    const auto exact = baseline::topk_cosine(
        item_mat, ml.model->user_embedding(users[u]), k);
    const auto cand = probe.retrieval_candidates(users[u]);
    const std::unordered_set<std::size_t> got(cand.begin(), cand.end());
    std::size_t hit = 0;
    for (const auto e : exact) hit += got.count(e) ? 1u : 0u;
    recall_sum += static_cast<double>(hit) / static_cast<double>(k);
  }
  const double recall = recall_sum / static_cast<double>(audit_users);
  const bool recall_ok = recall >= 0.95;
  std::cout << "retrieval recall@" << k << " = " << recall << " over "
            << audit_users << " users (gate >= 0.95): "
            << (recall_ok ? "OK" : "FAIL") << "\n\n";

  auto make_cfg = [&](bool overlap, bool gated) {
    serve::ServingConfig cfg;
    cfg.shards = shards;
    cfg.k = k;
    cfg.batcher.max_batch = 4;
    cfg.batcher.max_wait = device::Ns{300000.0};
    cfg.cache.capacity_rows = 256;
    cfg.overlap = overlap;
    if (gated) {
      cfg.qos = serve::QosBatcherConfig::single(cfg.batcher);
      cfg.qos.admit_window = device::Ns{50000.0};
    }
    return cfg;
  };
  auto make_load = [&](bool open) {
    serve::LoadGenConfig lg;
    lg.clients = 8;
    lg.total_queries = queries;
    lg.num_users = users.size();
    lg.user_zipf_s = 0.9;
    lg.seed = 909;
    if (open) {
      lg.arrivals = serve::ArrivalProcess::kOpenPoisson;
      // Below the fabric's closed-loop saturation point in both modes, so
      // the open regime measures batching + service (where the two-pass
      // baseline pays its second admission round trip), not queue backlog.
      lg.rate_qps = quick ? 2.0e4 : 8.0e3;
    }
    return lg;
  };
  auto run_funnel = [&](const serve::FunnelConfig& fc,
                        const serve::ServingConfig& cfg,
                        const serve::LoadGenConfig& lg,
                        serve::TraceLog* trace_log = nullptr) {
    auto rt = std::make_unique<serve::ServingRuntime>(
        std::make_unique<serve::FunnelServable>(*ml.model, arch, factory,
                                                profs, fc),
        cfg, arch, profile);
    if (trace_log) rt->set_observer(trace_log);
    serve::LoadGenerator gen(lg);
    return rt->run(gen, users);
  };

  bench::JsonReport json("funnel");
  json.record("workload")
      .set("scale", scale)
      .set("users", users.size())
      .set("items", ml.ds->num_items())
      .set("queries", queries)
      .set("k", k)
      .set("shards", shards)
      .set("retrieve_k", fcfg.retrieve_k)
      .set("rank_keep", fcfg.rank_keep)
      .set("ivf_nlist", fcfg.ivf.nlist)
      .set("ivf_nprobe", fcfg.ivf.nprobe);
  json.record("recall")
      .set("recall_at_k", recall)
      .set("audit_users", audit_users)
      .set("gate", 0.95)
      .set("ok", recall_ok ? 1 : 0);

  // --- gate 3a: overlap-invariance grid ----------------------------------
  bool grid_ok = true;
  serve::ServeReport fused;        // open, ungated, phased
  serve::ServeReport closed_plain; // closed, ungated, phased (combine ref)
  util::Table grid_table("Parity grid (overlap off vs on, bit-identical)");
  grid_table.header({"regime", "p99 us", "QPS", "parity"});
  serve::TraceLog trace_log;
  for (const bool open : {false, true})
    for (const bool gated : {false, true}) {
      const bool traced = open && !gated && !observe.trace_path.empty();
      const auto off = run_funnel(fcfg, make_cfg(false, gated),
                                  make_load(open),
                                  traced ? &trace_log : nullptr);
      const auto on = run_funnel(fcfg, make_cfg(true, gated), make_load(open));
      const std::string regime = std::string(open ? "open" : "closed") +
                                 (gated ? "+gated" : "");
      const bool eq = bench::reports_equal(off, on, "grid:" + regime);
      grid_ok = grid_ok && eq;
      if (open && !gated) fused = off;
      if (!open && !gated) closed_plain = off;
      grid_table.row({regime, util::Table::num(off.p99_latency_ns() * 1e-3, 1),
                      util::Table::num(off.qps(), 0), eq ? "OK" : "FAIL"});
      json.record("grid_" + regime)
          .set("p99_us", off.p99_latency_ns() * 1e-3)
          .set("qps", off.qps())
          .set("overlap_parity", eq ? 1 : 0);
    }
  grid_table.print(std::cout);
  if (!observe.trace_path.empty()) {
    trace_log.write(observe.trace_path);
    std::cout << "trace: " << trace_log.events().size() << " events -> "
              << observe.trace_path << "\n";
  }
  std::cout << "\n";

  // --- gate 2: fused funnel vs the non-fused two-pass baseline -----------
  // Pass 1: the candidate service — same funnel without the re-rank stage,
  // answering with the rank stage's top rank_keep items.
  serve::FunnelConfig pass1 = fcfg;
  pass1.rerank = false;
  auto cfg1 = make_cfg(false, false);
  cfg1.k = fcfg.rank_keep;
  const auto rep1 = run_funnel(pass1, cfg1, make_load(true));

  // Pass 2: the precise-scoring service — a second serving round trip fed
  // at each query's pass-1 completion (fixed TCAM retrieval + filter +
  // rank + full-precision re-rank), paying admission + batching again.
  std::vector<serve::Request> trace;
  std::unordered_map<std::size_t, double> first_enqueue;
  for (const auto& q : rep1.queries) {
    serve::Request r;
    r.id = q.id;
    r.user = q.user;
    r.client = q.client;
    r.enqueue = q.complete;
    trace.push_back(r);
    first_enqueue[q.id] = q.enqueue.value;
  }
  std::sort(trace.begin(), trace.end(),
            [](const serve::Request& a, const serve::Request& b) {
              return a.enqueue.value != b.enqueue.value
                         ? a.enqueue.value < b.enqueue.value
                         : a.id < b.id;
            });
  serve::FunnelConfig pass2 = fcfg;
  pass2.retrieval = serve::RetrievalKind::kFixed;
  serve::LoadGenConfig lg2;
  lg2.arrivals = serve::ArrivalProcess::kTrace;
  lg2.trace = std::move(trace);
  lg2.num_users = users.size();
  const auto rep2 = run_funnel(pass2, make_cfg(false, false), lg2);

  std::vector<double> two_pass_lat;
  for (const auto& q : rep2.queries)
    two_pass_lat.push_back(q.complete.value - first_enqueue.at(q.id));
  const double two_pass_p99 = util::percentile_select(two_pass_lat, 99.0);
  const double fused_p99 = fused.p99_latency_ns();
  const bool tail_ok = fused_p99 < two_pass_p99;
  std::cout << "fused p99 " << fused_p99 * 1e-3 << " us vs two-pass p99 "
            << two_pass_p99 * 1e-3 << " us (pass-1 p99 "
            << rep1.p99_latency_ns() * 1e-3
            << " us): " << (tail_ok ? "OK" : "FAIL") << "\n";
  json.record("two_pass")
      .set("fused_p99_us", fused_p99 * 1e-3)
      .set("two_pass_p99_us", two_pass_p99 * 1e-3)
      .set("pass1_p99_us", rep1.p99_latency_ns() * 1e-3)
      .set("p99_gain", two_pass_p99 > 0 ? fused_p99 / two_pass_p99 : 0.0)
      .set("ok", tail_ok ? 1 : 0);

  // --- gate 3b: degenerate funnel == ShardRouter, bit for bit ------------
  serve::FunnelConfig dg;
  dg.retrieval = serve::RetrievalKind::kFixed;
  dg.rerank = false;
  serve::FunnelServable dprobe(*ml.model, arch, factory, profs, dg);
  const auto rep_dg = run_funnel(dg, make_cfg(false, false), make_load(false));
  serve::ServingRuntime router_rt(factory, make_cfg(false, false), arch,
                                  profile);
  serve::LoadGenerator router_gen(make_load(false));
  const auto rep_router = router_rt.run(router_gen, users);
  const bool degenerate_ok =
      dprobe.degenerate() &&
      bench::reports_equal(rep_dg, rep_router, "degenerate-vs-router");
  std::cout << "degenerate funnel vs ShardRouter: "
            << (degenerate_ok ? "OK" : "FAIL") << "\n";
  json.record("degenerate")
      .set("collapsed", dprobe.degenerate() ? 1 : 0)
      .set("ok", degenerate_ok ? 1 : 0);

  // --- gate 3c: table combining keeps results, cuts device time ----------
  serve::FunnelConfig cmb = fcfg;
  cmb.combine_tables = true;
  serve::FunnelServable cprobe(*ml.model, arch, factory, profs, cmb);
  const auto rep_cmb = run_funnel(cmb, make_cfg(false, false), make_load(false));
  const double dev_plain = sum_device_us(closed_plain);
  const double dev_cmb = sum_device_us(rep_cmb);
  const bool combine_ok = results_match(closed_plain, rep_cmb) &&
                          dev_cmb < dev_plain;
  std::cout << "table combining (" << cprobe.combined_rows()
            << "-row combined table): device time " << dev_plain << " us -> "
            << dev_cmb << " us, results "
            << (results_match(closed_plain, rep_cmb) ? "identical" : "DIVERGED")
            << ": " << (combine_ok ? "OK" : "FAIL") << "\n";
  json.record("combine")
      .set("combined_rows", cprobe.combined_rows())
      .set("flat_device_us", dev_plain)
      .set("combined_device_us", dev_cmb)
      .set("device_time_cut", dev_plain > 0 ? 1.0 - dev_cmb / dev_plain : 0.0)
      .set("ok", combine_ok ? 1 : 0);

  const bool parity_ok = grid_ok && degenerate_ok && combine_ok;
  json.record("delta")
      .set("recall_at_k", recall)
      .set("fused_vs_two_pass_p99_gain",
           two_pass_p99 > 0 ? two_pass_p99 / std::max(fused_p99, 1.0) : 0.0)
      .set("parity_grid_ok", grid_ok ? 1 : 0)
      .set("all_gates_ok", (recall_ok && tail_ok && parity_ok) ? 1 : 0);
  json.write();

  std::cout << "\ngates: recall " << (recall_ok ? "OK" : "FAIL") << ", tail "
            << (tail_ok ? "OK" : "FAIL") << ", parity "
            << (parity_ok ? "OK" : "FAIL") << "\n";
  return (recall_ok && tail_ok && parity_ok) ? 0 : 1;
}
