// Multi-tenant QoS serving benchmark (extension): priority-class batching,
// deadline-preemptive close and weighted admission on the iMARS fabric.
//
// Three phases over the same trained filter/rank fabric:
//
//   capacity   closed-loop probe: the fabric's self-throttled QPS and a
//              per-batch service estimate (feeds the preemptive close and
//              the admission window).
//   tail       a 10:1 bulk:interactive OVERLOAD mix (open-loop Poisson at
//              2x capacity) served (a) class-blind through the PR 2
//              single-queue batcher and (b) class-aware with preemptive
//              close + gated admission. Same arrival stream, same labels:
//              the interactive tail must collapse at equal total goodput.
//   fairness   two saturated bulk tenants at weights 1:3 (2x capacity):
//              measured device-time shares inside the contended window
//              must track the configured weights.
//
// Emits BENCH_serving_qos.json records (bench/harness.hpp JsonReport).
// Exit code 0 iff the QoS acceptance holds: interactive p99 >= 30% below
// class-blind at equal (+-5%) goodput, and fairness shares within 5
// points of the weights.
#include <algorithm>
#include <chrono>
#include <cmath>
#include <iostream>
#include <limits>
#include <map>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "core/backend_factory.hpp"
#include "core/calibration.hpp"
#include "harness.hpp"
#include "serve/runtime.hpp"
#include "serve/trace.hpp"
#include "serve_compare.hpp"
#include "util/table.hpp"

using namespace imars;

namespace {

struct Fabric {
  core::BackendFactory factory;
  std::vector<recsys::UserContext> users;
  core::ArchConfig arch;
  device::DeviceProfile profile = device::DeviceProfile::fefet45();
  recsys::YoutubeDnn* model = nullptr;
};

serve::ServingConfig base_config(const Fabric& fx) {
  serve::ServingConfig cfg;
  cfg.shards = 4;
  cfg.k = 10;
  cfg.batcher.max_batch = 8;
  cfg.batcher.max_wait = device::Ns{500000.0};
  cfg.cache.capacity_rows = 4096;
  cfg.traffic.filter_features = fx.model->filter_features();
  cfg.traffic.rank_features = fx.model->rank_features();
  return cfg;
}

}  // namespace

int main(int argc, char** argv) {
  // --trace <file>: export the class-aware overload run as Chrome
  // trace-event JSON (tools/trace_summary validates it; CI uploads it next
  // to the BENCH_*.json artifacts). Observation is a pure observer — every
  // figure and the BENCH JSON are bit-identical with or without it.
  std::string trace_path;
  for (int i = 1; i < argc; ++i)
    if (std::string_view(argv[i]) == "--trace" && i + 1 < argc)
      trace_path = argv[++i];

  const bool quick = bench::quick_mode();
  const double scale = quick ? 0.04 : 0.12;
  const std::size_t base_queries = quick ? 24 : 96;

  std::cout << "=== Extension: multi-tenant QoS serving ===\n"
            << "(synthetic MovieLens at scale " << scale
            << ", 10:1 bulk:interactive overload + weighted fairness)\n\n";

  auto ml = bench::make_movielens(scale, quick ? 2 : 3, 1);
  Fabric fx;
  for (std::size_t u = 0; u < ml.ds->num_users(); ++u)
    fx.users.push_back(ml.model->make_context(*ml.ds, u));
  std::vector<recsys::UserContext> calib(fx.users.begin(),
                                         fx.users.begin() + 8);
  core::ImarsBackendConfig icfg;
  icfg.timing = core::TimingMode::kWorstCaseSameArray;
  icfg.max_candidates = core::kEndToEndCandidates;
  icfg.nns_radius = 64;
  fx.factory = core::imars_backend_factory(*ml.model, fx.arch, fx.profile,
                                           icfg, calib);
  fx.model = ml.model.get();

  bench::JsonReport json("serving_qos");

  // --- capacity probe (closed loop, the PR 2 "full+cache" operating point)
  serve::ServingRuntime probe_rt(fx.factory, base_config(fx), fx.arch,
                                 fx.profile);
  serve::LoadGenConfig probe_lg;
  probe_lg.clients = 16;
  probe_lg.total_queries = base_queries;
  probe_lg.num_users = fx.users.size();
  probe_lg.user_zipf_s = 0.9;
  probe_lg.seed = 77;
  serve::LoadGenerator probe_gen(probe_lg);
  const auto probe = probe_rt.run(probe_gen, fx.users);
  const double capacity_qps = probe.qps();
  double service_sum = 0.0;
  for (const auto& q : probe.queries)
    service_sum += (q.complete - q.dispatch).value;
  const device::Ns service_est{service_sum /
                               static_cast<double>(probe.size())};
  std::cout << "capacity probe: " << util::Table::num(capacity_qps, 0)
            << " qps, batch service estimate "
            << util::Table::num(service_est.us(), 1) << " us\n\n";
  json.record("capacity")
      .set("qps", capacity_qps)
      .set("service_estimate_us", service_est.us())
      .set("queries", base_queries)
      .set("scale", scale);

  // --- tail-latency experiment: 10:1 overload mix ------------------------
  const std::size_t overload_queries = base_queries * 6;
  const double overload_rate = 2.0 * capacity_qps;
  serve::LoadGenConfig mix_lg;
  mix_lg.clients = 16;
  mix_lg.total_queries = overload_queries;
  mix_lg.num_users = fx.users.size();
  mix_lg.user_zipf_s = 0.9;
  mix_lg.seed = 77;
  mix_lg.arrivals = serve::ArrivalProcess::kOpenPoisson;
  mix_lg.rate_qps = overload_rate;
  mix_lg.class_mix = {1.0, 10.0};  // interactive : bulk

  // (a) class-blind: the PR 2 single-queue batcher (labels ride along).
  serve::ServingConfig blind_cfg = base_config(fx);
  serve::ServingRuntime blind_rt(fx.factory, blind_cfg, fx.arch, fx.profile);
  serve::LoadGenerator blind_gen(mix_lg);
  const auto blind = blind_rt.run(blind_gen, fx.users);

  // (b) class-aware: preemptive close + weighted, gated admission.
  serve::ServingConfig qos_cfg = base_config(fx);
  serve::QosClassConfig interactive;
  interactive.name = "interactive";
  interactive.max_batch = 2;
  interactive.max_wait = device::Ns{500000.0};
  // SLO of 5 batch-services; the close budget (deadline - estimate) caps
  // the batcher wait at ~1 service, so the end-to-end path (close + gate +
  // service) fits the SLO even under the bulk backlog.
  interactive.deadline = service_est * 5.0;
  interactive.service_estimate = service_est * 4.0;
  interactive.weight = 2.0;
  serve::QosClassConfig bulk;
  bulk.name = "bulk";
  bulk.max_batch = 8;
  bulk.max_wait = device::Ns{500000.0};
  bulk.weight = 10.0;
  qos_cfg.qos.classes = {interactive, bulk};
  qos_cfg.qos.admit_window = service_est;
  qos_cfg.self_profile = !trace_path.empty();  // host spans ride along
  serve::ServingRuntime qos_rt(fx.factory, qos_cfg, fx.arch, fx.profile);
  serve::TraceLog trace;
  if (!trace_path.empty()) qos_rt.set_observer(&trace);
  serve::LoadGenerator qos_gen(mix_lg);
  const auto qos = qos_rt.run(qos_gen, fx.users);
  if (!trace_path.empty()) {
    trace.write(trace_path);
    std::cout << "trace: " << trace.events().size() << " events -> "
              << trace_path << "\n\n";
  }

  util::Table tail_table("10:1 overload at 2x capacity (" +
                         std::to_string(overload_queries) + " queries)");
  tail_table.header({"batcher", "goodput qps", "int p50 us", "int p99 us",
                     "bulk p99 us", "int batches", "SLO misses"});
  auto tail_row = [&](const std::string& name,
                      const serve::ServeReport& report) {
    const std::size_t violations =
        report.classes.size() > 1 ? report.classes[0].slo_violations : 0;
    const std::size_t ibatches =
        report.classes.size() > 1 ? report.classes[0].batches : 0;
    tail_table.row({name, util::Table::num(report.qps(), 0),
                    util::Table::num(report.class_p50_latency_ns(0) * 1e-3, 1),
                    util::Table::num(report.class_p99_latency_ns(0) * 1e-3, 1),
                    util::Table::num(report.class_p99_latency_ns(1) * 1e-3, 1),
                    util::Table::num(double(ibatches), 0),
                    util::Table::num(double(violations), 0)});
    json.record(name)
        .set("queries", overload_queries)
        .set("rate_qps", overload_rate)
        .set("offered_frac", 2.0)
        .set("goodput_qps", report.qps())
        .set("interactive_p50_us", report.class_p50_latency_ns(0) * 1e-3)
        .set("interactive_p99_us", report.class_p99_latency_ns(0) * 1e-3)
        .set("bulk_p99_us", report.class_p99_latency_ns(1) * 1e-3)
        .set("interactive_queries",
             static_cast<std::size_t>(std::count_if(
                 report.queries.begin(), report.queries.end(),
                 [](const auto& q) { return q.qos_class == 0; })))
        .set("slo_violations", violations)
        .set("makespan_ms", report.makespan.ms());
  };
  tail_row("blind", blind);
  tail_row("qos", qos);
  tail_table.print(std::cout);

  const double p99_blind = blind.class_p99_latency_ns(0);
  const double p99_qos = qos.class_p99_latency_ns(0);
  const double p99_gain = p99_blind > 0.0 ? 1.0 - p99_qos / p99_blind : 0.0;
  const double goodput_ratio =
      blind.qps() > 0.0 ? qos.qps() / blind.qps() : 0.0;
  std::cout << "\ninteractive p99: blind "
            << util::Table::num(p99_blind * 1e-3, 1) << " us -> qos "
            << util::Table::num(p99_qos * 1e-3, 1) << " us ("
            << util::Table::num(p99_gain * 100.0, 1)
            << "% lower) at goodput ratio "
            << util::Table::num(goodput_ratio, 3) << "\n\n";

  // --- speculative dispatch A/B: recover overlap under gated admission ---
  // Gated admission used to force lockstep collection (every gate decision
  // read the exact device frontier). Speculative windows prove a frontier
  // lower bound from per-class service floors and dispatch ahead of
  // pending completions. The floors come from the phased run itself: 0.9x
  // the smallest observed batch service per class is provably below every
  // completion the speculative run will see (same seed, same workload, and
  // the runtime validates the floor against each collected batch), so the
  // simulated reports must stay bit-identical — the win is host wall-clock
  // only.
  std::vector<device::Ns> min_service(
      qos_cfg.qos.classes.size(),
      device::Ns{std::numeric_limits<double>::infinity()});
  {
    struct BatchBounds {
      device::Ns dispatch;
      device::Ns first_complete;
      std::size_t cls;
    };
    std::map<std::size_t, BatchBounds> bounds;
    for (const auto& q : qos.queries) {
      auto [it, fresh] = bounds.try_emplace(
          q.batch, BatchBounds{q.dispatch, q.complete, q.qos_class});
      if (!fresh && q.complete.value < it->second.first_complete.value)
        it->second.first_complete = q.complete;
    }
    for (const auto& [id, b] : bounds) {
      const device::Ns svc = b.first_complete - b.dispatch;
      if (svc.value < min_service[b.cls].value) min_service[b.cls] = svc;
    }
  }

  serve::ServingConfig spec_cfg = qos_cfg;
  spec_cfg.self_profile = false;
  for (std::size_t c = 0; c < spec_cfg.qos.classes.size(); ++c)
    if (std::isfinite(min_service[c].value) && min_service[c].value > 0.0)
      spec_cfg.qos.classes[c].service_floor = min_service[c] * 0.9;

  auto timed_run = [&](const serve::ServingConfig& cfg) {
    serve::ServingRuntime rt(fx.factory, cfg, fx.arch, fx.profile);
    serve::LoadGenerator gen(mix_lg);
    const auto t0 = std::chrono::steady_clock::now();
    serve::ServeReport report = rt.run(gen, fx.users);
    const double wall_ms = std::chrono::duration<double, std::milli>(
                               std::chrono::steady_clock::now() - t0)
                               .count();
    return std::make_pair(std::move(report), wall_ms);
  };

  auto [spec_phased, phased_ms] = timed_run(spec_cfg);
  serve::ServingConfig spec_on_cfg = spec_cfg;
  spec_on_cfg.overlap = true;
  spec_on_cfg.speculate = true;
  auto [spec_overlap, overlap_ms] = timed_run(spec_on_cfg);

  const bool floors_inert =
      bench::reports_equal(spec_phased, qos, "service floors (phased)");
  const bool spec_same =
      bench::reports_equal(spec_overlap, qos, "speculative vs phased");
  const double spec_speedup = overlap_ms > 0.0 ? phased_ms / overlap_ms : 0.0;

  util::Table spec_table("Speculative windows under gated admission");
  spec_table.header({"mode", "wall ms", "proceeds", "gate proofs", "stalls",
                     "peak inflight", "identical"});
  auto spec_row = [&](const std::string& name, const serve::ServeReport& r,
                      double wall_ms_, bool same) {
    spec_table.row({name, util::Table::num(wall_ms_, 1),
                    std::to_string(r.spec.window_proceeds),
                    std::to_string(r.spec.gate_shut_proofs),
                    std::to_string(r.spec.window_stalls),
                    std::to_string(r.spec.peak_inflight),
                    same ? "yes" : "NO"});
    json.record(name)
        .set("queries", overload_queries)
        .set("rate_qps", overload_rate)
        .set("wall_ms", wall_ms_)
        .set("window_proceeds", static_cast<std::size_t>(r.spec.window_proceeds))
        .set("gate_shut_proofs",
             static_cast<std::size_t>(r.spec.gate_shut_proofs))
        .set("window_stalls", static_cast<std::size_t>(r.spec.window_stalls))
        .set("peak_inflight", r.spec.peak_inflight)
        .set("reports_identical", same ? 1 : 0)
        .set("interactive_p99_us", r.class_p99_latency_ns(0) * 1e-3)
        .set("makespan_ms", r.makespan.ms());
  };
  spec_row("spec_phased", spec_phased, phased_ms, floors_inert);
  spec_row("spec_overlap", spec_overlap, overlap_ms, spec_same);
  spec_table.print(std::cout);
  std::cout << "\nhost wall-clock (phased / speculative): "
            << util::Table::factor(spec_speedup) << ", simulated reports "
            << ((floors_inert && spec_same) ? "bit-identical"
                                           : "MISMATCH (see above)")
            << "\n\n";
  json.record("spec_speedup")
      .set("phased_wall_ms", phased_ms)
      .set("speculative_wall_ms", overlap_ms)
      .set("host_speedup", spec_speedup)
      .set("reports_identical", (floors_inert && spec_same) ? 1 : 0);

  // Adaptive estimates ride the same machinery: EWMA over observed batch
  // service, committed on the inflight hold-back schedule. Adaptation
  // CHANGES the simulated schedule (closes fire off live estimates rather
  // than the static config), so this is a separate record, not part of the
  // parity A/B — the determinism claim for adaptation (overlap on/off
  // agree) is asserted in the test suite.
  serve::ServingConfig adapt_cfg = qos_cfg;
  adapt_cfg.self_profile = false;
  adapt_cfg.adaptive.enabled = true;
  serve::ServingRuntime adapt_rt(fx.factory, adapt_cfg, fx.arch, fx.profile);
  serve::LoadGenerator adapt_gen(mix_lg);
  const auto adapt = adapt_rt.run(adapt_gen, fx.users);
  std::cout << "adaptive estimates: interactive p99 "
            << util::Table::num(adapt.class_p99_latency_ns(0) * 1e-3, 1)
            << " us (static " << util::Table::num(p99_qos * 1e-3, 1)
            << " us), "
            << static_cast<std::size_t>(adapt.spec.estimate_commits)
            << " EWMA commits\n\n";
  json.record("qos_adaptive")
      .set("queries", overload_queries)
      .set("rate_qps", overload_rate)
      .set("alpha", adapt_cfg.adaptive.alpha)
      .set("interactive_p99_us", adapt.class_p99_latency_ns(0) * 1e-3)
      .set("bulk_p99_us", adapt.class_p99_latency_ns(1) * 1e-3)
      .set("goodput_qps", adapt.qps())
      .set("estimate_commits",
           static_cast<std::size_t>(adapt.spec.estimate_commits))
      .set("slo_violations",
           adapt.classes.size() > 1 ? adapt.classes[0].slo_violations : 0);

  // --- fairness experiment: two saturated tenants, weights 1:3 -----------
  serve::ServingConfig fair_cfg = base_config(fx);
  serve::QosClassConfig light;
  light.name = "tenant-a";
  light.max_batch = 8;
  light.max_wait = device::Ns{500000.0};
  light.weight = 1.0;
  serve::QosClassConfig heavy = light;
  heavy.name = "tenant-b";
  heavy.weight = 3.0;
  fair_cfg.qos.classes = {light, heavy};
  fair_cfg.qos.admit_window = service_est * 2.0;
  serve::ServingRuntime fair_rt(fx.factory, fair_cfg, fx.arch, fx.profile);

  serve::LoadGenConfig fair_lg = mix_lg;
  fair_lg.class_mix = {0.5, 0.5};
  fair_lg.rate_qps = 2.0 * capacity_qps;  // both tenants saturated
  serve::LoadGenerator fair_gen(fair_lg);
  const auto fair = fair_rt.run(fair_gen, fx.users);
  // The contended window ends with the last arrival; past it the drain
  // phase serves whatever is left and shares converge to the 50:50 mix.
  device::Ns last_arrival{0.0};
  for (const auto& q : fair.queries)
    last_arrival = device::max(last_arrival, q.enqueue);
  const double share_a = fair.device_share(0, last_arrival);
  const double share_b = fair.device_share(1, last_arrival);
  const double fairness_gap =
      std::max(std::abs(share_a - 0.25), std::abs(share_b - 0.75));

  util::Table fair_table("Fairness: 50:50 demand, weights 1:3, 2x overload");
  fair_table.header({"tenant", "weight share", "device share", "p99 us"});
  fair_table.row({"tenant-a", "0.25", util::Table::num(share_a, 3),
                  util::Table::num(fair.class_p99_latency_ns(0) * 1e-3, 1)});
  fair_table.row({"tenant-b", "0.75", util::Table::num(share_b, 3),
                  util::Table::num(fair.class_p99_latency_ns(1) * 1e-3, 1)});
  fair_table.print(std::cout);
  json.record("fairness")
      .set("queries", overload_queries)
      .set("rate_qps", fair_lg.rate_qps)
      .set("weight_share_a", 0.25)
      .set("weight_share_b", 0.75)
      .set("device_share_a", share_a)
      .set("device_share_b", share_b)
      .set("fairness_gap", fairness_gap)
      .set("goodput_qps", fair.qps());
  json.write();

  const bool tail_ok = p99_gain >= 0.30;
  const bool goodput_ok = std::abs(goodput_ratio - 1.0) <= 0.05;
  const bool fair_ok = fairness_gap <= 0.05;
  const bool spec_ok = floors_inert && spec_same;
  std::cout << "\nacceptance: interactive p99 -"
            << util::Table::num(p99_gain * 100.0, 1) << "% (need >= 30%) "
            << (tail_ok ? "OK" : "FAIL") << ", goodput ratio "
            << util::Table::num(goodput_ratio, 3) << " (need 1 +- 0.05) "
            << (goodput_ok ? "OK" : "FAIL") << ", fairness gap "
            << util::Table::num(fairness_gap, 3) << " (need <= 0.05) "
            << (fair_ok ? "OK" : "FAIL") << ", speculation parity "
            << (spec_ok ? "OK" : "FAIL") << "\n"
            << "Reading: separate per-class queues + preemptive close bound\n"
               "how long an interactive request can sit in the batcher, and\n"
               "the gated admission queue lets its batch overtake the bulk\n"
               "backlog (within its weight entitlement) instead of queueing\n"
               "behind every previously-closed bulk batch on the fabric.\n";
  return (tail_ok && goodput_ok && fair_ok && spec_ok) ? 0 : 1;
}
