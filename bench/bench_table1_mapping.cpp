// Reproduces Table I: RecSys configurations and memory mapping on iMARS.
//
// For each workload (MovieLens/YouTubeDNN, Criteo/DLRM) this prints the
// model configuration and the bank/mat/CMA mapping computed by
// core::EtMapping from the dataset schema, next to the paper's values.
#include <iostream>

#include "core/config.hpp"
#include "core/mapping.hpp"
#include "data/criteo.hpp"
#include "data/movielens.hpp"
#include "util/table.hpp"

using namespace imars;

int main() {
  std::cout << "=== Table I: RecSys configurations and memory mapping on "
               "iMARS ===\n\n";

  const data::MovieLensSynth ml(data::MovieLensConfig{});  // 6040 x 3952
  const data::CriteoSynth criteo(
      data::CriteoConfig{.num_samples = 1, .seed = 1, .base_ctr = 0.25});

  const core::ArchConfig arch;  // B=32, M=4, C=32, 256x256 CMAs
  const core::EtMapping mapping(arch);
  const auto ml_map = mapping.map(ml.schema());
  const auto cr_map = mapping.map(criteo.schema());

  // The paper's Table I counts assume every Criteo feature is hashed to a
  // uniform table of 28,000 rows ("# Row per ET 28000"): 110 CMAs and 4
  // mats per feature.
  data::DatasetSchema criteo_hashed = criteo.schema();
  for (auto& f : criteo_hashed.user_item) f.cardinality = 28000;
  const auto cr_hashed_map = mapping.map(criteo_hashed);

  util::Table t("Model configuration and mapping (measured vs paper)");
  t.header({"", "MovieLens Filtering", "MovieLens Ranking", "Criteo Ranking"});
  t.row({"Model", "YoutubeDNN", "YoutubeDNN", "DLRM"});
  t.row({"DNN network", "128-64-32", "128-1",
         "bottom 256-128-32, top 256-64-1"});
  t.row({"# UIET (shared)",
         std::to_string(ml.schema().uiet_count_for(true)) + " (" +
             std::to_string(ml.schema().uiet_shared_count()) + ")",
         std::to_string(ml.schema().uiet_count_for(false)) + " (" +
             std::to_string(ml.schema().uiet_shared_count()) + ")",
         std::to_string(criteo.schema().user_item.size())});
  t.row({"# ItET", "1", "1 (shared)", "0"});
  t.row({"Rows per ET (min-max)",
         std::to_string(ml.schema().min_table_rows()) + "-" +
             std::to_string(ml.schema().max_table_rows()),
         "(same tables)",
         "4-" + std::to_string(criteo.schema().max_table_rows())});
  t.separator();
  t.row({"# active banks", std::to_string(ml_map.active_banks) + " [paper 7]",
         "(same fabric)", std::to_string(cr_map.active_banks) + " [paper 26]"});
  t.row({"# active mats", std::to_string(ml_map.active_mats) + " [paper 8]",
         "(same fabric)",
         std::to_string(cr_hashed_map.active_mats) + " [paper 104]"});
  t.row({"# active CMAs", std::to_string(ml_map.active_cmas) + " [paper 54]",
         "(same fabric)",
         std::to_string(cr_hashed_map.active_cmas) + " [paper 2860]"});
  t.row({"  (with true per-feature cardinalities)", "", "",
         std::to_string(cr_map.active_mats) + " mats / " +
             std::to_string(cr_map.active_cmas) + " CMAs"});
  t.print(std::cout);

  std::cout << "\nPer-table placement (MovieLens):\n";
  util::Table p("");
  p.header({"table", "rows", "data CMAs", "sig CMAs", "mats", "bank"});
  for (const auto& tb : ml_map.tables) {
    p.row({tb.name, std::to_string(tb.rows), std::to_string(tb.data_cmas),
           std::to_string(tb.sig_cmas), std::to_string(tb.mats),
           std::to_string(tb.bank)});
  }
  p.print(std::cout);

  std::cout << "\nNotes:\n"
            << " * CMA counts use ceil(rows/256); the paper's text also\n"
            << "   quotes power-of-two rounding (118 -> 128) which "
            << core::EtMapping(arch, true).cmas_for_rows(30000)
            << " reproduces.\n"
            << " * The ItET stores one 256-bit LSH signature per entry, so\n"
            << "   each entry occupies 2 CMAs (Sec III-B).\n"
            << " * Our MovieLens totals exceed Table I's 54 CMAs because we\n"
            << "   count the four sub-256-row tables (1 CMA each) and both\n"
            << "   halves of the ItET pair; the paper's 24+14+16 = 54 counts\n"
            << "   only the three multi-CMA tables.\n"
            << " * Criteo: with the paper's uniform 28,000-row hashing\n"
            << "   (Table I), the mapping reproduces 26 banks / 104 mats /\n"
            << "   2860 CMAs exactly; with realistic per-column\n"
            << "   cardinalities (many Criteo columns are small), fewer\n"
            << "   arrays activate.\n";
  return 0;
}
