// Reproduces Table II: array-level figures of merit.
//
// The functional simulator executes each array operation (CMA write / read /
// in-memory add / TCAM search, intra-mat and intra-bank 256-bit adds, one
// crossbar matmul) and reports the charged energy and returned latency next
// to the paper's HSPICE/RTL/Neurosim values. Exact agreement is expected —
// the device layer carries the published FoM — so this bench doubles as an
// end-to-end check that the accounting plumbing charges exactly one FoM per
// operation.
#include <iostream>

#include "adder/adder_tree.hpp"
#include "cma/cma.hpp"
#include "device/ledger.hpp"
#include "device/profile.hpp"
#include "util/rng.hpp"
#include "util/table.hpp"
#include "xbar/crossbar.hpp"

using namespace imars;
using device::Component;

namespace {

struct Measured {
  double energy_pj = 0.0;
  double latency_ns = 0.0;
};

std::string fmt(const Measured& m, double paper_e, double paper_l) {
  return util::Table::num(m.energy_pj, 1) + " / " +
         util::Table::num(m.latency_ns, 1) + "  [paper " +
         util::Table::num(paper_e, 1) + " / " + util::Table::num(paper_l, 1) +
         "]";
}

}  // namespace

int main() {
  std::cout << "=== Table II: array-level evaluation of CMA, adder trees and "
               "crossbars ===\n"
            << "(energy pJ / latency ns; measured by running one functional "
               "op)\n\n";

  const auto profile = device::DeviceProfile::fefet45();
  util::Xoshiro256 rng(1);

  util::Table t("256x256 FeFET CMA + periphery (45nm)");
  t.header({"Component", "Operation", "measured E/L [paper E/L]"});

  // CMA write.
  {
    device::EnergyLedger ledger;
    cma::Cma array(profile, &ledger);
    util::BitVec row(256);
    for (std::size_t i = 0; i < 256; ++i) row.set(i, rng.bernoulli(0.5));
    const auto lat = array.write_row(3, row);
    t.row({"256x256 CMA", "Write",
           fmt({ledger.energy(Component::kCmaRam).value, lat.value}, 49.1,
               10.0)});
  }
  // CMA read.
  {
    device::EnergyLedger ledger;
    cma::Cma array(profile, &ledger);
    array.write_row_i8(0, std::vector<std::int8_t>(32, 7));
    ledger.clear();
    device::Ns lat{0.0};
    (void)array.read_row(0, &lat);
    t.row({"256x256 CMA", "Read",
           fmt({ledger.energy(Component::kCmaRam).value, lat.value}, 3.2,
               0.3)});
  }
  // CMA in-memory addition.
  {
    device::EnergyLedger ledger;
    cma::Cma array(profile, &ledger);
    array.write_row_i8(0, std::vector<std::int8_t>(32, 5));
    array.write_row_i8(1, std::vector<std::int8_t>(32, 9));
    array.set_mode(cma::Mode::kGpcim);
    ledger.clear();
    const auto lat = array.add_rows(2, 0, 1);
    t.row({"256x256 CMA", "Addition",
           fmt({ledger.energy(Component::kCmaAdd).value, lat.value}, 108.0,
               8.1)});
  }
  // CMA TCAM search.
  {
    device::EnergyLedger ledger;
    cma::Cma array(profile, &ledger);
    for (std::size_t r = 0; r < 64; ++r) {
      util::BitVec row(256);
      for (std::size_t i = 0; i < 256; ++i) row.set(i, rng.bernoulli(0.5));
      array.write_row(r, row);
    }
    array.set_mode(cma::Mode::kTcam);
    ledger.clear();
    util::BitVec q(256);
    const auto result = array.search(q, 96);
    t.row({"256x256 CMA", "Search",
           fmt({ledger.energy(Component::kCmaSearch).value,
                result.latency.value},
               13.8, 0.2)});
  }
  // Intra-mat adder tree.
  {
    device::EnergyLedger ledger;
    adder::IntraMatAdderTree tree(profile, &ledger, 32);
    std::vector<adder::Lanes> inputs(32, adder::Lanes(32, 3));
    device::Ns lat{0.0};
    (void)tree.sum(inputs, &lat);
    t.row({"Intra-mat adder tree", "256-bit Add",
           fmt({ledger.energy(Component::kIntraMatTree).value, lat.value},
               137.0, 14.7)});
  }
  // Intra-bank adder tree (one round, fan-in 4).
  {
    device::EnergyLedger ledger;
    adder::IntraBankAdderTree tree(profile, &ledger, 4);
    std::vector<adder::Lanes> inputs(4, adder::Lanes(32, 3));
    device::Ns lat{0.0};
    (void)tree.sum(inputs, &lat);
    t.row({"Intra-bank adder tree", "256-bit Add",
           fmt({ledger.energy(Component::kIntraBankTree).value, lat.value},
               956.0, 44.2)});
  }
  // Crossbar matmul.
  {
    device::EnergyLedger ledger;
    xbar::Crossbar xb(profile, &ledger);
    ledger.clear();
    device::Ns lat{0.0};
    (void)xb.gemv(std::vector<std::int8_t>(256, 1), &lat);
    t.row({"256x128 Crossbar", "MatMul",
           fmt({ledger.energy(Component::kCrossbar).value, lat.value}, 13.8,
               225.0)});
  }

  t.print(std::cout);
  std::cout << "\nAll rows must match the paper exactly: the device layer\n"
               "carries the published Table II values, and each functional\n"
               "operation charges exactly one FoM.\n";
  return 0;
}
