// Reproduces Table III: ET lookup operation comparison between the GPU and
// iMARS (latency, energy, speedup, reduction) for one input on
//   * MovieLens filtering  (6 tables: 5 UIETs + ItET),
//   * MovieLens ranking    (7 tables: 6 UIETs + ItET),
//   * Criteo Kaggle ranking (26 tables).
//
// GPU numbers come from the calibrated GpuModel; iMARS numbers from the
// analytical PerfModel under the paper's worst-case assumption (all of a
// table's lookups collide in one array; L = kWorstCaseLookupsPerTable).
#include <iostream>

#include "baseline/gpu_model.hpp"
#include "core/calibration.hpp"
#include "core/perf_model.hpp"
#include "harness.hpp"
#include "util/table.hpp"

using namespace imars;
using bench::PaperWorkloads;

namespace {

struct Row {
  const char* name = "";
  std::size_t tables = 0;
  std::size_t mats = 1;
  std::size_t active_cmas = 0;
  double paper_gpu_lat_us, paper_imars_lat_us, paper_speedup;
  double paper_gpu_e_uj, paper_imars_e_uj, paper_reduction;
};

}  // namespace

int main() {
  std::cout << "=== Table III: ET operation comparison between the GPU and "
               "iMARS ===\n(one input; worst-case L="
            << core::kWorstCaseLookupsPerTable
            << " lookups per table, per core/calibration.hpp)\n\n";

  const baseline::GpuModel gpu;
  const core::PerfModel imars(core::ArchConfig{},
                              device::DeviceProfile::fefet45());

  const Row rows[] = {
      {"MovieLens Filtering", PaperWorkloads::kMlFilterTables, 1,
       PaperWorkloads::kMlFilterActiveCmas, 9.27, 0.21, 43.61, 203.97, 0.40,
       516.05},
      {"MovieLens Ranking", PaperWorkloads::kMlRankTables, 1,
       PaperWorkloads::kMlRankActiveCmas, 9.60, 0.21, 45.17, 211.26, 0.46,
       458.12},
      {"Criteo Kaggle Ranking", PaperWorkloads::kCriteoTables,
       PaperWorkloads::kCriteoMatsPerTable, PaperWorkloads::kCriteoActiveCmas,
       14.97, 0.24, 61.83, 329.34, 6.88, 47.90},
  };

  util::Table t("ET lookup: latency (us) and energy (uJ)");
  t.header({"Workload", "GPU lat", "iMARS lat", "Speedup", "GPU E", "iMARS E",
            "Reduction"});

  for (const auto& r : rows) {
    const auto g = gpu.et_lookup(r.tables);
    core::EtLookupParams p;
    p.tables = r.tables;
    p.lookups_per_table = core::kWorstCaseLookupsPerTable;
    p.mats_per_table = r.mats;
    p.active_cmas = r.active_cmas;
    const auto m = imars.et_lookup(p);

    const double speedup = g.latency / m.latency;
    const double reduction = g.energy / m.energy;
    t.row({r.name,
           util::Table::num(g.latency.us(), 2) + " [" +
               util::Table::num(r.paper_gpu_lat_us, 2) + "]",
           util::Table::num(m.latency.us(), 2) + " [" +
               util::Table::num(r.paper_imars_lat_us, 2) + "]",
           util::Table::factor(speedup) + " [" +
               util::Table::factor(r.paper_speedup) + "]",
           util::Table::num(g.energy.uj(), 2) + " [" +
               util::Table::num(r.paper_gpu_e_uj, 2) + "]",
           util::Table::num(m.energy.uj(), 2) + " [" +
               util::Table::num(r.paper_imars_e_uj, 2) + "]",
           util::Table::factor(reduction) + " [" +
               util::Table::factor(r.paper_reduction) + "]"});
  }
  t.print(std::cout);

  std::cout
      << "\n[paper values in brackets]\n"
      << "Latency agreement is within ~5% on MovieLens and ~20% on Criteo\n"
      << "(the RSC serialization across 26 banks is modelled explicitly).\n"
      << "Energy: the Criteo point anchors the per-array peripheral\n"
      << "calibration; MovieLens energy composes ~2x below the paper's\n"
      << "value (see EXPERIMENTS.md for the residual analysis). The\n"
      << "orderings the paper reports -- iMARS wins latency by 40-60x,\n"
      << "energy by 1.5-2.5 orders, Criteo > MovieLens latency, MovieLens\n"
      << "energy reduction >> Criteo's -- all reproduce.\n";
  return 0;
}
