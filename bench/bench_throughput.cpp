// Extension experiment: query throughput under stage pipelining.
//
// The paper's 22025 queries/s assumes queries traverse iMARS serially.
// Because the filtering resources (filter crossbar bank + ItET TCAM) and
// the ranking resources (rank crossbar bank + CTR buffer) are disjoint
// hardware blocks (Fig. 3(a)), query q+1 can filter while query q ranks;
// only the ET banks are shared. This bench measures per-stage times on the
// functional machine and reports serial vs pipelined throughput.
#include <iostream>

#include "core/backend.hpp"
#include "core/calibration.hpp"
#include "core/throughput.hpp"
#include "harness.hpp"
#include "util/table.hpp"

using namespace imars;
using recsys::OpKind;
using recsys::StageStats;

int main() {
  const bool quick = bench::quick_mode();
  const double scale = quick ? 0.04 : 0.25;
  const std::size_t users_to_run = quick ? 10 : 60;

  std::cout << "=== Extension: query throughput with stage pipelining ===\n"
            << "(synthetic MovieLens at scale " << scale << ")\n\n";

  auto ml = bench::make_movielens(scale, quick ? 2 : 3, 1);
  std::vector<recsys::UserContext> calib;
  for (std::size_t u = 0; u < 8; ++u)
    calib.push_back(ml.model->make_context(*ml.ds, u));

  core::ImarsBackendConfig icfg;
  icfg.timing = core::TimingMode::kWorstCaseSameArray;
  icfg.max_candidates = core::kEndToEndCandidates;
  icfg.nns_radius = 64;
  core::ImarsBackend be(*ml.model, core::ArchConfig{},
                        device::DeviceProfile::fefet45(), icfg, calib);

  StageStats fs, rs;
  for (std::size_t u = 0; u < users_to_run; ++u) {
    const auto ctx = ml.model->make_context(*ml.ds, u);
    StageStats f, r;
    const auto cands = be.filter(ctx, &f);
    (void)be.rank(ctx, cands, 10, &r);
    fs.merge(f);
    rs.merge(r);
  }
  const double n = static_cast<double>(users_to_run);

  core::StageTimes t;
  t.filter = fs.total().latency / n;
  t.rank = rs.total().latency / n;
  // Both stages contend for the shared UIET/ItET banks.
  t.shared_et = (fs.at(OpKind::kEtLookup).latency +
                 rs.at(OpKind::kEtLookup).latency) /
                n;

  util::Table table("Throughput (per-query stage times measured)");
  table.header({"quantity", "value"});
  table.row({"filtering stage", util::Table::num(t.filter.us(), 2) + " us"});
  table.row({"ranking stage", util::Table::num(t.rank.us(), 2) + " us"});
  table.row({"shared ET-bank time", util::Table::num(t.shared_et.us(), 2) + " us"});
  table.separator();
  table.row({"QPS serial (paper's assumption)",
             util::Table::num(core::qps_serial(t), 0)});
  table.row({"QPS pipelined (extension)",
             util::Table::num(core::qps_pipelined(t), 0)});
  table.row({"pipeline speedup",
             util::Table::factor(core::pipeline_speedup(t))});
  table.print(std::cout);

  bench::JsonReport json("throughput");
  json.record("stage_pipelining")
      .set("scale", scale)
      .set("users", users_to_run)
      .set("filter_us", t.filter.us())
      .set("rank_us", t.rank.us())
      .set("shared_et_us", t.shared_et.us())
      .set("qps_serial", core::qps_serial(t))
      .set("qps_pipelined", core::qps_pipelined(t))
      .set("pipeline_speedup", core::pipeline_speedup(t));
  json.write();

  std::cout << "\nReading: with ranking dominating the query, pipelining\n"
               "hides most of the filtering latency behind the previous\n"
               "query's ranking; the gain approaches (filter+rank)/rank and\n"
               "is bounded by the serialized ET-bank contention. A deeper\n"
               "per-candidate pipeline inside the ranking stage would need\n"
               "a second rank crossbar bank (area trade-off).\n";

  // CI gate: the serial stage path must report a genuine pipelined win.
  // The old accounting double-counted the shared ET time and clamped to
  // serial, so this printed exactly 1 — a regression back to that (or to
  // any model where overlapping buys nothing) fails the bench.
  const double speedup = core::pipeline_speedup(t);
  if (!(speedup > 1.0)) {
    std::cout << "\nFAIL: pipeline_speedup " << speedup
              << " is not > 1 — stage overlap bought nothing\n";
    return 1;
  }
  return 0;
}
