// Tiered embedding memory benchmark (extension): frequency-driven online
// migration vs static warm pins under a DRIFTING Zipf hot set, plus the
// in-crossbar reduction capability, on the DLRM/Criteo CTR fabric.
//
// Embedding tables are iMARS's traffic bottleneck; real deployments cannot
// hold every table row in the CMA banks. The tiered model (RecFlash
// arXiv:2604.25338 frequency mapping) backs the banks with a modeled cold
// bulk tier: a miss whose block is not warm-resident faults the whole
// block in at PerfModel::cold_block_fetch cost. Four arms over the SAME
// scripted arrival trace (ArrivalProcess::kTrace):
//
//   flat     no tiers, no reduction — the pre-tier simulator (reference)
//   reduce   DeviceProfile::in_crossbar_reduction on: parallel-group miss
//            rows merge their partial results inside the array (ReCross-
//            style), saving the per-bank result returns on the RSC bus
//   static   tiering on, migration OFF: the warm tier holds only blocks
//            pinned from a phase-A access histogram (tier-aware
//            PlacementConfig::warm_histogram) — classic offline placement
//   migrate  tiering on, online migration, no pins: cold faults admit
//            their block warm; dispatch-boundary commits demote FIFO-order
//
// The trace is two Poisson phases with the SAME Zipf skew but a rotated
// user population (phase B shifts every user index by half the
// population), so the hot row set DRIFTS mid-run: phase-A pins go stale,
// which is exactly where online migration must win.
//
// Emits BENCH_tiering.json. Exit 0 iff (a) reduce keeps top-k parity with
// flat query by query, cuts p99, raises gather utilization
// (busy/(busy+wait) over the ET-touching stage spans) and cuts the
// ET-bank busy share of the makespan; and (b) migrate beats static pins
// on p99 under the drift.
#include <iostream>
#include <unordered_map>

#include "core/backend_factory.hpp"
#include "harness.hpp"
#include "serve/observe.hpp"
#include "serve/runtime.hpp"
#include "serve/servable_ctr.hpp"
#include "serve/trace.hpp"
#include "util/table.hpp"

using namespace imars;

namespace {

// Sums the contention anatomy of every ET-touching stage span (the fused
// CTR graph's score stage): stage-unit busy time, the waits in front of
// it, and the shared ET-bank claim lengths.
struct EtStageAgg final : serve::ObserverSink {
  double busy_ns = 0.0;
  double wait_ns = 0.0;  // unit_wait + et_wait
  double et_busy_ns = 0.0;
  void on_stage(const serve::StageSpan& s) override {
    if (s.et_busy.value <= 0.0) return;
    busy_ns += s.end.value - s.start.value;
    wait_ns += s.unit_wait.value + s.et_wait.value;
    et_busy_ns += s.et_busy.value;
  }
  /// busy / (busy + wait) over the ET-touching stage spans.
  double utilization() const {
    const double denom = busy_ns + wait_ns;
    return denom > 0.0 ? busy_ns / denom : 0.0;
  }
};

}  // namespace

int main(int argc, char** argv) {
  const auto obs = bench::parse_observe_flags(argc, argv);
  const bool quick = bench::quick_mode();
  const std::size_t train_samples = quick ? 800 : 4000;
  const std::size_t queries = quick ? 96 : 384;  // per phase: queries / 2
  const std::size_t population = quick ? 128 : 512;
  const std::size_t shards = 2;
  // Tier geometry: a small hot periphery buffer, a warm tier of
  // block-granular CMA residency, everything else cold.
  const std::size_t hot_rows = 256;
  const std::size_t warm_rows = quick ? 1024 : 2048;
  const std::size_t block_rows = 8;

  std::cout << "=== Extension: tiered embedding memory + in-crossbar "
               "reduction ===\n"
            << "(synthetic Criteo, " << queries
            << " impressions over a drifting Zipf hot set, " << shards
            << " FeFET-45 shards; hot " << hot_rows << " rows, warm "
            << warm_rows << " rows in blocks of " << block_rows << ")\n\n";

  auto cr = bench::make_criteo(train_samples, quick ? 1 : 2);
  std::vector<data::CriteoSample> samples;
  for (std::size_t i = 0; i < std::min(population, cr.ds->size()); ++i)
    samples.push_back(cr.ds->sample(i));
  std::vector<data::CriteoSample> calib(samples.begin(), samples.begin() + 8);

  const core::ArchConfig arch;
  const auto flat_profile = device::DeviceProfile::fefet45();
  auto reduce_profile = flat_profile;
  reduce_profile.in_crossbar_reduction = true;

  const auto factory = core::imars_ctr_backend_factory(
      *cr.model, arch, core::TimingMode::kWorstCaseSameArray, calib);

  struct Arm {
    serve::ServeReport report;
    EtStageAgg et;
  };
  auto run_arm = [&](const device::DeviceProfile& profile,
                     const serve::HotCacheConfig& cache,
                     const serve::PlacementConfig& placement,
                     const serve::LoadGenConfig& lg,
                     serve::ObserverSink* sink = nullptr) {
    const std::vector<device::DeviceProfile> profiles(shards, profile);
    auto servable =
        std::make_unique<serve::CtrServable>(factory, profiles);
    servable->bind_samples(samples);
    serve::ServingConfig cfg;
    cfg.k = 1;
    cfg.batcher.max_batch = 16;
    cfg.batcher.max_wait = device::Ns{500000.0};
    cfg.cache = cache;
    cfg.placement = placement;
    cfg.overlap = lg.arrivals != serve::ArrivalProcess::kClosedLoop;
    cfg.self_profile = obs.any();
    serve::ServingRuntime rt(std::move(servable), cfg, arch, profile);
    Arm arm;
    rt.set_observer(sink ? sink : &arm.et);
    serve::LoadGenerator gen(lg);
    arm.report = rt.run(gen);
    return arm;
  };

  serve::LoadGenConfig base_lg;
  base_lg.clients = 16;
  base_lg.total_queries = queries;
  base_lg.num_users = samples.size();
  base_lg.user_zipf_s = 1.1;  // sharp hot set, so drift actually bites
  base_lg.seed = 233;

  // Closed-loop capacity probe of the flat arm anchors the open-loop rate
  // above saturation, where queueing amplifies per-query cost deltas into
  // tail-latency deltas.
  serve::HotCacheConfig flat_cache;
  flat_cache.capacity_rows = hot_rows;
  const double capacity =
      run_arm(flat_profile, flat_cache, {}, base_lg).report.qps();
  const double rate = 1.3 * capacity;
  std::cout << "flat capacity probe: " << util::Table::num(capacity, 0)
            << " qps; offered open-loop load " << util::Table::num(rate, 0)
            << " qps (1.3x)\n\n";

  // The drifting trace: two Poisson phases at the overload rate. Phase B
  // rotates every drawn user by half the population, so the Zipf ranks
  // land on a disjoint hot set while skew, rate and length stay equal.
  std::vector<serve::Request> trace;
  {
    double t0 = 0.0;
    for (int phase = 0; phase < 2; ++phase) {
      serve::LoadGenConfig pl = base_lg;
      pl.total_queries = queries / 2;
      pl.seed = base_lg.seed + static_cast<std::uint64_t>(phase);
      pl.arrivals = serve::ArrivalProcess::kOpenPoisson;
      pl.rate_qps = rate;
      serve::LoadGenerator gen(pl);
      double last = t0;
      while (auto r = gen.next_arrival()) {
        serve::Request q = *r;
        if (phase == 1) q.user = (q.user + population / 2) % samples.size();
        q.enqueue = device::Ns{q.enqueue.value + t0};
        q.id = trace.size();
        last = q.enqueue.value;
        trace.push_back(q);
      }
      t0 = last + 1e9 / rate;  // one mean gap between the phases
    }
  }
  serve::LoadGenConfig trace_lg = base_lg;
  trace_lg.arrivals = serve::ArrivalProcess::kTrace;
  trace_lg.trace = trace;

  // Phase-A row histogram for the static-pin arm — the offline profile an
  // operator would have trained placement on before the drift.
  serve::PlacementConfig static_pins;
  {
    std::unordered_map<std::size_t, std::uint64_t> counts;
    for (std::size_t i = 0; i < trace.size() / 2; ++i) {
      const auto& s = samples[trace[i].user];
      for (std::size_t f = 0; f < s.sparse.size(); ++f)
        counts[(static_cast<std::uint64_t>(f) << 32) | s.sparse[f]] += 1;
    }
    for (const auto& [key, freq] : counts)
      static_pins.warm_histogram.push_back({key, freq});
    // One pin per warm block: pins are block-granular and consume warm
    // capacity, so this fills the warm tier without starving it.
    static_pins.warm_rows = warm_rows / block_rows;
  }

  serve::HotCacheConfig tier_cache = flat_cache;
  tier_cache.warm_capacity_rows = warm_rows;
  tier_cache.cold_block_rows = block_rows;
  serve::HotCacheConfig static_cache = tier_cache;
  static_cache.migrate = false;

  bench::JsonReport json("tiering");
  json.record("capacity")
      .set("flat_capacity_qps", capacity)
      .set("rate_qps", rate)
      .set("queries", trace.size())
      .set("shards", shards)
      .set("hot_rows", hot_rows)
      .set("warm_rows", warm_rows)
      .set("block_rows", block_rows);

  struct ArmSpec {
    std::string name;
    const device::DeviceProfile* profile;
    const serve::HotCacheConfig* cache;
    const serve::PlacementConfig* placement;
  };
  const serve::PlacementConfig no_pins;
  const std::vector<ArmSpec> grid = {
      {"flat", &flat_profile, &flat_cache, &no_pins},
      {"reduce", &reduce_profile, &flat_cache, &no_pins},
      {"static", &flat_profile, &static_cache, &static_pins},
      {"migrate", &flat_profile, &tier_cache, &no_pins},
  };

  util::Table table("tiered embedding memory under a drifting hot set (" +
                    std::to_string(trace.size()) + " impressions)");
  table.header({"arm", "QPS", "p99 us", "gather util", "ET share", "warm hit",
                "cold faults"});

  std::vector<Arm> arms;
  for (const auto& a : grid) {
    arms.push_back(run_arm(*a.profile, *a.cache, *a.placement, trace_lg));
    const auto& arm = arms.back();
    const auto& r = arm.report;
    if (obs.self_profile)
      bench::print_host_spans(a.name, r.host_span_us, std::cout);
    const double et_share =
        r.makespan.value > 0.0 ? arm.et.et_busy_ns / r.makespan.value : 0.0;
    table.row({a.name, util::Table::num(r.qps(), 0),
               util::Table::num(r.p99_latency_ns() * 1e-3, 1),
               util::Table::num(arm.et.utilization(), 3),
               util::Table::num(et_share, 3),
               util::Table::num(static_cast<double>(r.cache.warm_hits), 0),
               util::Table::num(static_cast<double>(r.cache.cold_faults), 0)});
    json.record(a.name)
        .set("queries", trace.size())
        .set("rate_qps", rate)
        .set("qps", r.qps())
        .set("p50_us", r.p50_latency_ns() * 1e-3)
        .set("p95_us", r.p95_latency_ns() * 1e-3)
        .set("p99_us", r.p99_latency_ns() * 1e-3)
        .set("makespan_ms", r.makespan.ms())
        .set("gather_utilization", arm.et.utilization())
        .set("et_busy_share", et_share)
        .set("cache_hits", r.cache.hits)
        .set("cache_misses", r.cache.misses)
        .set("warm_hits", r.cache.warm_hits)
        .set("cold_faults", r.cache.cold_faults)
        .set("cold_rows_fetched", r.cache.cold_rows_fetched)
        .set("warm_evictions", r.cache.warm_evictions)
        .set("promotions", r.cache.promotions);
  }
  table.print(std::cout);

  // --trace re-runs the migrate arm under a TraceLog (the runtime takes a
  // single observer and the ET aggregate above feeds the gates). Reports
  // are deterministic, so the exported timeline is the gated run's and the
  // JSON records stay bit-identical with and without --trace; summarize
  // the migration traffic with `trace_summary --tiers`.
  if (!obs.trace_path.empty()) {
    serve::TraceLog tlog;
    run_arm(flat_profile, tier_cache, no_pins, trace_lg, &tlog);
    tlog.write(obs.trace_path);
    std::cout << "trace: " << tlog.events().size() << " events -> "
              << obs.trace_path << "\n";
  }

  const auto& flat = arms[0];
  const auto& reduce = arms[1];
  const auto& stat = arms[2];
  const auto& migrate = arms[3];

  // Reduction gate 1: score parity query by query — merging partial
  // results inside the array must never change what is computed.
  bool parity = flat.report.size() == reduce.report.size();
  for (std::size_t i = 0; parity && i < flat.report.size(); ++i) {
    const auto& a = flat.report.queries[i];
    const auto& b = reduce.report.queries[i];
    if (a.id != b.id || a.topk.size() != b.topk.size()) parity = false;
    for (std::size_t j = 0; parity && j < a.topk.size(); ++j)
      if (a.topk[j].item != b.topk[j].item ||
          a.topk[j].score != b.topk[j].score)
        parity = false;
  }

  const double p99_flat = flat.report.p99_latency_ns();
  const double p99_reduce = reduce.report.p99_latency_ns();
  const double p99_static = stat.report.p99_latency_ns();
  const double p99_migrate = migrate.report.p99_latency_ns();
  const double flat_share = flat.report.makespan.value > 0.0
                                ? flat.et.et_busy_ns / flat.report.makespan.value
                                : 0.0;
  const double reduce_share =
      reduce.report.makespan.value > 0.0
          ? reduce.et.et_busy_ns / reduce.report.makespan.value
          : 0.0;

  const bool reduce_tail_ok = p99_reduce < p99_flat;
  const bool util_ok = reduce.et.utilization() > flat.et.utilization();
  const bool et_share_ok = reduce_share < flat_share;
  const bool migrate_ok = p99_migrate < p99_static;

  json.record("delta")
      .set("reduce_p99_gain", p99_flat > 0.0 ? 1.0 - p99_reduce / p99_flat : 0.0)
      .set("reduce_util_gain",
           reduce.et.utilization() - flat.et.utilization())
      .set("reduce_et_share_cut", flat_share - reduce_share)
      .set("migrate_vs_static_p99_gain",
           p99_static > 0.0 ? 1.0 - p99_migrate / p99_static : 0.0)
      .set("parity", parity ? 1 : 0);
  json.write();

  std::cout << "\nin-crossbar reduction: p99 "
            << util::Table::num(p99_flat * 1e-3, 1) << " us -> "
            << util::Table::num(p99_reduce * 1e-3, 1) << " us, gather util "
            << util::Table::num(flat.et.utilization(), 3) << " -> "
            << util::Table::num(reduce.et.utilization(), 3)
            << ", ET busy share " << util::Table::num(flat_share, 3) << " -> "
            << util::Table::num(reduce_share, 3) << "; top-k parity "
            << (parity ? "OK" : "FAIL") << "\n"
            << "online migration vs stale static pins: p99 "
            << util::Table::num(p99_static * 1e-3, 1) << " us -> "
            << util::Table::num(p99_migrate * 1e-3, 1) << " us\n"
            << "Reading: reduction trims the per-bank result returns on the\n"
               "RSC bus, so the shared ET claim shrinks and the gather\n"
               "units spend more of their wall time computing; under the\n"
               "mid-run hot-set drift the phase-A pins go stale and every\n"
               "unpinned miss streams a cold block, while online migration\n"
               "re-warms the new hot blocks within a few dispatch commits.\n";
  return (parity && reduce_tail_ok && util_ok && et_share_ok && migrate_ok)
             ? 0
             : 1;
}
