// Tiered embedding memory benchmark (extension): frequency-driven online
// migration vs static warm pins under a DRIFTING Zipf hot set, plus the
// in-crossbar reduction capability, on the DLRM/Criteo CTR fabric.
//
// Embedding tables are iMARS's traffic bottleneck; real deployments cannot
// hold every table row in the CMA banks. The tiered model (RecFlash
// arXiv:2604.25338 frequency mapping) backs the banks with a modeled cold
// bulk tier: a miss whose block is not warm-resident faults the whole
// block in at PerfModel::cold_block_fetch cost. Four arms over the SAME
// scripted arrival trace (ArrivalProcess::kTrace):
//
//   flat     no tiers, no reduction — the pre-tier simulator (reference)
//   reduce   DeviceProfile::in_crossbar_reduction on: a pooling scope's
//            missed rows that land in the SAME CMA array merge their
//            partial results on the array's bitlines (ReCross-style),
//            saving the per-row result returns on the RSC bus
//   static   tiering on, migration OFF: the warm tier holds only blocks
//            pinned from a phase-A access histogram (tier-aware
//            PlacementConfig::warm_histogram) — classic offline placement
//   migrate  tiering on, online migration, no pins: cold faults admit
//            their block warm; dispatch-boundary commits demote FIFO-order
//
// The trace is two Poisson phases with the SAME Zipf skew but a rotated
// user population (phase B shifts every user index by half the
// population), so the hot row set DRIFTS mid-run: phase-A pins go stale,
// which is exactly where online migration must win.
//
// DLRM's sparse lookups are one-hot rows in 26 DISTINCT tables, so on this
// fabric the pooled-workload reduction model earns exactly ZERO credit —
// no two missed rows of an impression can meet on a bitline. The reduce
// arm therefore gates bit-level INERTNESS (the former single-row model
// credited misses per scope without the same-array constraint and
// manufactured a tail-latency win here). The win the capability does buy
// is shown on a pooled MovieLens side experiment: history chains pool
// several ItET rows per pass inside a handful of 256-row arrays, so a
// flat-cache miss burst merges for real.
//
// Emits BENCH_tiering.json. Exit 0 iff (a) the reduce arm is bit-identical
// to flat on the one-hot fabric; (b) migrate beats static pins on p99
// under the drift; and (c) the pooled MovieLens run keeps results parity,
// completes no query later, completes some strictly earlier, and strictly
// cuts total device time.
#include <iostream>
#include <unordered_map>

#include "core/backend_factory.hpp"
#include "harness.hpp"
#include "serve/observe.hpp"
#include "serve/runtime.hpp"
#include "serve/servable_ctr.hpp"
#include "serve/shard_router.hpp"
#include "serve/trace.hpp"
#include "serve_compare.hpp"
#include "util/table.hpp"

using namespace imars;

namespace {

// Sums the contention anatomy of every ET-touching stage span (the fused
// CTR graph's score stage): stage-unit busy time, the waits in front of
// it, and the shared ET-bank claim lengths.
struct EtStageAgg final : serve::ObserverSink {
  double busy_ns = 0.0;
  double wait_ns = 0.0;  // unit_wait + et_wait
  double et_busy_ns = 0.0;
  void on_stage(const serve::StageSpan& s) override {
    if (s.et_busy.value <= 0.0) return;
    busy_ns += s.end.value - s.start.value;
    wait_ns += s.unit_wait.value + s.et_wait.value;
    et_busy_ns += s.et_busy.value;
  }
  /// busy / (busy + wait) over the ET-touching stage spans.
  double utilization() const {
    const double denom = busy_ns + wait_ns;
    return denom > 0.0 ? busy_ns / denom : 0.0;
  }
};

}  // namespace

int main(int argc, char** argv) {
  const auto obs = bench::parse_observe_flags(argc, argv);
  const bool quick = bench::quick_mode();
  const std::size_t train_samples = quick ? 800 : 4000;
  const std::size_t queries = quick ? 96 : 384;  // per phase: queries / 2
  const std::size_t population = quick ? 128 : 512;
  const std::size_t shards = 2;
  // Tier geometry: a small hot periphery buffer, a warm tier of
  // block-granular CMA residency, everything else cold.
  const std::size_t hot_rows = 256;
  const std::size_t warm_rows = quick ? 1024 : 2048;
  const std::size_t block_rows = 8;

  std::cout << "=== Extension: tiered embedding memory + in-crossbar "
               "reduction ===\n"
            << "(synthetic Criteo, " << queries
            << " impressions over a drifting Zipf hot set, " << shards
            << " FeFET-45 shards; hot " << hot_rows << " rows, warm "
            << warm_rows << " rows in blocks of " << block_rows << ")\n\n";

  auto cr = bench::make_criteo(train_samples, quick ? 1 : 2);
  std::vector<data::CriteoSample> samples;
  for (std::size_t i = 0; i < std::min(population, cr.ds->size()); ++i)
    samples.push_back(cr.ds->sample(i));
  std::vector<data::CriteoSample> calib(samples.begin(), samples.begin() + 8);

  const core::ArchConfig arch;
  const auto flat_profile = device::DeviceProfile::fefet45();
  auto reduce_profile = flat_profile;
  reduce_profile.in_crossbar_reduction = true;

  const auto factory = core::imars_ctr_backend_factory(
      *cr.model, arch, core::TimingMode::kWorstCaseSameArray, calib);

  struct Arm {
    serve::ServeReport report;
    EtStageAgg et;
  };
  auto run_arm = [&](const device::DeviceProfile& profile,
                     const serve::HotCacheConfig& cache,
                     const serve::PlacementConfig& placement,
                     const serve::LoadGenConfig& lg,
                     serve::ObserverSink* sink = nullptr) {
    const std::vector<device::DeviceProfile> profiles(shards, profile);
    auto servable =
        std::make_unique<serve::CtrServable>(factory, profiles);
    servable->bind_samples(samples);
    serve::ServingConfig cfg;
    cfg.k = 1;
    cfg.batcher.max_batch = 16;
    cfg.batcher.max_wait = device::Ns{500000.0};
    cfg.cache = cache;
    cfg.placement = placement;
    cfg.overlap = lg.arrivals != serve::ArrivalProcess::kClosedLoop;
    cfg.self_profile = obs.any();
    serve::ServingRuntime rt(std::move(servable), cfg, arch, profile);
    Arm arm;
    rt.set_observer(sink ? sink : &arm.et);
    serve::LoadGenerator gen(lg);
    arm.report = rt.run(gen);
    return arm;
  };

  serve::LoadGenConfig base_lg;
  base_lg.clients = 16;
  base_lg.total_queries = queries;
  base_lg.num_users = samples.size();
  base_lg.user_zipf_s = 1.1;  // sharp hot set, so drift actually bites
  base_lg.seed = 233;

  // Closed-loop capacity probe of the flat arm anchors the open-loop rate
  // above saturation, where queueing amplifies per-query cost deltas into
  // tail-latency deltas.
  serve::HotCacheConfig flat_cache;
  flat_cache.capacity_rows = hot_rows;
  const double capacity =
      run_arm(flat_profile, flat_cache, {}, base_lg).report.qps();
  const double rate = 1.3 * capacity;
  std::cout << "flat capacity probe: " << util::Table::num(capacity, 0)
            << " qps; offered open-loop load " << util::Table::num(rate, 0)
            << " qps (1.3x)\n\n";

  // The drifting trace: two Poisson phases at the overload rate. Phase B
  // rotates every drawn user by half the population, so the Zipf ranks
  // land on a disjoint hot set while skew, rate and length stay equal.
  std::vector<serve::Request> trace;
  {
    double t0 = 0.0;
    for (int phase = 0; phase < 2; ++phase) {
      serve::LoadGenConfig pl = base_lg;
      pl.total_queries = queries / 2;
      pl.seed = base_lg.seed + static_cast<std::uint64_t>(phase);
      pl.arrivals = serve::ArrivalProcess::kOpenPoisson;
      pl.rate_qps = rate;
      serve::LoadGenerator gen(pl);
      double last = t0;
      while (auto r = gen.next_arrival()) {
        serve::Request q = *r;
        if (phase == 1) q.user = (q.user + population / 2) % samples.size();
        q.enqueue = device::Ns{q.enqueue.value + t0};
        q.id = trace.size();
        last = q.enqueue.value;
        trace.push_back(q);
      }
      t0 = last + 1e9 / rate;  // one mean gap between the phases
    }
  }
  serve::LoadGenConfig trace_lg = base_lg;
  trace_lg.arrivals = serve::ArrivalProcess::kTrace;
  trace_lg.trace = trace;

  // Phase-A row histogram for the static-pin arm — the offline profile an
  // operator would have trained placement on before the drift.
  serve::PlacementConfig static_pins;
  {
    std::unordered_map<std::size_t, std::uint64_t> counts;
    for (std::size_t i = 0; i < trace.size() / 2; ++i) {
      const auto& s = samples[trace[i].user];
      for (std::size_t f = 0; f < s.sparse.size(); ++f)
        counts[(static_cast<std::uint64_t>(f) << 32) | s.sparse[f]] += 1;
    }
    for (const auto& [key, freq] : counts)
      static_pins.warm_histogram.push_back({key, freq});
    // One pin per warm block: pins are block-granular and consume warm
    // capacity, so this fills the warm tier without starving it.
    static_pins.warm_rows = warm_rows / block_rows;
  }

  serve::HotCacheConfig tier_cache = flat_cache;
  tier_cache.warm_capacity_rows = warm_rows;
  tier_cache.cold_block_rows = block_rows;
  serve::HotCacheConfig static_cache = tier_cache;
  static_cache.migrate = false;

  bench::JsonReport json("tiering");
  json.record("capacity")
      .set("flat_capacity_qps", capacity)
      .set("rate_qps", rate)
      .set("queries", trace.size())
      .set("shards", shards)
      .set("hot_rows", hot_rows)
      .set("warm_rows", warm_rows)
      .set("block_rows", block_rows);

  struct ArmSpec {
    std::string name;
    const device::DeviceProfile* profile;
    const serve::HotCacheConfig* cache;
    const serve::PlacementConfig* placement;
  };
  const serve::PlacementConfig no_pins;
  const std::vector<ArmSpec> grid = {
      {"flat", &flat_profile, &flat_cache, &no_pins},
      {"reduce", &reduce_profile, &flat_cache, &no_pins},
      {"static", &flat_profile, &static_cache, &static_pins},
      {"migrate", &flat_profile, &tier_cache, &no_pins},
  };

  util::Table table("tiered embedding memory under a drifting hot set (" +
                    std::to_string(trace.size()) + " impressions)");
  table.header({"arm", "QPS", "p99 us", "gather util", "ET share", "warm hit",
                "cold faults"});

  std::vector<Arm> arms;
  for (const auto& a : grid) {
    arms.push_back(run_arm(*a.profile, *a.cache, *a.placement, trace_lg));
    const auto& arm = arms.back();
    const auto& r = arm.report;
    if (obs.self_profile)
      bench::print_host_spans(a.name, r.host_span_us, std::cout);
    const double et_share =
        r.makespan.value > 0.0 ? arm.et.et_busy_ns / r.makespan.value : 0.0;
    table.row({a.name, util::Table::num(r.qps(), 0),
               util::Table::num(r.p99_latency_ns() * 1e-3, 1),
               util::Table::num(arm.et.utilization(), 3),
               util::Table::num(et_share, 3),
               util::Table::num(static_cast<double>(r.cache.warm_hits), 0),
               util::Table::num(static_cast<double>(r.cache.cold_faults), 0)});
    json.record(a.name)
        .set("queries", trace.size())
        .set("rate_qps", rate)
        .set("qps", r.qps())
        .set("p50_us", r.p50_latency_ns() * 1e-3)
        .set("p95_us", r.p95_latency_ns() * 1e-3)
        .set("p99_us", r.p99_latency_ns() * 1e-3)
        .set("makespan_ms", r.makespan.ms())
        .set("gather_utilization", arm.et.utilization())
        .set("et_busy_share", et_share)
        .set("cache_hits", r.cache.hits)
        .set("cache_misses", r.cache.misses)
        .set("warm_hits", r.cache.warm_hits)
        .set("cold_faults", r.cache.cold_faults)
        .set("cold_rows_fetched", r.cache.cold_rows_fetched)
        .set("warm_evictions", r.cache.warm_evictions)
        .set("promotions", r.cache.promotions);
  }
  table.print(std::cout);

  // --trace re-runs the migrate arm under a TraceLog (the runtime takes a
  // single observer and the ET aggregate above feeds the gates). Reports
  // are deterministic, so the exported timeline is the gated run's and the
  // JSON records stay bit-identical with and without --trace; summarize
  // the migration traffic with `trace_summary --tiers`.
  if (!obs.trace_path.empty()) {
    serve::TraceLog tlog;
    run_arm(flat_profile, tier_cache, no_pins, trace_lg, &tlog);
    tlog.write(obs.trace_path);
    std::cout << "trace: " << tlog.events().size() << " events -> "
              << obs.trace_path << "\n";
  }

  const auto& flat = arms[0];
  const auto& reduce = arms[1];
  const auto& stat = arms[2];
  const auto& migrate = arms[3];

  // Reduction gate: on the one-hot fabric the pooled-workload model earns
  // zero credit, so the arm must be completely inert — every timestamp,
  // latency and counter bit-identical to flat.
  const bool reduce_inert =
      bench::reports_equal(flat.report, reduce.report, "reduce-inert");

  const double p99_flat = flat.report.p99_latency_ns();
  const double p99_reduce = reduce.report.p99_latency_ns();
  const double p99_static = stat.report.p99_latency_ns();
  const double p99_migrate = migrate.report.p99_latency_ns();
  const bool migrate_ok = p99_migrate < p99_static;

  // --- Pooled-workload reduction: where the merges actually happen ---------
  // MovieLens history chains pool several ItET rows per pass, and the
  // catalog spans a handful of 256-row arrays: a flat-cache miss burst
  // within one chain lands same-array rows, which DO merge. Both arms see
  // the identical open-loop arrival stream, so the reduce-profile run must
  // dominate query by query.
  std::cout << "\n--- pooled-workload reduction (MovieLens history chains) "
               "---\n";
  auto ml = bench::make_movielens(quick ? 0.02 : 0.05, 1, 1, 817);
  std::vector<recsys::UserContext> users;
  for (std::size_t u = 0; u < ml.ds->num_users(); ++u)
    users.push_back(ml.model->make_context(*ml.ds, u));
  const std::vector<recsys::UserContext> ml_calib(users.begin(),
                                                  users.begin() + 8);
  core::ImarsBackendConfig icfg;
  icfg.timing = core::TimingMode::kWorstCaseSameArray;
  icfg.nns_radius = 64;
  const auto ml_factory = core::imars_backend_factory(*ml.model, arch,
                                                      flat_profile, icfg,
                                                      ml_calib);
  auto run_pooled = [&](const device::DeviceProfile& profile) {
    serve::TrafficSpec traffic;
    traffic.filter_features = ml.model->filter_features();
    traffic.rank_features = ml.model->rank_features();
    auto router =
        std::make_unique<serve::ShardRouter>(ml_factory, 2, traffic);
    auto spec = serve::ShardRouter::pipeline_spec();
    for (auto& s : spec.stages) s.reduce = true;
    router->override_spec(std::move(spec));
    serve::ServingConfig cfg;
    cfg.k = 5;
    cfg.batcher.max_batch = 4;
    cfg.batcher.max_wait = device::Ns{300000.0};
    cfg.cache.capacity_rows = hot_rows / 4;  // chains actually miss
    serve::ServingRuntime rt(std::move(router), cfg, arch, profile);
    serve::LoadGenConfig lg;
    lg.clients = 8;
    lg.total_queries = quick ? 48 : 120;
    lg.num_users = users.size();
    lg.user_zipf_s = 1.1;
    lg.seed = 331;
    lg.arrivals = serve::ArrivalProcess::kOpenPoisson;
    lg.rate_qps = 2.0e5;
    serve::LoadGenerator gen(lg);
    return rt.run(gen, users);
  };
  const auto pooled_flat = run_pooled(flat_profile);
  const auto pooled_reduce = run_pooled(reduce_profile);
  bool pooled_parity = pooled_flat.size() == pooled_reduce.size();
  bool never_later = true;
  std::size_t strictly_faster = 0;
  double dev_flat = 0.0, dev_reduce = 0.0;
  for (std::size_t i = 0;
       pooled_parity && i < pooled_flat.queries.size(); ++i) {
    const auto& a = pooled_flat.queries[i];
    const auto& b = pooled_reduce.queries[i];
    if (a.id != b.id || a.topk.size() != b.topk.size()) pooled_parity = false;
    for (std::size_t j = 0; pooled_parity && j < a.topk.size(); ++j)
      if (a.topk[j].item != b.topk[j].item ||
          a.topk[j].score != b.topk[j].score)
        pooled_parity = false;
    const double la = (a.complete - a.enqueue).value;
    const double lb = (b.complete - b.enqueue).value;
    if (lb > la + 1e-6) never_later = false;
    if (la - lb > 1e-6) ++strictly_faster;
    dev_flat += a.device_time.value;
    dev_reduce += b.device_time.value;
  }
  const bool pooled_ok = pooled_parity && never_later &&
                         strictly_faster > 0 && dev_reduce < dev_flat;
  std::cout << "pooled arm: device time "
            << util::Table::num(dev_flat * 1e-3, 1) << " us -> "
            << util::Table::num(dev_reduce * 1e-3, 1) << " us, "
            << strictly_faster << "/" << pooled_flat.size()
            << " queries strictly faster, results parity "
            << (pooled_parity ? "OK" : "FAIL") << "\n";

  json.record("reduce_pooled")
      .set("queries", pooled_flat.size())
      .set("flat_device_us", dev_flat * 1e-3)
      .set("reduce_device_us", dev_reduce * 1e-3)
      .set("device_time_cut",
           dev_flat > 0.0 ? 1.0 - dev_reduce / dev_flat : 0.0)
      .set("strictly_faster", strictly_faster)
      .set("flat_p99_us", pooled_flat.p99_latency_ns() * 1e-3)
      .set("reduce_p99_us", pooled_reduce.p99_latency_ns() * 1e-3)
      .set("parity", pooled_parity ? 1 : 0);
  json.record("delta")
      .set("reduce_inert", reduce_inert ? 1 : 0)
      .set("pooled_device_time_cut",
           dev_flat > 0.0 ? 1.0 - dev_reduce / dev_flat : 0.0)
      .set("migrate_vs_static_p99_gain",
           p99_static > 0.0 ? 1.0 - p99_migrate / p99_static : 0.0);
  json.write();

  std::cout << "\nin-crossbar reduction on one-hot lookups: p99 "
            << util::Table::num(p99_flat * 1e-3, 1) << " us -> "
            << util::Table::num(p99_reduce * 1e-3, 1) << " us (inert: "
            << (reduce_inert ? "OK" : "FAIL") << ")\n"
            << "online migration vs stale static pins: p99 "
            << util::Table::num(p99_static * 1e-3, 1) << " us -> "
            << util::Table::num(p99_migrate * 1e-3, 1) << " us\n"
            << "Reading: rows can only accumulate on the bitlines of the\n"
               "array they are resident in, so DLRM's 26 distinct-table\n"
               "one-hot lookups never merge — the capability is provably\n"
               "free here, and its real win lives in pooled chains whose\n"
               "missed rows share an array (the MovieLens arm); under the\n"
               "mid-run hot-set drift the phase-A pins go stale and every\n"
               "unpinned miss streams a cold block, while online migration\n"
               "re-warms the new hot blocks within a few dispatch commits.\n";
  return (reduce_inert && migrate_ok && pooled_ok) ? 0 : 1;
}
