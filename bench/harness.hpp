// Shared setup helpers for the bench binaries: trained models at paper scale
// (or a reduced scale for the slower algorithmic experiments), plus the
// Table I workload parameters used by the analytical models.
#pragma once

#include <cstdlib>
#include <iostream>
#include <memory>
#include <string>

#include "data/criteo.hpp"
#include "data/movielens.hpp"
#include "recsys/dlrm.hpp"
#include "recsys/youtube_dnn.hpp"
#include "util/rng.hpp"

namespace imars::bench {

/// Workload constants shared by the analytical benches (Table I / Sec IV).
struct PaperWorkloads {
  // MovieLens-1M (YouTubeDNN, filtering + ranking).
  static constexpr std::size_t kMlItems = 3952;
  static constexpr std::size_t kMlFilterTables = 6;  // 5 UIETs + ItET
  static constexpr std::size_t kMlRankTables = 7;    // 6 UIETs + ItET
  // Active CMAs of the touched tables (our mapping; see bench_table1).
  static constexpr std::size_t kMlFilterActiveCmas = 73;
  static constexpr std::size_t kMlRankActiveCmas = 74;
  static constexpr std::size_t kMlItetSigCmas = 16;

  // Criteo Kaggle (DLRM, ranking only). Table I: 26 banks / 104 mats /
  // 2860 CMAs.
  static constexpr std::size_t kCriteoTables = 26;
  static constexpr std::size_t kCriteoActiveCmas = 2860;
  static constexpr std::size_t kCriteoMatsPerTable = 4;

  // Paper DNN stacks (layer widths incl. the assembled input dims of our
  // reproduction; the hidden widths are the paper's).
  static constexpr std::size_t kFilterDnnDims[4] = {196, 128, 64, 32};
  static constexpr std::size_t kRankDnnDims[3] = {260, 128, 1};
  static constexpr std::size_t kDlrmBottomDims[4] = {13, 256, 128, 32};
  static constexpr std::size_t kDlrmTopDims[4] = {383, 256, 64, 1};
};

/// A trained MovieLens + YouTubeDNN pair.
struct MovieLensSetup {
  std::unique_ptr<data::MovieLensSynth> ds;
  std::unique_ptr<recsys::YoutubeDnn> model;
};

/// Builds and trains a YouTubeDNN on synthetic MovieLens. `scale` in (0,1]
/// shrinks users/items for the slower algorithmic benches; 1.0 is the full
/// MovieLens-1M shape.
inline MovieLensSetup make_movielens(double scale, std::size_t filter_epochs,
                                     std::size_t rank_epochs,
                                     std::uint64_t seed = 404) {
  data::MovieLensConfig dcfg;
  dcfg.num_users = std::max<std::size_t>(
      50, static_cast<std::size_t>(6040 * scale));
  dcfg.num_items = std::max<std::size_t>(
      60, static_cast<std::size_t>(3952 * scale));
  dcfg.seed = seed;

  MovieLensSetup s;
  s.ds = std::make_unique<data::MovieLensSynth>(dcfg);

  recsys::YoutubeDnnConfig mcfg;  // paper dims: 32-d, 128-64-32 / 128-1
  mcfg.seed = seed + 1;
  s.model = std::make_unique<recsys::YoutubeDnn>(s.ds->schema(), mcfg);

  util::Xoshiro256 rng(seed + 2);
  for (std::size_t e = 0; e < filter_epochs; ++e) {
    const float loss = s.model->train_filter_epoch(*s.ds, rng);
    std::cerr << "  [train] filter epoch " << e + 1 << "/" << filter_epochs
              << " loss " << loss << "\n";
  }
  for (std::size_t e = 0; e < rank_epochs; ++e) {
    const float loss = s.model->train_rank_epoch(*s.ds, rng);
    std::cerr << "  [train] rank epoch " << e + 1 << "/" << rank_epochs
              << " loss " << loss << "\n";
  }
  return s;
}

/// A trained Criteo + DLRM pair.
struct CriteoSetup {
  std::unique_ptr<data::CriteoSynth> ds;
  std::unique_ptr<recsys::Dlrm> model;
};

inline CriteoSetup make_criteo(std::size_t samples, std::size_t epochs,
                               std::uint64_t seed = 505) {
  data::CriteoConfig dcfg;
  dcfg.num_samples = samples;
  dcfg.seed = seed;

  CriteoSetup s;
  s.ds = std::make_unique<data::CriteoSynth>(dcfg);

  recsys::DlrmConfig mcfg;  // paper dims: 256-128-32 / 256-64-1
  mcfg.seed = seed + 1;
  s.model = std::make_unique<recsys::Dlrm>(s.ds->schema(), mcfg);

  util::Xoshiro256 rng(seed + 2);
  for (std::size_t e = 0; e < epochs; ++e) {
    const float loss = s.model->train_epoch(*s.ds, rng);
    std::cerr << "  [train] dlrm epoch " << e + 1 << "/" << epochs << " loss "
              << loss << "\n";
  }
  return s;
}

/// Honors IMARS_BENCH_QUICK=1 for CI-speed runs of the slow benches.
inline bool quick_mode() {
  const char* v = std::getenv("IMARS_BENCH_QUICK");
  return v != nullptr && std::string(v) == "1";
}

}  // namespace imars::bench
