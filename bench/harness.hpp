// Shared setup helpers for the bench binaries: trained models at paper scale
// (or a reduced scale for the slower algorithmic experiments), plus the
// Table I workload parameters used by the analytical models.
#pragma once

#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <memory>
#include <sstream>
#include <string>
#include <string_view>
#include <utility>
#include <variant>
#include <vector>

#include "data/criteo.hpp"
#include "data/movielens.hpp"
#include "recsys/dlrm.hpp"
#include "recsys/youtube_dnn.hpp"
#include "util/rng.hpp"

namespace imars::bench {

/// Workload constants shared by the analytical benches (Table I / Sec IV).
struct PaperWorkloads {
  // MovieLens-1M (YouTubeDNN, filtering + ranking).
  static constexpr std::size_t kMlItems = 3952;
  static constexpr std::size_t kMlFilterTables = 6;  // 5 UIETs + ItET
  static constexpr std::size_t kMlRankTables = 7;    // 6 UIETs + ItET
  // Active CMAs of the touched tables (our mapping; see bench_table1).
  static constexpr std::size_t kMlFilterActiveCmas = 73;
  static constexpr std::size_t kMlRankActiveCmas = 74;
  static constexpr std::size_t kMlItetSigCmas = 16;

  // Criteo Kaggle (DLRM, ranking only). Table I: 26 banks / 104 mats /
  // 2860 CMAs.
  static constexpr std::size_t kCriteoTables = 26;
  static constexpr std::size_t kCriteoActiveCmas = 2860;
  static constexpr std::size_t kCriteoMatsPerTable = 4;

  // Paper DNN stacks (layer widths incl. the assembled input dims of our
  // reproduction; the hidden widths are the paper's).
  static constexpr std::size_t kFilterDnnDims[4] = {196, 128, 64, 32};
  static constexpr std::size_t kRankDnnDims[3] = {260, 128, 1};
  static constexpr std::size_t kDlrmBottomDims[4] = {13, 256, 128, 32};
  static constexpr std::size_t kDlrmTopDims[4] = {383, 256, 64, 1};
};

/// A trained MovieLens + YouTubeDNN pair.
struct MovieLensSetup {
  std::unique_ptr<data::MovieLensSynth> ds;
  std::unique_ptr<recsys::YoutubeDnn> model;
};

/// Builds and trains a YouTubeDNN on synthetic MovieLens. `scale` in (0,1]
/// shrinks users/items for the slower algorithmic benches; 1.0 is the full
/// MovieLens-1M shape.
inline MovieLensSetup make_movielens(double scale, std::size_t filter_epochs,
                                     std::size_t rank_epochs,
                                     std::uint64_t seed = 404) {
  data::MovieLensConfig dcfg;
  dcfg.num_users = std::max<std::size_t>(
      50, static_cast<std::size_t>(6040 * scale));
  dcfg.num_items = std::max<std::size_t>(
      60, static_cast<std::size_t>(3952 * scale));
  dcfg.seed = seed;

  MovieLensSetup s;
  s.ds = std::make_unique<data::MovieLensSynth>(dcfg);

  recsys::YoutubeDnnConfig mcfg;  // paper dims: 32-d, 128-64-32 / 128-1
  mcfg.seed = seed + 1;
  s.model = std::make_unique<recsys::YoutubeDnn>(s.ds->schema(), mcfg);

  util::Xoshiro256 rng(seed + 2);
  for (std::size_t e = 0; e < filter_epochs; ++e) {
    const float loss = s.model->train_filter_epoch(*s.ds, rng);
    std::cerr << "  [train] filter epoch " << e + 1 << "/" << filter_epochs
              << " loss " << loss << "\n";
  }
  for (std::size_t e = 0; e < rank_epochs; ++e) {
    const float loss = s.model->train_rank_epoch(*s.ds, rng);
    std::cerr << "  [train] rank epoch " << e + 1 << "/" << rank_epochs
              << " loss " << loss << "\n";
  }
  return s;
}

/// A trained Criteo + DLRM pair.
struct CriteoSetup {
  std::unique_ptr<data::CriteoSynth> ds;
  std::unique_ptr<recsys::Dlrm> model;
};

inline CriteoSetup make_criteo(std::size_t samples, std::size_t epochs,
                               std::uint64_t seed = 505) {
  data::CriteoConfig dcfg;
  dcfg.num_samples = samples;
  dcfg.seed = seed;

  CriteoSetup s;
  s.ds = std::make_unique<data::CriteoSynth>(dcfg);

  recsys::DlrmConfig mcfg;  // paper dims: 256-128-32 / 256-64-1
  mcfg.seed = seed + 1;
  s.model = std::make_unique<recsys::Dlrm>(s.ds->schema(), mcfg);

  util::Xoshiro256 rng(seed + 2);
  for (std::size_t e = 0; e < epochs; ++e) {
    const float loss = s.model->train_epoch(*s.ds, rng);
    std::cerr << "  [train] dlrm epoch " << e + 1 << "/" << epochs << " loss "
              << loss << "\n";
  }
  return s;
}

/// Honors IMARS_BENCH_QUICK=1 for CI-speed runs of the slow benches.
inline bool quick_mode() {
  const char* v = std::getenv("IMARS_BENCH_QUICK");
  return v != nullptr && std::string(v) == "1";
}

/// Shared `--self-profile` / `--trace <file>` flags for the serving benches.
/// Both are pure observation: enabling them must never change a reported
/// figure or a BENCH_*.json record. `--trace` exports one representative
/// run (each bench picks its most loaded configuration) as Chrome
/// trace-event JSON; `--self-profile` prints the host-path wall-clock
/// spans of each run.
struct ObserveFlags {
  bool self_profile = false;
  std::string trace_path;
  bool any() const { return self_profile || !trace_path.empty(); }
};

inline ObserveFlags parse_observe_flags(int argc, char** argv) {
  ObserveFlags flags;
  for (int i = 1; i < argc; ++i) {
    const std::string_view arg(argv[i]);
    if (arg == "--self-profile")
      flags.self_profile = true;
    else if (arg == "--trace" && i + 1 < argc)
      flags.trace_path = argv[++i];
  }
  return flags;
}

/// One compact line of self-profiled host spans for a run. The total
/// mirrors ServeReport::host_total_us (worker-completion wait excluded).
inline void print_host_spans(
    const std::string& label,
    const std::vector<std::pair<std::string, double>>& spans,
    std::ostream& os) {
  double total = 0.0;
  for (const auto& [name, us] : spans)
    if (name != "host.wait") total += us;
  os << "  [self-profile] " << label << ": host path "
     << static_cast<std::int64_t>(total) << " us";
  for (const auto& [name, us] : spans)
    os << ", " << name << " " << static_cast<std::int64_t>(us);
  os << "\n";
}

/// Machine-readable bench records: collects flat key/value rows and writes
/// them as a JSON array to `BENCH_<bench>.json`, so the perf trajectory of
/// a bench can be tracked across commits. Values are numbers or strings.
class JsonReport {
 public:
  using Value = std::variant<double, std::int64_t, std::string>;

  explicit JsonReport(std::string bench) : bench_(std::move(bench)) {}

  /// Starts a new record; `name` identifies the configuration measured.
  JsonReport& record(const std::string& name) {
    rows_.emplace_back();
    set("bench", bench_);
    set("name", name);
    return *this;
  }

  JsonReport& set(const std::string& key, double v) {
    return put(key, Value{v});
  }
  JsonReport& set(const std::string& key, std::size_t v) {
    return put(key, Value{static_cast<std::int64_t>(v)});
  }
  JsonReport& set(const std::string& key, int v) {
    return put(key, Value{static_cast<std::int64_t>(v)});
  }
  JsonReport& set(const std::string& key, const std::string& v) {
    return put(key, Value{v});
  }
  JsonReport& set(const std::string& key, const char* v) {
    return put(key, Value{std::string(v)});
  }

  /// Writes `BENCH_<bench>.json` (or `path` if given) and reports on
  /// stderr; returns false (loudly) if the file could not be written.
  bool write(const std::string& path = "") const {
    const std::string file = path.empty() ? "BENCH_" + bench_ + ".json" : path;
    std::ofstream out(file);
    if (!out) {
      std::cerr << "[bench] ERROR: cannot open " << file << " for writing\n";
      return false;
    }
    out << "[\n";
    for (std::size_t r = 0; r < rows_.size(); ++r) {
      out << "  {";
      for (std::size_t i = 0; i < rows_[r].size(); ++i) {
        const auto& [key, value] = rows_[r][i];
        out << (i == 0 ? "" : ", ") << '"' << escape(key) << "\": ";
        if (const auto* d = std::get_if<double>(&value)) {
          std::ostringstream num;
          num.precision(12);
          num << *d;
          out << num.str();
        } else if (const auto* n = std::get_if<std::int64_t>(&value)) {
          out << *n;
        } else {
          out << '"' << escape(std::get<std::string>(value)) << '"';
        }
      }
      out << (r + 1 < rows_.size() ? "},\n" : "}\n");
    }
    out << "]\n";
    out.flush();
    if (!out) {
      std::cerr << "[bench] ERROR: write to " << file << " failed\n";
      return false;
    }
    std::cerr << "[bench] wrote " << rows_.size() << " records to " << file
              << "\n";
    return true;
  }

 private:
  JsonReport& put(const std::string& key, Value value) {
    rows_.back().emplace_back(key, std::move(value));
    return *this;
  }

  static std::string escape(const std::string& s) {
    std::string out;
    for (char c : s) {
      if (c == '"' || c == '\\') {
        out.push_back('\\');
        out.push_back(c);
      } else if (c == '\n') {
        out += "\\n";
      } else if (c == '\t') {
        out += "\\t";
      } else if (c == '\r') {
        out += "\\r";
      } else if (static_cast<unsigned char>(c) < 0x20) {
        char buf[8];
        std::snprintf(buf, sizeof(buf), "\\u%04x", c);
        out += buf;
      } else {
        out.push_back(c);
      }
    }
    return out;
  }

  std::string bench_;
  std::vector<std::vector<std::pair<std::string, Value>>> rows_;
};

}  // namespace imars::bench
