// Exact-equality ServeReport comparator shared by the serving benches
// (the bench-local analogue of the test suite's expect_reports_identical).
// Every simulated-time field of every query, shard and class must match
// bit-for-bit; host wall-clock spans and the speculative-window telemetry
// (ServeReport::spec) are deliberately outside the contract — they
// describe how the simulator ran on the host, which the determinism
// contract allows to differ between scheduling modes. Prints the first
// mismatch to stderr and returns false.
#pragma once

#include <iostream>
#include <string>

#include "serve/serve_stats.hpp"

namespace imars::bench {

inline bool reports_equal(const serve::ServeReport& a,
                          const serve::ServeReport& b,
                          const std::string& label) {
  auto fail = [&](const std::string& what) {
    std::cerr << "[parity] MISMATCH in " << label << ": " << what << "\n";
    return false;
  };
  if (a.size() != b.size())
    return fail("query count " + std::to_string(a.size()) + " vs " +
                std::to_string(b.size()));
  if (a.batches != b.batches) return fail("batch count");
  if (a.makespan.value != b.makespan.value) return fail("makespan");
  if (a.cache.hits != b.cache.hits || a.cache.misses != b.cache.misses ||
      a.cache.update_hits != b.cache.update_hits ||
      a.cache.update_misses != b.cache.update_misses ||
      a.cache.flushes != b.cache.flushes)
    return fail("cache counters");
  // Per-tier counters compared one by one so a tier parity failure names
  // the first differing counter.
  auto tier_counter = [&](const char* name, std::uint64_t va,
                          std::uint64_t vb) {
    if (va == vb) return true;
    std::cerr << "[parity]   tier counter " << name << ": " << va << " vs "
              << vb << "\n";
    return false;
  };
  if (!tier_counter("warm_hits", a.cache.warm_hits, b.cache.warm_hits) ||
      !tier_counter("cold_faults", a.cache.cold_faults,
                    b.cache.cold_faults) ||
      !tier_counter("cold_rows_fetched", a.cache.cold_rows_fetched,
                    b.cache.cold_rows_fetched) ||
      !tier_counter("warm_evictions", a.cache.warm_evictions,
                    b.cache.warm_evictions) ||
      !tier_counter("promotions", a.cache.promotions, b.cache.promotions) ||
      !tier_counter("flushes_warm", a.cache.flushes_warm,
                    b.cache.flushes_warm) ||
      !tier_counter("flushes_cold", a.cache.flushes_cold,
                    b.cache.flushes_cold))
    return fail("per-tier cache counters");
  if (a.updates != b.updates || a.flush_bytes != b.flush_bytes)
    return fail("update accounting");

  for (std::size_t i = 0; i < a.size(); ++i) {
    const auto& qa = a.queries[i];
    const auto& qb = b.queries[i];
    const std::string at = "query " + std::to_string(i);
    if (qa.id != qb.id || qa.user != qb.user || qa.client != qb.client ||
        qa.qos_class != qb.qos_class || qa.batch != qb.batch ||
        qa.batch_size != qb.batch_size || qa.home_shard != qb.home_shard ||
        qa.candidates != qb.candidates)
      return fail(at + " identity/coordinates");
    auto field = [&](const char* name, double va, double vb) {
      if (va == vb) return true;
      std::cerr << "[parity]   " << at << " " << name << ": " << va << " vs "
                << vb << "\n";
      return false;
    };
    if (!field("enqueue", qa.enqueue.value, qb.enqueue.value) ||
        !field("dispatch", qa.dispatch.value, qb.dispatch.value) ||
        !field("complete", qa.complete.value, qb.complete.value) ||
        !field("filter_latency", qa.filter_latency.value,
               qb.filter_latency.value) ||
        !field("rank_latency", qa.rank_latency.value,
               qb.rank_latency.value) ||
        !field("device_time", qa.device_time.value, qb.device_time.value) ||
        !field("energy", qa.energy.value, qb.energy.value))
      return fail(at + " timing/energy");
    if (qa.topk.size() != qb.topk.size()) return fail(at + " topk size");
    for (std::size_t j = 0; j < qa.topk.size(); ++j)
      if (qa.topk[j].item != qb.topk[j].item ||
          qa.topk[j].score != qb.topk[j].score)
        return fail(at + " topk[" + std::to_string(j) + "]");
  }

  if (a.shards.size() != b.shards.size()) return fail("shard count");
  for (std::size_t s = 0; s < a.shards.size(); ++s) {
    if (a.shards[s].stage_busy.size() != b.shards[s].stage_busy.size())
      return fail("shard " + std::to_string(s) + " stage layout");
    for (std::size_t st = 0; st < a.shards[s].stage_busy.size(); ++st)
      if (a.shards[s].stage_busy[st].value !=
          b.shards[s].stage_busy[st].value)
        return fail("shard " + std::to_string(s) + " stage " +
                    std::to_string(st) + " busy time");
  }

  if (a.classes.size() != b.classes.size()) return fail("class count");
  for (std::size_t c = 0; c < a.classes.size(); ++c)
    if (a.classes[c].queries != b.classes[c].queries ||
        a.classes[c].batches != b.classes[c].batches ||
        a.classes[c].slo_violations != b.classes[c].slo_violations ||
        a.classes[c].device_time.value != b.classes[c].device_time.value)
      return fail("class " + std::to_string(c) + " accounting");
  return true;
}

}  // namespace imars::bench
