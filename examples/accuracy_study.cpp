// Accuracy study: how the Sec III-B algorithm substitutions (int8
// quantization, LSH + Hamming distance, fixed-radius search) trade accuracy
// for IMC-friendliness — an interactive-scale version of bench_accuracy
// that additionally sweeps the fixed radius.
//
//   $ ./accuracy_study
#include <iostream>

#include "baseline/cpu_backend.hpp"
#include "baseline/exact_nns.hpp"
#include "data/movielens.hpp"
#include "recsys/metrics.hpp"
#include "recsys/youtube_dnn.hpp"
#include "util/stats.hpp"
#include "util/table.hpp"

using namespace imars;
using baseline::CpuBackend;
using baseline::CpuBackendConfig;
using baseline::FilterVariant;

int main() {
  data::MovieLensConfig dcfg;
  dcfg.num_users = 600;
  dcfg.num_items = 500;
  dcfg.seed = 31;
  const data::MovieLensSynth ds(dcfg);

  recsys::YoutubeDnnConfig mcfg;
  mcfg.seed = 32;
  recsys::YoutubeDnn model(ds.schema(), mcfg);
  std::cout << "training filtering model...\n";
  util::Xoshiro256 rng(33);
  for (int e = 0; e < 6; ++e)
    std::cout << "  epoch " << e + 1
              << ": loss = " << model.train_filter_epoch(ds, rng) << "\n";

  const std::size_t topn = 10;
  const auto hr_of = [&](auto&& retrieve) {
    return recsys::hit_rate(
        ds.num_users(), retrieve,
        [&](std::size_t u) { return ds.user(u).heldout; });
  };

  // --- Distance-function comparison (Sec IV-B). ---------------------------
  CpuBackendConfig c1;
  c1.variant = FilterVariant::kFp32Cosine;
  c1.candidates = topn;
  CpuBackend fp32(model, c1);
  CpuBackendConfig c2 = c1;
  c2.variant = FilterVariant::kInt8Cosine;
  CpuBackend int8(model, c2);
  CpuBackendConfig c3 = c1;
  c3.variant = FilterVariant::kInt8LshHamming;
  CpuBackend lshv(model, c3);

  const double hr_fp32 = hr_of([&](std::size_t u) {
    return fp32.filter(model.make_context(ds, u), nullptr);
  });
  const double hr_int8 = hr_of([&](std::size_t u) {
    return int8.filter(model.make_context(ds, u), nullptr);
  });
  const double hr_lsh = hr_of([&](std::size_t u) {
    const auto ctx = model.make_context(ds, u);
    const auto q = lshv.signature_of(model.user_embedding(ctx));
    return baseline::topk_hamming(lshv.item_signatures(), q, topn);
  });

  util::Table t("HR@10 by configuration (paper: 26.8 / 26.2 / 20.8 %)");
  t.header({"configuration", "HR@10"});
  t.row({"fp32 + cosine", util::Table::num(100 * hr_fp32, 1) + "%"});
  t.row({"int8 + cosine", util::Table::num(100 * hr_int8, 1) + "%"});
  t.row({"int8 + LSH-256 Hamming", util::Table::num(100 * hr_lsh, 1) + "%"});
  t.print(std::cout);

  // --- Fixed-radius sweep (Sec III-B's final substitution). ---------------
  std::cout << "\n";
  util::Table r("Fixed-radius search: radius vs candidate count and recall");
  r.header({"radius", "avg candidates", "HR (heldout in candidate set)"});
  for (std::size_t radius : {96, 104, 112, 120, 128}) {
    util::RunningStats set_size;
    std::size_t hits = 0;
    for (std::size_t u = 0; u < ds.num_users(); ++u) {
      const auto ctx = model.make_context(ds, u);
      const auto q = lshv.signature_of(model.user_embedding(ctx));
      const auto cands =
          baseline::radius_hamming(lshv.item_signatures(), q, radius);
      set_size.add(static_cast<double>(cands.size()));
      for (auto c : cands) {
        if (c == ds.user(u).heldout) {
          ++hits;
          break;
        }
      }
    }
    r.row({std::to_string(radius), util::Table::num(set_size.mean(), 1),
           util::Table::num(100.0 * static_cast<double>(hits) /
                                static_cast<double>(ds.num_users()),
                            1) +
               "%"});
  }
  r.print(std::cout);

  std::cout << "\nReading: the radius is the dial between candidate-set size\n"
               "(ranking-stage work) and filtering recall. The TCAM's\n"
               "adjustable dummy-cell reference implements exactly this dial\n"
               "in hardware (Sec III-A1).\n";
  return 0;
}
