// Checkpointing walk-through: train a model with the trainer driver (early
// stopping on hit rate), save it, reload it, verify bit-identical
// predictions, and deploy the restored model to the iMARS fabric.
//
//   $ ./checkpoint_models [checkpoint.bin]
#include <fstream>
#include <iostream>
#include <sstream>

#include "core/backend.hpp"
#include "data/movielens.hpp"
#include "nn/serialize.hpp"
#include "recsys/trainer.hpp"
#include "util/table.hpp"

using namespace imars;

int main(int argc, char** argv) {
  const std::string path = argc > 1 ? argv[1] : "/tmp/imars_checkpoint.bin";

  data::MovieLensConfig dcfg;
  dcfg.num_users = 300;
  dcfg.num_items = 250;
  dcfg.seed = 61;
  const data::MovieLensSynth ds(dcfg);

  recsys::YoutubeDnnConfig mcfg;
  mcfg.seed = 62;
  recsys::YoutubeDnn model(ds.schema(), mcfg);

  // Train with periodic HR@10 evaluation and patience-2 early stopping.
  recsys::TrainOptions opts;
  opts.max_epochs = 12;
  opts.eval_every = 2;
  opts.patience = 2;
  opts.seed = 63;
  opts.on_epoch = [](const recsys::EpochStats& s) {
    std::cout << "  epoch " << s.epoch + 1 << ": loss " << s.loss;
    if (!std::isnan(s.metric)) std::cout << ", HR@10 " << s.metric;
    std::cout << "\n";
  };
  std::cout << "training with early stopping...\n";
  const auto result = recsys::train_filter(model, ds, opts);
  std::cout << "best HR@10 " << result.best_metric << " at epoch "
            << result.best_epoch + 1
            << (result.early_stopped ? " (early-stopped)" : "") << "\n\n";

  // Save the filtering tower and the two largest tables.
  {
    std::ofstream os(path, std::ios::binary);
    nn::save(os, model.filter_mlp());
    nn::save(os, model.item_table());
    nn::save(os, model.uiet(4));  // user_id UIET
    std::cout << "saved checkpoint to " << path << "\n";
  }

  // Reload and verify bit-identical behaviour.
  std::ifstream is(path, std::ios::binary);
  nn::Mlp tower = nn::load_mlp(is);
  nn::EmbeddingTable items = nn::load_embedding_table(is);
  nn::EmbeddingTable user_ids = nn::load_embedding_table(is);

  bool identical = true;
  for (std::size_t u = 0; u < 20; ++u) {
    const auto ctx = model.make_context(ds, u);
    const auto a = model.user_embedding(ctx);
    const auto b = tower.infer(model.filter_input(ctx));
    for (std::size_t c = 0; c < a.size(); ++c)
      identical &= (a[c] == b[c]);
  }
  std::cout << "restored tower predictions identical: "
            << (identical ? "yes" : "NO") << "\n";
  std::cout << "restored item table: " << items.rows() << "x" << items.dim()
            << ", user_id table: " << user_ids.rows() << "x" << user_ids.dim()
            << "\n\n";

  // Deploy the (restored) model to the fabric and run one query.
  std::vector<recsys::UserContext> calib;
  for (std::size_t u = 0; u < 8; ++u) calib.push_back(model.make_context(ds, u));
  core::ImarsBackendConfig icfg;
  icfg.nns_radius = 100;
  core::ImarsBackend be(model, core::ArchConfig{},
                        device::DeviceProfile::fefet45(), icfg, calib);
  recsys::StageStats fs, rs;
  const auto recs =
      recsys::recommend(be, model.make_context(ds, 42), 5, &fs, &rs);
  std::cout << "deployed to iMARS; top-" << recs.size()
            << " for user 42:";
  for (const auto& r : recs) std::cout << " " << r.item;
  std::cout << "\n(query cost: "
            << util::Table::num(
                   (fs.total().latency + rs.total().latency).us(), 2)
            << " us, "
            << util::Table::num((fs.total().energy + rs.total().energy).uj(), 3)
            << " uJ)\n";
  return 0;
}
