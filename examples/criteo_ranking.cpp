// Criteo CTR ranking walk-through: train a DLRM on the synthetic Criteo
// dataset, score impressions on the CPU reference and on iMARS, and show
// prediction quality (AUC) plus hardware costs.
//
//   $ ./criteo_ranking
#include <iostream>

#include "baseline/cpu_backend.hpp"
#include "core/backend.hpp"
#include "data/criteo.hpp"
#include "recsys/dlrm.hpp"
#include "util/stats.hpp"
#include "util/table.hpp"

using namespace imars;

int main() {
  data::CriteoConfig dcfg;
  dcfg.num_samples = 4000;
  dcfg.seed = 21;
  const data::CriteoSynth ds(dcfg);

  recsys::DlrmConfig mcfg;  // paper networks: bottom 256-128-32, top 256-64-1
  mcfg.seed = 22;
  recsys::Dlrm model(ds.schema(), mcfg);

  std::cout << "training DLRM on " << ds.size() << " impressions (26 sparse + "
            << "13 dense features)...\n";
  util::Xoshiro256 rng(23);
  for (int e = 0; e < 2; ++e)
    std::cout << "  epoch " << e + 1 << ": loss = " << model.train_epoch(ds, rng)
              << "\n";

  // Model quality on the training distribution.
  {
    std::vector<int> labels;
    std::vector<double> scores;
    for (std::size_t i = 0; i < ds.size(); ++i) {
      labels.push_back(ds.sample(i).label);
      scores.push_back(model.infer(ds.sample(i).dense, ds.sample(i).sparse));
    }
    std::cout << "  AUC = " << util::auc(labels, scores) << "\n\n";
  }

  // iMARS backend (26 banks, bottom/top MLPs on crossbars).
  std::vector<data::CriteoSample> calib;
  for (std::size_t i = 0; i < 8; ++i) calib.push_back(ds.sample(i));
  core::ImarsCtrBackend imars(model, core::ArchConfig{},
                              device::DeviceProfile::fefet45(),
                              core::TimingMode::kActualPlacement, calib);
  baseline::CpuCtrBackend cpu(model);

  std::cout << "iMARS resource census: " << imars.accelerator().active_banks()
            << " banks, " << imars.accelerator().active_mats() << " mats, "
            << imars.accelerator().active_cmas() << " CMAs active\n\n";

  util::Table t("CTR predictions (first 8 impressions)");
  t.header({"impression", "label", "CPU (fp32)", "iMARS (int8)",
            "latency (us)", "energy (uJ)"});
  for (std::size_t i = 0; i < 8; ++i) {
    const auto& s = ds.sample(i);
    recsys::StageStats stats;
    const float hw = imars.score(s.dense, s.sparse, &stats);
    const float sw = cpu.score(s.dense, s.sparse, nullptr);
    t.row({std::to_string(i), std::to_string(s.label),
           util::Table::num(sw, 3), util::Table::num(hw, 3),
           util::Table::num(stats.total().latency.us(), 2),
           util::Table::num(stats.total().energy.uj(), 2)});
  }
  t.print(std::cout);

  // Ranking agreement between the int8 hardware path and the fp32 oracle.
  util::RunningStats err;
  std::vector<double> hw_scores, sw_scores;
  for (std::size_t i = 0; i < 200; ++i) {
    const auto& s = ds.sample(i);
    const double hw = imars.score(s.dense, s.sparse, nullptr);
    const double sw = cpu.score(s.dense, s.sparse, nullptr);
    hw_scores.push_back(hw);
    sw_scores.push_back(sw);
    err.add(std::abs(hw - sw));
  }
  std::cout << "\nint8-vs-fp32 over 200 impressions: mean |dCTR| = "
            << util::Table::num(err.mean(), 4)
            << ", rank correlation (Spearman) = "
            << util::Table::num(util::spearman(sw_scores, hw_scores), 3)
            << "\n";
  return 0;
}
