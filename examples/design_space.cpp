// Design-space exploration with the analytical models: how architecture
// knobs (C, fan-in, technology, signature length) move latency, energy and
// area for a Criteo-class workload. A condensed, single-binary tour of the
// ablation benches.
//
//   $ ./design_space
#include <iostream>

#include "core/area.hpp"
#include "core/calibration.hpp"
#include "core/mapping.hpp"
#include "core/perf_model.hpp"
#include "util/table.hpp"

using namespace imars;

namespace {

core::EtLookupParams criteo_params(std::size_t mats) {
  core::EtLookupParams p;
  p.tables = 26;
  p.lookups_per_table = core::kWorstCaseLookupsPerTable;
  p.mats_per_table = mats;
  p.active_cmas = 2860;
  return p;
}

}  // namespace

int main() {
  std::cout << "=== iMARS design-space tour (analytical models) ===\n\n";

  const auto fefet = device::DeviceProfile::fefet45();

  // 1. Where does the worst-case ET-lookup time go?
  {
    const core::PerfModel pm(core::ArchConfig{}, fefet);
    const auto c = pm.et_lookup(criteo_params(4));
    std::cout << "Criteo worst-case ET lookup: " << c.latency.value << " ns, "
              << c.energy.uj() << " uJ\n"
              << "  array phase (8 serialized lookups): "
              << 8 * 0.3 + 7 * (10.0 + 8.1) << " ns\n"
              << "  trees + IBC: " << 14.7 + 1.5 + 44.2 << " ns\n"
              << "  RSC serialization (26 banks): the rest\n\n";
  }

  // 2. C (CMAs per mat) at fixed bank budget.
  {
    util::Table t("C sweep (M*C = 128 fixed)");
    t.header({"C", "M", "mats for 30k ET", "ET lookup (ns)"});
    for (std::size_t c : {8, 16, 32, 64}) {
      core::ArchConfig arch;
      arch.cmas_per_mat = c;
      arch.mats_per_bank = 128 / c;
      const core::EtMapping m(arch);
      const std::size_t mats = m.mats_for_cmas(m.cmas_for_rows(30000));
      const core::PerfModel pm(arch, fefet);
      t.row({std::to_string(c), std::to_string(arch.mats_per_bank),
             std::to_string(mats),
             util::Table::num(pm.et_lookup(criteo_params(mats)).latency.value,
                              0)});
    }
    t.print(std::cout);
    std::cout << "\n";
  }

  // 3. Technology.
  {
    util::Table t("Technology (Criteo ET lookup + area)");
    t.header({"profile", "latency (ns)", "energy (uJ)", "area (CMA-equiv)"});
    for (const auto& p : {device::DeviceProfile::fefet45(),
                          device::DeviceProfile::cmos45(),
                          device::DeviceProfile::reram45()}) {
      const core::ArchConfig arch;
      const core::PerfModel pm(arch, p);
      const auto c = pm.et_lookup(criteo_params(4));
      t.row({p.name, util::Table::num(c.latency.value, 0),
             util::Table::num(c.energy.uj(), 2),
             util::Table::num(core::chip_area(arch, p, 0).total(), 0)});
    }
    t.print(std::cout);
    std::cout << "\n";
  }

  // 4. NNS cost vs signature length.
  {
    util::Table t("NNS vs signature length (MovieLens ItET, 16 data CMAs)");
    t.header({"bits", "sig CMAs searched", "NNS energy (nJ)",
              "NNS latency (ns)"});
    const core::PerfModel pm(core::ArchConfig{}, fefet);
    for (std::size_t bits : {64, 128, 256, 512}) {
      const std::size_t sig_cmas = 16 * ((bits + 255) / 256);
      const auto c = pm.nns(sig_cmas);
      t.row({std::to_string(bits), std::to_string(sig_cmas),
             util::Table::num(c.energy.nj(), 2),
             util::Table::num(c.latency.value, 2)});
    }
    t.print(std::cout);
  }

  std::cout << "\nSee bench_ablation_{fanin,dims,lsh,tech} for the full\n"
               "sweeps with commentary.\n";
  return 0;
}
