// MovieLens end-to-end walk-through: train a YouTubeDNN on the synthetic
// MovieLens dataset, then serve the same queries on the three backends
// (CPU reference, calibrated GPU model, functional iMARS) and compare
// recommendations and costs for a few users.
//
//   $ ./movielens_e2e
#include <iostream>

#include "baseline/cpu_backend.hpp"
#include "core/backend.hpp"
#include "data/movielens.hpp"
#include "recsys/youtube_dnn.hpp"
#include "util/table.hpp"

using namespace imars;

int main() {
  // Small dataset so the example runs in seconds.
  data::MovieLensConfig dcfg;
  dcfg.num_users = 400;
  dcfg.num_items = 300;
  dcfg.seed = 11;
  const data::MovieLensSynth ds(dcfg);

  recsys::YoutubeDnnConfig mcfg;  // paper networks: 128-64-32 / 128-1, 32-d
  mcfg.seed = 12;
  recsys::YoutubeDnn model(ds.schema(), mcfg);

  std::cout << "training YouTubeDNN (" << ds.num_users() << " users, "
            << ds.num_items() << " items)...\n";
  util::Xoshiro256 rng(13);
  for (int e = 0; e < 4; ++e)
    std::cout << "  filter epoch " << e + 1
              << ": loss = " << model.train_filter_epoch(ds, rng) << "\n";
  for (int e = 0; e < 2; ++e)
    std::cout << "  rank epoch " << e + 1
              << ": loss = " << model.train_rank_epoch(ds, rng) << "\n";

  // Backends.
  baseline::CpuBackendConfig ccfg;
  ccfg.candidates = 20;
  baseline::CpuBackend cpu(model, ccfg);

  const baseline::GpuModel gpu_model;
  baseline::GpuBackendConfig gcfg;
  gcfg.candidates = 20;
  baseline::GpuModelBackend gpu(model, gpu_model, gcfg);

  std::vector<recsys::UserContext> calib;
  for (std::size_t u = 0; u < 8; ++u) calib.push_back(model.make_context(ds, u));
  core::ImarsBackendConfig icfg;
  icfg.nns_radius = 112;
  core::ImarsBackend imars(model, core::ArchConfig{},
                           device::DeviceProfile::fefet45(), icfg, calib);

  std::cout << "\niMARS resource census: " << imars.accelerator().active_banks()
            << " banks, " << imars.accelerator().active_mats() << " mats, "
            << imars.accelerator().active_cmas() << " CMAs active\n";

  // Serve three users on all backends.
  for (std::size_t user : {0ul, 100ul, 250ul}) {
    const auto ctx = model.make_context(ds, user);
    std::cout << "\n--- user " << user << " (history size "
              << ctx.history.size() << ") ---\n";

    util::Table t("top-5 recommendations");
    t.header({"backend", "items (item:ctr)", "latency/query", "energy/query"});
    for (recsys::FilterRankBackend* be :
         std::initializer_list<recsys::FilterRankBackend*>{&cpu, &gpu, &imars}) {
      recsys::StageStats fs, rs;
      const auto recs = recsys::recommend(*be, ctx, 5, &fs, &rs);
      std::string items;
      for (const auto& r : recs) {
        items += std::to_string(r.item) + ":" + util::Table::num(r.score, 2) +
                 " ";
      }
      const auto total_lat = fs.total().latency + rs.total().latency;
      const auto total_e = fs.total().energy + rs.total().energy;
      t.row({std::string(be->name()), items,
             total_lat.value > 0.0
                 ? util::Table::num(total_lat.us(), 2) + " us"
                 : "(not modelled)",
             total_e.value > 0.0 ? util::Table::num(total_e.uj(), 2) + " uJ"
                                 : "(not modelled)"});
    }
    t.print(std::cout);
  }

  std::cout << "\nNote: the CPU backend is the functional oracle (no cost\n"
               "model); GPU costs follow the paper's GTX 1080 calibration;\n"
               "iMARS costs are measured on the functional fabric. The\n"
               "candidate sets differ by design -- the GPU/CPU run top-20\n"
               "cosine, iMARS runs the paper's fixed-radius Hamming search.\n";
  return 0;
}
