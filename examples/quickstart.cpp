// Quickstart: the iMARS fabric in ~80 lines.
//
// Builds a small embedding table, loads it into CMA banks, performs an
// in-memory pooled lookup, runs a TCAM fixed-radius nearest-neighbour
// search, and prints the per-component energy ledger.
//
//   $ ./quickstart
#include <iostream>

#include "core/accelerator.hpp"
#include "lsh/lsh.hpp"
#include "tensor/qtensor.hpp"
#include "util/rng.hpp"

using namespace imars;

int main() {
  // 1. An embedding table: 1000 entries x 32 dims, quantized to int8.
  util::Xoshiro256 rng(42);
  const auto table = tensor::QMatrix::quantize(
      tensor::Matrix::randn(1000, 32, 0.5f, rng));

  // 2. The iMARS machine: 256x256 FeFET CMAs, 4 mats x 32 CMAs per bank,
  //    FoM from the paper's Table II.
  core::ImarsAccelerator acc(core::ArchConfig{},
                             device::DeviceProfile::fefet45());

  // 3. Load the table as an ItET: embeddings + 256-bit LSH signatures
  //    (one paired signature CMA per data CMA).
  const lsh::RandomHyperplaneLsh hasher(32, 256, 7);
  const auto dequantized = table.dequantize();
  std::vector<util::BitVec> signatures;
  for (std::size_t r = 0; r < table.rows(); ++r)
    signatures.push_back(hasher.encode(dequantized.row(r)));
  const auto itet = acc.load_itet("items", table, signatures);
  acc.reset_energy();  // loading is a one-time cost

  // 4. In-memory pooled lookup: fetch + sum rows {3, 17, 256, 940} without
  //    moving them to a CPU (GPCiM accumulate + adder trees).
  const core::LookupRequest request{itet, {3, 17, 256, 940}, /*mean_pool=*/true};
  recsys::OpCost lookup_cost;
  const auto pooled = acc.lookup_pooled(
      std::span(&request, 1), core::TimingMode::kActualPlacement, &lookup_cost);
  const auto vec = pooled[0].dequantized();

  std::cout << "pooled[0..3] = " << vec[0] << ", " << vec[1] << ", " << vec[2]
            << ", " << vec[3] << "\n"
            << "lookup: " << lookup_cost.latency.value << " ns, "
            << lookup_cost.energy.value << " pJ\n\n";

  // 5. Fixed-radius NNS: one O(1) TCAM search over all signature arrays.
  tensor::Vector query(32);
  for (auto& x : query) x = static_cast<float>(rng.normal());
  recsys::OpCost nns_cost;
  const auto neighbours =
      acc.nns(itet, hasher.encode(query), /*radius=*/100, &nns_cost);

  std::cout << "NNS at radius 100: " << neighbours.size()
            << " candidates in " << nns_cost.latency.value << " ns ("
            << nns_cost.energy.value << " pJ)\n";
  if (!neighbours.empty()) {
    std::cout << "first candidates:";
    for (std::size_t i = 0; i < std::min<std::size_t>(5, neighbours.size()); ++i)
      std::cout << " " << neighbours[i];
    std::cout << "\n";
  }

  // 6. Per-component energy ledger.
  std::cout << "\nenergy by component (pJ):\n";
  for (std::size_t c = 0; c < static_cast<std::size_t>(device::Component::kCount);
       ++c) {
    const auto comp = static_cast<device::Component>(c);
    const auto e = acc.ledger().energy(comp);
    if (e.value > 0.0)
      std::cout << "  " << device::component_name(comp) << ": " << e.value
                << "\n";
  }
  return 0;
}
