// Serving demo: a closed-loop traffic stream through the concurrent
// serving runtime — sharded iMARS replicas, dynamic batching, and the
// frequency-aware hot-embedding cache — then the same fabric re-run
// multi-tenant: an interactive QoS class (tight deadline, preemptive
// batch close) sharing the shards with a 4x-weighted bulk class. The
// two-tenant run is traced: the demo writes a Chrome trace-event JSON
// timeline (open it in Perfetto / chrome://tracing, or inspect it with
// tools/trace_summary).
//
//   $ ./serving_demo
#include <iostream>

#include "core/backend_factory.hpp"
#include "core/calibration.hpp"
#include "serve/runtime.hpp"
#include "serve/trace.hpp"
#include "util/table.hpp"

// Reuses the bench model-training helpers.
#include "harness.hpp"

using namespace imars;

int main() {
  // 1. A trained YouTubeDNN over synthetic MovieLens (small scale).
  auto ml = bench::make_movielens(0.04, 2, 1);
  std::vector<recsys::UserContext> users;
  for (std::size_t u = 0; u < ml.ds->num_users(); ++u)
    users.push_back(ml.model->make_context(*ml.ds, u));
  std::vector<recsys::UserContext> calib(users.begin(), users.begin() + 8);

  // 2. A factory that stamps out one iMARS replica per shard.
  const core::ArchConfig arch;
  const auto profile = device::DeviceProfile::fefet45();
  core::ImarsBackendConfig icfg;
  icfg.timing = core::TimingMode::kWorstCaseSameArray;
  icfg.max_candidates = core::kEndToEndCandidates;
  icfg.nns_radius = 64;
  const auto factory =
      core::imars_backend_factory(*ml.model, arch, profile, icfg, calib);

  // 3. The serving runtime: 4 shards (replicated filter, sharded rank),
  //    batches of up to 8 closed under a 500us deadline, 4096 hot rows.
  serve::ServingConfig cfg;
  cfg.shards = 4;
  cfg.k = 10;
  cfg.batcher.max_batch = 8;
  cfg.batcher.max_wait = device::Ns{500000.0};
  cfg.cache.capacity_rows = 4096;
  cfg.traffic.filter_features = ml.model->filter_features();
  cfg.traffic.rank_features = ml.model->rank_features();
  serve::ServingRuntime rt(factory, cfg, arch, profile);

  // 4. Closed-loop load: 16 concurrent clients, Zipf-skewed user traffic.
  serve::LoadGenConfig lg;
  lg.clients = 16;
  lg.total_queries = 64;
  lg.num_users = users.size();
  lg.user_zipf_s = 0.9;
  serve::LoadGenerator gen(lg);

  std::cout << "serving " << lg.total_queries << " queries over "
            << cfg.shards << " shards...\n";
  const auto report = rt.run(gen, users);

  // 5. Telemetry.
  util::Table table("Serving telemetry");
  table.header({"metric", "value"});
  table.row({"queries served", util::Table::num(double(report.size()), 0)});
  table.row({"QPS (hardware time)", util::Table::num(report.qps(), 0)});
  table.row({"p50 latency", util::Table::num(report.p50_latency_ns() * 1e-3, 1) + " us"});
  table.row({"p95 latency", util::Table::num(report.p95_latency_ns() * 1e-3, 1) + " us"});
  table.row({"p99 latency", util::Table::num(report.p99_latency_ns() * 1e-3, 1) + " us"});
  table.row({"mean batch size", util::Table::num(report.mean_batch_size(), 2)});
  table.row({"cache hit rate", util::Table::num(report.cache.hit_rate(), 3)});
  table.separator();
  const auto& map = rt.pipeline().shard_map();
  for (std::size_t s = 0; s < cfg.shards; ++s)
    table.row({"shard " + std::to_string(s) + " rank util / item share",
               util::Table::num(report.rank_utilization(s), 2) + " / " +
                   util::Table::num(map.share(s), 2)});
  table.print(std::cout);

  // 6. One merged recommendation list, for flavour.
  const auto& q = report.queries.front();
  std::cout << "\nquery " << q.id << " (user " << q.user << ", batch "
            << q.batch << ", " << q.candidates << " candidates): served in "
            << util::Table::num((q.complete - q.enqueue).value * 1e-3, 1)
            << " us end-to-end\n";

  // 7. Multi-tenant QoS: the same fabric, now shared by an interactive
  //    tenant (400 us deadline, preemptive close, small batches) and a
  //    bulk tenant carrying 4x the traffic. The interactive weight is set
  //    ABOVE its traffic share — earliest-deadline-first admission only
  //    protects a deadline class while it stays inside its entitlement.
  serve::QosClassConfig interactive;
  interactive.name = "interactive";
  interactive.max_batch = 2;
  interactive.deadline = device::Ns{400000.0};
  interactive.service_estimate = device::Ns{300000.0};
  interactive.weight = 2.0;
  serve::QosClassConfig bulkcls;
  bulkcls.name = "bulk";
  bulkcls.max_batch = 8;
  bulkcls.weight = 4.0;
  cfg.qos.classes = {interactive, bulkcls};
  cfg.qos.admit_window = device::Ns{100000.0};
  cfg.self_profile = true;  // host-profile spans land in the trace too
  serve::ServingRuntime qos_rt(factory, cfg, arch, profile);
  // Observability: a TraceLog sink records batch lifecycles, per-(stage,
  // shard) execution spans, ET-bank contention and cache events — purely
  // as an observer, so every number below is identical without it.
  serve::TraceLog trace;
  qos_rt.set_observer(&trace);

  serve::LoadGenConfig qlg = lg;
  qlg.total_queries = 96;
  qlg.class_mix = {0.2, 0.8};  // 1:4 interactive:bulk traffic
  qlg.arrivals = serve::ArrivalProcess::kOpenPoisson;
  qlg.rate_qps = 1.2 * report.qps();  // past the knee: tenants contend
  serve::LoadGenerator qgen(qlg);
  std::cout << "\nre-serving " << qlg.total_queries
            << " queries as two QoS tenants at 1.2x capacity...\n";
  const auto qos_report = qos_rt.run(qgen, users);

  util::Table qos_table("Per-tenant telemetry");
  qos_table.header({"tenant", "queries", "p50 us", "p99 us", "SLO misses",
                    "device share"});
  for (std::size_t c = 0; c < qos_report.classes.size(); ++c) {
    const auto& cls = qos_report.classes[c];
    qos_table.row(
        {cls.name, util::Table::num(double(cls.queries), 0),
         util::Table::num(qos_report.class_p50_latency_ns(c) * 1e-3, 1),
         util::Table::num(qos_report.class_p99_latency_ns(c) * 1e-3, 1),
         util::Table::num(double(cls.slo_violations), 0),
         util::Table::num(qos_report.device_share(c), 2)});
  }
  qos_table.print(std::cout);
  // The admission queue is work-conserving: a class consuming less than
  // its entitlement (the interactive tenant under-demands its weight here,
  // by design) donates the slack, so the "error" reflects headroom, not
  // unfairness — it tightens to ~0 when every class saturates its share
  // (bench_serving_qos measures exactly that regime).
  std::cout << "fairness error (device share vs weight): "
            << util::Table::num(qos_report.fairness_error(), 3) << "\n";

  // 8. The two-tenant timeline as a Chrome trace (Perfetto-compatible).
  const std::string trace_path = "serving_demo_trace.json";
  trace.write(trace_path);
  std::cout << "\ntrace: " << trace.events().size() << " events -> "
            << trace_path << " (open in Perfetto or chrome://tracing,\n"
            << "or run: trace_summary --check " << trace_path << ")\n";
  return 0;
}
