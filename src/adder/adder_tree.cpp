#include "adder/adder_tree.hpp"

#include "util/error.hpp"

namespace imars::adder {

using device::Component;
using device::Ns;

IntraMatAdderTree::IntraMatAdderTree(const device::DeviceProfile& profile,
                                     device::EnergyLedger* ledger,
                                     std::size_t fan_in, std::size_t lanes)
    : profile_(&profile), ledger_(ledger), fan_in_(fan_in), lanes_(lanes) {
  IMARS_REQUIRE(ledger != nullptr, "IntraMatAdderTree: ledger required");
  IMARS_REQUIRE(fan_in >= 2, "IntraMatAdderTree: fan_in >= 2");
  IMARS_REQUIRE(lanes >= 1, "IntraMatAdderTree: lanes >= 1");
}

Lanes IntraMatAdderTree::sum(std::span<const Lanes> inputs,
                             device::Ns* latency) const {
  IMARS_REQUIRE(!inputs.empty(), "IntraMatAdderTree: no inputs");
  IMARS_REQUIRE(inputs.size() <= fan_in_,
                "IntraMatAdderTree: more inputs than fan-in");
  Lanes out(lanes_, 0);
  for (const auto& in : inputs) {
    IMARS_REQUIRE(in.size() == lanes_, "IntraMatAdderTree: lane mismatch");
    for (std::size_t l = 0; l < lanes_; ++l) out[l] += in[l];
  }
  ledger_->charge(Component::kIntraMatTree, profile_->intra_mat_add.energy);
  if (latency != nullptr) *latency = profile_->intra_mat_add.latency;
  return out;
}

IntraBankAdderTree::IntraBankAdderTree(const device::DeviceProfile& profile,
                                       device::EnergyLedger* ledger,
                                       std::size_t fan_in, std::size_t lanes)
    : profile_(&profile), ledger_(ledger), fan_in_(fan_in), lanes_(lanes) {
  IMARS_REQUIRE(ledger != nullptr, "IntraBankAdderTree: ledger required");
  IMARS_REQUIRE(fan_in >= 2, "IntraBankAdderTree: fan_in >= 2");
  IMARS_REQUIRE(lanes >= 1, "IntraBankAdderTree: lanes >= 1");
}

std::size_t IntraBankAdderTree::rounds_for(std::size_t k) const noexcept {
  if (k <= 1) return 0;
  if (k <= fan_in_) return 1;
  // First round consumes fan_in inputs; every later round feeds the running
  // sum back and consumes fan_in - 1 new inputs.
  const std::size_t remaining = k - fan_in_;
  const std::size_t per_round = fan_in_ - 1;
  return 1 + (remaining + per_round - 1) / per_round;
}

Lanes IntraBankAdderTree::sum(std::span<const Lanes> inputs,
                              device::Ns* latency) const {
  IMARS_REQUIRE(!inputs.empty(), "IntraBankAdderTree: no inputs");
  Lanes out(lanes_, 0);
  for (const auto& in : inputs) {
    IMARS_REQUIRE(in.size() == lanes_, "IntraBankAdderTree: lane mismatch");
    for (std::size_t l = 0; l < lanes_; ++l) out[l] += in[l];
  }
  const std::size_t rounds = rounds_for(inputs.size());
  ledger_->charge(Component::kIntraBankTree,
                  profile_->intra_bank_add.energy * static_cast<double>(rounds),
                  rounds);
  if (latency != nullptr)
    *latency = profile_->intra_bank_add.latency * static_cast<double>(rounds);
  return out;
}

}  // namespace imars::adder
