// Near-memory adder trees (Sec III-A1 "Adder trees").
//
// iMARS accumulates embedding partial sums at two levels:
//   * the intra-mat adder tree sums the outputs of the C CMAs of one mat in
//     a single pass (the synthesized Table II figure covers the whole tree);
//   * the intra-bank adder tree has a fixed fan-in of 4 (a stated design
//     compromise between area and performance); when K > 4 mats contribute,
//     accumulation proceeds in multiple rounds through the same tree, with
//     the running sum looped back as one of the four inputs.
//
// Values are 256-bit vectors interpreted as 32 lanes of int8 partial sums;
// tree-internal arithmetic is wide (int32 lanes) — the paper's trees are
// synthesized 256-bit adders, so lane overflow does not wrap at 8 bits
// mid-tree.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "device/ledger.hpp"
#include "device/profile.hpp"

namespace imars::adder {

/// A 256-bit value as 32 int32 lanes (widened int8 partial sums).
using Lanes = std::vector<std::int32_t>;

/// Intra-mat adder tree: sums up to `fan_in` CMA outputs in one pass.
class IntraMatAdderTree {
 public:
  /// `fan_in` = C, the CMAs per mat.
  IntraMatAdderTree(const device::DeviceProfile& profile,
                    device::EnergyLedger* ledger, std::size_t fan_in,
                    std::size_t lanes = 32);

  std::size_t fan_in() const noexcept { return fan_in_; }
  std::size_t lanes() const noexcept { return lanes_; }

  /// Sums `inputs` (each `lanes` wide, at most fan_in of them) into one
  /// output. Returns the tree latency via out-parameter.
  Lanes sum(std::span<const Lanes> inputs, device::Ns* latency) const;

 private:
  const device::DeviceProfile* profile_;
  device::EnergyLedger* ledger_;
  std::size_t fan_in_;
  std::size_t lanes_;
};

/// Intra-bank adder tree: fan-in 4, multi-round for more inputs.
class IntraBankAdderTree {
 public:
  IntraBankAdderTree(const device::DeviceProfile& profile,
                     device::EnergyLedger* ledger, std::size_t fan_in = 4,
                     std::size_t lanes = 32);

  std::size_t fan_in() const noexcept { return fan_in_; }

  /// Number of passes through the tree needed to sum `k` inputs: the first
  /// round consumes fan_in inputs, each later round consumes fan_in - 1 new
  /// inputs plus the running sum. k <= 1 needs no round.
  std::size_t rounds_for(std::size_t k) const noexcept;

  /// Sums `inputs` (any count) using multi-round accumulation. Returns the
  /// total latency (rounds x tree latency) via out-parameter.
  Lanes sum(std::span<const Lanes> inputs, device::Ns* latency) const;

 private:
  const device::DeviceProfile* profile_;
  device::EnergyLedger* ledger_;
  std::size_t fan_in_;
  std::size_t lanes_;
};

}  // namespace imars::adder
