#include "baseline/cpu_backend.hpp"

#include <algorithm>

#include "baseline/exact_nns.hpp"
#include "util/error.hpp"

namespace imars::baseline {

using recsys::OpKind;
using recsys::ScoredItem;
using recsys::StageStats;
using recsys::UserContext;

namespace {

// Scores candidates with the float ranking model, sorts descending,
// truncates to k. Shared by the CPU and GPU-model backends.
std::vector<ScoredItem> score_and_topk(const recsys::YoutubeDnn& model,
                                       const UserContext& user,
                                       std::span<const std::size_t> candidates,
                                       std::size_t k) {
  std::vector<ScoredItem> scored;
  scored.reserve(candidates.size());
  for (auto item : candidates)
    scored.push_back({item, model.ctr(user, item)});
  std::sort(scored.begin(), scored.end(), [](const auto& a, const auto& b) {
    if (a.score != b.score) return a.score > b.score;
    return a.item < b.item;
  });
  if (scored.size() > k) scored.resize(k);
  return scored;
}

std::size_t mlp_macs(const nn::Mlp& mlp) {
  std::size_t macs = 0;
  const auto& dims = mlp.dims();
  for (std::size_t i = 0; i + 1 < dims.size(); ++i) macs += dims[i] * dims[i + 1];
  return macs;
}

}  // namespace

CpuBackend::CpuBackend(const recsys::YoutubeDnn& model,
                       const CpuBackendConfig& cfg)
    : model_(&model),
      cfg_(cfg),
      items_q_(model.item_table().quantized()),
      items_deq_(items_q_.dequantize()) {
  if (cfg_.variant == FilterVariant::kInt8LshHamming) {
    lsh_.emplace(model.config().emb_dim, cfg_.lsh_bits, cfg_.lsh_seed);
    signatures_.reserve(items_deq_.rows());
    // Signatures are computed from the quantized (then dequantized) item
    // embeddings: the chip stores int8 rows, so the stored LSH planes see
    // the quantized values (Sec III-B).
    for (std::size_t r = 0; r < items_deq_.rows(); ++r)
      signatures_.push_back(lsh_->encode(items_deq_.row(r)));
  }
}

util::BitVec CpuBackend::signature_of(std::span<const float> embedding) const {
  IMARS_REQUIRE(lsh_.has_value(),
                "CpuBackend: signatures only exist for the LSH variant");
  return lsh_->encode(embedding);
}

std::vector<std::size_t> CpuBackend::filter(const UserContext& user,
                                            StageStats* stats) {
  (void)stats;  // functional oracle: no hardware costs
  const tensor::Vector u = model_->user_embedding(user);
  switch (cfg_.variant) {
    case FilterVariant::kFp32Cosine:
      return topk_cosine(model_->item_table().matrix(), u, cfg_.candidates);
    case FilterVariant::kInt8Cosine:
      return topk_cosine(items_deq_, u, cfg_.candidates);
    case FilterVariant::kInt8LshHamming: {
      const util::BitVec q = lsh_->encode(u);
      return radius_hamming(signatures_, q, cfg_.lsh_radius);
    }
  }
  return {};
}

std::vector<ScoredItem> CpuBackend::rank(
    const UserContext& user, std::span<const std::size_t> candidates,
    std::size_t k, StageStats* stats) {
  (void)stats;
  return score_and_topk(*model_, user, candidates, k);
}

GpuModelBackend::GpuModelBackend(const recsys::YoutubeDnn& model,
                                 const GpuModel& gpu,
                                 const GpuBackendConfig& cfg)
    : model_(&model), gpu_(&gpu), cfg_(cfg) {}

std::vector<std::size_t> GpuModelBackend::filter(const UserContext& user,
                                                 StageStats* stats) {
  // Functional result: the original fp32 cosine top-N (what the GPU runs).
  const tensor::Vector u = model_->user_embedding(user);
  auto candidates =
      topk_cosine(model_->item_table().matrix(), u, cfg_.candidates);

  if (stats != nullptr) {
    // Tables touched: every filtering UIET plus the ItET history pooling.
    stats->at(OpKind::kEtLookup) +=
        gpu_->et_lookup(model_->filter_features().size() + 1);
    stats->at(OpKind::kDnn) += gpu_->dnn(model_->filter_mlp().layer_count(),
                                         mlp_macs(model_->filter_mlp()));
    stats->at(OpKind::kNns) +=
        gpu_->nns(cfg_.nns, model_->item_table().rows());
  }
  return candidates;
}

std::vector<ScoredItem> GpuModelBackend::rank(
    const UserContext& user, std::span<const std::size_t> candidates,
    std::size_t k, StageStats* stats) {
  auto out = score_and_topk(*model_, user, candidates, k);
  if (stats != nullptr) {
    const double n = static_cast<double>(candidates.size());
    // Per candidate: ET lookups (rank UIETs + ItET candidate + history
    // pooling) and the ranking DNN + feature-assembly kernels.
    recsys::OpCost et = gpu_->et_lookup(model_->rank_features().size() + 1);
    recsys::OpCost dnn = gpu_->dnn(model_->rank_mlp().layer_count(),
                                   mlp_macs(model_->rank_mlp()));
    dnn += gpu_->rank_pair_overhead();
    stats->at(OpKind::kEtLookup) += {et.latency * n, et.energy * n};
    stats->at(OpKind::kDnn) += {dnn.latency * n, dnn.energy * n};
    stats->at(OpKind::kTopK) += gpu_->topk(candidates.size());
  }
  return out;
}

float CpuCtrBackend::score(const tensor::Vector& dense,
                           std::span<const std::size_t> sparse,
                           StageStats* stats) {
  (void)stats;
  return model_->infer(dense, sparse);
}

float GpuCtrBackend::score(const tensor::Vector& dense,
                           std::span<const std::size_t> sparse,
                           StageStats* stats) {
  const float ctr = model_->infer(dense, sparse);
  if (stats != nullptr) {
    stats->at(OpKind::kEtLookup) += gpu_->et_lookup(model_->table_count());
    // Bottom + top MLP layers plus one kernel for the pairwise-dot
    // interaction layer.
    std::size_t macs = 0;
    for (const auto* mlp : {&model_->bottom_mlp(), &model_->top_mlp()}) {
      const auto& dims = mlp->dims();
      for (std::size_t i = 0; i + 1 < dims.size(); ++i)
        macs += dims[i] * dims[i + 1];
    }
    const std::size_t layers =
        model_->bottom_mlp().layer_count() + model_->top_mlp().layer_count() + 1;
    stats->at(OpKind::kDnn) += gpu_->dnn(layers, macs);
  }
  return ctr;
}

}  // namespace imars::baseline
