// CPU reference backends.
//
// CpuBackend is the functional oracle: it executes the RecSys algorithms
// exactly (float model, or the quantized/LSH variants of Sec III-B) with no
// hardware cost accounting. GpuModelBackend runs the same functional
// algorithm as the paper's GPU baseline (fp32 model + chosen NNS kind) and
// charges the calibrated GpuModel costs.
#pragma once

#include <optional>
#include <vector>

#include "baseline/gpu_model.hpp"
#include "lsh/lsh.hpp"
#include "recsys/dlrm.hpp"
#include "recsys/types.hpp"
#include "recsys/youtube_dnn.hpp"
#include "tensor/qtensor.hpp"
#include "util/bitvec.hpp"

namespace imars::baseline {

/// Filtering-NNS algorithm variant (the Sec IV-B accuracy comparison).
enum class FilterVariant {
  kFp32Cosine,      ///< original: float embeddings + cosine top-N
  kInt8Cosine,      ///< int8-quantized embeddings + cosine top-N
  kInt8LshHamming,  ///< int8 + 256-bit LSH + fixed-radius Hamming (iMARS)
};

/// Configuration for CpuBackend.
struct CpuBackendConfig {
  FilterVariant variant = FilterVariant::kFp32Cosine;
  std::size_t candidates = 100;  ///< top-N for the cosine variants
  std::size_t lsh_bits = 256;    ///< paper signature length
  std::size_t lsh_radius = 96;   ///< fixed-radius threshold (Hamming)
  std::uint64_t lsh_seed = 2022;
};

/// Exact software execution of the two-stage pipeline.
class CpuBackend : public recsys::FilterRankBackend {
 public:
  CpuBackend(const recsys::YoutubeDnn& model, const CpuBackendConfig& cfg);

  std::string_view name() const override { return "cpu-reference"; }

  std::vector<std::size_t> filter(const recsys::UserContext& user,
                                  recsys::StageStats* stats) override;

  std::vector<recsys::ScoredItem> rank(
      const recsys::UserContext& user,
      std::span<const std::size_t> candidates, std::size_t k,
      recsys::StageStats* stats) override;

  const CpuBackendConfig& config() const noexcept { return cfg_; }

  /// Item LSH signatures (present for the kInt8LshHamming variant);
  /// exposed so tests can check parity with the iMARS TCAM path.
  const std::vector<util::BitVec>& item_signatures() const {
    return signatures_;
  }

  /// Query signature for an arbitrary user embedding (kInt8LshHamming).
  util::BitVec signature_of(std::span<const float> embedding) const;

 private:
  const recsys::YoutubeDnn* model_;
  CpuBackendConfig cfg_;
  tensor::QMatrix items_q_;          ///< int8 snapshot of the ItET
  tensor::Matrix items_deq_;         ///< dequantized int8 items (cosine)
  std::optional<lsh::RandomHyperplaneLsh> lsh_;
  std::vector<util::BitVec> signatures_;
};

/// GPU baseline: original algorithm + calibrated costs.
struct GpuBackendConfig {
  std::size_t candidates = 20;  ///< candidate count (end-to-end calibration)
  GpuNnsKind nns = GpuNnsKind::kFaissAnn;
};

class GpuModelBackend : public recsys::FilterRankBackend {
 public:
  GpuModelBackend(const recsys::YoutubeDnn& model, const GpuModel& gpu,
                  const GpuBackendConfig& cfg);

  std::string_view name() const override { return "gpu-gtx1080-model"; }

  std::vector<std::size_t> filter(const recsys::UserContext& user,
                                  recsys::StageStats* stats) override;

  std::vector<recsys::ScoredItem> rank(
      const recsys::UserContext& user,
      std::span<const std::size_t> candidates, std::size_t k,
      recsys::StageStats* stats) override;

 private:
  const recsys::YoutubeDnn* model_;
  const GpuModel* gpu_;
  GpuBackendConfig cfg_;
};

/// Exact software DLRM scoring (functional oracle).
class CpuCtrBackend : public recsys::CtrBackend {
 public:
  explicit CpuCtrBackend(const recsys::Dlrm& model) : model_(&model) {}
  std::string_view name() const override { return "cpu-reference"; }
  float score(const tensor::Vector& dense,
              std::span<const std::size_t> sparse,
              recsys::StageStats* stats) override;

 private:
  const recsys::Dlrm* model_;
};

/// GPU DLRM scoring: float model + calibrated costs.
class GpuCtrBackend : public recsys::CtrBackend {
 public:
  GpuCtrBackend(const recsys::Dlrm& model, const GpuModel& gpu)
      : model_(&model), gpu_(&gpu) {}
  std::string_view name() const override { return "gpu-gtx1080-model"; }
  float score(const tensor::Vector& dense,
              std::span<const std::size_t> sparse,
              recsys::StageStats* stats) override;

 private:
  const recsys::Dlrm* model_;
  const GpuModel* gpu_;
};

}  // namespace imars::baseline
