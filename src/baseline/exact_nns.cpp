#include "baseline/exact_nns.hpp"

#include <algorithm>
#include <numeric>

#include "util/error.hpp"

namespace imars::baseline {

namespace {

// Indices of the k largest scores, descending; lower index wins ties.
std::vector<std::size_t> topk_by_score(std::span<const float> scores,
                                       std::size_t k) {
  std::vector<std::size_t> idx(scores.size());
  std::iota(idx.begin(), idx.end(), 0);
  k = std::min(k, idx.size());
  std::partial_sort(idx.begin(), idx.begin() + static_cast<std::ptrdiff_t>(k),
                    idx.end(), [&](std::size_t a, std::size_t b) {
                      if (scores[a] != scores[b]) return scores[a] > scores[b];
                      return a < b;
                    });
  idx.resize(k);
  return idx;
}

}  // namespace

std::vector<std::size_t> topk_cosine(const tensor::Matrix& items,
                                     std::span<const float> query,
                                     std::size_t k) {
  IMARS_REQUIRE(items.cols() == query.size(), "topk_cosine: dim mismatch");
  std::vector<float> scores(items.rows());
  for (std::size_t r = 0; r < items.rows(); ++r)
    scores[r] = tensor::cosine(items.row(r), query);
  return topk_by_score(scores, k);
}

std::vector<std::size_t> topk_dot(const tensor::Matrix& items,
                                  std::span<const float> query,
                                  std::size_t k) {
  IMARS_REQUIRE(items.cols() == query.size(), "topk_dot: dim mismatch");
  std::vector<float> scores(items.rows());
  for (std::size_t r = 0; r < items.rows(); ++r)
    scores[r] = tensor::dot(items.row(r), query);
  return topk_by_score(scores, k);
}

std::vector<std::size_t> radius_hamming(
    std::span<const util::BitVec> signatures, const util::BitVec& query,
    std::size_t radius) {
  std::vector<std::size_t> out;
  for (std::size_t i = 0; i < signatures.size(); ++i) {
    if (signatures[i].hamming(query) <= radius) out.push_back(i);
  }
  return out;
}

std::vector<std::size_t> topk_hamming(std::span<const util::BitVec> signatures,
                                      const util::BitVec& query,
                                      std::size_t k) {
  std::vector<std::size_t> idx(signatures.size());
  std::iota(idx.begin(), idx.end(), 0);
  std::vector<std::size_t> dist(signatures.size());
  for (std::size_t i = 0; i < signatures.size(); ++i)
    dist[i] = signatures[i].hamming(query);
  k = std::min(k, idx.size());
  std::partial_sort(idx.begin(), idx.begin() + static_cast<std::ptrdiff_t>(k),
                    idx.end(), [&](std::size_t a, std::size_t b) {
                      if (dist[a] != dist[b]) return dist[a] < dist[b];
                      return a < b;
                    });
  idx.resize(k);
  return idx;
}

}  // namespace imars::baseline
