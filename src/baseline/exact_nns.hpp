// Exact (brute-force) nearest-neighbour search references.
//
// Functional stand-in for the FAISS searches the paper uses on GPU; also the
// oracle against which the TCAM threshold search is verified.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

#include "tensor/tensor.hpp"
#include "util/bitvec.hpp"

namespace imars::baseline {

/// Top-k rows of `items` by descending cosine similarity to `query`.
/// Deterministic tie-break: lower index wins.
std::vector<std::size_t> topk_cosine(const tensor::Matrix& items,
                                     std::span<const float> query,
                                     std::size_t k);

/// Top-k rows by descending inner product.
std::vector<std::size_t> topk_dot(const tensor::Matrix& items,
                                  std::span<const float> query,
                                  std::size_t k);

/// All signature indices with Hamming distance <= radius (ascending index) —
/// the fixed-radius near-neighbour semantics of the TCAM threshold match.
std::vector<std::size_t> radius_hamming(
    std::span<const util::BitVec> signatures, const util::BitVec& query,
    std::size_t radius);

/// Top-k signature indices by ascending Hamming distance (ties: lower index).
std::vector<std::size_t> topk_hamming(std::span<const util::BitVec> signatures,
                                      const util::BitVec& query,
                                      std::size_t k);

}  // namespace imars::baseline
