#include "baseline/gpu_model.hpp"

namespace imars::baseline {

using device::Ns;
using device::Pj;
using recsys::OpCost;

OpCost GpuModel::from_us(double us) const {
  // Energy = latency x effective power. 1 us * 1 W = 1 uJ = 1e6 pJ.
  return OpCost{device::from_us(us), device::from_uj(us * cal_.power_w)};
}

OpCost GpuModel::et_lookup(std::size_t tables) const {
  return from_us(cal_.et_base_us +
                 cal_.et_per_table_us * static_cast<double>(tables));
}

OpCost GpuModel::nns(GpuNnsKind kind, std::size_t items) const {
  double base_us = 0.0;
  double per_item_ns = 0.0;
  switch (kind) {
    case GpuNnsKind::kBruteCosine:
      base_us = cal_.nns_cosine_base_us;
      per_item_ns = cal_.nns_cosine_per_item_ns;
      break;
    case GpuNnsKind::kLsh256:
      base_us = cal_.nns_lsh_base_us;
      per_item_ns = cal_.nns_lsh_per_item_ns;
      break;
    case GpuNnsKind::kFaissAnn:
      base_us = cal_.nns_faiss_base_us;
      per_item_ns = cal_.nns_faiss_per_item_ns;
      break;
  }
  return from_us(base_us + per_item_ns * static_cast<double>(items) * 1e-3);
}

OpCost GpuModel::dnn(std::size_t layers, std::size_t macs) const {
  const double compute_us =
      2.0 * static_cast<double>(macs) / cal_.dnn_flops_per_us;
  return from_us(cal_.dnn_launch_per_layer_us * static_cast<double>(layers) +
                 compute_us);
}

OpCost GpuModel::rank_pair_overhead() const {
  return from_us(cal_.rank_pair_overhead_us);
}

OpCost GpuModel::topk(std::size_t n) const {
  // Selection over O(100) candidates is launch-bound; size-dependent term
  // only matters for very large n.
  return from_us(cal_.topk_us + 1e-5 * static_cast<double>(n));
}

}  // namespace imars::baseline
