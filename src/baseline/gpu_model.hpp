// Calibrated analytical cost model of the paper's GPU baseline.
//
// The paper measures a Nvidia GTX 1080 with nvidia-smi (energy) and
// lineprofiler (latency). That hardware is not available here, so we use an
// analytical model whose constants are calibrated to every GPU data point
// the paper publishes (substitution documented in DESIGN.md section 2):
//
//   * ET lookup (Table III), one input:
//       MovieLens filtering (6 tables):  9.27 us / 203.97 uJ
//       MovieLens ranking   (7 tables):  9.60 us / 211.26 uJ
//       Criteo ranking     (26 tables): 14.97 us / 329.34 uJ
//     A linear fit  lat = base + per_table * n  reproduces all three points
//     to <1%: base 7.56 us, 0.285 us/table. Energy follows the same fit
//     (166.4 uJ + 6.27 uJ/table), consistent with an effective measured
//     power of ~22 W on all three points.
//
//   * NNS over the MovieLens ItET (Sec IV-C2, ~3952 items):
//       brute cosine: 13.6 us / 340 uJ   -> base 6.0 us + 1.92 ns/item
//       LSH-256:       6.97 us / 150 uJ  -> base 5.0 us + 0.50 ns/item
//     Fig. 2's much smaller NNS share (~11% of filtering) corresponds to the
//     FAISS ANN search used in the accuracy experiment; modelled as
//     base 1.5 us + 0.1 ns/item.
//
//   * DNN stack: launch-bound for these layer sizes; 2.1 us/layer matches
//     the Fig. 2 filtering share (36% with a 3-layer tower). The ranking
//     DNN cost per user-item pair (27.1 us, includes the feature
//     concat/copy kernels) follows from the Fig. 2 ranking shares
//     (ET 23% / DNN 65% / TopK 12%); with ~20 candidates per query this
//     reproduces the paper's end-to-end 1311 queries/s.
//
//   * Energy = latency x 22 W (the effective power implied by all of the
//     paper's GPU energy/latency pairs).
#pragma once

#include <cstddef>

#include "recsys/types.hpp"

namespace imars::baseline {

/// Calibration constants (see header comment for derivations).
struct GpuCalibration {
  // ET lookup+pool, per input.
  double et_base_us = 7.56;
  double et_per_table_us = 0.285;

  // NNS, per query over n items.
  double nns_cosine_base_us = 6.0;
  double nns_cosine_per_item_ns = 1.92;
  double nns_lsh_base_us = 5.0;
  double nns_lsh_per_item_ns = 0.50;
  double nns_faiss_base_us = 1.5;
  double nns_faiss_per_item_ns = 0.10;

  // DNN stack.
  double dnn_launch_per_layer_us = 2.1;
  double dnn_flops_per_us = 4.0e6;      ///< effective 4 TFLOP/s for tiny gemv
  double rank_pair_overhead_us = 22.9;  ///< concat/copy kernels per user-item pair

  // Top-k selection kernel.
  double topk_us = 5.0;

  // Effective measured board power.
  double power_w = 22.0;
};

/// GPU NNS algorithm variant (Sec IV-C2 compares all three).
enum class GpuNnsKind {
  kBruteCosine,
  kLsh256,
  kFaissAnn,
};

/// Per-operation GPU costs derived from the calibration.
class GpuModel {
 public:
  GpuModel() : GpuModel(GpuCalibration{}) {}
  explicit GpuModel(const GpuCalibration& cal) : cal_(cal) {}

  const GpuCalibration& calibration() const noexcept { return cal_; }

  /// ET lookup + pooling for one input touching `tables` embedding tables.
  recsys::OpCost et_lookup(std::size_t tables) const;

  /// NNS over `items` item embeddings.
  recsys::OpCost nns(GpuNnsKind kind, std::size_t items) const;

  /// One DNN forward pass: `layers` dense layers, `macs` multiply-accums.
  recsys::OpCost dnn(std::size_t layers, std::size_t macs) const;

  /// Extra per-candidate ranking overhead (feature assembly kernels).
  recsys::OpCost rank_pair_overhead() const;

  /// Final top-k selection over `n` scored candidates.
  recsys::OpCost topk(std::size_t n) const;

 private:
  recsys::OpCost from_us(double us) const;
  GpuCalibration cal_;
};

}  // namespace imars::baseline
