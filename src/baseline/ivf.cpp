#include "baseline/ivf.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "util/error.hpp"
#include "util/rng.hpp"

namespace imars::baseline {

namespace {

tensor::Matrix normalized_rows(const tensor::Matrix& m) {
  tensor::Matrix out(m.rows(), m.cols());
  for (std::size_t r = 0; r < m.rows(); ++r) {
    const auto src = m.row(r);
    auto dst = out.row(r);
    const float n = tensor::norm(src);
    const float inv = (n > 0.0f) ? 1.0f / n : 0.0f;
    for (std::size_t c = 0; c < m.cols(); ++c) dst[c] = src[c] * inv;
  }
  return out;
}

}  // namespace

IvfIndex::IvfIndex(const tensor::Matrix& items, const Config& config)
    : config_(config), items_(normalized_rows(items)) {
  IMARS_REQUIRE(items.rows() > 0, "IvfIndex: empty item set");
  IMARS_REQUIRE(config.nlist >= 1, "IvfIndex: nlist must be >= 1");
  IMARS_REQUIRE(config.nprobe >= 1 && config.nprobe <= config.nlist,
                "IvfIndex: nprobe must be in [1, nlist]");
  const std::size_t nlist = std::min(config.nlist, items.rows());
  const std::size_t dim = items.cols();

  // k-means++ -style seeding (greedy farthest point on a sample), then
  // Lloyd iterations on the normalized vectors.
  util::Xoshiro256 rng(config.seed);
  centroids_ = tensor::Matrix(nlist, dim);
  std::vector<std::size_t> seeds;
  seeds.push_back(rng.below(items_.rows()));
  while (seeds.size() < nlist) {
    // Pick the sampled point farthest from its nearest chosen seed.
    std::size_t best = 0;
    float best_d = -1.0f;
    for (int trial = 0; trial < 32; ++trial) {
      const std::size_t cand = rng.below(items_.rows());
      float nearest = 4.0f;  // max squared distance on the unit sphere
      for (auto s : seeds) {
        float d = 0.0f;
        for (std::size_t c = 0; c < dim; ++c) {
          const float diff = items_.at(cand, c) - items_.at(s, c);
          d += diff * diff;
        }
        nearest = std::min(nearest, d);
      }
      if (nearest > best_d) {
        best_d = nearest;
        best = cand;
      }
    }
    seeds.push_back(best);
  }
  for (std::size_t l = 0; l < nlist; ++l) {
    const auto src = items_.row(seeds[l]);
    auto dst = centroids_.row(l);
    std::copy(src.begin(), src.end(), dst.begin());
  }

  std::vector<std::size_t> assign(items_.rows(), 0);
  for (std::size_t iter = 0; iter < config.kmeans_iters; ++iter) {
    // Assign.
    for (std::size_t r = 0; r < items_.rows(); ++r)
      assign[r] = nearest_centroids(items_.row(r), 1)[0];
    // Update.
    tensor::Matrix sums(nlist, dim);
    std::vector<std::size_t> counts(nlist, 0);
    for (std::size_t r = 0; r < items_.rows(); ++r) {
      auto dst = sums.row(assign[r]);
      const auto src = items_.row(r);
      for (std::size_t c = 0; c < dim; ++c) dst[c] += src[c];
      ++counts[assign[r]];
    }
    for (std::size_t l = 0; l < nlist; ++l) {
      if (counts[l] == 0) continue;  // keep the old centroid for empty lists
      auto dst = centroids_.row(l);
      const auto src = sums.row(l);
      const float inv = 1.0f / static_cast<float>(counts[l]);
      for (std::size_t c = 0; c < dim; ++c) dst[c] = src[c] * inv;
    }
  }

  lists_.assign(nlist, {});
  for (std::size_t r = 0; r < items_.rows(); ++r) {
    lists_[nearest_centroids(items_.row(r), 1)[0]].push_back(r);
  }
}

std::vector<std::size_t> IvfIndex::nearest_centroids(std::span<const float> q,
                                                     std::size_t n) const {
  std::vector<float> score(centroids_.rows());
  for (std::size_t l = 0; l < centroids_.rows(); ++l)
    score[l] = tensor::dot(centroids_.row(l), q);
  std::vector<std::size_t> order(centroids_.rows());
  std::iota(order.begin(), order.end(), 0);
  n = std::min(n, order.size());
  std::partial_sort(order.begin(), order.begin() + static_cast<std::ptrdiff_t>(n),
                    order.end(), [&](std::size_t a, std::size_t b) {
                      if (score[a] != score[b]) return score[a] > score[b];
                      return a < b;
                    });
  order.resize(n);
  return order;
}

std::vector<std::size_t> IvfIndex::search(std::span<const float> query,
                                          std::size_t k) const {
  return search_probes(query, k, config_.nprobe);
}

std::vector<std::size_t> IvfIndex::search_probes(std::span<const float> query,
                                                 std::size_t k,
                                                 std::size_t nprobe) const {
  IMARS_REQUIRE(query.size() == items_.cols(), "IvfIndex: query dim mismatch");
  IMARS_REQUIRE(nprobe >= 1, "IvfIndex: nprobe must be >= 1");
  nprobe = std::min(nprobe, centroids_.rows());

  // Normalize the query so IP == cosine.
  tensor::Vector q(query.begin(), query.end());
  const float n = tensor::norm(q);
  if (n > 0.0f) tensor::scale_inplace(q, 1.0f / n);

  std::vector<std::pair<float, std::size_t>> scored;
  for (auto list_id : nearest_centroids(q, nprobe)) {
    for (auto item : lists_[list_id])
      scored.push_back({tensor::dot(items_.row(item), q), item});
  }
  const std::size_t kk = std::min(k, scored.size());
  std::partial_sort(scored.begin(),
                    scored.begin() + static_cast<std::ptrdiff_t>(kk),
                    scored.end(), [](const auto& a, const auto& b) {
                      if (a.first != b.first) return a.first > b.first;
                      return a.second < b.second;
                    });
  std::vector<std::size_t> out;
  out.reserve(kk);
  for (std::size_t i = 0; i < kk; ++i) out.push_back(scored[i].second);
  return out;
}

double IvfIndex::scan_fraction(std::size_t nprobe) const {
  nprobe = std::min(nprobe, lists_.size());
  // Expected fraction with balanced lists; exact value depends on the
  // query, so report the balanced-case estimate.
  return static_cast<double>(nprobe) / static_cast<double>(lists_.size());
}

std::vector<std::size_t> IvfIndex::list_sizes() const {
  std::vector<std::size_t> out;
  out.reserve(lists_.size());
  for (const auto& l : lists_) out.push_back(l.size());
  return out;
}

}  // namespace imars::baseline
