// Inverted-file (IVF) approximate nearest-neighbour index — the functional
// stand-in for the FAISS search the paper's GPU baseline uses (Sec IV-B
// "a FAISS-based distance search is used"; the Fig. 2 NNS share corresponds
// to this index, not to the brute-force scan).
//
// Standard IVF-Flat: k-means coarse quantizer over the item embeddings;
// at query time the `nprobe` nearest centroids' lists are scanned
// exhaustively. Recall is tunable via nprobe (nprobe = nlist degenerates
// to exact search).
#pragma once

#include <cstddef>
#include <vector>

#include "tensor/tensor.hpp"

namespace imars::baseline {

/// IVF-Flat index over row vectors (cosine/IP via normalized vectors).
class IvfIndex {
 public:
  /// Index configuration.
  struct Config {
    std::size_t nlist = 16;    ///< coarse clusters
    std::size_t nprobe = 4;    ///< clusters scanned per query
    std::size_t kmeans_iters = 8;
    std::uint64_t seed = 1;
  };

  /// Builds the index over `items` (one embedding per row). Vectors are
  /// L2-normalized internally so inner product == cosine.
  IvfIndex(const tensor::Matrix& items, const Config& config);

  std::size_t size() const noexcept { return items_.rows(); }
  std::size_t nlist() const noexcept { return centroids_.rows(); }
  const Config& config() const noexcept { return config_; }

  /// Top-k item ids by cosine similarity among the nprobe nearest lists.
  std::vector<std::size_t> search(std::span<const float> query,
                                  std::size_t k) const;

  /// Like search(), with an explicit probe count (recall/latency dial).
  std::vector<std::size_t> search_probes(std::span<const float> query,
                                         std::size_t k,
                                         std::size_t nprobe) const;

  /// Fraction of items scanned for a given nprobe (cost proxy).
  double scan_fraction(std::size_t nprobe) const;

  /// List sizes (for balance diagnostics).
  std::vector<std::size_t> list_sizes() const;

 private:
  std::vector<std::size_t> nearest_centroids(std::span<const float> q,
                                             std::size_t n) const;

  Config config_;
  tensor::Matrix items_;      // normalized copies
  tensor::Matrix centroids_;  // nlist x dim
  std::vector<std::vector<std::size_t>> lists_;
};

}  // namespace imars::baseline
