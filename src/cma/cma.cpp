#include "cma/cma.hpp"

#include <algorithm>

#include "util/error.hpp"
#include "util/quant.hpp"

namespace imars::cma {

using device::Component;
using device::Ns;

Cma::Cma(const device::DeviceProfile& profile, device::EnergyLedger* ledger)
    : profile_(&profile),
      ledger_(ledger),
      rows_(profile.cma_rows),
      cols_(profile.cma_cols),
      data_(rows_, util::BitVec(profile.cma_cols)),
      xmask_(rows_, util::BitVec(profile.cma_cols)),
      valid_(rows_, false),
      writes_(rows_, 0) {
  IMARS_REQUIRE(ledger != nullptr, "Cma: ledger must not be null");
  IMARS_REQUIRE(cols_ % 8 == 0, "Cma: columns must be a multiple of 8");
}

void Cma::set_mode(Mode m) {
  if (m != mode_) {
    mode_ = m;
    ++mode_switches_;
    // Reconfiguration selects different peripherals (CAM SA vs RAM SA vs
    // accumulator); charged as one controller decision.
    ledger_->charge(Component::kController, profile_->controller_energy);
  }
}

void Cma::check_row(std::size_t row) const {
  IMARS_REQUIRE(row < rows_, "Cma: row " + std::to_string(row) +
                                 " out of range (rows " +
                                 std::to_string(rows_) + ")");
}

void Cma::require_mode(Mode m, const char* op) const {
  IMARS_REQUIRE(mode_ == m, std::string("Cma: operation '") + op +
                                "' requires a different array mode");
}

device::Ns Cma::write_row(std::size_t row, const util::BitVec& bits) {
  require_mode(Mode::kRam, "write_row");
  check_row(row);
  IMARS_REQUIRE(bits.size() == cols_, "Cma::write_row: width mismatch");
  data_[row] = bits;
  valid_[row] = true;
  ++writes_[row];
  ledger_->charge(Component::kCmaRam, profile_->cma_write.energy);
  return profile_->cma_write.latency;
}

util::BitVec Cma::read_row(std::size_t row, device::Ns* latency) const {
  require_mode(Mode::kRam, "read_row");
  check_row(row);
  IMARS_REQUIRE(valid_[row], "Cma::read_row: row never written");
  ledger_->charge(Component::kCmaRam, profile_->cma_read.energy);
  if (latency != nullptr) *latency = profile_->cma_read.latency;
  return data_[row];
}

device::Ns Cma::write_row_i8(std::size_t row,
                             std::span<const std::int8_t> lanes) {
  IMARS_REQUIRE(lanes.size() == cols_ / 8, "Cma::write_row_i8: lane count");
  util::BitVec bits(cols_);
  for (std::size_t l = 0; l < lanes.size(); ++l)
    bits.set_byte(l * 8, static_cast<std::uint8_t>(lanes[l]));
  return write_row(row, bits);
}

std::vector<std::int8_t> Cma::read_row_i8(std::size_t row,
                                          device::Ns* latency) const {
  const util::BitVec bits = read_row(row, latency);
  std::vector<std::int8_t> lanes(cols_ / 8);
  for (std::size_t l = 0; l < lanes.size(); ++l)
    lanes[l] = static_cast<std::int8_t>(bits.byte_at(l * 8));
  return lanes;
}

void Cma::set_dont_care(std::size_t row, std::size_t col, bool dont_care) {
  require_mode(Mode::kRam, "set_dont_care");
  check_row(row);
  IMARS_REQUIRE(col < cols_, "Cma::set_dont_care: column out of range");
  xmask_[row].set(col, dont_care);
  // Programming the ternary mask is a write through the same drivers.
  ledger_->charge(Component::kCmaRam, profile_->cma_write.energy);
}

SearchResult Cma::search(const util::BitVec& query,
                         std::size_t threshold) const {
  require_mode(Mode::kTcam, "search");
  IMARS_REQUIRE(query.size() == cols_, "Cma::search: query width mismatch");

  SearchResult result;
  result.matchlines = util::BitVec(rows_);
  // All matchlines evaluate in parallel: one search is one array operation
  // regardless of row count (O(1) search, Sec II-B).
  ledger_->charge(Component::kCmaSearch, profile_->cma_search.energy);
  for (std::size_t r = 0; r < rows_; ++r) {
    if (!valid_[r]) continue;
    // Mismatch current only flows through cells that are binary (not X) and
    // differ from the query bit.
    const util::BitVec diff = (data_[r] ^ query) & ~xmask_[r];
    if (diff.popcount() <= threshold) {
      result.matchlines.set(r, true);
      result.matches.push_back(r);
    }
  }
  // Search + priority-encoder pass.
  result.latency = profile_->cma_search.latency;
  return result;
}

std::optional<std::size_t> Cma::first_match(const SearchResult& r) {
  if (r.matches.empty()) return std::nullopt;
  return r.matches.front();
}

device::Ns Cma::add_rows(std::size_t dst_row, std::size_t a_row,
                         std::size_t b_row) {
  require_mode(Mode::kGpcim, "add_rows");
  check_row(dst_row);
  check_row(a_row);
  check_row(b_row);
  IMARS_REQUIRE(valid_[a_row] && valid_[b_row],
                "Cma::add_rows: source rows must be written");
  const std::size_t lanes = cols_ / 8;
  util::BitVec out(cols_);
  for (std::size_t l = 0; l < lanes; ++l) {
    const auto a = static_cast<std::int8_t>(data_[a_row].byte_at(l * 8));
    const auto b = static_cast<std::int8_t>(data_[b_row].byte_at(l * 8));
    out.set_byte(l * 8, static_cast<std::uint8_t>(util::sat_add_i8(a, b)));
  }
  data_[dst_row] = out;
  valid_[dst_row] = true;
  ++writes_[dst_row];  // the in-memory add rewrites the destination row
  ledger_->charge(Component::kCmaAdd, profile_->cma_add.energy);
  return profile_->cma_add.latency;
}

device::Ns Cma::accumulate(std::size_t row,
                           std::span<std::int32_t> acc) const {
  require_mode(Mode::kGpcim, "accumulate");
  check_row(row);
  IMARS_REQUIRE(valid_[row], "Cma::accumulate: row never written");
  IMARS_REQUIRE(acc.size() == cols_ / 8, "Cma::accumulate: lane count");
  for (std::size_t l = 0; l < acc.size(); ++l) {
    acc[l] += static_cast<std::int8_t>(data_[row].byte_at(l * 8));
  }
  ledger_->charge(Component::kCmaAdd, profile_->cma_add.energy);
  return profile_->cma_add.latency;
}

bool Cma::row_valid(std::size_t row) const {
  check_row(row);
  return valid_[row];
}

std::uint64_t Cma::row_writes(std::size_t row) const {
  check_row(row);
  return writes_[row];
}

std::uint64_t Cma::max_row_writes() const noexcept {
  std::uint64_t m = 0;
  for (auto w : writes_) m = std::max(m, w);
  return m;
}

double Cma::wearout_fraction() const noexcept {
  if (profile_->endurance_cycles == 0) return 0.0;
  return static_cast<double>(max_row_writes()) /
         static_cast<double>(profile_->endurance_cycles);
}

util::BitVec Cma::peek_row(std::size_t row) const {
  check_row(row);
  IMARS_REQUIRE(valid_[row], "Cma::peek_row: row never written");
  return data_[row];
}

std::vector<std::int8_t> Cma::peek_row_i8(std::size_t row) const {
  const util::BitVec bits = peek_row(row);
  std::vector<std::int8_t> lanes(cols_ / 8);
  for (std::size_t l = 0; l < lanes.size(); ++l)
    lanes[l] = static_cast<std::int8_t>(bits.byte_at(l * 8));
  return lanes;
}

}  // namespace imars::cma
