// Functional + timed model of one FeFET-based Configurable Memory Array
// (Sec II-B, III-A1; circuit details in Reis et al., ASPDAC'21 [9]).
//
// A CMA is a 256x256 memory array that switches between three modes:
//   * RAM   — row-wise read/write through WL/BL drivers and RAM sense amps;
//   * TCAM  — all rows searched in parallel against a query on the search
//             lines; each cell XORs its stored bit with the query bit and
//             mismatch currents sum on the row's matchline. A CAM sense amp
//             compares the matchline current against a reference generated
//             by a dummy 1T+1FeFET cell, implementing *threshold* match:
//             row matches iff HammingDistance(row, query) <= threshold.
//             Ternary cells can store X (don't care), which never mismatches.
//   * GPCiM — two rows are activated simultaneously and an accumulator next
//             to the RAM sense amps produces their lane-wise integer sum
//             (32 lanes x int8 for the paper's 32-d embeddings).
//
// The functional behaviour here is bit-accurate; each operation charges the
// Table II figures of merit to an EnergyLedger and returns its latency so
// the caller can compose serial/parallel schedules.
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <vector>

#include "device/ledger.hpp"
#include "device/profile.hpp"
#include "util/bitvec.hpp"

namespace imars::cma {

/// Operating mode of the array (one at a time; Sec II-B "CMAs can work as
/// either TCAM or GPCiM units at distinct times").
enum class Mode : std::uint8_t {
  kRam,
  kTcam,
  kGpcim,
};

/// Result of a TCAM threshold search.
struct SearchResult {
  util::BitVec matchlines;            ///< bit r set = row r matched
  std::vector<std::size_t> matches;   ///< matching row indices, ascending
  device::Ns latency;                 ///< search + priority-encode time
};

/// One 256x256 configurable memory array.
class Cma {
 public:
  /// Array with the profile's geometry. `ledger` (non-owning, required)
  /// receives all energy charges. The array keeps a pointer to `profile`,
  /// which must outlive it — arrays are instantiated by the thousands, so
  /// the owner (e.g. core::ImarsAccelerator) holds one stable copy.
  Cma(const device::DeviceProfile& profile, device::EnergyLedger* ledger);

  std::size_t rows() const noexcept { return rows_; }
  std::size_t cols() const noexcept { return cols_; }
  Mode mode() const noexcept { return mode_; }

  /// Switches operating mode. Reconfiguration itself is charged to the
  /// controller (peripheral mux select), not the array.
  void set_mode(Mode m);

  /// Number of mode switches so far (exposed for scheduling diagnostics).
  std::size_t mode_switches() const noexcept { return mode_switches_; }

  // --- RAM mode ---------------------------------------------------------

  /// Writes a full row. Requires RAM mode.
  device::Ns write_row(std::size_t row, const util::BitVec& bits);

  /// Reads a full row. Requires RAM mode.
  util::BitVec read_row(std::size_t row, device::Ns* latency = nullptr) const;

  /// Writes int8 lanes into a row (lane i occupies bits [8i, 8i+8)).
  device::Ns write_row_i8(std::size_t row, std::span<const std::int8_t> lanes);

  /// Reads int8 lanes from a row.
  std::vector<std::int8_t> read_row_i8(std::size_t row,
                                       device::Ns* latency = nullptr) const;

  // --- TCAM mode --------------------------------------------------------

  /// Marks a stored bit as ternary don't-care (never mismatches) or
  /// restores it to binary. Requires RAM mode (mask programming uses the
  /// write path).
  void set_dont_care(std::size_t row, std::size_t col, bool dont_care);

  /// Threshold search: returns all valid rows with Hamming distance
  /// <= threshold from `query` (don't-care cells never mismatch).
  /// Requires TCAM mode. Invalid (never-written) rows do not match.
  SearchResult search(const util::BitVec& query, std::size_t threshold) const;

  /// Priority encoder over the last search: lowest matching row index.
  static std::optional<std::size_t> first_match(const SearchResult& r);

  // --- GPCiM mode -------------------------------------------------------

  /// In-memory addition: dst_row = saturate_i8(lane-wise a_row + b_row).
  /// All three rows live in this array. Requires GPCiM mode.
  device::Ns add_rows(std::size_t dst_row, std::size_t a_row,
                      std::size_t b_row);

  /// Reads row `row` and accumulates its int8 lanes into `acc` (int32 lanes)
  /// using the accumulator register beside the RAM sense amps. This is the
  /// pooling primitive: repeated accumulate() implements multi-lookup sum
  /// pooling without wearing out cells. Requires GPCiM mode.
  device::Ns accumulate(std::size_t row, std::span<std::int32_t> acc) const;

  /// True if the row has ever been written.
  bool row_valid(std::size_t row) const;

  // --- Endurance tracking -------------------------------------------------
  // FeFET cells endure a bounded number of polarization switches
  // (DeviceProfile::endurance_cycles). The array counts per-row writes so
  // mapping policies can be audited for wear hot-spots (embedding tables
  // are written rarely, but GPCiM staging patterns could concentrate
  // writes).

  /// Writes ever issued to `row`.
  std::uint64_t row_writes(std::size_t row) const;

  /// Maximum per-row write count across the array.
  std::uint64_t max_row_writes() const noexcept;

  /// Worst-row wear as a fraction of the profile's endurance budget.
  double wearout_fraction() const noexcept;

  // --- Simulator-internal access ----------------------------------------

  /// Unaccounted row read used by composite models that charge energy and
  /// latency at a coarser grain (see core::ImarsAccelerator, which applies
  /// the paper's worst-case ET-lookup cost model on top of functional
  /// access). Not part of the hardware API: no mode check, no charge.
  util::BitVec peek_row(std::size_t row) const;

  /// Unaccounted int8-lane view of a row (see peek_row).
  std::vector<std::int8_t> peek_row_i8(std::size_t row) const;

 private:
  void check_row(std::size_t row) const;
  void require_mode(Mode m, const char* op) const;

  const device::DeviceProfile* profile_;
  device::EnergyLedger* ledger_;
  std::size_t rows_;
  std::size_t cols_;
  Mode mode_ = Mode::kRam;
  std::size_t mode_switches_ = 0;

  std::vector<util::BitVec> data_;   ///< stored bits, one BitVec per row
  std::vector<util::BitVec> xmask_;  ///< don't-care mask per row
  std::vector<bool> valid_;          ///< row has been written
  std::vector<std::uint64_t> writes_;  ///< per-row write counts (endurance)
};

}  // namespace imars::cma
