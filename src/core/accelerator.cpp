#include "core/accelerator.hpp"

#include <algorithm>
#include <cmath>
#include <map>
#include <numeric>

#include "core/calibration.hpp"
#include "util/error.hpp"

namespace imars::core {

using device::Component;
using device::Ns;
using device::Pj;
using recsys::OpCost;

namespace {

// Row-to-array addressing under the bank's placement policy (ArchConfig::
// RowPlacement). `n_cmas` is the bank's array count, `cma_rows` = R.
std::size_t cma_of(RowPlacement p, std::size_t row, std::size_t n_cmas,
                   std::size_t cma_rows) {
  return p == RowPlacement::kSequential ? row / cma_rows : row % n_cmas;
}

std::size_t local_of(RowPlacement p, std::size_t row, std::size_t n_cmas,
                     std::size_t cma_rows) {
  return p == RowPlacement::kSequential ? row % cma_rows : row / n_cmas;
}

std::size_t entry_of(RowPlacement p, std::size_t cma_id, std::size_t local,
                     std::size_t n_cmas, std::size_t cma_rows) {
  return p == RowPlacement::kSequential ? cma_id * cma_rows + local
                                        : local * n_cmas + cma_id;
}

}  // namespace

tensor::Vector PooledResult::dequantized() const {
  tensor::Vector out(lanes.size());
  const float div = (mean_pool && count > 0) ? static_cast<float>(count) : 1.0f;
  for (std::size_t i = 0; i < lanes.size(); ++i)
    out[i] = scale * static_cast<float>(lanes[i]) / div;
  return out;
}

ImarsAccelerator::ImarsAccelerator(const ArchConfig& arch,
                                   const device::DeviceProfile& profile)
    : arch_(arch),
      profile_(profile),
      mapping_(arch),
      rsc_(profile_, &ledger_),
      ibc_(profile_, &ledger_),
      controller_(profile_, &ledger_),
      mat_tree_(profile_, &ledger_, arch.cmas_per_mat, arch.emb_dim),
      bank_tree_(profile_, &ledger_, arch.bank_fan_in, arch.emb_dim) {
  IMARS_REQUIRE(arch.cma_rows == profile.cma_rows &&
                    arch.cma_cols == profile.cma_cols,
                "ImarsAccelerator: ArchConfig / DeviceProfile geometry mismatch");
  IMARS_REQUIRE(arch.lsh_bits <= arch.cma_cols,
                "ImarsAccelerator: signatures wider than one CMA are not "
                "supported by the functional machine (use PerfModel for "
                "longer-signature studies)");
  IMARS_REQUIRE(arch.emb_dim * 8 == arch.cma_cols,
                "ImarsAccelerator: one embedding row must fill one CMA row");
}

ImarsAccelerator::BankState& ImarsAccelerator::bank(std::size_t table_id) {
  IMARS_REQUIRE(table_id < banks_.size(), "ImarsAccelerator: bad table id");
  return banks_[table_id];
}

const ImarsAccelerator::BankState& ImarsAccelerator::bank(
    std::size_t table_id) const {
  IMARS_REQUIRE(table_id < banks_.size(), "ImarsAccelerator: bad table id");
  return banks_[table_id];
}

std::size_t ImarsAccelerator::table_rows(std::size_t table_id) const {
  return bank(table_id).rows;
}

std::size_t ImarsAccelerator::active_mats() const {
  std::size_t mats = 0;
  for (const auto& b : banks_) {
    mats += mapping_.mats_for_cmas(b.data_cmas.size() + b.sig_cmas.size());
  }
  return mats;
}

std::size_t ImarsAccelerator::active_cmas() const {
  std::size_t n = 0;
  for (const auto& b : banks_) n += b.data_cmas.size() + b.sig_cmas.size();
  return n;
}

std::size_t ImarsAccelerator::load_uiet(const std::string& name,
                                        const tensor::QMatrix& table) {
  IMARS_REQUIRE(banks_.size() < arch_.banks,
                "ImarsAccelerator: out of banks (" +
                    std::to_string(arch_.banks) + ")");
  IMARS_REQUIRE(table.cols() == arch_.emb_dim,
                "ImarsAccelerator: table dim != emb_dim");
  BankState b;
  b.name = name;
  b.scale = table.params().scale;
  b.rows = table.rows();
  const std::size_t n_cmas = mapping_.cmas_for_rows(table.rows());
  IMARS_REQUIRE(mapping_.mats_for_cmas(n_cmas) <= arch_.mats_per_bank,
                "ImarsAccelerator: table '" + name + "' exceeds bank capacity");
  b.placement = arch_.placement;
  b.data_cmas.reserve(n_cmas);
  for (std::size_t i = 0; i < n_cmas; ++i)
    b.data_cmas.emplace_back(profile_, &ledger_);
  for (std::size_t r = 0; r < table.rows(); ++r) {
    b.data_cmas[cma_of(b.placement, r, n_cmas, arch_.cma_rows)].write_row_i8(
        local_of(b.placement, r, n_cmas, arch_.cma_rows), table.row(r));
  }
  banks_.push_back(std::move(b));
  return banks_.size() - 1;
}

std::size_t ImarsAccelerator::load_itet(
    const std::string& name, const tensor::QMatrix& table,
    std::span<const util::BitVec> signatures) {
  IMARS_REQUIRE(signatures.size() == table.rows(),
                "ImarsAccelerator: one signature per ItET entry required");
  const std::size_t id = load_uiet(name, table);
  BankState& b = banks_[id];
  b.has_sigs = true;
  const std::size_t n_cmas = b.data_cmas.size();
  b.sig_cmas.reserve(n_cmas);
  for (std::size_t i = 0; i < n_cmas; ++i)
    b.sig_cmas.emplace_back(profile_, &ledger_);
  for (std::size_t r = 0; r < table.rows(); ++r) {
    const auto& sig = signatures[r];
    IMARS_REQUIRE(sig.size() == arch_.lsh_bits,
                  "ImarsAccelerator: signature width != lsh_bits");
    util::BitVec row(arch_.cma_cols);
    row.copy_from(sig, 0, sig.size(), 0);
    b.sig_cmas[cma_of(b.placement, r, n_cmas, arch_.cma_rows)].write_row(
        local_of(b.placement, r, n_cmas, arch_.cma_rows), row);
  }
  // Signature arrays live in TCAM mode from here on; unused tail columns of
  // narrower signatures are ternary don't-cares in a real array — the query
  // below pads with the stored value convention (zeros vs zeros), so they
  // never mismatch.
  for (auto& c : b.sig_cmas) c.set_mode(cma::Mode::kTcam);
  return id;
}

PooledResult ImarsAccelerator::bank_lookup(BankState& b,
                                           const LookupRequest& req,
                                           TimingMode mode,
                                           device::Ns* latency) {
  IMARS_REQUIRE(!req.indices.empty(), "ImarsAccelerator: empty lookup");
  for (auto idx : req.indices)
    IMARS_REQUIRE(idx < b.rows, "ImarsAccelerator: lookup index " +
                                    std::to_string(idx) + " out of range for '" +
                                    b.name + "' (" + std::to_string(b.rows) +
                                    " rows)");

  // ---- Functional pooling: sum int8 lanes of all requested rows. --------
  PooledResult result;
  result.scale = b.scale;
  result.count = req.indices.size();
  result.mean_pool = req.mean_pool;
  result.lanes.assign(arch_.emb_dim, 0);

  // Group by physical CMA to model serialization.
  const std::size_t n_cmas = b.data_cmas.size();
  std::map<std::size_t, std::vector<std::size_t>> by_cma;
  for (auto idx : req.indices) {
    by_cma[cma_of(b.placement, idx, n_cmas, arch_.cma_rows)].push_back(
        local_of(b.placement, idx, n_cmas, arch_.cma_rows));
  }

  for (const auto& [cma_id, rows] : by_cma) {
    const auto& arr = b.data_cmas[cma_id];
    for (auto r : rows) {
      const auto lanes = arr.peek_row_i8(r);
      for (std::size_t l = 0; l < result.lanes.size(); ++l)
        result.lanes[l] += lanes[l];
    }
  }

  // ---- Accounting. -------------------------------------------------------
  const auto& p = profile_;
  Ns array_phase{0.0};

  if (mode == TimingMode::kWorstCaseSameArray) {
    // Paper model (Sec IV-C1): all L lookups collide in one array and
    // serialize as read + (L-1) x (read + write + add).
    const std::size_t L = req.indices.size();
    ledger_.charge(Component::kCmaRam,
                   p.cma_read.energy * static_cast<double>(L), L);
    if (L > 1) {
      ledger_.charge(Component::kCmaRam,
                     p.cma_write.energy * static_cast<double>(L - 1), L - 1);
      ledger_.charge(Component::kCmaAdd,
                     p.cma_add.energy * static_cast<double>(L - 1), L - 1);
    }
    array_phase =
        p.cma_read.latency * static_cast<double>(L) +
        (p.cma_write.latency + p.cma_add.latency) * static_cast<double>(L - 1);
    // One mode reconfiguration of the (single) worst-case array.
    ledger_.charge(Component::kController, p.controller_energy);
  } else {
    // Actual placement: groups in different CMAs run in parallel; within a
    // CMA a single row is a RAM read, multiple rows run through the GPCiM
    // accumulator (one add per row).
    for (const auto& [cma_id, rows] : by_cma) {
      (void)cma_id;
      Ns group{0.0};
      if (rows.size() == 1) {
        ledger_.charge(Component::kCmaRam, p.cma_read.energy);
        group = p.cma_read.latency;
      } else {
        ledger_.charge(Component::kCmaAdd,
                       p.cma_add.energy * static_cast<double>(rows.size()),
                       rows.size());
        group = p.cma_add.latency * static_cast<double>(rows.size());
      }
      // Mode reconfiguration of the group's array.
      ledger_.charge(Component::kController, p.controller_energy);
      array_phase = device::max(array_phase, group);
    }
  }

  // Contributing mats (worst case: one array -> one mat).
  std::size_t mats = 1;
  if (mode == TimingMode::kActualPlacement) {
    std::vector<std::size_t> mat_ids;
    for (const auto& [cma_id, rows] : by_cma) {
      (void)rows;
      mat_ids.push_back(cma_id / arch_.cmas_per_mat);
    }
    std::sort(mat_ids.begin(), mat_ids.end());
    mats = static_cast<std::size_t>(
        std::distance(mat_ids.begin(),
                      std::unique(mat_ids.begin(), mat_ids.end())));
  }

  // Intra-mat trees run in parallel across mats: one pass.
  Ns tree_lat{0.0};
  {
    // Charge one pass per contributing mat (parallel in time).
    for (std::size_t m = 0; m < mats; ++m)
      ledger_.charge(Component::kIntraMatTree, p.intra_mat_add.energy);
    tree_lat = p.intra_mat_add.latency;
  }

  // Mat outputs stream over the IBC to the intra-bank tree under the
  // controller's schedule; serialized shots, multi-round accumulation.
  const auto groups = controller_.schedule(1, mats, arch_.bank_fan_in);
  Ns ibc_lat{0.0};
  for (const auto& g : groups) ibc_lat += ibc_.transfer_words(g.count);
  const std::size_t rounds = bank_tree_.rounds_for(mats);
  Ns bank_tree_lat{0.0};
  if (mats > 1) {
    ledger_.charge(Component::kIntraBankTree,
                   p.intra_bank_add.energy * static_cast<double>(rounds),
                   rounds);
    bank_tree_lat = p.intra_bank_add.latency * static_cast<double>(rounds);
  } else {
    // Single mat: data still crosses the intra-bank stage once (Table III
    // includes the intra-bank addition in every ET lookup).
    ledger_.charge(Component::kIntraBankTree, p.intra_bank_add.energy);
    bank_tree_lat = p.intra_bank_add.latency;
  }

  // Peripheral overhead of every array belonging to the activated table.
  const std::size_t active =
      b.data_cmas.size() + b.sig_cmas.size();
  ledger_.charge(Component::kPeripheral,
                 Pj{kPeripheralPjPerActiveCmaPerOp * static_cast<double>(active)},
                 active);

  if (latency != nullptr)
    *latency = array_phase + tree_lat + ibc_lat + bank_tree_lat;
  return result;
}

std::vector<PooledResult> ImarsAccelerator::lookup_pooled(
    std::span<const LookupRequest> reqs, TimingMode mode,
    recsys::OpCost* cost) {
  IMARS_REQUIRE(!reqs.empty(), "ImarsAccelerator: no lookup requests");
  // Capture (not a total() delta): the measured energy must not depend on
  // what the ledger accumulated before this call — see EnergyLedger.
  device::ScopedEnergyCapture capture(ledger_);

  std::vector<PooledResult> out;
  out.reserve(reqs.size());
  Ns slowest_bank{0.0};
  std::size_t total_indices = 0;
  for (const auto& req : reqs) {
    Ns bank_lat{0.0};
    out.push_back(bank_lookup(bank(req.table_id), req, mode, &bank_lat));
    slowest_bank = device::max(slowest_bank, bank_lat);
    total_indices += req.indices.size();
  }

  // RSC traffic: index distribution in, one 256-bit pooled vector out per
  // bank; serialized on the shared bus.
  Ns comm = rsc_.transfer(total_indices * 4);
  for (std::size_t i = 0; i < reqs.size(); ++i) comm += rsc_.transfer(32);

  const Pj captured = capture.take();
  if (cost != nullptr) {
    cost->latency += slowest_bank + comm;
    cost->energy += captured;
  }
  return out;
}

PooledResult ImarsAccelerator::read_row(std::size_t table_id, std::size_t row,
                                        recsys::OpCost* cost) {
  BankState& b = bank(table_id);
  IMARS_REQUIRE(row < b.rows, "ImarsAccelerator::read_row: out of range");
  device::ScopedEnergyCapture capture(ledger_);

  auto& arr =
      b.data_cmas[cma_of(b.placement, row, b.data_cmas.size(), arch_.cma_rows)];
  Ns lat{0.0};
  const auto lanes = arr.read_row_i8(
      local_of(b.placement, row, b.data_cmas.size(), arch_.cma_rows), &lat);
  // One row = emb_dim int8 lanes on the RSC bus (PerfModel::row_fetch
  // mirrors this).
  Ns comm = rsc_.transfer(arch_.emb_dim);

  PooledResult result;
  result.scale = b.scale;
  result.count = 1;
  result.lanes.assign(lanes.begin(), lanes.end());
  const Pj captured = capture.take();
  if (cost != nullptr) {
    cost->latency += lat + comm;
    cost->energy += captured;
  }
  return result;
}

std::vector<std::size_t> ImarsAccelerator::nns(std::size_t itet_id,
                                               const util::BitVec& query,
                                               std::size_t radius,
                                               recsys::OpCost* cost) {
  BankState& b = bank(itet_id);
  IMARS_REQUIRE(b.has_sigs, "ImarsAccelerator::nns: table has no signatures");
  IMARS_REQUIRE(query.size() == arch_.lsh_bits,
                "ImarsAccelerator::nns: query width != lsh_bits");
  device::ScopedEnergyCapture capture(ledger_);

  util::BitVec padded(arch_.cma_cols);
  padded.copy_from(query, 0, query.size(), 0);

  // All signature arrays search in parallel: latency is one search plus the
  // priority-encode/controller pass; matches aggregate across arrays.
  std::vector<std::size_t> matches;
  Ns search_lat{0.0};
  for (std::size_t a = 0; a < b.sig_cmas.size(); ++a) {
    const auto r = b.sig_cmas[a].search(padded, radius);
    search_lat = device::max(search_lat, r.latency);
    for (auto row : r.matches) {
      const std::size_t id =
          entry_of(b.placement, a, row, b.sig_cmas.size(), arch_.cma_rows);
      if (id < b.rows) matches.push_back(id);
    }
  }
  std::sort(matches.begin(), matches.end());
  ledger_.charge(Component::kController, profile_.controller_energy);
  ledger_.charge(
      Component::kPeripheral,
      Pj{kSearchPeripheralPjPerActiveCma * static_cast<double>(b.sig_cmas.size())},
      b.sig_cmas.size());

  const Pj captured = capture.take();
  if (cost != nullptr) {
    cost->latency += search_lat + profile_.controller_cycle;
    cost->energy += captured;
  }
  return matches;
}

std::vector<std::size_t> ImarsAccelerator::nns_topk(std::size_t itet_id,
                                                    const util::BitVec& query,
                                                    std::size_t k,
                                                    recsys::OpCost* cost) {
  BankState& b = bank(itet_id);
  IMARS_REQUIRE(b.has_sigs, "ImarsAccelerator::nns_topk: no signatures");
  IMARS_REQUIRE(k > 0, "ImarsAccelerator::nns_topk: k must be positive");

  // Binary-search the threshold; every probe is a full parallel search
  // (each charging all signature arrays through nns()).
  std::size_t lo = 0, hi = arch_.lsh_bits;
  std::vector<std::size_t> matched;
  recsys::OpCost total;
  while (lo < hi) {
    const std::size_t mid = (lo + hi) / 2;
    recsys::OpCost probe;
    auto m = nns(itet_id, query, mid, &probe);
    total.latency += probe.latency;  // probes serialize
    total.energy += probe.energy;
    if (m.size() >= k) {
      matched = std::move(m);
      hi = mid;
    } else {
      lo = mid + 1;
    }
  }
  if (matched.size() < k) {
    // k exceeds the table: widest threshold matches everything.
    recsys::OpCost probe;
    matched = nns(itet_id, query, arch_.lsh_bits, &probe);
    total.latency += probe.latency;
    total.energy += probe.energy;
  }

  // Order the matched superset by true Hamming distance (the host reads the
  // per-threshold match flags; functionally equivalent, deterministic).
  util::BitVec padded(arch_.cma_cols);
  padded.copy_from(query, 0, query.size(), 0);
  std::vector<std::size_t> dist(matched.size());
  for (std::size_t i = 0; i < matched.size(); ++i) {
    const std::size_t id = matched[i];
    const auto sig =
        b.sig_cmas[cma_of(b.placement, id, b.sig_cmas.size(), arch_.cma_rows)]
            .peek_row(
                local_of(b.placement, id, b.sig_cmas.size(), arch_.cma_rows));
    dist[i] = sig.hamming(padded);
  }
  std::vector<std::size_t> order(matched.size());
  std::iota(order.begin(), order.end(), 0);
  std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t c) {
    if (dist[a] != dist[c]) return dist[a] < dist[c];
    return matched[a] < matched[c];
  });
  std::vector<std::size_t> out;
  out.reserve(std::min(k, matched.size()));
  for (std::size_t i = 0; i < order.size() && out.size() < k; ++i)
    out.push_back(matched[order[i]]);

  if (cost != nullptr) {
    cost->latency += total.latency;
    cost->energy += total.energy;
  }
  return out;
}

std::vector<std::size_t> ImarsAccelerator::topk_ctr(
    std::span<const float> scores, std::size_t k, recsys::OpCost* cost) {
  IMARS_REQUIRE(!scores.empty(), "ImarsAccelerator::topk_ctr: no scores");
  IMARS_REQUIRE(scores.size() <= arch_.cma_rows,
                "ImarsAccelerator::topk_ctr: more candidates than CTR-buffer rows");
  device::ScopedEnergyCapture capture(ledger_);

  if (!ctr_buffer_) ctr_buffer_ = std::make_unique<cma::Cma>(profile_, &ledger_);

  // Thermometer-encode each CTR into a CTR-buffer row: the higher the
  // score, the more ones, so Hamming distance to the all-ones query is
  // monotonically decreasing in the score (Sec III-C step (2e)).
  ctr_buffer_->set_mode(cma::Mode::kRam);
  Ns write_lat{0.0};
  for (std::size_t i = 0; i < scores.size(); ++i) {
    const float s = std::clamp(scores[i], 0.0f, 1.0f);
    const auto ones = static_cast<std::size_t>(
        std::lround(static_cast<double>(s) * static_cast<double>(arch_.cma_cols)));
    util::BitVec row(arch_.cma_cols);
    for (std::size_t c = 0; c < ones; ++c) row.set(c, true);
    write_lat += ctr_buffer_->write_row(i, row);  // writes serialize
  }

  // Threshold sweep: binary-search the dummy-cell reference until at least
  // k matchlines fire (worst case log2(cols) searches).
  ctr_buffer_->set_mode(cma::Mode::kTcam);
  util::BitVec all_ones(arch_.cma_cols);
  all_ones.fill(true);

  Ns search_lat{0.0};
  std::size_t lo = 0, hi = arch_.cma_cols;
  std::vector<std::size_t> matched;
  while (lo < hi) {
    const std::size_t mid = (lo + hi) / 2;
    const auto r = ctr_buffer_->search(all_ones, mid);
    search_lat += r.latency;
    // Row-valid bits at the priority encoder: the buffer persists across
    // queries, so rows at positions >= this query's candidate count are
    // stale leftovers of a previous (larger) ranking pass and must not
    // drain into the result — without the filter their matchlines alias
    // other items' scores.
    std::vector<std::size_t> live;
    for (std::size_t pos : r.matches)
      if (pos < scores.size()) live.push_back(pos);
    if (live.size() >= k) {
      matched = std::move(live);
      hi = mid;
    } else {
      lo = mid + 1;
    }
  }
  if (matched.size() < k) {
    // Fewer candidates than k: the widest threshold matched everything.
    matched.resize(scores.size());
    std::iota(matched.begin(), matched.end(), 0);
  }

  // The matched set has >= k members (or everything); order by descending
  // score, deterministic tie-break on index, and truncate to k.
  std::sort(matched.begin(), matched.end(), [&](std::size_t a, std::size_t b) {
    if (scores[a] != scores[b]) return scores[a] > scores[b];
    return a < b;
  });
  if (matched.size() > k) matched.resize(k);

  // Result ids leave on the RSC bus (2 B per id).
  Ns comm = rsc_.transfer(matched.size() * 2);
  ledger_.charge(Component::kPeripheral,
                 Pj{kSearchPeripheralPjPerActiveCma});

  // Park the buffer back in RAM mode once the ids have drained. The CTRL
  // block's schedule is predetermined (Sec III-A3), so the return switch
  // belongs to this pass — and it makes the per-query reconfiguration cost
  // a pure function of the query. Without it, set_mode's change-only charge
  // leaks the previous occupant's mode into this query's capture: the first
  // ranking pass on a fresh buffer pays one switch, every later pass two,
  // and *which* query ranks first on a shard is worker-scheduling order —
  // the one nondeterministic pJ in an otherwise bit-identical report.
  ctr_buffer_->set_mode(cma::Mode::kRam);

  const Pj captured = capture.take();
  if (cost != nullptr) {
    cost->latency += write_lat + search_lat + comm;
    cost->energy += captured;
  }
  return matched;
}

}  // namespace imars::core
