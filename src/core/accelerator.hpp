// The iMARS machine (Fig. 3(a)): CMA banks holding embedding tables,
// near-memory adder trees, the RSC bus / IBC network, and the controller.
//
// The accelerator is *functional*: embedding rows and LSH signatures really
// live in simulated CMA bit arrays, lookups really read them, the TCAM
// search really evaluates matchlines, pooling really runs through the
// in-memory accumulator and adder trees. Every operation simultaneously
// charges the Table II energy FoM to the ledger and composes latency the
// way the paper does: CMAs within a mat and mats within a bank operate in
// parallel, banks operate in parallel, accumulation and bus traffic
// serialize under the controller's fixed schedule.
#pragma once

#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "adder/adder_tree.hpp"
#include "cma/cma.hpp"
#include "core/config.hpp"
#include "core/mapping.hpp"
#include "device/ledger.hpp"
#include "device/profile.hpp"
#include "noc/bus.hpp"
#include "noc/controller.hpp"
#include "recsys/types.hpp"
#include "tensor/qtensor.hpp"
#include "util/bitvec.hpp"

namespace imars::core {

/// One lookup+pool request against a loaded table.
struct LookupRequest {
  std::size_t table_id = 0;
  std::vector<std::size_t> indices;
  bool mean_pool = false;  ///< divide by count in the digital periphery
};

/// Result of a pooled lookup: int32 lanes (pre-division) + the table's
/// quantization scale. value[i] = scale * lanes[i] (/ count if mean).
struct PooledResult {
  std::vector<std::int32_t> lanes;
  float scale = 1.0f;
  std::size_t count = 0;
  bool mean_pool = false;

  /// Dequantized float view.
  tensor::Vector dequantized() const;
};

/// Timing mode for ET operations (Sec IV-C1 uses the worst case).
enum class TimingMode {
  kActualPlacement,    ///< serialize only true same-CMA collisions
  kWorstCaseSameArray, ///< paper's model: all of a table's lookups collide
};

/// The iMARS accelerator fabric.
class ImarsAccelerator {
 public:
  ImarsAccelerator(const ArchConfig& arch,
                   const device::DeviceProfile& profile);

  const ArchConfig& arch() const noexcept { return arch_; }

  /// The accelerator's own stable copy of the device profile (safe to pass
  /// to components that keep references, e.g. xbar::XbarMlp).
  const device::DeviceProfile& profile() const noexcept { return profile_; }
  device::EnergyLedger& ledger() noexcept { return ledger_; }
  const device::EnergyLedger& ledger() const noexcept { return ledger_; }

  /// Clears accumulated energy (e.g. after one-time table loading).
  void reset_energy() { ledger_.clear(); }

  // --- Table loading (one-time) ----------------------------------------

  /// Loads a UIET; returns its table id. Rows are written CMA by CMA.
  std::size_t load_uiet(const std::string& name, const tensor::QMatrix& table);

  /// Loads the ItET with per-entry LSH signatures (paired signature CMAs).
  std::size_t load_itet(const std::string& name, const tensor::QMatrix& table,
                        std::span<const util::BitVec> signatures);

  std::size_t table_count() const noexcept { return banks_.size(); }
  std::size_t table_rows(std::size_t table_id) const;

  /// Active-resource census (functional-machine version of Table I).
  std::size_t active_banks() const noexcept { return banks_.size(); }
  std::size_t active_mats() const;
  std::size_t active_cmas() const;

  // --- ET operations -----------------------------------------------------

  /// Executes several table lookups in parallel (one bank per table).
  /// Latency: max over banks + serialized RSC transfers; adds into `cost`
  /// when non-null.
  std::vector<PooledResult> lookup_pooled(std::span<const LookupRequest> reqs,
                                          TimingMode mode,
                                          recsys::OpCost* cost);

  /// Reads one embedding row (RAM mode; used by the ranking stage item
  /// fetch). Adds into `cost` when non-null.
  PooledResult read_row(std::size_t table_id, std::size_t row,
                        recsys::OpCost* cost);

  /// Fixed-radius NNS over the ItET signature CMAs (TCAM threshold match,
  /// all arrays in parallel). Returns matching entry ids (ascending).
  std::vector<std::size_t> nns(std::size_t itet_id, const util::BitVec& query,
                               std::size_t radius, recsys::OpCost* cost);

  /// Exact top-k NNS: sweeps the TCAM threshold (binary search of the
  /// dummy-cell reference) until at least k rows match, then returns the k
  /// nearest by Hamming distance (ties: lower id). Costs up to
  /// log2(lsh_bits) full searches — the op-count reduction Sec III-B cites
  /// as the reason the filtering stage prefers the single-search
  /// fixed-radius mode.
  std::vector<std::size_t> nns_topk(std::size_t itet_id,
                                    const util::BitVec& query, std::size_t k,
                                    recsys::OpCost* cost);

  /// Top-k over CTR scores using the CTR-buffer CMA: scores are written as
  /// int8 rows and selected with threshold matches against an all-ones
  /// query, sweeping the dummy-cell reference (binary search, worst case
  /// log2(levels) searches). Returns candidate positions sorted by
  /// descending score.
  std::vector<std::size_t> topk_ctr(std::span<const float> scores,
                                    std::size_t k, recsys::OpCost* cost);

 private:
  struct BankState {
    std::string name;
    float scale = 1.0f;
    std::size_t rows = 0;
    bool has_sigs = false;
    RowPlacement placement = RowPlacement::kSequential;
    std::vector<cma::Cma> data_cmas;
    std::vector<cma::Cma> sig_cmas;
  };

  BankState& bank(std::size_t table_id);
  const BankState& bank(std::size_t table_id) const;

  /// Lookup+pool within one bank; returns pooled lanes and the bank-local
  /// latency (parallel mats, serialized accumulation).
  PooledResult bank_lookup(BankState& b, const LookupRequest& req,
                           TimingMode mode, device::Ns* latency);

  ArchConfig arch_;
  // Owned copy: callers may pass a temporary profile (value semantics keep
  // the internal component pointers valid for the accelerator's lifetime).
  device::DeviceProfile profile_;
  device::EnergyLedger ledger_;
  EtMapping mapping_;
  noc::RscBus rsc_;
  noc::IbcNetwork ibc_;
  noc::Controller controller_;
  adder::IntraMatAdderTree mat_tree_;
  adder::IntraBankAdderTree bank_tree_;
  std::vector<BankState> banks_;
  std::unique_ptr<cma::Cma> ctr_buffer_;
};

}  // namespace imars::core
