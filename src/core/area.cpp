#include "core/area.hpp"

namespace imars::core {

AreaBreakdown chip_area(const ArchConfig& arch,
                        const device::DeviceProfile& profile,
                        std::size_t xbar_tiles) {
  AreaBreakdown a;
  a.cmas = profile.cma_area * static_cast<double>(arch.total_cmas());
  a.crossbars = profile.xbar_area * static_cast<double>(xbar_tiles);
  // One intra-mat tree per mat; its area grows with the fan-in C (wider
  // first tree level), normalized to the C=32 synthesis point.
  const double fanin_scale = static_cast<double>(arch.cmas_per_mat) / 32.0;
  a.mat_trees = profile.mat_tree_area * fanin_scale *
                static_cast<double>(arch.banks * arch.mats_per_bank);
  // One intra-bank tree per bank; area grows with the intra-bank fan-in,
  // normalized to the fan-in-4 synthesis point.
  const double bank_scale = static_cast<double>(arch.bank_fan_in) / 4.0;
  a.bank_trees = profile.bank_tree_area * bank_scale *
                 static_cast<double>(arch.banks);
  return a;
}

}  // namespace imars::core
