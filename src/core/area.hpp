// Relative-area model for the dimensioning ablations (Sec III-A1 discusses
// how B, M, C trade area against capacity and adder-tree delay).
//
// Units are relative to one 256x256 FeFET CMA (= 1.0); the DeviceProfile
// carries the per-component proxies.
#pragma once

#include <cstddef>

#include "core/config.hpp"
#include "device/profile.hpp"

namespace imars::core {

/// Per-component area in CMA-equivalents.
struct AreaBreakdown {
  double cmas = 0.0;
  double crossbars = 0.0;
  double mat_trees = 0.0;
  double bank_trees = 0.0;

  double total() const { return cmas + crossbars + mat_trees + bank_trees; }
};

/// Area of a fully populated iMARS fabric plus `xbar_tiles` crossbar tiles.
AreaBreakdown chip_area(const ArchConfig& arch,
                        const device::DeviceProfile& profile,
                        std::size_t xbar_tiles);

}  // namespace imars::core
