#include "core/backend.hpp"

#include <algorithm>

#include "util/error.hpp"

namespace imars::core {

using device::Ns;
using device::Pj;
using recsys::OpCost;
using recsys::OpKind;
using recsys::ScoredItem;
using recsys::StageStats;
using recsys::UserContext;

ImarsBackend::ImarsBackend(const recsys::YoutubeDnn& model,
                           const ArchConfig& arch,
                           const device::DeviceProfile& profile,
                           const ImarsBackendConfig& cfg,
                           std::span<const UserContext> calibration)
    : model_(&model),
      cfg_(cfg),
      acc_(std::make_unique<ImarsAccelerator>(arch, profile)),
      lsh_(model.config().emb_dim, arch.lsh_bits, cfg.lsh_seed) {
  IMARS_REQUIRE(!calibration.empty(),
                "ImarsBackend: calibration contexts required");
  IMARS_REQUIRE(cfg_.max_candidates <= arch.cma_rows,
                "ImarsBackend: candidate cap exceeds the CTR buffer");

  // (Load-time) quantize and install every UIET.
  const auto& schema = model.schema();
  uiet_ids_.resize(schema.user_item.size());
  for (std::size_t f = 0; f < schema.user_item.size(); ++f) {
    uiet_ids_[f] =
        acc_->load_uiet(schema.user_item[f].name, model.uiet(f).quantized());
  }

  // ItET rows + LSH signatures of the *quantized* embeddings (the stored
  // int8 values are what the planes see; matches CpuBackend's LSH variant).
  const tensor::QMatrix items_q = model.item_table().quantized();
  const tensor::Matrix items_deq = items_q.dequantize();
  std::vector<util::BitVec> sigs;
  sigs.reserve(items_deq.rows());
  for (std::size_t r = 0; r < items_deq.rows(); ++r)
    sigs.push_back(lsh_.encode(items_deq.row(r)));
  itet_id_ = acc_->load_itet("ItET", items_q, sigs);

  // Crossbar DNN banks, calibrated on representative inputs.
  std::vector<tensor::Vector> filter_calib;
  std::vector<tensor::Vector> rank_calib;
  filter_calib.reserve(calibration.size());
  rank_calib.reserve(calibration.size());
  for (const auto& ctx : calibration) {
    filter_calib.push_back(model.filter_input(ctx));
    const std::size_t item =
        ctx.history.empty() ? 0 : ctx.history.front();
    rank_calib.push_back(model.rank_input(ctx, item));
  }
  // Use the accelerator's stable profile copy: the caller's `profile`
  // reference may be a temporary.
  filter_dnn_ = std::make_unique<xbar::XbarMlp>(acc_->profile(),
                                                &acc_->ledger(),
                                                model.filter_mlp(),
                                                filter_calib);
  rank_dnn_ = std::make_unique<xbar::XbarMlp>(acc_->profile(), &acc_->ledger(),
                                              model.rank_mlp(), rank_calib);

  // Loading and programming are one-time costs; query accounting starts
  // clean.
  acc_->reset_energy();
}

util::BitVec ImarsBackend::signature_of(
    std::span<const float> embedding) const {
  return lsh_.encode(embedding);
}

tensor::Vector ImarsBackend::user_embedding_hw(const UserContext& user,
                                               StageStats* stats) {
  // (1a) Sparse features -> ET lookups and pooling.
  std::vector<LookupRequest> reqs;
  for (auto f : model_->filter_features())
    reqs.push_back({uiet_ids_[f], user.sparse[f], /*mean_pool=*/true});
  if (!user.history.empty())
    reqs.push_back({itet_id_, user.history, /*mean_pool=*/true});

  OpCost et_cost;
  const auto pooled = acc_->lookup_pooled(reqs, cfg_.timing, &et_cost);
  if (stats != nullptr) stats->at(OpKind::kEtLookup) += et_cost;

  // Assemble the tower input exactly as the float model does.
  tensor::Vector in;
  in.reserve(model_->filter_input_dim());
  for (const auto& p : pooled) {
    const auto v = p.dequantized();
    in.insert(in.end(), v.begin(), v.end());
  }
  if (user.history.empty()) {
    // No history: the history segment is all-zero.
    in.insert(in.end(), model_->config().emb_dim, 0.0f);
  }
  in.insert(in.end(), user.dense.begin(), user.dense.end());

  // (1b/1c) Filtering DNN stack on crossbars. Captured, not a total()
  // delta: the measured energy must not depend on ledger history (see
  // EnergyLedger::begin_capture).
  device::ScopedEnergyCapture capture(acc_->ledger());
  Ns dnn_lat{0.0};
  auto u = filter_dnn_->infer(in, &dnn_lat);
  const Pj dnn_pj = capture.take();
  if (stats != nullptr) stats->at(OpKind::kDnn) += OpCost{dnn_lat, dnn_pj};
  return u;
}

std::vector<std::size_t> ImarsBackend::filter(const UserContext& user,
                                              StageStats* stats) {
  const tensor::Vector u = user_embedding_hw(user, stats);

  // (1d) Fixed-radius NNS via TCAM threshold match over the signature CMAs.
  const util::BitVec query = lsh_.encode(u);
  OpCost nns_cost;
  auto candidates = acc_->nns(itet_id_, query, cfg_.nns_radius, &nns_cost);
  if (stats != nullptr) stats->at(OpKind::kNns) += nns_cost;

  // (1d*) Item buffer holds at most max_candidates entries; the priority
  // encoder drains matches in ascending row order, so the buffer keeps the
  // first max_candidates of them.
  if (candidates.size() > cfg_.max_candidates)
    candidates.resize(cfg_.max_candidates);
  return candidates;
}

std::vector<ScoredItem> ImarsBackend::rank(
    const UserContext& user, std::span<const std::size_t> candidates,
    std::size_t k, StageStats* stats) {
  if (candidates.empty()) return {};

  // (2b) Per candidate, the ranking embeddings are retrieved from the rank
  // UIETs and the ItET (Sec III-C; Table III's ranking ET lookup is "for
  // one item input", i.e. the full lookup repeats for every candidate).
  std::vector<LookupRequest> reqs;
  for (auto f : model_->rank_features())
    reqs.push_back({uiet_ids_[f], user.sparse[f], /*mean_pool=*/true});
  if (!user.history.empty())
    reqs.push_back({itet_id_, user.history, /*mean_pool=*/true});

  const std::size_t n_rank_features = model_->rank_features().size();

  // (2b..2d) Per candidate: ET lookups + item-embedding fetch + crossbar
  // ranking DNN; candidates serialize through the fabric.
  std::vector<float> scores;
  scores.reserve(candidates.size());
  OpCost et_cost;
  OpCost rank_dnn_cost;
  for (auto item : candidates) {
    const auto pooled = acc_->lookup_pooled(reqs, cfg_.timing, &et_cost);
    std::vector<tensor::Vector> feature_segments;
    feature_segments.reserve(n_rank_features);
    for (std::size_t i = 0; i < n_rank_features; ++i)
      feature_segments.push_back(pooled[i].dequantized());
    tensor::Vector history_segment;
    if (!user.history.empty()) {
      history_segment = pooled.back().dequantized();
    } else {
      history_segment.assign(model_->config().emb_dim, 0.0f);
    }

    OpCost fetch;
    const auto item_row = acc_->read_row(itet_id_, item, &fetch);
    et_cost += fetch;

    tensor::Vector in;
    in.reserve(model_->rank_input_dim());
    for (const auto& seg : feature_segments)
      in.insert(in.end(), seg.begin(), seg.end());
    const auto item_v = item_row.dequantized();
    in.insert(in.end(), item_v.begin(), item_v.end());
    in.insert(in.end(), history_segment.begin(), history_segment.end());
    in.insert(in.end(), user.dense.begin(), user.dense.end());

    device::ScopedEnergyCapture capture(acc_->ledger());
    Ns lat{0.0};
    const auto out = rank_dnn_->infer(in, &lat);
    rank_dnn_cost += OpCost{lat, capture.take()};
    scores.push_back(out[0]);
  }
  if (stats != nullptr) {
    stats->at(OpKind::kEtLookup) += et_cost;
    stats->at(OpKind::kDnn) += rank_dnn_cost;
  }

  // (2e) Top-k through the CTR buffer.
  OpCost topk_cost;
  const auto top_pos = acc_->topk_ctr(scores, k, &topk_cost);
  if (stats != nullptr) stats->at(OpKind::kTopK) += topk_cost;

  std::vector<ScoredItem> out;
  out.reserve(top_pos.size());
  for (auto pos : top_pos) out.push_back({candidates[pos], scores[pos]});
  return out;
}

ImarsCtrBackend::ImarsCtrBackend(const recsys::Dlrm& model,
                                 const ArchConfig& arch,
                                 const device::DeviceProfile& profile,
                                 TimingMode timing,
                                 std::span<const data::CriteoSample> calibration)
    : model_(&model),
      timing_(timing),
      acc_(std::make_unique<ImarsAccelerator>(arch, profile)) {
  IMARS_REQUIRE(!calibration.empty(),
                "ImarsCtrBackend: calibration samples required");

  const auto& schema = model.schema();
  table_ids_.resize(schema.user_item.size());
  for (std::size_t f = 0; f < schema.user_item.size(); ++f) {
    table_ids_[f] =
        acc_->load_uiet(schema.user_item[f].name, model.table(f).quantized());
  }

  std::vector<tensor::Vector> bottom_calib;
  std::vector<tensor::Vector> top_calib;
  bottom_calib.reserve(calibration.size());
  top_calib.reserve(calibration.size());
  for (const auto& s : calibration) {
    bottom_calib.push_back(s.dense);
    const tensor::Vector b = model.bottom_mlp().infer(s.dense);
    std::vector<tensor::Vector> embs;
    embs.reserve(schema.user_item.size());
    for (std::size_t f = 0; f < schema.user_item.size(); ++f) {
      const auto r = model.table(f).row(s.sparse[f]);
      embs.emplace_back(r.begin(), r.end());
    }
    top_calib.push_back(model.interact(embs, b));
  }
  bottom_dnn_ = std::make_unique<xbar::XbarMlp>(acc_->profile(),
                                                &acc_->ledger(),
                                                model.bottom_mlp(),
                                                bottom_calib);
  top_dnn_ = std::make_unique<xbar::XbarMlp>(acc_->profile(), &acc_->ledger(),
                                             model.top_mlp(), top_calib);
  acc_->reset_energy();
}

std::vector<tensor::Vector> ImarsCtrBackend::gather_tower(
    std::span<const std::size_t> sparse, StageStats* stats) {
  IMARS_REQUIRE(sparse.size() == table_ids_.size(),
                "ImarsCtrBackend: sparse feature count mismatch");
  // 26 one-hot lookups, one bank per feature, all banks in parallel.
  std::vector<LookupRequest> reqs;
  reqs.reserve(sparse.size());
  for (std::size_t f = 0; f < sparse.size(); ++f)
    reqs.push_back({table_ids_[f], {sparse[f]}, /*mean_pool=*/false});
  OpCost et_cost;
  const auto pooled = acc_->lookup_pooled(reqs, timing_, &et_cost);
  if (stats != nullptr) stats->at(OpKind::kEtLookup) += et_cost;
  std::vector<tensor::Vector> embs;
  embs.reserve(pooled.size());
  for (const auto& p : pooled) embs.push_back(p.dequantized());
  return embs;
}

tensor::Vector ImarsCtrBackend::dense_tower(const tensor::Vector& dense,
                                            StageStats* stats) {
  // Bottom MLP on crossbars.
  device::ScopedEnergyCapture capture(acc_->ledger());
  Ns lat{0.0};
  tensor::Vector b = bottom_dnn_->infer(dense, &lat);
  const Pj dnn_pj = capture.take();
  if (stats != nullptr) stats->at(OpKind::kDnn) += OpCost{lat, dnn_pj};
  return b;
}

float ImarsCtrBackend::interact_top(std::span<const tensor::Vector> embeddings,
                                    const tensor::Vector& bottom,
                                    StageStats* stats) {
  // Feature interaction in the digital periphery: 27 vectors cross the RSC
  // bus; the pairwise dots are computed beside the crossbar bank.
  const tensor::Vector z = model_->interact(embeddings, bottom);

  // Top MLP on crossbars.
  device::ScopedEnergyCapture capture(acc_->ledger());
  Ns lat{0.0};
  const tensor::Vector out = top_dnn_->infer(z, &lat);
  const Pj dnn_pj = capture.take();
  if (stats != nullptr) stats->at(OpKind::kDnn) += OpCost{lat, dnn_pj};
  return out[0];
}

float ImarsCtrBackend::score(const tensor::Vector& dense,
                             std::span<const std::size_t> sparse,
                             StageStats* stats) {
  // Accumulate into a zeroed local and merge once, so callers summing
  // stats across many calls see the same rounding as the pre-staged fused
  // implementation (one ET term and one bottom+top DNN term per call).
  StageStats local;
  const auto embs = gather_tower(sparse, &local);
  const tensor::Vector b = dense_tower(dense, &local);
  const float out = interact_top(embs, b, &local);
  if (stats != nullptr) stats->merge(local);
  return out;
}

}  // namespace imars::core
