// iMARS execution backends: the paper's computation flow (Sec III-C, labels
// (1a)-(2e) in Fig. 3) implemented on the functional accelerator.
//
// Filtering: (1a) sparse features -> UIET/ItET lookups + pooling (in-memory
// adds, intra-mat/intra-bank trees); (1b/1c) pooled features + dense
// features -> filtering DNN on crossbars -> user embedding; (1d) TCAM
// fixed-radius NNS over the ItET signature arrays -> candidate item ids
// into the item buffer.
//
// Ranking: (2a/2b) per candidate, item embedding fetch + rank UIET lookups;
// (2c/2d) ranking DNN on crossbars -> CTR into the CTR buffer; (2e) top-k by
// threshold-matching an all-ones query against the CTR buffer.
#pragma once

#include <memory>
#include <vector>

#include "core/accelerator.hpp"
#include "core/config.hpp"
#include "lsh/lsh.hpp"
#include "recsys/dlrm.hpp"
#include "recsys/types.hpp"
#include "recsys/youtube_dnn.hpp"
#include "xbar/xbar_mlp.hpp"

namespace imars::core {

/// Configuration of the iMARS backend.
struct ImarsBackendConfig {
  std::size_t nns_radius = 96;    ///< fixed-radius Hamming threshold
  TimingMode timing = TimingMode::kActualPlacement;
  std::uint64_t lsh_seed = 2022;  ///< must match the CPU LSH variant for parity
  /// Candidate cap = CTR-buffer rows (one CMA): the item buffer holds at
  /// most this many candidates per query.
  std::size_t max_candidates = 256;
};

/// Two-stage (YouTubeDNN) pipeline on iMARS.
class ImarsBackend : public recsys::FilterRankBackend {
 public:
  /// Quantizes the trained model, loads every ET into CMA banks, programs
  /// the two crossbar banks. `calibration` supplies representative user
  /// contexts for activation-scale calibration of the crossbar MLPs.
  ImarsBackend(const recsys::YoutubeDnn& model, const ArchConfig& arch,
               const device::DeviceProfile& profile,
               const ImarsBackendConfig& cfg,
               std::span<const recsys::UserContext> calibration);

  std::string_view name() const override { return "imars-fefet"; }

  std::vector<std::size_t> filter(const recsys::UserContext& user,
                                  recsys::StageStats* stats) override;

  std::vector<recsys::ScoredItem> rank(
      const recsys::UserContext& user,
      std::span<const std::size_t> candidates, std::size_t k,
      recsys::StageStats* stats) override;

  /// The machine (for resource census and energy inspection).
  ImarsAccelerator& accelerator() noexcept { return *acc_; }
  const ImarsAccelerator& accelerator() const noexcept { return *acc_; }

  /// Hardware user embedding (crossbar tower output) — exposed for parity
  /// tests against the float tower.
  tensor::Vector user_embedding_hw(const recsys::UserContext& user,
                                   recsys::StageStats* stats);

  /// Query signature for an embedding (same LSH planes as the stored ItET
  /// signatures).
  util::BitVec signature_of(std::span<const float> embedding) const;

  const ImarsBackendConfig& config() const noexcept { return cfg_; }

 private:
  const recsys::YoutubeDnn* model_;
  ImarsBackendConfig cfg_;
  std::unique_ptr<ImarsAccelerator> acc_;
  lsh::RandomHyperplaneLsh lsh_;
  std::vector<std::size_t> uiet_ids_;  // schema feature -> table id
  std::size_t itet_id_ = 0;
  std::unique_ptr<xbar::XbarMlp> filter_dnn_;
  std::unique_ptr<xbar::XbarMlp> rank_dnn_;
};

/// DLRM (ranking-only) pipeline on iMARS.
class ImarsCtrBackend : public recsys::CtrBackend {
 public:
  /// `calibration` supplies representative (dense, sparse) samples.
  ImarsCtrBackend(const recsys::Dlrm& model, const ArchConfig& arch,
                  const device::DeviceProfile& profile, TimingMode timing,
                  std::span<const data::CriteoSample> calibration);

  std::string_view name() const override { return "imars-fefet"; }

  /// Fused scoring: gather_tower + dense_tower + interact_top (identical
  /// costs and result to composing the staged API below).
  float score(const tensor::Vector& dense,
              std::span<const std::size_t> sparse,
              recsys::StageStats* stats) override;

  // Staged tower API (stage-DAG serving): the 26 one-hot gathers run on
  // the CMA banks while the bottom MLP runs on crossbars — disjoint
  // hardware, so a serving graph may overlap them.
  bool supports_towers() const override { return true; }
  std::vector<tensor::Vector> gather_tower(
      std::span<const std::size_t> sparse,
      recsys::StageStats* stats) override;
  tensor::Vector dense_tower(const tensor::Vector& dense,
                             recsys::StageStats* stats) override;
  float interact_top(std::span<const tensor::Vector> embeddings,
                     const tensor::Vector& bottom,
                     recsys::StageStats* stats) override;

  ImarsAccelerator& accelerator() noexcept { return *acc_; }
  const ImarsAccelerator& accelerator() const noexcept { return *acc_; }

 private:
  const recsys::Dlrm* model_;
  TimingMode timing_;
  std::unique_ptr<ImarsAccelerator> acc_;
  std::vector<std::size_t> table_ids_;
  std::unique_ptr<xbar::XbarMlp> bottom_dnn_;
  std::unique_ptr<xbar::XbarMlp> top_dnn_;
};

}  // namespace imars::core
