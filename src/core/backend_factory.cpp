#include "core/backend_factory.hpp"

namespace imars::core {

BackendFactory imars_backend_factory(
    const recsys::YoutubeDnn& model, const ArchConfig& arch,
    const device::DeviceProfile& profile, const ImarsBackendConfig& cfg,
    std::vector<recsys::UserContext> calibration) {
  const recsys::YoutubeDnn* model_ptr = &model;
  return [model_ptr, arch, profile, cfg,
          calib = std::move(calibration)]() {
    return std::make_unique<ImarsBackend>(*model_ptr, arch, profile, cfg,
                                          calib);
  };
}

BackendFactory cpu_backend_factory(const recsys::YoutubeDnn& model,
                                   const baseline::CpuBackendConfig& cfg) {
  const recsys::YoutubeDnn* model_ptr = &model;
  return [model_ptr, cfg]() {
    return std::make_unique<baseline::CpuBackend>(*model_ptr, cfg);
  };
}

}  // namespace imars::core
