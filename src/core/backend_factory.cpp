#include "core/backend_factory.hpp"

namespace imars::core {

ShardedBackendFactory per_slot(BackendFactory factory) {
  return [factory = std::move(factory)](const ShardSlot&) {
    return factory();
  };
}

BackendFactory imars_backend_factory(
    const recsys::YoutubeDnn& model, const ArchConfig& arch,
    const device::DeviceProfile& profile, const ImarsBackendConfig& cfg,
    std::vector<recsys::UserContext> calibration) {
  const recsys::YoutubeDnn* model_ptr = &model;
  return [model_ptr, arch, profile, cfg,
          calib = std::move(calibration)]() {
    return std::make_unique<ImarsBackend>(*model_ptr, arch, profile, cfg,
                                          calib);
  };
}

ShardedBackendFactory imars_sharded_backend_factory(
    const recsys::YoutubeDnn& model, const ArchConfig& arch,
    const ImarsBackendConfig& cfg,
    std::vector<recsys::UserContext> calibration) {
  const recsys::YoutubeDnn* model_ptr = &model;
  return [model_ptr, arch, cfg,
          calib = std::move(calibration)](const ShardSlot& slot) {
    return std::make_unique<ImarsBackend>(*model_ptr, arch, slot.profile,
                                          cfg, calib);
  };
}

CtrBackendFactory imars_ctr_backend_factory(
    const recsys::Dlrm& model, const ArchConfig& arch, TimingMode timing,
    std::vector<data::CriteoSample> calibration) {
  const recsys::Dlrm* model_ptr = &model;
  return [model_ptr, arch, timing,
          calib = std::move(calibration)](const ShardSlot& slot) {
    return std::make_unique<ImarsCtrBackend>(*model_ptr, arch, slot.profile,
                                             timing, calib);
  };
}

BackendFactory cpu_backend_factory(const recsys::YoutubeDnn& model,
                                   const baseline::CpuBackendConfig& cfg) {
  const recsys::YoutubeDnn* model_ptr = &model;
  return [model_ptr, cfg]() {
    return std::make_unique<baseline::CpuBackend>(*model_ptr, cfg);
  };
}

}  // namespace imars::core
