// Backend factories: stamp out one backend replica per accelerator shard.
//
// The serving runtime (src/serve/) spins up N independent accelerator
// instances over the same trained model. A factory captures everything
// needed to build one replica so the serving fabric can clone backends
// without knowing their concrete type. Factories come in two flavours:
//
//   * BackendFactory — uniform replicas (PR 1's shape): every shard gets an
//     identical backend.
//   * ShardedBackendFactory / CtrBackendFactory — per-slot replicas: the
//     factory sees the ShardSlot (index + device profile) it is building
//     for, enabling heterogeneous fabrics that mix technologies (e.g.
//     FeFET-45 next to ReRAM-45 shards) behind one serving runtime.
//
// Replicas must be *functionally* identical (same model, same quantization)
// regardless of slot so that sharded execution reproduces single-backend
// results; the slot's profile may only change hardware timing/energy.
#pragma once

#include <functional>
#include <future>
#include <memory>
#include <span>
#include <vector>

#include "baseline/cpu_backend.hpp"
#include "core/backend.hpp"
#include "data/criteo.hpp"
#include "recsys/dlrm.hpp"
#include "recsys/types.hpp"
#include "util/error.hpp"

namespace imars::core {

/// Builds one independent backend replica per call (uniform fabrics).
using BackendFactory =
    std::function<std::unique_ptr<recsys::FilterRankBackend>()>;

/// One shard's identity: its index and the device technology it runs on.
struct ShardSlot {
  std::size_t index = 0;
  device::DeviceProfile profile;
};

/// Builds the replica for one specific shard slot (heterogeneous fabrics).
using ShardedBackendFactory =
    std::function<std::unique_ptr<recsys::FilterRankBackend>(
        const ShardSlot&)>;

/// Builds the CTR (DLRM/Criteo) replica for one shard slot.
using CtrBackendFactory =
    std::function<std::unique_ptr<recsys::CtrBackend>(const ShardSlot&)>;

/// Builds one replica per profile slot in parallel (construction — table
/// loading, crossbar programming — is the expensive part and parallelizes;
/// the futures' get() orders construction before any worker-thread use).
template <class Backend>
std::vector<std::unique_ptr<Backend>> build_replicas(
    const std::function<std::unique_ptr<Backend>(const ShardSlot&)>& factory,
    std::span<const device::DeviceProfile> profiles) {
  std::vector<std::future<std::unique_ptr<Backend>>> futs;
  futs.reserve(profiles.size());
  for (std::size_t s = 0; s < profiles.size(); ++s) {
    futs.push_back(std::async(std::launch::async, [&factory, &profiles, s] {
      return factory(ShardSlot{s, profiles[s]});
    }));
  }
  std::vector<std::unique_ptr<Backend>> replicas;
  replicas.reserve(futs.size());
  for (auto& f : futs) replicas.push_back(f.get());
  for (const auto& r : replicas)
    IMARS_REQUIRE(r != nullptr, "build_replicas: factory returned null");
  return replicas;
}

/// Lifts a uniform factory into the per-slot shape (the slot is ignored).
ShardedBackendFactory per_slot(BackendFactory factory);

/// Factory for iMARS replicas: each call quantizes/loads the model into a
/// fresh functional accelerator. `model` must outlive the factory and every
/// backend it builds; `calibration` is copied into the factory.
BackendFactory imars_backend_factory(
    const recsys::YoutubeDnn& model, const ArchConfig& arch,
    const device::DeviceProfile& profile, const ImarsBackendConfig& cfg,
    std::vector<recsys::UserContext> calibration);

/// Per-slot iMARS factory: the replica is built on the slot's own device
/// profile (mixed-technology fabrics). `model` must outlive the factory.
ShardedBackendFactory imars_sharded_backend_factory(
    const recsys::YoutubeDnn& model, const ArchConfig& arch,
    const ImarsBackendConfig& cfg,
    std::vector<recsys::UserContext> calibration);

/// Per-slot iMARS CTR factory (DLRM over Criteo): one ImarsCtrBackend per
/// shard, built on the slot's device profile. `model` must outlive the
/// factory; `calibration` is copied into the factory.
CtrBackendFactory imars_ctr_backend_factory(
    const recsys::Dlrm& model, const ArchConfig& arch, TimingMode timing,
    std::vector<data::CriteoSample> calibration);

/// Factory for CPU-reference replicas (exact software oracle; used by the
/// shard-merge correctness tests). `model` must outlive the factory.
BackendFactory cpu_backend_factory(const recsys::YoutubeDnn& model,
                                   const baseline::CpuBackendConfig& cfg);

}  // namespace imars::core
