// Backend factories: replicate a FilterRankBackend per accelerator shard.
//
// The serving runtime (src/serve/) spins up N independent accelerator
// instances over the same trained model — a replicated filter stage and a
// sharded rank stage. A BackendFactory captures everything needed to build
// one replica so ShardRouter can clone backends without knowing their
// concrete type.
#pragma once

#include <functional>
#include <memory>
#include <vector>

#include "baseline/cpu_backend.hpp"
#include "core/backend.hpp"
#include "recsys/types.hpp"

namespace imars::core {

/// Builds one independent backend replica per call. Replicas must be
/// functionally identical (same model, same configuration) so that sharded
/// execution reproduces single-backend results.
using BackendFactory =
    std::function<std::unique_ptr<recsys::FilterRankBackend>()>;

/// Factory for iMARS replicas: each call quantizes/loads the model into a
/// fresh functional accelerator. `model` must outlive the factory and every
/// backend it builds; `calibration` is copied into the factory.
BackendFactory imars_backend_factory(
    const recsys::YoutubeDnn& model, const ArchConfig& arch,
    const device::DeviceProfile& profile, const ImarsBackendConfig& cfg,
    std::vector<recsys::UserContext> calibration);

/// Factory for CPU-reference replicas (exact software oracle; used by the
/// shard-merge correctness tests). `model` must outlive the factory.
BackendFactory cpu_backend_factory(const recsys::YoutubeDnn& model,
                                   const baseline::CpuBackendConfig& cfg);

}  // namespace imars::core
