// Calibration constants of the iMARS system model.
//
// The paper composes its system-level numbers (Table III, Sec IV-C) from the
// Table II array FoM plus assumptions it states but does not fully quantify.
// The two constants below close that gap; each carries its derivation.
// EXPERIMENTS.md reports paper-vs-measured for every number that depends on
// them.
#pragma once

#include <cstddef>

namespace imars::core {

/// Pooled lookups per embedding table assumed by the paper's worst case
/// ("we consider the worst case that all lookups for one ET happen in the
/// same array. Multiple lookups in one array requires multiple read, write
/// and in-memory add operations", Sec IV-C1).
///
/// Derivation: with the Table II FoM and the serialized sequence
///   read + (L-1) x (read + write + add) + intra-mat + IBC + intra-bank
///   + RSC serialization,
/// L = 8 reproduces all three Table III iMARS latencies simultaneously:
///   MovieLens filtering 0.20us (paper 0.21), ranking 0.21us (paper 0.21),
///   Criteo ranking 0.25us (paper 0.24).
inline constexpr std::size_t kWorstCaseLookupsPerTable = 8;

/// Peripheral energy charged per *active* CMA per ET operation (word-line /
/// search-line drivers, decoders, sense-amp bias of arrays that belong to
/// the activated table), in picojoules.
///
/// The Table II macro numbers cover the accessed array only; the paper's
/// system energies scale with the number of active arrays (0.40uJ for 54-74
/// active CMAs on MovieLens vs 6.88uJ for 2860 on Criteo). Solving the
/// Criteo point for the per-array overhead gives ~2.4 nJ per array per ET
/// operation; MovieLens then lands within ~2x (see EXPERIMENTS.md).
inline constexpr double kPeripheralPjPerActiveCmaPerOp = 2400.0;

/// Peripheral energy charged per *searched* signature CMA per NNS operation
/// (search-line drivers + CAM sense amps + dummy-cell reference), in
/// picojoules. Calibrated to the Sec IV-C2 energy ratio (2.8e4x vs the GPU
/// LSH search's 150 uJ over the 16 signature arrays of the MovieLens ItET):
/// 150 uJ / 2.8e4 / 16 arrays ~= 335 pJ per array.
inline constexpr double kSearchPeripheralPjPerActiveCma = 335.0;

/// Default candidate count per query used in the end-to-end evaluation.
/// Derived from the paper's GPU throughput: 1311 QPS = 762 us/query =
/// filtering (17.5 us) + C x ranking-per-candidate (36.7 us) + top-k (5 us)
/// -> C ~= 20.
inline constexpr std::size_t kEndToEndCandidates = 20;

}  // namespace imars::core
