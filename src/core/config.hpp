// iMARS architecture parameters (Sec III-A, IV).
#pragma once

#include <cstddef>
#include <cstdint>

namespace imars::core {

/// How embedding-table rows map onto the CMAs of a bank.
enum class RowPlacement : std::uint8_t {
  /// Row r -> CMA r/R, local row r%R (the paper's layout: consecutive rows
  /// fill one array before the next one starts).
  kSequential,
  /// Row r -> CMA r%n, local row r/n (extension: interleaving spreads
  /// multi-hot lookups across arrays, trading the paper's simple layout for
  /// fewer same-array collisions in the actual-placement timing mode).
  kStriped,
};

/// Dimensioning of the iMARS fabric. Defaults follow the paper's evaluation
/// configuration, sized for the largest workload (Criteo Kaggle, Sec IV):
/// B=32 banks (26 sparse features + headroom), M=4 mats per bank, C=32 CMAs
/// per mat, 256x256 CMAs, intra-bank adder fan-in 4.
struct ArchConfig {
  std::size_t banks = 32;          ///< B
  std::size_t mats_per_bank = 4;   ///< M
  std::size_t cmas_per_mat = 32;   ///< C
  std::size_t cma_rows = 256;      ///< R (rows per CMA)
  std::size_t cma_cols = 256;      ///< one 32-d int8 embedding per row
  std::size_t bank_fan_in = 4;     ///< intra-bank adder tree fan-in
  std::size_t lsh_bits = 256;      ///< ItET signature length (Sec III-B)
  std::size_t emb_dim = 32;        ///< int8 lanes per row
  RowPlacement placement = RowPlacement::kSequential;  ///< paper default

  /// Capacity of one bank in ET rows (single-CMA entries).
  std::size_t bank_capacity_rows() const {
    return mats_per_bank * cmas_per_mat * cma_rows;
  }

  /// Total CMA count when fully populated.
  std::size_t total_cmas() const {
    return banks * mats_per_bank * cmas_per_mat;
  }
};

/// Fixed-radius NNS settings (Sec III-B: fixed-radius near-neighbour search
/// replaces top-k in the filtering stage).
struct NnsConfig {
  std::size_t radius = 96;  ///< Hamming threshold on lsh_bits-wide signatures
};

}  // namespace imars::core
