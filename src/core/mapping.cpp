#include "core/mapping.hpp"

#include "util/error.hpp"

namespace imars::core {

std::size_t next_pow2(std::size_t n) {
  IMARS_REQUIRE(n >= 1, "next_pow2: n must be >= 1");
  std::size_t p = 1;
  while (p < n) p <<= 1;
  return p;
}

EtMapping::EtMapping(const ArchConfig& arch, bool round_pow2)
    : arch_(arch), round_pow2_(round_pow2) {
  IMARS_REQUIRE(arch.cma_rows > 0 && arch.cmas_per_mat > 0 &&
                    arch.mats_per_bank > 0 && arch.banks > 0,
                "EtMapping: degenerate architecture");
}

std::size_t EtMapping::cmas_for_rows(std::size_t n) const {
  IMARS_REQUIRE(n > 0, "EtMapping: empty table");
  const std::size_t raw = (n + arch_.cma_rows - 1) / arch_.cma_rows;
  return round_pow2_ ? next_pow2(raw) : raw;
}

std::size_t EtMapping::mats_for_cmas(std::size_t cmas) const {
  // "If n/R < C, we only need one mat, otherwise ... n/(RC)."
  return (cmas + arch_.cmas_per_mat - 1) / arch_.cmas_per_mat;
}

MappingReport EtMapping::map(const data::DatasetSchema& schema) const {
  MappingReport report;
  std::size_t bank = 0;

  const auto place = [&](const std::string& name, std::size_t rows,
                         bool is_item) {
    EtPlacement p;
    p.name = name;
    p.rows = rows;
    p.is_item_table = is_item;
    p.bank = bank++;
    p.data_cmas = cmas_for_rows(rows);
    // The ItET stores an (embedding, signature) pair per entry; signatures
    // occupy one additional CMA per data CMA when lsh_bits == cma_cols.
    if (is_item) {
      const std::size_t sig_per_data =
          (arch_.lsh_bits + arch_.cma_cols - 1) / arch_.cma_cols;
      p.sig_cmas = p.data_cmas * sig_per_data;
    }
    p.mats = mats_for_cmas(p.total_cmas());
    IMARS_REQUIRE(p.mats <= arch_.mats_per_bank,
                  "EtMapping: table '" + name + "' (" + std::to_string(rows) +
                      " rows) exceeds one bank's capacity");
    report.tables.push_back(p);
  };

  for (const auto& f : schema.user_item)
    place(f.name, f.cardinality, /*is_item=*/false);
  if (schema.has_item_table)
    place("ItET", schema.item_count, /*is_item=*/true);

  IMARS_REQUIRE(bank <= arch_.banks,
                "EtMapping: schema needs " + std::to_string(bank) +
                    " banks but the architecture has " +
                    std::to_string(arch_.banks));

  report.active_banks = report.tables.size();
  for (const auto& p : report.tables) {
    report.active_mats += p.mats;
    report.active_cmas += p.total_cmas();
  }
  return report;
}

}  // namespace imars::core
