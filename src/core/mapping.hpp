// Embedding-table -> CMA hierarchy mapping (Sec III-B).
//
// The paper's rules:
//   * each ET row is one CMA row (32-d int8 embedding = 256 bits);
//   * the number of CMAs for an ET with n rows is ceil(n/R); the evaluation
//     section optionally rounds array counts up to a power of two
//     ("118 CMAs ... rounded up to ... 128");
//   * if the CMAs fit inside one mat (count <= C) one mat is activated,
//     otherwise ceil(count / C) mats;
//   * each sparse feature maps to its own bank;
//   * ItET entries additionally store an lsh_bits-wide signature, which
//     occupies a second, paired CMA ("a 256 LSH signature length ...
//     requires 2 CMAs to store a single entry").
#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "core/config.hpp"
#include "data/schema.hpp"

namespace imars::core {

/// Placement of one embedding table.
struct EtPlacement {
  std::string name;
  std::size_t rows = 0;          ///< ET entries
  bool is_item_table = false;    ///< carries LSH signature CMAs
  std::size_t bank = 0;          ///< assigned bank id
  std::size_t data_cmas = 0;     ///< CMAs holding embedding rows
  std::size_t sig_cmas = 0;      ///< CMAs holding LSH signatures (ItET only)
  std::size_t mats = 0;          ///< activated mats in the bank

  std::size_t total_cmas() const { return data_cmas + sig_cmas; }
};

/// Whole-dataset mapping (one row of Table I).
struct MappingReport {
  std::vector<EtPlacement> tables;
  std::size_t active_banks = 0;
  std::size_t active_mats = 0;
  std::size_t active_cmas = 0;
};

/// Computes CMA/mat/bank placement per the Sec III-B rules.
class EtMapping {
 public:
  /// `round_pow2` applies the evaluation section's power-of-two rounding to
  /// per-table CMA counts (Table I itself reports unrounded counts; both
  /// behaviours are exposed and tested).
  EtMapping(const ArchConfig& arch, bool round_pow2 = false);

  /// CMAs needed for an `n`-row table (excluding signature CMAs).
  std::size_t cmas_for_rows(std::size_t n) const;

  /// Mats activated for a table occupying `cmas` arrays.
  std::size_t mats_for_cmas(std::size_t cmas) const;

  /// Maps a full dataset schema: every UIET plus the ItET (when present).
  /// Throws if a table exceeds one bank's capacity or the schema needs more
  /// banks than the architecture provides.
  MappingReport map(const data::DatasetSchema& schema) const;

  const ArchConfig& arch() const noexcept { return arch_; }

 private:
  ArchConfig arch_;
  bool round_pow2_;
};

/// Smallest power of two >= n (n >= 1).
std::size_t next_pow2(std::size_t n);

}  // namespace imars::core
