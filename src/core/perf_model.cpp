#include "core/perf_model.hpp"

#include "core/calibration.hpp"
#include "util/error.hpp"

namespace imars::core {

using device::Ns;
using device::Pj;
using recsys::OpCost;

PerfModel::PerfModel(const ArchConfig& arch,
                     const device::DeviceProfile& profile)
    : arch_(arch), profile_(profile) {}

std::size_t PerfModel::ibc_groups(std::size_t mats) const {
  if (mats == 0) return 0;
  if (mats <= arch_.bank_fan_in) return 1;
  const std::size_t per_round = arch_.bank_fan_in - 1;
  return 1 + (mats - arch_.bank_fan_in + per_round - 1) / per_round;
}

std::size_t PerfModel::bank_rounds(std::size_t mats) const {
  // Matches ImarsAccelerator: a single mat still crosses the intra-bank
  // stage once; K mats need the multi-round formula.
  if (mats <= 1) return 1;
  if (mats <= arch_.bank_fan_in) return 1;
  const std::size_t per_round = arch_.bank_fan_in - 1;
  return 1 + (mats - arch_.bank_fan_in + per_round - 1) / per_round;
}

OpCost PerfModel::et_lookup(const EtLookupParams& params) const {
  IMARS_REQUIRE(params.tables >= 1 && params.lookups_per_table >= 1,
                "PerfModel::et_lookup: degenerate parameters");
  const auto& p = profile_;
  const double L = static_cast<double>(params.lookups_per_table);
  const double T = static_cast<double>(params.tables);
  const std::size_t mats = std::max<std::size_t>(params.mats_per_table, 1);

  // Array phase (worst case, all L lookups in one array, banks parallel):
  // read + (L-1) x (read + write + add).
  const Ns array_lat = p.cma_read.latency * L +
                       (p.cma_write.latency + p.cma_add.latency) * (L - 1.0);
  const Pj array_energy =
      (p.cma_read.energy * L +
       (p.cma_write.energy + p.cma_add.energy) * (L - 1.0)) *
      T;

  // Adder trees + IBC.
  const Ns tree_lat = p.intra_mat_add.latency;
  const Pj tree_energy =
      p.intra_mat_add.energy * static_cast<double>(mats) * T;
  const std::size_t groups = ibc_groups(mats);
  const Ns ibc_lat = p.ibc_cycle * static_cast<double>(groups);
  const Pj ibc_energy = p.ibc_energy * static_cast<double>(groups) * T;
  const std::size_t rounds = bank_rounds(mats);
  const Ns bank_lat = p.intra_bank_add.latency * static_cast<double>(rounds);
  const Pj bank_energy =
      p.intra_bank_add.energy * static_cast<double>(rounds) * T;

  // Controller: one decision per IBC group and one mode reconfiguration per
  // table's (single, worst-case) array group.
  const Pj ctrl_energy =
      p.controller_energy * static_cast<double>(groups + 1) * T;

  // RSC serialization: index distribution in + one 256-bit result per bank.
  const std::size_t idx_bytes =
      params.tables * params.lookups_per_table * 4;
  const std::size_t rsc_cycles =
      (idx_bytes * 8 + p.rsc_bus_bits - 1) / p.rsc_bus_bits + params.tables;
  const Ns rsc_lat = p.rsc_cycle * static_cast<double>(rsc_cycles);
  const Pj rsc_energy = p.rsc_energy * static_cast<double>(rsc_cycles);

  // Peripheral overhead of every array in the activated tables.
  const Pj peripheral{kPeripheralPjPerActiveCmaPerOp *
                      static_cast<double>(params.active_cmas)};

  OpCost cost;
  cost.latency = array_lat + tree_lat + ibc_lat + bank_lat + rsc_lat;
  cost.energy = array_energy + tree_energy + ibc_energy + bank_energy +
                ctrl_energy + rsc_energy + peripheral;
  return cost;
}

OpCost PerfModel::nns(std::size_t sig_cmas) const {
  const auto& p = profile_;
  OpCost cost;
  cost.latency = p.cma_search.latency + p.controller_cycle;
  cost.energy = p.cma_search.energy * static_cast<double>(sig_cmas) +
                p.controller_energy +
                Pj{kSearchPeripheralPjPerActiveCma *
                   static_cast<double>(sig_cmas)};
  return cost;
}

std::size_t PerfModel::dnn_tiles(std::span<const std::size_t> dims) const {
  IMARS_REQUIRE(dims.size() >= 2, "PerfModel::dnn_tiles: need >= 2 dims");
  const auto& p = profile_;
  std::size_t tiles = 0;
  for (std::size_t i = 0; i + 1 < dims.size(); ++i) {
    const std::size_t rt = (dims[i] + p.xbar_rows - 1) / p.xbar_rows;
    const std::size_t ct = (dims[i + 1] + p.xbar_cols - 1) / p.xbar_cols;
    tiles += rt * ct;
  }
  return tiles;
}

OpCost PerfModel::dnn(std::span<const std::size_t> dims) const {
  IMARS_REQUIRE(dims.size() >= 2, "PerfModel::dnn: need >= 2 dims");
  const auto& p = profile_;
  OpCost cost;
  for (std::size_t i = 0; i + 1 < dims.size(); ++i) {
    const std::size_t rt = (dims[i] + p.xbar_rows - 1) / p.xbar_rows;
    const std::size_t ct = (dims[i + 1] + p.xbar_cols - 1) / p.xbar_cols;
    std::size_t merge_levels = 0;
    for (std::size_t n = rt; n > 1; n = (n + 1) / 2) ++merge_levels;
    cost.latency += p.xbar_matmul.latency +
                    p.controller_cycle * static_cast<double>(merge_levels) +
                    p.xbar_layer_overhead;
    cost.energy += p.xbar_matmul.energy * static_cast<double>(rt * ct) +
                   p.controller_energy * static_cast<double>(merge_levels) +
                   p.xbar_layer_energy;
  }
  return cost;
}

OpCost PerfModel::topk(std::size_t candidates, std::size_t k) const {
  (void)k;  // the sweep depth is independent of k in the worst case
  const auto& p = profile_;
  // Serialized CTR writes, then a full binary search of the threshold
  // (log2(cols) probes), then the k result ids on the RSC bus.
  std::size_t probes = 0;
  for (std::size_t n = arch_.cma_cols; n > 1; n /= 2) ++probes;
  OpCost cost;
  cost.latency = p.cma_write.latency * static_cast<double>(candidates) +
                 p.cma_search.latency * static_cast<double>(probes) +
                 p.rsc_cycle;
  cost.energy = p.cma_write.energy * static_cast<double>(candidates) +
                p.cma_search.energy * static_cast<double>(probes) +
                p.rsc_energy + Pj{kSearchPeripheralPjPerActiveCma};
  return cost;
}

OpCost PerfModel::row_fetch() const {
  const auto& p = profile_;
  // RAM-mode row read + one 32-byte embedding transfer on the RSC bus
  // (matches ImarsAccelerator::read_row's accounting).
  const std::size_t bytes = arch_.emb_dim;  // int8 lanes
  const std::size_t cycles =
      (bytes * 8 + p.rsc_bus_bits - 1) / p.rsc_bus_bits;
  OpCost cost;
  cost.latency = p.cma_read.latency + p.rsc_cycle * static_cast<double>(cycles);
  cost.energy = p.cma_read.energy + p.rsc_energy * static_cast<double>(cycles);
  return cost;
}

OpCost PerfModel::pooled_row() const {
  const auto& p = profile_;
  // One additional row folded into the running in-array sum: read +
  // write-back + GPCiM add (the per-lookup increment of et_lookup's
  // serialized array phase).
  OpCost cost;
  cost.latency =
      p.cma_read.latency + p.cma_write.latency + p.cma_add.latency;
  cost.energy = p.cma_read.energy + p.cma_write.energy + p.cma_add.energy;
  return cost;
}

OpCost PerfModel::cached_row() const {
  return OpCost{profile_.cache_read.latency, profile_.cache_read.energy};
}

OpCost PerfModel::row_write() const {
  const auto& p = profile_;
  // One 32-byte embedding transfer over the RSC bus into the array, then a
  // RAM-mode row write (the dual of row_fetch's read + transfer).
  const std::size_t bytes = arch_.emb_dim;  // int8 lanes
  const std::size_t cycles =
      (bytes * 8 + p.rsc_bus_bits - 1) / p.rsc_bus_bits;
  OpCost cost;
  cost.latency =
      p.cma_write.latency + p.rsc_cycle * static_cast<double>(cycles);
  cost.energy =
      p.cma_write.energy + p.rsc_energy * static_cast<double>(cycles);
  return cost;
}

OpCost PerfModel::buffer_fill() const {
  return OpCost{profile_.cache_write.latency, profile_.cache_write.energy};
}

OpCost PerfModel::cold_block_fetch(std::size_t rows) const {
  if (rows == 0) return OpCost{};
  const auto& p = profile_;
  // One block initiation, then every row of the block streams out of the
  // bulk tier and crosses the RSC bus into its warm array (the same
  // per-row serialization row_fetch() charges).
  const std::size_t bytes = arch_.emb_dim;  // int8 lanes
  const std::size_t cycles =
      (bytes * 8 + p.rsc_bus_bits - 1) / p.rsc_bus_bits;
  const double r = static_cast<double>(rows);
  OpCost cost;
  cost.latency = p.cold_block_access.latency +
                 (p.cold_row_stream.latency +
                  p.rsc_cycle * static_cast<double>(cycles)) *
                     r;
  cost.energy = p.cold_block_access.energy +
                (p.cold_row_stream.energy +
                 p.rsc_energy * static_cast<double>(cycles)) *
                    r;
  return cost;
}

OpCost PerfModel::cold_flush_extra() const {
  const auto& p = profile_;
  return OpCost{p.cold_row_stream.latency, p.cold_row_stream.energy};
}

OpCost PerfModel::reduction_saving() const {
  if (!profile_.in_crossbar_reduction) return OpCost{};
  const auto& p = profile_;
  // Each merged row's reduced-away result return: the per-bank 256-bit
  // transfers et_lookup serializes on the RSC bus, one bus burst per
  // emb_dim row. The replacement GPCiM add is charged against the energy
  // credit (clamped at zero — cma_add outweighs the bus energy on every
  // preset).
  const std::size_t bytes = arch_.emb_dim;  // int8 lanes
  const std::size_t cycles =
      (bytes * 8 + p.rsc_bus_bits - 1) / p.rsc_bus_bits;
  OpCost cost;
  cost.latency = p.rsc_cycle * static_cast<double>(cycles);
  const Pj credit = p.rsc_energy * static_cast<double>(cycles);
  cost.energy = credit.value > p.cma_add.energy.value
                    ? credit - p.cma_add.energy
                    : Pj{0.0};
  return cost;
}

}  // namespace imars::core
