// Closed-form performance model (the paper's Sec IV-C composition).
//
// PerfModel mirrors the accounting rules of ImarsAccelerator analytically so
// the table benches can evaluate worst-case costs without instantiating the
// functional machine, and so tests can cross-check that the two never
// diverge. All formulas reference DESIGN.md section 5; the two calibration
// constants live in core/calibration.hpp.
#pragma once

#include <cstddef>
#include <span>

#include "core/config.hpp"
#include "device/profile.hpp"
#include "recsys/types.hpp"

namespace imars::core {

/// Inputs of the worst-case ET-lookup cost (Table III).
struct EtLookupParams {
  std::size_t tables = 1;             ///< banks touched in parallel
  std::size_t lookups_per_table = 1;  ///< L, serialized in one array
  std::size_t mats_per_table = 1;     ///< contributing mats (worst case: 1)
  std::size_t active_cmas = 0;        ///< arrays of all touched tables
};

/// Analytical iMARS cost model.
class PerfModel {
 public:
  PerfModel(const ArchConfig& arch, const device::DeviceProfile& profile);

  /// Worst-case ET lookup+pool cost for one input (Sec IV-C1).
  recsys::OpCost et_lookup(const EtLookupParams& params) const;

  /// NNS cost: one parallel TCAM search over `sig_cmas` signature arrays.
  recsys::OpCost nns(std::size_t sig_cmas) const;

  /// Crossbar DNN forward cost for an MLP with the given layer widths
  /// (dims = {in, h1, ..., out}).
  recsys::OpCost dnn(std::span<const std::size_t> dims) const;

  /// Crossbar tiles needed for the MLP.
  std::size_t dnn_tiles(std::span<const std::size_t> dims) const;

  /// Top-k through the CTR buffer over `candidates` scores, worst case
  /// (full threshold binary search).
  recsys::OpCost topk(std::size_t candidates, std::size_t k) const;

  // --- Hot-embedding cache costs (serving extension) --------------------
  // The serve/ subsystem uses these to swap device-accounted ET row costs
  // for buffer-hit costs without re-running the functional machine, so the
  // batched/pipelined throughput numbers stay anchored to Table II.

  /// One ET row fetched in RAM mode and moved over the RSC bus (the
  /// ranking-stage item fetch; the cache-miss cost of a row read).
  recsys::OpCost row_fetch() const;

  /// One row folded into an in-array pooled accumulation (the cache-miss
  /// cost of a pooled UIET/ItET lookup row).
  recsys::OpCost pooled_row() const;

  /// One row served from the controller-periphery hot-row SRAM buffer
  /// (the cache-hit cost: no CMA access, no RSC transfer).
  recsys::OpCost cached_row() const;

  /// One ET row written back to its CMA array over the RSC bus (embedding-
  /// update write-through, and the dirty-row flush of the write-back
  /// cache). The RAM-mode row write is the dual of row_fetch()'s read.
  recsys::OpCost row_write() const;

  /// One embedding-update row absorbed into the periphery hot-row buffer
  /// (write-back fill: no CMA write, no RSC transfer — the array write is
  /// deferred until the dirty row is evicted).
  recsys::OpCost buffer_fill() const;

  // --- Tiered embedding memory (serving extension) ----------------------

  /// One cold-tier block fault pulling `rows` rows into the warm arrays:
  /// block initiation, then per-row bulk streaming plus the row's RSC
  /// serialization into its array. Zero cost for rows == 0 (tier
  /// disabled).
  recsys::OpCost cold_block_fetch(std::size_t rows) const;

  /// One dirty row flushed past the warm arrays into the cold bulk tier:
  /// the extra stream-out on top of row_write() (which covers the array
  /// write + RSC transfer).
  recsys::OpCost cold_flush_extra() const;

  /// Per-merged-row saving of in-crossbar embedding reduction: pooling a
  /// bag's rows with GPCiM adds inside the array removes that row's
  /// 256-bit result return on the serialized RSC bus (the `+ tables` term
  /// of et_lookup's RSC phase). The in-array add costs more energy than
  /// the transfer it replaces on every preset, so the energy credit
  /// clamps at zero — the win is latency/bus pressure, not energy. Zero
  /// unless profile().in_crossbar_reduction.
  recsys::OpCost reduction_saving() const;

  const ArchConfig& arch() const noexcept { return arch_; }
  const device::DeviceProfile& profile() const noexcept { return profile_; }

 private:
  /// Scheduled IBC groups for `mats` outputs at the intra-bank fan-in.
  std::size_t ibc_groups(std::size_t mats) const;
  /// Intra-bank tree rounds for `mats` inputs (>= 1 pass even for one mat).
  std::size_t bank_rounds(std::size_t mats) const;

  ArchConfig arch_;
  // Owned copy: callers may pass a temporary profile.
  device::DeviceProfile profile_;
};

}  // namespace imars::core
