#include "core/query_engine.hpp"

#include "util/error.hpp"
#include "util/stats.hpp"

namespace imars::core {

using recsys::OpKind;

std::vector<double> StreamReport::latencies_ns() const {
  std::vector<double> out;
  out.reserve(queries.size());
  for (const auto& q : queries)
    out.push_back((q.filter_latency + q.rank_latency).value);
  return out;
}

double StreamReport::mean_latency_ns() const {
  IMARS_REQUIRE(!queries.empty(), "StreamReport: empty stream");
  double sum = 0.0;
  for (const auto& q : queries)
    sum += (q.filter_latency + q.rank_latency).value;
  return sum / static_cast<double>(queries.size());
}

double StreamReport::p50_latency_ns() const {
  return util::percentile(latencies_ns(), 50.0);
}
double StreamReport::p95_latency_ns() const {
  return util::percentile(latencies_ns(), 95.0);
}
double StreamReport::p99_latency_ns() const {
  return util::percentile(latencies_ns(), 99.0);
}

double StreamReport::mean_energy_pj() const {
  IMARS_REQUIRE(!queries.empty(), "StreamReport: empty stream");
  double sum = 0.0;
  for (const auto& q : queries) sum += q.energy.value;
  return sum / static_cast<double>(queries.size());
}

double StreamReport::qps_serial() const {
  StageTimes t;
  const double n = static_cast<double>(queries.size());
  t.filter = filter_stats.total().latency / n;
  t.rank = rank_stats.total().latency / n;
  t.shared_et = device::Ns{0.0};
  return core::qps_serial(t);
}

double StreamReport::qps_pipelined() const {
  StageTimes t;
  const double n = static_cast<double>(queries.size());
  t.filter = filter_stats.total().latency / n;
  t.rank = rank_stats.total().latency / n;
  t.shared_et = (filter_stats.at(OpKind::kEtLookup).latency +
                 rank_stats.at(OpKind::kEtLookup).latency) /
                n;
  return core::qps_pipelined(t);
}

StreamReport run_stream(recsys::FilterRankBackend& backend,
                        std::span<const recsys::UserContext> users,
                        std::size_t k) {
  IMARS_REQUIRE(!users.empty(), "run_stream: empty user stream");
  StreamReport report;
  report.queries.reserve(users.size());

  for (std::size_t u = 0; u < users.size(); ++u) {
    recsys::StageStats fs, rs;
    const auto candidates = backend.filter(users[u], &fs);
    (void)backend.rank(users[u], candidates, k, &rs);

    QueryRecord rec;
    rec.user = u;
    rec.candidates = candidates.size();
    rec.filter_latency = fs.total().latency;
    rec.rank_latency = rs.total().latency;
    rec.energy = fs.total().energy + rs.total().energy;
    report.queries.push_back(rec);

    report.filter_stats.merge(fs);
    report.rank_stats.merge(rs);
  }
  return report;
}

}  // namespace imars::core
