// Query-stream execution over any FilterRankBackend (extension beyond the
// paper): runs a trace of user queries, aggregates per-op costs and reports
// latency distribution statistics (mean/p50/p95/p99) and throughput under
// the serial and pipelined service disciplines of core/throughput.hpp.
#pragma once

#include <cstddef>
#include <vector>

#include "core/throughput.hpp"
#include "recsys/types.hpp"

namespace imars::core {

/// One executed query's record.
struct QueryRecord {
  std::size_t user = 0;
  std::size_t candidates = 0;
  device::Ns filter_latency;
  device::Ns rank_latency;
  device::Pj energy;
};

/// Aggregated results of a query stream.
struct StreamReport {
  std::vector<QueryRecord> queries;
  recsys::StageStats filter_stats;  ///< summed over the stream
  recsys::StageStats rank_stats;

  std::size_t size() const { return queries.size(); }

  /// Per-query end-to-end latencies in ns.
  std::vector<double> latencies_ns() const;

  double mean_latency_ns() const;
  double p50_latency_ns() const;
  double p95_latency_ns() const;
  double p99_latency_ns() const;

  /// Mean per-query energy (pJ).
  double mean_energy_pj() const;

  /// Throughput under serial / two-stage-pipelined service (queries/s),
  /// from the mean stage times.
  double qps_serial() const;
  double qps_pipelined() const;
};

/// Executes `users` through the backend (top-k recommendations each).
StreamReport run_stream(recsys::FilterRankBackend& backend,
                        std::span<const recsys::UserContext> users,
                        std::size_t k);

}  // namespace imars::core
