// Query-throughput model (extension beyond the paper).
//
// The paper reports queries/second assuming queries traverse the fabric
// serially (filtering, then each candidate through ranking). Because the
// filtering resources (filter crossbar bank + ItET TCAM mode) and the
// ranking resources (rank crossbar bank + CTR buffer) are disjoint hardware
// (Fig. 3(a)), consecutive queries can be pipelined: query q+1 filters
// while query q ranks. The shared resources are the UIET/ItET banks, which
// both stages touch — the model exposes the ET time separately so the
// pipeline bound stays honest.
#pragma once

#include <algorithm>

#include "device/units.hpp"

namespace imars::core {

/// Per-query stage times measured on the accelerator.
struct StageTimes {
  device::Ns filter;   ///< filtering total (ET + DNN + NNS)
  device::Ns rank;     ///< ranking total (per-candidate loop + top-k)
  device::Ns shared_et;  ///< portion of both stages spent in the ET banks
};

/// Serial execution: one query occupies the whole fabric.
inline double qps_serial(const StageTimes& t) {
  const double ns = (t.filter + t.rank).value;
  return ns > 0.0 ? 1e9 / ns : 0.0;
}

/// Two-stage pipeline: filtering of query q+1 overlaps ranking of query q.
/// Throughput is bound by the slower stage plus the serialized ET-bank time
/// both stages contend for; when that contention makes overlapping worse
/// than serial service (heavily skewed stages with large shared time), the
/// scheduler falls back to serial, so the bound never drops below it.
inline double qps_pipelined(const StageTimes& t) {
  const double serial_ns = (t.filter + t.rank).value;
  const double overlap_ns =
      std::max(t.filter.value, t.rank.value) + t.shared_et.value;
  const double bottleneck = std::min(serial_ns, overlap_ns);
  return bottleneck > 0.0 ? 1e9 / bottleneck : 0.0;
}

/// Speedup of pipelining over serial execution (>= 1 by construction).
inline double pipeline_speedup(const StageTimes& t) {
  const double s = qps_serial(t);
  return s > 0.0 ? qps_pipelined(t) / s : 0.0;
}

}  // namespace imars::core
