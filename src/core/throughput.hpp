// Query-throughput model (extension beyond the paper).
//
// The paper reports queries/second assuming queries traverse the fabric
// serially (filtering, then each candidate through ranking). Because the
// filtering resources (filter crossbar bank + ItET TCAM mode) and the
// ranking resources (rank crossbar bank + CTR buffer) are disjoint hardware
// (Fig. 3(a)), consecutive queries can be pipelined: query q+1 filters
// while query q ranks. The shared resources are the UIET/ItET banks, which
// both stages touch — the model exposes the ET time separately so the
// pipeline bound stays honest.
#pragma once

#include <algorithm>

#include "device/units.hpp"

namespace imars::core {

/// Per-query stage times measured on the accelerator.
struct StageTimes {
  device::Ns filter;   ///< filtering total (ET + DNN + NNS)
  device::Ns rank;     ///< ranking total (per-candidate loop + top-k)
  device::Ns shared_et;  ///< portion of both stages spent in the ET banks
};

/// Serial execution: one query occupies the whole fabric.
inline double qps_serial(const StageTimes& t) {
  const double ns = (t.filter + t.rank).value;
  return ns > 0.0 ? 1e9 / ns : 0.0;
}

/// Two-stage pipeline: filtering of query q+1 overlaps ranking of query q.
/// In steady state each query occupies three resources: the filter units
/// for `filter`, the rank units for `rank`, and the shared ET banks for
/// `shared_et` — and each stage total already CONTAINS its own ET-bank
/// portion, so the initiation interval is the busiest single resource,
/// max(filter, rank, shared_et), exactly the unit-clock / shared-ET-clock
/// contention rule the serving engine (serve/stage_pipeline) applies. The
/// former model added shared_et on top of the slower stage (double-counting
/// the ET time inside the stage totals) and then clamped to serial, which
/// pinned the speedup at exactly 1 whenever shared_et >= min(filter, rank).
inline double qps_pipelined(const StageTimes& t) {
  const double bottleneck =
      std::max({t.filter.value, t.rank.value, t.shared_et.value});
  return bottleneck > 0.0 ? 1e9 / bottleneck : 0.0;
}

/// Speedup of pipelining over serial execution. Genuinely >= 1: the
/// bottleneck resource time never exceeds filter + rank (shared_et is a
/// subset of the two stage totals), with equality only in the degenerate
/// cases (a zero-cost stage, or queries that are pure ET-bank time).
inline double pipeline_speedup(const StageTimes& t) {
  const double s = qps_serial(t);
  return s > 0.0 ? qps_pipelined(t) / s : 0.0;
}

}  // namespace imars::core
