#include "data/criteo.hpp"

#include <cmath>

#include "data/zipf.hpp"
#include "util/error.hpp"

namespace imars::data {

namespace {

// Cardinalities modeled after hashed Criteo-Kaggle columns: a mix of tiny
// enums, mid-size ids and large hashed spaces capped at 30,000 (the maximum
// ET size in Table I). 26 entries.
constexpr std::size_t kCardinalities[CriteoSynth::kSparseCount] = {
    1460,  583,   30000, 30000, 305,   24,    12517, 633,  3,    30000,
    5683,  30000, 3194,  27,    14992, 30000, 10,    5652, 2173, 4,
    30000, 18,    15,    30000, 105,   30000,
};

DatasetSchema make_schema() {
  DatasetSchema s;
  s.name = "criteo-kaggle-synth";
  s.dense_dim = CriteoSynth::kDenseDim;
  s.user_item.reserve(CriteoSynth::kSparseCount);
  for (std::size_t f = 0; f < CriteoSynth::kSparseCount; ++f) {
    s.user_item.push_back({"C" + std::to_string(f + 1), kCardinalities[f], 1,
                           StageUse::kRankingOnly});
  }
  s.has_item_table = false;  // DLRM ranking has no filtering ItET
  s.item_count = 0;
  s.embedding_dim = 32;
  return s;
}

// Number of distinct ground-truth logit buckets per feature: full
// cardinality for small features, hashed down for huge ones (keeps the
// ground-truth model compact while every index remains reachable).
std::size_t logit_buckets(std::size_t cardinality) {
  return std::min<std::size_t>(cardinality, 512);
}

}  // namespace

CriteoSynth::CriteoSynth(const CriteoConfig& config)
    : config_(config), schema_(make_schema()) {
  IMARS_REQUIRE(config.num_samples > 0, "CriteoSynth: need samples");
  IMARS_REQUIRE(config.base_ctr > 0.0 && config.base_ctr < 1.0,
                "CriteoSynth: base_ctr in (0,1)");

  util::Xoshiro256 rng(config_.seed);

  // Ground-truth model.
  sparse_logits_.resize(kSparseCount);
  for (std::size_t f = 0; f < kSparseCount; ++f) {
    const std::size_t buckets = logit_buckets(kCardinalities[f]);
    sparse_logits_[f].resize(buckets);
    for (auto& w : sparse_logits_[f])
      w = 0.35f * static_cast<float>(rng.normal());
  }
  dense_weights_.resize(kDenseDim);
  for (auto& w : dense_weights_) w = 0.25f * static_cast<float>(rng.normal());
  bias_ = static_cast<float>(std::log(config.base_ctr / (1.0 - config.base_ctr)));

  // Per-feature Zipf samplers (popular ids dominate, like hashed logs).
  std::vector<ZipfSampler> samplers;
  samplers.reserve(kSparseCount);
  for (std::size_t f = 0; f < kSparseCount; ++f)
    samplers.emplace_back(kCardinalities[f], 1.1);

  samples_.resize(config.num_samples);
  for (auto& s : samples_) {
    s.dense.resize(kDenseDim);
    for (auto& d : s.dense) {
      // Criteo dense columns are heavy-tailed counts; log1p of a lognormal
      // reproduces the usual preprocessing (log-transformed counts).
      d = std::log1p(std::exp(static_cast<float>(rng.normal())));
    }
    s.sparse.resize(kSparseCount);
    for (std::size_t f = 0; f < kSparseCount; ++f)
      s.sparse[f] = samplers[f].sample(rng);
    s.label = rng.bernoulli(true_ctr(s)) ? 1 : 0;
  }
}

const CriteoSample& CriteoSynth::sample(std::size_t i) const {
  IMARS_REQUIRE(i < samples_.size(), "CriteoSynth::sample out of range");
  return samples_[i];
}

double CriteoSynth::true_ctr(const CriteoSample& s) const {
  IMARS_REQUIRE(s.dense.size() == kDenseDim && s.sparse.size() == kSparseCount,
                "CriteoSynth::true_ctr: malformed sample");
  float logit = bias_;
  for (std::size_t f = 0; f < kSparseCount; ++f) {
    const auto& w = sparse_logits_[f];
    logit += w[s.sparse[f] % w.size()];
  }
  for (std::size_t d = 0; d < kDenseDim; ++d)
    logit += dense_weights_[d] * s.dense[d];
  return 1.0 / (1.0 + std::exp(-static_cast<double>(logit)));
}

std::size_t CriteoSynth::cardinality(std::size_t f) const {
  IMARS_REQUIRE(f < kSparseCount, "CriteoSynth::cardinality out of range");
  return kCardinalities[f];
}

}  // namespace imars::data
