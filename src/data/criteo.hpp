// Synthetic Criteo-Kaggle-style CTR dataset (substitution for the real
// dataset; see DESIGN.md section 2).
//
// Matches the statistics the iMARS evaluation depends on:
//   * 13 dense (continuous) features + 26 categorical features,
//   * per-feature cardinalities spanning a few entries to the 30,000-entry
//     cap the paper quotes as the maximum ET size (Table I / Sec IV),
//   * click labels drawn from a logistic ground-truth model so a trained
//     DLRM reaches non-trivial AUC.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "data/schema.hpp"
#include "tensor/tensor.hpp"
#include "util/rng.hpp"

namespace imars::data {

/// Generation parameters.
struct CriteoConfig {
  std::size_t num_samples = 20000;
  std::uint64_t seed = 7;
  double base_ctr = 0.25;  ///< marginal click probability target
};

/// One impression: 13 dense values, 26 categorical indices, click label.
struct CriteoSample {
  tensor::Vector dense;               ///< size 13
  std::vector<std::size_t> sparse;    ///< size 26, one index per feature
  int label = 0;                      ///< 1 = click
};

/// Synthetic Criteo dataset with logistic ground truth.
class CriteoSynth {
 public:
  static constexpr std::size_t kDenseDim = 13;
  static constexpr std::size_t kSparseCount = 26;
  static constexpr std::size_t kMaxCardinality = 30000;  // Table I cap

  explicit CriteoSynth(const CriteoConfig& config);

  const CriteoConfig& config() const noexcept { return config_; }
  const DatasetSchema& schema() const noexcept { return schema_; }

  std::size_t size() const noexcept { return samples_.size(); }
  const CriteoSample& sample(std::size_t i) const;

  /// Ground-truth click probability for a sample (used by oracle tests).
  double true_ctr(const CriteoSample& s) const;

  /// Cardinality of sparse feature f (matches schema()).
  std::size_t cardinality(std::size_t f) const;

 private:
  CriteoConfig config_;
  DatasetSchema schema_;
  std::vector<CriteoSample> samples_;
  // Ground-truth model: per-(feature, bucketized index) logit contribution
  // and dense-feature weights.
  std::vector<std::vector<float>> sparse_logits_;  // [feature][index bucket]
  tensor::Vector dense_weights_;                   // size 13
  float bias_ = 0.0f;
};

}  // namespace imars::data
