#include "data/loaders.hpp"

#include <algorithm>
#include <charconv>
#include <cmath>
#include <istream>
#include <unordered_map>

#include "util/error.hpp"
#include "util/rng.hpp"

namespace imars::data {

namespace {

// Splits a line on a multi-character separator ("::") or a single char.
std::vector<std::string> split(const std::string& line,
                               const std::string& sep) {
  std::vector<std::string> out;
  std::size_t pos = 0;
  while (true) {
    const std::size_t next = line.find(sep, pos);
    if (next == std::string::npos) {
      out.push_back(line.substr(pos));
      break;
    }
    out.push_back(line.substr(pos, next - pos));
    pos = next + sep.size();
  }
  return out;
}

template <class T>
T parse_int(const std::string& s, std::size_t line_no, const char* what) {
  T value{};
  const auto [ptr, ec] =
      std::from_chars(s.data(), s.data() + s.size(), value);
  IMARS_REQUIRE(ec == std::errc{} && ptr == s.data() + s.size(),
                "parse error at line " + std::to_string(line_no) + ": bad " +
                    what + " '" + s + "'");
  return value;
}

}  // namespace

std::vector<MlRating> parse_movielens_ratings(std::istream& is) {
  std::vector<MlRating> out;
  std::string line;
  std::size_t line_no = 0;
  while (std::getline(is, line)) {
    ++line_no;
    if (line.empty()) continue;
    const auto f = split(line, "::");
    IMARS_REQUIRE(f.size() == 4, "ratings.dat line " + std::to_string(line_no) +
                                     ": expected 4 fields, got " +
                                     std::to_string(f.size()));
    MlRating r;
    r.user = parse_int<std::size_t>(f[0], line_no, "user id");
    r.item = parse_int<std::size_t>(f[1], line_no, "item id");
    IMARS_REQUIRE(r.user >= 1 && r.item >= 1,
                  "ratings.dat line " + std::to_string(line_no) +
                      ": ids are 1-based");
    --r.user;
    --r.item;
    r.rating = parse_int<int>(f[2], line_no, "rating");
    IMARS_REQUIRE(r.rating >= 1 && r.rating <= 5,
                  "ratings.dat line " + std::to_string(line_no) +
                      ": rating out of range");
    r.timestamp = parse_int<std::int64_t>(f[3], line_no, "timestamp");
    out.push_back(r);
  }
  return out;
}

std::vector<MlUserProfile> parse_movielens_users(std::istream& is) {
  std::vector<MlUserProfile> out;
  std::string line;
  std::size_t line_no = 0;
  while (std::getline(is, line)) {
    ++line_no;
    if (line.empty()) continue;
    const auto f = split(line, "::");
    IMARS_REQUIRE(f.size() == 5, "users.dat line " + std::to_string(line_no) +
                                     ": expected 5 fields");
    MlUserProfile u;
    u.user = parse_int<std::size_t>(f[0], line_no, "user id");
    IMARS_REQUIRE(u.user >= 1, "users.dat: ids are 1-based");
    --u.user;
    IMARS_REQUIRE(f[1] == "M" || f[1] == "F",
                  "users.dat line " + std::to_string(line_no) +
                      ": gender must be M/F");
    u.gender = f[1][0];
    u.age = parse_int<int>(f[2], line_no, "age");
    u.occupation = parse_int<int>(f[3], line_no, "occupation");
    IMARS_REQUIRE(u.occupation >= 0 && u.occupation <= 20,
                  "users.dat line " + std::to_string(line_no) +
                      ": occupation out of range");
    u.zip = f[4];
    out.push_back(u);
  }
  return out;
}

MovieLensFile build_movielens(const std::vector<MlRating>& ratings,
                              const std::vector<MlUserProfile>& profiles,
                              int positive_threshold) {
  IMARS_REQUIRE(!ratings.empty(), "build_movielens: no ratings");

  // Compact item ids.
  std::unordered_map<std::size_t, std::size_t> item_map;
  for (const auto& r : ratings) {
    item_map.emplace(r.item, item_map.size());
  }

  // MovieLens age buckets -> ordinal index.
  const auto age_bucket = [](int age) -> std::size_t {
    const int buckets[] = {1, 18, 25, 35, 45, 50, 56};
    std::size_t best = 0;
    for (std::size_t i = 0; i < 7; ++i)
      if (age >= buckets[i]) best = i;
    return best;
  };

  // Profiles by original user id.
  std::unordered_map<std::size_t, const MlUserProfile*> prof;
  for (const auto& p : profiles) prof[p.user] = &p;

  // Positive interactions per user, time-ordered.
  std::unordered_map<std::size_t, std::vector<MlRating>> by_user;
  for (const auto& r : ratings)
    if (r.rating >= positive_threshold) by_user[r.user].push_back(r);

  MovieLensFile out;
  out.num_items = item_map.size();

  // Zip prefixes hash into the synthetic schema's 3439 buckets so the
  // pipeline sees the same cardinalities as the generator.
  constexpr std::size_t kZipCard = 3439;
  constexpr std::size_t kGenreCard = 18;

  std::vector<std::size_t> user_ids;
  user_ids.reserve(by_user.size());
  for (const auto& [u, _] : by_user) user_ids.push_back(u);
  std::sort(user_ids.begin(), user_ids.end());

  std::size_t dense_user = 0;
  for (auto u : user_ids) {
    auto& events = by_user[u];
    if (events.size() < 2) continue;  // need train + heldout
    std::sort(events.begin(), events.end(),
              [](const MlRating& a, const MlRating& b) {
                if (a.timestamp != b.timestamp) return a.timestamp < b.timestamp;
                return a.item < b.item;
              });

    MovieLensUser rec;
    const MlUserProfile* p = prof.contains(u) ? prof.at(u) : nullptr;
    const std::size_t gender = (p == nullptr) ? 2 : (p->gender == 'M' ? 0 : 1);
    const std::size_t age = (p == nullptr) ? 0 : age_bucket(p->age);
    const std::size_t occupation =
        (p == nullptr) ? 0 : static_cast<std::size_t>(p->occupation);
    const std::size_t zip =
        (p == nullptr) ? 0 : util::hash64(17, std::hash<std::string>{}(p->zip)) % kZipCard;
    // Favourite genre is not derivable without movies.dat genres; hash the
    // most-rated item as a stable proxy.
    const std::size_t fav =
        util::hash64(23, events.front().item) % kGenreCard;
    rec.sparse = {gender, age, occupation, zip, dense_user, fav};

    for (const auto& e : events) {
      const std::size_t dense_item = item_map.at(e.item);
      if (std::find(rec.history.begin(), rec.history.end(), dense_item) ==
          rec.history.end())
        rec.history.push_back(dense_item);
    }
    if (rec.history.size() < 2) continue;
    rec.heldout = rec.history.back();
    rec.history.pop_back();
    out.users.push_back(std::move(rec));
    ++dense_user;
  }
  IMARS_REQUIRE(!out.users.empty(),
                "build_movielens: no user has >= 2 positive interactions");

  out.schema.name = "movielens-1m-file";
  out.schema.dense_dim = MovieLensSynth::kDenseDim;
  out.schema.user_item = {
      {"gender", 3, 1, StageUse::kShared},
      {"age", 7, 1, StageUse::kShared},
      {"occupation", 21, 1, StageUse::kShared},
      {"zip", kZipCard, 1, StageUse::kShared},
      {"user_id", out.users.size(), 1, StageUse::kShared},
      {"fav_genre", kGenreCard, 1, StageUse::kRankingOnly},
  };
  out.schema.has_item_table = true;
  out.schema.item_count = out.num_items;
  out.schema.embedding_dim = 32;
  return out;
}

CriteoSample parse_criteo_line(const std::string& line,
                               std::size_t hash_buckets,
                               std::size_t line_number) {
  IMARS_REQUIRE(hash_buckets > 0, "parse_criteo: hash_buckets must be > 0");
  const auto f = split(line, "\t");
  IMARS_REQUIRE(f.size() == 1 + CriteoSynth::kDenseDim + CriteoSynth::kSparseCount,
                "criteo line " + std::to_string(line_number) + ": expected " +
                    std::to_string(1 + CriteoSynth::kDenseDim +
                                   CriteoSynth::kSparseCount) +
                    " fields, got " + std::to_string(f.size()));
  CriteoSample s;
  s.label = parse_int<int>(f[0], line_number, "label");
  IMARS_REQUIRE(s.label == 0 || s.label == 1,
                "criteo line " + std::to_string(line_number) + ": label 0/1");

  s.dense.resize(CriteoSynth::kDenseDim);
  for (std::size_t d = 0; d < CriteoSynth::kDenseDim; ++d) {
    const auto& field = f[1 + d];
    if (field.empty()) {
      s.dense[d] = 0.0f;  // missing value
    } else {
      const auto v = parse_int<long long>(field, line_number, "dense field");
      // log1p of the (clamped-at-0) count: the standard Criteo transform.
      s.dense[d] = std::log1p(static_cast<float>(std::max(0LL, v)));
    }
  }

  s.sparse.resize(CriteoSynth::kSparseCount);
  for (std::size_t c = 0; c < CriteoSynth::kSparseCount; ++c) {
    const auto& field = f[1 + CriteoSynth::kDenseDim + c];
    if (field.empty()) {
      s.sparse[c] = 0;  // missing category -> bucket 0
    } else {
      // Fields are 8-hex-digit ids; hash the raw text for robustness.
      s.sparse[c] =
          util::hash64(c + 1, std::hash<std::string>{}(field)) % hash_buckets;
    }
  }
  return s;
}

std::vector<CriteoSample> parse_criteo(std::istream& is,
                                       std::size_t hash_buckets,
                                       std::size_t max_samples) {
  std::vector<CriteoSample> out;
  std::string line;
  std::size_t line_no = 0;
  while (std::getline(is, line)) {
    ++line_no;
    if (line.empty()) continue;
    out.push_back(parse_criteo_line(line, hash_buckets, line_no));
    if (max_samples > 0 && out.size() >= max_samples) break;
  }
  return out;
}

}  // namespace imars::data
