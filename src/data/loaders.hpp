// File loaders for the real datasets the paper evaluates on.
//
// The repository ships synthetic generators (offline reproduction), but a
// downstream user with the actual files can load them here:
//   * MovieLens-1M: ratings.dat / users.dat ("::"-separated, latin-1),
//   * Criteo Kaggle: train.txt (TAB-separated: label, 13 ints, 26 hex ids).
//
// Loaders produce the same record shapes as the synthetic generators
// (MovieLensUser / CriteoSample) so the rest of the pipeline is agnostic to
// the data source. Parsing is strict: malformed lines raise imars::Error
// with the line number.
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

#include "data/criteo.hpp"
#include "data/movielens.hpp"
#include "data/schema.hpp"

namespace imars::data {

/// One parsed MovieLens rating event.
struct MlRating {
  std::size_t user = 0;   ///< 1-based id in the file, 0-based here
  std::size_t item = 0;
  int rating = 0;         ///< 1..5
  std::int64_t timestamp = 0;
};

/// One parsed MovieLens user profile (users.dat).
struct MlUserProfile {
  std::size_t user = 0;
  char gender = 'M';           ///< 'M' / 'F'
  int age = 0;                 ///< MovieLens age bucket (1,18,25,...)
  int occupation = 0;          ///< 0..20
  std::string zip;             ///< raw zip code string
};

/// Parses a MovieLens ratings.dat stream ("UserID::MovieID::Rating::Time").
std::vector<MlRating> parse_movielens_ratings(std::istream& is);

/// Parses a MovieLens users.dat stream ("UserID::Gender::Age::Occ::Zip").
std::vector<MlUserProfile> parse_movielens_users(std::istream& is);

/// Assembles per-user interaction records from parsed ratings: history =
/// items rated >= `positive_threshold`, ordered by timestamp; the last one
/// becomes the leave-one-out heldout item (users with < 2 positives are
/// dropped). User/item ids are compacted to dense 0-based ranges.
struct MovieLensFile {
  std::vector<MovieLensUser> users;
  std::size_t num_items = 0;
  DatasetSchema schema;  ///< matches the synthetic generator's layout
};
MovieLensFile build_movielens(const std::vector<MlRating>& ratings,
                              const std::vector<MlUserProfile>& profiles,
                              int positive_threshold = 4);

/// Parses one Criteo Kaggle TSV line into a sample. Missing dense fields
/// become 0 (standard preprocessing); categorical ids hash into
/// [0, hash_buckets).
CriteoSample parse_criteo_line(const std::string& line,
                               std::size_t hash_buckets,
                               std::size_t line_number = 0);

/// Parses a Criteo TSV stream (up to `max_samples`; 0 = all).
std::vector<CriteoSample> parse_criteo(std::istream& is,
                                       std::size_t hash_buckets,
                                       std::size_t max_samples = 0);

}  // namespace imars::data
