#include "data/movielens.hpp"

#include <algorithm>
#include <cmath>
#include <unordered_set>

#include "data/zipf.hpp"
#include "util/error.hpp"

namespace imars::data {

namespace {

// MovieLens-1M real cardinalities: gender {M,F,unknown}, 7 age buckets,
// 21 occupations, 3439 zip prefixes, 6040 users, 18 genres.
constexpr std::size_t kGenderCard = 3;
constexpr std::size_t kAgeCard = 7;
constexpr std::size_t kOccupationCard = 21;
constexpr std::size_t kZipCard = 3439;
constexpr std::size_t kGenreCard = 18;

DatasetSchema make_schema(const MovieLensConfig& cfg) {
  DatasetSchema s;
  s.name = "movielens-1m-synth";
  s.dense_dim = MovieLensSynth::kDenseDim;
  s.user_item = {
      {"gender", kGenderCard, 1, StageUse::kShared},
      {"age", kAgeCard, 1, StageUse::kShared},
      {"occupation", kOccupationCard, 1, StageUse::kShared},
      {"zip", kZipCard, 1, StageUse::kShared},
      {"user_id", cfg.num_users, 1, StageUse::kShared},
      {"fav_genre", kGenreCard, 1, StageUse::kRankingOnly},
  };
  s.has_item_table = true;
  s.item_count = cfg.num_items;
  s.embedding_dim = 32;
  return s;
}

// Maps a latent coordinate to a bucket in [0, card) with additive noise, so
// sparse features correlate with (but do not fully reveal) the latent space.
std::size_t bucketize(float value, std::size_t card, util::Xoshiro256& rng,
                      double noise_prob) {
  if (rng.bernoulli(noise_prob)) return rng.below(card);
  const double u = 0.5 * (1.0 + std::erf(value / std::numbers::sqrt2));
  auto b = static_cast<std::size_t>(u * static_cast<double>(card));
  return std::min(b, card - 1);
}

}  // namespace

MovieLensSynth::MovieLensSynth(const MovieLensConfig& config)
    : config_(config), schema_(make_schema(config)) {
  IMARS_REQUIRE(config.num_users > 0 && config.num_items > 1,
                "MovieLensSynth: need users and >=2 items");
  IMARS_REQUIRE(config.history_min >= 1 &&
                    config.history_max >= config.history_min,
                "MovieLensSynth: invalid history bounds");
  IMARS_REQUIRE(config.history_max + 1 < config.num_items,
                "MovieLensSynth: history larger than catalogue");

  util::Xoshiro256 rng(config.seed);

  user_latent_ = tensor::Matrix::randn(config.num_users, config.latent_dim,
                                       1.0f, rng);
  item_latent_ = tensor::Matrix::randn(config.num_items, config.latent_dim,
                                       1.0f, rng);

  const ZipfSampler zipf(config.num_items, config.zipf_s);
  item_pop_.resize(config.num_items);
  for (std::size_t i = 0; i < config.num_items; ++i)
    item_pop_[i] = zipf.pmf(i);

  users_.resize(config.num_users);
  for (std::size_t u = 0; u < config.num_users; ++u) {
    auto& rec = users_[u];
    const auto z = user_latent_.row(u);

    // Sparse features as noisy projections of the latent vector. user_id is
    // exact; zip mixes two latent coordinates for higher entropy.
    rec.sparse = {
        bucketize(z[0], kGenderCard, rng, 0.1),
        bucketize(z[1], kAgeCard, rng, 0.1),
        bucketize(z[2], kOccupationCard, rng, 0.1),
        bucketize(0.7f * z[3] + 0.3f * z[4], kZipCard, rng, 0.05),
        u,
        bucketize(z[5], kGenreCard, rng, 0.1),
    };

    // Watch history: candidate items from the Zipf popularity prior,
    // accepted with probability sigmoid(affinity). Guarantees history_min
    // by falling back to best-affinity popular items.
    const std::size_t target =
        config.history_min +
        rng.below(config.history_max - config.history_min + 1);
    std::unordered_set<std::size_t> seen;
    std::size_t attempts = 0;
    const std::size_t max_attempts = target * 50;
    while (rec.history.size() < target && attempts < max_attempts) {
      ++attempts;
      const std::size_t i = zipf.sample(rng);
      if (seen.contains(i)) continue;
      const float a = affinity(u, i);
      if (rng.bernoulli(1.0 / (1.0 + std::exp(-a)))) {
        seen.insert(i);
        rec.history.push_back(i);
      }
    }
    while (rec.history.size() < config.history_min) {
      const std::size_t i = rng.below(config.num_items);
      if (!seen.contains(i)) {
        seen.insert(i);
        rec.history.push_back(i);
      }
    }

    // Leave-one-out: the most recent (last) interaction becomes the test
    // item; it is removed from the training history.
    rec.heldout = rec.history.back();
    rec.history.pop_back();
  }
}

const MovieLensUser& MovieLensSynth::user(std::size_t u) const {
  IMARS_REQUIRE(u < users_.size(), "MovieLensSynth::user out of range");
  return users_[u];
}

std::span<const float> MovieLensSynth::item_latent(std::size_t i) const {
  IMARS_REQUIRE(i < config_.num_items, "item_latent out of range");
  return item_latent_.row(i);
}

std::span<const float> MovieLensSynth::user_latent(std::size_t u) const {
  IMARS_REQUIRE(u < users_.size(), "user_latent out of range");
  return user_latent_.row(u);
}

float MovieLensSynth::affinity(std::size_t u, std::size_t i) const {
  const auto z = user_latent(u);
  const auto w = item_latent(i);
  // Scaled dot product keeps sigmoids away from saturation for latent_dim 16.
  return tensor::dot(z, w) / std::sqrt(static_cast<float>(config_.latent_dim));
}

double MovieLensSynth::item_popularity(std::size_t i) const {
  IMARS_REQUIRE(i < item_pop_.size(), "item_popularity out of range");
  return item_pop_[i];
}

tensor::Vector MovieLensSynth::dense_features(std::size_t u) const {
  const auto& rec = user(u);
  const auto n = static_cast<float>(rec.history.size());
  double mean_pop = 0.0;
  for (auto i : rec.history) mean_pop += item_pop_[i];
  if (!rec.history.empty()) mean_pop /= static_cast<double>(rec.history.size());
  return {
      std::log1p(n),
      static_cast<float>(std::log1p(mean_pop * 1e3)),
      n / static_cast<float>(config_.history_max),
      static_cast<float>(rec.sparse[1]) / static_cast<float>(kAgeCard),
  };
}

}  // namespace imars::data
