// Synthetic MovieLens-1M-style dataset (substitution for the real dataset;
// see DESIGN.md section 2).
//
// Matches the statistics iMARS' evaluation depends on:
//   * 6040 users, 3952 movies (MovieLens-1M counts),
//   * 5 filtering UIETs / 6 ranking UIETs with 5 shared (Table I),
//   * per-feature cardinalities spanning 3 ("min 3 entries") to 6040
//     ("maximum of 6040 entries"),
//   * one ItET over all movies used by the filtering NNS,
//   * Zipf item popularity and a latent-factor ground truth so a trained
//     model achieves non-trivial hit rate (needed for the Sec IV-B accuracy
//     experiment).
//
// Ground truth: user u and movie i carry latent vectors z_u, w_i in R^16;
// u watches i with probability proportional to softmax-ish affinity
// sigmoid(z_u . w_i + popularity bias). Sparse user features are noisy
// quantizations of z_u so the trainable embeddings can recover signal.
#pragma once

#include <cstddef>
#include <vector>

#include "data/schema.hpp"
#include "tensor/tensor.hpp"
#include "util/rng.hpp"

namespace imars::data {

/// Generation parameters. Defaults reproduce the MovieLens-1M shape; tests
/// shrink the counts for speed.
struct MovieLensConfig {
  std::size_t num_users = 6040;
  std::size_t num_items = 3952;
  std::size_t latent_dim = 16;
  std::size_t history_min = 4;    ///< min watched movies per user
  std::size_t history_max = 40;   ///< max watched movies per user
  double zipf_s = 1.05;           ///< item popularity skew
  std::uint64_t seed = 42;
};

/// One user's features and interaction history.
struct MovieLensUser {
  // Sparse feature values, in schema order:
  //   [0] gender (3), [1] age bucket (7), [2] occupation (21),
  //   [3] zip region (3439), [4] user id (6040)  -- the 5 shared UIETs
  //   [5] favourite genre (18)                   -- ranking-only UIET
  std::vector<std::size_t> sparse;
  std::vector<std::size_t> history;  ///< watched item ids (train)
  std::size_t heldout = 0;           ///< leave-one-out test item
};

/// Synthetic MovieLens dataset with ground-truth latent factors.
class MovieLensSynth {
 public:
  explicit MovieLensSynth(const MovieLensConfig& config);

  const MovieLensConfig& config() const noexcept { return config_; }

  /// Schema matching Table I (5 filtering / 6 ranking UIETs, 1 ItET).
  const DatasetSchema& schema() const noexcept { return schema_; }

  std::size_t num_users() const noexcept { return users_.size(); }
  std::size_t num_items() const noexcept { return config_.num_items; }

  const MovieLensUser& user(std::size_t u) const;

  /// Ground-truth item latent vector (used to seed item embeddings and to
  /// build oracle comparisons in tests).
  std::span<const float> item_latent(std::size_t i) const;

  /// Ground-truth user latent vector.
  std::span<const float> user_latent(std::size_t u) const;

  /// Ground-truth affinity score (higher = more likely watched).
  float affinity(std::size_t u, std::size_t i) const;

  /// Item popularity distribution used during generation.
  double item_popularity(std::size_t i) const;

  /// Dense feature vector for a user (log history length, mean popularity
  /// of history, recency proxy, activity rate) — the "continuous" inputs of
  /// Fig. 1(c).
  tensor::Vector dense_features(std::size_t u) const;

  /// Number of dense features produced by dense_features().
  static constexpr std::size_t kDenseDim = 4;

 private:
  MovieLensConfig config_;
  DatasetSchema schema_;
  tensor::Matrix user_latent_;  // users x latent
  tensor::Matrix item_latent_;  // items x latent
  std::vector<double> item_pop_;
  std::vector<MovieLensUser> users_;
};

}  // namespace imars::data
