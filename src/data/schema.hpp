// Feature-schema types shared by the dataset generators and the RecSys
// models. The schema is what the iMARS embedding-table mapping (Sec III-B)
// consumes: one sparse feature -> one embedding table -> one CMA bank.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

namespace imars::data {

/// Which pipeline stages use a sparse feature (Table I distinguishes UIETs
/// exclusive to filtering/ranking from shared ones).
enum class StageUse {
  kFilteringOnly,
  kRankingOnly,
  kShared,
};

/// One categorical (sparse) feature backed by an embedding table.
struct SparseFeatureSpec {
  std::string name;
  std::size_t cardinality = 0;   ///< number of embedding-table rows
  std::size_t multi_hot = 1;     ///< max simultaneous indices (1 = one-hot)
  StageUse use = StageUse::kShared;
};

/// Full dataset schema.
struct DatasetSchema {
  std::string name;
  std::size_t dense_dim = 0;                 ///< # continuous features
  std::vector<SparseFeatureSpec> user_item;  ///< UIET-backed features
  bool has_item_table = false;               ///< ItET present (filtering NNS)
  std::size_t item_count = 0;                ///< ItET rows
  std::size_t embedding_dim = 32;            ///< paper: 32-d int8 embeddings

  /// Number of UIETs visible to a stage.
  std::size_t uiet_count_for(bool filtering) const {
    std::size_t n = 0;
    for (const auto& f : user_item) {
      const bool in_stage = f.use == StageUse::kShared ||
                            (filtering ? f.use == StageUse::kFilteringOnly
                                       : f.use == StageUse::kRankingOnly);
      if (in_stage) ++n;
    }
    return n;
  }

  /// Number of UIETs shared by both stages.
  std::size_t uiet_shared_count() const {
    std::size_t n = 0;
    for (const auto& f : user_item)
      if (f.use == StageUse::kShared) ++n;
    return n;
  }

  /// Largest embedding table (UIET or ItET) in rows.
  std::size_t max_table_rows() const {
    std::size_t n = has_item_table ? item_count : 0;
    for (const auto& f : user_item) n = std::max(n, f.cardinality);
    return n;
  }

  /// Smallest UIET in rows (0 when there are none).
  std::size_t min_table_rows() const {
    std::size_t n = 0;
    for (const auto& f : user_item)
      n = (n == 0) ? f.cardinality : std::min(n, f.cardinality);
    return n;
  }
};

}  // namespace imars::data
