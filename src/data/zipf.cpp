#include "data/zipf.hpp"

#include <algorithm>
#include <cmath>

#include "util/error.hpp"

namespace imars::data {

ZipfSampler::ZipfSampler(std::size_t n, double s) {
  IMARS_REQUIRE(n > 0, "ZipfSampler: n must be positive");
  IMARS_REQUIRE(s >= 0.0, "ZipfSampler: exponent must be non-negative");
  cdf_.resize(n);
  double total = 0.0;
  for (std::size_t k = 0; k < n; ++k) {
    total += 1.0 / std::pow(static_cast<double>(k + 1), s);
    cdf_[k] = total;
  }
  for (auto& c : cdf_) c /= total;
  cdf_.back() = 1.0;  // guard against accumulated rounding
}

std::size_t ZipfSampler::sample(util::Xoshiro256& rng) const {
  const double u = rng.uniform();
  const auto it = std::lower_bound(cdf_.begin(), cdf_.end(), u);
  return static_cast<std::size_t>(std::distance(cdf_.begin(), it));
}

double ZipfSampler::pmf(std::size_t k) const {
  IMARS_REQUIRE(k < cdf_.size(), "ZipfSampler::pmf: index out of range");
  return k == 0 ? cdf_[0] : cdf_[k] - cdf_[k - 1];
}

}  // namespace imars::data
