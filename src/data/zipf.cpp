#include "data/zipf.hpp"

#include <algorithm>
#include <cmath>

#include "util/error.hpp"

namespace imars::data {

ZipfSampler::ZipfSampler(std::size_t n, double s) {
  IMARS_REQUIRE(n > 0, "ZipfSampler: n must be positive");
  IMARS_REQUIRE(s >= 0.0, "ZipfSampler: exponent must be non-negative");
  cdf_.resize(n);
  double total = 0.0;
  for (std::size_t k = 0; k < n; ++k) {
    total += 1.0 / std::pow(static_cast<double>(k + 1), s);
    cdf_[k] = total;
  }
  for (auto& c : cdf_) c /= total;
  cdf_.back() = 1.0;  // guard against accumulated rounding

  // Guide table: one cell per item, cell j holding the first index whose
  // CDF value reaches j/n. Built with a single merge pass (O(n)); a draw
  // then resolves in O(1) expected — the forward scan from the guide entry
  // crosses each CDF step in exactly one cell on average.
  IMARS_REQUIRE(n <= 0xffffffffULL, "ZipfSampler: population exceeds 2^32");
  guide_.resize(n);
  std::size_t k = 0;
  const double inv_n = 1.0 / static_cast<double>(n);
  for (std::size_t j = 0; j < n; ++j) {
    const double t = static_cast<double>(j) * inv_n;
    while (cdf_[k] < t) ++k;
    guide_[j] = static_cast<std::uint32_t>(k);
  }
}

std::size_t ZipfSampler::sample(util::Xoshiro256& rng) const {
  const double u = rng.uniform();
  // Start at the guide cell covering u: guide_[j] is the first index with
  // cdf >= j/n and j/n <= u, so scanning forward to the first cdf >= u
  // returns exactly what lower_bound over the full CDF would (u < 1 and
  // cdf_.back() == 1.0 bound the scan).
  const std::size_t n = cdf_.size();
  std::size_t j = static_cast<std::size_t>(u * static_cast<double>(n));
  if (j >= n) j = n - 1;
  std::size_t k = guide_[j];
  while (cdf_[k] < u) ++k;
  return k;
}

double ZipfSampler::pmf(std::size_t k) const {
  IMARS_REQUIRE(k < cdf_.size(), "ZipfSampler::pmf: index out of range");
  return k == 0 ? cdf_[0] : cdf_[k] - cdf_[k - 1];
}

}  // namespace imars::data
