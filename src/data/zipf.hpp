// Zipf-distributed integer sampler.
//
// Real recommendation traffic is heavily skewed: a few popular items receive
// most interactions. Both synthetic generators use a Zipf(s) popularity
// distribution, which also reproduces the cache-unfriendly ET access pattern
// that makes GPU embedding lookups bandwidth-bound (Sec I).
#pragma once

#include <cstddef>
#include <vector>

#include "util/rng.hpp"

namespace imars::data {

/// Samples from {0, ..., n-1} with P(k) proportional to 1/(k+1)^s via a
/// precomputed inverse CDF with an alias-style guide table: cell j of the
/// guide stores the first index whose CDF reaches j/n, so a draw starts at
/// the guide entry and scans forward instead of binary-searching the whole
/// CDF. Expected scan length is exactly 1 (the n guide cells partition the
/// n CDF steps), making draw cost O(1) at any population — the property
/// the million-user load generator needs at 10^7+ rows. The scan lands on
/// the SAME index `std::lower_bound` would return for every u, so sampled
/// streams are bit-identical to the historical binary-search sampler.
class ZipfSampler {
 public:
  /// n items, exponent s >= 0 (s = 0 is uniform).
  ZipfSampler(std::size_t n, double s);

  std::size_t size() const noexcept { return cdf_.size(); }

  /// Draws one index.
  std::size_t sample(util::Xoshiro256& rng) const;

  /// Probability mass of index k.
  double pmf(std::size_t k) const;

 private:
  std::vector<double> cdf_;
  std::vector<std::uint32_t> guide_;  ///< guide_[j] = min k with cdf_[k] >= j/n
};

}  // namespace imars::data
