// Zipf-distributed integer sampler.
//
// Real recommendation traffic is heavily skewed: a few popular items receive
// most interactions. Both synthetic generators use a Zipf(s) popularity
// distribution, which also reproduces the cache-unfriendly ET access pattern
// that makes GPU embedding lookups bandwidth-bound (Sec I).
#pragma once

#include <cstddef>
#include <vector>

#include "util/rng.hpp"

namespace imars::data {

/// Samples from {0, ..., n-1} with P(k) proportional to 1/(k+1)^s via a
/// precomputed inverse CDF (binary search per draw).
class ZipfSampler {
 public:
  /// n items, exponent s >= 0 (s = 0 is uniform).
  ZipfSampler(std::size_t n, double s);

  std::size_t size() const noexcept { return cdf_.size(); }

  /// Draws one index.
  std::size_t sample(util::Xoshiro256& rng) const;

  /// Probability mass of index k.
  double pmf(std::size_t k) const;

 private:
  std::vector<double> cdf_;
};

}  // namespace imars::data
