#include "device/ledger.hpp"

#include "util/error.hpp"

namespace imars::device {

std::string_view component_name(Component c) {
  switch (c) {
    case Component::kCmaRam: return "cma-ram";
    case Component::kCmaSearch: return "cma-search";
    case Component::kCmaAdd: return "cma-add";
    case Component::kIntraMatTree: return "intra-mat-tree";
    case Component::kIntraBankTree: return "intra-bank-tree";
    case Component::kCrossbar: return "crossbar";
    case Component::kRscBus: return "rsc-bus";
    case Component::kIbcNetwork: return "ibc-network";
    case Component::kController: return "controller";
    case Component::kPeripheral: return "peripheral";
    case Component::kCount: break;
  }
  return "unknown";
}

namespace {
std::size_t index_of(Component c) {
  const auto i = static_cast<std::size_t>(c);
  IMARS_REQUIRE(i < static_cast<std::size_t>(Component::kCount),
                "EnergyLedger: invalid component");
  return i;
}
}  // namespace

void EnergyLedger::charge(Component c, Pj energy) { charge(c, energy, 1); }

void EnergyLedger::charge(Component c, Pj energy, std::size_t ops) {
  const auto i = index_of(c);
  energy_pj_[i] += energy.value;
  ops_[i] += ops;
  if (capturing_) capture_pj_ += energy.value;
}

void EnergyLedger::begin_capture() {
  IMARS_REQUIRE(!capturing_, "EnergyLedger: capture already open");
  capturing_ = true;
  capture_pj_ = 0.0;
}

Pj EnergyLedger::end_capture() {
  IMARS_REQUIRE(capturing_, "EnergyLedger: no capture open");
  capturing_ = false;
  return Pj{capture_pj_};
}

Pj EnergyLedger::energy(Component c) const { return Pj{energy_pj_[index_of(c)]}; }

std::size_t EnergyLedger::ops(Component c) const { return ops_[index_of(c)]; }

Pj EnergyLedger::total() const {
  double sum = 0.0;
  for (double e : energy_pj_) sum += e;
  return Pj{sum};
}

void EnergyLedger::merge(const EnergyLedger& other) {
  for (std::size_t i = 0; i < energy_pj_.size(); ++i) {
    energy_pj_[i] += other.energy_pj_[i];
    ops_[i] += other.ops_[i];
  }
}

void EnergyLedger::clear() {
  energy_pj_.fill(0.0);
  ops_.fill(0);
  capture_pj_ = 0.0;
  capturing_ = false;
}

}  // namespace imars::device
