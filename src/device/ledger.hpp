// Energy/operation accounting, broken down by hardware component.
//
// Every simulated hardware action (CMA read, TCAM search, adder-tree pass,
// bus transfer, ...) charges one ledger entry. Benches aggregate ledgers to
// reproduce the paper's energy columns and the Fig. 2 operation breakdown.
#pragma once

#include <array>
#include <cstddef>
#include <cstdint>
#include <string_view>

#include "device/units.hpp"

namespace imars::device {

/// Hardware components that consume energy in iMARS (Fig. 3).
enum class Component : std::uint8_t {
  kCmaRam,        ///< CMA RAM-mode read/write
  kCmaSearch,     ///< CMA TCAM-mode search
  kCmaAdd,        ///< CMA GPCiM-mode in-memory addition
  kIntraMatTree,  ///< intra-mat adder tree
  kIntraBankTree, ///< intra-bank adder tree
  kCrossbar,      ///< crossbar matrix-vector multiply
  kRscBus,        ///< RecSys communication bus
  kIbcNetwork,    ///< intra-bank communication network
  kController,    ///< CTRL block (clock + counters)
  kPeripheral,    ///< array peripherals (drivers, decoders, SAs) per access
  kCount          ///< sentinel
};

/// Human-readable component name.
std::string_view component_name(Component c);

/// Per-component energy and op-count accumulator.
class EnergyLedger {
 public:
  /// Charges `energy` (and one op) to component `c`.
  void charge(Component c, Pj energy);

  /// Charges `energy` and `ops` operations to component `c`.
  void charge(Component c, Pj energy, std::size_t ops);

  Pj energy(Component c) const;
  std::size_t ops(Component c) const;

  /// Total energy across all components.
  Pj total() const;

  /// Adds another ledger into this one.
  void merge(const EnergyLedger& other);

  /// Resets all counters.
  void clear();

 private:
  std::array<double, static_cast<std::size_t>(Component::kCount)> energy_pj_{};
  std::array<std::size_t, static_cast<std::size_t>(Component::kCount)> ops_{};
};

}  // namespace imars::device
