// Energy/operation accounting, broken down by hardware component.
//
// Every simulated hardware action (CMA read, TCAM search, adder-tree pass,
// bus transfer, ...) charges one ledger entry. Benches aggregate ledgers to
// reproduce the paper's energy columns and the Fig. 2 operation breakdown.
#pragma once

#include <array>
#include <cstddef>
#include <cstdint>
#include <string_view>

#include "device/units.hpp"

namespace imars::device {

/// Hardware components that consume energy in iMARS (Fig. 3).
enum class Component : std::uint8_t {
  kCmaRam,        ///< CMA RAM-mode read/write
  kCmaSearch,     ///< CMA TCAM-mode search
  kCmaAdd,        ///< CMA GPCiM-mode in-memory addition
  kIntraMatTree,  ///< intra-mat adder tree
  kIntraBankTree, ///< intra-bank adder tree
  kCrossbar,      ///< crossbar matrix-vector multiply
  kRscBus,        ///< RecSys communication bus
  kIbcNetwork,    ///< intra-bank communication network
  kController,    ///< CTRL block (clock + counters)
  kPeripheral,    ///< array peripherals (drivers, decoders, SAs) per access
  kCount          ///< sentinel
};

/// Human-readable component name.
std::string_view component_name(Component c);

/// Per-component energy and op-count accumulator.
class EnergyLedger {
 public:
  /// Charges `energy` (and one op) to component `c`.
  void charge(Component c, Pj energy);

  /// Charges `energy` and `ops` operations to component `c`.
  void charge(Component c, Pj energy, std::size_t ops);

  Pj energy(Component c) const;
  std::size_t ops(Component c) const;

  /// Total energy across all components.
  Pj total() const;

  /// Opens an order-independent per-call measurement window. While a
  /// capture is open, every charge() also accumulates into a fresh sum
  /// starting at zero, so the measured energy of a code region depends
  /// only on the charges inside it. A `total()` delta does NOT have that
  /// property: floating-point addition makes
  /// `(prior + e1 + ... + en) - prior` depend on the accumulated `prior`
  /// in the last bits, which breaks bit-identical serving reports the
  /// moment call order changes (overlapped execution interleaves
  /// per-shard work differently from phased). Single-level: a nested
  /// begin_capture() is a bug. merge() is aggregation, not a hardware
  /// charge, and does not feed an open capture.
  void begin_capture();

  /// Closes the window; returns the energy charged since begin_capture().
  Pj end_capture();

  /// Adds another ledger into this one.
  void merge(const EnergyLedger& other);

  /// Resets all counters (and abandons any open capture).
  void clear();

 private:
  std::array<double, static_cast<std::size_t>(Component::kCount)> energy_pj_{};
  std::array<std::size_t, static_cast<std::size_t>(Component::kCount)> ops_{};
  double capture_pj_ = 0.0;
  bool capturing_ = false;
};

/// RAII capture window: opens on construction and guarantees the window
/// closes on scope exit even when the measured region throws (a rejected
/// op must leave the ledger usable for the next call). Call take() to
/// close the window and read the captured energy on the success path.
class ScopedEnergyCapture {
 public:
  explicit ScopedEnergyCapture(EnergyLedger& ledger) : ledger_(&ledger) {
    ledger_->begin_capture();
  }
  ~ScopedEnergyCapture() {
    if (open_) (void)ledger_->end_capture();
  }
  ScopedEnergyCapture(const ScopedEnergyCapture&) = delete;
  ScopedEnergyCapture& operator=(const ScopedEnergyCapture&) = delete;

  /// Closes the window and returns the energy charged inside it.
  Pj take() {
    open_ = false;
    return ledger_->end_capture();
  }

 private:
  EnergyLedger* ledger_;
  bool open_ = true;
};

}  // namespace imars::device
