#include "device/profile.hpp"

namespace imars::device {

DeviceProfile DeviceProfile::fefet45() {
  DeviceProfile p;
  p.name = "fefet-45nm";
  // Paper Table II, verbatim.
  p.cma_write = {Pj{49.1}, Ns{10.0}};
  p.cma_read = {Pj{3.2}, Ns{0.3}};
  p.cma_add = {Pj{108.0}, Ns{8.1}};
  p.cma_search = {Pj{13.8}, Ns{0.2}};
  p.intra_mat_add = {Pj{137.0}, Ns{14.7}};
  p.intra_bank_add = {Pj{956.0}, Ns{44.2}};
  p.xbar_matmul = {Pj{13.8}, Ns{225.0}};
  return p;
}

DeviceProfile DeviceProfile::fefet22() {
  DeviceProfile p = fefet45();
  p.name = "fefet-22nm";
  // Dunkel et al. demonstrate FeFETs embedded in 22nm FDSOI. Scaling the
  // 45nm point with constant-field rules: dynamic energy ~ scales with
  // CV^2 (~0.45x), wire/array latency ~0.7x, cell area ~(22/45)^2 ~ 0.24x.
  const double e = 0.45, l = 0.7;
  for (OpCost* c : {&p.cma_write, &p.cma_read, &p.cma_add, &p.cma_search,
                    &p.intra_mat_add, &p.intra_bank_add, &p.xbar_matmul,
                    &p.cache_read, &p.cache_write}) {
    c->energy = c->energy * e;
    c->latency = c->latency * l;
  }
  p.rsc_cycle = p.rsc_cycle * l;
  p.rsc_energy = p.rsc_energy * e;
  p.ibc_cycle = p.ibc_cycle * l;
  p.ibc_energy = p.ibc_energy * e;
  p.xbar_layer_overhead = p.xbar_layer_overhead * l;
  p.xbar_layer_energy = p.xbar_layer_energy * e;
  p.cma_area = 0.24;
  p.xbar_area = 0.35 * 0.24;
  return p;
}

DeviceProfile DeviceProfile::cmos45() {
  DeviceProfile p = fefet45();
  p.name = "cmos-45nm";
  // 6T/10T SRAM-based CMA (Jeloka et al., JSSC'16 scaled to 45nm):
  // fast low-energy writes, but ~2x cell area and higher matchline energy
  // because search discharges full-swing bitlines.
  p.cma_write = {Pj{12.0}, Ns{1.2}};
  p.cma_read = {Pj{2.8}, Ns{0.25}};
  p.cma_add = {Pj{95.0}, Ns{7.0}};
  p.cma_search = {Pj{34.0}, Ns{0.35}};
  p.cma_area = 2.1;  // 6T CMOS cell vs 1T FeFET cell
  return p;
}

DeviceProfile DeviceProfile::reram45() {
  DeviceProfile p = fefet45();
  p.name = "reram-45nm";
  // 1T1R ReRAM: reads comparable, SET/RESET writes orders of magnitude more
  // costly; search slightly slower due to lower on/off ratio sensing margin.
  p.cma_write = {Pj{480.0}, Ns{100.0}};
  p.cma_read = {Pj{3.5}, Ns{0.4}};
  p.cma_add = {Pj{125.0}, Ns{9.5}};
  p.cma_search = {Pj{18.0}, Ns{0.3}};
  p.cma_area = 1.2;
  p.endurance_cycles = 10000000ULL;  // ReRAM ~1e7 SET/RESET cycles
  return p;
}

}  // namespace imars::device
