// Array-level figures of merit (paper Table II) and technology presets.
//
// The paper obtains these numbers from HSPICE simulation of a complete
// 256x256 FeFET CMA (Preisach FeFET model + 45nm PTM), RTL synthesis of the
// adder trees / communication network (NanGate 45nm), and Neurosim for the
// crossbars. We carry the published values as the device layer; the rest of
// the system composes them exactly as the paper does (Sec IV-A).
#pragma once

#include <cstddef>
#include <string>

#include "device/units.hpp"

namespace imars::device {

/// Energy + latency of a single array-level operation.
struct OpCost {
  Pj energy;
  Ns latency;
};

/// Full device profile for one technology point.
struct DeviceProfile {
  std::string name;

  // --- CMA (256x256), Table II rows 1-4 -------------------------------
  std::size_t cma_rows = 256;
  std::size_t cma_cols = 256;
  OpCost cma_write;    ///< one row write (RAM mode)
  OpCost cma_read;     ///< one row read (RAM mode)
  OpCost cma_add;      ///< one in-memory addition (GPCiM mode)
  OpCost cma_search;   ///< one full-array TCAM threshold search

  // --- Near-memory adder trees, Table II rows 5-6 ----------------------
  OpCost intra_mat_add;   ///< 256-bit add across the C CMAs of one mat
  OpCost intra_bank_add;  ///< 256-bit add across 4 mats (fan-in 4)

  // --- Crossbar (256x128), Table II row 7 ------------------------------
  std::size_t xbar_rows = 256;
  std::size_t xbar_cols = 128;
  OpCost xbar_matmul;  ///< one tile matrix-vector multiply

  // --- Hot-embedding buffer (serving extension) ------------------------
  /// One row read from the digital hot-row SRAM buffer at the controller
  /// periphery (the serve/ hot-embedding cache). A hit serves the row
  /// without touching the CMA arrays or the serialized RSC bus. Register-
  /// file-class SRAM macro, NanGate 45nm synthesis numbers.
  OpCost cache_read{Pj{1.1}, Ns{0.5}};

  /// One row write into the hot-row SRAM buffer (periphery-buffer fill: a
  /// write-back cache absorbs embedding-update traffic here instead of
  /// paying the CMA write). Same register-file-class macro as cache_read;
  /// writes cost slightly more than reads (full bitline swing).
  OpCost cache_write{Pj{1.4}, Ns{0.6}};

  // --- Tiered embedding memory (serving extension) ---------------------
  /// Initiation cost of one cold-tier block fault: command decode, bulk
  /// row-address setup and sense-amp precharge before the block streams
  /// out. The cold tier models dense bulk FeFET/ReRAM banks behind the
  /// working arrays (RecFlash-style capacity tier); access is block-
  /// granular, so the initiation is paid once per fault.
  OpCost cold_block_access{Pj{220.0}, Ns{180.0}};
  /// Per-row streaming cost while a faulted block drains into the warm
  /// arrays (pipelined bulk read + array write; the RSC transfer of each
  /// row is charged separately at the usual per-row serialization).
  OpCost cold_row_stream{Pj{60.0}, Ns{12.0}};

  /// In-crossbar embedding reduction (ReCross-style): gather stages that
  /// declare the capability pool multi-row lookups inside the array with
  /// GPCiM adds, returning one reduced vector per bag over the RSC bus
  /// instead of one transfer per row. Off in every preset; enabling it
  /// changes ET-bank claims, so it is excluded from the bit-parity
  /// envelope.
  bool in_crossbar_reduction = false;

  /// Per-layer digital overhead of a crossbar DNN pass (DAC input streaming,
  /// ADC conversion, activation periphery). Calibrated so that the filtering
  /// DNN stack (3 layers) reproduces the paper's reported 2.69x improvement
  /// over the GPU DNN stack (Sec IV-C3): 6.3us / 2.69 = 2.34us for 3 layers
  /// -> 0.78us per layer, of which 0.225us is the Table II matmul itself.
  Ns xbar_layer_overhead{555.0};
  Pj xbar_layer_energy{300.0};

  // --- Communication (RSC bus / IBC network, Sec III-A3) ---------------
  // The paper states the widths (RSC 256-bit, IBC 128 B/shot) and that the
  // serialization overhead is included in its results, but does not publish
  // the cycle-level numbers; these follow the NanGate 45nm synthesis numbers
  // typical of on-chip buses of those widths and are part of the documented
  // calibration (DESIGN.md section 5).
  std::size_t rsc_bus_bits = 256;
  Ns rsc_cycle{2.0};        ///< per 256-bit transfer on the RSC bus
  Pj rsc_energy{12.0};      ///< per 256-bit transfer
  std::size_t ibc_shot_bytes = 128;
  Ns ibc_cycle{1.5};        ///< per 128-byte IBC shot
  Pj ibc_energy{20.0};      ///< per 128-byte IBC shot
  Ns controller_cycle{1.0}; ///< per scheduling decision of the CTRL block
  Pj controller_energy{0.5};

  /// Write-endurance budget of one cell (polarization switches for FeFET,
  /// SET/RESET cycles for ReRAM; effectively unlimited for SRAM).
  std::uint64_t endurance_cycles = 100000000000ULL;  // FeFET ~1e11

  // --- Area proxies (relative units; for the dimensioning ablation) ----
  double cma_area = 1.0;    ///< one 256x256 CMA
  double xbar_area = 0.35;  ///< one 256x128 crossbar
  double mat_tree_area = 0.12;
  double bank_tree_area = 0.40;

  /// FeFET 45nm profile: exactly the paper's Table II.
  static DeviceProfile fefet45();

  /// CMOS 45nm (push-rule 6T CMA per Jeloka et al. [15]): larger cells,
  /// higher search/leakage energy, faster writes. Illustrative preset for
  /// the technology ablation (the paper cites FeFET > CMOS density/energy).
  static DeviceProfile cmos45();

  /// ReRAM 45nm: comparable reads, much slower/most costly writes.
  /// Illustrative preset for the technology ablation.
  static DeviceProfile reram45();

  /// FeFET on 22nm FDSOI (Dunkel et al., IEDM'17 [10], which the paper
  /// cites for large-scale FeFET feasibility): documented scaling of the
  /// 45nm point for the technology-scaling ablation.
  static DeviceProfile fefet22();
};

}  // namespace imars::device
