// Strong unit types for latency and energy.
//
// All hardware accounting in the simulator uses nanoseconds and picojoules
// (the units of the paper's Table II). Wrapping them in distinct types makes
// it impossible to add a latency to an energy, while the arithmetic needed
// by the performance model (sum, scale, max, compare) stays natural.
#pragma once

#include <algorithm>
#include <compare>

namespace imars::device {

namespace detail {
/// CRTP base providing arithmetic for a double-backed unit.
template <class Derived>
struct UnitBase {
  double value = 0.0;

  constexpr UnitBase() = default;
  constexpr explicit UnitBase(double v) : value(v) {}

  friend constexpr Derived operator+(Derived a, Derived b) {
    return Derived{a.value + b.value};
  }
  friend constexpr Derived operator-(Derived a, Derived b) {
    return Derived{a.value - b.value};
  }
  friend constexpr Derived operator*(Derived a, double s) {
    return Derived{a.value * s};
  }
  friend constexpr Derived operator*(double s, Derived a) {
    return Derived{a.value * s};
  }
  friend constexpr Derived operator/(Derived a, double s) {
    return Derived{a.value / s};
  }
  friend constexpr double operator/(Derived a, Derived b) {
    return a.value / b.value;
  }
  Derived& operator+=(Derived b) {
    value += b.value;
    return static_cast<Derived&>(*this);
  }
  friend constexpr auto operator<=>(Derived a, Derived b) {
    return a.value <=> b.value;
  }
  friend constexpr bool operator==(Derived a, Derived b) {
    return a.value == b.value;
  }
};
}  // namespace detail

/// Latency in nanoseconds.
struct Ns : detail::UnitBase<Ns> {
  using UnitBase::UnitBase;
  constexpr double us() const { return value * 1e-3; }
  constexpr double ms() const { return value * 1e-6; }
  constexpr double seconds() const { return value * 1e-9; }
};

/// Energy in picojoules.
struct Pj : detail::UnitBase<Pj> {
  using UnitBase::UnitBase;
  constexpr double nj() const { return value * 1e-3; }
  constexpr double uj() const { return value * 1e-6; }
  constexpr double mj() const { return value * 1e-9; }
};

inline constexpr Ns max(Ns a, Ns b) { return a.value > b.value ? a : b; }

/// Convenience constructors from other magnitudes.
inline constexpr Ns from_us(double v) { return Ns{v * 1e3}; }
inline constexpr Pj from_uj(double v) { return Pj{v * 1e6}; }
inline constexpr Pj from_mj(double v) { return Pj{v * 1e9}; }

}  // namespace imars::device
