#include "lsh/lsh.hpp"

#include <cmath>
#include <numbers>

#include "util/error.hpp"
#include "util/rng.hpp"

namespace imars::lsh {

RandomHyperplaneLsh::RandomHyperplaneLsh(std::size_t dim, std::size_t bits,
                                         std::uint64_t seed) {
  IMARS_REQUIRE(dim > 0 && bits > 0, "LSH: dim and bits must be positive");
  util::Xoshiro256 rng(seed);
  planes_ = tensor::Matrix::randn(bits, dim, 1.0f, rng);
}

util::BitVec RandomHyperplaneLsh::encode(std::span<const float> x) const {
  IMARS_REQUIRE(x.size() == dim(), "LSH::encode: dimension mismatch");
  util::BitVec sig(bits());
  for (std::size_t k = 0; k < bits(); ++k) {
    if (tensor::dot(planes_.row(k), x) >= 0.0f) sig.set(k, true);
  }
  return sig;
}

double RandomHyperplaneLsh::expected_hamming(double theta_rad) const noexcept {
  return static_cast<double>(bits()) * theta_rad / std::numbers::pi;
}

double RandomHyperplaneLsh::estimate_angle(
    std::size_t hamming_distance) const noexcept {
  return std::numbers::pi * static_cast<double>(hamming_distance) /
         static_cast<double>(bits());
}

double RandomHyperplaneLsh::estimate_cosine(
    std::size_t hamming_distance) const noexcept {
  return std::cos(estimate_angle(hamming_distance));
}

}  // namespace imars::lsh
