// Random-hyperplane locality-sensitive hashing (Sec III-B).
//
// iMARS replaces the filtering stage's cosine NNS with a Hamming-distance
// search over LSH signatures so that the TCAM threshold-match mode can
// evaluate all rows in O(1) array time. The paper uses 256-bit signatures
// ("a 256 LSH signature length which requires 2 CMAs to store a single
// entry"). Random-hyperplane LSH (Charikar 2002) has the property
//     P[bit_k(a) != bit_k(b)] = angle(a, b) / pi,
// so Hamming distance is an unbiased estimator of the angular distance and
// preserves cosine-similarity ordering in expectation.
#pragma once

#include <cstddef>
#include <span>

#include "tensor/tensor.hpp"
#include "util/bitvec.hpp"

namespace imars::lsh {

/// A fixed set of random hyperplanes mapping R^dim -> {0,1}^bits.
class RandomHyperplaneLsh {
 public:
  /// Draws `bits` hyperplanes of dimension `dim` from N(0,1), seeded.
  RandomHyperplaneLsh(std::size_t dim, std::size_t bits, std::uint64_t seed);

  std::size_t dim() const noexcept { return planes_.cols(); }
  std::size_t bits() const noexcept { return planes_.rows(); }

  /// Signature bit k = [planes[k] . x >= 0].
  util::BitVec encode(std::span<const float> x) const;

  /// Expected Hamming distance between signatures of vectors at angle
  /// `theta_rad`: bits * theta / pi.
  double expected_hamming(double theta_rad) const noexcept;

  /// Inverse of expected_hamming: estimated angle for an observed distance.
  double estimate_angle(std::size_t hamming_distance) const noexcept;

  /// Estimated cosine similarity for an observed Hamming distance.
  double estimate_cosine(std::size_t hamming_distance) const noexcept;

 private:
  tensor::Matrix planes_;  // bits x dim
};

}  // namespace imars::lsh
