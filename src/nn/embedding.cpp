#include "nn/embedding.hpp"

#include "util/error.hpp"

namespace imars::nn {

EmbeddingTable::EmbeddingTable(std::size_t rows, std::size_t dim,
                               util::Xoshiro256& rng)
    : table_(rows, dim) {
  IMARS_REQUIRE(rows > 0 && dim > 0, "EmbeddingTable: dims must be positive");
  const float r = 1.0f / static_cast<float>(dim);
  for (auto& x : table_.data()) x = static_cast<float>(rng.uniform(-r, r));
}

std::span<const float> EmbeddingTable::row(std::size_t index) const {
  IMARS_REQUIRE(index < rows(), "EmbeddingTable: row index out of range");
  return table_.row(index);
}

tensor::Vector EmbeddingTable::lookup_pooled(
    std::span<const std::size_t> indices, Pooling pooling) const {
  if (pooling == Pooling::kConcat) {
    IMARS_REQUIRE(!indices.empty(), "concat pooling of zero lookups");
    tensor::Vector out;
    out.reserve(indices.size() * dim());
    for (auto idx : indices) {
      const auto r = row(idx);
      out.insert(out.end(), r.begin(), r.end());
    }
    return out;
  }
  tensor::Vector out(dim(), 0.0f);
  for (auto idx : indices) tensor::add_inplace(out, row(idx));
  if (pooling == Pooling::kMean && !indices.empty()) {
    tensor::scale_inplace(out, 1.0f / static_cast<float>(indices.size()));
  }
  return out;
}

void EmbeddingTable::accumulate_grad(std::span<const std::size_t> indices,
                                     Pooling pooling,
                                     std::span<const float> grad) {
  if (indices.empty()) return;
  const float scale = (pooling == Pooling::kMean)
                          ? 1.0f / static_cast<float>(indices.size())
                          : 1.0f;
  for (std::size_t k = 0; k < indices.size(); ++k) {
    const std::size_t idx = indices[k];
    IMARS_REQUIRE(idx < rows(), "EmbeddingTable: grad index out of range");
    tensor::Vector g(dim(), 0.0f);
    if (pooling == Pooling::kConcat) {
      IMARS_REQUIRE(grad.size() == indices.size() * dim(),
                    "concat grad size mismatch");
      for (std::size_t c = 0; c < dim(); ++c) g[c] = grad[k * dim() + c];
    } else {
      IMARS_REQUIRE(grad.size() == dim(), "pooled grad size mismatch");
      for (std::size_t c = 0; c < dim(); ++c) g[c] = grad[c] * scale;
    }
    pending_grads_.emplace_back(idx, std::move(g));
  }
}

void EmbeddingTable::apply_sgd(float lr) {
  for (const auto& [idx, g] : pending_grads_) {
    auto r = table_.row(idx);
    for (std::size_t c = 0; c < g.size(); ++c) r[c] -= lr * g[c];
  }
  pending_grads_.clear();
}

void EmbeddingTable::zero_grad() { pending_grads_.clear(); }

void EmbeddingTable::set_row(std::size_t index, std::span<const float> values) {
  IMARS_REQUIRE(index < rows(), "EmbeddingTable::set_row out of range");
  IMARS_REQUIRE(values.size() == dim(), "EmbeddingTable::set_row dim mismatch");
  auto r = table_.row(index);
  for (std::size_t c = 0; c < values.size(); ++c) r[c] = values[c];
}

tensor::QMatrix EmbeddingTable::quantized() const {
  return tensor::QMatrix::quantize(table_);
}

}  // namespace imars::nn
