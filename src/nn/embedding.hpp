// Trainable embedding table with lookup + pooling.
//
// This is the *algorithmic* embedding table used for model training and for
// the CPU/GPU baselines. The in-memory (hardware) incarnation lives in
// core::ImarsAccelerator, which loads a quantized snapshot of these tables
// into CMA banks (Sec III-B).
#pragma once

#include <cstddef>
#include <span>
#include <vector>

#include "tensor/qtensor.hpp"
#include "tensor/tensor.hpp"
#include "util/rng.hpp"

namespace imars::nn {

/// How multiple looked-up rows combine into one output vector (Sec II-A
/// "sparse lookup and pooling operations").
enum class Pooling {
  kSum,
  kMean,
  kConcat,
};

/// rows x dim trainable embedding table.
class EmbeddingTable {
 public:
  /// Uniform init in [-1/dim, 1/dim] (DLRM-style).
  EmbeddingTable(std::size_t rows, std::size_t dim, util::Xoshiro256& rng);

  std::size_t rows() const noexcept { return table_.rows(); }
  std::size_t dim() const noexcept { return table_.cols(); }

  /// Single-row lookup.
  std::span<const float> row(std::size_t index) const;

  /// Looks up `indices` and pools them. kConcat returns dim()*indices.size()
  /// values; kSum/kMean return dim() values. Empty index lists are allowed
  /// for sum/mean (result is all-zero) but not for concat.
  tensor::Vector lookup_pooled(std::span<const std::size_t> indices,
                               Pooling pooling) const;

  /// SGD update for a pooled lookup: distributes grad over the looked-up
  /// rows (scaled 1/n for mean pooling).
  void accumulate_grad(std::span<const std::size_t> indices, Pooling pooling,
                       std::span<const float> grad);
  void apply_sgd(float lr);
  void zero_grad();

  /// Direct row write (used by tests and synthetic setups).
  void set_row(std::size_t index, std::span<const float> values);

  /// Post-training int8 snapshot of the whole table (per-tensor symmetric).
  tensor::QMatrix quantized() const;

  const tensor::Matrix& matrix() const noexcept { return table_; }

 private:
  tensor::Matrix table_;
  // Sparse gradient accumulator: only touched rows are stored.
  std::vector<std::pair<std::size_t, tensor::Vector>> pending_grads_;
};

}  // namespace imars::nn
