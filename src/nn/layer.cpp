#include "nn/layer.hpp"

#include <cmath>

#include "util/error.hpp"

namespace imars::nn {

Dense::Dense(std::size_t in, std::size_t out, Activation act,
             util::Xoshiro256& rng)
    : weight_(tensor::Matrix::randn(out, in,
                                    std::sqrt(2.0f / static_cast<float>(in)),
                                    rng)),
      bias_(out, 0.0f),
      act_(act),
      grad_weight_(out, in),
      grad_bias_(out, 0.0f) {
  IMARS_REQUIRE(in > 0 && out > 0, "Dense: dimensions must be positive");
}

tensor::Vector Dense::apply_act(tensor::Vector z) const {
  switch (act_) {
    case Activation::kIdentity:
      return z;
    case Activation::kRelu:
      tensor::relu_inplace(z);
      return z;
    case Activation::kSigmoid:
      return tensor::sigmoid(z);
  }
  return z;  // unreachable
}

tensor::Vector Dense::forward(std::span<const float> x) {
  IMARS_REQUIRE(x.size() == in_dim(), "Dense::forward: input dim mismatch");
  last_input_.assign(x.begin(), x.end());
  last_pre_act_ = tensor::gemv(weight_, x);
  tensor::add_inplace(last_pre_act_, bias_);
  has_forward_state_ = true;
  return apply_act(last_pre_act_);
}

tensor::Vector Dense::infer(std::span<const float> x) const {
  IMARS_REQUIRE(x.size() == in_dim(), "Dense::infer: input dim mismatch");
  tensor::Vector z = tensor::gemv(weight_, x);
  tensor::add_inplace(z, bias_);
  return apply_act(std::move(z));
}

tensor::Vector Dense::backward(std::span<const float> grad_out) {
  IMARS_REQUIRE(has_forward_state_, "Dense::backward without forward");
  IMARS_REQUIRE(grad_out.size() == out_dim(),
                "Dense::backward: grad dim mismatch");

  // dL/dz through the activation.
  tensor::Vector grad_z(grad_out.begin(), grad_out.end());
  switch (act_) {
    case Activation::kIdentity:
      break;
    case Activation::kRelu:
      for (std::size_t i = 0; i < grad_z.size(); ++i)
        if (last_pre_act_[i] <= 0.0f) grad_z[i] = 0.0f;
      break;
    case Activation::kSigmoid:
      for (std::size_t i = 0; i < grad_z.size(); ++i) {
        const float s = 1.0f / (1.0f + std::exp(-last_pre_act_[i]));
        grad_z[i] *= s * (1.0f - s);
      }
      break;
  }

  // Accumulate dL/dW = grad_z * x^T, dL/db = grad_z.
  for (std::size_t o = 0; o < out_dim(); ++o) {
    const float g = grad_z[o];
    if (g != 0.0f) {
      auto wrow = grad_weight_.row(o);
      for (std::size_t i = 0; i < in_dim(); ++i) wrow[i] += g * last_input_[i];
    }
    grad_bias_[o] += grad_z[o];
  }

  // dL/dx = W^T grad_z.
  return tensor::gevm(grad_z, weight_);
}

void Dense::apply_sgd(float lr) {
  auto w = weight_.data();
  auto gw = grad_weight_.data();
  for (std::size_t i = 0; i < w.size(); ++i) w[i] -= lr * gw[i];
  for (std::size_t i = 0; i < bias_.size(); ++i) bias_[i] -= lr * grad_bias_[i];
  zero_grad();
}

void Dense::zero_grad() {
  for (auto& g : grad_weight_.data()) g = 0.0f;
  for (auto& g : grad_bias_) g = 0.0f;
}

}  // namespace imars::nn
