// Fully connected layer with activation, forward + backward.
//
// The DNN stacks in the paper are plain MLPs (YouTubeDNN 128-64-32 / 128-1,
// DLRM 256-128-32 / 256-64-1). Training runs sample-at-a-time SGD — the
// synthetic datasets are small and determinism matters more than throughput.
#pragma once

#include <cstddef>

#include "tensor/tensor.hpp"
#include "util/rng.hpp"

namespace imars::nn {

/// Activation applied after the affine transform.
enum class Activation {
  kIdentity,
  kRelu,
  kSigmoid,
};

/// y = act(W x + b). Caches the forward pass for backward().
class Dense {
 public:
  /// He-initialized weights (stddev sqrt(2/in)) and zero bias.
  Dense(std::size_t in, std::size_t out, Activation act,
        util::Xoshiro256& rng);

  std::size_t in_dim() const noexcept { return weight_.cols(); }
  std::size_t out_dim() const noexcept { return weight_.rows(); }
  Activation activation() const noexcept { return act_; }

  /// Forward pass; caches input and pre-activation for backward().
  tensor::Vector forward(std::span<const float> x);

  /// Inference-only forward (no caching); usable from const contexts.
  tensor::Vector infer(std::span<const float> x) const;

  /// Backward pass for the most recent forward() call. Accumulates weight
  /// and bias gradients internally and returns dLoss/dInput.
  tensor::Vector backward(std::span<const float> grad_out);

  /// Applies accumulated gradients with plain SGD and clears them.
  void apply_sgd(float lr);

  /// Clears accumulated gradients.
  void zero_grad();

  const tensor::Matrix& weight() const noexcept { return weight_; }
  const tensor::Vector& bias() const noexcept { return bias_; }
  tensor::Matrix& mutable_weight() noexcept { return weight_; }
  tensor::Vector& mutable_bias() noexcept { return bias_; }

  const tensor::Matrix& weight_grad() const noexcept { return grad_weight_; }
  const tensor::Vector& bias_grad() const noexcept { return grad_bias_; }

 private:
  tensor::Vector apply_act(tensor::Vector z) const;

  tensor::Matrix weight_;      // out x in
  tensor::Vector bias_;        // out
  Activation act_;

  tensor::Matrix grad_weight_;
  tensor::Vector grad_bias_;

  // Cached forward state.
  tensor::Vector last_input_;
  tensor::Vector last_pre_act_;
  bool has_forward_state_ = false;
};

}  // namespace imars::nn
