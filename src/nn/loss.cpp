#include "nn/loss.hpp"

#include <algorithm>
#include <cmath>

#include "util/error.hpp"

namespace imars::nn {

float bce_loss(float prediction, float label, float* grad) {
  IMARS_REQUIRE(grad != nullptr, "bce_loss: grad must not be null");
  const float p = std::clamp(prediction, 1e-7f, 1.0f - 1e-7f);
  const float loss = -(label * std::log(p) + (1.0f - label) * std::log(1.0f - p));
  *grad = (p - label) / (p * (1.0f - p));
  return loss;
}

float sampled_softmax_loss(std::span<const float> user,
                           std::span<const float> positive,
                           std::span<const tensor::Vector> negatives,
                           tensor::Vector* grad_user,
                           tensor::Vector* grad_positive,
                           std::vector<tensor::Vector>* grad_negatives) {
  IMARS_REQUIRE(grad_user && grad_positive && grad_negatives,
                "sampled_softmax_loss: output gradients must not be null");
  IMARS_REQUIRE(user.size() == positive.size(),
                "sampled_softmax_loss: dim mismatch");
  const std::size_t dim = user.size();
  const std::size_t n = negatives.size() + 1;  // +1 for the positive

  // Logits: index 0 = positive, 1.. = negatives.
  tensor::Vector logits(n, 0.0f);
  logits[0] = tensor::dot(user, positive);
  for (std::size_t i = 0; i < negatives.size(); ++i) {
    IMARS_REQUIRE(negatives[i].size() == dim,
                  "sampled_softmax_loss: negative dim mismatch");
    logits[i + 1] = tensor::dot(user, negatives[i]);
  }
  const tensor::Vector probs = tensor::softmax(logits);
  const float loss = -std::log(std::max(probs[0], 1e-12f));

  // dL/dlogit_i = probs_i - [i == 0].
  grad_user->assign(dim, 0.0f);
  grad_positive->assign(dim, 0.0f);
  grad_negatives->assign(negatives.size(), tensor::Vector(dim, 0.0f));

  const float g0 = probs[0] - 1.0f;
  for (std::size_t c = 0; c < dim; ++c) {
    (*grad_user)[c] += g0 * positive[c];
    (*grad_positive)[c] = g0 * user[c];
  }
  for (std::size_t i = 0; i < negatives.size(); ++i) {
    const float gi = probs[i + 1];
    for (std::size_t c = 0; c < dim; ++c) {
      (*grad_user)[c] += gi * negatives[i][c];
      (*grad_negatives)[i][c] = gi * user[c];
    }
  }
  return loss;
}

}  // namespace imars::nn
