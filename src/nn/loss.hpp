// Losses for the two RecSys training objectives.
#pragma once

#include <span>

#include "tensor/tensor.hpp"

namespace imars::nn {

/// Binary cross-entropy on a sigmoid output (the DLRM / ranking CTR loss).
/// Returns the loss; writes dLoss/dPrediction into grad (size 1 vs 1).
float bce_loss(float prediction, float label, float* grad);

/// Sampled-softmax-style loss for the filtering (retrieval) task: given a
/// user embedding u, a positive item embedding and N negative item
/// embeddings, the loss is -log softmax(u·pos over {pos} ∪ negs).
/// Gradients w.r.t. the user embedding and each item embedding are returned
/// through the out-parameters (negatives in the same order as given).
float sampled_softmax_loss(std::span<const float> user,
                           std::span<const float> positive,
                           std::span<const tensor::Vector> negatives,
                           tensor::Vector* grad_user,
                           tensor::Vector* grad_positive,
                           std::vector<tensor::Vector>* grad_negatives);

}  // namespace imars::nn
