#include "nn/mlp.hpp"

#include "util/error.hpp"

namespace imars::nn {

Mlp::Mlp(std::vector<std::size_t> dims, Activation output_act,
         util::Xoshiro256& rng)
    : dims_(std::move(dims)) {
  IMARS_REQUIRE(dims_.size() >= 2, "Mlp: need at least {in, out} dims");
  layers_.reserve(dims_.size() - 1);
  for (std::size_t i = 0; i + 1 < dims_.size(); ++i) {
    const bool last = (i + 2 == dims_.size());
    layers_.emplace_back(dims_[i], dims_[i + 1],
                         last ? output_act : Activation::kRelu, rng);
  }
}

std::size_t Mlp::in_dim() const { return layers_.front().in_dim(); }
std::size_t Mlp::out_dim() const { return layers_.back().out_dim(); }

const Dense& Mlp::layer(std::size_t i) const {
  IMARS_REQUIRE(i < layers_.size(), "Mlp::layer out of range");
  return layers_[i];
}

Dense& Mlp::mutable_layer(std::size_t i) {
  IMARS_REQUIRE(i < layers_.size(), "Mlp::mutable_layer out of range");
  return layers_[i];
}

std::size_t Mlp::parameter_count() const noexcept {
  std::size_t total = 0;
  for (const auto& l : layers_)
    total += l.weight().size() + l.bias().size();
  return total;
}

tensor::Vector Mlp::forward(std::span<const float> x) {
  tensor::Vector v(x.begin(), x.end());
  for (auto& l : layers_) v = l.forward(v);
  return v;
}

tensor::Vector Mlp::infer(std::span<const float> x) const {
  tensor::Vector v(x.begin(), x.end());
  for (const auto& l : layers_) v = l.infer(v);
  return v;
}

tensor::Vector Mlp::backward(std::span<const float> grad_out) {
  tensor::Vector g(grad_out.begin(), grad_out.end());
  for (auto it = layers_.rbegin(); it != layers_.rend(); ++it)
    g = it->backward(g);
  return g;
}

void Mlp::apply_sgd(float lr) {
  for (auto& l : layers_) l.apply_sgd(lr);
}

void Mlp::zero_grad() {
  for (auto& l : layers_) l.zero_grad();
}

}  // namespace imars::nn
