// Sequential MLP container matching the paper's DNN-stack configurations.
#pragma once

#include <cstddef>
#include <initializer_list>
#include <span>
#include <vector>

#include "nn/layer.hpp"

namespace imars::nn {

/// A stack of Dense layers, e.g. Mlp({128, 64, 32}) builds the paper's
/// 128-64-32 filtering network (ReLU between hidden layers, configurable
/// output activation).
class Mlp {
 public:
  /// dims = {in, h1, ..., out}; needs at least {in, out}.
  Mlp(std::vector<std::size_t> dims, Activation output_act,
      util::Xoshiro256& rng);

  std::size_t in_dim() const;
  std::size_t out_dim() const;
  std::size_t layer_count() const noexcept { return layers_.size(); }
  const Dense& layer(std::size_t i) const;
  Dense& mutable_layer(std::size_t i);

  /// Total trainable parameters (weights + biases).
  std::size_t parameter_count() const noexcept;

  /// Layer widths {in, h1, ..., out} as constructed.
  const std::vector<std::size_t>& dims() const noexcept { return dims_; }

  tensor::Vector forward(std::span<const float> x);
  tensor::Vector infer(std::span<const float> x) const;

  /// Backward through all layers; returns dLoss/dInput.
  tensor::Vector backward(std::span<const float> grad_out);

  void apply_sgd(float lr);
  void zero_grad();

 private:
  std::vector<std::size_t> dims_;
  std::vector<Dense> layers_;
};

}  // namespace imars::nn
