#include "nn/optimizer.hpp"

#include <cmath>

#include "util/error.hpp"

namespace imars::nn {

LrSchedule::LrSchedule(float base_lr, float decay, std::size_t interval)
    : base_lr_(base_lr), decay_(decay), interval_(interval) {
  IMARS_REQUIRE(base_lr > 0.0f, "LrSchedule: base_lr must be positive");
  IMARS_REQUIRE(decay > 0.0f && decay <= 1.0f, "LrSchedule: decay in (0,1]");
  IMARS_REQUIRE(interval > 0, "LrSchedule: interval must be positive");
}

float LrSchedule::at(std::size_t step) const noexcept {
  const auto k = static_cast<float>(step / interval_);
  return base_lr_ * std::pow(decay_, k);
}

}  // namespace imars::nn
