// Learning-rate schedules for the small training loops.
//
// Parameter updates themselves live on the layers (Dense::apply_sgd,
// EmbeddingTable::apply_sgd); this header only provides the schedule,
// which keeps optimizer state management trivial and deterministic.
#pragma once

#include <cstddef>

namespace imars::nn {

/// Step-decay learning-rate schedule: lr = base * decay^(step / interval).
class LrSchedule {
 public:
  LrSchedule(float base_lr, float decay, std::size_t interval);

  /// Learning rate for the given global step (0-based).
  float at(std::size_t step) const noexcept;

 private:
  float base_lr_;
  float decay_;
  std::size_t interval_;
};

}  // namespace imars::nn
