#include "nn/serialize.hpp"

#include <cstring>
#include <istream>
#include <ostream>

#include "util/error.hpp"
#include "util/rng.hpp"

namespace imars::nn {

namespace {

// Primitive little-endian writers/readers. The simulator only targets
// little-endian hosts (checked at startup of load paths).
void check_endianness() {
  const std::uint32_t probe = 0x01020304u;
  std::uint8_t bytes[4];
  std::memcpy(bytes, &probe, 4);
  IMARS_REQUIRE(bytes[0] == 0x04, "serialize: big-endian hosts unsupported");
}

template <class T>
void write_pod(std::ostream& os, T value) {
  os.write(reinterpret_cast<const char*>(&value), sizeof(T));
}

template <class T>
T read_pod(std::istream& is) {
  T value{};
  is.read(reinterpret_cast<char*>(&value), sizeof(T));
  IMARS_REQUIRE(is.good(), "serialize: unexpected end of stream");
  return value;
}

void write_header(std::ostream& os, std::uint32_t magic) {
  write_pod(os, magic);
  write_pod(os, kSerializeVersion);
}

void read_header(std::istream& is, std::uint32_t magic, const char* what) {
  check_endianness();
  const auto got_magic = read_pod<std::uint32_t>(is);
  IMARS_REQUIRE(got_magic == magic,
                std::string("serialize: bad magic while loading ") + what);
  const auto version = read_pod<std::uint32_t>(is);
  IMARS_REQUIRE(version == kSerializeVersion,
                std::string("serialize: unsupported version for ") + what);
}

constexpr std::uint32_t kMagicMatrix = 0x584d5449u;   // "ITMX"
constexpr std::uint32_t kMagicQMatrix = 0x584d5149u;  // "IQMX"
constexpr std::uint32_t kMagicMlp = 0x504c4d49u;      // "IMLP"
constexpr std::uint32_t kMagicEmb = 0x424d4549u;      // "IEMB"

}  // namespace

void save(std::ostream& os, const tensor::Matrix& m) {
  write_header(os, kMagicMatrix);
  write_pod<std::uint64_t>(os, m.rows());
  write_pod<std::uint64_t>(os, m.cols());
  os.write(reinterpret_cast<const char*>(m.data().data()),
           static_cast<std::streamsize>(m.data().size() * sizeof(float)));
}

tensor::Matrix load_matrix(std::istream& is) {
  read_header(is, kMagicMatrix, "Matrix");
  const auto rows = read_pod<std::uint64_t>(is);
  const auto cols = read_pod<std::uint64_t>(is);
  tensor::Matrix m(rows, cols);
  is.read(reinterpret_cast<char*>(m.data().data()),
          static_cast<std::streamsize>(m.data().size() * sizeof(float)));
  IMARS_REQUIRE(is.good(), "serialize: truncated Matrix payload");
  return m;
}

void save(std::ostream& os, const tensor::QMatrix& m) {
  write_header(os, kMagicQMatrix);
  write_pod<std::uint64_t>(os, m.rows());
  write_pod<std::uint64_t>(os, m.cols());
  write_pod<float>(os, m.params().scale);
  for (std::size_t r = 0; r < m.rows(); ++r) {
    const auto row = m.row(r);
    os.write(reinterpret_cast<const char*>(row.data()),
             static_cast<std::streamsize>(row.size()));
  }
}

tensor::QMatrix load_qmatrix(std::istream& is) {
  read_header(is, kMagicQMatrix, "QMatrix");
  const auto rows = read_pod<std::uint64_t>(is);
  const auto cols = read_pod<std::uint64_t>(is);
  const auto scale = read_pod<float>(is);
  tensor::QMatrix m(rows, cols, util::QuantParams{scale});
  for (std::size_t r = 0; r < rows; ++r) {
    auto row = m.row(r);
    is.read(reinterpret_cast<char*>(row.data()),
            static_cast<std::streamsize>(row.size()));
  }
  IMARS_REQUIRE(is.good(), "serialize: truncated QMatrix payload");
  return m;
}

void save(std::ostream& os, const Mlp& mlp) {
  write_header(os, kMagicMlp);
  write_pod<std::uint64_t>(os, mlp.dims().size());
  for (auto d : mlp.dims()) write_pod<std::uint64_t>(os, d);
  write_pod<std::uint8_t>(
      os, static_cast<std::uint8_t>(
              mlp.layer(mlp.layer_count() - 1).activation()));
  for (std::size_t li = 0; li < mlp.layer_count(); ++li) {
    const Dense& l = mlp.layer(li);
    save(os, l.weight());
    write_pod<std::uint64_t>(os, l.bias().size());
    os.write(reinterpret_cast<const char*>(l.bias().data()),
             static_cast<std::streamsize>(l.bias().size() * sizeof(float)));
  }
}

Mlp load_mlp(std::istream& is) {
  read_header(is, kMagicMlp, "Mlp");
  const auto ndims = read_pod<std::uint64_t>(is);
  IMARS_REQUIRE(ndims >= 2 && ndims < 64, "serialize: implausible Mlp dims");
  std::vector<std::size_t> dims(ndims);
  for (auto& d : dims) d = read_pod<std::uint64_t>(is);
  const auto out_act = static_cast<Activation>(read_pod<std::uint8_t>(is));

  // Construct with throwaway init, then overwrite parameters.
  util::Xoshiro256 rng(0);
  Mlp mlp(dims, out_act, rng);
  for (std::size_t li = 0; li < mlp.layer_count(); ++li) {
    Dense& l = mlp.mutable_layer(li);
    tensor::Matrix w = load_matrix(is);
    IMARS_REQUIRE(w.rows() == l.out_dim() && w.cols() == l.in_dim(),
                  "serialize: Mlp layer shape mismatch");
    l.mutable_weight() = std::move(w);
    const auto bias_len = read_pod<std::uint64_t>(is);
    IMARS_REQUIRE(bias_len == l.out_dim(), "serialize: Mlp bias mismatch");
    is.read(reinterpret_cast<char*>(l.mutable_bias().data()),
            static_cast<std::streamsize>(bias_len * sizeof(float)));
  }
  IMARS_REQUIRE(is.good(), "serialize: truncated Mlp payload");
  return mlp;
}

void save(std::ostream& os, const EmbeddingTable& table) {
  write_header(os, kMagicEmb);
  save(os, table.matrix());
}

EmbeddingTable load_embedding_table(std::istream& is) {
  read_header(is, kMagicEmb, "EmbeddingTable");
  tensor::Matrix m = load_matrix(is);
  util::Xoshiro256 rng(0);
  EmbeddingTable table(m.rows(), m.cols(), rng);
  for (std::size_t r = 0; r < m.rows(); ++r) table.set_row(r, m.row(r));
  return table;
}

}  // namespace imars::nn
