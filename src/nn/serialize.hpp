// Binary (de)serialization of trained model state.
//
// Format: little-endian, versioned, with a per-object magic tag so that a
// stream of heterogeneous objects fails loudly on any mismatch. Intended
// for checkpointing the (slow-to-train) RecSys models between the bench
// runs and for shipping pre-trained weights with applications.
#pragma once

#include <iosfwd>

#include "nn/embedding.hpp"
#include "nn/mlp.hpp"
#include "tensor/qtensor.hpp"
#include "tensor/tensor.hpp"

namespace imars::nn {

/// Serialization format version (bumped on layout changes).
inline constexpr std::uint32_t kSerializeVersion = 1;

// Matrices ------------------------------------------------------------------

void save(std::ostream& os, const tensor::Matrix& m);
tensor::Matrix load_matrix(std::istream& is);

void save(std::ostream& os, const tensor::QMatrix& m);
tensor::QMatrix load_qmatrix(std::istream& is);

// Model components -----------------------------------------------------------

/// Saves weights, biases and activation kinds (not gradients).
void save(std::ostream& os, const Mlp& mlp);

/// Loads an MLP saved by save(). The architecture (dims, activations) is
/// restored from the stream.
Mlp load_mlp(std::istream& is);

void save(std::ostream& os, const EmbeddingTable& table);
EmbeddingTable load_embedding_table(std::istream& is);

}  // namespace imars::nn
