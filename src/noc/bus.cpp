#include "noc/bus.hpp"

#include "util/error.hpp"

namespace imars::noc {

using device::Component;
using device::Ns;

RscBus::RscBus(const device::DeviceProfile& profile,
               device::EnergyLedger* ledger)
    : profile_(&profile), ledger_(ledger), width_bits_(profile.rsc_bus_bits) {
  IMARS_REQUIRE(ledger != nullptr, "RscBus: ledger must not be null");
  IMARS_REQUIRE(width_bits_ > 0, "RscBus: zero width");
}

std::size_t RscBus::cycles_for(std::size_t bytes) const noexcept {
  return (bytes * 8 + width_bits_ - 1) / width_bits_;
}

Ns RscBus::transfer(std::size_t bytes) {
  const std::size_t cycles = cycles_for(bytes);
  total_cycles_ += cycles;
  ledger_->charge(Component::kRscBus,
                  profile_->rsc_energy * static_cast<double>(cycles), cycles);
  return profile_->rsc_cycle * static_cast<double>(cycles);
}

IbcNetwork::IbcNetwork(const device::DeviceProfile& profile,
                       device::EnergyLedger* ledger)
    : profile_(&profile),
      ledger_(ledger),
      shot_bytes_(profile.ibc_shot_bytes) {
  IMARS_REQUIRE(ledger != nullptr, "IbcNetwork: ledger must not be null");
  IMARS_REQUIRE(shot_bytes_ > 0, "IbcNetwork: zero shot size");
}

std::size_t IbcNetwork::shots_for_words(std::size_t words) const noexcept {
  const std::size_t bytes = words * 32;  // one word = 256 bit = 32 B
  return (bytes + shot_bytes_ - 1) / shot_bytes_;
}

Ns IbcNetwork::transfer_words(std::size_t words) {
  const std::size_t shots = shots_for_words(words);
  total_shots_ += shots;
  ledger_->charge(Component::kIbcNetwork,
                  profile_->ibc_energy * static_cast<double>(shots), shots);
  return profile_->ibc_cycle * static_cast<double>(shots);
}

}  // namespace imars::noc
