// Communication fabric of iMARS (Sec III-A3).
//
// Two channels exist:
//   * the RSC (RecSys Communication) bus moves data between functional
//     blocks (ET banks <-> crossbar banks <-> buffers); it is 256 bits wide
//     and transfers serialize to keep wiring area low;
//   * the IBC (Intra-Bank Communication) network moves mat outputs to the
//     intra-bank adder tree in shots of 128 bytes (four 256-bit words, the
//     adder tree's fan-in); when more than four mats contribute, shots
//     serialize.
//
// Both are cycle-counting cost models: transfer(bytes) returns the
// serialized latency and charges per-cycle energy. The actual payload
// movement is implicit — functional data flows through ordinary C++ values;
// the NoC accounts for the time/energy the wires would take.
#pragma once

#include <cstddef>

#include "device/ledger.hpp"
#include "device/profile.hpp"

namespace imars::noc {

/// 256-bit-wide serialized system bus.
class RscBus {
 public:
  RscBus(const device::DeviceProfile& profile, device::EnergyLedger* ledger);

  std::size_t width_bits() const noexcept { return width_bits_; }

  /// Serialized transfer of `bytes`: ceil(bytes*8/width) bus cycles.
  device::Ns transfer(std::size_t bytes);

  /// Cycles a transfer of `bytes` would take (no charge).
  std::size_t cycles_for(std::size_t bytes) const noexcept;

  /// Total cycles transferred so far.
  std::size_t total_cycles() const noexcept { return total_cycles_; }

 private:
  const device::DeviceProfile* profile_;
  device::EnergyLedger* ledger_;
  std::size_t width_bits_;
  std::size_t total_cycles_ = 0;
};

/// Intra-bank network: fixed 128-byte shots feeding the intra-bank adder.
class IbcNetwork {
 public:
  IbcNetwork(const device::DeviceProfile& profile, device::EnergyLedger* ledger);

  std::size_t shot_bytes() const noexcept { return shot_bytes_; }

  /// Transfers `words` 256-bit mat outputs: ceil(words / 4) shots.
  device::Ns transfer_words(std::size_t words);

  /// Shots needed for `words` 256-bit outputs (no charge).
  std::size_t shots_for_words(std::size_t words) const noexcept;

  std::size_t total_shots() const noexcept { return total_shots_; }

 private:
  const device::DeviceProfile* profile_;
  device::EnergyLedger* ledger_;
  std::size_t shot_bytes_;
  std::size_t total_shots_ = 0;
};

}  // namespace imars::noc
