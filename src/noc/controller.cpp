#include "noc/controller.hpp"

#include "util/error.hpp"

namespace imars::noc {

using device::Component;

Controller::Controller(const device::DeviceProfile& profile,
                       device::EnergyLedger* ledger)
    : profile_(&profile), ledger_(ledger) {
  IMARS_REQUIRE(ledger != nullptr, "Controller: ledger must not be null");
}

std::vector<MatGroup> Controller::schedule(std::size_t active_banks,
                                           std::size_t mats_per_bank,
                                           std::size_t group_size) {
  IMARS_REQUIRE(group_size >= 2, "Controller: group size >= 2");
  std::vector<MatGroup> out;
  for (std::size_t b = 0; b < active_banks; ++b) {
    std::size_t mat = 0;
    bool first = true;
    while (mat < mats_per_bank) {
      // After the first group the running sum loops back into the adder,
      // leaving group_size - 1 slots for new mat outputs.
      const std::size_t capacity = first ? group_size : group_size - 1;
      const std::size_t count = std::min(capacity, mats_per_bank - mat);
      out.push_back({b, mat, count});
      mat += count;
      first = false;
      ++decisions_;
      ledger_->charge(Component::kController, profile_->controller_energy);
    }
  }
  return out;
}

}  // namespace imars::noc
