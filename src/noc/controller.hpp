// The CTRL block (Sec III-A3): a clock generator and two counters that fix
// the order in which banks and mats stream outputs to the intra-bank adder
// tree. Data packets always travel in a predetermined order — Bank b:
// Mat-1, Mat-2, ..., Mat-M in groups of four — which removes the need for
// routers and makes accesses conflict-free.
#pragma once

#include <cstddef>
#include <vector>

#include "device/ledger.hpp"
#include "device/profile.hpp"

namespace imars::noc {

/// One scheduled IBC transfer: mats [first_mat, first_mat+count) of `bank`
/// stream their outputs as one group (one IBC shot + one adder round).
struct MatGroup {
  std::size_t bank = 0;
  std::size_t first_mat = 0;
  std::size_t count = 0;
};

/// Deterministic scheduler for intra-bank accumulation traffic.
class Controller {
 public:
  Controller(const device::DeviceProfile& profile,
             device::EnergyLedger* ledger);

  /// Produces the fixed round-robin schedule for `active_banks` banks each
  /// streaming `mats_per_bank` mat outputs in groups of `group_size`
  /// (the intra-bank adder fan-in). Charges one controller decision per
  /// group. First group of a bank has up to `group_size` mats; later groups
  /// `group_size - 1` (the running sum occupies one adder input).
  std::vector<MatGroup> schedule(std::size_t active_banks,
                                 std::size_t mats_per_bank,
                                 std::size_t group_size);

  /// Counter state exposed for tests: total scheduling decisions made.
  std::size_t decisions() const noexcept { return decisions_; }

 private:
  const device::DeviceProfile* profile_;
  device::EnergyLedger* ledger_;
  std::size_t decisions_ = 0;
};

}  // namespace imars::noc
