#include "recsys/dlrm.hpp"

#include <algorithm>
#include <numeric>

#include "nn/loss.hpp"
#include "util/error.hpp"

namespace imars::recsys {

namespace {
std::vector<std::size_t> make_dims(std::size_t in,
                                   const std::vector<std::size_t>& hidden,
                                   std::size_t out) {
  std::vector<std::size_t> dims{in};
  dims.insert(dims.end(), hidden.begin(), hidden.end());
  if (dims.back() != out) dims.push_back(out);
  return dims;
}
}  // namespace

Dlrm::Dlrm(const data::DatasetSchema& schema, const DlrmConfig& cfg)
    : cfg_(cfg),
      schema_(schema),
      top_in_dim_((schema.user_item.size() + 1) * schema.user_item.size() / 2 +
                  cfg.emb_dim),
      bottom_([&] {
        IMARS_REQUIRE(!cfg.bottom_hidden.empty() &&
                          cfg.bottom_hidden.back() == cfg.emb_dim,
                      "Dlrm: bottom MLP must end at emb_dim for interactions");
        util::Xoshiro256 rng(cfg.seed);
        return nn::Mlp(make_dims(schema.dense_dim, cfg.bottom_hidden,
                                 cfg.emb_dim),
                       nn::Activation::kRelu, rng);
      }()),
      top_([&] {
        util::Xoshiro256 rng(cfg.seed + 1);
        return nn::Mlp(make_dims(top_in_dim_, cfg.top_hidden, 1),
                       nn::Activation::kSigmoid, rng);
      }()) {
  IMARS_REQUIRE(!schema.user_item.empty(), "Dlrm: need sparse features");
  util::Xoshiro256 rng(cfg.seed + 2);
  tables_.reserve(schema.user_item.size());
  for (const auto& spec : schema.user_item)
    tables_.emplace_back(spec.cardinality, cfg.emb_dim, rng);
}

const nn::EmbeddingTable& Dlrm::table(std::size_t f) const {
  IMARS_REQUIRE(f < tables_.size(), "Dlrm::table out of range");
  return tables_[f];
}

tensor::Vector Dlrm::interact(std::span<const tensor::Vector> embs,
                              std::span<const float> bottom_out) const {
  IMARS_REQUIRE(embs.size() == tables_.size(), "Dlrm::interact: feature count");
  IMARS_REQUIRE(bottom_out.size() == cfg_.emb_dim,
                "Dlrm::interact: bottom width");
  // V = [emb_0, ..., emb_25, bottom]; z = [V_i . V_j for i < j] ++ bottom.
  const std::size_t n = embs.size() + 1;
  std::vector<std::span<const float>> v;
  v.reserve(n);
  for (const auto& e : embs) v.emplace_back(e);
  v.emplace_back(bottom_out);

  tensor::Vector out;
  out.reserve(top_in_dim_);
  for (std::size_t i = 0; i < n; ++i)
    for (std::size_t j = i + 1; j < n; ++j)
      out.push_back(tensor::dot(v[i], v[j]));
  out.insert(out.end(), bottom_out.begin(), bottom_out.end());
  IMARS_REQUIRE(out.size() == top_in_dim_, "Dlrm::interact: size mismatch");
  return out;
}

float Dlrm::infer(const tensor::Vector& dense,
                  std::span<const std::size_t> sparse) const {
  IMARS_REQUIRE(sparse.size() == tables_.size(), "Dlrm::infer: sparse count");
  const tensor::Vector b = bottom_.infer(dense);
  std::vector<tensor::Vector> embs;
  embs.reserve(tables_.size());
  for (std::size_t f = 0; f < tables_.size(); ++f) {
    const auto r = tables_[f].row(sparse[f]);
    embs.emplace_back(r.begin(), r.end());
  }
  return top_.infer(interact(embs, b))[0];
}

float Dlrm::train_step(const data::CriteoSample& sample) {
  const std::size_t nf = tables_.size();
  IMARS_REQUIRE(sample.sparse.size() == nf, "Dlrm::train_step: sparse count");

  // Forward.
  const tensor::Vector b = bottom_.forward(sample.dense);
  std::vector<tensor::Vector> embs;
  embs.reserve(nf);
  for (std::size_t f = 0; f < nf; ++f) {
    const auto r = tables_[f].row(sample.sparse[f]);
    embs.emplace_back(r.begin(), r.end());
  }
  const tensor::Vector x = interact(embs, b);
  const float p = top_.forward(x)[0];

  float gp = 0.0f;
  const float loss = nn::bce_loss(p, static_cast<float>(sample.label), &gp);

  // Backward through the top MLP.
  const tensor::Vector grad_x = top_.backward(tensor::Vector{gp});

  // Backward through the interaction layer: V = [embs..., b].
  const std::size_t n = nf + 1;
  std::vector<tensor::Vector> grad_v(n, tensor::Vector(cfg_.emb_dim, 0.0f));
  std::size_t z = 0;
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = i + 1; j < n; ++j, ++z) {
      const float g = grad_x[z];
      const auto& vi = (i < nf) ? embs[i] : b;
      const auto& vj = (j < nf) ? embs[j] : b;
      for (std::size_t c = 0; c < cfg_.emb_dim; ++c) {
        grad_v[i][c] += g * vj[c];
        grad_v[j][c] += g * vi[c];
      }
    }
  }
  // Direct concat path of the bottom output.
  for (std::size_t c = 0; c < cfg_.emb_dim; ++c)
    grad_v[n - 1][c] += grad_x[z + c];

  // Embedding updates.
  for (std::size_t f = 0; f < nf; ++f) {
    const std::size_t idx[1] = {sample.sparse[f]};
    tables_[f].accumulate_grad(idx, nn::Pooling::kSum, grad_v[f]);
  }
  // Bottom MLP update.
  bottom_.backward(grad_v[n - 1]);

  top_.apply_sgd(cfg_.lr);
  bottom_.apply_sgd(cfg_.lr);
  for (auto& t : tables_) t.apply_sgd(cfg_.lr);
  return loss;
}

float Dlrm::train_epoch(const data::CriteoSynth& ds, util::Xoshiro256& rng) {
  std::vector<std::size_t> order(ds.size());
  std::iota(order.begin(), order.end(), 0);
  std::shuffle(order.begin(), order.end(), rng);
  double total = 0.0;
  for (auto i : order) total += train_step(ds.sample(i));
  return static_cast<float>(total / static_cast<double>(order.size()));
}

}  // namespace imars::recsys
