// Facebook DLRM ranking model (Naumov et al., 2019), as configured in the
// paper's Table I for Criteo Kaggle:
//   * bottom MLP 256-128-32 processes the 13 dense features,
//   * 26 embedding tables (one per categorical feature, 32-d int8 on chip),
//   * pairwise dot-product feature interactions over the 26 embeddings plus
//     the bottom-MLP output,
//   * top MLP 256-64-1 maps interactions + bottom output to the CTR.
#pragma once

#include <cstddef>
#include <vector>

#include "data/criteo.hpp"
#include "data/schema.hpp"
#include "nn/embedding.hpp"
#include "nn/mlp.hpp"
#include "recsys/types.hpp"

namespace imars::recsys {

/// Hyper-parameters. Defaults mirror Table I.
struct DlrmConfig {
  std::size_t emb_dim = 32;
  std::vector<std::size_t> bottom_hidden = {256, 128, 32};  ///< paper config
  std::vector<std::size_t> top_hidden = {256, 64};          ///< paper: 256-64-1
  float lr = 0.02f;
  std::uint64_t seed = 99;
};

/// Trainable DLRM.
class Dlrm {
 public:
  Dlrm(const data::DatasetSchema& schema, const DlrmConfig& cfg);

  const DlrmConfig& config() const noexcept { return cfg_; }
  const data::DatasetSchema& schema() const noexcept { return schema_; }

  std::size_t table_count() const noexcept { return tables_.size(); }
  const nn::EmbeddingTable& table(std::size_t f) const;
  const nn::Mlp& bottom_mlp() const noexcept { return bottom_; }
  const nn::Mlp& top_mlp() const noexcept { return top_; }

  /// Feature-interaction layer: pairwise dots of {emb_0..emb_25, bottom}
  /// concatenated with the bottom output. Exposed so hardware backends can
  /// reproduce the exact same arithmetic.
  tensor::Vector interact(std::span<const tensor::Vector> embs,
                          std::span<const float> bottom_out) const;

  /// Top-MLP input width (= 27*26/2 pair dots + emb_dim).
  std::size_t top_input_dim() const noexcept { return top_in_dim_; }

  /// Predicted CTR (float reference path).
  float infer(const tensor::Vector& dense,
              std::span<const std::size_t> sparse) const;

  /// One SGD step on one sample; returns the BCE loss.
  float train_step(const data::CriteoSample& sample);

  /// One epoch over the dataset; returns mean loss.
  float train_epoch(const data::CriteoSynth& ds, util::Xoshiro256& rng);

 private:
  DlrmConfig cfg_;
  data::DatasetSchema schema_;
  std::vector<nn::EmbeddingTable> tables_;
  std::size_t top_in_dim_ = 0;
  nn::Mlp bottom_;
  nn::Mlp top_;
};

}  // namespace imars::recsys
