#include "recsys/metrics.hpp"

#include <algorithm>
#include <unordered_set>

#include "util/error.hpp"

namespace imars::recsys {

double hit_rate(
    std::size_t num_users,
    const std::function<std::vector<std::size_t>(std::size_t user)>& retrieve,
    const std::function<std::size_t(std::size_t user)>& heldout) {
  IMARS_REQUIRE(num_users > 0, "hit_rate: need at least one user");
  std::size_t hits = 0;
  for (std::size_t u = 0; u < num_users; ++u) {
    const auto items = retrieve(u);
    const std::size_t target = heldout(u);
    if (std::find(items.begin(), items.end(), target) != items.end()) ++hits;
  }
  return static_cast<double>(hits) / static_cast<double>(num_users);
}

double recall(std::span<const std::size_t> retrieved,
              std::span<const std::size_t> relevant) {
  if (relevant.empty()) return 0.0;
  const std::unordered_set<std::size_t> got(retrieved.begin(),
                                            retrieved.end());
  std::size_t inter = 0;
  for (auto r : relevant)
    if (got.contains(r)) ++inter;
  return static_cast<double>(inter) / static_cast<double>(relevant.size());
}

}  // namespace imars::recsys
