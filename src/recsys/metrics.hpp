// Accuracy metrics for the Sec IV-B experiment.
#pragma once

#include <cstddef>
#include <functional>
#include <span>
#include <vector>

namespace imars::recsys {

/// Hit rate (paper Sec IV-B: "# of hits divided by # of test users"):
/// for each test user, `retrieve` returns candidate item ids; a hit is the
/// user's held-out item appearing among them.
double hit_rate(
    std::size_t num_users,
    const std::function<std::vector<std::size_t>(std::size_t user)>& retrieve,
    const std::function<std::size_t(std::size_t user)>& heldout);

/// Recall@set for a single query: |retrieved ∩ relevant| / |relevant|.
double recall(std::span<const std::size_t> retrieved,
              std::span<const std::size_t> relevant);

}  // namespace imars::recsys
