#include "recsys/trainer.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <numeric>

#include "recsys/metrics.hpp"
#include "util/error.hpp"
#include "util/stats.hpp"

namespace imars::recsys {

namespace {

// Local brute-force cosine top-k (the baseline module hosts the shared
// oracle, but baseline depends on recsys, so the trainer keeps its own
// 15-line copy instead of inverting the dependency).
std::vector<std::size_t> topk_cosine_local(const tensor::Matrix& items,
                                           std::span<const float> query,
                                           std::size_t k) {
  std::vector<float> scores(items.rows());
  for (std::size_t r = 0; r < items.rows(); ++r)
    scores[r] = tensor::cosine(items.row(r), query);
  std::vector<std::size_t> idx(items.rows());
  std::iota(idx.begin(), idx.end(), 0);
  k = std::min(k, idx.size());
  std::partial_sort(idx.begin(), idx.begin() + static_cast<std::ptrdiff_t>(k),
                    idx.end(), [&](std::size_t a, std::size_t b) {
                      if (scores[a] != scores[b]) return scores[a] > scores[b];
                      return a < b;
                    });
  idx.resize(k);
  return idx;
}

// Generic epoch loop: runs `epoch_fn`, evaluates `metric_fn` on schedule,
// tracks the best metric and applies patience-based early stopping.
TrainResult run_loop(const TrainOptions& options,
                     const std::function<float(util::Xoshiro256&)>& epoch_fn,
                     const std::function<double()>& metric_fn) {
  IMARS_REQUIRE(options.max_epochs > 0, "train: max_epochs must be positive");
  util::Xoshiro256 rng(options.seed);

  TrainResult result;
  result.best_metric = -std::numeric_limits<double>::infinity();
  std::size_t evals_since_best = 0;

  for (std::size_t e = 0; e < options.max_epochs; ++e) {
    EpochStats stats;
    stats.epoch = e;
    stats.loss = epoch_fn(rng);
    stats.metric = std::numeric_limits<double>::quiet_NaN();

    const bool eval_now =
        options.eval_every > 0 && ((e + 1) % options.eval_every == 0);
    if (eval_now) {
      stats.metric = metric_fn();
      if (stats.metric > result.best_metric) {
        result.best_metric = stats.metric;
        result.best_epoch = e;
        evals_since_best = 0;
      } else {
        ++evals_since_best;
      }
    }
    if (options.on_epoch) options.on_epoch(stats);
    result.history.push_back(stats);

    if (options.patience > 0 && evals_since_best >= options.patience) {
      result.early_stopped = true;
      break;
    }
  }
  return result;
}

}  // namespace

TrainResult train_filter(YoutubeDnn& model, const data::MovieLensSynth& ds,
                         const TrainOptions& options, std::size_t hr_topn) {
  return run_loop(
      options,
      [&](util::Xoshiro256& rng) { return model.train_filter_epoch(ds, rng); },
      [&] {
        return hit_rate(
            ds.num_users(),
            [&](std::size_t u) {
              const auto ctx = model.make_context(ds, u);
              return topk_cosine_local(model.item_table().matrix(),
                                       model.user_embedding(ctx), hr_topn);
            },
            [&](std::size_t u) { return ds.user(u).heldout; });
      });
}

TrainResult train_rank(YoutubeDnn& model, const data::MovieLensSynth& ds,
                       const TrainOptions& options) {
  // The metric is -loss of the last epoch: higher is better.
  float last_loss = 0.0f;
  return run_loop(
      options,
      [&](util::Xoshiro256& rng) {
        last_loss = model.train_rank_epoch(ds, rng);
        return last_loss;
      },
      [&] { return -static_cast<double>(last_loss); });
}

TrainResult train_dlrm(Dlrm& model, const data::CriteoSynth& ds,
                       const TrainOptions& options) {
  return run_loop(
      options,
      [&](util::Xoshiro256& rng) { return model.train_epoch(ds, rng); },
      [&] {
        std::vector<int> labels;
        std::vector<double> scores;
        labels.reserve(ds.size());
        scores.reserve(ds.size());
        for (std::size_t i = 0; i < ds.size(); ++i) {
          labels.push_back(ds.sample(i).label);
          scores.push_back(
              model.infer(ds.sample(i).dense, ds.sample(i).sparse));
        }
        return util::auc(labels, scores);
      });
}

}  // namespace imars::recsys
