// Training drivers with evaluation callbacks and early stopping.
//
// The benches and examples train the same two models over and over; this
// driver centralizes the loop: epoch scheduling, loss tracking, periodic
// hit-rate evaluation, and patience-based early stopping.
#pragma once

#include <cstddef>
#include <functional>
#include <vector>

#include "data/movielens.hpp"
#include "recsys/dlrm.hpp"
#include "recsys/youtube_dnn.hpp"

namespace imars::recsys {

/// Progress record for one epoch.
struct EpochStats {
  std::size_t epoch = 0;
  float loss = 0.0f;
  double metric = 0.0;  ///< eval metric (HR / AUC) if evaluated, else NaN
};

/// Training options.
struct TrainOptions {
  std::size_t max_epochs = 10;
  std::size_t eval_every = 0;   ///< 0 = never evaluate during training
  std::size_t patience = 0;     ///< 0 = no early stopping; else stop after
                                ///< `patience` evaluations without improvement
  std::uint64_t seed = 1;
  /// Called after every epoch (logging); may be empty.
  std::function<void(const EpochStats&)> on_epoch;
};

/// Result of a training run.
struct TrainResult {
  std::vector<EpochStats> history;
  double best_metric = 0.0;
  std::size_t best_epoch = 0;
  bool early_stopped = false;
};

/// Trains the filtering stage of a YouTubeDNN with optional HR@n evaluation
/// (leave-one-out over all users, fp32 cosine retrieval).
TrainResult train_filter(YoutubeDnn& model, const data::MovieLensSynth& ds,
                         const TrainOptions& options, std::size_t hr_topn = 10);

/// Trains the ranking stage of a YouTubeDNN (BCE loss; metric = -loss so
/// early stopping still "maximizes").
TrainResult train_rank(YoutubeDnn& model, const data::MovieLensSynth& ds,
                       const TrainOptions& options);

/// Trains a DLRM with optional AUC evaluation over the training set.
TrainResult train_dlrm(Dlrm& model, const data::CriteoSynth& ds,
                       const TrainOptions& options);

}  // namespace imars::recsys
