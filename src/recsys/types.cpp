#include "recsys/types.hpp"

#include "util/error.hpp"

namespace imars::recsys {

std::string_view op_name(OpKind k) {
  switch (k) {
    case OpKind::kEtLookup: return "ET Lookup";
    case OpKind::kDnn: return "DNN Stack";
    case OpKind::kNns: return "NNS";
    case OpKind::kTopK: return "TopK";
    case OpKind::kComm: return "Comm";
    case OpKind::kEtWrite: return "ET Write";
    case OpKind::kEtBlock: return "ET Block Fetch";
    case OpKind::kCount: break;
  }
  return "unknown";
}

OpCost StageStats::total() const {
  OpCost t;
  for (const auto& c : ops) t += c;
  return t;
}

void StageStats::merge(const StageStats& other) {
  for (std::size_t i = 0; i < ops.size(); ++i) ops[i] += other.ops[i];
}

std::vector<tensor::Vector> CtrBackend::gather_tower(
    std::span<const std::size_t>, StageStats*) {
  IMARS_REQUIRE(false, std::string(name()) +
                           ": staged tower scoring is not supported");
  return {};
}

tensor::Vector CtrBackend::dense_tower(const tensor::Vector&, StageStats*) {
  IMARS_REQUIRE(false, std::string(name()) +
                           ": staged tower scoring is not supported");
  return {};
}

float CtrBackend::interact_top(std::span<const tensor::Vector>,
                               const tensor::Vector&, StageStats*) {
  IMARS_REQUIRE(false, std::string(name()) +
                           ": staged tower scoring is not supported");
  return 0.0f;
}

std::vector<ScoredItem> recommend(FilterRankBackend& backend,
                                  const UserContext& user, std::size_t k,
                                  StageStats* filter_stats,
                                  StageStats* rank_stats) {
  const auto candidates = backend.filter(user, filter_stats);
  return backend.rank(user, candidates, k, rank_stats);
}

}  // namespace imars::recsys
