#include "recsys/types.hpp"

namespace imars::recsys {

std::string_view op_name(OpKind k) {
  switch (k) {
    case OpKind::kEtLookup: return "ET Lookup";
    case OpKind::kDnn: return "DNN Stack";
    case OpKind::kNns: return "NNS";
    case OpKind::kTopK: return "TopK";
    case OpKind::kComm: return "Comm";
    case OpKind::kCount: break;
  }
  return "unknown";
}

OpCost StageStats::total() const {
  OpCost t;
  for (const auto& c : ops) t += c;
  return t;
}

void StageStats::merge(const StageStats& other) {
  for (std::size_t i = 0; i < ops.size(); ++i) ops[i] += other.ops[i];
}

std::vector<ScoredItem> recommend(FilterRankBackend& backend,
                                  const UserContext& user, std::size_t k,
                                  StageStats* filter_stats,
                                  StageStats* rank_stats) {
  const auto candidates = backend.filter(user, filter_stats);
  return backend.rank(user, candidates, k, rank_stats);
}

}  // namespace imars::recsys
