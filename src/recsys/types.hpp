// Shared types of the RecSys pipeline: per-operation cost accounting and the
// backend interfaces implemented by the CPU reference, the GPU cost model
// and the iMARS accelerator.
#pragma once

#include <array>
#include <cstddef>
#include <memory>
#include <span>
#include <string_view>
#include <vector>

#include "device/units.hpp"
#include "tensor/tensor.hpp"

namespace imars::recsys {

/// Operation categories of the paper's breakdown (Fig. 2): embedding-table
/// lookup+pooling, DNN stack, nearest-neighbour search, top-k selection,
/// plus explicit communication (iMARS-only; folded into ops on GPU).
enum class OpKind : std::uint8_t {
  kEtLookup,
  kDnn,
  kNns,
  kTopK,
  kComm,
  /// Embedding-table row *writes*: update write-through to the CMA arrays
  /// and dirty-row flushes out of the periphery write-back buffer (serving
  /// extension). Zero on read-only streams, so adding the category does
  /// not perturb any read-path accounting.
  kEtWrite,
  /// Cold-tier block fetches (tiered embedding memory, serving
  /// extension): a miss whose block is not warm-resident streams a whole
  /// block of rows out of the bulk tier. Zero with tiering disabled, so
  /// adding the category does not perturb any flat-store accounting.
  kEtBlock,
  kCount
};

std::string_view op_name(OpKind k);

/// Latency + energy of one operation category.
struct OpCost {
  device::Ns latency;
  device::Pj energy;

  OpCost& operator+=(const OpCost& o) {
    latency += o.latency;
    energy += o.energy;
    return *this;
  }
};

/// Cost breakdown of one pipeline stage (filtering or ranking).
struct StageStats {
  std::array<OpCost, static_cast<std::size_t>(OpKind::kCount)> ops{};

  OpCost& at(OpKind k) { return ops[static_cast<std::size_t>(k)]; }
  const OpCost& at(OpKind k) const { return ops[static_cast<std::size_t>(k)]; }

  /// Sum over all operation categories.
  OpCost total() const;

  void merge(const StageStats& other);
};

/// One scored candidate item.
struct ScoredItem {
  std::size_t item = 0;
  float score = 0.0f;
};

/// Per-user model inputs (Fig. 1(c)): continuous features, one index list
/// per sparse feature (schema order), and the interaction history.
struct UserContext {
  tensor::Vector dense;
  std::vector<std::vector<std::size_t>> sparse;
  std::vector<std::size_t> history;
};

/// Backend interface for the two-stage (filtering + ranking) pipeline.
/// Implementations: baseline::CpuBackend, baseline::GpuModelBackend,
/// core::ImarsBackend.
class FilterRankBackend {
 public:
  virtual ~FilterRankBackend() = default;

  virtual std::string_view name() const = 0;

  /// Filtering stage: candidate item ids for the user (unordered).
  /// Appends costs to `stats` when non-null.
  virtual std::vector<std::size_t> filter(const UserContext& user,
                                          StageStats* stats) = 0;

  /// Ranking stage: CTR-scored candidates, sorted by descending score,
  /// truncated to `k` (the final top-k of Fig. 1(b)).
  virtual std::vector<ScoredItem> rank(const UserContext& user,
                                       std::span<const std::size_t> candidates,
                                       std::size_t k, StageStats* stats) = 0;
};

/// End-to-end recommendation: filter then rank; fills per-stage stats.
std::vector<ScoredItem> recommend(FilterRankBackend& backend,
                                  const UserContext& user, std::size_t k,
                                  StageStats* filter_stats,
                                  StageStats* rank_stats);

/// Backend interface for the ranking-only (DLRM / Criteo) pipeline.
///
/// Besides the fused `score`, backends may expose the model's *tower*
/// structure — the sparse embedding gather and the dense bottom-MLP run on
/// disjoint hardware (CMA banks vs crossbars) and only join at the feature
/// interaction — so a stage-DAG serving graph can overlap them. A staged
/// backend must satisfy `score(d, s) == interact_top(gather_tower(s),
/// dense_tower(d))` with the three stages' stats summing to the fused
/// stats.
class CtrBackend {
 public:
  virtual ~CtrBackend() = default;
  virtual std::string_view name() const = 0;

  /// Predicted click-through rate of one impression.
  virtual float score(const tensor::Vector& dense,
                      std::span<const std::size_t> sparse,
                      StageStats* stats) = 0;

  /// True when the staged tower API below is implemented.
  virtual bool supports_towers() const { return false; }

  /// Sparse tower: the gathered embedding rows, one per table (ET-lookup
  /// costs). Default: unsupported (throws imars::Error).
  virtual std::vector<tensor::Vector> gather_tower(
      std::span<const std::size_t> sparse, StageStats* stats);

  /// Dense tower: the bottom-MLP output (DNN costs). Default: unsupported.
  virtual tensor::Vector dense_tower(const tensor::Vector& dense,
                                     StageStats* stats);

  /// Join: feature interaction + top MLP over the two towers' outputs
  /// (DNN costs). Default: unsupported.
  virtual float interact_top(std::span<const tensor::Vector> embeddings,
                             const tensor::Vector& bottom, StageStats* stats);
};

}  // namespace imars::recsys
