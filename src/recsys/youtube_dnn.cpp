#include "recsys/youtube_dnn.hpp"

#include <algorithm>
#include <array>
#include <numeric>
#include <unordered_set>

#include "nn/loss.hpp"
#include "util/error.hpp"

namespace imars::recsys {

namespace {

std::vector<std::size_t> stage_features(const data::DatasetSchema& schema,
                                        bool filtering) {
  std::vector<std::size_t> out;
  for (std::size_t f = 0; f < schema.user_item.size(); ++f) {
    const auto use = schema.user_item[f].use;
    const bool in_stage =
        use == data::StageUse::kShared ||
        (filtering ? use == data::StageUse::kFilteringOnly
                   : use == data::StageUse::kRankingOnly);
    if (in_stage) out.push_back(f);
  }
  return out;
}

std::vector<std::size_t> make_dims(std::size_t in,
                                   const std::vector<std::size_t>& hidden,
                                   std::size_t out) {
  std::vector<std::size_t> dims{in};
  dims.insert(dims.end(), hidden.begin(), hidden.end());
  if (dims.back() != out) dims.push_back(out);
  return dims;
}

}  // namespace

YoutubeDnn::YoutubeDnn(const data::DatasetSchema& schema,
                       const YoutubeDnnConfig& cfg)
    : cfg_(cfg),
      schema_(schema),
      filter_features_(stage_features(schema, /*filtering=*/true)),
      rank_features_(stage_features(schema, /*filtering=*/false)),
      item_table_([&] {
        IMARS_REQUIRE(schema.has_item_table,
                      "YoutubeDnn: schema needs an item table");
        util::Xoshiro256 rng(cfg.seed);
        return nn::EmbeddingTable(schema.item_count, cfg.emb_dim, rng);
      }()),
      filter_in_dim_(filter_features_.size() * cfg.emb_dim + cfg.emb_dim +
                     schema.dense_dim),
      rank_in_dim_(rank_features_.size() * cfg.emb_dim + 2 * cfg.emb_dim +
                   schema.dense_dim),
      filter_mlp_([&] {
        util::Xoshiro256 rng(cfg.seed + 1);
        // Tower output = the last hidden width (the 32-d user embedding).
        auto dims = make_dims(filter_in_dim_, cfg.filter_hidden,
                              cfg.filter_hidden.back());
        return nn::Mlp(dims, nn::Activation::kIdentity, rng);
      }()),
      rank_mlp_([&] {
        util::Xoshiro256 rng(cfg.seed + 2);
        return nn::Mlp(make_dims(rank_in_dim_, cfg.rank_hidden, 1),
                       nn::Activation::kSigmoid, rng);
      }()) {
  IMARS_REQUIRE(cfg.emb_dim > 0, "YoutubeDnn: emb_dim must be positive");
  IMARS_REQUIRE(filter_mlp_.out_dim() == cfg.emb_dim,
                "YoutubeDnn: tower output must equal emb_dim for the NNS");
  util::Xoshiro256 rng(cfg.seed + 3);
  uiets_.reserve(schema.user_item.size());
  for (const auto& spec : schema.user_item)
    uiets_.emplace_back(spec.cardinality, cfg.emb_dim, rng);
}

const nn::EmbeddingTable& YoutubeDnn::uiet(std::size_t f) const {
  IMARS_REQUIRE(f < uiets_.size(), "YoutubeDnn::uiet out of range");
  return uiets_[f];
}

UserContext YoutubeDnn::make_context(const data::MovieLensSynth& ds,
                                     std::size_t user) const {
  const auto& rec = ds.user(user);
  UserContext ctx;
  ctx.dense = ds.dense_features(user);
  ctx.sparse.resize(schema_.user_item.size());
  for (std::size_t f = 0; f < schema_.user_item.size(); ++f)
    ctx.sparse[f] = {rec.sparse[f]};
  ctx.history = rec.history;
  return ctx;
}

tensor::Vector YoutubeDnn::filter_input(const UserContext& user) const {
  IMARS_REQUIRE(user.sparse.size() == uiets_.size(),
                "YoutubeDnn: context/schema feature count mismatch");
  tensor::Vector in;
  in.reserve(filter_in_dim_);
  for (auto f : filter_features_) {
    const auto pooled =
        uiets_[f].lookup_pooled(user.sparse[f], nn::Pooling::kMean);
    in.insert(in.end(), pooled.begin(), pooled.end());
  }
  const auto hist =
      item_table_.lookup_pooled(user.history, nn::Pooling::kMean);
  in.insert(in.end(), hist.begin(), hist.end());
  in.insert(in.end(), user.dense.begin(), user.dense.end());
  IMARS_REQUIRE(in.size() == filter_in_dim_, "filter_input: size mismatch");
  return in;
}

tensor::Vector YoutubeDnn::user_embedding(const UserContext& user) const {
  return filter_mlp_.infer(filter_input(user));
}

tensor::Vector YoutubeDnn::rank_input(const UserContext& user,
                                      std::size_t item) const {
  tensor::Vector in;
  in.reserve(rank_in_dim_);
  for (auto f : rank_features_) {
    const auto pooled =
        uiets_[f].lookup_pooled(user.sparse[f], nn::Pooling::kMean);
    in.insert(in.end(), pooled.begin(), pooled.end());
  }
  const auto item_emb = item_table_.row(item);
  in.insert(in.end(), item_emb.begin(), item_emb.end());
  const auto hist =
      item_table_.lookup_pooled(user.history, nn::Pooling::kMean);
  in.insert(in.end(), hist.begin(), hist.end());
  in.insert(in.end(), user.dense.begin(), user.dense.end());
  IMARS_REQUIRE(in.size() == rank_in_dim_, "rank_input: size mismatch");
  return in;
}

float YoutubeDnn::ctr(const UserContext& user, std::size_t item) const {
  return rank_mlp_.infer(rank_input(user, item))[0];
}

float YoutubeDnn::train_filter_epoch(const data::MovieLensSynth& ds,
                                     util::Xoshiro256& rng) {
  std::vector<std::size_t> order(ds.num_users());
  std::iota(order.begin(), order.end(), 0);
  std::shuffle(order.begin(), order.end(), rng);

  double total_loss = 0.0;
  std::size_t steps = 0;
  for (auto u : order) {
    const UserContext ctx = make_context(ds, u);
    if (ctx.history.empty()) continue;

    const auto in = filter_input(ctx);
    const auto user_emb = filter_mlp_.forward(in);

    // One positive drawn from history, cfg.negatives uniform negatives.
    const std::size_t pos = ctx.history[rng.below(ctx.history.size())];
    std::unordered_set<std::size_t> hist_set(ctx.history.begin(),
                                             ctx.history.end());
    std::vector<std::size_t> neg_ids;
    std::vector<tensor::Vector> negs;
    while (neg_ids.size() < cfg_.negatives) {
      const std::size_t cand = rng.below(ds.num_items());
      if (hist_set.contains(cand)) continue;
      neg_ids.push_back(cand);
      const auto r = item_table_.row(cand);
      negs.emplace_back(r.begin(), r.end());
    }
    const auto pos_row = item_table_.row(pos);
    const tensor::Vector pos_emb(pos_row.begin(), pos_row.end());

    tensor::Vector grad_user, grad_pos;
    std::vector<tensor::Vector> grad_negs;
    total_loss += nn::sampled_softmax_loss(user_emb, pos_emb, negs, &grad_user,
                                           &grad_pos, &grad_negs);
    ++steps;

    // Backprop through the tower and route the input gradient to the
    // embedding tables segment by segment.
    const auto grad_in = filter_mlp_.backward(grad_user);
    std::size_t off = 0;
    for (auto f : filter_features_) {
      uiets_[f].accumulate_grad(
          ctx.sparse[f], nn::Pooling::kMean,
          std::span(grad_in).subspan(off, cfg_.emb_dim));
      off += cfg_.emb_dim;
    }
    item_table_.accumulate_grad(ctx.history, nn::Pooling::kMean,
                                std::span(grad_in).subspan(off, cfg_.emb_dim));

    // Item-side gradients from the sampled softmax.
    const std::size_t pos_idx[1] = {pos};
    item_table_.accumulate_grad(pos_idx, nn::Pooling::kSum, grad_pos);
    for (std::size_t i = 0; i < neg_ids.size(); ++i) {
      const std::size_t neg_idx[1] = {neg_ids[i]};
      item_table_.accumulate_grad(neg_idx, nn::Pooling::kSum, grad_negs[i]);
    }

    filter_mlp_.apply_sgd(cfg_.lr);
    for (auto f : filter_features_) uiets_[f].apply_sgd(cfg_.lr);
    item_table_.apply_sgd(cfg_.lr);
  }
  return steps == 0 ? 0.0f : static_cast<float>(total_loss / static_cast<double>(steps));
}

float YoutubeDnn::train_rank_epoch(const data::MovieLensSynth& ds,
                                   util::Xoshiro256& rng) {
  std::vector<std::size_t> order(ds.num_users());
  std::iota(order.begin(), order.end(), 0);
  std::shuffle(order.begin(), order.end(), rng);

  double total_loss = 0.0;
  std::size_t steps = 0;
  for (auto u : order) {
    const UserContext ctx = make_context(ds, u);
    if (ctx.history.empty()) continue;
    std::unordered_set<std::size_t> hist_set(ctx.history.begin(),
                                             ctx.history.end());

    // label 1: a history item; label 0: a random unseen item.
    const std::array<std::pair<std::size_t, float>, 2> samples = {{
        {ctx.history[rng.below(ctx.history.size())], 1.0f},
        {[&] {
           std::size_t cand = rng.below(ds.num_items());
           while (hist_set.contains(cand)) cand = rng.below(ds.num_items());
           return cand;
         }(),
         0.0f},
    }};

    for (const auto& [item, label] : samples) {
      const auto in = rank_input(ctx, item);
      const float p = rank_mlp_.forward(in)[0];
      float grad = 0.0f;
      total_loss += nn::bce_loss(p, label, &grad);
      ++steps;

      const tensor::Vector grad_out{grad};
      const auto grad_in = rank_mlp_.backward(grad_out);

      std::size_t off = 0;
      for (auto f : rank_features_) {
        uiets_[f].accumulate_grad(
            ctx.sparse[f], nn::Pooling::kMean,
            std::span(grad_in).subspan(off, cfg_.emb_dim));
        off += cfg_.emb_dim;
      }
      const std::size_t item_idx[1] = {item};
      item_table_.accumulate_grad(item_idx, nn::Pooling::kSum,
                                  std::span(grad_in).subspan(off, cfg_.emb_dim));
      off += cfg_.emb_dim;
      item_table_.accumulate_grad(ctx.history, nn::Pooling::kMean,
                                  std::span(grad_in).subspan(off, cfg_.emb_dim));

      rank_mlp_.apply_sgd(cfg_.lr);
      for (auto f : rank_features_) uiets_[f].apply_sgd(cfg_.lr);
      item_table_.apply_sgd(cfg_.lr);
    }
  }
  return steps == 0 ? 0.0f : static_cast<float>(total_loss / static_cast<double>(steps));
}

}  // namespace imars::recsys
