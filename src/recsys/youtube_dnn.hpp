// YouTubeDNN two-stage model (Covington et al., RecSys'16), as configured in
// the paper's Table I for MovieLens:
//   * filtering (candidate generation): a user tower (MLP 128-64-32) maps
//     pooled sparse embeddings + history pooling + dense features to a 32-d
//     user embedding; candidates are the nearest item embeddings;
//   * ranking: an MLP (128-1) scores each (user, candidate) pair -> CTR.
//
// Five UIETs are shared between both stages; the ranking stage adds a sixth
// (Table I: "# UIET (Shared) 5 (5) / 6 (5)"). The single ItET doubles as
// the history-pooling table and the NNS target.
#pragma once

#include <cstddef>
#include <vector>

#include "data/movielens.hpp"
#include "data/schema.hpp"
#include "nn/embedding.hpp"
#include "nn/mlp.hpp"
#include "recsys/types.hpp"

namespace imars::recsys {

/// Hyper-parameters. Defaults mirror Table I.
struct YoutubeDnnConfig {
  std::size_t emb_dim = 32;
  std::vector<std::size_t> filter_hidden = {128, 64, 32};  ///< paper: 128-64-32
  std::vector<std::size_t> rank_hidden = {128};            ///< paper: 128-1
  std::size_t negatives = 8;    ///< sampled-softmax negatives
  float lr = 0.05f;
  std::uint64_t seed = 1234;
};

/// Trainable two-stage YouTubeDNN model.
class YoutubeDnn {
 public:
  YoutubeDnn(const data::DatasetSchema& schema, const YoutubeDnnConfig& cfg);

  const YoutubeDnnConfig& config() const noexcept { return cfg_; }
  const data::DatasetSchema& schema() const noexcept { return schema_; }

  /// Indices (into schema.user_item) of UIETs used by each stage.
  const std::vector<std::size_t>& filter_features() const noexcept {
    return filter_features_;
  }
  const std::vector<std::size_t>& rank_features() const noexcept {
    return rank_features_;
  }

  /// UIET f (schema order) and the ItET.
  const nn::EmbeddingTable& uiet(std::size_t f) const;
  const nn::EmbeddingTable& item_table() const noexcept { return item_table_; }
  const nn::Mlp& filter_mlp() const noexcept { return filter_mlp_; }
  const nn::Mlp& rank_mlp() const noexcept { return rank_mlp_; }

  /// Builds the UserContext for a dataset user.
  UserContext make_context(const data::MovieLensSynth& ds,
                           std::size_t user) const;

  /// Filtering-tower input: concat(pooled filter UIETs, mean-pooled history
  /// item embeddings, dense features).
  tensor::Vector filter_input(const UserContext& user) const;

  /// 32-d user embedding (tower inference).
  tensor::Vector user_embedding(const UserContext& user) const;

  /// Ranking-net input for one candidate: concat(pooled rank UIETs,
  /// candidate item embedding, mean-pooled history, dense features).
  tensor::Vector rank_input(const UserContext& user, std::size_t item) const;

  /// Predicted CTR for one candidate (float reference path).
  float ctr(const UserContext& user, std::size_t item) const;

  /// One epoch of filtering-stage training (sampled softmax over history
  /// positives). Returns mean loss.
  float train_filter_epoch(const data::MovieLensSynth& ds,
                           util::Xoshiro256& rng);

  /// One epoch of ranking-stage training (BCE, 1 positive + 1 negative per
  /// user step). Returns mean loss.
  float train_rank_epoch(const data::MovieLensSynth& ds,
                         util::Xoshiro256& rng);

  /// Input widths (useful for mapping stats).
  std::size_t filter_input_dim() const noexcept { return filter_in_dim_; }
  std::size_t rank_input_dim() const noexcept { return rank_in_dim_; }

 private:
  YoutubeDnnConfig cfg_;
  data::DatasetSchema schema_;
  std::vector<std::size_t> filter_features_;
  std::vector<std::size_t> rank_features_;
  std::vector<nn::EmbeddingTable> uiets_;  // schema order
  nn::EmbeddingTable item_table_;
  std::size_t filter_in_dim_ = 0;
  std::size_t rank_in_dim_ = 0;
  nn::Mlp filter_mlp_;
  nn::Mlp rank_mlp_;
};

}  // namespace imars::recsys
