#include "serve/batcher.hpp"

#include <algorithm>

#include "util/error.hpp"

namespace imars::serve {

DynamicBatcher::DynamicBatcher(const DynamicBatcherConfig& cfg) : cfg_(cfg) {
  IMARS_REQUIRE(cfg_.max_batch >= 1, "DynamicBatcher: max_batch must be >= 1");
  IMARS_REQUIRE(cfg_.max_wait.value >= 0.0,
                "DynamicBatcher: max_wait must be non-negative");
}

void DynamicBatcher::add(const Request& r) {
  IMARS_REQUIRE(pending_.empty() || pending_.back().enqueue <= r.enqueue,
                "DynamicBatcher::add: arrivals must be time-ordered");
  pending_.push_back(r);
}

std::optional<device::Ns> DynamicBatcher::deadline() const {
  if (pending_.empty()) return std::nullopt;
  return pending_.front().enqueue + cfg_.max_wait;
}

std::optional<Batch> DynamicBatcher::poll(device::Ns now) {
  if (pending_.empty()) return std::nullopt;
  if (pending_.size() >= cfg_.max_batch)
    return close_batch(now, cfg_.max_batch);
  if (now >= *deadline()) return close_batch(now, pending_.size());
  return std::nullopt;
}

std::optional<Batch> DynamicBatcher::flush(device::Ns now) {
  if (pending_.empty()) return std::nullopt;
  return close_batch(now, std::min(pending_.size(), cfg_.max_batch));
}

Batch DynamicBatcher::close_batch(device::Ns now, std::size_t count) {
  Batch b;
  b.id = next_batch_id_++;
  b.dispatch = now;
  b.requests.assign(pending_.begin(),
                    pending_.begin() + static_cast<std::ptrdiff_t>(count));
  pending_.erase(pending_.begin(),
                 pending_.begin() + static_cast<std::ptrdiff_t>(count));
  return b;
}

}  // namespace imars::serve
