#include "serve/batcher.hpp"

#include <algorithm>
#include <limits>

#include "util/error.hpp"

namespace imars::serve {

DynamicBatcher::DynamicBatcher(const DynamicBatcherConfig& cfg) : cfg_(cfg) {
  IMARS_REQUIRE(cfg_.max_batch >= 1, "DynamicBatcher: max_batch must be >= 1");
  IMARS_REQUIRE(cfg_.max_wait.value >= 0.0,
                "DynamicBatcher: max_wait must be non-negative");
}

void DynamicBatcher::add(const Request& r) {
  IMARS_REQUIRE(pending_.empty() || pending_.back().enqueue <= r.enqueue,
                "DynamicBatcher::add: arrivals must be time-ordered");
  pending_.push_back(r);
}

std::optional<device::Ns> DynamicBatcher::deadline() const {
  if (pending_.empty()) return std::nullopt;
  return pending_.front().enqueue + cfg_.max_wait;
}

std::optional<Batch> DynamicBatcher::poll(device::Ns now) {
  if (pending_.empty()) return std::nullopt;
  if (pending_.size() >= cfg_.max_batch)
    return close_batch(now, cfg_.max_batch, CloseTrigger::kSize);
  if (now >= *deadline())
    return close_batch(now, pending_.size(), CloseTrigger::kDeadline);
  return std::nullopt;
}

std::optional<Batch> DynamicBatcher::flush(device::Ns now) {
  if (pending_.empty()) return std::nullopt;
  return close_batch(now, std::min(pending_.size(), cfg_.max_batch),
                     CloseTrigger::kFlush);
}

Batch DynamicBatcher::close_batch(device::Ns now, std::size_t count,
                                  CloseTrigger trigger) {
  Batch b;
  b.id = next_batch_id_++;
  // Class-blind: the batch may mix labels, so it carries class 0 — the
  // same value a single-class QosBatcher emits for the identical stream.
  b.qos_class = 0;
  b.dispatch = now;
  b.trigger = trigger;
  b.requests.assign(pending_.begin(),
                    pending_.begin() + static_cast<std::ptrdiff_t>(count));
  pending_.erase(pending_.begin(),
                 pending_.begin() + static_cast<std::ptrdiff_t>(count));
  return b;
}

// --- QosBatcher -------------------------------------------------------------

QosBatcherConfig QosBatcherConfig::single(const DynamicBatcherConfig& cfg) {
  QosClassConfig cls;
  cls.max_batch = cfg.max_batch;
  cls.max_wait = cfg.max_wait;
  QosBatcherConfig out;
  out.classes.push_back(std::move(cls));
  return out;
}

QosBatcher::QosBatcher(const QosBatcherConfig& cfg)
    : cfg_(cfg),
      queues_(cfg.classes.size()),
      admitted_cost_(cfg.classes.size(), 0.0) {
  IMARS_REQUIRE(!cfg_.classes.empty(), "QosBatcher: need at least one class");
  for (const auto& c : cfg_.classes) {
    IMARS_REQUIRE(c.max_batch >= 1, "QosBatcher: max_batch must be >= 1");
    IMARS_REQUIRE(c.max_wait.value >= 0.0,
                  "QosBatcher: max_wait must be non-negative");
    IMARS_REQUIRE(c.weight >= 0.0, "QosBatcher: weight must be non-negative");
    IMARS_REQUIRE(c.request_cost > 0.0,
                  "QosBatcher: request_cost must be positive");
    IMARS_REQUIRE(c.service_floor.value >= 0.0,
                  "QosBatcher: service_floor must be non-negative");
  }
}

void QosBatcher::set_service_estimate(std::size_t cls, device::Ns estimate) {
  IMARS_REQUIRE(cls < cfg_.classes.size(), "QosBatcher: class out of range");
  IMARS_REQUIRE(estimate.value >= 0.0,
                "QosBatcher: service_estimate must be non-negative");
  cfg_.classes[cls].service_estimate = estimate;
}

void QosBatcher::set_request_cost(std::size_t cls, double cost) {
  IMARS_REQUIRE(cls < cfg_.classes.size(), "QosBatcher: class out of range");
  IMARS_REQUIRE(cost > 0.0, "QosBatcher: request_cost must be positive");
  cfg_.classes[cls].request_cost = cost;
}

void QosBatcher::add(const Request& r) {
  // A single-class table is class-blind: every label lands in class 0, so
  // the same labeled stream can be replayed against a QoS table and the
  // PR 2 baseline.
  const std::size_t cls = queues_.size() == 1 ? 0 : r.qos_class;
  IMARS_REQUIRE(cls < queues_.size(),
                "QosBatcher::add: qos_class outside the class table");
  auto& q = queues_[cls];
  if (q.empty() || q.back().enqueue <= r.enqueue) {
    q.push_back(r);
    return;
  }
  // Slightly out-of-order arrival: under gated admission a held batch can
  // complete (in device time) before an already-added arrival, so a
  // closed-loop client's next request may predate its class's newest
  // queue entry. Insert in enqueue order (stable: after equal times) so
  // the front stays the oldest request and the trigger math holds; the
  // in-order fast path above keeps ordered streams bit-identical.
  const auto pos = std::upper_bound(
      q.begin(), q.end(), r, [](const Request& a, const Request& b) {
        return a.enqueue.value < b.enqueue.value;
      });
  q.insert(pos, r);
}

std::size_t QosBatcher::pending() const noexcept {
  std::size_t n = 0;
  for (const auto& q : queues_) n += q.size();
  return n;
}

std::size_t QosBatcher::pending(std::size_t cls) const {
  IMARS_REQUIRE(cls < queues_.size(), "QosBatcher: class out of range");
  return queues_[cls].size();
}

device::Ns QosBatcher::trigger_time(std::size_t cls) const {
  const auto& c = cfg_.classes[cls];
  const device::Ns enqueue = queues_[cls].front().enqueue;
  device::Ns wait_budget = c.max_wait;
  if (c.deadline.value > 0.0) {
    // Preemptive close: leave at least service_estimate of slack before the
    // end-to-end deadline (never negative — an already-late request closes
    // at the next event).
    const device::Ns slack = device::max(c.deadline - c.service_estimate,
                                         device::Ns{0.0});
    wait_budget = std::min(wait_budget, slack);
  }
  return enqueue + wait_budget;
}

bool QosBatcher::admissible(std::size_t cls) const {
  if (cfg_.classes[cls].weight > 0.0) return true;
  // Scavenger class: admitted only when every paying (positive-weight)
  // class is drained. Scavengers never block each other — otherwise two
  // pending scavengers would deadlock the batcher.
  for (std::size_t c = 0; c < queues_.size(); ++c)
    if (c != cls && cfg_.classes[c].weight > 0.0 && !queues_[c].empty())
      return false;
  return true;
}

double QosBatcher::virtual_time(std::size_t cls) const {
  IMARS_REQUIRE(cls < queues_.size(), "QosBatcher: class out of range");
  const double w = cfg_.classes[cls].weight;
  if (w <= 0.0) return std::numeric_limits<double>::infinity();
  return admitted_cost_[cls] / w;
}

std::optional<device::Ns> QosBatcher::deadline() const {
  std::optional<device::Ns> earliest;
  for (std::size_t cls = 0; cls < queues_.size(); ++cls) {
    if (queues_[cls].empty() || !admissible(cls)) continue;
    const device::Ns t = trigger_time(cls);
    if (!earliest || t < *earliest) earliest = t;
  }
  return earliest;
}

std::optional<std::size_t> QosBatcher::pick(device::Ns now,
                                            bool fired_only) const {
  std::optional<std::size_t> best;
  for (std::size_t cls = 0; cls < queues_.size(); ++cls) {
    const auto& q = queues_[cls];
    if (q.empty() || !admissible(cls)) continue;
    if (fired_only) {
      const bool fired = q.size() >= cfg_.classes[cls].max_batch ||
                         now >= trigger_time(cls);
      if (!fired) continue;
    }
    // Weighted admission: lowest virtual time first (ties to the lower
    // class index); weight-0 classes carry +inf and so go last.
    if (!best || virtual_time(cls) < virtual_time(*best)) best = cls;
  }
  return best;
}

CloseTrigger QosBatcher::poll_trigger(std::size_t cls) const {
  const QosClassConfig& c = cfg_.classes[cls];
  if (queues_[cls].size() >= c.max_batch) return CloseTrigger::kSize;
  // The fired trigger was the wait-budget deadline; it counts as
  // preemptive when end-to-end-deadline slack clamped the budget below the
  // class's own max_wait (the close happened EARLY to protect the SLO).
  // The boundary is deliberately STRICT: when
  // `deadline - service_estimate == max_wait` exactly, the close fires at
  // enqueue + max_wait — the very instant the plain deadline trigger would
  // have fired anyway — so nothing happened early and it is classified
  // kDeadline. kPreemptive is reserved for closes the SLO clamp actually
  // moved, which keeps the per-trigger counts feeding check_trace's
  // sum invariant attributable (pinned by
  // QosBatcher.ExactSlackEqualToMaxWaitClassifiesAsDeadline).
  if (c.deadline.value > 0.0) {
    const device::Ns slack =
        device::max(c.deadline - c.service_estimate, device::Ns{0.0});
    if (slack < c.max_wait) return CloseTrigger::kPreemptive;
  }
  return CloseTrigger::kDeadline;
}

std::optional<Batch> QosBatcher::poll(device::Ns now) {
  const auto cls = pick(now, /*fired_only=*/true);
  if (!cls) return std::nullopt;
  return close_batch(*cls, now, poll_trigger(*cls));
}

std::optional<Batch> QosBatcher::flush(device::Ns now) {
  const auto cls = pick(now, /*fired_only=*/false);
  if (!cls) return std::nullopt;
  return close_batch(*cls, now, CloseTrigger::kFlush);
}

void QosBatcher::recycle(std::vector<Request>&& storage) {
  storage.clear();
  spares_.push_back(std::move(storage));
}

Batch QosBatcher::close_batch(std::size_t cls, device::Ns now,
                              CloseTrigger trigger) {
  auto& q = queues_[cls];
  const std::size_t count = std::min(q.size(), cfg_.classes[cls].max_batch);
  Batch b;
  b.id = next_batch_id_++;
  b.qos_class = cls;
  b.dispatch = now;
  b.trigger = trigger;
  if (!spares_.empty()) {
    // Reuse drained batch storage (capacity only; contents were cleared).
    b.requests = std::move(spares_.back());
    spares_.pop_back();
  }
  b.requests.assign(q.begin(), q.begin() + static_cast<std::ptrdiff_t>(count));
  q.erase(q.begin(), q.begin() + static_cast<std::ptrdiff_t>(count));
  admitted_cost_[cls] +=
      cfg_.classes[cls].request_cost * static_cast<double>(count);
  return b;
}

}  // namespace imars::serve
