// Dynamic batching policy: coalesce queued requests into batches under a
// max-latency deadline.
//
// A batch closes when either trigger fires:
//   * size trigger      — max_batch requests are pending;
//   * deadline trigger  — the oldest pending request has waited max_wait.
//
// The policy is a pure object over simulated-hardware timestamps (device
// nanoseconds), so the runtime's event loop and the unit tests drive it
// deterministically; the worker threads only execute the batches it emits.
#pragma once

#include <cstddef>
#include <deque>
#include <optional>
#include <vector>

#include "device/units.hpp"

namespace imars::serve {

/// One recommendation request entering the serving runtime.
struct Request {
  std::size_t id = 0;      ///< global sequence number
  std::size_t user = 0;    ///< index into the user-context population
  std::size_t client = 0;  ///< closed-loop client that issued it
  device::Ns enqueue;      ///< simulated arrival time
};

/// A closed batch, ready for dispatch to the shard router.
struct Batch {
  std::size_t id = 0;
  device::Ns dispatch;  ///< simulated close/dispatch time
  std::vector<Request> requests;

  std::size_t size() const noexcept { return requests.size(); }
};

struct DynamicBatcherConfig {
  std::size_t max_batch = 8;        ///< size trigger
  device::Ns max_wait{200000.0};    ///< deadline trigger (200 us default)
};

class DynamicBatcher {
 public:
  explicit DynamicBatcher(const DynamicBatcherConfig& cfg);

  const DynamicBatcherConfig& config() const noexcept { return cfg_; }

  /// Adds a request (arrival order must be non-decreasing in enqueue time).
  void add(const Request& r);

  std::size_t pending() const noexcept { return pending_.size(); }
  bool empty() const noexcept { return pending_.empty(); }

  /// Simulated time at which the deadline trigger fires for the current
  /// oldest request; nullopt when nothing is pending.
  std::optional<device::Ns> deadline() const;

  /// Closes and returns a batch if either trigger has fired by `now`.
  std::optional<Batch> poll(device::Ns now);

  /// Unconditionally closes the remaining requests (end-of-stream drain).
  std::optional<Batch> flush(device::Ns now);

 private:
  Batch close_batch(device::Ns now, std::size_t count);

  DynamicBatcherConfig cfg_;
  std::deque<Request> pending_;
  std::size_t next_batch_id_ = 0;
};

}  // namespace imars::serve
