// Dynamic batching policy: coalesce queued requests into batches under a
// max-latency deadline.
//
// A batch closes when either trigger fires:
//   * size trigger      — max_batch requests are pending;
//   * deadline trigger  — the oldest pending request has waited max_wait.
//
// The policy is a pure object over simulated-hardware timestamps (device
// nanoseconds), so the runtime's event loop and the unit tests drive it
// deterministically; the worker threads only execute the batches it emits.
//
// Two policies live here:
//   * DynamicBatcher — the single-tenant policy above (PR 1/2).
//   * QosBatcher     — the multi-tenant, class-aware policy: one queue per
//     priority class, each with its own size/deadline triggers, preemptive
//     close for latency-critical classes (close early so the end-to-end
//     deadline survives the expected service time), and weighted admission
//     so a flood of bulk-class requests cannot starve interactive classes.
//     Configured with a single class it reduces bit-identically to
//     DynamicBatcher (same batch composition, ids and close times).
#pragma once

#include <cstddef>
#include <deque>
#include <optional>
#include <string>
#include <vector>

#include "device/units.hpp"
#include "serve/observe.hpp"

namespace imars::serve {

/// One recommendation request entering the serving runtime.
struct Request {
  std::size_t id = 0;         ///< global sequence number
  std::size_t user = 0;       ///< index into the user-context population
  std::size_t client = 0;     ///< closed-loop client that issued it
  std::size_t qos_class = 0;  ///< priority class (index into the class table)
  /// Embedding-update write (fire-and-forget row writes instead of a
  /// query): bypasses the batcher; the runtime charges its write traffic
  /// through the write-back cache model. Never set on read-only streams.
  bool is_update = false;
  device::Ns enqueue;         ///< simulated arrival time
  /// Per-session personalization state, filled by the load generator's
  /// session mode (serve/session_table.*): how many queries this user's
  /// live session has issued (1 = the arrival query) and whether the
  /// session was created by this request. Inert defaults — a non-session
  /// stream carries 0/false and nothing downstream changes.
  std::uint32_t session_seq = 0;
  bool session_fresh = false;
};

/// A closed batch, ready for dispatch to the shard router. All requests of
/// a batch belong to one QoS class.
struct Batch {
  std::size_t id = 0;
  std::size_t qos_class = 0;
  device::Ns dispatch;  ///< simulated close/dispatch time
  /// Why the batch closed (observability: batch spans attribute tail
  /// latency to the close decision). Pure telemetry — nothing downstream
  /// reads it back into scheduling.
  CloseTrigger trigger = CloseTrigger::kSize;
  std::vector<Request> requests;

  std::size_t size() const noexcept { return requests.size(); }
};

struct DynamicBatcherConfig {
  std::size_t max_batch = 8;        ///< size trigger
  device::Ns max_wait{200000.0};    ///< deadline trigger (200 us default)
};

class DynamicBatcher {
 public:
  explicit DynamicBatcher(const DynamicBatcherConfig& cfg);

  const DynamicBatcherConfig& config() const noexcept { return cfg_; }

  /// Adds a request (arrival order must be non-decreasing in enqueue time).
  void add(const Request& r);

  std::size_t pending() const noexcept { return pending_.size(); }
  bool empty() const noexcept { return pending_.empty(); }

  /// Simulated time at which the deadline trigger fires for the current
  /// oldest request; nullopt when nothing is pending.
  std::optional<device::Ns> deadline() const;

  /// Closes and returns a batch if either trigger has fired by `now`.
  std::optional<Batch> poll(device::Ns now);

  /// Unconditionally closes the remaining requests (end-of-stream drain).
  std::optional<Batch> flush(device::Ns now);

 private:
  Batch close_batch(device::Ns now, std::size_t count, CloseTrigger trigger);

  DynamicBatcherConfig cfg_;
  std::deque<Request> pending_;
  std::size_t next_batch_id_ = 0;
};

// --- Multi-tenant QoS batching ---------------------------------------------

/// One priority class (tenant) of the multi-tenant batcher.
struct QosClassConfig {
  std::string name = "default";
  std::size_t max_batch = 8;      ///< per-class size trigger
  device::Ns max_wait{200000.0};  ///< per-class deadline trigger
  /// End-to-end latency SLO (enqueue to merged top-k). When positive the
  /// class is latency-critical: its batch closes *preemptively* once
  /// waiting any longer would leave less than `service_estimate` of slack
  /// (close time = enqueue + max(0, deadline - service_estimate), capped by
  /// max_wait), and the runtime's admission queue serves it
  /// earliest-deadline-first while it stays inside its weight entitlement.
  device::Ns deadline{0.0};
  /// Expected dispatch-to-complete time of one of this class's batches,
  /// used by the preemptive close above. A static, configured estimate (the
  /// benches probe it with a calibration run) so batching decisions never
  /// depend on completion feedback — the arrival stream alone fixes every
  /// close decision, which keeps overlapped and phased execution
  /// bit-identical. Left unset (0) on a latency-critical class, the
  /// runtime defaults it from the servable's probed stage-graph critical
  /// path (StagePipeline::service_estimate) — still static, so the
  /// determinism contract is preserved.
  device::Ns service_estimate{0.0};
  /// Guaranteed minimum dispatch-to-complete time of any batch of this
  /// class (a provable lower bound, not an estimate). The speculative
  /// dispatch window (ServingConfig::speculate) uses it to bound how far a
  /// pending completion can move the device frontier: a larger floor means
  /// a wider provably-safe dispatch horizon. The runtime merges it with
  /// the servable's own structural floor (the output-stage merge cost,
  /// StagePipeline::service_floor) and *validates* it at collection time —
  /// a floor above any observed batch service time aborts the run rather
  /// than silently breaking the safety argument. 0 (default) claims
  /// nothing beyond the structural floor.
  device::Ns service_floor{0.0};
  /// Device-time entitlement relative to the other classes. Weight 0 marks
  /// a scavenger class: it is only ever admitted when no other class has
  /// pending work.
  double weight = 1.0;
  /// Admission-accounting cost of one request (virtual-time units). Classes
  /// whose per-request device cost differs materially should scale this so
  /// weighted admission tracks device time rather than request count.
  double request_cost = 1.0;
  /// Which servable of the runtime serves this class (index into the
  /// servable table; classes may share one).
  std::size_t servable = 0;
};

struct QosBatcherConfig {
  std::vector<QosClassConfig> classes;  ///< at least one
  /// Device-time admission window: a closed batch is released to the
  /// pipeline only once the device backlog frontier is within this horizon
  /// of simulated "now"; held batches wait in the runtime's ready queue
  /// where admission order (deadline classes first within entitlement, then
  /// weighted virtual time) is decided. Non-positive = ungated: batches
  /// release the instant they close, which is exactly the PR 2 single-queue
  /// behavior.
  device::Ns admit_window{0.0};

  bool gated() const noexcept { return admit_window.value > 0.0; }

  /// The single-class (class-blind) table equivalent to a DynamicBatcher.
  static QosBatcherConfig single(const DynamicBatcherConfig& cfg);
};

/// Class-aware batching policy: one FIFO queue per class. Like
/// DynamicBatcher it is a pure object over device timestamps; the runtime's
/// event loop drives it. With one configured class it is class-blind (all
/// requests route to class 0, whatever their label) and reproduces
/// DynamicBatcher's batch stream bit-identically.
class QosBatcher {
 public:
  explicit QosBatcher(const QosBatcherConfig& cfg);

  const QosBatcherConfig& config() const noexcept { return cfg_; }
  std::size_t num_classes() const noexcept { return cfg_.classes.size(); }

  /// Adds a request; routes by `r.qos_class` (must index the class table
  /// unless the table has a single class). Arrivals are kept sorted by
  /// enqueue time per class — a slightly out-of-order add (a gated closed
  /// loop completing a held batch early) is inserted in order, after any
  /// equal timestamps.
  void add(const Request& r);

  std::size_t pending() const noexcept;
  std::size_t pending(std::size_t cls) const;
  bool empty() const noexcept { return pending() == 0; }

  /// Earliest future time at which any *admissible* class's deadline
  /// trigger fires (a weight-0 class is suppressed while any other class
  /// has pending requests); nullopt when nothing is pending.
  std::optional<device::Ns> deadline() const;

  /// Closes and returns one batch whose trigger has fired by `now`,
  /// weight-0 classes last and simultaneous fires resolved by weighted
  /// virtual time (cumulative admitted request_cost / weight, ties to the
  /// lower class index). Call repeatedly until nullopt — several classes
  /// can fire on one event.
  std::optional<Batch> poll(device::Ns now);

  /// Unconditionally closes up to max_batch requests of one class
  /// (end-of-stream drain), in the same admission order as poll().
  std::optional<Batch> flush(device::Ns now);

  /// Weighted virtual time of a class (admission accounting); weight-0
  /// classes report +inf.
  double virtual_time(std::size_t cls) const;

  /// Adaptive-QoS hooks (ServingConfig::adaptive): replace a class's
  /// service_estimate / request_cost mid-run. The runtime only calls these
  /// at window boundaries it can prove are reached identically with
  /// overlap on or off, so every close decision still depends on the
  /// arrival stream plus an identical update schedule — the determinism
  /// contract of the static estimates carries over unchanged.
  void set_service_estimate(std::size_t cls, device::Ns estimate);
  void set_request_cost(std::size_t cls, double cost);

  /// Returns drained `Batch::requests` storage to the spare pool so the
  /// next close_batch reuses its capacity instead of allocating. Purely a
  /// memory-recycling hint: batch ids, composition and close times are
  /// identical whether or not anything is ever recycled (the optimized
  /// runtime feeds it, the reference path never calls it).
  void recycle(std::vector<Request>&& storage);

 private:
  /// Time at which the class's deadline/preemptive trigger fires for its
  /// current oldest request (its size trigger is checked separately).
  device::Ns trigger_time(std::size_t cls) const;
  bool admissible(std::size_t cls) const;
  std::optional<std::size_t> pick(device::Ns now, bool fired_only) const;
  Batch close_batch(std::size_t cls, device::Ns now, CloseTrigger trigger);
  /// The close reason a poll() of class `cls` at `now` reports: size if
  /// the queue fills the batch, otherwise the fired deadline — preemptive
  /// when the wait budget was clamped by end-to-end-deadline slack.
  CloseTrigger poll_trigger(std::size_t cls) const;

  QosBatcherConfig cfg_;
  std::vector<std::deque<Request>> queues_;  ///< one per class
  std::vector<double> admitted_cost_;        ///< per class, request_cost sum
  std::vector<std::vector<Request>> spares_; ///< recycled batch storage
  std::size_t next_batch_id_ = 0;
};

}  // namespace imars::serve
