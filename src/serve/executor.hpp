// Per-shard worker threads. Each accelerator shard owns one ShardExecutor:
// a single thread draining a FIFO work queue, so a shard's (non-thread-safe)
// backend replica is only ever touched from one thread, while distinct
// shards run their functional work concurrently.
#pragma once

#include <exception>
#include <functional>
#include <future>
#include <memory>
#include <thread>
#include <utility>
#include <vector>

#include "serve/request_queue.hpp"

namespace imars::serve {

class ShardExecutor {
 public:
  ShardExecutor() : thread_([this] { run(); }) {}

  ~ShardExecutor() {
    tasks_.close();
    if (thread_.joinable()) thread_.join();
  }

  ShardExecutor(const ShardExecutor&) = delete;
  ShardExecutor& operator=(const ShardExecutor&) = delete;

  /// Enqueues `fn`; tasks execute in submission order on the shard thread.
  std::future<void> submit(std::function<void()> fn) {
    std::packaged_task<void()> task(std::move(fn));
    std::future<void> fut = task.get_future();
    tasks_.push(std::make_shared<std::packaged_task<void()>>(std::move(task)));
    return fut;
  }

 private:
  void run() {
    while (auto task = tasks_.pop()) (**task)();
  }

  RequestQueue<std::shared_ptr<std::packaged_task<void()>>> tasks_;
  std::thread thread_;
};

/// One executor per shard.
class ExecutorPool {
 public:
  explicit ExecutorPool(std::size_t shards) : executors_(shards) {
    for (auto& e : executors_) e = std::make_unique<ShardExecutor>();
  }

  std::size_t size() const noexcept { return executors_.size(); }
  ShardExecutor& at(std::size_t shard) { return *executors_[shard]; }

  /// Waits for every pending future, then rethrows the first failure (if
  /// any). Draining before rethrowing matters: the queued tasks capture
  /// references to the caller's stack, so unwinding while siblings are
  /// still queued would leave them writing into freed frames.
  static void wait_all(std::vector<std::future<void>>& futures) {
    std::exception_ptr first;
    for (auto& f : futures) {
      try {
        f.get();
      } catch (...) {
        if (!first) first = std::current_exception();
      }
    }
    futures.clear();
    if (first) std::rethrow_exception(first);
  }

 private:
  std::vector<std::unique_ptr<ShardExecutor>> executors_;
};

}  // namespace imars::serve
