// Per-shard worker threads. Each accelerator shard owns one ShardExecutor:
// a single thread draining a FIFO work queue, so a shard's (non-thread-safe)
// backend replica is only ever touched from one thread, while distinct
// shards run their functional work concurrently.
//
// Tasks must not throw: there is no future to carry an exception (the
// staged-pipeline engine synchronizes through its own per-batch counters
// and promise, and records failures itself), so a leaked exception would
// terminate the process.
#pragma once

#include <functional>
#include <memory>
#include <thread>
#include <utility>
#include <vector>

#include "serve/request_queue.hpp"

namespace imars::serve {

class ShardExecutor {
 public:
  ShardExecutor() : thread_([this] { run(); }) {}

  ~ShardExecutor() {
    tasks_.close();
    if (thread_.joinable()) thread_.join();
  }

  ShardExecutor(const ShardExecutor&) = delete;
  ShardExecutor& operator=(const ShardExecutor&) = delete;

  /// Enqueues `fn`; tasks execute in submission order on the shard thread.
  /// Urgent tasks (a latency-critical tenant's work) overtake queued normal
  /// tasks but stay FIFO among themselves.
  void submit(std::function<void()> fn, bool urgent = false) {
    tasks_.push(std::move(fn), urgent);
  }

 private:
  void run() {
    while (auto task = tasks_.pop()) (*task)();
  }

  RequestQueue<std::function<void()>> tasks_;
  std::thread thread_;
};

/// One executor per shard.
class ExecutorPool {
 public:
  explicit ExecutorPool(std::size_t shards) : executors_(shards) {
    for (auto& e : executors_) e = std::make_unique<ShardExecutor>();
  }

  std::size_t size() const noexcept { return executors_.size(); }
  ShardExecutor& at(std::size_t shard) { return *executors_[shard]; }

 private:
  std::vector<std::unique_ptr<ShardExecutor>> executors_;
};

}  // namespace imars::serve
