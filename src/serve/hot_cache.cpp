#include "serve/hot_cache.hpp"

namespace imars::serve {

HotEmbeddingCache::HotEmbeddingCache(const HotCacheConfig& cfg) : cfg_(cfg) {}

bool HotEmbeddingCache::contains(std::uint32_t table, std::uint32_t row) const {
  return resident_.find(key_of(table, row)) != resident_.end();
}

bool HotEmbeddingCache::settle_heap() {
  while (!heap_.empty()) {
    const auto [freq, key] = heap_.top();
    const auto it = resident_.find(key);
    if (it == resident_.end()) {
      heap_.pop();  // evicted row, stale entry
      continue;
    }
    if (it->second != freq) {
      heap_.pop();  // frequency advanced since this entry was pushed
      heap_.emplace(it->second, key);
      continue;
    }
    return true;
  }
  return false;
}

bool HotEmbeddingCache::access(std::uint32_t table, std::uint32_t row) {
  const std::uint64_t key = key_of(table, row);
  const std::uint64_t freq = ++freq_[key];

  if (cfg_.capacity_rows == 0) {
    ++stats_.misses;
    return false;
  }

  if (auto it = resident_.find(key); it != resident_.end()) {
    it->second = freq;  // heap entry refreshed lazily in settle_heap()
    ++stats_.hits;
    return true;
  }

  ++stats_.misses;
  if (resident_.size() < cfg_.capacity_rows) {
    resident_.emplace(key, freq);
    heap_.emplace(freq, key);
    return false;
  }

  // Frequency-based admission: replace the coldest resident row only if the
  // missed row is now strictly hotter.
  if (settle_heap()) {
    const auto [min_freq, min_key] = heap_.top();
    if (freq > min_freq) {
      heap_.pop();
      resident_.erase(min_key);
      resident_.emplace(key, freq);
      heap_.emplace(freq, key);
    }
  }
  return false;
}

}  // namespace imars::serve
