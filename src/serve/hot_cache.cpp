#include "serve/hot_cache.hpp"

namespace imars::serve {

HotEmbeddingCache::HotEmbeddingCache(const HotCacheConfig& cfg) : cfg_(cfg) {}

bool HotEmbeddingCache::contains(std::uint32_t table, std::uint32_t row) const {
  return resident_.find(key_of(table, row)) != resident_.end();
}

bool HotEmbeddingCache::dirty(std::uint32_t table, std::uint32_t row) const {
  return dirty_.find(key_of(table, row)) != dirty_.end();
}

bool HotEmbeddingCache::settle_heap() {
  while (!heap_.empty()) {
    const auto [freq, key] = heap_.top();
    const auto it = resident_.find(key);
    if (it == resident_.end()) {
      heap_.pop();  // evicted row, stale entry
      continue;
    }
    if (it->second != freq) {
      heap_.pop();  // frequency advanced since this entry was pushed
      heap_.emplace(it->second, key);
      continue;
    }
    return true;
  }
  return false;
}

void HotEmbeddingCache::evict(std::uint64_t key) {
  resident_.erase(key);
  // A dirty row leaves the buffer through its deferred array write: the
  // eviction flushes it. Read-only streams keep dirty_ empty, so this
  // branch never perturbs their accounting.
  const bool was_dirty = !dirty_.empty() && dirty_.erase(key) > 0;
  if (was_dirty) {
    ++stats_.flushes;
    ++pending_flushes_;
  }
  if (sink_ != nullptr)
    sink_->on_cache_evict(static_cast<std::uint32_t>(key >> 32),
                          static_cast<std::uint32_t>(key), was_dirty);
}

std::uint64_t HotEmbeddingCache::take_flushed() {
  const std::uint64_t n = pending_flushes_;
  pending_flushes_ = 0;
  return n;
}

bool HotEmbeddingCache::access(std::uint32_t table, std::uint32_t row) {
  const std::uint64_t key = key_of(table, row);
  const std::uint64_t freq = ++freq_[key];

  if (cfg_.capacity_rows == 0) {
    ++stats_.misses;
    return false;
  }

  if (auto it = resident_.find(key); it != resident_.end()) {
    it->second = freq;  // heap entry refreshed lazily in settle_heap()
    ++stats_.hits;
    return true;
  }

  ++stats_.misses;
  if (resident_.size() < cfg_.capacity_rows) {
    resident_.emplace(key, freq);
    heap_.emplace(freq, key);
    return false;
  }

  // Frequency-based admission: replace the coldest resident row only if the
  // missed row is now strictly hotter. The admitted row enters clean; if it
  // was flushed out dirty moments ago, the deferred write already happened
  // and must not resurrect.
  if (settle_heap()) {
    const auto [min_freq, min_key] = heap_.top();
    if (freq > min_freq) {
      heap_.pop();
      evict(min_key);
      resident_.emplace(key, freq);
      heap_.emplace(freq, key);
    }
  }
  return false;
}

bool HotEmbeddingCache::update(std::uint32_t table, std::uint32_t row) {
  const std::uint64_t key = key_of(table, row);
  ++freq_[key];  // updates count toward LFU admission on later reads

  if (cfg_.capacity_rows == 0) {
    ++stats_.update_misses;  // no buffer: pure write-through
    if (sink_ != nullptr) sink_->on_cache_update(/*absorbed=*/false);
    return false;
  }
  if (auto it = resident_.find(key); it != resident_.end()) {
    it->second = freq_[key];  // heap refreshed lazily in settle_heap()
    dirty_.insert(key);
    ++stats_.update_hits;
    if (sink_ != nullptr) sink_->on_cache_update(/*absorbed=*/true);
    return true;
  }
  // No write-allocate: the array takes the write directly, so an update
  // flood can never displace the read-hot set.
  ++stats_.update_misses;
  if (sink_ != nullptr) sink_->on_cache_update(/*absorbed=*/false);
  return false;
}

}  // namespace imars::serve
