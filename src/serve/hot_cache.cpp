#include "serve/hot_cache.hpp"

#include <algorithm>
#include <cassert>

namespace imars::serve {

HotEmbeddingCache::HotEmbeddingCache(const HotCacheConfig& cfg)
    : cfg_(cfg), tier_on_(cfg.tiering_enabled()) {
  if (tier_on_)
    warm_capacity_blocks_ = cfg_.warm_capacity_rows / cfg_.cold_block_rows;
}

// --- tiered embedding memory -----------------------------------------------

bool HotEmbeddingCache::warm_resident(std::uint32_t table,
                                      std::uint32_t row) const {
  if (!tier_on_) return false;
  return warm_.find(block_of(key_of(table, row))) != nullptr;
}

Tier HotEmbeddingCache::dest_tier(std::uint64_t key) const {
  if (!tier_on_) return Tier::kArray;
  return warm_.find(block_of(key)) != nullptr ? Tier::kWarm : Tier::kCold;
}

void HotEmbeddingCache::touch_tiers(std::uint64_t key, std::uint64_t freq) {
  const std::uint64_t bkey = block_of(key);
  if (std::uint64_t* b = warm_.find(bkey); b != nullptr) {
    // Warm hit: served from the CMA banks at the usual miss cost. Fresh
    // heat revokes any demotion reprieve the block was living on.
    ++stats_.warm_hits;
    const std::uint64_t heat = std::max(*b & kHeatMask, freq);
    *b = (*b & kPinBit) | heat;
    return;
  }
  // Cold block fault: the whole block streams in (charged by the caller
  // via take_block_faults()). Migration admits it warm immediately;
  // capacity demotions wait for the next batch-dispatch commit.
  ++stats_.cold_faults;
  stats_.cold_rows_fetched += cfg_.cold_block_rows;
  ++pending_block_faults_;
  if (cfg_.migrate) {
    ++faults_since_commit_;
    warm_[bkey] = freq;
    warm_fifo_.push_back(bkey);
  }
}

void HotEmbeddingCache::commit_migrations(device::Ns at) {
  if (!tier_on_) return;
  std::uint64_t demoted = 0;
  while (pinned_blocks_ + warm_fifo_.size() > warm_capacity_blocks_ &&
         !warm_fifo_.empty()) {
    const std::uint64_t bkey = warm_fifo_.front();
    warm_fifo_.pop_front();
    std::uint64_t* b = warm_.find(bkey);
    assert(b != nullptr && "warm FIFO entry without a warm slot");
    // One reprieve for a block still hotter than the settled-min LFU
    // bound of the hot tier: within a single commit each block is seen at
    // most twice (reprieve, then demote), so the walk terminates.
    if ((*b & kChanceBit) == 0 && (*b & kHeatMask) > tier_bound_) {
      *b |= kChanceBit;
      warm_fifo_.push_back(bkey);
      continue;
    }
    warm_.erase(bkey);
    ++demoted;
  }
  stats_.warm_evictions += demoted;
  const std::uint64_t promoted = faults_since_commit_;
  faults_since_commit_ = 0;
  if ((promoted != 0 || demoted != 0) && sink_ != nullptr)
    sink_->on_cache_migrate(at, promoted, demoted);
}

void HotEmbeddingCache::pin_warm(std::span<const std::uint64_t> keys) {
  if (!tier_on_) return;
  for (const std::uint64_t key : keys) {
    const std::uint64_t bkey = block_of(key);
    std::uint64_t* b = warm_.find(bkey);
    if (b != nullptr) {
      if ((*b & kPinBit) != 0) continue;  // block already pinned
      // Already warm via migration: promote to pinned and drop the FIFO
      // entry so a commit can never demote it.
      *b |= kPinBit;
      warm_fifo_.erase(std::find(warm_fifo_.begin(), warm_fifo_.end(), bkey));
    } else {
      warm_[bkey] = kPinBit;
    }
    ++pinned_blocks_;
  }
}

std::uint64_t HotEmbeddingCache::take_block_faults() {
  const std::uint64_t n = pending_block_faults_;
  pending_block_faults_ = 0;
  return n;
}

HotEmbeddingCache::TierFlush HotEmbeddingCache::take_flushed_tiers() {
  const TierFlush f{pending_flushes_, pending_flush_warm_,
                    pending_flush_cold_};
  pending_flushes_ = pending_flush_warm_ = pending_flush_cold_ = 0;
  return f;
}

/// Shared flush/evict tail: tier-split flush accounting plus the observer
/// callback, identical for both bookkeeping modes.
void HotEmbeddingCache::note_evict(std::uint64_t key, bool was_dirty) {
  const Tier dest = dest_tier(key);
  if (was_dirty) {
    ++stats_.flushes;
    ++pending_flushes_;
    if (tier_on_) {
      if (dest == Tier::kWarm) {
        ++stats_.flushes_warm;
        ++pending_flush_warm_;
      } else {
        ++stats_.flushes_cold;
        ++pending_flush_cold_;
      }
    }
  }
  if (sink_ != nullptr)
    sink_->on_cache_evict(static_cast<std::uint32_t>(key >> 32),
                          static_cast<std::uint32_t>(key), was_dirty, dest);
}

bool HotEmbeddingCache::contains(std::uint32_t table, std::uint32_t row) const {
  if (reference_)
    return resident_ref_.find(key_of(table, row)) != resident_ref_.end();
  const std::uint64_t* slot = table_.find(key_of(table, row));
  return slot != nullptr && (*slot & kResidentBit) != 0;
}

bool HotEmbeddingCache::dirty(std::uint32_t table, std::uint32_t row) const {
  if (reference_)
    return dirty_ref_.find(key_of(table, row)) != dirty_ref_.end();
  return dirty_.contains(key_of(table, row));
}

bool HotEmbeddingCache::settle_heap() {
  while (!heap_.empty()) {
    const auto [freq, key] = heap_.top();
    const std::uint64_t* slot = table_.find(key);
    if (slot == nullptr || (*slot & kResidentBit) == 0) {
      heap_.pop();  // evicted row, stale entry
      continue;
    }
    const std::uint64_t fresh = *slot & kFreqMask;
    if (fresh != freq) {
      heap_.pop();  // frequency advanced since this entry was pushed
      heap_.emplace(fresh, key);
      continue;
    }
    return true;
  }
  return false;
}

void HotEmbeddingCache::evict(std::uint64_t key) {
  // The frequency history outlives residency, so eviction is a bit clear
  // on the existing slot — never an erase.
  *table_.find(key) &= ~kResidentBit;
  --resident_count_;
  // A dirty row leaves the buffer through its deferred array write: the
  // eviction flushes it. Read-only streams keep dirty_ empty, so this
  // branch never perturbs their accounting.
  const bool was_dirty = !dirty_.empty() && dirty_.erase(key);
  note_evict(key, was_dirty);
}

std::uint64_t HotEmbeddingCache::take_flushed() {
  const std::uint64_t n = pending_flushes_;
  pending_flushes_ = 0;
  return n;
}

bool HotEmbeddingCache::access(std::uint32_t table, std::uint32_t row) {
  const std::uint64_t key = key_of(table, row);
  if (reference_) return access_ref(key);
  // Single probe: bump the lifetime frequency and read residency together.
  // `slot` is held across the admission bookkeeping below, which is only
  // sound because nothing after this line structurally mutates table_:
  // settle_heap() and evict() use table_.find (never rehashes) and
  // evict()'s erase targets dirty_, a different map. The generation
  // snapshot turns that argument into a debug-mode check — any future
  // insert/erase on table_ between here and the last `slot` write trips
  // the asserts instead of silently dereferencing a stale pointer.
  std::uint64_t& slot = table_[key];
  [[maybe_unused]] const std::uint64_t gen = table_.generation();
  const std::uint64_t freq = (slot & kFreqMask) + 1;
  const bool resident = (slot & kResidentBit) != 0;
  slot = (slot & kResidentBit) | freq;

  if (cfg_.capacity_rows == 0) {
    ++stats_.misses;
    // No hot buffer at all: with tiering on, misses still resolve against
    // the warm/cold stack (a pure warm/cold hierarchy).
    if (tier_on_) touch_tiers(key, freq);
    return false;
  }

  if (resident) {
    ++stats_.hits;  // heap entry refreshed lazily in settle_heap()
    return true;
  }

  ++stats_.misses;
  if (tier_on_) {
    touch_tiers(key, freq);  // warm_ only — never mutates table_
    // Promotion threshold: rows below the access-count bar serve from
    // their tier and never contend for the hot buffer.
    if (freq < cfg_.promote_min_freq) return false;
  }
  if (resident_count_ < cfg_.capacity_rows) {
    assert(table_.generation() == gen && "stale FlatMap64 slot pointer");
    slot |= kResidentBit;
    ++resident_count_;
    if (tier_on_) ++stats_.promotions;
    heap_.emplace(freq, key);
    return false;
  }

  // Frequency-based admission: replace the coldest resident row only if the
  // missed row is now strictly hotter. The admitted row enters clean; if it
  // was flushed out dirty moments ago, the deferred write already happened
  // and must not resurrect.
  //
  // Frequencies only ever increase and an admission replaces the minimum
  // with something strictly hotter, so the coldest resident frequency is
  // non-decreasing over the run: the last settled minimum is a permanent
  // lower bound. A miss at freq <= bound can never admit — skip the heap
  // settle outright (on Zipf traffic that is almost every cold miss, and
  // it is what keeps the O(log capacity) heap off the per-access path).
  if (freq > settled_min_ && settle_heap()) {
    const auto [min_freq, min_key] = heap_.top();
    settled_min_ = min_freq;
    if (freq > min_freq) {
      heap_.pop();
      evict(min_key);  // bit-clear on the existing slot — never an erase
      assert(table_.generation() == gen && "stale FlatMap64 slot pointer");
      slot |= kResidentBit;
      ++resident_count_;
      tier_bound_ = min_freq;  // settled-min LFU bound for tier demotion
      if (tier_on_) ++stats_.promotions;
      heap_.emplace(freq, key);
    }
  }
  return false;
}

bool HotEmbeddingCache::update(std::uint32_t table, std::uint32_t row) {
  const std::uint64_t key = key_of(table, row);
  if (reference_) return update_ref(key);
  std::uint64_t& slot = table_[key];
  const std::uint64_t freq =
      (slot & kFreqMask) + 1;  // updates count toward LFU admission
  const bool resident = (slot & kResidentBit) != 0;
  slot = (slot & kResidentBit) | freq;

  if (cfg_.capacity_rows == 0) {
    ++stats_.update_misses;  // no buffer: pure write-through
    if (sink_ != nullptr) sink_->on_cache_update(/*absorbed=*/false);
    return false;
  }
  if (resident) {
    dirty_.insert(key);  // heap refreshed lazily in settle_heap()
    ++stats_.update_hits;
    if (sink_ != nullptr) sink_->on_cache_update(/*absorbed=*/true);
    return true;
  }
  // No write-allocate: the array takes the write directly, so an update
  // flood can never displace the read-hot set.
  ++stats_.update_misses;
  if (sink_ != nullptr) sink_->on_cache_update(/*absorbed=*/false);
  return false;
}

// --- reference bookkeeping -------------------------------------------------
// The pre-optimization implementation, frozen: node-based unordered maps
// for the frequency history and resident set, and a heap settle attempted
// on every full-cache miss. Kept verbatim (modulo member names) so the
// reference host path pays exactly the bookkeeping cost the engine had
// before this rework, while making the same decisions to the bit.

bool HotEmbeddingCache::settle_heap_ref() {
  while (!heap_.empty()) {
    const auto [freq, key] = heap_.top();
    const auto it = resident_ref_.find(key);
    if (it == resident_ref_.end()) {
      heap_.pop();  // evicted row, stale entry
      continue;
    }
    if (it->second != freq) {
      heap_.pop();  // frequency advanced since this entry was pushed
      heap_.emplace(it->second, key);
      continue;
    }
    return true;
  }
  return false;
}

void HotEmbeddingCache::evict_ref(std::uint64_t key) {
  resident_ref_.erase(key);
  const bool was_dirty = !dirty_ref_.empty() && dirty_ref_.erase(key) > 0;
  note_evict(key, was_dirty);
}

bool HotEmbeddingCache::access_ref(std::uint64_t key) {
  const std::uint64_t freq = ++freq_ref_[key];

  if (cfg_.capacity_rows == 0) {
    ++stats_.misses;
    if (tier_on_) touch_tiers(key, freq);
    return false;
  }

  if (auto it = resident_ref_.find(key); it != resident_ref_.end()) {
    it->second = freq;  // heap entry refreshed lazily in settle_heap_ref()
    ++stats_.hits;
    return true;
  }

  ++stats_.misses;
  // The tier stack is shared with the optimized path (like heap_), and the
  // decision points match it line for line, so tier state and statistics
  // are bit-identical across bookkeeping modes.
  if (tier_on_) {
    touch_tiers(key, freq);
    if (freq < cfg_.promote_min_freq) return false;
  }
  if (resident_ref_.size() < cfg_.capacity_rows) {
    resident_ref_.emplace(key, freq);
    if (tier_on_) ++stats_.promotions;
    heap_.emplace(freq, key);
    return false;
  }

  if (settle_heap_ref()) {
    const auto [min_freq, min_key] = heap_.top();
    if (freq > min_freq) {
      heap_.pop();
      evict_ref(min_key);
      resident_ref_.emplace(key, freq);
      tier_bound_ = min_freq;  // settled-min LFU bound for tier demotion
      if (tier_on_) ++stats_.promotions;
      heap_.emplace(freq, key);
    }
  }
  return false;
}

bool HotEmbeddingCache::update_ref(std::uint64_t key) {
  ++freq_ref_[key];  // updates count toward LFU admission on later reads

  if (cfg_.capacity_rows == 0) {
    ++stats_.update_misses;  // no buffer: pure write-through
    if (sink_ != nullptr) sink_->on_cache_update(/*absorbed=*/false);
    return false;
  }
  if (auto it = resident_ref_.find(key); it != resident_ref_.end()) {
    it->second = freq_ref_[key];  // heap refreshed lazily
    dirty_ref_.insert(key);
    ++stats_.update_hits;
    if (sink_ != nullptr) sink_->on_cache_update(/*absorbed=*/true);
    return true;
  }
  ++stats_.update_misses;
  if (sink_ != nullptr) sink_->on_cache_update(/*absorbed=*/false);
  return false;
}

}  // namespace imars::serve
