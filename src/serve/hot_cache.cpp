#include "serve/hot_cache.hpp"

#include <cassert>

namespace imars::serve {

HotEmbeddingCache::HotEmbeddingCache(const HotCacheConfig& cfg) : cfg_(cfg) {}

bool HotEmbeddingCache::contains(std::uint32_t table, std::uint32_t row) const {
  if (reference_)
    return resident_ref_.find(key_of(table, row)) != resident_ref_.end();
  const std::uint64_t* slot = table_.find(key_of(table, row));
  return slot != nullptr && (*slot & kResidentBit) != 0;
}

bool HotEmbeddingCache::dirty(std::uint32_t table, std::uint32_t row) const {
  if (reference_)
    return dirty_ref_.find(key_of(table, row)) != dirty_ref_.end();
  return dirty_.contains(key_of(table, row));
}

bool HotEmbeddingCache::settle_heap() {
  while (!heap_.empty()) {
    const auto [freq, key] = heap_.top();
    const std::uint64_t* slot = table_.find(key);
    if (slot == nullptr || (*slot & kResidentBit) == 0) {
      heap_.pop();  // evicted row, stale entry
      continue;
    }
    const std::uint64_t fresh = *slot & kFreqMask;
    if (fresh != freq) {
      heap_.pop();  // frequency advanced since this entry was pushed
      heap_.emplace(fresh, key);
      continue;
    }
    return true;
  }
  return false;
}

void HotEmbeddingCache::evict(std::uint64_t key) {
  // The frequency history outlives residency, so eviction is a bit clear
  // on the existing slot — never an erase.
  *table_.find(key) &= ~kResidentBit;
  --resident_count_;
  // A dirty row leaves the buffer through its deferred array write: the
  // eviction flushes it. Read-only streams keep dirty_ empty, so this
  // branch never perturbs their accounting.
  const bool was_dirty = !dirty_.empty() && dirty_.erase(key);
  if (was_dirty) {
    ++stats_.flushes;
    ++pending_flushes_;
  }
  if (sink_ != nullptr)
    sink_->on_cache_evict(static_cast<std::uint32_t>(key >> 32),
                          static_cast<std::uint32_t>(key), was_dirty);
}

std::uint64_t HotEmbeddingCache::take_flushed() {
  const std::uint64_t n = pending_flushes_;
  pending_flushes_ = 0;
  return n;
}

bool HotEmbeddingCache::access(std::uint32_t table, std::uint32_t row) {
  const std::uint64_t key = key_of(table, row);
  if (reference_) return access_ref(key);
  // Single probe: bump the lifetime frequency and read residency together.
  // `slot` is held across the admission bookkeeping below, which is only
  // sound because nothing after this line structurally mutates table_:
  // settle_heap() and evict() use table_.find (never rehashes) and
  // evict()'s erase targets dirty_, a different map. The generation
  // snapshot turns that argument into a debug-mode check — any future
  // insert/erase on table_ between here and the last `slot` write trips
  // the asserts instead of silently dereferencing a stale pointer.
  std::uint64_t& slot = table_[key];
  [[maybe_unused]] const std::uint64_t gen = table_.generation();
  const std::uint64_t freq = (slot & kFreqMask) + 1;
  const bool resident = (slot & kResidentBit) != 0;
  slot = (slot & kResidentBit) | freq;

  if (cfg_.capacity_rows == 0) {
    ++stats_.misses;
    return false;
  }

  if (resident) {
    ++stats_.hits;  // heap entry refreshed lazily in settle_heap()
    return true;
  }

  ++stats_.misses;
  if (resident_count_ < cfg_.capacity_rows) {
    assert(table_.generation() == gen && "stale FlatMap64 slot pointer");
    slot |= kResidentBit;
    ++resident_count_;
    heap_.emplace(freq, key);
    return false;
  }

  // Frequency-based admission: replace the coldest resident row only if the
  // missed row is now strictly hotter. The admitted row enters clean; if it
  // was flushed out dirty moments ago, the deferred write already happened
  // and must not resurrect.
  //
  // Frequencies only ever increase and an admission replaces the minimum
  // with something strictly hotter, so the coldest resident frequency is
  // non-decreasing over the run: the last settled minimum is a permanent
  // lower bound. A miss at freq <= bound can never admit — skip the heap
  // settle outright (on Zipf traffic that is almost every cold miss, and
  // it is what keeps the O(log capacity) heap off the per-access path).
  if (freq > settled_min_ && settle_heap()) {
    const auto [min_freq, min_key] = heap_.top();
    settled_min_ = min_freq;
    if (freq > min_freq) {
      heap_.pop();
      evict(min_key);  // bit-clear on the existing slot — never an erase
      assert(table_.generation() == gen && "stale FlatMap64 slot pointer");
      slot |= kResidentBit;
      ++resident_count_;
      heap_.emplace(freq, key);
    }
  }
  return false;
}

bool HotEmbeddingCache::update(std::uint32_t table, std::uint32_t row) {
  const std::uint64_t key = key_of(table, row);
  if (reference_) return update_ref(key);
  std::uint64_t& slot = table_[key];
  const std::uint64_t freq =
      (slot & kFreqMask) + 1;  // updates count toward LFU admission
  const bool resident = (slot & kResidentBit) != 0;
  slot = (slot & kResidentBit) | freq;

  if (cfg_.capacity_rows == 0) {
    ++stats_.update_misses;  // no buffer: pure write-through
    if (sink_ != nullptr) sink_->on_cache_update(/*absorbed=*/false);
    return false;
  }
  if (resident) {
    dirty_.insert(key);  // heap refreshed lazily in settle_heap()
    ++stats_.update_hits;
    if (sink_ != nullptr) sink_->on_cache_update(/*absorbed=*/true);
    return true;
  }
  // No write-allocate: the array takes the write directly, so an update
  // flood can never displace the read-hot set.
  ++stats_.update_misses;
  if (sink_ != nullptr) sink_->on_cache_update(/*absorbed=*/false);
  return false;
}

// --- reference bookkeeping -------------------------------------------------
// The pre-optimization implementation, frozen: node-based unordered maps
// for the frequency history and resident set, and a heap settle attempted
// on every full-cache miss. Kept verbatim (modulo member names) so the
// reference host path pays exactly the bookkeeping cost the engine had
// before this rework, while making the same decisions to the bit.

bool HotEmbeddingCache::settle_heap_ref() {
  while (!heap_.empty()) {
    const auto [freq, key] = heap_.top();
    const auto it = resident_ref_.find(key);
    if (it == resident_ref_.end()) {
      heap_.pop();  // evicted row, stale entry
      continue;
    }
    if (it->second != freq) {
      heap_.pop();  // frequency advanced since this entry was pushed
      heap_.emplace(it->second, key);
      continue;
    }
    return true;
  }
  return false;
}

void HotEmbeddingCache::evict_ref(std::uint64_t key) {
  resident_ref_.erase(key);
  const bool was_dirty = !dirty_ref_.empty() && dirty_ref_.erase(key) > 0;
  if (was_dirty) {
    ++stats_.flushes;
    ++pending_flushes_;
  }
  if (sink_ != nullptr)
    sink_->on_cache_evict(static_cast<std::uint32_t>(key >> 32),
                          static_cast<std::uint32_t>(key), was_dirty);
}

bool HotEmbeddingCache::access_ref(std::uint64_t key) {
  const std::uint64_t freq = ++freq_ref_[key];

  if (cfg_.capacity_rows == 0) {
    ++stats_.misses;
    return false;
  }

  if (auto it = resident_ref_.find(key); it != resident_ref_.end()) {
    it->second = freq;  // heap entry refreshed lazily in settle_heap_ref()
    ++stats_.hits;
    return true;
  }

  ++stats_.misses;
  if (resident_ref_.size() < cfg_.capacity_rows) {
    resident_ref_.emplace(key, freq);
    heap_.emplace(freq, key);
    return false;
  }

  if (settle_heap_ref()) {
    const auto [min_freq, min_key] = heap_.top();
    if (freq > min_freq) {
      heap_.pop();
      evict_ref(min_key);
      resident_ref_.emplace(key, freq);
      heap_.emplace(freq, key);
    }
  }
  return false;
}

bool HotEmbeddingCache::update_ref(std::uint64_t key) {
  ++freq_ref_[key];  // updates count toward LFU admission on later reads

  if (cfg_.capacity_rows == 0) {
    ++stats_.update_misses;  // no buffer: pure write-through
    if (sink_ != nullptr) sink_->on_cache_update(/*absorbed=*/false);
    return false;
  }
  if (auto it = resident_ref_.find(key); it != resident_ref_.end()) {
    it->second = freq_ref_[key];  // heap refreshed lazily
    dirty_ref_.insert(key);
    ++stats_.update_hits;
    if (sink_ != nullptr) sink_->on_cache_update(/*absorbed=*/true);
    return true;
  }
  ++stats_.update_misses;
  if (sink_ != nullptr) sink_->on_cache_update(/*absorbed=*/false);
  return false;
}

}  // namespace imars::serve
