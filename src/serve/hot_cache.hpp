// Frequency-aware hot-embedding cache.
//
// Recommendation ET traffic is Zipf-skewed (src/data/zipf.*): a small set
// of popular item rows absorbs most accesses. The serving runtime keeps a
// digital SRAM hot-row buffer at the controller periphery and serves hot
// UIET/ItET rows from it at device::DeviceProfile::cache_read cost instead
// of the CMA-array + RSC-bus cost (core::PerfModel::row_fetch /
// pooled_row). Admission is frequency-based (LFU over full access history,
// TinyLFU-style): a row is admitted only once its observed frequency
// exceeds the coldest resident row's, so one-off scans cannot flush the
// hot set.
#pragma once

#include <cstddef>
#include <cstdint>
#include <queue>
#include <unordered_map>
#include <vector>

namespace imars::serve {

struct HotCacheConfig {
  std::size_t capacity_rows = 0;  ///< 0 disables the cache (all misses)
};

struct CacheStats {
  std::uint64_t hits = 0;
  std::uint64_t misses = 0;

  std::uint64_t accesses() const noexcept { return hits + misses; }
  double hit_rate() const noexcept {
    const std::uint64_t n = accesses();
    return n == 0 ? 0.0 : static_cast<double>(hits) / static_cast<double>(n);
  }
};

class HotEmbeddingCache {
 public:
  explicit HotEmbeddingCache(const HotCacheConfig& cfg);

  const HotCacheConfig& config() const noexcept { return cfg_; }

  /// Records one access to row `row` of table `table`; returns true on a
  /// cache hit. Updates frequency counters and the resident set.
  bool access(std::uint32_t table, std::uint32_t row);

  const CacheStats& stats() const noexcept { return stats_; }
  void reset_stats() noexcept { stats_ = CacheStats{}; }

  std::size_t resident_rows() const noexcept { return resident_.size(); }
  bool contains(std::uint32_t table, std::uint32_t row) const;

 private:
  static std::uint64_t key_of(std::uint32_t table, std::uint32_t row) {
    return (static_cast<std::uint64_t>(table) << 32) | row;
  }

  /// Pops stale heap entries until the top reflects a current resident
  /// frequency; returns false when the resident set is empty.
  bool settle_heap();

  using HeapEntry = std::pair<std::uint64_t, std::uint64_t>;  // (freq, key)

  HotCacheConfig cfg_;
  CacheStats stats_;
  std::unordered_map<std::uint64_t, std::uint64_t> freq_;      // full history
  std::unordered_map<std::uint64_t, std::uint64_t> resident_;  // key -> freq
  // Lazy min-heap over resident frequencies (stale entries skipped).
  std::priority_queue<HeapEntry, std::vector<HeapEntry>,
                      std::greater<HeapEntry>>
      heap_;
};

}  // namespace imars::serve
