// Frequency-aware hot-embedding cache with a write-back model.
//
// Recommendation ET traffic is Zipf-skewed (src/data/zipf.*): a small set
// of popular item rows absorbs most accesses. The serving runtime keeps a
// digital SRAM hot-row buffer at the controller periphery and serves hot
// UIET/ItET rows from it at device::DeviceProfile::cache_read cost instead
// of the CMA-array + RSC-bus cost (core::PerfModel::row_fetch /
// pooled_row). Admission is frequency-based (LFU over full access history,
// TinyLFU-style): a row is admitted only once its observed frequency
// exceeds the coldest resident row's, so one-off scans cannot flush the
// hot set.
//
// Write-back (embedding-update traffic, cf. MARM arXiv:2411.09425): an
// update to a *resident* row is absorbed into the periphery buffer — the
// row is marked dirty and the fill is charged at the buffer-write cost
// (DeviceProfile::cache_write) instead of the CMA row write. An update to
// a non-resident row writes through to the array (PerfModel::row_write).
// When a dirty row is evicted by frequency admission, its deferred array
// write finally happens: the eviction *flushes* the row, and the caller
// charges the flush into hardware time (take_flushed()). Updates bump the
// LFU frequency but never allocate on write — a pure update stream cannot
// flush the read-hot set. With capacity 0 every update degrades to plain
// write-through.
#pragma once

#include <cstddef>
#include <cstdint>
#include <queue>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "serve/observe.hpp"
#include "util/flat_map.hpp"

namespace imars::serve {

struct HotCacheConfig {
  std::size_t capacity_rows = 0;  ///< 0 disables the cache (all misses)
};

struct CacheStats {
  std::uint64_t hits = 0;
  std::uint64_t misses = 0;
  // --- write-back model -----------------------------------------------
  std::uint64_t update_hits = 0;    ///< updates absorbed in the buffer
  std::uint64_t update_misses = 0;  ///< updates written through to the CMA
  std::uint64_t flushes = 0;        ///< dirty rows written back on eviction

  std::uint64_t accesses() const noexcept { return hits + misses; }
  double hit_rate() const noexcept {
    const std::uint64_t n = accesses();
    return n == 0 ? 0.0 : static_cast<double>(hits) / static_cast<double>(n);
  }
  std::uint64_t updates() const noexcept { return update_hits + update_misses; }
  /// Fraction of update writes the periphery buffer absorbed.
  double write_hit_rate() const noexcept {
    const std::uint64_t n = updates();
    return n == 0 ? 0.0
                  : static_cast<double>(update_hits) / static_cast<double>(n);
  }
};

class HotEmbeddingCache {
 public:
  explicit HotEmbeddingCache(const HotCacheConfig& cfg);

  const HotCacheConfig& config() const noexcept { return cfg_; }

  /// Records one access to row `row` of table `table`; returns true on a
  /// cache hit. Updates frequency counters and the resident set. Admitting
  /// a hotter row may evict a dirty resident — the flush is recorded for
  /// take_flushed().
  bool access(std::uint32_t table, std::uint32_t row);

  /// Records one embedding-update write; returns true when the buffer
  /// absorbed it (row resident: marked dirty, charged at buffer-fill cost)
  /// and false on write-through (not resident, or cache disabled: charged
  /// at the CMA row-write cost). Bumps the LFU frequency but never
  /// allocates, so a write flood cannot evict the read-hot set.
  bool update(std::uint32_t table, std::uint32_t row);

  /// Dirty-row flushes recorded since the last call (evictions of rows
  /// holding a deferred array write); clears the counter. Callers charge
  /// each flush at the row-write cost into the hardware time of whatever
  /// operation triggered the eviction.
  std::uint64_t take_flushed();

  const CacheStats& stats() const noexcept { return stats_; }
  void reset_stats() noexcept { stats_ = CacheStats{}; }

  /// Attaches a pure-observer sink (nullptr detaches): evictions (with
  /// their dirty flag) and update absorption are reported as they happen.
  /// Observation never alters admission, eviction or the statistics.
  void set_observer(ObserverSink* sink) noexcept { sink_ = sink; }

  /// Reference (pre-optimization) bookkeeping: node-based hash maps for
  /// the frequency history / resident set and a heap settle on every
  /// full-cache miss — exactly the data structures and work the cache had
  /// before the hot-path rework. Every decision and statistic is identical
  /// (the scaling bench's parity grid asserts it run for run); only the
  /// host cost differs. Set by the runtime under
  /// ServingConfig::reference_host_path. Must be chosen before first use.
  void set_reference_bookkeeping(bool on) noexcept { reference_ = on; }

  std::size_t resident_rows() const noexcept {
    return reference_ ? resident_ref_.size() : resident_count_;
  }
  std::size_t dirty_rows() const noexcept {
    return reference_ ? dirty_ref_.size() : dirty_.size();
  }
  bool contains(std::uint32_t table, std::uint32_t row) const;
  bool dirty(std::uint32_t table, std::uint32_t row) const;

 private:
  static std::uint64_t key_of(std::uint32_t table, std::uint32_t row) {
    return (static_cast<std::uint64_t>(table) << 32) | row;
  }

  /// Pops stale heap entries until the top reflects a current resident
  /// frequency; returns false when the resident set is empty.
  bool settle_heap();

  /// Drops `key` from the resident set; a dirty row records its flush.
  void evict(std::uint64_t key);

  // Reference-bookkeeping twins (pre-optimization data structures).
  bool access_ref(std::uint64_t key);
  bool update_ref(std::uint64_t key);
  bool settle_heap_ref();
  void evict_ref(std::uint64_t key);

  using HeapEntry = std::pair<std::uint64_t, std::uint64_t>;  // (freq, key)

  HotCacheConfig cfg_;
  CacheStats stats_;
  ObserverSink* sink_ = nullptr;  ///< pure observer; never feeds back
  // access() is the single hottest call in StagePipeline::collect(), so
  // the frequency history and the resident set share ONE open-addressing
  // table (util::FlatMap64): the resident set's per-key frequency is
  // always the lifetime frequency (every touch of a resident row syncs
  // it), so a slot packs {resident bit | lifetime freq} and an access is a
  // single probe. Eviction clears the bit — the frequency history must
  // survive the eviction anyway — so admission churn never erases or
  // re-inserts a key. None of this changes any decision the cache makes.
  static constexpr std::uint64_t kResidentBit = 1ULL << 63;
  static constexpr std::uint64_t kFreqMask = kResidentBit - 1;
  util::FlatMap64 table_;          // key -> resident bit | lifetime freq
  std::size_t resident_count_ = 0;
  /// Lower bound on the coldest resident frequency (monotone: frequencies
  /// only grow and admissions replace the min with a hotter row). Misses
  /// at or below it skip the admission settle entirely.
  std::uint64_t settled_min_ = 0;
  // Reference-bookkeeping state (populated only when reference_ is set):
  // the node-based containers the cache used before the hot-path rework.
  bool reference_ = false;
  std::unordered_map<std::uint64_t, std::uint64_t> freq_ref_;
  std::unordered_map<std::uint64_t, std::uint64_t> resident_ref_;
  std::unordered_set<std::uint64_t> dirty_ref_;
  util::FlatSet64 dirty_;          // resident rows awaiting flush
  std::uint64_t pending_flushes_ = 0;        // since last take_flushed()
  // Lazy min-heap over resident frequencies (stale entries skipped).
  std::priority_queue<HeapEntry, std::vector<HeapEntry>,
                      std::greater<HeapEntry>>
      heap_;
};

}  // namespace imars::serve
