// Frequency-aware hot-embedding cache with a write-back model.
//
// Recommendation ET traffic is Zipf-skewed (src/data/zipf.*): a small set
// of popular item rows absorbs most accesses. The serving runtime keeps a
// digital SRAM hot-row buffer at the controller periphery and serves hot
// UIET/ItET rows from it at device::DeviceProfile::cache_read cost instead
// of the CMA-array + RSC-bus cost (core::PerfModel::row_fetch /
// pooled_row). Admission is frequency-based (LFU over full access history,
// TinyLFU-style): a row is admitted only once its observed frequency
// exceeds the coldest resident row's, so one-off scans cannot flush the
// hot set.
//
// Write-back (embedding-update traffic, cf. MARM arXiv:2411.09425): an
// update to a *resident* row is absorbed into the periphery buffer — the
// row is marked dirty and the fill is charged at the buffer-write cost
// (DeviceProfile::cache_write) instead of the CMA row write. An update to
// a non-resident row writes through to the array (PerfModel::row_write).
// When a dirty row is evicted by frequency admission, its deferred array
// write finally happens: the eviction *flushes* the row, and the caller
// charges the flush into hardware time (take_flushed()). Updates bump the
// LFU frequency but never allocate on write — a pure update stream cannot
// flush the read-hot set. With capacity 0 every update degrades to plain
// write-through.
//
// Tiered embedding memory (RecFlash arXiv:2604.25338 frequency mapping):
// behind the hot periphery buffer sit a *warm* tier (rows resident in the
// FeFET/ReRAM CMA banks, served at the usual row_fetch/pooled_row cost)
// and a modeled *cold* bulk tier with block-granular fetch — a miss whose
// block is not warm-resident faults the whole block in, charged by the
// pipeline as one PerfModel::cold_block_fetch (take_block_faults()).
// Migration is frequency-driven and committed only at batch-dispatch
// boundaries (commit_migrations()), never at completion, so decisions are
// deterministic under overlap on/off: a cold fault admits its block warm
// immediately (counters/costs), but capacity demotions are deferred to the
// next commit, which walks a FIFO of unpinned blocks and grants one
// reprieve to any block still hotter than the settled-min LFU bound of
// the hot tier (the frequency of the coldest hot-resident row at the last
// admission). Write-back flushes land in the row's owning tier: warm if
// the block is resident or pinned, cold otherwise (charged the extra
// stream-out by the pipeline). Both tiers disabled (either knob 0) is
// bit-identical to the flat row store.
#pragma once

#include <cstddef>
#include <cstdint>
#include <deque>
#include <queue>
#include <span>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "serve/observe.hpp"
#include "util/flat_map.hpp"

namespace imars::serve {

struct HotCacheConfig {
  std::size_t capacity_rows = 0;  ///< 0 disables the cache (all misses)
  // --- tiered embedding memory (both knobs > 0 to enable) ---------------
  /// Warm-tier capacity in rows (block-granular internally). 0 disables
  /// tiering: the store degrades to the flat (pre-tier) behavior.
  std::size_t warm_capacity_rows = 0;
  /// Rows pulled per cold-tier block fault. 0 disables tiering.
  std::size_t cold_block_rows = 0;
  /// Minimum lifetime access count before a row may be promoted into the
  /// hot periphery buffer (tiered mode only; 0 = no threshold).
  std::uint64_t promote_min_freq = 0;
  /// Online migration: cold faults admit their block warm and commits
  /// demote over-capacity blocks. Off = only pinned blocks stay warm
  /// (unpinned traffic streams through the cold tier, faulting per miss).
  bool migrate = true;

  bool tiering_enabled() const noexcept {
    return warm_capacity_rows > 0 && cold_block_rows > 0;
  }
};

struct CacheStats {
  std::uint64_t hits = 0;
  std::uint64_t misses = 0;
  // --- write-back model -----------------------------------------------
  std::uint64_t update_hits = 0;    ///< updates absorbed in the buffer
  std::uint64_t update_misses = 0;  ///< updates written through to the CMA
  std::uint64_t flushes = 0;        ///< dirty rows written back on eviction
  // --- tiered embedding memory (all zero with tiering disabled) ---------
  std::uint64_t warm_hits = 0;     ///< misses served from a warm block
  std::uint64_t cold_faults = 0;   ///< block faults against the cold tier
  std::uint64_t cold_rows_fetched = 0;  ///< rows pulled by block faults
  std::uint64_t warm_evictions = 0;     ///< blocks demoted warm -> cold
  std::uint64_t promotions = 0;    ///< rows admitted hot (tiered mode)
  std::uint64_t flushes_warm = 0;  ///< flushes landing in a warm block
  std::uint64_t flushes_cold = 0;  ///< flushes streaming out to cold

  std::uint64_t accesses() const noexcept { return hits + misses; }
  double hit_rate() const noexcept {
    const std::uint64_t n = accesses();
    return n == 0 ? 0.0 : static_cast<double>(hits) / static_cast<double>(n);
  }
  std::uint64_t updates() const noexcept { return update_hits + update_misses; }
  /// Fraction of update writes the periphery buffer absorbed.
  double write_hit_rate() const noexcept {
    const std::uint64_t n = updates();
    return n == 0 ? 0.0
                  : static_cast<double>(update_hits) / static_cast<double>(n);
  }
};

class HotEmbeddingCache {
 public:
  explicit HotEmbeddingCache(const HotCacheConfig& cfg);

  const HotCacheConfig& config() const noexcept { return cfg_; }

  /// Records one access to row `row` of table `table`; returns true on a
  /// cache hit. Updates frequency counters and the resident set. Admitting
  /// a hotter row may evict a dirty resident — the flush is recorded for
  /// take_flushed().
  bool access(std::uint32_t table, std::uint32_t row);

  /// Records one embedding-update write; returns true when the buffer
  /// absorbed it (row resident: marked dirty, charged at buffer-fill cost)
  /// and false on write-through (not resident, or cache disabled: charged
  /// at the CMA row-write cost). Bumps the LFU frequency but never
  /// allocates, so a write flood cannot evict the read-hot set.
  bool update(std::uint32_t table, std::uint32_t row);

  /// Dirty-row flushes recorded since the last call (evictions of rows
  /// holding a deferred array write); clears the counter. Callers charge
  /// each flush at the row-write cost into the hardware time of whatever
  /// operation triggered the eviction.
  std::uint64_t take_flushed();

  /// Per-tier breakdown of the pending flushes: `rows` mirrors what
  /// take_flushed() would return, `warm`/`cold` split it by destination
  /// tier (both zero with tiering disabled). Clears all three counters —
  /// callers use either this or take_flushed(), not both.
  struct TierFlush {
    std::uint64_t rows = 0;
    std::uint64_t warm = 0;
    std::uint64_t cold = 0;
  };
  TierFlush take_flushed_tiers();

  /// Cold-tier block faults recorded since the last call; clears the
  /// counter. Callers charge each fault at the block-fetch cost
  /// (PerfModel::cold_block_fetch over config().cold_block_rows) into the
  /// hardware time of the stage that missed.
  std::uint64_t take_block_faults();

  /// Commits deferred tier migrations at a batch-dispatch boundary (`at`
  /// is the dispatch time, observer-only): demotes FIFO-order unpinned
  /// warm blocks down to capacity, granting one reprieve to blocks still
  /// hotter than the hot tier's settled-min LFU bound. Called by the
  /// runtime before collecting each batch — never at completion — so the
  /// decision sequence depends only on the submission order and is
  /// identical under overlap on/off. No-op with tiering disabled.
  void commit_migrations(device::Ns at);

  /// Pins the blocks containing `keys` (key = table<<32 | row) as
  /// permanently warm-resident: never demoted, not FIFO-tracked, but they
  /// occupy warm capacity. Static tier placement for benches; pins beyond
  /// capacity leave migration no room (unpinned blocks then stream
  /// through). Call before first use.
  void pin_warm(std::span<const std::uint64_t> keys);

  bool tiering_enabled() const noexcept { return tier_on_; }
  /// True when the block holding (table, row) is warm-resident or pinned.
  bool warm_resident(std::uint32_t table, std::uint32_t row) const;

  const CacheStats& stats() const noexcept { return stats_; }
  void reset_stats() noexcept { stats_ = CacheStats{}; }

  /// Attaches a pure-observer sink (nullptr detaches): evictions (with
  /// their dirty flag) and update absorption are reported as they happen.
  /// Observation never alters admission, eviction or the statistics.
  void set_observer(ObserverSink* sink) noexcept { sink_ = sink; }

  /// Reference (pre-optimization) bookkeeping: node-based hash maps for
  /// the frequency history / resident set and a heap settle on every
  /// full-cache miss — exactly the data structures and work the cache had
  /// before the hot-path rework. Every decision and statistic is identical
  /// (the scaling bench's parity grid asserts it run for run); only the
  /// host cost differs. Set by the runtime under
  /// ServingConfig::reference_host_path. Must be chosen before first use.
  void set_reference_bookkeeping(bool on) noexcept { reference_ = on; }

  std::size_t resident_rows() const noexcept {
    return reference_ ? resident_ref_.size() : resident_count_;
  }
  std::size_t dirty_rows() const noexcept {
    return reference_ ? dirty_ref_.size() : dirty_.size();
  }
  bool contains(std::uint32_t table, std::uint32_t row) const;
  bool dirty(std::uint32_t table, std::uint32_t row) const;

 private:
  static std::uint64_t key_of(std::uint32_t table, std::uint32_t row) {
    return (static_cast<std::uint64_t>(table) << 32) | row;
  }
  /// Key of the cold block holding `key`: the row component rounded down
  /// to a block boundary (same table bits).
  std::uint64_t block_of(std::uint64_t key) const noexcept {
    const std::uint64_t row = key & 0xffffffffULL;
    return (key & ~0xffffffffULL) | (row - row % cfg_.cold_block_rows);
  }

  /// Pops stale heap entries until the top reflects a current resident
  /// frequency; returns false when the resident set is empty.
  bool settle_heap();

  /// Drops `key` from the resident set; a dirty row records its flush.
  void evict(std::uint64_t key);

  /// Tier bookkeeping for one hot-buffer miss at lifetime frequency
  /// `freq`: a warm-resident (or pinned) block is a warm hit and refreshes
  /// the block heat; anything else is a cold block fault, which admits the
  /// block warm when migration is on (demotion deferred to the next
  /// commit). Shared verbatim by both bookkeeping modes, so tier decisions
  /// are mode-independent.
  void touch_tiers(std::uint64_t key, std::uint64_t freq);
  /// Destination tier of a row leaving the hot buffer (flush/evict).
  Tier dest_tier(std::uint64_t key) const;
  /// Shared flush/evict tail of evict()/evict_ref().
  void note_evict(std::uint64_t key, bool was_dirty);

  // Reference-bookkeeping twins (pre-optimization data structures).
  bool access_ref(std::uint64_t key);
  bool update_ref(std::uint64_t key);
  bool settle_heap_ref();
  void evict_ref(std::uint64_t key);

  using HeapEntry = std::pair<std::uint64_t, std::uint64_t>;  // (freq, key)

  HotCacheConfig cfg_;
  CacheStats stats_;
  ObserverSink* sink_ = nullptr;  ///< pure observer; never feeds back
  // access() is the single hottest call in StagePipeline::collect(), so
  // the frequency history and the resident set share ONE open-addressing
  // table (util::FlatMap64): the resident set's per-key frequency is
  // always the lifetime frequency (every touch of a resident row syncs
  // it), so a slot packs {resident bit | lifetime freq} and an access is a
  // single probe. Eviction clears the bit — the frequency history must
  // survive the eviction anyway — so admission churn never erases or
  // re-inserts a key. None of this changes any decision the cache makes.
  static constexpr std::uint64_t kResidentBit = 1ULL << 63;
  static constexpr std::uint64_t kFreqMask = kResidentBit - 1;
  util::FlatMap64 table_;          // key -> resident bit | lifetime freq
  std::size_t resident_count_ = 0;
  /// Lower bound on the coldest resident frequency (monotone: frequencies
  /// only grow and admissions replace the min with a hotter row). Misses
  /// at or below it skip the admission settle entirely.
  std::uint64_t settled_min_ = 0;
  // Reference-bookkeeping state (populated only when reference_ is set):
  // the node-based containers the cache used before the hot-path rework.
  bool reference_ = false;
  std::unordered_map<std::uint64_t, std::uint64_t> freq_ref_;
  std::unordered_map<std::uint64_t, std::uint64_t> resident_ref_;
  std::unordered_set<std::uint64_t> dirty_ref_;
  util::FlatSet64 dirty_;          // resident rows awaiting flush
  std::uint64_t pending_flushes_ = 0;        // since last take_flushed()
  std::uint64_t pending_flush_warm_ = 0;     // tier split of the above
  std::uint64_t pending_flush_cold_ = 0;
  // Lazy min-heap over resident frequencies (stale entries skipped).
  std::priority_queue<HeapEntry, std::vector<HeapEntry>,
                      std::greater<HeapEntry>>
      heap_;
  // --- tiered embedding memory -----------------------------------------
  // The warm tier is block-granular: one FlatMap64 slot per resident
  // block packs {pin bit | reprieve bit | block heat}, where heat is the
  // max lifetime frequency seen through the block. The FIFO holds every
  // unpinned resident block in admission order; commit_migrations() pops
  // from the front. Shared (not duplicated) by the reference-bookkeeping
  // mode — like heap_ — so both modes make bit-identical tier decisions.
  static constexpr std::uint64_t kPinBit = 1ULL << 63;
  static constexpr std::uint64_t kChanceBit = 1ULL << 62;
  static constexpr std::uint64_t kHeatMask = kChanceBit - 1;
  bool tier_on_ = false;               ///< both tier knobs nonzero
  std::size_t warm_capacity_blocks_ = 0;
  std::size_t pinned_blocks_ = 0;
  util::FlatMap64 warm_;               ///< block key -> pin|chance|heat
  std::deque<std::uint64_t> warm_fifo_;  ///< unpinned residents, FIFO order
  /// Settled-min LFU bound shared with the tier layer: the frequency of
  /// the coldest hot-resident row at the last hot admission. Updated at
  /// the same decision point in both bookkeeping modes (admissions are
  /// mode-identical), so commit_migrations() sees the same bound either
  /// way. Distinct from settled_min_, which the reference path never
  /// maintains.
  std::uint64_t tier_bound_ = 0;
  std::uint64_t pending_block_faults_ = 0;  // since last take_block_faults()
  std::uint64_t faults_since_commit_ = 0;   // for the migrate trace instant
};

}  // namespace imars::serve
