#include "serve/load_gen.hpp"

#include <cmath>

#include "util/error.hpp"

namespace imars::serve {

LoadGenerator::LoadGenerator(const LoadGenConfig& cfg)
    : cfg_(cfg),
      users_(cfg.num_users, cfg.user_zipf_s),
      rng_(cfg.seed),
      gap_rng_(util::hash64(cfg.seed, 0x6170736f6e6e6fULL)),
      class_rng_(util::hash64(cfg.seed, 0x716f73636c617373ULL)),
      update_rng_(util::hash64(cfg.seed, 0x757064617465ULL)),
      churn_rng_(util::hash64(cfg.seed, 0x636875726eULL)) {
  IMARS_REQUIRE(cfg_.clients >= 1, "LoadGenerator: need at least one client");
  IMARS_REQUIRE(cfg_.num_users >= 1, "LoadGenerator: empty user population");
  if (cfg_.session_mode) {
    IMARS_REQUIRE(cfg_.session_churn >= 0.0 && cfg_.session_churn <= 1.0,
                  "LoadGenerator: session_churn must be in [0, 1]");
    SessionTableConfig scfg;
    scfg.capacity = cfg_.session_capacity;
    scfg.max_kicks = cfg_.session_max_kicks;
    scfg.seed = cfg_.seed;
    sessions_ = std::make_unique<SessionTable>(scfg);
  }
  if (cfg_.arrivals == ArrivalProcess::kOpenPoisson)
    IMARS_REQUIRE(cfg_.rate_qps > 0.0,
                  "LoadGenerator: open-loop mode needs a positive rate");
  if (cfg_.arrivals == ArrivalProcess::kTrace) {
    IMARS_REQUIRE(!cfg_.trace.empty(), "LoadGenerator: empty trace");
    for (std::size_t i = 1; i < cfg_.trace.size(); ++i)
      IMARS_REQUIRE(cfg_.trace[i - 1].enqueue <= cfg_.trace[i].enqueue,
                    "LoadGenerator: trace arrivals must be time-ordered");
  }
  for (double share : cfg_.class_mix) {
    IMARS_REQUIRE(share >= 0.0,
                  "LoadGenerator: class_mix shares must be non-negative");
    mix_total_ += share;
  }
  if (!cfg_.class_mix.empty())
    IMARS_REQUIRE(mix_total_ > 0.0,
                  "LoadGenerator: class_mix must have a positive share");
  IMARS_REQUIRE(cfg_.update_fraction >= 0.0 && cfg_.update_fraction <= 1.0,
                "LoadGenerator: update_fraction must be in [0, 1]");
}

bool LoadGenerator::draw_update() {
  // Zero fraction performs no draw at all: read-only streams consume
  // nothing from the update stream and stay bit-identical.
  if (cfg_.update_fraction <= 0.0) return false;
  return update_rng_.uniform() < cfg_.update_fraction;
}

void LoadGenerator::stamp_session(Request& r) {
  if (sessions_ == nullptr) return;
  // Churn first, then the touch: a departing session can be the drawn
  // user's own, making the next touch a re-arrival. Zero churn performs no
  // draw at all, so churn-free session streams consume nothing extra.
  if (cfg_.session_churn > 0.0 &&
      churn_rng_.uniform() < cfg_.session_churn)
    sessions_->evict_random(churn_rng_);
  const SessionState s = sessions_->touch(r.user, r.enqueue);
  r.session_seq = s.sequence;
  r.session_fresh = s.sequence == 1;
}

std::size_t LoadGenerator::draw_class() {
  if (cfg_.class_mix.empty()) return 0;
  // Inverse-CDF draw from the normalized mix, on the dedicated stream.
  double u = class_rng_.uniform() * mix_total_;
  for (std::size_t cls = 0; cls + 1 < cfg_.class_mix.size(); ++cls) {
    if (u < cfg_.class_mix[cls]) return cls;
    u -= cfg_.class_mix[cls];
  }
  return cfg_.class_mix.size() - 1;
}

std::optional<Request> LoadGenerator::next(std::size_t client,
                                           device::Ns ready) {
  IMARS_REQUIRE(cfg_.arrivals == ArrivalProcess::kClosedLoop,
                "LoadGenerator: next() is the closed-loop entry point");
  IMARS_REQUIRE(client < cfg_.clients, "LoadGenerator: client out of range");
  if (issued_ >= cfg_.total_queries) return std::nullopt;
  Request r;
  r.id = issued_++;
  r.client = client;
  r.user = users_.sample(rng_);
  r.qos_class = draw_class();
  r.is_update = draw_update();
  r.enqueue = ready + cfg_.think;
  stamp_session(r);
  return r;
}

std::optional<Request> LoadGenerator::next_arrival() {
  IMARS_REQUIRE(cfg_.arrivals != ArrivalProcess::kClosedLoop,
                "LoadGenerator: next_arrival() is the open-loop entry point");
  if (cfg_.arrivals == ArrivalProcess::kTrace) {
    if (issued_ >= cfg_.trace.size()) return std::nullopt;
    return cfg_.trace[issued_++];
  }
  if (issued_ >= cfg_.total_queries) return std::nullopt;
  // Exponential inter-arrival gap with mean 1/rate, in device nanoseconds
  // (log1p(-u) with u in [0,1) avoids log(0)). Gaps come from their own
  // stream so user draws stay seed-comparable between the open and closed
  // regimes.
  const double u = gap_rng_.uniform();
  const double gap_s = -std::log1p(-u) / cfg_.rate_qps;
  open_clock_ += device::Ns{gap_s * 1e9};
  Request r;
  r.id = issued_++;
  r.client = r.id % cfg_.clients;  // labeling only; arrivals are global
  r.user = users_.sample(rng_);
  r.qos_class = draw_class();
  r.is_update = draw_update();
  r.enqueue = open_clock_;
  stamp_session(r);
  return r;
}

}  // namespace imars::serve
