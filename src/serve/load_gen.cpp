#include "serve/load_gen.hpp"

#include "util/error.hpp"

namespace imars::serve {

LoadGenerator::LoadGenerator(const LoadGenConfig& cfg)
    : cfg_(cfg), users_(cfg.num_users, cfg.user_zipf_s), rng_(cfg.seed) {
  IMARS_REQUIRE(cfg_.clients >= 1, "LoadGenerator: need at least one client");
  IMARS_REQUIRE(cfg_.num_users >= 1, "LoadGenerator: empty user population");
}

std::optional<Request> LoadGenerator::next(std::size_t client,
                                           device::Ns ready) {
  IMARS_REQUIRE(client < cfg_.clients, "LoadGenerator: client out of range");
  if (issued_ >= cfg_.total_queries) return std::nullopt;
  Request r;
  r.id = issued_++;
  r.client = client;
  r.user = users_.sample(rng_);
  r.enqueue = ready + cfg_.think;
  return r;
}

}  // namespace imars::serve
