// Load generation in two arrival regimes:
//
//   * closed loop — C concurrent clients, each issuing its next query the
//     moment its previous one completes (plus optional think time). The
//     offered load self-throttles to the fabric's capacity, so the closed
//     loop can never overload it.
//   * open loop  — Poisson arrivals at a fixed mean rate in the
//     device-time domain, independent of completions. This is the regime
//     that exposes saturation and tail-latency knees: past the capacity
//     rate, queues grow without bound and p99 explodes.
//
// Users are drawn from a Zipf(s) popularity distribution over the
// population (data/zipf.*), reproducing the skewed traffic that makes the
// hot-embedding cache effective. All randomness is seeded (util/rng.hpp),
// so a given configuration reproduces its arrival stream bit-for-bit.
#pragma once

#include <cstddef>
#include <optional>

#include "data/zipf.hpp"
#include "device/units.hpp"
#include "serve/batcher.hpp"
#include "util/rng.hpp"

namespace imars::serve {

enum class ArrivalProcess : std::uint8_t {
  kClosedLoop,   ///< completions trigger the next query per client
  kOpenPoisson,  ///< exponential inter-arrival gaps at `rate_qps`
};

struct LoadGenConfig {
  std::size_t clients = 16;        ///< closed-loop concurrency
  std::size_t total_queries = 256; ///< stream length
  std::size_t num_users = 1;       ///< user-context population size
  double user_zipf_s = 0.9;        ///< popularity skew over users
  device::Ns think{0.0};           ///< per-client think time (closed loop)
  std::uint64_t seed = 7;
  ArrivalProcess arrivals = ArrivalProcess::kClosedLoop;
  double rate_qps = 0.0;           ///< open-loop mean arrival rate (device s)
};

class LoadGenerator {
 public:
  explicit LoadGenerator(const LoadGenConfig& cfg);

  const LoadGenConfig& config() const noexcept { return cfg_; }
  std::size_t issued() const noexcept { return issued_; }

  /// Closed loop: the next request of `client`, arriving at `ready` (the
  /// completion time of its previous query, or the stagger offset for the
  /// first one). Returns nullopt once the stream budget is exhausted.
  std::optional<Request> next(std::size_t client, device::Ns ready);

  /// Open loop: the next Poisson arrival (non-decreasing in time, clients
  /// labeled round-robin). Returns nullopt once the budget is exhausted.
  std::optional<Request> next_arrival();

 private:
  LoadGenConfig cfg_;
  data::ZipfSampler users_;
  util::Xoshiro256 rng_;      ///< user draws (shared by both regimes, so a
                              ///< seed fixes the impression sequence
                              ///< regardless of arrival process)
  util::Xoshiro256 gap_rng_;  ///< open-loop inter-arrival draws
  std::size_t issued_ = 0;
  device::Ns open_clock_{0.0};  ///< last open-loop arrival time
};

}  // namespace imars::serve
