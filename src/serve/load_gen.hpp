// Closed-loop load generator: C concurrent clients, each issuing its next
// query the moment its previous one completes (plus optional think time).
// Users are drawn from a Zipf(s) popularity distribution over the user
// population (data/zipf.*), reproducing the skewed traffic that makes the
// hot-embedding cache effective.
#pragma once

#include <cstddef>
#include <optional>

#include "data/zipf.hpp"
#include "device/units.hpp"
#include "serve/batcher.hpp"
#include "util/rng.hpp"

namespace imars::serve {

struct LoadGenConfig {
  std::size_t clients = 16;        ///< closed-loop concurrency
  std::size_t total_queries = 256; ///< stream length
  std::size_t num_users = 1;       ///< user-context population size
  double user_zipf_s = 0.9;        ///< popularity skew over users
  device::Ns think{0.0};           ///< per-client think time
  std::uint64_t seed = 7;
};

class LoadGenerator {
 public:
  explicit LoadGenerator(const LoadGenConfig& cfg);

  const LoadGenConfig& config() const noexcept { return cfg_; }
  std::size_t issued() const noexcept { return issued_; }

  /// The next request of `client`, arriving at `ready` (the completion time
  /// of its previous query, or the stagger offset for the first one).
  /// Returns nullopt once the stream budget is exhausted.
  std::optional<Request> next(std::size_t client, device::Ns ready);

 private:
  LoadGenConfig cfg_;
  data::ZipfSampler users_;
  util::Xoshiro256 rng_;
  std::size_t issued_ = 0;
};

}  // namespace imars::serve
