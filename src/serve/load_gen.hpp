// Load generation in three arrival regimes:
//
//   * closed loop — C concurrent clients, each issuing its next query the
//     moment its previous one completes (plus optional think time). The
//     offered load self-throttles to the fabric's capacity, so the closed
//     loop can never overload it.
//   * open loop  — Poisson arrivals at a fixed mean rate in the
//     device-time domain, independent of completions. This is the regime
//     that exposes saturation and tail-latency knees: past the capacity
//     rate, queues grow without bound and p99 explodes.
//   * trace     — a scripted arrival stream replayed verbatim (completion-
//     independent, like the open loop). The property tests use it to build
//     adversarial multi-tenant schedules (e.g. a bulk flood around a sparse
//     interactive stream) with exact control of every arrival.
//
// Users are drawn from a Zipf(s) popularity distribution over the
// population (data/zipf.*), reproducing the skewed traffic that makes the
// hot-embedding cache effective. Multi-tenant streams label each request
// with a QoS class drawn from `class_mix`; the draw uses its own RNG
// stream, so adding classes never perturbs the user sequence (and an empty
// mix performs no draw at all — bit-identical to the single-tenant
// stream). All randomness is seeded (util/rng.hpp), so a given
// configuration reproduces its arrival stream bit-for-bit.
#pragma once

#include <cstddef>
#include <memory>
#include <optional>
#include <vector>

#include "data/zipf.hpp"
#include "device/units.hpp"
#include "serve/batcher.hpp"
#include "serve/session_table.hpp"
#include "util/rng.hpp"

namespace imars::serve {

enum class ArrivalProcess : std::uint8_t {
  kClosedLoop,   ///< completions trigger the next query per client
  kOpenPoisson,  ///< exponential inter-arrival gaps at `rate_qps`
  kTrace,        ///< replay `trace` verbatim (open-loop-like)
};

struct LoadGenConfig {
  std::size_t clients = 16;        ///< closed-loop concurrency
  std::size_t total_queries = 256; ///< stream length
  std::size_t num_users = 1;       ///< user-context population size
  double user_zipf_s = 0.9;        ///< popularity skew over users
  device::Ns think{0.0};           ///< per-client think time (closed loop)
  std::uint64_t seed = 7;
  ArrivalProcess arrivals = ArrivalProcess::kClosedLoop;
  double rate_qps = 0.0;           ///< open-loop mean arrival rate (device s)
  /// Per-class arrival shares (normalized internally): request
  /// `qos_class` labels are drawn i.i.d. from this distribution. Empty =
  /// every request is class 0 and no class RNG draw happens.
  std::vector<double> class_mix;
  /// Scripted arrivals for ArrivalProcess::kTrace (enqueue must be
  /// non-decreasing); replayed verbatim, `total_queries`/`class_mix` are
  /// ignored.
  std::vector<Request> trace;
  /// Fraction of the stream issued as embedding-update writes
  /// (Request::is_update) rather than queries, drawn i.i.d. per request
  /// from a dedicated RNG stream — 0 performs no draw at all, so read-only
  /// streams stay bit-identical to pre-write-back runs. Must be in [0, 1].
  double update_fraction = 0.0;
  /// Session mode (serve/session_table.*): every drawn user is routed
  /// through a cuckoo-hashed live-session table — a hit bumps the
  /// session's query sequence, a miss is a session arrival, and
  /// `session_churn` is the per-request probability of one random live
  /// session departing (drawn on a dedicated RNG stream). The user draw
  /// itself is untouched: with churn 0 the emitted request stream is
  /// bit-identical to the non-session stream except for the inert
  /// session_seq/session_fresh fields (tested).
  bool session_mode = false;
  std::size_t session_capacity = 1 << 16;  ///< live-session table target
  std::size_t session_max_kicks = 32;      ///< cuckoo kick bound
  double session_churn = 0.0;              ///< per-request departure prob.
};

class LoadGenerator {
 public:
  explicit LoadGenerator(const LoadGenConfig& cfg);

  const LoadGenConfig& config() const noexcept { return cfg_; }
  std::size_t issued() const noexcept { return issued_; }

  /// Closed loop: the next request of `client`, arriving at `ready` (the
  /// completion time of its previous query, or the stagger offset for the
  /// first one). Returns nullopt once the stream budget is exhausted.
  std::optional<Request> next(std::size_t client, device::Ns ready);

  /// Open loop / trace: the next arrival (non-decreasing in time; Poisson
  /// clients labeled round-robin). Returns nullopt once the budget is
  /// exhausted.
  std::optional<Request> next_arrival();

  /// The live-session table (nullptr unless session_mode) — read-only
  /// access for benches reporting session hit rates and churn stats.
  const SessionTable* sessions() const noexcept { return sessions_.get(); }

 private:
  std::size_t draw_class();
  bool draw_update();
  /// Session-mode bookkeeping for a freshly drawn request: churn draw,
  /// table touch, session fields. No-op unless session_mode.
  void stamp_session(Request& r);

  LoadGenConfig cfg_;
  data::ZipfSampler users_;
  util::Xoshiro256 rng_;      ///< user draws (shared by both regimes, so a
                              ///< seed fixes the impression sequence
                              ///< regardless of arrival process)
  util::Xoshiro256 gap_rng_;  ///< open-loop inter-arrival draws
  util::Xoshiro256 class_rng_;  ///< QoS-class draws (own stream: adding
                                ///< classes never shifts user draws)
  util::Xoshiro256 update_rng_;  ///< update-mix draws (own stream: enabling
                                 ///< updates never shifts user/class draws)
  util::Xoshiro256 churn_rng_;  ///< session churn draws (own stream: session
                                ///< mode never shifts user/class draws)
  std::unique_ptr<SessionTable> sessions_;  ///< live sessions (session mode)
  double mix_total_ = 0.0;      ///< sum of class_mix shares
  std::size_t issued_ = 0;
  device::Ns open_clock_{0.0};  ///< last open-loop arrival time
};

}  // namespace imars::serve
