#include "serve/observe.hpp"

#include <algorithm>
#include <cmath>

#include "util/error.hpp"

namespace imars::serve {

StreamingHistogram::StreamingHistogram(double rel_err) : rel_err_(rel_err) {
  IMARS_REQUIRE(rel_err > 0.0 && rel_err < 1.0,
                "StreamingHistogram: rel_err must be in (0, 1)");
  base_ = (1.0 + rel_err) * (1.0 + rel_err);
  log_base_ = std::log(base_);
}

void StreamingHistogram::record(double x) {
  if (n_ == 0) {
    min_ = x;
    max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++n_;
  sum_ += x;
  if (x <= 0.0) {
    ++zero_;
    return;
  }
  ++buckets_[static_cast<std::int32_t>(std::floor(std::log(x) / log_base_))];
}

double StreamingHistogram::value_at(std::size_t i) const {
  // The first and last order statistics are tracked exactly, which makes
  // n = 1 and n = 2 exact for every p — the tiny-n behavior the CI quick
  // benches rely on (pinned against ServeReport in the tests).
  if (i == 0) return min_;
  if (i + 1 >= n_) return max_;
  std::uint64_t cum = zero_;
  if (i < cum) return std::clamp(0.0, min_, max_);
  // Bucket keys ascend with sample value, so the i-th order statistic lies
  // in the first bucket whose cumulative count exceeds i; its geometric-
  // mean representative is within rel_err of every sample in the bucket.
  for (const auto& [idx, cnt] : buckets_) {
    cum += cnt;
    if (i < cum)
      return std::clamp(std::pow(base_, static_cast<double>(idx) + 0.5),
                        min_, max_);
  }
  return max_;
}

double StreamingHistogram::percentile(double p) const {
  if (n_ == 0) return 0.0;
  p = std::clamp(p, 0.0, 100.0);
  // util::percentile semantics: rank = p/100 * (n-1), linear interpolation
  // between the neighboring order statistics.
  const double rank = p / 100.0 * static_cast<double>(n_ - 1);
  const auto lo = static_cast<std::size_t>(rank);
  const double frac = rank - static_cast<double>(lo);
  const double a = value_at(lo);
  if (frac == 0.0 || lo + 1 >= n_) return a;
  return a + frac * (value_at(lo + 1) - a);
}

void StreamingHistogram::merge(const StreamingHistogram& other) {
  IMARS_REQUIRE(rel_err_ == other.rel_err_,
                "StreamingHistogram::merge: rel_err mismatch");
  if (other.n_ == 0) return;
  if (n_ == 0) {
    min_ = other.min_;
    max_ = other.max_;
  } else {
    min_ = std::min(min_, other.min_);
    max_ = std::max(max_, other.max_);
  }
  n_ += other.n_;
  sum_ += other.sum_;
  zero_ += other.zero_;
  for (const auto& [idx, cnt] : other.buckets_) buckets_[idx] += cnt;
}

void MetricsRegistry::add_counter(std::string_view name, std::uint64_t delta) {
  auto it = counters_.find(name);
  if (it == counters_.end())
    counters_.emplace(std::string(name), delta);
  else
    it->second += delta;
}

void MetricsRegistry::set_gauge(std::string_view name, double value) {
  auto it = gauges_.find(name);
  if (it == gauges_.end())
    gauges_.emplace(std::string(name), value);
  else
    it->second = value;
}

StreamingHistogram& MetricsRegistry::histogram(std::string_view name,
                                               double rel_err) {
  auto it = histograms_.find(name);
  if (it == histograms_.end())
    it = histograms_.emplace(std::string(name), StreamingHistogram(rel_err))
             .first;
  return it->second;
}

std::uint64_t MetricsRegistry::counter(std::string_view name) const {
  const auto it = counters_.find(name);
  return it == counters_.end() ? 0 : it->second;
}

void HostProfiler::enable(ObserverSink* sink) {
  sink_ = sink;
  collecting_ = true;
  epoch_ = std::chrono::steady_clock::now();
  totals_.clear();
}

void HostProfiler::finish(std::string_view name,
                          std::chrono::steady_clock::time_point start) {
  const auto end = std::chrono::steady_clock::now();
  const double start_us =
      std::chrono::duration<double, std::micro>(start - epoch_).count();
  const double dur_us =
      std::chrono::duration<double, std::micro>(end - start).count();
  auto it = totals_.find(name);
  if (it == totals_.end())
    totals_.emplace(std::string(name), dur_us);
  else
    it->second += dur_us;
  if (sink_ != nullptr) sink_->on_host_span(name, start_us, dur_us);
}

}  // namespace imars::serve
