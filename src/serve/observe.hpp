// Serving observability: streaming metrics and a pure-observer sink.
//
// Five PRs of serving features are validated through end-of-run aggregates;
// this layer opens the run up without perturbing it. Three pieces live here:
//
//   * StreamingHistogram — log-bucketed latency histogram with incremental
//     percentiles. Memory is O(buckets) instead of O(queries), and the
//     incremental p50/p95/p99 match the exact sorted-sample percentiles
//     (util::percentile semantics: rank = p/100 * (n-1), linear
//     interpolation) within the bucket's relative-error bound. The
//     ROADMAP's million-user steady state cannot retain every ServedQuery;
//     this is the replacement accounting.
//   * MetricsRegistry — named counters / gauges / histograms, the
//     aggregation side of the observer events below.
//   * ObserverSink — the instrumentation interface. QosBatcher,
//     StagePipeline, ServingRuntime and HotEmbeddingCache report
//     simulated-time spans and events through it. Every method is a no-op
//     by default and every call site is guarded by a null check, so an
//     unobserved run compiles to the exact pre-observability code path.
//     Sinks are OBSERVERS ONLY: they receive copies of timing decisions
//     already made and can never feed anything back, which is what makes
//     the bit-identical-reports contract hold with observation on or off.
//   * HostProfiler — wall-clock (std::chrono) self-profiling scopes around
//     the event-model hot path (batcher close, collect(), report
//     accumulation). The simulator's own speed is a ROADMAP item; these
//     spans land in the same trace file as the simulated-time spans, on a
//     separate process track.
#pragma once

#include <chrono>
#include <cstddef>
#include <cstdint>
#include <map>
#include <string>
#include <string_view>

#include "device/units.hpp"

namespace imars::serve {

/// Why a batch closed. Carried on every Batch the policies emit, so batch
/// spans can attribute tail latency to the close decision (a deadline-fired
/// singleton batch and a size-fired full batch have very different stories).
enum class CloseTrigger : std::uint8_t {
  kSize,        ///< max_batch requests were pending
  kDeadline,    ///< the oldest request exhausted max_wait
  kPreemptive,  ///< closed early to protect an end-to-end deadline
  kFlush,       ///< end-of-stream drain
};

constexpr std::string_view to_string(CloseTrigger t) {
  switch (t) {
    case CloseTrigger::kSize: return "size";
    case CloseTrigger::kDeadline: return "deadline";
    case CloseTrigger::kPreemptive: return "preemptive";
    case CloseTrigger::kFlush: return "flush";
  }
  return "unknown";
}

/// Log-bucketed streaming histogram. Bucket i spans [base^i, base^(i+1))
/// with base = (1 + rel_err)^2, so the geometric-mean representative
/// base^(i+0.5) is within rel_err of every sample in the bucket. Exact
/// min/max/sum are tracked on the side: the mean is exact, the extreme
/// ranks (first and last sample) are exact — which makes n = 1 and n = 2
/// percentiles exact, matching the pinned ServeReport tiny-n semantics —
/// and interior ranks are within the bucket bound. Non-positive samples
/// (latency 0 exists: a closed-loop client's enqueue can equal its
/// dispatch) collect in a dedicated zero bucket.
class StreamingHistogram {
 public:
  explicit StreamingHistogram(double rel_err = 0.01);

  void record(double x);

  std::size_t count() const noexcept { return n_; }
  double sum() const noexcept { return sum_; }
  double mean() const noexcept {
    return n_ == 0 ? 0.0 : sum_ / static_cast<double>(n_);
  }
  double min() const noexcept { return n_ == 0 ? 0.0 : min_; }
  double max() const noexcept { return n_ == 0 ? 0.0 : max_; }
  double rel_err() const noexcept { return rel_err_; }

  /// Incremental percentile, `p` in [0, 100]. Matches
  /// util::percentile(sample, p) — rank p/100 * (n-1), linear interpolation
  /// — within the bucket's relative error; 0.0 on an empty histogram (the
  /// pinned ServeReport empty-set convention).
  double percentile(double p) const;

  /// Folds `other` in (same rel_err required).
  void merge(const StreamingHistogram& other);

  std::size_t bucket_count() const noexcept {
    return buckets_.size() + (zero_ > 0 ? 1 : 0);
  }

 private:
  /// Approximate value of the i-th smallest sample (0-based): exact at the
  /// ends, the bucket representative in between.
  double value_at(std::size_t i) const;

  double rel_err_;
  double base_;      ///< (1 + rel_err)^2
  double log_base_;
  std::size_t n_ = 0;
  double sum_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
  std::uint64_t zero_ = 0;  ///< samples <= 0
  std::map<std::int32_t, std::uint64_t> buckets_;
};

/// Named metrics: monotone counters, last-value gauges, histograms. The
/// trace writer serializes the whole registry into the trace footer so one
/// file carries both the span timeline and the aggregate view.
class MetricsRegistry {
 public:
  void add_counter(std::string_view name, std::uint64_t delta = 1);
  void set_gauge(std::string_view name, double value);
  /// Returns (creating on first use) the named histogram.
  StreamingHistogram& histogram(std::string_view name, double rel_err = 0.01);

  std::uint64_t counter(std::string_view name) const;

  const std::map<std::string, std::uint64_t, std::less<>>& counters()
      const noexcept {
    return counters_;
  }
  const std::map<std::string, double, std::less<>>& gauges() const noexcept {
    return gauges_;
  }
  const std::map<std::string, StreamingHistogram, std::less<>>& histograms()
      const noexcept {
    return histograms_;
  }

 private:
  std::map<std::string, std::uint64_t, std::less<>> counters_;
  std::map<std::string, double, std::less<>> gauges_;
  std::map<std::string, StreamingHistogram, std::less<>> histograms_;
};

/// Embedding-memory tier a row lands in when it leaves the hot periphery
/// buffer. kArray is the flat (tiering-disabled) store.
enum class Tier : std::uint8_t { kArray = 0, kWarm = 1, kCold = 2 };

/// One (stage, shard) execution span, emitted by StagePipeline::collect()
/// as the event model walks a query's graph. All times are simulated
/// hardware time. start - ready decomposes into unit_wait (the stage unit
/// was still busy with earlier work) then et_wait (the shard's shared ET
/// banks were still claimed) — the contention anatomy of a tail latency.
struct StageSpan {
  std::size_t slot = 0;       ///< co-resident servable slot
  std::size_t stage = 0;      ///< stage index within the slot's graph
  std::string_view name;      ///< graph-node name ("" when unnamed)
  std::size_t shard = 0;
  std::size_t query = 0;      ///< request id
  std::size_t batch = 0;      ///< batch id
  device::Ns ready;           ///< graph predecessors complete
  device::Ns start;           ///< stage unit begins
  device::Ns end;             ///< stage unit done (merge excluded)
  device::Ns unit_wait;       ///< waited on the stage unit itself
  device::Ns et_wait;         ///< additionally waited on the shared ET banks
  device::Ns et_busy;         ///< shared ET-bank claim length (0 = ET-free)
};

/// One batch's lifecycle, emitted by the runtime when the batch is drained.
struct BatchSpan {
  std::size_t id = 0;
  std::size_t qos_class = 0;
  std::string_view class_name;
  std::size_t size = 0;
  std::size_t servable = 0;
  CloseTrigger trigger = CloseTrigger::kSize;
  device::Ns first_enqueue;  ///< oldest member's arrival
  device::Ns close;          ///< batcher close (dispatch stamp)
  device::Ns release;        ///< admission-gate release (== close ungated)
  device::Ns complete;       ///< last member's merged top-k
};

/// The instrumentation interface. Every method has a no-op default, so a
/// sink implements only what it wants; every caller holds a nullable
/// pointer and skips the call entirely when unobserved. Sinks must treat
/// all arguments as read-only telemetry — nothing they do can flow back
/// into scheduling, batching or timing.
class ObserverSink {
 public:
  virtual ~ObserverSink() = default;

  virtual void on_stage(const StageSpan&) {}
  /// An emitting (StageSpec::emit_topk) stage's produced-item merge: the
  /// per-shard partials ship to the controller and the global item list is
  /// built over [start, end) before any successor can begin. Distinct from
  /// the output top-k merge, which is folded into its batch span.
  virtual void on_stage_merge(std::size_t slot, std::size_t stage,
                              std::string_view name, std::size_t query,
                              std::size_t batch, device::Ns start,
                              device::Ns end) {
    (void)slot, (void)stage, (void)name, (void)query, (void)batch,
        (void)start, (void)end;
  }
  virtual void on_batch(const BatchSpan&) {}
  /// Embedding-update write traffic occupying shard `shard`'s ET banks.
  virtual void on_write(std::size_t shard, device::Ns start, device::Ns end) {
    (void)shard, (void)start, (void)end;
  }
  /// `rows` dirty rows flushed (deferred array writes) during a stage
  /// executing on `shard` around simulated time `at`; `rows_warm` /
  /// `rows_cold` split the total by destination tier (both 0 with tiering
  /// disabled).
  virtual void on_cache_flush(std::size_t shard, device::Ns at,
                              std::uint64_t rows, std::uint64_t rows_warm,
                              std::uint64_t rows_cold) {
    (void)shard, (void)at, (void)rows, (void)rows_warm, (void)rows_cold;
  }
  /// A row left the hot periphery buffer for `dest` (kArray when tiering
  /// is disabled).
  virtual void on_cache_evict(std::uint32_t table, std::uint32_t row,
                              bool dirty, Tier dest) {
    (void)table, (void)row, (void)dirty, (void)dest;
  }
  /// A batch-dispatch migration commit at simulated time `at`: `to_warm`
  /// cold blocks were admitted warm since the previous commit, `to_cold`
  /// warm blocks were demoted at this one.
  virtual void on_cache_migrate(device::Ns at, std::uint64_t to_warm,
                                std::uint64_t to_cold) {
    (void)at, (void)to_warm, (void)to_cold;
  }
  /// An embedding update hit the periphery buffer (absorbed) or wrote
  /// through to the array.
  virtual void on_cache_update(bool absorbed) { (void)absorbed; }
  /// Time-series sample (queue depths, backlog frontier lag, end-of-run
  /// busy totals) at simulated time `at`.
  virtual void on_counter(std::string_view name, device::Ns at, double value) {
    (void)name, (void)at, (void)value;
  }
  /// Host wall-clock self-profiling span (microseconds since the
  /// profiler's epoch) — the simulator profiling itself, not the model.
  virtual void on_host_span(std::string_view name, double start_us,
                            double dur_us) {
    (void)name, (void)start_us, (void)dur_us;
  }
};

/// Wall-clock self-profiling of the simulator's own hot path. Scopes are
/// RAII over std::chrono::steady_clock; while the profiler is disabled
/// (never enable()d) a Scope construction is two pointer reads and no
/// clock call. Spans report microseconds relative to the enable() epoch
/// so traces start near zero. Host spans are telemetry about the HOST, so
/// they are exempt from (and cannot perturb) the simulated-time
/// determinism contract.
class HostProfiler {
 public:
  /// Starts collecting per-span totals (total_us()), streaming each span
  /// to `sink` as well when one is attached — a null sink keeps the
  /// totals, which is all ServeReport::host_span_us needs. Resets the
  /// epoch and the accumulated totals.
  void enable(ObserverSink* sink);
  bool enabled() const noexcept { return collecting_; }

  /// Cumulative wall time per scope name since enable().
  const std::map<std::string, double, std::less<>>& total_us() const noexcept {
    return totals_;
  }

  class Scope {
   public:
    Scope(HostProfiler& prof, std::string_view name)
        : prof_(prof.enabled() ? &prof : nullptr), name_(name) {
      if (prof_ != nullptr) start_ = std::chrono::steady_clock::now();
    }
    ~Scope() {
      if (prof_ != nullptr) prof_->finish(name_, start_);
    }
    Scope(const Scope&) = delete;
    Scope& operator=(const Scope&) = delete;

   private:
    HostProfiler* prof_;
    std::string_view name_;
    std::chrono::steady_clock::time_point start_;
  };

 private:
  friend class Scope;
  void finish(std::string_view name,
              std::chrono::steady_clock::time_point start);

  ObserverSink* sink_ = nullptr;
  bool collecting_ = false;
  std::chrono::steady_clock::time_point epoch_;
  std::map<std::string, double, std::less<>> totals_;
};

}  // namespace imars::serve
