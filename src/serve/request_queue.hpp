// Thread-safe bounded MPMC queue: the hand-off primitive of the serving
// runtime (incoming requests into the batcher, work items into the shard
// executors). Blocking push/pop with close() for clean shutdown.
//
// Two priority bands: urgent items pop before normal ones (FIFO within a
// band), so a latency-critical tenant's functional work overtakes queued
// bulk work on the shard threads. Host-side ordering only — simulated
// hardware time is composed deterministically at collection, so the bands
// affect wall-clock latency of the simulation, never reported numbers.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <limits>
#include <mutex>
#include <optional>
#include <utility>

namespace imars::serve {

template <class T>
class RequestQueue {
 public:
  explicit RequestQueue(
      std::size_t capacity = std::numeric_limits<std::size_t>::max())
      : capacity_(capacity == 0 ? 1 : capacity) {}

  /// Blocks while the queue is full. Returns false (drops the value) if the
  /// queue was closed. Urgent items enter the priority band and pop before
  /// any normal item.
  bool push(T value, bool urgent = false) {
    std::unique_lock lock(mu_);
    not_full_.wait(lock, [this] { return closed_ || size_locked() < capacity_; });
    if (closed_) return false;
    (urgent ? urgent_ : items_).push_back(std::move(value));
    lock.unlock();
    not_empty_.notify_one();
    return true;
  }

  /// Blocks while the queue is empty. Returns nullopt once the queue is
  /// closed and drained.
  std::optional<T> pop() {
    std::unique_lock lock(mu_);
    not_empty_.wait(lock, [this] { return closed_ || size_locked() > 0; });
    return pop_locked(lock);
  }

  /// Non-blocking pop.
  std::optional<T> try_pop() {
    std::unique_lock lock(mu_);
    return pop_locked(lock);
  }

  /// Wakes all waiters; pending items remain poppable, pushes are refused.
  void close() {
    {
      std::lock_guard lock(mu_);
      closed_ = true;
    }
    not_empty_.notify_all();
    not_full_.notify_all();
  }

  bool closed() const {
    std::lock_guard lock(mu_);
    return closed_;
  }

  std::size_t size() const {
    std::lock_guard lock(mu_);
    return size_locked();
  }

  std::size_t capacity() const noexcept { return capacity_; }

 private:
  std::size_t size_locked() const { return items_.size() + urgent_.size(); }

  std::optional<T> pop_locked(std::unique_lock<std::mutex>& lock) {
    auto& band = urgent_.empty() ? items_ : urgent_;
    if (band.empty()) return std::nullopt;
    T value = std::move(band.front());
    band.pop_front();
    lock.unlock();
    not_full_.notify_one();
    return value;
  }

  mutable std::mutex mu_;
  std::condition_variable not_empty_;
  std::condition_variable not_full_;
  std::deque<T> items_;
  std::deque<T> urgent_;  ///< priority band, served before items_
  std::size_t capacity_;
  bool closed_ = false;
};

}  // namespace imars::serve
