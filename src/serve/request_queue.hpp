// Thread-safe bounded MPMC queue: the hand-off primitive of the serving
// runtime (incoming requests into the batcher, work items into the shard
// executors). Blocking push/pop with close() for clean shutdown.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <limits>
#include <mutex>
#include <optional>
#include <utility>

namespace imars::serve {

template <class T>
class RequestQueue {
 public:
  explicit RequestQueue(
      std::size_t capacity = std::numeric_limits<std::size_t>::max())
      : capacity_(capacity == 0 ? 1 : capacity) {}

  /// Blocks while the queue is full. Returns false (drops the value) if the
  /// queue was closed.
  bool push(T value) {
    std::unique_lock lock(mu_);
    not_full_.wait(lock,
                   [this] { return closed_ || items_.size() < capacity_; });
    if (closed_) return false;
    items_.push_back(std::move(value));
    lock.unlock();
    not_empty_.notify_one();
    return true;
  }

  /// Blocks while the queue is empty. Returns nullopt once the queue is
  /// closed and drained.
  std::optional<T> pop() {
    std::unique_lock lock(mu_);
    not_empty_.wait(lock, [this] { return closed_ || !items_.empty(); });
    if (items_.empty()) return std::nullopt;
    T value = std::move(items_.front());
    items_.pop_front();
    lock.unlock();
    not_full_.notify_one();
    return value;
  }

  /// Non-blocking pop.
  std::optional<T> try_pop() {
    std::unique_lock lock(mu_);
    if (items_.empty()) return std::nullopt;
    T value = std::move(items_.front());
    items_.pop_front();
    lock.unlock();
    not_full_.notify_one();
    return value;
  }

  /// Wakes all waiters; pending items remain poppable, pushes are refused.
  void close() {
    {
      std::lock_guard lock(mu_);
      closed_ = true;
    }
    not_empty_.notify_all();
    not_full_.notify_all();
  }

  bool closed() const {
    std::lock_guard lock(mu_);
    return closed_;
  }

  std::size_t size() const {
    std::lock_guard lock(mu_);
    return items_.size();
  }

  std::size_t capacity() const noexcept { return capacity_; }

 private:
  mutable std::mutex mu_;
  std::condition_variable not_empty_;
  std::condition_variable not_full_;
  std::deque<T> items_;
  std::size_t capacity_;
  bool closed_ = false;
};

}  // namespace imars::serve
