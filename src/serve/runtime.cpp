#include "serve/runtime.hpp"

#include <deque>
#include <optional>
#include <queue>
#include <utility>
#include <vector>

#include "util/error.hpp"

namespace imars::serve {

ShardMap ServingRuntime::make_map(const ServingConfig& cfg,
                                  std::size_t shards) {
  if (!cfg.shard_map.empty()) {
    IMARS_REQUIRE(cfg.shard_weights.empty(),
                  "ServingRuntime: set shard_map or shard_weights, not both");
    IMARS_REQUIRE(cfg.shard_map.shards() == shards,
                  "ServingRuntime: shard_map covers a different shard count");
    return cfg.shard_map;
  }
  if (cfg.shard_weights.empty()) return ShardMap::uniform(shards);
  IMARS_REQUIRE(cfg.shard_weights.size() == shards,
                "ServingRuntime: one shard weight per shard");
  return ShardMap::weighted(cfg.shard_weights, cfg.map_granularity);
}

ServingRuntime::ServingRuntime(const core::BackendFactory& factory,
                               const ServingConfig& cfg,
                               const core::ArchConfig& arch,
                               const device::DeviceProfile& profile)
    : ServingRuntime(std::make_unique<ShardRouter>(factory, cfg.shards,
                                                   cfg.traffic),
                     cfg, arch, profile) {}

namespace {

ServableBackend& require_servable(
    const std::unique_ptr<ServableBackend>& servable) {
  IMARS_REQUIRE(servable != nullptr, "ServingRuntime: null servable");
  return *servable;
}

}  // namespace

ServingRuntime::ServingRuntime(std::unique_ptr<ServableBackend> servable,
                               const ServingConfig& cfg,
                               const core::ArchConfig& arch,
                               const device::DeviceProfile& profile,
                               std::span<const device::DeviceProfile>
                                   shard_profiles)
    : cfg_(cfg),
      servable_(std::move(servable)),
      pipeline_(require_servable(servable_).shards(), servable_->spec(),
                profile, make_map(cfg, servable_->shards())) {
  IMARS_REQUIRE(cfg_.k >= 1, "ServingRuntime: k must be >= 1");
  // Heterogeneous fabrics: a cache hit must credit back the *owning*
  // shard's miss cost, so the timing is derived per shard profile.
  if (shard_profiles.empty()) {
    timings_ = {CacheTiming::from_model(core::PerfModel(arch, profile))};
  } else {
    IMARS_REQUIRE(shard_profiles.size() == servable_->shards(),
                  "ServingRuntime: one shard profile per shard");
    for (const auto& p : shard_profiles)
      timings_.push_back(CacheTiming::from_model(core::PerfModel(arch, p)));
  }
  // The config's shard count reflects the fabric actually built.
  cfg_.shards = servable_->shards();
  // A filter/rank servable passed through the generic constructor (e.g. a
  // heterogeneous fabric) still supports run(gen, users).
  router_ = dynamic_cast<ShardRouter*>(servable_.get());
}

ShardRouter& ServingRuntime::router() {
  IMARS_REQUIRE(router_ != nullptr,
                "ServingRuntime: not a filter/rank fabric");
  return *router_;
}

namespace {

struct ArrivalLater {
  bool operator()(const Request& a, const Request& b) const {
    if (a.enqueue.value != b.enqueue.value)
      return a.enqueue.value > b.enqueue.value;
    return a.id > b.id;  // deterministic tie-break
  }
};

}  // namespace

ServeReport ServingRuntime::run(LoadGenerator& gen,
                                std::span<const recsys::UserContext> users) {
  IMARS_REQUIRE(!users.empty(), "ServingRuntime::run: empty user population");
  router().bind_users(users);
  return run(gen);
}

ServeReport ServingRuntime::run(LoadGenerator& gen) {
  pipeline_.reset_clock();
  HotEmbeddingCache cache(cfg_.cache);
  HotEmbeddingCache* cache_ptr =
      cfg_.cache.capacity_rows > 0 ? &cache : nullptr;
  DynamicBatcher batcher(cfg_.batcher);

  const bool open =
      gen.config().arrivals == ArrivalProcess::kOpenPoisson;
  // Deferred collection (cross-batch stage overlap) requires batch
  // composition to be completion-independent — true only in the open loop.
  // The closed loop still overlaps query stages *within* a batch (the
  // engine chains stages with no barrier), but collects batch by batch.
  const bool defer = cfg_.overlap && open;
  const std::size_t max_inflight =
      std::max<std::size_t>(cfg_.max_inflight, 1);

  // Closed loop: completions enqueue out-of-order arrivals, so a heap is
  // needed. Open loop: next_arrival() already yields sorted arrivals and
  // completions enqueue nothing, so a one-request lookahead suffices.
  std::priority_queue<Request, std::vector<Request>, ArrivalLater> arrivals;
  std::optional<Request> lookahead;
  if (open) {
    lookahead = gen.next_arrival();
  } else {
    for (std::size_t c = 0; c < gen.config().clients; ++c)
      if (auto r = gen.next(c, device::Ns{0.0})) arrivals.push(*r);
  }
  auto arrivals_empty = [&] {
    return open ? !lookahead.has_value() : arrivals.empty();
  };
  auto peek_arrival = [&]() -> const Request& {
    return open ? *lookahead : arrivals.top();
  };
  auto pop_arrival = [&] {
    const Request r = peek_arrival();
    if (open)
      lookahead = gen.next_arrival();
    else
      arrivals.pop();
    return r;
  };

  ServeReport report;

  std::deque<StagePipeline::BatchHandle> inflight;

  // Deterministic accounting of the oldest in-flight batch (collection
  // happens in dispatch order, so overlapped and phased execution yield
  // bit-identical reports).
  auto drain_one = [&] {
    StagePipeline::BatchHandle handle = std::move(inflight.front());
    inflight.pop_front();
    const auto results =
        pipeline_.collect(std::move(handle), *servable_, cache_ptr,
                          timings_);
    ++report.batches;
    for (const auto& res : results) {
      const Request& req = res.request;
      ServedQuery q;
      q.id = req.id;
      q.user = req.user;
      q.client = req.client;
      q.batch = res.batch_id;
      q.batch_size = res.batch_size;
      q.home_shard = res.home_shard;
      q.candidates = res.work_items;
      q.enqueue = req.enqueue;
      q.dispatch = res.dispatch;
      q.complete = res.complete;
      // Every stage before the last aggregates as "filter", the last as
      // "rank" (scoring), so the split reconciles with per-query energy
      // for any stage count.
      for (std::size_t s = 0; s + 1 < res.stage_latency.size(); ++s)
        q.filter_latency += res.stage_latency[s];
      q.rank_latency = res.stage_latency.back();
      for (const auto& s : res.stage_stats) q.energy += s.total().energy;
      report.queries.push_back(q);
      for (std::size_t s = 0; s + 1 < res.stage_stats.size(); ++s)
        report.filter_stats.merge(res.stage_stats[s]);
      report.rank_stats.merge(res.stage_stats.back());
      report.makespan = device::max(report.makespan, res.complete);

      // Closed loop: the client issues its next query on completion.
      if (!open)
        if (auto next = gen.next(req.client, res.complete))
          arrivals.push(*next);
    }
  };

  auto dispatch = [&](device::Ns when, bool drain) {
    auto batch = drain ? batcher.flush(when) : batcher.poll(when);
    IMARS_REQUIRE(batch.has_value(), "ServingRuntime: spurious dispatch");
    inflight.push_back(pipeline_.submit(*batch, *servable_, cfg_.k));
    if (!defer) {
      drain_one();
    } else {
      while (inflight.size() > max_inflight) drain_one();
    }
  };

  device::Ns last_enqueue{0.0};
  while (!arrivals_empty() || !batcher.empty() || !inflight.empty()) {
    if (!arrivals_empty()) {
      const device::Ns next_arrival = peek_arrival().enqueue;
      const auto deadline = batcher.deadline();
      if (!deadline.has_value() || next_arrival <= *deadline) {
        // The arrival is the earliest actionable event.
        const Request r = pop_arrival();
        batcher.add(r);
        last_enqueue = r.enqueue;
        if (batcher.pending() >= batcher.config().max_batch)
          dispatch(r.enqueue, false);  // size trigger fires as it fills
        continue;
      }
      // Deadline trigger: the oldest pending request has waited max_wait.
      dispatch(*deadline, false);
      continue;
    }
    if (!batcher.empty()) {
      // No arrival can occur before a completion (closed loop, nothing
      // pending; open loop, stream exhausted): waiting out the deadline
      // would be pure simulation artifact, so drain the partial batch at
      // the newest request's arrival time.
      dispatch(last_enqueue, true);
      continue;
    }
    // Only in-flight batches remain (deferred collection).
    drain_one();
  }

  report.shards.assign(pipeline_.usage().begin(), pipeline_.usage().end());
  report.cache = cache.stats();
  return report;
}

}  // namespace imars::serve
