#include "serve/runtime.hpp"

#include <algorithm>
#include <deque>
#include <limits>
#include <optional>
#include <queue>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

#include "serve/servable_funnel.hpp"
#include "util/error.hpp"

namespace imars::serve {

ShardMap ServingRuntime::make_map(const ServingConfig& cfg,
                                  std::size_t shards) {
  if (!cfg.shard_map.empty()) {
    IMARS_REQUIRE(cfg.shard_weights.empty(),
                  "ServingRuntime: set shard_map or shard_weights, not both");
    IMARS_REQUIRE(cfg.shard_map.shards() == shards,
                  "ServingRuntime: shard_map covers a different shard count");
    return cfg.shard_map;
  }
  if (cfg.shard_weights.empty()) return ShardMap::uniform(shards);
  IMARS_REQUIRE(cfg.shard_weights.size() == shards,
                "ServingRuntime: one shard weight per shard");
  return ShardMap::weighted(cfg.shard_weights, cfg.map_granularity);
}

namespace {

std::vector<std::unique_ptr<ServableBackend>> into_vector(
    std::unique_ptr<ServableBackend> servable) {
  std::vector<std::unique_ptr<ServableBackend>> out;
  out.push_back(std::move(servable));
  return out;
}

std::size_t checked_shards(
    const std::vector<std::unique_ptr<ServableBackend>>& servables) {
  IMARS_REQUIRE(!servables.empty(), "ServingRuntime: no servables");
  for (const auto& s : servables) {
    IMARS_REQUIRE(s != nullptr, "ServingRuntime: null servable");
    IMARS_REQUIRE(s->shards() == servables.front()->shards(),
                  "ServingRuntime: co-resident servables must expose the "
                  "same shard count");
  }
  return servables.front()->shards();
}

}  // namespace

std::vector<PipelineSpec> ServingRuntime::specs_of(
    const std::vector<std::unique_ptr<ServableBackend>>& servables) {
  std::vector<PipelineSpec> specs;
  for (const auto& s : servables) specs.push_back(s->spec());
  return specs;
}

ServingRuntime::ServingRuntime(const core::BackendFactory& factory,
                               const ServingConfig& cfg,
                               const core::ArchConfig& arch,
                               const device::DeviceProfile& profile)
    : ServingRuntime(std::make_unique<ShardRouter>(factory, cfg.shards,
                                                   cfg.traffic),
                     cfg, arch, profile) {}

ServingRuntime::ServingRuntime(std::unique_ptr<ServableBackend> servable,
                               const ServingConfig& cfg,
                               const core::ArchConfig& arch,
                               const device::DeviceProfile& profile,
                               std::span<const device::DeviceProfile>
                                   shard_profiles)
    : ServingRuntime(into_vector(std::move(servable)), cfg, arch, profile,
                     shard_profiles) {}

ServingRuntime::ServingRuntime(
    std::vector<std::unique_ptr<ServableBackend>> servables,
    const ServingConfig& cfg, const core::ArchConfig& arch,
    const device::DeviceProfile& profile,
    std::span<const device::DeviceProfile> shard_profiles)
    : cfg_(cfg),
      qos_(cfg.effective_qos()),
      servables_(std::move(servables)),
      pipeline_(checked_shards(servables_), specs_of(servables_), profile,
                make_map(cfg, checked_shards(servables_))) {
  IMARS_REQUIRE(cfg_.k >= 1, "ServingRuntime: k must be >= 1");
  for (const auto& cls : qos_.classes)
    IMARS_REQUIRE(cls.servable < servables_.size(),
                  "ServingRuntime: class routed to a missing servable slot");
  // Heterogeneous fabrics: a cache hit must credit back the *owning*
  // shard's miss cost, so the timing is derived per shard profile. With
  // tiering enabled the timings also carry the cold-tier block-fetch cost
  // (zero otherwise, so the flat store's timings are unchanged).
  const std::size_t block_rows =
      cfg_.cache.tiering_enabled() ? cfg_.cache.cold_block_rows : 0;
  if (shard_profiles.empty()) {
    timings_ = {
        CacheTiming::from_model(core::PerfModel(arch, profile), block_rows)};
  } else {
    IMARS_REQUIRE(shard_profiles.size() == servables_.front()->shards(),
                  "ServingRuntime: one shard profile per shard");
    for (const auto& p : shard_profiles)
      timings_.push_back(
          CacheTiming::from_model(core::PerfModel(arch, p), block_rows));
  }
  // The config's shard count reflects the fabric actually built.
  cfg_.shards = servables_.front()->shards();
  row_bytes_ = arch.emb_dim;  // int8 lanes: one byte per lane per row
  if (cfg_.placement.enabled) {
    IMARS_REQUIRE(cfg_.placement.hot_rows >= 1,
                  "ServingRuntime: placement needs a positive hot_rows");
    IMARS_REQUIRE(!cfg_.placement.histogram.empty() ||
                      cfg_.placement.warmup_queries >= 1,
                  "ServingRuntime: placement needs an offline histogram or "
                  "a warmup window");
  }
  if (cfg_.placement.warm_rows > 0) {
    IMARS_REQUIRE(cfg_.cache.tiering_enabled(),
                  "ServingRuntime: warm_rows needs a tiering-enabled cache");
    IMARS_REQUIRE(!cfg_.placement.warm_histogram.empty() ||
                      cfg_.placement.warmup_queries >= 1,
                  "ServingRuntime: warm pinning needs an offline histogram "
                  "or a warmup window");
  }
  // A filter/rank servable passed through the generic constructor (e.g. a
  // heterogeneous fabric) still supports run(gen, users).
  for (const auto& s : servables_)
    if (auto* r = dynamic_cast<ShardRouter*>(s.get())) {
      router_ = r;
      break;
    }
}

ShardRouter& ServingRuntime::router() {
  IMARS_REQUIRE(router_ != nullptr,
                "ServingRuntime: not a filter/rank fabric");
  return *router_;
}

namespace {

struct ArrivalLater {
  bool operator()(const Request& a, const Request& b) const {
    if (a.enqueue.value != b.enqueue.value)
      return a.enqueue.value > b.enqueue.value;
    return a.id > b.id;  // deterministic tie-break
  }
};

}  // namespace

ServeReport ServingRuntime::run(LoadGenerator& gen,
                                std::span<const recsys::UserContext> users) {
  IMARS_REQUIRE(!users.empty(), "ServingRuntime::run: empty user population");
  bool bound = false;
  for (const auto& s : servables_) {
    if (auto* r = dynamic_cast<ShardRouter*>(s.get())) {
      r->bind_users(users);
      bound = true;
    } else if (auto* f = dynamic_cast<FunnelServable*>(s.get())) {
      f->bind_users(users);
      bound = true;
    }
  }
  IMARS_REQUIRE(bound, "ServingRuntime::run: no filter/rank servable");
  return run(gen);
}

QosBatcherConfig ServingRuntime::resolved_qos() {
  QosBatcherConfig qos = qos_;
  for (auto& cls : qos.classes) {
    if (cls.deadline.value <= 0.0 || cls.service_estimate.value > 0.0)
      continue;
    const auto costs = servables_[cls.servable]->stage_cost_estimate(cfg_.k);
    if (costs.empty()) continue;
    cls.service_estimate = pipeline_.service_estimate(cls.servable, costs,
                                                      cfg_.k, cls.max_batch);
  }
  return qos;
}

ShardMap ServingRuntime::placed_map(const LoadGenConfig& load) {
  const PlacementConfig& pc = cfg_.placement;
  std::vector<HotKey> hot;
  if (!pc.histogram.empty()) {
    hot = PlacementPolicy::top_keys(pc.histogram, pc.hot_rows);
  } else {
    // Warmup window: replay the run's own arrival stream (fresh generator,
    // same seed) and histogram the work-item keys each request would route
    // through the map. Runs replica 0 on the calling thread — no batch is
    // in flight yet, exactly like the QoS estimate probes.
    std::unordered_map<std::size_t, std::uint64_t> counts;
    LoadGenerator warm(load);
    ServableBackend& sv = *servables_.front();
    std::size_t profiled = 0;
    for (std::size_t i = 0; profiled < pc.warmup_queries; ++i) {
      const std::optional<Request> r =
          load.arrivals == ArrivalProcess::kClosedLoop
              ? warm.next(i % load.clients, device::Ns{0.0})
              : warm.next_arrival();
      if (!r) break;
      // Updates never route items through the map in the served run, so
      // they contribute nothing to the profile; the window counts QUERIES.
      if (r->is_update) continue;
      ++profiled;
      for (std::size_t key : sv.profile_items(*r)) ++counts[key];
    }
    hot = PlacementPolicy::top_keys(counts, pc.hot_rows);
  }
  // Greedy balance costs: an explicit per-item override when configured,
  // else the per-shard row costs resolved through the fabric's own cache
  // timings (one PerfModel per shard technology); a single shared timing
  // means a homogeneous fabric — pins then only balance the hot mass.
  std::vector<device::Ns> cost = pc.shard_costs;
  if (cost.empty() && timings_.size() == cfg_.shards)
    for (const auto& t : timings_) cost.push_back(t.row_miss.latency);
  IMARS_REQUIRE(cost.empty() || cost.size() == cfg_.shards,
                "ServingRuntime: one placement shard cost per shard");
  return PlacementPolicy::pin_hot(make_map(cfg_, cfg_.shards), hot, cost,
                                  pc.hot_rows);
}

std::vector<std::uint64_t> ServingRuntime::warm_pin_keys(
    const LoadGenConfig& load) {
  const PlacementConfig& pc = cfg_.placement;
  std::vector<HotKey> hot;
  if (!pc.warm_histogram.empty()) {
    hot = PlacementPolicy::top_keys(pc.warm_histogram, pc.warm_rows);
  } else {
    // Same warmup replay as placed_map, but histogramming ET *row* keys
    // (the cache's key space) through the servable's access lists instead
    // of the map's work-item keys. Stage 0 is the gather/entry stage of
    // every built-in graph, so its accesses over the profile items are the
    // request's ET row footprint.
    std::unordered_map<std::size_t, std::uint64_t> counts;
    LoadGenerator warm(load);
    ServableBackend& sv = *servables_.front();
    std::size_t profiled = 0;
    for (std::size_t i = 0; profiled < pc.warmup_queries; ++i) {
      const std::optional<Request> r =
          load.arrivals == ArrivalProcess::kClosedLoop
              ? warm.next(i % load.clients, device::Ns{0.0})
              : warm.next_arrival();
      if (!r) break;
      if (r->is_update) continue;
      ++profiled;
      for (const auto& a : sv.accesses(0, *r, sv.profile_items(*r)))
        ++counts[(static_cast<std::uint64_t>(a.table) << 32) | a.row];
    }
    hot = PlacementPolicy::top_keys(counts, pc.warm_rows);
  }
  std::vector<std::uint64_t> keys;
  keys.reserve(hot.size());
  for (const auto& hk : hot) keys.push_back(hk.key);
  return keys;
}

ServeReport ServingRuntime::run(LoadGenerator& gen) {
  // Frequency-aware placement re-derives its pin layer per run (the warmup
  // profile tracks the generator's config); disabled, the configured map
  // is never touched and routing stays bit-identical to the pin-free map.
  if (cfg_.placement.enabled) pipeline_.set_shard_map(placed_map(gen.config()));
  pipeline_.reset_clock();
  // Observation is attached for this run only; the sink is a pure observer
  // (see ObserverSink), so every path below is bit-identical with or
  // without it.
  pipeline_.set_observer(sink_);
  // Host-path A/B switch (ServingConfig::reference_host_path): simulated
  // time is bit-identical either way; only host-side allocation behavior
  // differs.
  pipeline_.set_reference_mode(cfg_.reference_host_path);
  // Latency-critical classes without a hand-tuned service_estimate get a
  // graph-aware default (critical path through the servable's stage DAG,
  // probed before serving) for the preemptive-close slack computation.
  const QosBatcherConfig qos = resolved_qos();
  HotEmbeddingCache cache(cfg_.cache);
  cache.set_observer(sink_);
  // The reference host path also re-enacts the cache's pre-optimization
  // bookkeeping (node-based maps, per-miss heap settles) — same decisions,
  // original host cost.
  cache.set_reference_bookkeeping(cfg_.reference_host_path);
  // Tier-aware pin resolution: static warm pins resolve before serving,
  // from the offline row histogram or the warmup replay (deterministic for
  // this run's load config, like the work-item pin layer above).
  if (cfg_.placement.warm_rows > 0 && cache.tiering_enabled())
    cache.pin_warm(warm_pin_keys(gen.config()));
  // A tiering-enabled cache participates in collection even with a
  // zero-row hot buffer (pure warm/cold hierarchy).
  HotEmbeddingCache* cache_ptr =
      cfg_.cache.capacity_rows > 0 || cache.tiering_enabled() ? &cache
                                                              : nullptr;
  QosBatcher batcher(qos);
  // Optimized host path: collected request storage flows back to the
  // batcher's spare pool instead of being freed (the engine ignores the
  // hook in reference mode). The hook captures this run's batcher, so it
  // must not outlive the run — the guard clears it on every exit path.
  pipeline_.set_request_recycler([&batcher](std::vector<Request>&& storage) {
    batcher.recycle(std::move(storage));
  });
  struct RecyclerGuard {
    StagePipeline& pipeline;
    ~RecyclerGuard() { pipeline.set_request_recycler(nullptr); }
  } recycler_guard{pipeline_};
  // Wall-clock self-profiling of the event-model hot path; host-side
  // telemetry only, exempt from the simulated-time determinism contract.
  HostProfiler prof;
  if (cfg_.self_profile) prof.enable(sink_);

  const bool open = gen.config().arrivals != ArrivalProcess::kClosedLoop;
  const bool gated = qos.gated();
  // Deferred collection (cross-batch stage overlap) requires batch release
  // to be completion-independent — true unconditionally only for
  // open-loop/trace arrivals with an ungated admission queue (the gate
  // reads the device frontier, which completions advance). The phased loop
  // still overlaps query stages *within* a batch (the engine chains stages
  // with no barrier), but collects batch by batch.
  //
  // Speculative dispatch windows (ServingConfig::speculate) extend
  // deferral into the completion-DEPENDENT regimes: every decision the
  // phased loop takes with complete information is taken here only once
  // it is PROVABLE from lower bounds — per-class service floors bound how
  // early a pending completion can land — and where nothing is provable
  // the loop collects a completion first, exactly as phased would.
  // Decisions and timestamps therefore never diverge from phased
  // execution; only the host-side placement of the waits does.
  const bool speculate = cfg_.overlap && cfg_.speculate;
  const bool defer = cfg_.overlap && ((open && !gated) || speculate);
  const std::size_t max_inflight =
      std::max<std::size_t>(cfg_.max_inflight, 1);
  const device::Ns window = qos.admit_window;
  // Per-class provable service floors: the configured claim
  // (QosClassConfig::service_floor) merged with the servable's structural
  // merge floor (StagePipeline::service_floor). Every speculative proof
  // below bounds a pending completion by dispatch + floor; collection
  // validates the bound against each observed completion.
  std::vector<device::Ns> floor_of;
  for (const auto& cls : qos.classes)
    floor_of.push_back(device::max(
        cls.service_floor, pipeline_.service_floor(cls.servable, cfg_.k)));
  // Closed-loop clients re-issue at complete + think, so the think time
  // widens the horizon within which pending completions cannot inject an
  // arrival.
  const device::Ns think = open ? device::Ns{0.0} : gen.config().think;
  const bool adaptive = cfg_.adaptive.enabled;
  if (adaptive)
    IMARS_REQUIRE(cfg_.adaptive.alpha > 0.0 && cfg_.adaptive.alpha <= 1.0,
                  "ServingRuntime: adaptive alpha must be in (0, 1]");

  // Closed loop: completions enqueue out-of-order arrivals, so a heap is
  // needed. Open loop / trace: next_arrival() already yields sorted
  // arrivals and completions enqueue nothing, so a one-request lookahead
  // suffices.
  std::priority_queue<Request, std::vector<Request>, ArrivalLater> arrivals;
  std::optional<Request> lookahead;
  if (open) {
    lookahead = gen.next_arrival();
  } else {
    for (std::size_t c = 0; c < gen.config().clients; ++c)
      if (auto r = gen.next(c, device::Ns{0.0})) arrivals.push(*r);
  }
  auto arrivals_empty = [&] {
    return open ? !lookahead.has_value() : arrivals.empty();
  };
  auto peek_arrival = [&]() -> const Request& {
    return open ? *lookahead : arrivals.top();
  };
  auto pop_arrival = [&] {
    const Request r = peek_arrival();
    if (open)
      lookahead = gen.next_arrival();
    else
      arrivals.pop();
    return r;
  };

  ServeReport report;
  if (cfg_.streaming_report) {
    report.streaming = StreamingAggregates(cfg_.streaming_rel_err);
    report.streaming.enabled = true;
  }
  for (const auto& cls : qos.classes) {
    ClassReport cr;
    cr.name = cls.name;
    cr.weight = cls.weight;
    cr.deadline = cls.deadline;
    report.classes.push_back(std::move(cr));
  }
  const double weight_sum = [&] {
    double sum = 0.0;
    for (const auto& cls : qos.classes) sum += cls.weight;
    return sum;
  }();

  struct InflightBatch {
    StagePipeline::BatchHandle handle;
    ServableBackend* servable = nullptr;
    std::size_t qos_class = 0;
    std::size_t id = 0;        ///< batch id (observer span key)
    std::size_t batch_index = 0;  ///< submission sequence (adaptive commits)
    device::Ns first_enqueue;  ///< oldest member's arrival
    device::Ns dispatch;  ///< batch close time (update-ordering fence)
    device::Ns release;   ///< admission-gate release (== dispatch ungated)
    CloseTrigger trigger = CloseTrigger::kSize;
  };
  std::deque<InflightBatch> inflight;

  // Adaptive-QoS observation pipeline: collection records each batch's
  // observed service time (and per-request device time); submission
  // commits observations back into the batcher on the fixed hold-back
  // schedule documented at submit_batch. FIFO in both modes (inflight is
  // drained in submission order), so the committed stream is identical
  // with overlap on or off.
  struct AdaptiveObs {
    std::size_t batch_index = 0;
    std::size_t cls = 0;
    device::Ns service;        ///< dispatch -> last member complete
    double per_request = 0.0;  ///< mean per-request device time (ns)
  };
  std::deque<AdaptiveObs> obs_pending;
  std::vector<device::Ns> est_ewma;
  for (const auto& cls : qos.classes) est_ewma.push_back(cls.service_estimate);
  std::vector<double> req_ewma(qos.classes.size(), 0.0);
  // First committed per-request observation per class: the baseline that
  // anchors request_cost scaling (cost tracks RELATIVE drift, so the
  // configured cross-class cost ratios keep their meaning).
  std::vector<double> req_base(qos.classes.size(), 0.0);
  std::size_t next_batch_index = 0;

  // Embedding-update requests awaiting application, in arrival order.
  // Updates bypass the batcher entirely; their write traffic is applied in
  // TIMESTAMP order relative to batch dispatches — every update with
  // enqueue <= a batch's dispatch applies before that batch's collection.
  // Both phased and deferred collection walk batches in dispatch order, so
  // the cache/clock mutation sequence is identical under overlap on/off
  // (the write-back analogue of the bit-identical-reports contract).
  std::deque<Request> pending_updates;
  auto apply_update = [&](const Request& r) {
    const std::size_t cls = qos.classes.size() == 1 ? 0 : r.qos_class;
    IMARS_REQUIRE(cls < qos.classes.size(),
                  "ServingRuntime: update routed to a missing class");
    const QosClassConfig& ccfg = qos.classes[cls];
    ServableBackend& sv = *servables_[ccfg.servable];
    // Ring only: the update is keyed by request id, not by an item row.
    const std::size_t home = pipeline_.shard_map().ring_of(r.id);
    const CacheTiming& timing =
        timings_.size() == 1 ? timings_.front() : timings_[home];
    // Same key namespace as the read path (co-resident servables must not
    // alias each other's rows).
    const std::uint32_t table_base =
        static_cast<std::uint32_t>(ccfg.servable) << 16;
    recsys::OpCost cost;
    // The cache object is used even when the read path runs cache-less
    // (capacity 0): update() then degrades to counted write-through, which
    // is exactly the telemetry a buffer-less fabric should report.
    for (const auto& a : sv.update_accesses(r)) {
      const bool absorbed = cache.update(table_base + a.table, a.row);
      const recsys::OpCost& c =
          absorbed ? timing.buffer_fill : timing.row_write;
      cost.latency += c.latency;
      cost.energy += c.energy;
    }
    // update() never evicts today (no write-allocate), but stay general:
    // any flush it ever records is charged with this update's traffic.
    const double flushed = static_cast<double>(cache.take_flushed());
    cost.latency += timing.row_write.latency * flushed;
    cost.energy += timing.row_write.energy * flushed;
    pipeline_.charge_write(home, cost, r.enqueue);
    ++report.updates;
    report.update_cost += cost;
  };
  auto apply_updates_until = [&](device::Ns t) {
    while (!pending_updates.empty() &&
           pending_updates.front().enqueue.value <= t.value) {
      apply_update(pending_updates.front());
      pending_updates.pop_front();
    }
  };
  // Closed-but-unadmitted batches. Ungated configs release a batch the
  // instant it closes (the deque never survives an event), which is
  // exactly the PR 2 dispatch behavior.
  std::deque<Batch> ready;

  // Deterministic accounting of the oldest in-flight batch (collection
  // happens in dispatch order, so overlapped and phased execution yield
  // bit-identical reports).
  // Optimized-path scratch: one result buffer reused across every drained
  // batch, and the SoA arena accumulating per-query records until the
  // single materialization after the event loop.
  std::vector<StagePipeline::QueryResult> collected;
  QueryArena arena;
  auto drain_one = [&] {
    InflightBatch entry = std::move(inflight.front());
    inflight.pop_front();
    // Updates that arrived up to this batch's close apply first (timestamp
    // order — see pending_updates above).
    apply_updates_until(entry.dispatch);
    // Tier migrations commit at the same batch-dispatch fence — never at
    // completion — so the demotion sequence depends only on the
    // submission order and is bit-identical under overlap on/off.
    cache.commit_migrations(entry.dispatch);
    {
      // Worker-completion wait is simulated-work execution time, not host
      // bookkeeping: profile it separately so host.collect measures the
      // composition loop itself.
      HostProfiler::Scope host(prof, "host.wait");
      entry.handle.wait();
    }
    {
      HostProfiler::Scope host(prof, "host.collect");
      if (cfg_.reference_host_path)
        collected = pipeline_.collect(std::move(entry.handle),
                                      *entry.servable, cache_ptr, timings_);
      else
        pipeline_.collect_into(std::move(entry.handle), *entry.servable,
                               cache_ptr, timings_, collected);
    }
    const auto& results = collected;
    HostProfiler::Scope host(prof, "host.report");
    ++report.batches;
    ClassReport& cr = report.classes[entry.qos_class];
    ++cr.batches;
    const device::Ns slo = qos.classes[entry.qos_class].deadline;
    device::Ns batch_complete = entry.dispatch;
    device::Ns batch_first_complete{
        std::numeric_limits<double>::infinity()};
    device::Ns batch_device_time;
    // Cold-tier block-fault time (OpKind::kEtBlock) charged into this
    // batch, tallied separately: it feeds the adaptive-QoS observation
    // adjustment below, and stays exactly zero with tiering disabled.
    device::Ns batch_fault_time;
    for (const auto& res : results) {
      const Request& req = res.request;
      // Whole-run telemetry (class accounting, stage stats, makespan) is
      // identical in record and streaming mode; only the per-query record
      // retention differs.
      device::Ns device_time;
      device::Pj energy;
      for (const auto& s : res.stage_stats) {
        energy += s.total().energy;
        device_time += s.total().latency;
        batch_fault_time += s.at(recsys::OpKind::kEtBlock).latency;
      }
      report.routed_items += res.routed_items;
      report.pinned_items += res.pinned_items;
      ++cr.queries;
      cr.device_time += device_time;
      if (slo.value > 0.0 && (res.complete - req.enqueue) > slo)
        ++cr.slo_violations;
      if (report.streaming.enabled) {
        report.streaming.note(req.qos_class,
                              (res.complete - req.enqueue).value,
                              energy.value, device_time.value);
      } else {
        ServedQuery q;
        q.id = req.id;
        q.user = req.user;
        q.client = req.client;
        q.qos_class = req.qos_class;
        q.batch = res.batch_id;
        q.batch_size = res.batch_size;
        q.home_shard = res.home_shard;
        q.candidates = res.work_items;
        q.enqueue = req.enqueue;
        q.dispatch = res.dispatch;
        q.complete = res.complete;
        // Every stage before the last aggregates as "filter", the last as
        // "rank" (scoring), so the split reconciles with per-query energy
        // for any stage count.
        for (std::size_t s = 0; s + 1 < res.stage_latency.size(); ++s)
          q.filter_latency += res.stage_latency[s];
        q.rank_latency = res.stage_latency.back();
        q.energy = energy;
        q.device_time = device_time;
        if (cfg_.reference_host_path) {
          q.topk = res.topk;
          report.queries.push_back(std::move(q));
        } else {
          // SoA arena: scalar columns + flat top-k pool, materialized into
          // report.queries once after the event loop (identical records).
          arena.push(q, res.topk);
        }
      }
      for (std::size_t s = 0; s + 1 < res.stage_stats.size(); ++s)
        report.filter_stats.merge(res.stage_stats[s]);
      report.rank_stats.merge(res.stage_stats.back());
      report.makespan = device::max(report.makespan, res.complete);
      batch_complete = device::max(batch_complete, res.complete);
      if (res.complete.value < batch_first_complete.value)
        batch_first_complete = res.complete;
      batch_device_time += device_time;

      // Closed loop: the client issues its next query on completion.
      if (!open)
        if (auto next = gen.next(req.client, res.complete))
          arrivals.push(*next);
    }
    // Floor validation: every speculative proof assumed no member of this
    // batch completed before dispatch + floor. A configured service_floor
    // that is not a true lower bound aborts the run here (identically
    // with overlap on or off) instead of silently voiding the proofs.
    if (!results.empty() && floor_of[entry.qos_class].value > 0.0)
      IMARS_REQUIRE((batch_first_complete - entry.dispatch).value >=
                        floor_of[entry.qos_class].value,
                    "ServingRuntime: batch completed below its class "
                    "service_floor — the floor is not a true lower bound");
    if (adaptive && !results.empty()) {
      AdaptiveObs obs;
      obs.batch_index = entry.batch_index;
      obs.cls = entry.qos_class;
      // Tier-fault attribution: cold-block fault bursts are a tier-warming
      // TRANSIENT, not class service drift — feeding them into the EWMA as
      // ordinary service time inflates the estimate and triggers spurious
      // preemptive closes for several commit windows after the hot set has
      // re-warmed. The fault-charged time is subtracted from both observed
      // figures (clamped at zero: faults overlap across shards, so their
      // sum can exceed the batch's wall service). With tiering disabled
      // kEtBlock is identically zero and the observations are unchanged.
      obs.service = device::max(
          batch_complete - entry.dispatch - batch_fault_time,
          device::Ns{0.0});
      obs.per_request =
          std::max(batch_device_time.value - batch_fault_time.value, 0.0) /
          static_cast<double>(results.size());
      obs_pending.push_back(obs);
      if (sink_ != nullptr && batch_fault_time.value > 0.0)
        sink_->on_counter("qos.fault." + qos.classes[entry.qos_class].name,
                          batch_complete, batch_fault_time.value);
    }
    if (sink_ != nullptr) {
      const QosClassConfig& ccfg = qos.classes[entry.qos_class];
      BatchSpan bs;
      bs.id = entry.id;
      bs.qos_class = entry.qos_class;
      bs.class_name = ccfg.name;
      bs.size = results.size();
      bs.servable = ccfg.servable;
      bs.trigger = entry.trigger;
      bs.first_enqueue = entry.first_enqueue;
      bs.close = entry.dispatch;
      bs.release = entry.release;
      bs.complete = batch_complete;
      sink_->on_batch(bs);
    }
  };

  auto submit_batch = [&](Batch batch, device::Ns release) {
    const std::size_t my_index = next_batch_index++;
    // Adaptive commits happen here, on a fixed hold-back schedule: an
    // observation of batch B is applied only once `max_inflight` later
    // submissions have occurred. Submission always trims inflight to
    // max_inflight, so by submission S both the phased and the deferred
    // loop are guaranteed to have collected every batch B with
    // B + max_inflight < S — the commit stream (and with it every
    // subsequent close decision) is identical with overlap on or off.
    if (adaptive) {
      while (!obs_pending.empty() &&
             obs_pending.front().batch_index + max_inflight < my_index) {
        const AdaptiveObs obs = obs_pending.front();
        obs_pending.pop_front();
        const double a = cfg_.adaptive.alpha;
        est_ewma[obs.cls] = device::Ns{
            a * obs.service.value + (1.0 - a) * est_ewma[obs.cls].value};
        batcher.set_service_estimate(obs.cls, est_ewma[obs.cls]);
        if (req_base[obs.cls] <= 0.0) {
          req_base[obs.cls] = obs.per_request;
          req_ewma[obs.cls] = obs.per_request;
        } else {
          req_ewma[obs.cls] =
              a * obs.per_request + (1.0 - a) * req_ewma[obs.cls];
        }
        if (req_base[obs.cls] > 0.0)
          batcher.set_request_cost(
              obs.cls, qos.classes[obs.cls].request_cost *
                           (req_ewma[obs.cls] / req_base[obs.cls]));
        ++report.spec.estimate_commits;
        if (sink_ != nullptr) {
          sink_->on_counter("qos.est." + qos.classes[obs.cls].name, release,
                            est_ewma[obs.cls].value);
          // The committed observation itself (fault-adjusted batch
          // service), so a trace can audit the attribution against the
          // raw batch spans.
          sink_->on_counter("qos.obs." + qos.classes[obs.cls].name, release,
                            obs.service.value);
        }
      }
    }
    const std::size_t cls = batch.qos_class;
    const QosClassConfig& ccfg = qos.classes[cls];
    ServableBackend* servable = servables_[ccfg.servable].get();
    const bool urgent = ccfg.deadline.value > 0.0;
    // Batch coordinates are captured BEFORE submit consumes the batch (the
    // optimized path moves the request storage into the engine; the
    // reference path copies, re-enacting the pre-optimization behavior).
    InflightBatch entry;
    entry.servable = servable;
    entry.qos_class = cls;
    entry.id = batch.id;
    entry.first_enqueue = batch.requests.empty()
                              ? batch.dispatch
                              : batch.requests.front().enqueue;
    entry.batch_index = my_index;
    entry.dispatch = batch.dispatch;
    entry.release = release;
    entry.trigger = batch.trigger;
    {
      HostProfiler::Scope host(prof, "host.submit");
      entry.handle =
          cfg_.reference_host_path
              ? pipeline_.submit(batch, *servable, cfg_.k, ccfg.servable,
                                 urgent)
              : pipeline_.submit(std::move(batch), *servable, cfg_.k,
                                 ccfg.servable, urgent);
    }
    inflight.push_back(std::move(entry));
    if (inflight.size() > report.spec.peak_inflight)
      report.spec.peak_inflight = inflight.size();
    if (!defer) {
      drain_one();
    } else {
      while (inflight.size() > max_inflight) drain_one();
    }
  };

  // Admission order over the GATED ready queue: deadline classes running
  // inside their weight entitlement release earliest-deadline-first (so a
  // bulk backlog cannot sit in front of an interactive batch), everyone
  // else by measured weighted virtual time (consumed device time /
  // weight) — weight-0 scavengers only when nothing else is ready. Index 0
  // wins ties (FIFO: ready is close-ordered). Only consulted while gated:
  // gating forces immediate collection, so the per-class device-time
  // totals it reads are always complete. (Ungated mode releases in close
  // order — under deferred collection the totals lag by the in-flight
  // batches, and a policy read there would let the overlap flag change
  // release order, breaking the bit-identical-reports contract.)
  auto pick_ready = [&]() -> std::size_t {
    double total_device = 0.0;
    for (const auto& cr : report.classes) total_device += cr.device_time.value;
    std::optional<std::size_t> best_edf;
    double best_edf_key = 0.0;
    std::optional<std::size_t> best_vt;
    double best_vt_key = 0.0;
    for (std::size_t i = 0; i < ready.size(); ++i) {
      const std::size_t cls = ready[i].qos_class;
      const QosClassConfig& ccfg = qos.classes[cls];
      if (ccfg.deadline.value > 0.0 && ccfg.weight > 0.0 &&
          weight_sum > 0.0) {
        const double share =
            total_device > 0.0
                ? report.classes[cls].device_time.value / total_device
                : 0.0;
        if (share <= ccfg.weight / weight_sum) {
          const double key =
              ready[i].requests.front().enqueue.value + ccfg.deadline.value;
          if (!best_edf || key < best_edf_key) {
            best_edf = i;
            best_edf_key = key;
          }
          continue;
        }
      }
      const double key =
          ccfg.weight > 0.0
              ? report.classes[cls].device_time.value / ccfg.weight
              : std::numeric_limits<double>::infinity();
      if (!best_vt || key < best_vt_key) {
        best_vt = i;
        best_vt_key = key;
      }
    }
    if (best_edf) return *best_edf;
    return best_vt.value_or(0);
  };

  // Provable lower bound on the device backlog frontier while completions
  // are pending: the committed frontier, plus each in-flight batch's
  // guaranteed minimum completion (dispatch + its class floor — validated
  // at collection). Clock commits only move forward, so the true frontier
  // can never undercut this; with inflight empty it IS the frontier.
  auto frontier_lb = [&] {
    device::Ns lb = pipeline_.frontier();
    for (const auto& e : inflight)
      lb = device::max(lb, e.dispatch + floor_of[e.qos_class]);
    return lb;
  };

  // Releases ready batches while the admission gate is open at `now` (the
  // device backlog frontier within admit_window). Ungated: releases
  // everything immediately. The comparison uses the same
  // `frontier - window` expression as the gate-opening event time below —
  // mixing `now + window` here would round differently and the gate could
  // stay shut at its own opening instant.
  auto pump = [&](device::Ns now) {
    while (!ready.empty()) {
      if (gated) {
        if (speculate && !inflight.empty()) {
          // Provably shut: even the frontier LOWER BOUND puts the gate
          // beyond the window, so the exact frontier (>= the bound) does
          // too — phased would break here as well. The in-flight batches
          // keep executing while the event loop moves on.
          if ((frontier_lb() - window).value > now.value) {
            ++report.spec.gate_shut_proofs;
            break;
          }
          // Not provably shut: collect everything first, so the exact
          // gate check and pick_ready's per-class device-time totals read
          // precisely the state phased admission reads.
          while (!inflight.empty()) drain_one();
        }
        if ((pipeline_.frontier() - window).value > now.value) break;
      }
      const std::size_t idx = gated ? pick_ready() : 0;
      Batch batch = std::move(ready[idx]);
      ready.erase(ready.begin() + static_cast<std::ptrdiff_t>(idx));
      submit_batch(std::move(batch), now);
      // Time series at every release: gated-queue depth, in-flight depth,
      // and how far the device backlog frontier runs ahead of "now".
      if (sink_ != nullptr) {
        sink_->on_counter("queue.ready", now,
                          static_cast<double>(ready.size()));
        sink_->on_counter("queue.inflight", now,
                          static_cast<double>(inflight.size()));
        sink_->on_counter("frontier.lag_ns", now,
                          std::max(0.0, (pipeline_.frontier() - now).value));
      }
    }
  };

  auto close_fired = [&](device::Ns now) {
    HostProfiler::Scope host(prof, "host.batcher");
    bool closed = false;
    while (auto batch = batcher.poll(now)) {
      ready.push_back(std::move(*batch));
      closed = true;
    }
    if (closed && sink_ != nullptr)
      sink_->on_counter("queue.ready", now,
                        static_cast<double>(ready.size()));
    return closed;
  };

  device::Ns last_enqueue{0.0};
  while (!arrivals_empty() || !batcher.empty() || !ready.empty() ||
         !inflight.empty()) {
    if (speculate && !open && !inflight.empty()) {
      if (arrivals_empty()) {
        // Every remaining arrival comes from a pending completion: collect
        // one — phased execution would already hold it in the heap.
        drain_one();
        continue;
      }
      // Closed-loop speculation horizon: an uncollected batch completes no
      // earlier than dispatch + floor, so its clients' next arrivals land
      // no earlier than H = min over inflight of (dispatch + floor), plus
      // the think time. Any event strictly before H is decided on exactly
      // the state phased execution sees (its extra arrivals all lie at or
      // beyond H); at or past H nothing is provable, so collect first.
      double horizon = std::numeric_limits<double>::infinity();
      for (const auto& e : inflight)
        horizon =
            std::min(horizon, (e.dispatch + floor_of[e.qos_class]).value);
      horizon += think.value;
      double next_event = peek_arrival().enqueue.value;
      if (const auto trigger = batcher.deadline(); trigger.has_value())
        next_event = std::min(next_event, trigger->value);
      if (!(next_event < horizon)) {
        ++report.spec.window_stalls;
        drain_one();
        continue;
      }
      ++report.spec.window_proceeds;
    }
    if (!arrivals_empty()) {
      const device::Ns next_arrival = peek_arrival().enqueue;
      const auto trigger = batcher.deadline();
      std::optional<device::Ns> gate;
      if (gated && !ready.empty()) {
        if (speculate && !inflight.empty()) {
          // The exact frontier is unknowable with completions pending.
          // When even its lower bound puts the gate opening at or after
          // the next arrival, phased provably would not take the gate
          // branch before that arrival (and any due trigger precedes
          // both), so the decision below needs no gate candidate at all.
          // Otherwise the ordering is unprovable: collect one completion
          // and re-decide on tighter bounds.
          if ((frontier_lb() - window).value < next_arrival.value) {
            ++report.spec.window_stalls;
            drain_one();
            continue;
          }
        } else {
          gate = pipeline_.frontier() - window;
        }
      }
      // Earliest actionable event wins; the arrival wins ties (matching
      // the PR 2 loop), and a due batcher trigger precedes a gate opening
      // at the same instant (close before release). The close time is
      // clamped to the newest arrival: a scavenger class can surface a
      // trigger that went stale while it was suppressed behind other
      // traffic, and its batch must not be stamped before its own
      // members' enqueues. (For admissible classes the trigger always
      // fires before any later arrival is added, so the clamp is a no-op
      // — single-class runs stay bit-identical to PR 2.)
      if (trigger && *trigger < next_arrival &&
          (!gate || *trigger <= *gate)) {
        const device::Ns when = device::max(*trigger, last_enqueue);
        IMARS_REQUIRE(close_fired(when),
                      "ServingRuntime: spurious batcher trigger");
        pump(when);
        continue;
      }
      if (gate && *gate < next_arrival) {
        pump(device::max(*gate, last_enqueue));
        continue;
      }
      // The arrival is the earliest actionable event. last_enqueue stays
      // monotone: gated closed loops can spawn an arrival slightly in the
      // past (a held batch completing early), and the flush/clamp
      // timestamps below must never move backwards for it.
      const Request r = pop_arrival();
      last_enqueue = device::max(last_enqueue, r.enqueue);
      if (r.is_update) {
        // Embedding-update writes never enter the batcher: their traffic
        // is applied in timestamp order against the write-back cache. Like
        // QosBatcher::add, a slightly out-of-order arrival (a gated closed
        // loop completing a held batch early) is inserted in enqueue
        // order, after any equal timestamps — apply_updates_until's fence
        // walks the deque front-to-back by timestamp.
        auto pos = pending_updates.end();
        while (pos != pending_updates.begin() &&
               std::prev(pos)->enqueue.value > r.enqueue.value)
          --pos;
        pending_updates.insert(pos, r);
        if (!open)
          if (auto next = gen.next(r.client, r.enqueue))
            arrivals.push(*next);
        continue;
      }
      batcher.add(r);
      close_fired(r.enqueue);  // size trigger fires as the queue fills
      pump(r.enqueue);
      continue;
    }
    if (!batcher.empty()) {
      // No arrival can occur before a completion (closed loop, nothing
      // pending; open loop, stream exhausted): waiting out the deadline
      // would be pure simulation artifact, so drain the partial batches at
      // the newest request's arrival time.
      auto batch = batcher.flush(last_enqueue);
      IMARS_REQUIRE(batch.has_value(), "ServingRuntime: spurious flush");
      ready.push_back(std::move(*batch));
      pump(last_enqueue);
      continue;
    }
    if (!ready.empty()) {
      if (speculate && !inflight.empty()) {
        // Only the gated backlog and in-flight work remain: the opening
        // time needs the exact frontier, and with no arrivals left there
        // is nothing to overlap with — collect down to phased state.
        drain_one();
        continue;
      }
      // Only the gated backlog remains: open the gate at its own time.
      pump(device::max(pipeline_.frontier() - window, last_enqueue));
      continue;
    }
    // Only in-flight batches remain (deferred collection).
    drain_one();
  }
  // Updates trailing the last batch dispatch (or an update-only stream).
  apply_updates_until(device::Ns{std::numeric_limits<double>::infinity()});

  // One bulk AoS materialization of the arena-accumulated records, outside
  // every host span (the reference path pushed directly; streaming retains
  // none).
  if (!cfg_.reference_host_path && !report.streaming.enabled)
    report.queries = arena.materialize();

  report.shards.assign(pipeline_.usage().begin(), pipeline_.usage().end());
  for (std::size_t slot = 0; slot < pipeline_.spec_count(); ++slot) {
    report.stage_offsets.push_back(pipeline_.stage_offset(slot));
    // Graph-node keys into the per-shard stage_busy layout.
    std::vector<std::string> names;
    for (const auto& stage : pipeline_.spec(slot).stages)
      names.push_back(stage.name);
    report.stage_names.push_back(std::move(names));
  }
  report.cache = cache.stats();
  report.flush_bytes =
      static_cast<std::size_t>(cache.stats().flushes) * row_bytes_;
  // Host wall-clock totals (name order — total_us() is an ordered map);
  // telemetry only, outside the parity contract.
  if (cfg_.self_profile)
    for (const auto& [name, us] : prof.total_us())
      report.host_span_us.emplace_back(name, us);
  // End-of-run whole-shard occupancy, stamped at the makespan: total_busy
  // (every stage unit plus the write path — the one view that counts
  // ShardUsage::write_busy) and the write path alone.
  if (sink_ != nullptr) {
    for (std::size_t s = 0; s < report.shards.size(); ++s) {
      const std::string prefix = "shard." + std::to_string(s);
      sink_->on_counter(prefix + ".total_busy_ns", report.makespan,
                        report.shards[s].total_busy().value);
      sink_->on_counter(prefix + ".write_busy_ns", report.makespan,
                        report.shards[s].write_busy.value);
    }
  }
  return report;
}

}  // namespace imars::serve
