#include "serve/runtime.hpp"

#include <queue>
#include <vector>

#include "util/error.hpp"

namespace imars::serve {

ServingRuntime::ServingRuntime(const core::BackendFactory& factory,
                               const ServingConfig& cfg,
                               const core::ArchConfig& arch,
                               const device::DeviceProfile& profile)
    : cfg_(cfg),
      timing_(CacheTiming::from_model(core::PerfModel(arch, profile))),
      router_(factory, cfg.shards, profile, cfg.traffic) {
  IMARS_REQUIRE(cfg_.k >= 1, "ServingRuntime: k must be >= 1");
}

namespace {

struct ArrivalLater {
  bool operator()(const Request& a, const Request& b) const {
    if (a.enqueue.value != b.enqueue.value)
      return a.enqueue.value > b.enqueue.value;
    return a.id > b.id;  // deterministic tie-break
  }
};

}  // namespace

ServeReport ServingRuntime::run(LoadGenerator& gen,
                                std::span<const recsys::UserContext> users) {
  IMARS_REQUIRE(!users.empty(), "ServingRuntime::run: empty user population");
  router_.reset_clock();
  HotEmbeddingCache cache(cfg_.cache);
  DynamicBatcher batcher(cfg_.batcher);

  std::priority_queue<Request, std::vector<Request>, ArrivalLater> arrivals;
  for (std::size_t c = 0; c < gen.config().clients; ++c)
    if (auto r = gen.next(c, device::Ns{0.0})) arrivals.push(*r);

  ServeReport report;

  auto dispatch = [&](device::Ns when, bool drain) {
    auto batch = drain ? batcher.flush(when) : batcher.poll(when);
    IMARS_REQUIRE(batch.has_value(), "ServingRuntime: spurious dispatch");
    const auto results =
        router_.execute_batch(*batch, users, cfg_.k,
                              cfg_.cache.capacity_rows > 0 ? &cache : nullptr,
                              timing_);
    ++report.batches;
    for (std::size_t i = 0; i < batch->size(); ++i) {
      const Request& req = batch->requests[i];
      const auto& res = results[i];
      ServedQuery q;
      q.id = req.id;
      q.user = req.user;
      q.client = req.client;
      q.batch = batch->id;
      q.batch_size = batch->size();
      q.home_shard = res.home_shard;
      q.candidates = res.candidates;
      q.enqueue = req.enqueue;
      q.dispatch = batch->dispatch;
      q.complete = res.complete;
      q.filter_latency = res.filter_latency;
      q.rank_latency = res.rank_latency;
      q.energy = res.filter_stats.total().energy +
                 res.rank_stats.total().energy;
      report.queries.push_back(q);
      report.filter_stats.merge(res.filter_stats);
      report.rank_stats.merge(res.rank_stats);
      report.makespan = device::max(report.makespan, res.complete);

      // Closed loop: the client issues its next query on completion.
      if (auto next = gen.next(req.client, res.complete))
        arrivals.push(*next);
    }
  };

  device::Ns last_enqueue{0.0};
  while (!arrivals.empty() || !batcher.empty()) {
    if (!arrivals.empty()) {
      const device::Ns next_arrival = arrivals.top().enqueue;
      const auto deadline = batcher.deadline();
      if (!deadline.has_value() || next_arrival <= *deadline) {
        // The arrival is the earliest actionable event.
        const Request r = arrivals.top();
        arrivals.pop();
        batcher.add(r);
        last_enqueue = r.enqueue;
        if (batcher.pending() >= batcher.config().max_batch)
          dispatch(r.enqueue, false);  // size trigger fires as it fills
        continue;
      }
      // Deadline trigger: the oldest pending request has waited max_wait.
      dispatch(*deadline, false);
      continue;
    }
    // No arrival can occur before a completion (closed loop, nothing in
    // flight): waiting out the deadline would be pure simulation artifact,
    // so drain the partial batch at the newest request's arrival time.
    dispatch(last_enqueue, true);
  }

  report.shards.assign(router_.usage().begin(), router_.usage().end());
  report.cache = cache.stats();
  return report;
}

}  // namespace imars::serve
