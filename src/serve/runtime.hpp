// The concurrent serving runtime: glue between the closed-loop load
// generator, the dynamic batcher, the hot-embedding cache and the sharded
// accelerator fabric.
//
// The event loop advances simulated hardware time deterministically
// (arrivals, batch triggers, completions), while the functional
// recommendation work of each dispatched batch executes concurrently on
// the per-shard worker threads. Reported QPS / latency percentiles are in
// the device-model time domain, so they compose with every other number
// the simulator produces.
#pragma once

#include <span>

#include "core/backend_factory.hpp"
#include "core/config.hpp"
#include "core/perf_model.hpp"
#include "serve/batcher.hpp"
#include "serve/hot_cache.hpp"
#include "serve/load_gen.hpp"
#include "serve/serve_stats.hpp"
#include "serve/shard_router.hpp"

namespace imars::serve {

struct ServingConfig {
  std::size_t shards = 4;
  std::size_t k = 10;  ///< global top-k per query
  DynamicBatcherConfig batcher;
  HotCacheConfig cache;
  TrafficSpec traffic;  ///< per-stage ET traffic (cache bookkeeping)
};

class ServingRuntime {
 public:
  /// Builds the shard fabric (one backend replica per shard, in parallel).
  /// `arch`/`profile` parameterize the cache/merge timing model and should
  /// match what the factory's backends use.
  ServingRuntime(const core::BackendFactory& factory,
                 const ServingConfig& cfg, const core::ArchConfig& arch,
                 const device::DeviceProfile& profile);

  const ServingConfig& config() const noexcept { return cfg_; }
  ShardRouter& router() noexcept { return router_; }
  const CacheTiming& cache_timing() const noexcept { return timing_; }

  /// Serves the generator's whole closed-loop stream against the user
  /// population; resets clocks and cache statistics first.
  ServeReport run(LoadGenerator& gen,
                  std::span<const recsys::UserContext> users);

 private:
  ServingConfig cfg_;
  CacheTiming timing_;
  ShardRouter router_;
};

}  // namespace imars::serve
