// The concurrent serving runtime: glue between the load generator (closed-
// loop, open-loop Poisson or trace replay), the class-aware QoS batcher,
// the hot-embedding cache and the staged-pipeline engine over one or more
// abstract ServableBackends (co-resident tenants).
//
// The event loop advances simulated hardware time deterministically
// (arrivals, batch triggers, admission-gate openings, completions), while
// the functional recommendation work of each dispatched batch executes
// concurrently on the per-shard worker threads. With `overlap` enabled
// under completion-independent arrivals (open loop / trace), up to
// `max_inflight` batches stay in flight: batch b+1's early stages run on
// the worker threads while batch b's late stages finish (batch composition
// is completion-independent there, so the deferred accounting is
// bit-identical to phased execution).
//
// Multi-tenant QoS (PR 3): requests carry a priority class; each class has
// its own batching triggers, an optional end-to-end deadline with
// preemptive close, and a device-time weight. When the QoS config sets a
// positive `admit_window`, closed batches wait in a ready queue and are
// released to the fabric only as the device backlog frontier comes within
// the window — deadline classes are released earliest-deadline-first while
// inside their weight entitlement, everyone else by weighted virtual time,
// so a bulk tenant's flood cannot starve an interactive tenant. Admission
// gating needs completion feedback (the frontier), so it serializes
// collection like the closed loop does; the ungated single-class
// configuration reproduces the PR 2 engine bit-identically. Reported
// QPS / latency percentiles are in the device-model time domain, so they
// compose with every other number the simulator produces.
#pragma once

#include <memory>
#include <span>
#include <vector>

#include "core/backend_factory.hpp"
#include "core/config.hpp"
#include "core/perf_model.hpp"
#include "serve/batcher.hpp"
#include "serve/hot_cache.hpp"
#include "serve/load_gen.hpp"
#include "serve/serve_stats.hpp"
#include "serve/shard_router.hpp"
#include "serve/stage_pipeline.hpp"

namespace imars::serve {

/// Frequency-aware placement (PlacementPolicy pin layer over the
/// configured ShardMap): the hottest profiled work-item keys are pinned to
/// low-row-latency shards before serving. The frequency profile comes from
/// an offline `histogram` when one is supplied, otherwise from a warmup
/// window — a fresh LoadGenerator over the run's own config (same seed, so
/// the profiled traffic is the served traffic) driven through
/// ServableBackend::profile_items on the calling thread before any batch
/// is in flight. Per-shard row costs are resolved through the fabric's own
/// cache timings (each shard's PerfModel row-fetch cost), so mixed
/// technologies pin their hot rows onto the fastest CMAs. Disabled, the
/// configured map is never touched — read-only runs stay bit-identical.
struct PlacementConfig {
  bool enabled = false;
  std::size_t hot_rows = 0;        ///< pins to place (must be positive)
  std::size_t warmup_queries = 0;  ///< profile window length
  std::vector<HotKey> histogram;   ///< offline profile (overrides warmup)
  /// Per-shard per-item cost driving the greedy pin balance. Empty = the
  /// per-shard PerfModel row-fetch timings (pure row-latency placement);
  /// benches pass measured whole-stage per-item costs instead when the
  /// serving stage does more than fetch the row (e.g. per-candidate DNN).
  std::vector<device::Ns> shard_costs;
  // --- tier-aware pin resolution (tiered embedding memory) -------------
  /// Hottest ET *rows* (not work items) pinned warm-resident in the tiered
  /// cache before serving — static tier placement, independent of
  /// `enabled` (which governs the work-item pin layer) so benches can
  /// compare static warm pins against online migration under identical
  /// routing. Resolved from `warm_histogram` when supplied, else from the
  /// same warmup replay, profiling row accesses through
  /// ServableBackend::accesses. Requires a tiering-enabled cache; 0 = no
  /// warm pins.
  std::size_t warm_rows = 0;
  /// Offline row-frequency profile for warm pinning: key =
  /// (table << 32 | row) in slot 0's namespace (overrides the warmup).
  std::vector<HotKey> warm_histogram;
};

/// Adaptive QoS estimates: EWMA over the observed dispatch-to-complete
/// time of each class's batches, fed back into the batcher's preemptive
/// close (service_estimate) and gated-admission accounting (request_cost,
/// scaled by observed per-request device time). Observations commit on a
/// fixed schedule — a batch's measurement is applied only once
/// `max_inflight` later batches have been submitted, a point reached
/// identically under phased and overlapped execution (submission n always
/// waits for collection n - max_inflight) — so adaptation never breaks the
/// overlap-invariance contract: reports stay bit-identical with overlap on
/// or off, they just both follow the drifting estimates. Off (default),
/// the estimates stay exactly as configured and every previously recorded
/// report reproduces bit-identically.
struct AdaptiveQosConfig {
  bool enabled = false;
  /// EWMA smoothing factor in (0, 1]: est' = alpha * obs + (1-alpha) * est.
  double alpha = 0.2;
};

struct ServingConfig {
  std::size_t shards = 4;
  std::size_t k = 10;  ///< global top-k per query
  DynamicBatcherConfig batcher;
  /// Multi-tenant class table. Empty classes = single-tenant: one class
  /// derived from `batcher`, ungated — the PR 2 configuration.
  QosBatcherConfig qos;
  HotCacheConfig cache;
  TrafficSpec traffic;  ///< per-stage ET traffic (filter/rank servable)
  /// Explicit item partition (e.g. ShardMap::from_costs over probed stage
  /// costs); when empty, one is derived from `shard_weights`, or the
  /// uniform modulo-compatible placement if those are empty too.
  ShardMap shard_map;
  /// Capability weights of the item partition (one per shard).
  std::vector<double> shard_weights;
  std::size_t map_granularity = 64;  ///< buckets per shard (weighted maps)
  /// Frequency-aware hot-row pinning over the map above.
  PlacementConfig placement;
  /// Async stage overlap: keep up to `max_inflight` batches in flight so a
  /// later batch's early stages overlap an earlier batch's late stages on
  /// the worker threads. Honored under completion-independent arrivals
  /// (open loop / trace) with an ungated QoS config (closed-loop batch
  /// composition and the admission gate both depend on completions, so
  /// those loops stay phased); hardware-time reports are identical either
  /// way.
  bool overlap = false;
  std::size_t max_inflight = 4;
  /// Speculative dispatch windows: with `overlap` on, also defer collection
  /// in the completion-DEPENDENT regimes (closed loop, gated admission) —
  /// but only while the event loop can PROVE the pending completions cannot
  /// affect its next decision. The proof is built from per-class service
  /// floors (max of QosClassConfig::service_floor and the servable's
  /// structural merge floor, StagePipeline::service_floor): every inflight
  /// batch completes no earlier than dispatch + floor, so a closed loop's
  /// next spawned arrival lands no earlier than that + think time, and a
  /// gate whose frontier lower bound sits beyond the admit window is
  /// provably still shut. Within that horizon the runtime dispatches ahead
  /// and never rolls back; outside it, it drains exactly as the phased loop
  /// would. Floors are validated against every observed completion
  /// (IMARS_REQUIRE), and all decisions use only provable bounds, so
  /// reports stay bit-identical to phased execution — speculation buys
  /// host wall-clock overlap, never different simulated numbers.
  bool speculate = false;
  /// Adaptive service estimates (see AdaptiveQosConfig).
  AdaptiveQosConfig adaptive;

  /// Streaming report: drop per-query retention and fill
  /// ServeReport::streaming instead — means exact, percentiles within
  /// `streaming_rel_err` (see StreamingAggregates). Aggregate views answer
  /// identically (within resolution); record-only views throw.
  bool streaming_report = false;
  double streaming_rel_err = 0.01;
  /// Wall-clock self-profiling of the simulator's own hot path (batcher
  /// close, submit, collect(), report accumulation), reported through the
  /// attached observer as host spans and summarized into
  /// ServeReport::host_span_us. Host-side telemetry only — simulated time
  /// and reports are unaffected.
  bool self_profile = false;
  /// Re-enact the pre-optimization host hot path (fresh allocations per
  /// batch everywhere: engine State, item partitions, row-access lists,
  /// full-sort top-k merge, per-query record pushes) instead of the pooled
  /// arena path. Simulated-time reports are BIT-IDENTICAL in both modes —
  /// bench_scaling's parity grid gates on that — and the two self-profiled
  /// host wall-clocks quantify the optimization (its >= 3x acceptance
  /// figure). Off = the optimized path; there is no reason to enable this
  /// outside A/B measurement.
  bool reference_host_path = false;

  /// The effective class table (explicit `qos`, or the single-tenant table
  /// derived from `batcher`).
  QosBatcherConfig effective_qos() const {
    return qos.classes.empty() ? QosBatcherConfig::single(batcher) : qos;
  }
};

class ServingRuntime {
 public:
  /// Filter/rank fabric from a uniform factory (one replica per shard,
  /// built in parallel). `arch`/`profile` parameterize the cache/merge
  /// timing model and should match what the factory's backends use.
  ServingRuntime(const core::BackendFactory& factory,
                 const ServingConfig& cfg, const core::ArchConfig& arch,
                 const device::DeviceProfile& profile);

  /// Generic fabric over any servable (CTR, heterogeneous filter/rank, …).
  /// The shard count comes from the servable; `profile` supplies the
  /// controller-side (merge) timing. On mixed-technology fabrics pass the
  /// per-shard `shard_profiles` so cache hits credit back each shard's own
  /// miss cost (empty means every shard uses `profile`).
  ServingRuntime(std::unique_ptr<ServableBackend> servable,
                 const ServingConfig& cfg, const core::ArchConfig& arch,
                 const device::DeviceProfile& profile,
                 std::span<const device::DeviceProfile> shard_profiles = {});

  /// Multi-tenant fabric: several co-resident servables sharing one
  /// pipeline (and each shard's ET banks). All servables must expose the
  /// same shard count; `QosClassConfig::servable` routes each class to its
  /// slot.
  ServingRuntime(std::vector<std::unique_ptr<ServableBackend>> servables,
                 const ServingConfig& cfg, const core::ArchConfig& arch,
                 const device::DeviceProfile& profile,
                 std::span<const device::DeviceProfile> shard_profiles = {});

  const ServingConfig& config() const noexcept { return cfg_; }
  StagePipeline& pipeline() noexcept { return pipeline_; }
  ServableBackend& servable() noexcept { return *servables_.front(); }
  ServableBackend& servable(std::size_t slot) { return *servables_.at(slot); }
  std::size_t servable_count() const noexcept { return servables_.size(); }
  /// The first filter/rank servable (valid whenever the fabric serves one,
  /// whichever constructor built it).
  ShardRouter& router();
  /// Per-shard cache timings (a single entry when all shards share the
  /// controller profile's technology).
  std::span<const CacheTiming> cache_timing() const noexcept {
    return timings_;
  }

  /// Serves the generator's whole stream against the user population
  /// (binds `users` to every filter/rank servable); resets clocks and cache
  /// statistics first.
  ServeReport run(LoadGenerator& gen,
                  std::span<const recsys::UserContext> users);

  /// Serves the generator's whole stream; every servable's population must
  /// already be bound (e.g. CtrServable::bind_samples).
  ServeReport run(LoadGenerator& gen);

  /// Attaches a pure-observer sink (nullptr detaches) for the next run():
  /// batch lifecycle spans, stage/ET spans, cache events, queue-depth and
  /// frontier time series, end-of-run busy totals — and, with
  /// `self_profile`, host wall-clock spans. Observation never feeds back:
  /// every report is bit-identical with the sink attached or not.
  void set_observer(ObserverSink* sink) noexcept { sink_ = sink; }
  ObserverSink* observer() const noexcept { return sink_; }

 private:
  static ShardMap make_map(const ServingConfig& cfg, std::size_t shards);
  static std::vector<PipelineSpec> specs_of(
      const std::vector<std::unique_ptr<ServableBackend>>& servables);

  /// The class table a run uses: the effective table with every unset
  /// `service_estimate` of a latency-critical class defaulted from its
  /// servable's probed graph critical path
  /// (StagePipeline::service_estimate). Probes run on the calling thread
  /// before any batch is in flight, so the derived estimates stay static —
  /// batching decisions remain completion-independent and the
  /// overlap-invariant determinism contract holds.
  QosBatcherConfig resolved_qos();

  /// The configured map with the PlacementPolicy pin layer applied
  /// (placement must be enabled). Profiles on the calling thread before
  /// serving; deterministic for a given load config.
  ShardMap placed_map(const LoadGenConfig& load);

  /// Tier-aware pin resolution: the hottest `placement.warm_rows` ET row
  /// keys, from the offline warm_histogram or a warmup replay profiling
  /// row accesses (slot 0's namespace). Deterministic for a given load
  /// config, like placed_map.
  std::vector<std::uint64_t> warm_pin_keys(const LoadGenConfig& load);

  ServingConfig cfg_;
  QosBatcherConfig qos_;              ///< effective class table
  std::vector<CacheTiming> timings_;  ///< one, or one per shard
  std::vector<std::unique_ptr<ServableBackend>> servables_;
  ShardRouter* router_ = nullptr;  ///< first filter/rank servable, if any
  std::size_t row_bytes_ = 0;      ///< flush-traffic bytes per ET row
  ObserverSink* sink_ = nullptr;   ///< pure observer; never feeds back
  StagePipeline pipeline_;
};

}  // namespace imars::serve
