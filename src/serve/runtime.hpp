// The concurrent serving runtime: glue between the load generator (closed-
// loop or open-loop Poisson), the dynamic batcher, the hot-embedding cache
// and the staged-pipeline engine over an abstract ServableBackend.
//
// The event loop advances simulated hardware time deterministically
// (arrivals, batch triggers, completions), while the functional
// recommendation work of each dispatched batch executes concurrently on
// the per-shard worker threads. With `overlap` enabled under open-loop
// arrivals, up to `max_inflight` batches stay in flight: batch b+1's early
// stages run on the worker threads while batch b's late stages finish
// (batch composition is completion-independent in the open loop, so the
// deferred accounting is bit-identical to phased execution). Reported
// QPS / latency percentiles are in the device-model time domain, so they
// compose with every other number the simulator produces.
#pragma once

#include <memory>
#include <span>
#include <vector>

#include "core/backend_factory.hpp"
#include "core/config.hpp"
#include "core/perf_model.hpp"
#include "serve/batcher.hpp"
#include "serve/hot_cache.hpp"
#include "serve/load_gen.hpp"
#include "serve/serve_stats.hpp"
#include "serve/shard_router.hpp"
#include "serve/stage_pipeline.hpp"

namespace imars::serve {

struct ServingConfig {
  std::size_t shards = 4;
  std::size_t k = 10;  ///< global top-k per query
  DynamicBatcherConfig batcher;
  HotCacheConfig cache;
  TrafficSpec traffic;  ///< per-stage ET traffic (filter/rank servable)
  /// Explicit item partition (e.g. ShardMap::from_costs over probed stage
  /// costs); when empty, one is derived from `shard_weights`, or the
  /// uniform modulo-compatible placement if those are empty too.
  ShardMap shard_map;
  /// Capability weights of the item partition (one per shard).
  std::vector<double> shard_weights;
  std::size_t map_granularity = 64;  ///< buckets per shard (weighted maps)
  /// Async stage overlap: keep up to `max_inflight` batches in flight so a
  /// later batch's early stages overlap an earlier batch's late stages on
  /// the worker threads. Honored under open-loop arrivals (closed-loop
  /// batch composition depends on completions, so the loop stays phased);
  /// hardware-time reports are identical either way.
  bool overlap = false;
  std::size_t max_inflight = 4;
};

class ServingRuntime {
 public:
  /// Filter/rank fabric from a uniform factory (one replica per shard,
  /// built in parallel). `arch`/`profile` parameterize the cache/merge
  /// timing model and should match what the factory's backends use.
  ServingRuntime(const core::BackendFactory& factory,
                 const ServingConfig& cfg, const core::ArchConfig& arch,
                 const device::DeviceProfile& profile);

  /// Generic fabric over any servable (CTR, heterogeneous filter/rank, …).
  /// The shard count comes from the servable; `profile` supplies the
  /// controller-side (merge) timing. On mixed-technology fabrics pass the
  /// per-shard `shard_profiles` so cache hits credit back each shard's own
  /// miss cost (empty means every shard uses `profile`).
  ServingRuntime(std::unique_ptr<ServableBackend> servable,
                 const ServingConfig& cfg, const core::ArchConfig& arch,
                 const device::DeviceProfile& profile,
                 std::span<const device::DeviceProfile> shard_profiles = {});

  const ServingConfig& config() const noexcept { return cfg_; }
  StagePipeline& pipeline() noexcept { return pipeline_; }
  ServableBackend& servable() noexcept { return *servable_; }
  /// The filter/rank servable (valid whenever the fabric serves one,
  /// whichever constructor built it).
  ShardRouter& router();
  /// Per-shard cache timings (a single entry when all shards share the
  /// controller profile's technology).
  std::span<const CacheTiming> cache_timing() const noexcept {
    return timings_;
  }

  /// Serves the generator's whole stream against the user population
  /// (filter/rank fabrics); resets clocks and cache statistics first.
  ServeReport run(LoadGenerator& gen,
                  std::span<const recsys::UserContext> users);

  /// Serves the generator's whole stream; the servable's population must
  /// already be bound (e.g. CtrServable::bind_samples).
  ServeReport run(LoadGenerator& gen);

 private:
  static ShardMap make_map(const ServingConfig& cfg, std::size_t shards);

  ServingConfig cfg_;
  std::vector<CacheTiming> timings_;  ///< one, or one per shard
  std::unique_ptr<ServableBackend> servable_;
  ShardRouter* router_ = nullptr;  ///< non-null for filter/rank fabrics
  StagePipeline pipeline_;
};

}  // namespace imars::serve
