#include "serve/servable_ctr.hpp"

#include "util/error.hpp"

namespace imars::serve {

using recsys::StageStats;

PipelineSpec CtrServable::pipeline_spec() {
  PipelineSpec spec;
  spec.stages = {{"score", StageKind::kSharded}};
  spec.merge_topk = false;  // one shard scores the impression; no tournament
  return spec;
}

CtrServable::CtrServable(const core::CtrBackendFactory& factory,
                         std::span<const device::DeviceProfile> profiles)
    : spec_(pipeline_spec()) {
  IMARS_REQUIRE(!profiles.empty(), "CtrServable: need at least one shard");
  shards_ = core::build_replicas(factory, profiles);
}

void CtrServable::bind_samples(std::span<const data::CriteoSample> samples) {
  IMARS_REQUIRE(!samples.empty(), "CtrServable: empty impression population");
  samples_ = samples;
}

recsys::CtrBackend& CtrServable::backend(std::size_t shard) {
  IMARS_REQUIRE(shard < shards_.size(), "CtrServable: shard out of range");
  return *shards_[shard];
}

const data::CriteoSample& CtrServable::sample_of(const Request& req) const {
  IMARS_REQUIRE(req.user < samples_.size(),
                "CtrServable: sample out of range (bind_samples first)");
  return samples_[req.user];
}

std::vector<device::Ns> CtrServable::probe_score_cost(
    const data::CriteoSample& probe) {
  std::vector<device::Ns> costs;
  costs.reserve(shards_.size());
  for (auto& shard : shards_) {
    StageStats stats;
    (void)shard->score(probe.dense, probe.sparse, &stats);
    costs.push_back(stats.total().latency);
  }
  return costs;
}

std::vector<std::size_t> CtrServable::run_replicated(std::size_t, std::size_t,
                                                     const Request&,
                                                     StageStats*) {
  IMARS_REQUIRE(false, "CtrServable: no replicated stage in the CTR graph");
  return {};
}

std::vector<recsys::ScoredItem> CtrServable::run_sharded(
    std::size_t stage, std::size_t shard, const Request& req,
    std::span<const std::size_t> slice, std::size_t /*k*/,
    StageStats* stats) {
  IMARS_REQUIRE(stage == 0, "CtrServable: score is stage 0");
  // The slice carries the request's own id (initial_items); score the
  // impression the request references.
  std::vector<recsys::ScoredItem> out;
  out.reserve(slice.size());
  for (std::size_t key : slice) {
    IMARS_REQUIRE(key == req.id, "CtrServable: foreign work item");
    const auto& s = sample_of(req);
    const float ctr = shards_[shard]->score(s.dense, s.sparse, stats);
    out.push_back({req.user, ctr});
  }
  return out;
}

std::vector<RowAccess> CtrServable::accesses(
    std::size_t /*stage*/, const Request& req,
    std::span<const std::size_t> slice) const {
  // One row fetch per categorical feature per scored impression (DLRM
  // looks up exactly one row per table; no pooling chain). The 26 banks
  // read in parallel — the measured ET latency is the slowest bank, not a
  // sum — so hits are flagged parallel_bank, grouped per impression:
  // energy is credited per hit, latency only when a whole impression hits.
  std::vector<RowAccess> out;
  const auto& s = sample_of(req);
  out.reserve(slice.size() * s.sparse.size());
  for (std::size_t i = 0; i < slice.size(); ++i)
    for (std::size_t f = 0; f < s.sparse.size(); ++f)
      out.push_back({static_cast<std::uint32_t>(f),
                     static_cast<std::uint32_t>(s.sparse[f]),
                     /*pooled=*/false, /*first_in_table=*/false,
                     /*parallel_bank=*/true,
                     /*parallel_group=*/static_cast<std::uint32_t>(i)});
  return out;
}

}  // namespace imars::serve
