#include "serve/servable_ctr.hpp"

#include "util/error.hpp"

namespace imars::serve {

using recsys::StageStats;

namespace {

// Tower-graph stage indices (spec order below).
constexpr std::size_t kGatherStage = 0;
constexpr std::size_t kDenseStage = 1;
constexpr std::size_t kInteractStage = 2;

}  // namespace

PipelineSpec CtrServable::pipeline_spec(CtrGraph graph) {
  PipelineSpec spec;
  spec.merge_topk = false;  // one shard scores the impression; no tournament
  // Every stage issuing the sparse-feature lookups declares the
  // in-crossbar-reduction capability (StageSpec::reduce); it stays inert
  // — timed identically — unless the device profile opts in.
  switch (graph) {
    case CtrGraph::kFused:
      spec.stages = {{"score", StageKind::kSharded, {}, /*reduce=*/true}};
      break;
    case CtrGraph::kTowerChain:
      // The same three tower stages, serialized (an implicit linear
      // chain): the dense stage passes the impression through as the
      // interact stage's work item.
      spec.stages = {{"gather", StageKind::kSharded, {}, /*reduce=*/true},
                     {"dense", StageKind::kReplicated, {}},
                     {"interact", StageKind::kSharded, {}}};
      break;
    case CtrGraph::kTowerDag:
      // Parallel feature towers: gather (CMA banks) and dense (crossbars)
      // are both sources; interact joins on the later arriving tower.
      spec.stages = {{"gather", StageKind::kSharded, {}, /*reduce=*/true},
                     {"dense", StageKind::kReplicated, {}},
                     {"interact", StageKind::kSharded, {"gather", "dense"}}};
      break;
  }
  return spec;
}

CtrServable::CtrServable(const core::CtrBackendFactory& factory,
                         std::span<const device::DeviceProfile> profiles,
                         CtrGraph graph)
    : graph_(graph), spec_(pipeline_spec(graph)) {
  IMARS_REQUIRE(!profiles.empty(), "CtrServable: need at least one shard");
  shards_ = core::build_replicas(factory, profiles);
  if (graph_ != CtrGraph::kFused)
    for (const auto& shard : shards_)
      IMARS_REQUIRE(shard->supports_towers(),
                    "CtrServable: tower graphs need a staged CtrBackend");
}

void CtrServable::bind_samples(std::span<const data::CriteoSample> samples) {
  IMARS_REQUIRE(!samples.empty(), "CtrServable: empty impression population");
  samples_ = samples;
}

recsys::CtrBackend& CtrServable::backend(std::size_t shard) {
  IMARS_REQUIRE(shard < shards_.size(), "CtrServable: shard out of range");
  return *shards_[shard];
}

const data::CriteoSample& CtrServable::sample_of(const Request& req) const {
  IMARS_REQUIRE(req.user < samples_.size(),
                "CtrServable: sample out of range (bind_samples first)");
  return samples_[req.user];
}

std::vector<device::Ns> CtrServable::probe_score_cost(
    const data::CriteoSample& probe) {
  std::vector<device::Ns> costs;
  costs.reserve(shards_.size());
  for (auto& shard : shards_) {
    StageStats stats;
    (void)shard->score(probe.dense, probe.sparse, &stats);
    costs.push_back(stats.total().latency);
  }
  return costs;
}

std::vector<device::Ns> CtrServable::stage_cost_estimate(std::size_t /*k*/) {
  if (samples_.empty()) return {};
  const auto& probe = samples_.front();
  auto& shard = *shards_.front();
  if (graph_ == CtrGraph::kFused) {
    StageStats stats;
    (void)shard.score(probe.dense, probe.sparse, &stats);
    return {stats.total().latency};
  }
  StageStats gather_stats, dense_stats, interact_stats;
  const auto embs = shard.gather_tower(probe.sparse, &gather_stats);
  const auto b = shard.dense_tower(probe.dense, &dense_stats);
  (void)shard.interact_top(embs, b, &interact_stats);
  return {gather_stats.total().latency, dense_stats.total().latency,
          interact_stats.total().latency};
}

std::vector<std::size_t> CtrServable::run_replicated(std::size_t stage,
                                                     std::size_t shard,
                                                     const Request& req,
                                                     StageStats* stats) {
  IMARS_REQUIRE(graph_ != CtrGraph::kFused && stage == kDenseStage,
                "CtrServable: no such replicated stage in the CTR graph");
  const auto& s = sample_of(req);
  (void)shards_[shard]->dense_tower(s.dense, stats);
  // Pass the impression through as the interact stage's work item (the
  // interact stage partitions its replicated feeder's output).
  return {req.id};
}

std::vector<recsys::ScoredItem> CtrServable::run_sharded(
    std::size_t stage, std::size_t shard, const Request& req,
    std::span<const std::size_t> slice, std::size_t /*k*/,
    StageStats* stats) {
  std::vector<recsys::ScoredItem> out;
  if (graph_ == CtrGraph::kFused) {
    IMARS_REQUIRE(stage == 0, "CtrServable: score is stage 0");
    // The slice carries the request's own id (initial_items); score the
    // impression the request references.
    out.reserve(slice.size());
    for (std::size_t key : slice) {
      IMARS_REQUIRE(key == req.id, "CtrServable: foreign work item");
      const auto& s = sample_of(req);
      const float ctr = shards_[shard]->score(s.dense, s.sparse, stats);
      out.push_back({req.user, ctr});
    }
    return out;
  }

  IMARS_REQUIRE(stage == kGatherStage || stage == kInteractStage,
                "CtrServable: no such sharded stage in the tower graph");
  for (std::size_t key : slice) {
    IMARS_REQUIRE(key == req.id, "CtrServable: foreign work item");
    const auto& s = sample_of(req);
    if (stage == kGatherStage) {
      // The gather tower: measures the ET traffic; its embeddings are
      // recomputed (unmeasured) at the join, keeping the servable
      // stateless across stages.
      (void)shards_[shard]->gather_tower(s.sparse, stats);
      continue;
    }
    const auto embs = shards_[shard]->gather_tower(s.sparse, nullptr);
    const auto b = shards_[shard]->dense_tower(s.dense, nullptr);
    const float ctr = shards_[shard]->interact_top(embs, b, stats);
    out.push_back({req.user, ctr});
  }
  return out;
}

std::vector<RowAccess> CtrServable::accesses(
    std::size_t stage, const Request& req,
    std::span<const std::size_t> slice) const {
  // One row fetch per categorical feature per scored impression (DLRM
  // looks up exactly one row per table; no pooling chain). The 26 banks
  // read in parallel — the measured ET latency is the slowest bank, not a
  // sum — so hits are flagged parallel_bank, grouped per impression:
  // energy is credited per hit, latency only when a whole impression hits.
  // In the tower graphs only the gather stage touches the ET banks.
  std::vector<RowAccess> out;
  accesses_into(stage, req, slice, out);
  return out;
}

void CtrServable::accesses_into(std::size_t stage, const Request& req,
                                std::span<const std::size_t> slice,
                                std::vector<RowAccess>& out) const {
  if (graph_ != CtrGraph::kFused && stage != kGatherStage) return;
  const auto& s = sample_of(req);
  out.reserve(out.size() + slice.size() * s.sparse.size());
  for (std::size_t i = 0; i < slice.size(); ++i)
    for (std::size_t f = 0; f < s.sparse.size(); ++f)
      out.push_back({static_cast<std::uint32_t>(f),
                     static_cast<std::uint32_t>(s.sparse[f]),
                     /*pooled=*/false, /*first_in_table=*/false,
                     /*parallel_bank=*/true,
                     /*parallel_group=*/static_cast<std::uint32_t>(i)});
}

std::vector<RowAccess> CtrServable::update_accesses(const Request& req) const {
  // One row write per categorical feature (DLRM reads exactly one row per
  // table, and the update refreshes the same rows). Pooling/parallel flags
  // are read-path concepts; the write path only needs the keys.
  std::vector<RowAccess> out;
  const auto& s = sample_of(req);
  out.reserve(s.sparse.size());
  for (std::size_t f = 0; f < s.sparse.size(); ++f)
    out.push_back({static_cast<std::uint32_t>(f),
                   static_cast<std::uint32_t>(s.sparse[f]),
                   /*pooled=*/false, /*first_in_table=*/false});
  return out;
}

}  // namespace imars::serve
