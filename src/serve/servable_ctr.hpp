// The DLRM/Criteo CTR servable: ranking-only scoring behind the generic
// staged-pipeline engine (ROADMAP "larger-scale serving bench" item).
//
// Three stage graphs serve the same model (CtrGraph):
//
//   kFused       one *sharded* "score" stage — each impression is one work
//                item, placed on a shard by the ShardMap, scored in a
//                single fused pass. The pre-DAG behavior, timed
//                identically.
//   kTowerChain  the model's tower structure as a linear chain:
//                gather (sharded, ET traffic) -> dense (replicated, bottom
//                MLP on crossbars) -> interact (sharded, interaction + top
//                MLP). Same per-impression work as kFused, split across
//                three stage units.
//   kTowerDag    the towers as a DAG: gather and dense are both sources
//                and run IN PARALLEL (the CMA banks gather embeddings
//                while the crossbars run the bottom MLP — disjoint
//                hardware), joining at interact. This is the MicroRec-
//                style tower pipelining the stage-DAG engine exists for.
//
// In every graph the impression lands on one shard (the ShardMap places
// `Request::id`, and the dense stage's home shard uses the same map), so a
// capability-weighted map still sends proportionally more traffic to
// faster shards and sharded scores equal the serial
// ImarsCtrBackend::score by construction.
//
// The per-impression ET traffic (26 single-row fetches, one per categorical
// feature) flows through the same hot-embedding cache as the filter/rank
// servable — attributed to the gather stage in the tower graphs.
#pragma once

#include <cstddef>
#include <memory>
#include <span>
#include <vector>

#include "core/backend_factory.hpp"
#include "data/criteo.hpp"
#include "serve/stage_pipeline.hpp"

namespace imars::serve {

/// Which stage graph a CtrServable serves the DLRM model through.
enum class CtrGraph : std::uint8_t {
  kFused,       ///< single sharded score stage (pre-DAG timing)
  kTowerChain,  ///< gather -> dense -> interact, serialized chain
  kTowerDag,    ///< gather and dense in parallel, joining at interact
};

class CtrServable final : public ServableBackend {
 public:
  /// The stage graph this servable implements for `graph`.
  static PipelineSpec pipeline_spec(CtrGraph graph = CtrGraph::kFused);

  /// One CtrBackend replica per profile slot, each built on its own device
  /// technology (built in parallel). `model` captured by `factory` must
  /// outlive the servable. Tower graphs require replicas implementing the
  /// staged CtrBackend API (recsys::CtrBackend::supports_towers).
  CtrServable(const core::CtrBackendFactory& factory,
              std::span<const device::DeviceProfile> profiles,
              CtrGraph graph = CtrGraph::kFused);

  /// Binds the impression population `Request::user` indexes. The span must
  /// outlive the serving run.
  void bind_samples(std::span<const data::CriteoSample> samples);

  recsys::CtrBackend& backend(std::size_t shard);
  CtrGraph graph() const noexcept { return graph_; }

  /// Measures each shard's per-impression scoring cost on `probe` (hardware
  /// latency), for capability-weighted ShardMaps. Runs the replicas on the
  /// calling thread, so it must NOT be called while a batch is in flight
  /// (probe before serving, like the benches do).
  std::vector<device::Ns> probe_score_cost(const data::CriteoSample& probe);

  // --- ServableBackend -----------------------------------------------------
  std::string_view name() const override { return "ctr-dlrm"; }
  const PipelineSpec& spec() const override { return spec_; }
  std::size_t shards() const override { return shards_.size(); }

  /// The impression itself is the only work item; keyed by request id so
  /// the ShardMap spreads the stream in arrival order, weighted by
  /// capability (sample ids would pin every repeat of a Zipf-hot impression
  /// to one shard).
  std::vector<std::size_t> initial_items(const Request& req) const override {
    return {req.id};
  }

  std::vector<std::size_t> run_replicated(
      std::size_t stage, std::size_t shard, const Request& req,
      recsys::StageStats* stats) override;

  std::vector<recsys::ScoredItem> run_sharded(
      std::size_t stage, std::size_t shard, const Request& req,
      std::span<const std::size_t> slice, std::size_t k,
      recsys::StageStats* stats) override;

  std::vector<RowAccess> accesses(
      std::size_t stage, const Request& req,
      std::span<const std::size_t> slice) const override;

  /// Hot-path form: appends the same rows into `out` (the pipeline's
  /// per-batch scratch) without a fresh allocation; accesses() is
  /// implemented on top of it.
  void accesses_into(std::size_t stage, const Request& req,
                     std::span<const std::size_t> slice,
                     std::vector<RowAccess>& out) const override;

  /// An embedding update writes the impression's categorical rows (one row
  /// per sparse feature — the rows an online trainer refreshes after the
  /// click label lands).
  std::vector<RowAccess> update_accesses(const Request& req) const override;

  /// Per-stage scoring cost probed on shard 0 against the first bound
  /// sample (empty before bind_samples): {score} for kFused,
  /// {gather, dense, interact} for the tower graphs. `k` is irrelevant to
  /// single-impression scoring.
  std::vector<device::Ns> stage_cost_estimate(std::size_t k) override;

 private:
  const data::CriteoSample& sample_of(const Request& req) const;

  CtrGraph graph_;
  PipelineSpec spec_;
  std::vector<std::unique_ptr<recsys::CtrBackend>> shards_;
  std::span<const data::CriteoSample> samples_;
};

}  // namespace imars::serve
