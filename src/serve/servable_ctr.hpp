// The DLRM/Criteo CTR servable: ranking-only scoring behind the generic
// staged-pipeline engine (ROADMAP "larger-scale serving bench" item).
//
// The pipeline is a single *sharded* stage: each impression is one work
// item, placed on a shard by the ShardMap, so a capability-weighted map
// sends proportionally more traffic to faster shards (mixed-technology
// fabrics). Every replica holds the full model — sharding splits the
// request stream, not the tables — so any disjoint cover serves every
// impression exactly once and sharded scores equal the serial
// ImarsCtrBackend::score by construction.
//
// The per-impression ET traffic (26 single-row fetches, one per categorical
// feature) flows through the same hot-embedding cache as the filter/rank
// servable: Zipf-hot feature rows are served from the periphery buffer.
#pragma once

#include <cstddef>
#include <memory>
#include <span>
#include <vector>

#include "core/backend_factory.hpp"
#include "data/criteo.hpp"
#include "serve/stage_pipeline.hpp"

namespace imars::serve {

class CtrServable final : public ServableBackend {
 public:
  /// The single-stage scoring graph this servable implements.
  static PipelineSpec pipeline_spec();

  /// One CtrBackend replica per profile slot, each built on its own device
  /// technology (built in parallel). `model` captured by `factory` must
  /// outlive the servable.
  CtrServable(const core::CtrBackendFactory& factory,
              std::span<const device::DeviceProfile> profiles);

  /// Binds the impression population `Request::user` indexes. The span must
  /// outlive the serving run.
  void bind_samples(std::span<const data::CriteoSample> samples);

  recsys::CtrBackend& backend(std::size_t shard);

  /// Measures each shard's per-impression scoring cost on `probe` (hardware
  /// latency), for capability-weighted ShardMaps. Runs the replicas on the
  /// calling thread, so it must NOT be called while a batch is in flight
  /// (probe before serving, like the benches do).
  std::vector<device::Ns> probe_score_cost(const data::CriteoSample& probe);

  // --- ServableBackend -----------------------------------------------------
  std::string_view name() const override { return "ctr-dlrm"; }
  const PipelineSpec& spec() const override { return spec_; }
  std::size_t shards() const override { return shards_.size(); }

  /// The impression itself is the only work item; keyed by request id so
  /// the ShardMap spreads the stream in arrival order, weighted by
  /// capability (sample ids would pin every repeat of a Zipf-hot impression
  /// to one shard).
  std::vector<std::size_t> initial_items(const Request& req) const override {
    return {req.id};
  }

  std::vector<std::size_t> run_replicated(
      std::size_t stage, std::size_t shard, const Request& req,
      recsys::StageStats* stats) override;

  std::vector<recsys::ScoredItem> run_sharded(
      std::size_t stage, std::size_t shard, const Request& req,
      std::span<const std::size_t> slice, std::size_t k,
      recsys::StageStats* stats) override;

  std::vector<RowAccess> accesses(
      std::size_t stage, const Request& req,
      std::span<const std::size_t> slice) const override;

 private:
  const data::CriteoSample& sample_of(const Request& req) const;

  PipelineSpec spec_;
  std::vector<std::unique_ptr<recsys::CtrBackend>> shards_;
  std::span<const data::CriteoSample> samples_;
};

}  // namespace imars::serve
