#include "serve/servable_funnel.hpp"

#include <algorithm>
#include <cmath>

#include "baseline/exact_nns.hpp"
#include "util/error.hpp"

namespace imars::serve {

using recsys::OpKind;
using recsys::StageStats;

namespace {

/// `cost` charged `n` times (the analytical stages price per candidate).
recsys::OpCost scaled(const recsys::OpCost& cost, std::size_t n) {
  const double f = static_cast<double>(n);
  return {device::Ns{cost.latency.value * f}, device::Pj{cost.energy.value * f}};
}

/// One pooled pass over the user's feature rows + history (the ShardRouter
/// traffic idiom: the first row of each table's chain is a bare read).
void append_pooled_pass(const recsys::UserContext& user,
                        std::span<const std::size_t> features,
                        std::vector<RowAccess>& out) {
  auto add_feature = [&](std::size_t f) {
    bool first = true;
    for (std::size_t idx : user.sparse[f]) {
      out.push_back(
          {FunnelServable::kUietTableBase + static_cast<std::uint32_t>(f),
           static_cast<std::uint32_t>(idx), true, first});
      first = false;
    }
  };
  if (features.empty()) {
    for (std::size_t f = 0; f < user.sparse.size(); ++f) add_feature(f);
  } else {
    for (std::size_t f : features) add_feature(f);
  }
  bool first = true;
  for (std::size_t item : user.history) {
    out.push_back({FunnelServable::kItetTable,
                   static_cast<std::uint32_t>(item), true, first});
    first = false;
  }
}

/// IVF-Flat retrieval adapter (the FAISS-style tier of the GPU baseline).
class IvfRetrieval final : public RetrievalBackend {
 public:
  IvfRetrieval(const tensor::Matrix& items,
               const baseline::IvfIndex::Config& cfg)
      : index_(items, cfg) {}

  std::vector<std::size_t> retrieve(std::span<const float> embedding,
                                    std::size_t k,
                                    std::size_t* scanned) const override {
    if (scanned != nullptr) {
      // Centroid evaluations + the probed lists' entries (scan_fraction is
      // the exact probed share under the index's balance).
      const double frac = index_.scan_fraction(index_.config().nprobe);
      *scanned = index_.nlist() +
                 static_cast<std::size_t>(
                     std::ceil(frac * static_cast<double>(index_.size())));
    }
    return index_.search(embedding, k);
  }

 private:
  baseline::IvfIndex index_;
};

/// LSH signature top-k retrieval adapter (Hamming over all item sigs).
class LshRetrieval final : public RetrievalBackend {
 public:
  LshRetrieval(const lsh::RandomHyperplaneLsh& planes,
               std::span<const util::BitVec> sigs)
      : planes_(&planes), sigs_(sigs) {}

  std::vector<std::size_t> retrieve(std::span<const float> embedding,
                                    std::size_t k,
                                    std::size_t* scanned) const override {
    if (scanned != nullptr) *scanned = sigs_.size();
    return baseline::topk_hamming(sigs_, planes_->encode(embedding), k);
  }

 private:
  const lsh::RandomHyperplaneLsh* planes_;
  std::span<const util::BitVec> sigs_;
};

}  // namespace

PipelineSpec FunnelServable::pipeline_spec(const FunnelConfig& cfg) {
  PipelineSpec spec;
  if (cfg.retrieval == RetrievalKind::kFixed && !cfg.rerank) {
    // Degenerate: exactly the ShardRouter graph (bit-parity anchor).
    spec.stages = {{"filter", StageKind::kReplicated, {}},
                   {"rank", StageKind::kSharded, {}}};
    spec.merge_topk = true;
    return spec;
  }
  StageSpec retrieve{"retrieve", StageKind::kReplicated, {}};
  StageSpec filter{"filter", StageKind::kReplicated, {"retrieve"}};
  filter.consume_items = true;
  StageSpec rank{"rank", StageKind::kSharded, {"filter"}};
  if (cfg.rerank) {
    IMARS_REQUIRE(cfg.rank_keep >= 1,
                  "FunnelServable: rerank needs rank_keep >= 1");
    rank.emit_topk = cfg.rank_keep;
    StageSpec rerank{"rerank", StageKind::kSharded, {"rank"}};
    spec.stages = {std::move(retrieve), std::move(filter), std::move(rank),
                   std::move(rerank)};
  } else {
    spec.stages = {std::move(retrieve), std::move(filter), std::move(rank)};
  }
  spec.merge_topk = true;
  return spec;
}

FunnelServable::FunnelServable(const recsys::YoutubeDnn& model,
                               const core::ArchConfig& arch,
                               const core::BackendFactory& factory,
                               std::span<const device::DeviceProfile> profiles,
                               FunnelConfig cfg, TrafficSpec traffic)
    : FunnelServable(model, arch, core::per_slot(factory), profiles,
                     std::move(cfg), std::move(traffic)) {}

FunnelServable::FunnelServable(const recsys::YoutubeDnn& model,
                               const core::ArchConfig& arch,
                               const core::ShardedBackendFactory& factory,
                               std::span<const device::DeviceProfile> profiles,
                               FunnelConfig cfg, TrafficSpec traffic)
    : model_(&model),
      arch_(arch),
      cfg_(std::move(cfg)),
      spec_(pipeline_spec(cfg_)),
      traffic_(std::move(traffic)) {
  IMARS_REQUIRE(!profiles.empty(), "FunnelServable: need at least one shard");
  IMARS_REQUIRE(cfg_.retrieve_k >= 1, "FunnelServable: retrieve_k >= 1");
  degenerate_ = cfg_.retrieval == RetrievalKind::kFixed && !cfg_.rerank;
  if (degenerate_) {
    s_filter_ = 0;
    s_rank_ = 1;
  } else {
    s_retrieve_ = 0;
    s_filter_ = 1;
    s_rank_ = 2;
    if (cfg_.rerank) s_rerank_ = 3;
  }

  shards_ = core::build_replicas(factory, profiles);
  perf_.reserve(profiles.size());
  for (const auto& p : profiles) perf_.emplace_back(arch_, p);

  if (!degenerate_) {
    // Signatures for the narrowing filter (and the kLsh retrieval tier):
    // same planes/seed family as the hardware's stored ItET signatures.
    const auto& items = model.item_table();
    lsh_ = std::make_unique<lsh::RandomHyperplaneLsh>(
        items.dim(), cfg_.lsh_bits, cfg_.lsh_seed);
    item_sigs_.reserve(items.rows());
    for (std::size_t i = 0; i < items.rows(); ++i)
      item_sigs_.push_back(lsh_->encode(items.row(i)));
    switch (cfg_.retrieval) {
      case RetrievalKind::kIvf:
        retrieval_ = std::make_unique<IvfRetrieval>(items.matrix(), cfg_.ivf);
        break;
      case RetrievalKind::kLsh:
        retrieval_ = std::make_unique<LshRetrieval>(*lsh_, item_sigs_);
        break;
      case RetrievalKind::kFixed:
        break;  // replica filter pass
    }
  }

  if (cfg_.combine_tables && cfg_.rerank) {
    // Greedy MicroRec combining over the rank features, schema order:
    // fold in every single-valued feature while the product table fits.
    combined_rows_ = 1;
    const auto& schema = model.schema();
    for (std::size_t f : model.rank_features()) {
      const auto& feat = schema.user_item[f];
      if (feat.multi_hot != 1) continue;
      if (combined_rows_ * feat.cardinality > cfg_.combine_max_rows) continue;
      combined_rows_ *= feat.cardinality;
      combined_feats_.push_back(f);
    }
    std::sort(combined_feats_.begin(), combined_feats_.end());
    if (combined_feats_.size() < 2) {
      // Nothing to merge — combining a single table is a rename.
      combined_feats_.clear();
      combined_rows_ = 0;
    } else {
      combined_table_ = kUietTableBase +
                        static_cast<std::uint32_t>(schema.user_item.size());
    }
  }
}

void FunnelServable::bind_users(std::span<const recsys::UserContext> users) {
  IMARS_REQUIRE(!users.empty(), "FunnelServable: empty user population");
  users_ = users;
}

void FunnelServable::override_spec(PipelineSpec spec) {
  IMARS_REQUIRE(spec.stage_count() == spec_.stage_count() &&
                    spec.merge_topk == spec_.merge_topk &&
                    spec.resolve() == spec_.resolve(),
                "FunnelServable::override_spec: spec must resolve to the "
                "canonical funnel graph");
  for (std::size_t s = 0; s < spec.stage_count(); ++s)
    IMARS_REQUIRE(spec.stages[s].kind == spec_.stages[s].kind,
                  "FunnelServable::override_spec: stage kind mismatch");
  spec_ = std::move(spec);
}

recsys::FilterRankBackend& FunnelServable::backend(std::size_t shard) {
  IMARS_REQUIRE(shard < shards_.size(), "FunnelServable: shard out of range");
  return *shards_[shard];
}

const recsys::UserContext& FunnelServable::user_of(const Request& req) const {
  IMARS_REQUIRE(req.user < users_.size(),
                "FunnelServable: user out of range (bind_users first)");
  return users_[req.user];
}

std::size_t FunnelServable::sig_cmas(std::size_t entries) const {
  const std::size_t rows = std::max<std::size_t>(arch_.cma_rows, 1);
  const std::size_t per_entry = (cfg_.lsh_bits + 255) / 256;  // paper: 2 CMAs
  return std::max<std::size_t>((entries + rows - 1) / rows, 1) *
         std::max<std::size_t>(per_entry, 1);
}

std::optional<std::uint32_t> FunnelServable::combined_row(
    const recsys::UserContext& user) const {
  std::uint64_t row = 0;
  const auto& schema = model_->schema();
  for (std::size_t f : combined_feats_) {
    if (user.sparse[f].size() != 1) return std::nullopt;
    const std::size_t idx = user.sparse[f].front();
    if (idx >= schema.user_item[f].cardinality) return std::nullopt;
    row = row * schema.user_item[f].cardinality + idx;
  }
  return static_cast<std::uint32_t>(row);
}

std::vector<std::size_t> FunnelServable::retrieve_on(
    std::size_t shard, const recsys::UserContext& user,
    recsys::StageStats* stats) {
  if (cfg_.retrieval == RetrievalKind::kFixed)
    return shards_[shard]->filter(user, stats);  // measured on the replica
  std::size_t scanned = 0;
  auto candidates =
      retrieval_->retrieve(model_->user_embedding(user), cfg_.retrieve_k,
                           &scanned);
  charge_retrieve(shard, user, scanned, stats);
  return candidates;
}

void FunnelServable::charge_retrieve(std::size_t shard,
                                     const recsys::UserContext& user,
                                     std::size_t scanned,
                                     recsys::StageStats* stats) const {
  if (stats == nullptr) return;
  const auto& pm = perf_[shard];
  const auto& schema = model_->schema();
  // User tower: pooled filter-feature lookups + history, then the filter
  // MLP — the same work the replica's own filter pass performs before its
  // NNS, priced analytically on this shard's profile.
  core::EtLookupParams et;
  et.tables = model_->filter_features().size() + 1;  // + ItET history pool
  et.lookups_per_table = std::max<std::size_t>(user.history.size(), 1);
  et.mats_per_table = 1;
  const std::size_t rows = std::max<std::size_t>(arch_.cma_rows, 1);
  std::size_t cmas = (schema.item_count + rows - 1) / rows;
  for (std::size_t f : model_->filter_features())
    cmas += (schema.user_item[f].cardinality + rows - 1) / rows;
  et.active_cmas = std::max<std::size_t>(cmas, 1);
  stats->at(OpKind::kEtLookup) += pm.et_lookup(et);

  std::vector<std::size_t> dims;
  dims.push_back(model_->filter_input_dim());
  for (std::size_t h : model_->config().filter_hidden) dims.push_back(h);
  stats->at(OpKind::kDnn) += pm.dnn(dims);

  // The ANN scan: `scanned` entries evaluated in-array (IVF list scans /
  // the full signature sweep), then the candidate top-k selection.
  stats->at(OpKind::kNns) += pm.nns(sig_cmas(scanned));
  stats->at(OpKind::kTopK) +=
      pm.topk(std::max<std::size_t>(scanned, 1), cfg_.retrieve_k);
}

void FunnelServable::charge_rerank(std::size_t shard,
                                   const recsys::UserContext& user,
                                   std::size_t items, std::size_t k,
                                   recsys::StageStats* stats) const {
  if (stats == nullptr) return;
  const auto& pm = perf_[shard];
  const auto& schema = model_->schema();
  const std::size_t rows = std::max<std::size_t>(arch_.cma_rows, 1);
  const bool combined = combined_rows_ > 0 && combined_row(user).has_value();

  // Per candidate: the rank-feature pooled lookups (the combined table
  // collapses its folded features into ONE lookup), the candidate's ItET
  // row fetch, and one rank-MLP forward.
  core::EtLookupParams et;
  et.tables = model_->rank_features().size() + 1;  // + ItET history pool
  std::size_t cmas = (schema.item_count + rows - 1) / rows;
  for (std::size_t f : model_->rank_features())
    cmas += (schema.user_item[f].cardinality + rows - 1) / rows;
  if (combined) {
    et.tables = et.tables - combined_feats_.size() + 1;
    for (std::size_t f : combined_feats_)
      cmas -= (schema.user_item[f].cardinality + rows - 1) / rows;
    cmas += (combined_rows_ + rows - 1) / rows;
  }
  et.lookups_per_table = std::max<std::size_t>(user.history.size(), 1);
  et.mats_per_table = 1;
  et.active_cmas = std::max<std::size_t>(cmas, 1);
  stats->at(OpKind::kEtLookup) += scaled(pm.et_lookup(et), items);
  stats->at(OpKind::kEtLookup) += scaled(pm.row_fetch(), items);

  std::vector<std::size_t> dims;
  dims.push_back(model_->rank_input_dim());
  for (std::size_t h : model_->config().rank_hidden) dims.push_back(h);
  dims.push_back(1);
  stats->at(OpKind::kDnn) += scaled(pm.dnn(dims), items);

  stats->at(OpKind::kTopK) += pm.topk(std::max<std::size_t>(items, 1), k);
}

std::vector<std::size_t> FunnelServable::retrieval_candidates(
    const recsys::UserContext& user) {
  return retrieve_on(0, user, nullptr);
}

std::vector<std::size_t> FunnelServable::narrowed_candidates(
    const recsys::UserContext& user,
    std::span<const std::size_t> fed) const {
  IMARS_REQUIRE(lsh_ != nullptr,
                "FunnelServable: no signature filter in degenerate mode");
  const util::BitVec sig = lsh_->encode(model_->user_embedding(user));
  std::vector<std::size_t> kept;
  kept.reserve(fed.size());
  for (std::size_t item : fed) {
    if (item < item_sigs_.size() &&
        item_sigs_[item].hamming(sig) <= cfg_.filter_radius)
      kept.push_back(item);
  }
  // A radius that empties the funnel would starve the rank stage; keep the
  // retrieval set instead (deterministic, and strictly more work — the
  // conservative failure mode).
  if (kept.empty()) return {fed.begin(), fed.end()};
  return kept;
}

std::vector<std::size_t> FunnelServable::run_replicated(
    std::size_t stage, std::size_t shard, const Request& req,
    StageStats* stats) {
  if (degenerate_) {
    IMARS_REQUIRE(stage == s_filter_, "FunnelServable: filter is stage 0");
    return shards_[shard]->filter(user_of(req), stats);
  }
  IMARS_REQUIRE(stage == s_retrieve_,
                "FunnelServable: only retrieve runs without fed items");
  return retrieve_on(shard, user_of(req), stats);
}

std::vector<std::size_t> FunnelServable::run_replicated_fed(
    std::size_t stage, std::size_t shard, const Request& req,
    std::span<const std::size_t> fed, StageStats* stats) {
  IMARS_REQUIRE(stage == s_filter_ && !degenerate_,
                "FunnelServable: only the filter stage consumes items");
  const auto& user = user_of(req);
  auto kept = narrowed_candidates(user, fed);
  if (stats != nullptr)
    stats->at(OpKind::kNns) += perf_[shard].nns(sig_cmas(fed.size()));
  return kept;
}

std::vector<recsys::ScoredItem> FunnelServable::run_sharded(
    std::size_t stage, std::size_t shard, const Request& req,
    std::span<const std::size_t> slice, std::size_t k, StageStats* stats) {
  const auto& user = user_of(req);
  if (stage == s_rank_) return shards_[shard]->rank(user, slice, k, stats);
  IMARS_REQUIRE(stage == s_rerank_, "FunnelServable: unknown sharded stage");
  // Full-precision re-rank of the rank stage's survivors (the float
  // reference model; the quantized crossbar pass already ordered them).
  std::vector<recsys::ScoredItem> scored;
  scored.reserve(slice.size());
  for (std::size_t item : slice)
    scored.push_back({item, model_->ctr(user, item)});
  std::sort(scored.begin(), scored.end(),
            [](const recsys::ScoredItem& a, const recsys::ScoredItem& b) {
              if (a.score != b.score) return a.score > b.score;
              return a.item < b.item;
            });
  if (scored.size() > k) scored.resize(k);
  charge_rerank(shard, user, slice.size(), k, stats);
  return scored;
}

void FunnelServable::accesses_into(std::size_t stage, const Request& req,
                                   std::span<const std::size_t> slice,
                                   std::vector<RowAccess>& out) const {
  const auto& user = user_of(req);
  if (stage == s_retrieve_ || (degenerate_ && stage == s_filter_)) {
    append_pooled_pass(user, traffic_.filter_features, out);
    return;
  }
  if (stage == s_filter_) return;  // signature sweep: no ET rows
  if (stage == s_rank_) {
    // The backend re-runs the pooled rank lookups once per candidate
    // (Table III prices the ranking lookup per item input).
    for (std::size_t item : slice) {
      append_pooled_pass(user, traffic_.rank_features, out);
      out.push_back({kItetTable, static_cast<std::uint32_t>(item), false});
    }
    return;
  }
  IMARS_REQUIRE(stage == s_rerank_, "FunnelServable: unknown stage");
  const auto combined = combined_rows_ > 0 ? combined_row(user) : std::nullopt;
  for (std::size_t item : slice) {
    if (combined.has_value()) {
      // The folded features are ONE combined-table row; the rest of the
      // rank features and the history pool stay individual.
      out.push_back({combined_table_, *combined, false});
      for (std::size_t f : model_->rank_features()) {
        if (std::find(combined_feats_.begin(), combined_feats_.end(), f) !=
            combined_feats_.end())
          continue;
        bool first = true;
        for (std::size_t idx : user.sparse[f]) {
          out.push_back({kUietTableBase + static_cast<std::uint32_t>(f),
                         static_cast<std::uint32_t>(idx), true, first});
          first = false;
        }
      }
      bool first = true;
      for (std::size_t h : user.history) {
        out.push_back(
            {kItetTable, static_cast<std::uint32_t>(h), true, first});
        first = false;
      }
    } else {
      append_pooled_pass(user, model_->rank_features(), out);
    }
    out.push_back({kItetTable, static_cast<std::uint32_t>(item), false});
  }
}

std::vector<RowAccess> FunnelServable::accesses(
    std::size_t stage, const Request& req,
    std::span<const std::size_t> slice) const {
  std::vector<RowAccess> out;
  accesses_into(stage, req, slice, out);
  return out;
}

std::vector<RowAccess> FunnelServable::update_accesses(
    const Request& req) const {
  std::vector<RowAccess> out;
  append_pooled_pass(user_of(req), traffic_.filter_features, out);
  return out;
}

std::vector<std::size_t> FunnelServable::profile_items(const Request& req) {
  const auto& user = user_of(req);
  auto candidates = retrieve_on(0, user, nullptr);
  if (degenerate_) return candidates;
  return narrowed_candidates(user, candidates);
}

std::vector<device::Ns> FunnelServable::stage_cost_estimate(std::size_t k) {
  if (users_.empty()) return {};
  const auto& probe = users_.front();
  std::vector<device::Ns> costs;
  StageStats retrieve_stats;
  auto candidates = retrieve_on(0, probe, &retrieve_stats);
  if (degenerate_) {
    costs.push_back(retrieve_stats.total().latency);  // the filter pass
    StageStats rank_stats;
    if (!candidates.empty())
      (void)shards_.front()->rank(probe, candidates,
                                  std::max<std::size_t>(k, 1), &rank_stats);
    costs.push_back(rank_stats.total().latency);
    return costs;
  }
  costs.push_back(retrieve_stats.total().latency);
  StageStats filter_stats;
  filter_stats.at(OpKind::kNns) +=
      perf_.front().nns(sig_cmas(candidates.size()));
  auto kept = narrowed_candidates(probe, candidates);
  costs.push_back(filter_stats.total().latency);
  const std::size_t rank_k =
      cfg_.rerank ? cfg_.rank_keep : std::max<std::size_t>(k, 1);
  StageStats rank_stats;
  if (!kept.empty())
    (void)shards_.front()->rank(probe, kept, rank_k, &rank_stats);
  costs.push_back(rank_stats.total().latency);
  if (cfg_.rerank) {
    StageStats rerank_stats;
    charge_rerank(0, probe, cfg_.rank_keep, std::max<std::size_t>(k, 1),
                  &rerank_stats);
    costs.push_back(rerank_stats.total().latency);
  }
  return costs;
}

}  // namespace imars::serve
