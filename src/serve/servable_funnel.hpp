// Full-funnel servable: retrieval -> filter -> rank -> re-rank as ONE
// stage-DAG served by the generic engine (serve/stage_pipeline.*).
//
// The two-stage ShardRouter starts from the backend's own candidate
// generation (the TCAM fixed-radius NNS). Production funnels in the papers
// this repo tracks put an explicit ANN *retrieval* tier in front (FAISS-style
// IVF or an LSH top-k), narrow its output with a cheap signature filter,
// rank the survivors on the quantized hardware path, and finish with a
// small, precise *re-rank* over the rank stage's best few dozen items.
// FunnelServable expresses that shape as a single PipelineSpec:
//
//   retrieve (replicated)  — per-query ANN candidate generation through a
//                            RetrievalBackend adapter (IVF / LSH / the
//                            backend's own filter pass);
//   filter   (replicated,  — narrows the retrieved candidates to those
//             consume_items) within a Hamming radius of the user's LSH
//                            signature (the TCAM threshold semantics,
//                            restricted to the fed item set);
//   rank     (sharded,     — the existing quantized rank pass over the
//             emit_topk)     ShardMap's slices; per-shard partials merge
//                            into the global top-`rank_keep` item list;
//   rerank   (sharded)     — full-precision YoutubeDnn::ctr scoring of the
//                            rank stage's survivors; the merged top-k is
//                            the query's answer.
//
// Stage technologies follow the engine's per-slot DeviceProfile story: each
// shard's replica is built on its own profile and the funnel-specific
// stages (retrieve / filter / rerank) charge their analytical costs through
// that shard's PerfModel, so a heterogeneous fabric prices every stage on
// the silicon it actually runs on.
//
// MicroRec-style table combining (optional, default off): the re-rank
// stage's small single-valued categorical lookups (MovieLens: gender x age
// x occupation x favourite genre = 7938 rows) collapse into ONE combined
// table indexed by the mixed-radix product key, turning several DRAM-ish
// row touches per candidate into one. The combined table lives under its
// own RowAccess id so the hot cache prices it separately, and the measured
// ET cost shrinks to the combined lookup via PerfModel.
//
// Degenerate mode (RetrievalKind::kFixed with rerank off) collapses the
// spec to the exact filter->rank graph ShardRouter serves, with identical
// stage semantics and RowAccess traffic — the bit-parity anchor the tests
// and the funnel bench gate on.
#pragma once

#include <cstddef>
#include <memory>
#include <optional>
#include <span>
#include <vector>

#include "baseline/ivf.hpp"
#include "core/backend_factory.hpp"
#include "core/perf_model.hpp"
#include "lsh/lsh.hpp"
#include "recsys/youtube_dnn.hpp"
#include "serve/shard_router.hpp"
#include "serve/stage_pipeline.hpp"
#include "util/bitvec.hpp"

namespace imars::serve {

/// Which ANN engine generates the retrieval tier's candidates.
enum class RetrievalKind : std::uint8_t {
  /// The backend replica's own filter pass (the TCAM fixed-radius NNS) —
  /// the "stubbed to a fixed candidate list" mode; with `rerank` off the
  /// whole funnel degenerates to the ShardRouter graph bit-for-bit.
  kFixed,
  /// IVF-Flat over the item embeddings (baseline::IvfIndex).
  kIvf,
  /// LSH signature top-k by Hamming distance (baseline::topk_hamming).
  kLsh,
};

/// Funnel shape and knobs. Every field defaults to the paper-anchored
/// values; `combine_tables` defaults OFF so existing accounting is
/// untouched unless a caller opts in.
struct FunnelConfig {
  RetrievalKind retrieval = RetrievalKind::kIvf;
  /// Candidates the retrieval tier emits per query (ANN top-k).
  std::size_t retrieve_k = 256;
  /// Hamming narrowing radius of the signature filter stage (the TCAM
  /// threshold, applied to the fed candidates only). A radius >= the
  /// signature length keeps everything.
  std::size_t filter_radius = 96;
  /// Items the rank stage's merged partials keep for the re-rank
  /// (StageSpec::emit_topk of the rank stage).
  std::size_t rank_keep = 64;
  /// Present the re-rank stage (off = the rank stage is the output).
  bool rerank = true;
  /// MicroRec-style combining of the re-rank stage's small single-valued
  /// categorical lookups into one product-keyed table.
  bool combine_tables = false;
  /// Cap on the combined table's row count (RowAccess table ids must stay
  /// well-formed; features are greedily combined while the product fits).
  std::size_t combine_max_rows = 65536;
  /// IVF build/search parameters (RetrievalKind::kIvf).
  baseline::IvfIndex::Config ivf{};
  /// Signature geometry; defaults match ImarsBackendConfig so the filter
  /// stage narrows with the same planes the hardware stores.
  std::size_t lsh_bits = 256;
  std::uint64_t lsh_seed = 2022;
};

/// The retrieval tier behind a uniform adapter: one engine turns a user
/// embedding into a candidate list and reports what it scanned, so the
/// servable can charge the scan through the owning shard's PerfModel.
class RetrievalBackend {
 public:
  virtual ~RetrievalBackend() = default;
  /// Candidate item ids for `embedding`, best-first where the engine
  /// defines an order. `scanned` (when non-null) receives the number of
  /// item entries the engine evaluated (the cost driver).
  virtual std::vector<std::size_t> retrieve(std::span<const float> embedding,
                                            std::size_t k,
                                            std::size_t* scanned) const = 0;
};

class FunnelServable final : public ServableBackend {
 public:
  /// RowAccess table-key namespace: shared with ShardRouter (the funnel
  /// serves the same replicas) plus one combined-table id past the UIETs.
  static constexpr std::uint32_t kItetTable = ShardRouter::kItetTable;
  static constexpr std::uint32_t kUietTableBase = ShardRouter::kUietTableBase;

  /// The stage graph `cfg` implies: 2 stages (degenerate), 3 (ANN retrieval,
  /// no re-rank) or 4 (full funnel).
  static PipelineSpec pipeline_spec(const FunnelConfig& cfg);

  /// Uniform fabric: `profiles.size()` replicas from `factory` (the slot is
  /// ignored functionally); each shard's analytical stage costs use its own
  /// profile's PerfModel. `model` and `profiles` must outlive the servable.
  FunnelServable(const recsys::YoutubeDnn& model, const core::ArchConfig& arch,
                 const core::BackendFactory& factory,
                 std::span<const device::DeviceProfile> profiles,
                 FunnelConfig cfg, TrafficSpec traffic = {});

  /// Heterogeneous fabric: one replica per slot, built on the slot profile.
  FunnelServable(const recsys::YoutubeDnn& model, const core::ArchConfig& arch,
                 const core::ShardedBackendFactory& factory,
                 std::span<const device::DeviceProfile> profiles,
                 FunnelConfig cfg, TrafficSpec traffic = {});

  /// Binds the user-context population Request::user indexes (same
  /// contract as ShardRouter::bind_users).
  void bind_users(std::span<const recsys::UserContext> users);

  /// Replaces the spec with an equivalent declaration of the same graph
  /// (must resolve identically; stage kinds must match).
  void override_spec(PipelineSpec spec);

  recsys::FilterRankBackend& backend(std::size_t shard);
  const FunnelConfig& config() const noexcept { return cfg_; }
  /// True when the spec collapsed to the exact ShardRouter graph.
  bool degenerate() const noexcept { return degenerate_; }
  /// Rows of the combined re-rank table (0 = combining off or no
  /// combinable features).
  std::size_t combined_rows() const noexcept { return combined_rows_; }
  /// Schema indices of the features folded into the combined table.
  std::span<const std::size_t> combined_features() const noexcept {
    return combined_feats_;
  }
  /// RowAccess table id of the combined table (one past the UIETs).
  std::uint32_t combined_table() const noexcept { return combined_table_; }

  /// Offline probe of the retrieval tier for one user (recall@k audits):
  /// the candidate list the retrieve stage would produce, no cost
  /// accounting, replica 0 for RetrievalKind::kFixed.
  std::vector<std::size_t> retrieval_candidates(
      const recsys::UserContext& user);

  /// Offline probe of the signature filter: `fed` narrowed to the user's
  /// Hamming radius (fed order preserved; falls back to `fed` when the
  /// radius empties it, so the rank stage never starves).
  std::vector<std::size_t> narrowed_candidates(
      const recsys::UserContext& user, std::span<const std::size_t> fed) const;

  // --- ServableBackend -----------------------------------------------------
  std::string_view name() const override { return "funnel"; }
  const PipelineSpec& spec() const override { return spec_; }
  std::size_t shards() const override { return shards_.size(); }

  std::vector<std::size_t> run_replicated(
      std::size_t stage, std::size_t shard, const Request& req,
      recsys::StageStats* stats) override;

  std::vector<std::size_t> run_replicated_fed(
      std::size_t stage, std::size_t shard, const Request& req,
      std::span<const std::size_t> fed, recsys::StageStats* stats) override;

  std::vector<recsys::ScoredItem> run_sharded(
      std::size_t stage, std::size_t shard, const Request& req,
      std::span<const std::size_t> slice, std::size_t k,
      recsys::StageStats* stats) override;

  std::vector<RowAccess> accesses(
      std::size_t stage, const Request& req,
      std::span<const std::size_t> slice) const override;

  void accesses_into(std::size_t stage, const Request& req,
                     std::span<const std::size_t> slice,
                     std::vector<RowAccess>& out) const override;

  std::vector<RowAccess> update_accesses(const Request& req) const override;

  std::vector<std::size_t> profile_items(const Request& req) override;

  std::vector<device::Ns> stage_cost_estimate(std::size_t k) override;

 private:
  const recsys::UserContext& user_of(const Request& req) const;
  /// Retrieval candidates + scanned-entry count for cost accounting
  /// (replica `shard` runs the kFixed pass).
  std::vector<std::size_t> retrieve_on(std::size_t shard,
                                       const recsys::UserContext& user,
                                       recsys::StageStats* stats);
  /// Analytical cost of the user-tower + ANN scan on shard `shard`.
  void charge_retrieve(std::size_t shard, const recsys::UserContext& user,
                       std::size_t scanned, recsys::StageStats* stats) const;
  /// Analytical per-slice cost of the re-rank pass on shard `shard`.
  void charge_rerank(std::size_t shard, const recsys::UserContext& user,
                     std::size_t items, std::size_t k,
                     recsys::StageStats* stats) const;
  /// Signature CMAs spanned by `entries` item signatures.
  std::size_t sig_cmas(std::size_t entries) const;
  /// Mixed-radix combined row of the user's single-valued combined
  /// features; nullopt when any combined feature is not single-valued.
  std::optional<std::uint32_t> combined_row(
      const recsys::UserContext& user) const;

  const recsys::YoutubeDnn* model_;
  core::ArchConfig arch_;
  FunnelConfig cfg_;
  PipelineSpec spec_;
  TrafficSpec traffic_;
  bool degenerate_ = false;
  // Stage indices within spec_ (kNoStage when the stage is absent).
  std::size_t s_retrieve_ = PipelineSpec::kNoStage;
  std::size_t s_filter_ = PipelineSpec::kNoStage;
  std::size_t s_rank_ = PipelineSpec::kNoStage;
  std::size_t s_rerank_ = PipelineSpec::kNoStage;

  std::vector<std::unique_ptr<recsys::FilterRankBackend>> shards_;
  std::vector<core::PerfModel> perf_;  ///< one per shard (slot profile)
  std::span<const recsys::UserContext> users_;

  std::unique_ptr<RetrievalBackend> retrieval_;    // null for kFixed
  std::unique_ptr<lsh::RandomHyperplaneLsh> lsh_;  // signatures
  std::vector<util::BitVec> item_sigs_;            // per item, lsh_ planes

  std::vector<std::size_t> combined_feats_;  // schema indices, ascending
  std::size_t combined_rows_ = 0;
  std::uint32_t combined_table_ = 0;
};

}  // namespace imars::serve
