#include "serve/serve_stats.hpp"

#include "util/error.hpp"
#include "util/stats.hpp"

namespace imars::serve {

std::vector<double> ServeReport::latencies_ns() const {
  std::vector<double> out;
  out.reserve(queries.size());
  for (const auto& q : queries) out.push_back((q.complete - q.enqueue).value);
  return out;
}

double ServeReport::mean_latency_ns() const {
  IMARS_REQUIRE(!queries.empty(), "ServeReport: empty run");
  double sum = 0.0;
  for (const auto& q : queries) sum += (q.complete - q.enqueue).value;
  return sum / static_cast<double>(queries.size());
}

double ServeReport::p50_latency_ns() const {
  return util::percentile(latencies_ns(), 50.0);
}
double ServeReport::p95_latency_ns() const {
  return util::percentile(latencies_ns(), 95.0);
}
double ServeReport::p99_latency_ns() const {
  return util::percentile(latencies_ns(), 99.0);
}

double ServeReport::qps() const {
  if (queries.empty() || makespan.value <= 0.0) return 0.0;
  return static_cast<double>(queries.size()) / makespan.seconds();
}

double ServeReport::mean_batch_size() const {
  if (batches == 0) return 0.0;
  return static_cast<double>(queries.size()) / static_cast<double>(batches);
}

double ServeReport::mean_energy_pj() const {
  IMARS_REQUIRE(!queries.empty(), "ServeReport: empty run");
  double sum = 0.0;
  for (const auto& q : queries) sum += q.energy.value;
  return sum / static_cast<double>(queries.size());
}

double ServeReport::rank_utilization(std::size_t s) const {
  IMARS_REQUIRE(s < shards.size(), "ServeReport: shard out of range");
  if (makespan.value <= 0.0) return 0.0;
  return shards[s].last_stage_busy().value / makespan.value;
}

double ServeReport::filter_utilization(std::size_t s) const {
  IMARS_REQUIRE(s < shards.size(), "ServeReport: shard out of range");
  if (makespan.value <= 0.0) return 0.0;
  return shards[s].first_stage_busy().value / makespan.value;
}

}  // namespace imars::serve
