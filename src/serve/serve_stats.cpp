#include "serve/serve_stats.hpp"

#include <algorithm>
#include <cmath>
#include <utility>

#include "util/error.hpp"
#include "util/stats.hpp"

namespace imars::serve {

namespace {

/// Percentile over a possibly-empty sample: 0.0 when empty. For n >= 1 the
/// interpolated rank p/100 * (n-1) stays inside [0, n-1], so the
/// percentile never indexes past the sample and n = 1 yields the sample
/// itself for every p (pinned by the serving test suite). Selection-based
/// (util::percentile_select): O(n) instead of the former copy + full sort,
/// bit-identical values — the sample is taken by value because selection
/// reorders it, and every caller hands over a freshly built vector anyway.
double percentile_or_zero(std::vector<double> xs, double p) {
  if (xs.empty()) return 0.0;
  return util::percentile_select(xs, p);
}

}  // namespace

void QueryArena::clear() {
  recs.clear();
  topk_flat.clear();
}

void QueryArena::push(const ServedQuery& q,
                      std::span<const recsys::ScoredItem> topk) {
  recs.push_back({q.id, q.user, q.client, q.qos_class, q.batch, q.batch_size,
                  q.home_shard, q.candidates, q.enqueue, q.dispatch,
                  q.complete, q.filter_latency, q.rank_latency, q.device_time,
                  q.energy, topk.size()});
  topk_flat.insert(topk_flat.end(), topk.begin(), topk.end());
}

std::vector<ServedQuery> QueryArena::materialize() const {
  std::vector<ServedQuery> out(size());
  std::size_t pool = 0;
  for (std::size_t i = 0; i < size(); ++i) {
    const Rec& r = recs[i];
    ServedQuery& q = out[i];
    q.id = r.id;
    q.user = r.user;
    q.client = r.client;
    q.qos_class = r.qos_class;
    q.batch = r.batch;
    q.batch_size = r.batch_size;
    q.home_shard = r.home_shard;
    q.candidates = r.candidates;
    q.enqueue = r.enqueue;
    q.dispatch = r.dispatch;
    q.complete = r.complete;
    q.filter_latency = r.filter_latency;
    q.rank_latency = r.rank_latency;
    q.device_time = r.device_time;
    q.energy = r.energy;
    q.topk.assign(topk_flat.begin() + static_cast<std::ptrdiff_t>(pool),
                  topk_flat.begin() +
                      static_cast<std::ptrdiff_t>(pool + r.topk_len));
    pool += r.topk_len;
  }
  return out;
}

void StreamingAggregates::note(std::size_t cls, double latency_ns,
                               double energy_pj, double device_ns) {
  ++queries;
  energy_pj_sum += energy_pj;
  latency.record(latency_ns);
  if (cls >= class_latency.size()) {
    class_latency.resize(cls + 1, StreamingHistogram(rel_err));
    class_queries.resize(cls + 1, 0);
    class_device_ns.resize(cls + 1, 0.0);
  }
  class_latency[cls].record(latency_ns);
  ++class_queries[cls];
  class_device_ns[cls] += device_ns;
}

std::vector<double> ServeReport::latencies_ns() const {
  IMARS_REQUIRE(!streaming.enabled,
                "ServeReport::latencies_ns: streaming mode retains no "
                "per-query sample");
  std::vector<double> out;
  out.reserve(queries.size());
  for (const auto& q : queries) out.push_back((q.complete - q.enqueue).value);
  return out;
}

double ServeReport::mean_latency_ns() const {
  if (streaming.enabled) return streaming.latency.mean();
  if (queries.empty()) return 0.0;
  double sum = 0.0;
  for (const auto& q : queries) sum += (q.complete - q.enqueue).value;
  return sum / static_cast<double>(queries.size());
}

double ServeReport::p50_latency_ns() const {
  if (streaming.enabled) return streaming.latency.percentile(50.0);
  return percentile_or_zero(latencies_ns(), 50.0);
}
double ServeReport::p95_latency_ns() const {
  if (streaming.enabled) return streaming.latency.percentile(95.0);
  return percentile_or_zero(latencies_ns(), 95.0);
}
double ServeReport::p99_latency_ns() const {
  if (streaming.enabled) return streaming.latency.percentile(99.0);
  return percentile_or_zero(latencies_ns(), 99.0);
}

double ServeReport::qps() const {
  if (size() == 0 || makespan.value <= 0.0) return 0.0;
  return static_cast<double>(size()) / makespan.seconds();
}

double ServeReport::mean_batch_size() const {
  if (batches == 0) return 0.0;
  return static_cast<double>(size()) / static_cast<double>(batches);
}

double ServeReport::mean_energy_pj() const {
  if (streaming.enabled)
    return streaming.queries == 0
               ? 0.0
               : streaming.energy_pj_sum /
                     static_cast<double>(streaming.queries);
  if (queries.empty()) return 0.0;
  double sum = 0.0;
  for (const auto& q : queries) sum += q.energy.value;
  return sum / static_cast<double>(queries.size());
}

namespace {

/// [begin, end) stage range of servable `slot` in the concatenated
/// per-shard stage layout.
std::pair<std::size_t, std::size_t> slot_range(
    const std::vector<std::size_t>& offsets, std::size_t total,
    std::size_t slot) {
  if (offsets.empty()) {
    IMARS_REQUIRE(slot == 0, "ServeReport: servable slot out of range");
    return {0, total};
  }
  IMARS_REQUIRE(slot < offsets.size(),
                "ServeReport: servable slot out of range");
  const std::size_t end =
      slot + 1 < offsets.size() ? offsets[slot + 1] : total;
  return {offsets[slot], end};
}

}  // namespace

double ServeReport::rank_utilization(std::size_t s, std::size_t slot) const {
  IMARS_REQUIRE(s < shards.size(), "ServeReport: shard out of range");
  if (makespan.value <= 0.0 || shards[s].stage_busy.empty()) return 0.0;
  const auto [begin, end] =
      slot_range(stage_offsets, shards[s].stage_busy.size(), slot);
  return shards[s].stage_busy[end - 1].value / makespan.value;
}

double ServeReport::filter_utilization(std::size_t s,
                                       std::size_t slot) const {
  IMARS_REQUIRE(s < shards.size(), "ServeReport: shard out of range");
  if (makespan.value <= 0.0 || shards[s].stage_busy.empty()) return 0.0;
  const auto [begin, end] =
      slot_range(stage_offsets, shards[s].stage_busy.size(), slot);
  if (end - begin < 2) return 0.0;  // single-stage pipeline: no filter
  return shards[s].stage_busy[begin].value / makespan.value;
}

double ServeReport::stage_utilization(std::size_t s, std::string_view stage,
                                      std::size_t slot) const {
  IMARS_REQUIRE(s < shards.size(), "ServeReport: shard out of range");
  IMARS_REQUIRE(slot < stage_names.size(),
                "ServeReport: no stage names recorded for this slot");
  const auto& names = stage_names[slot];
  std::size_t idx = names.size();
  for (std::size_t i = 0; i < names.size(); ++i)
    if (names[i] == stage) {
      idx = i;
      break;
    }
  IMARS_REQUIRE(idx < names.size(),
                "ServeReport: unknown stage '" + std::string(stage) + "'");
  if (makespan.value <= 0.0) return 0.0;
  const auto [begin, end] =
      slot_range(stage_offsets, shards[s].stage_busy.size(), slot);
  IMARS_REQUIRE(begin + idx < end, "ServeReport: stage outside slot range");
  return shards[s].stage_busy[begin + idx].value / makespan.value;
}

std::vector<double> ServeReport::class_latencies_ns(std::size_t cls) const {
  IMARS_REQUIRE(!streaming.enabled,
                "ServeReport::class_latencies_ns: streaming mode retains "
                "no per-query sample");
  std::vector<double> out;
  for (const auto& q : queries)
    if (q.qos_class == cls) out.push_back((q.complete - q.enqueue).value);
  return out;
}

namespace {

/// The class histogram of a streaming report, or nullptr when the label
/// never appeared (its views then report the pinned empty-set 0.0).
const StreamingHistogram* class_hist(const StreamingAggregates& s,
                                     std::size_t cls) {
  return cls < s.class_latency.size() ? &s.class_latency[cls] : nullptr;
}

}  // namespace

double ServeReport::class_mean_latency_ns(std::size_t cls) const {
  if (streaming.enabled) {
    const auto* h = class_hist(streaming, cls);
    return h == nullptr ? 0.0 : h->mean();
  }
  const auto xs = class_latencies_ns(cls);
  if (xs.empty()) return 0.0;
  double sum = 0.0;
  for (double x : xs) sum += x;
  return sum / static_cast<double>(xs.size());
}

double ServeReport::class_p50_latency_ns(std::size_t cls) const {
  if (streaming.enabled) {
    const auto* h = class_hist(streaming, cls);
    return h == nullptr ? 0.0 : h->percentile(50.0);
  }
  return percentile_or_zero(class_latencies_ns(cls), 50.0);
}
double ServeReport::class_p95_latency_ns(std::size_t cls) const {
  if (streaming.enabled) {
    const auto* h = class_hist(streaming, cls);
    return h == nullptr ? 0.0 : h->percentile(95.0);
  }
  return percentile_or_zero(class_latencies_ns(cls), 95.0);
}
double ServeReport::class_p99_latency_ns(std::size_t cls) const {
  if (streaming.enabled) {
    const auto* h = class_hist(streaming, cls);
    return h == nullptr ? 0.0 : h->percentile(99.0);
  }
  return percentile_or_zero(class_latencies_ns(cls), 99.0);
}

double ServeReport::class_qps(std::size_t cls) const {
  if (makespan.value <= 0.0) return 0.0;
  std::size_t n = 0;
  if (streaming.enabled) {
    if (cls < streaming.class_queries.size()) n = streaming.class_queries[cls];
  } else {
    for (const auto& q : queries)
      if (q.qos_class == cls) ++n;
  }
  return static_cast<double>(n) / makespan.seconds();
}

double ServeReport::device_share(std::size_t cls, device::Ns cutoff) const {
  if (streaming.enabled) {
    IMARS_REQUIRE(cutoff.value ==
                      std::numeric_limits<double>::infinity(),
                  "ServeReport::device_share: streaming mode retains no "
                  "per-query completions; finite cutoffs need record mode");
    double total = 0.0;
    for (double d : streaming.class_device_ns) total += d;
    const double mine =
        cls < streaming.class_device_ns.size()
            ? streaming.class_device_ns[cls]
            : 0.0;
    return total > 0.0 ? mine / total : 0.0;
  }
  double total = 0.0, mine = 0.0;
  for (const auto& q : queries) {
    if (q.complete.value > cutoff.value) continue;
    total += q.device_time.value;
    if (q.qos_class == cls) mine += q.device_time.value;
  }
  return total > 0.0 ? mine / total : 0.0;
}

double ServeReport::fairness_error(device::Ns cutoff) const {
  if (classes.size() < 2) return 0.0;
  double weight_sum = 0.0;
  for (const auto& c : classes) weight_sum += c.weight;
  if (weight_sum <= 0.0) return 0.0;
  double worst = 0.0;
  for (std::size_t cls = 0; cls < classes.size(); ++cls) {
    if (classes[cls].weight <= 0.0) continue;  // scavengers have no target
    const double target = classes[cls].weight / weight_sum;
    worst = std::max(worst, std::abs(device_share(cls, cutoff) - target));
  }
  return worst;
}

}  // namespace imars::serve
