// Serving telemetry, following the StreamReport idioms of
// core/query_engine.hpp: per-query records plus aggregate QPS, latency
// percentiles, cache hit rate and per-shard utilization — but over the
// *concurrent* runtime, so latencies include queueing/batching delay and
// throughput is makespan-based rather than derived from mean stage times.
//
// Multi-tenant runs additionally report per-class (tenant) telemetry: per-
// class QPS and latency percentiles, SLO violations, and the fairness view
// (each class's share of consumed device time against its configured
// weight).
#pragma once

#include <cstddef>
#include <limits>
#include <span>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "device/units.hpp"
#include "recsys/types.hpp"
#include "serve/hot_cache.hpp"
#include "serve/observe.hpp"

namespace imars::serve {

/// One served query's record.
struct ServedQuery {
  std::size_t id = 0;
  std::size_t user = 0;
  std::size_t client = 0;
  std::size_t qos_class = 0;    ///< priority-class label of the request
  std::size_t batch = 0;
  std::size_t batch_size = 0;
  std::size_t home_shard = 0;   ///< shard that ran the replicated filter
  std::size_t candidates = 0;
  device::Ns enqueue;           ///< simulated arrival
  device::Ns dispatch;          ///< batch close
  device::Ns complete;          ///< top-k merged
  device::Ns filter_latency;    ///< cache-adjusted filter service time
  device::Ns rank_latency;      ///< cache-adjusted critical-path rank time
  /// Cache-adjusted device busy time this query consumed (the sum over
  /// stages of per-shard unit occupancy plus merge) — the fairness
  /// accounting currency.
  device::Ns device_time;
  device::Pj energy;            ///< cache-adjusted query energy
  /// Merged top-k (best first). Kept so cross-tenant isolation can be
  /// asserted result-for-result, not just in aggregate.
  std::vector<recsys::ScoredItem> topk;
};

/// Accumulation arena for per-query records. The steady-state drain loop
/// appends one query's scalar fields as a single contiguous POD record
/// (one growth check, one cache line stream — column-per-field scatter
/// measurably LOST to the reference path here) and its top-k items into
/// one flat pool — amortized growth, no per-query vector allocation inside
/// the profiled host.report span. materialize() rebuilds the public
/// ServedQuery records (identical values) in one pass after the event
/// loop, outside every host span.
struct QueryArena {
  /// ServedQuery's scalar fields, trivially copyable (the top-k vector is
  /// replaced by a length into the flat pool).
  struct Rec {
    std::size_t id, user, client, qos_class, batch, batch_size, home_shard,
        candidates;
    device::Ns enqueue, dispatch, complete, filter_latency, rank_latency,
        device_time;
    device::Pj energy;
    std::size_t topk_len;  ///< this query's run in topk_flat
  };
  std::vector<Rec> recs;
  std::vector<recsys::ScoredItem> topk_flat;  ///< all top-k items, in order

  std::size_t size() const noexcept { return recs.size(); }
  void clear();
  /// Appends `q`'s scalar fields (its own `topk` member is ignored) and
  /// `topk` into the flat pool.
  void push(const ServedQuery& q, std::span<const recsys::ScoredItem> topk);
  /// The accumulated queries as AoS records, in push order.
  std::vector<ServedQuery> materialize() const;
};

/// Busy time of one shard's pipeline units over the run, one entry per
/// pipeline stage (two for the filter/rank pipeline, one for CTR scoring;
/// co-resident servables concatenate their stages in servable order).
struct ShardUsage {
  std::vector<device::Ns> stage_busy;
  /// ET-bank time consumed by embedding-update write traffic (buffer
  /// fills, write-through rows and dirty-row flushes charged outside the
  /// stage units); zero on read-only streams.
  ///
  /// Deliberately EXCLUDED from rank_utilization / filter_utilization /
  /// stage_utilization and from the per-class device_share accounting:
  /// those report STAGE-UNIT occupancy and query-attributed device time,
  /// while write traffic occupies only the shared ET banks and belongs to
  /// no query or class. Use total_busy() (also surfaced as the observer's
  /// end-of-run "shard.total_busy_ns" counters) for whole-shard occupancy
  /// including the write path.
  device::Ns write_busy;

  /// Busy time of the first stage (the replicated filter in the two-stage
  /// pipeline); zero for single-stage pipelines.
  device::Ns first_stage_busy() const {
    return stage_busy.size() > 1 ? stage_busy.front() : device::Ns{0.0};
  }
  /// Busy time of the last stage (the sharded rank / scoring stage — the
  /// figure of merit for load balance).
  device::Ns last_stage_busy() const {
    return stage_busy.empty() ? device::Ns{0.0} : stage_busy.back();
  }
  /// All device busy time of the shard: every stage unit plus the
  /// write-path ET time (the one place write_busy IS counted).
  device::Ns total_busy() const {
    device::Ns t = write_busy;
    for (const auto& s : stage_busy) t += s;
    return t;
  }
};

/// Per-class (tenant) aggregate of one serving run.
struct ClassReport {
  std::string name;
  double weight = 1.0;      ///< configured device-time entitlement
  device::Ns deadline;      ///< end-to-end SLO (0 = none)
  std::size_t queries = 0;
  std::size_t batches = 0;
  std::size_t slo_violations = 0;  ///< completions past enqueue + deadline
  device::Ns device_time;          ///< consumed device busy time
};

/// Memory-bounded aggregates of a streaming-mode run. The runtime fills
/// this INSTEAD of retaining per-query ServedQuery records when
/// ServingConfig::streaming_report is set: latency percentiles come from
/// log-bucketed histograms (incremental p50/p95/p99 within the configured
/// relative error of the exact sorted-sample figures), means stay exact
/// (sum / count), and per-class accounting keys by the REQUEST's qos_class
/// label — the same filter the record-mode class views apply. The
/// million-user ROADMAP item cannot afford O(queries) retention; this is
/// the replacement. Result-level views (topk, per-query records,
/// finite-cutoff device shares) are unavailable in streaming mode.
struct StreamingAggregates {
  bool enabled = false;
  double rel_err = 0.01;  ///< histogram resolution (see StreamingHistogram)
  std::size_t queries = 0;
  double energy_pj_sum = 0.0;
  StreamingHistogram latency;  ///< end-to-end ns, all classes
  // Per request-label views, grown on first sight of a label.
  std::vector<StreamingHistogram> class_latency;
  std::vector<std::size_t> class_queries;
  std::vector<double> class_device_ns;

  explicit StreamingAggregates(double rel_err_ = 0.01)
      : rel_err(rel_err_), latency(rel_err_) {}

  /// Accounts one served query under label `cls`.
  void note(std::size_t cls, double latency_ns, double energy_pj,
            double device_ns);
};

/// Aggregated results of one serving run.
struct ServeReport {
  std::vector<ServedQuery> queries;
  std::vector<ShardUsage> shards;
  std::vector<ClassReport> classes;  ///< one per configured QoS class
  /// First stage index of each co-resident servable slot inside the
  /// concatenated ShardUsage::stage_busy layout (empty = single slot
  /// starting at 0). The utilization helpers resolve their stage through
  /// this, so multi-tenant fabrics report the requested slot's stages.
  std::vector<std::size_t> stage_offsets;
  /// Stage names per servable slot (graph-node keys into the per-shard
  /// stage_busy layout), aligned with stage_offsets; empty when the run
  /// did not record them.
  std::vector<std::vector<std::string>> stage_names;
  CacheStats cache;
  recsys::StageStats filter_stats;  ///< summed, cache-adjusted
  recsys::StageStats rank_stats;
  device::Ns makespan;              ///< last completion time
  std::size_t batches = 0;
  /// Streaming-mode aggregates (ServingConfig::streaming_report). When
  /// enabled, `queries` above stays empty and every aggregate view below
  /// answers from here instead; views needing per-query records
  /// (latencies_ns, class_latencies_ns, finite-cutoff device_share) throw.
  StreamingAggregates streaming;
  /// Host wall-clock totals per self-profile span name (microseconds; name
  /// order), filled only when ServingConfig::self_profile is set. This is
  /// WALL-CLOCK telemetry of the simulator itself — bench_scaling divides
  /// reference by optimized totals for its host-speedup figure — and is
  /// deliberately outside the bit-identical-reports contract, which covers
  /// simulated-time fields only.
  std::vector<std::pair<std::string, double>> host_span_us;

  /// Speculative-dispatch / adaptive-QoS telemetry
  /// (ServingConfig::speculate, ServingConfig::adaptive). Like
  /// host_span_us this is OUTSIDE the bit-identical-reports contract:
  /// speculation changes where the host waits, never what the simulation
  /// computes, so phased and speculative runs produce identical simulated
  /// fields but different counts here.
  struct SpecStats {
    /// Events processed inside a proven closed-loop horizon (collection
    /// deferred past a decision the phased loop would have blocked on).
    std::uint64_t window_proceeds = 0;
    /// Decisions that were unprovable from the floors: the loop collected
    /// a completion first, exactly as phased execution would have.
    std::uint64_t window_stalls = 0;
    /// Gated releases skipped because the frontier LOWER BOUND already
    /// proved the gate shut (no collection needed to decide).
    std::uint64_t gate_shut_proofs = 0;
    /// Adaptive EWMA observations committed into the batcher.
    std::uint64_t estimate_commits = 0;
    /// Maximum batches simultaneously awaiting collection.
    std::size_t peak_inflight = 0;
  };
  SpecStats spec;

  /// Total profiled host wall-clock (sum over host_span_us), microseconds.
  /// host.wait — the driver blocking on worker completion — is execution
  /// time of the batch's functional work, not host bookkeeping, so it is
  /// excluded from the host-path total (it still appears in host_span_us).
  double host_total_us() const noexcept {
    double sum = 0.0;
    for (const auto& [name, us] : host_span_us)
      if (name != "host.wait") sum += us;
    return sum;
  }

  // --- write-back / placement telemetry -----------------------------------
  std::size_t updates = 0;      ///< embedding-update requests applied
  /// Total hardware cost of the update traffic (periphery-buffer fills,
  /// write-through row writes, dirty-row eviction flushes applied outside
  /// the batch path). Flushes triggered by read admissions are charged
  /// into the evicting stage's kEtWrite cost instead.
  recsys::OpCost update_cost;
  std::size_t flush_bytes = 0;  ///< dirty-row flush traffic (row bytes)
  std::size_t routed_items = 0;  ///< work items routed through the ShardMap
  std::size_t pinned_items = 0;  ///< of those, items served via a hot pin
  /// Fraction of routed work items a PlacementPolicy pin placed (0 when
  /// placement is disabled).
  double pin_hit_rate() const noexcept {
    return routed_items == 0
               ? 0.0
               : static_cast<double>(pinned_items) /
                     static_cast<double>(routed_items);
  }

  std::size_t size() const noexcept {
    return streaming.enabled ? streaming.queries : queries.size();
  }

  /// Per-query end-to-end latencies (ns), enqueue to merged top-k —
  /// queueing and batching delay included. Record mode only (streaming
  /// runs do not retain the sample; use the percentile views).
  std::vector<double> latencies_ns() const;

  // Latency percentiles use linear interpolation over the sorted sample
  // (util::percentile): rank = p/100 * (n-1), so no index can run past the
  // vector and n = 1 returns the single sample for every p — the CI quick
  // benches run tiny streams, so the small-n behavior is load-bearing and
  // pinned by tests. All aggregates return 0.0 on an empty query set
  // (e.g. a configured class that received no traffic). Streaming-mode
  // runs answer from the histograms: identical small-n semantics, interior
  // percentiles within streaming.rel_err bucket resolution, means exact.
  double mean_latency_ns() const;
  double p50_latency_ns() const;
  double p95_latency_ns() const;
  double p99_latency_ns() const;

  /// Served queries per second of simulated hardware time.
  double qps() const;

  double mean_batch_size() const;
  double mean_energy_pj() const;

  /// Fraction of the makespan shard `s` kept its rank units busy (the
  /// last stage of servable `slot` — the sharded stage; the figure of
  /// merit for load balance). Single-tenant fabrics have one slot.
  double rank_utilization(std::size_t s, std::size_t slot = 0) const;
  /// First-stage (replicated filter) busy fraction of servable `slot`;
  /// zero for its single-stage pipelines.
  double filter_utilization(std::size_t s, std::size_t slot = 0) const;
  /// Busy fraction of one graph node: the fraction of the makespan shard
  /// `s` kept the named stage's unit busy (requires stage_names; stage
  /// graphs key utilization by node, e.g. "gather" vs "dense" vs
  /// "interact" on the tower-parallel CTR graph).
  double stage_utilization(std::size_t s, std::string_view stage,
                           std::size_t slot = 0) const;

  // --- per-class (tenant) views -------------------------------------------
  // Filtered by the per-request `qos_class` label, so they work on
  // class-blind runs of a labeled stream too (the QoS benches compare a
  // class's tail latency with and without class-aware batching).

  std::vector<double> class_latencies_ns(std::size_t cls) const;
  double class_mean_latency_ns(std::size_t cls) const;
  double class_p50_latency_ns(std::size_t cls) const;
  double class_p95_latency_ns(std::size_t cls) const;
  double class_p99_latency_ns(std::size_t cls) const;
  double class_qps(std::size_t cls) const;

  /// Share of total consumed device time that went to queries labeled
  /// `cls`, counting only queries completing by `cutoff` (defaults to the
  /// whole run). Under sustained overload the contended window — up to the
  /// last arrival — is the fairness figure of merit: over a *complete* run
  /// every request is eventually served, so whole-run shares converge to
  /// the workload mix regardless of scheduling. Streaming mode retains no
  /// per-query completions, so a finite cutoff throws there.
  double device_share(std::size_t cls,
                      device::Ns cutoff = device::Ns{
                          std::numeric_limits<double>::infinity()}) const;

  /// Max over configured positive-weight classes of
  /// |device_share - normalized weight| within `cutoff`; 0 when fewer than
  /// two classes are configured.
  double fairness_error(device::Ns cutoff = device::Ns{
                            std::numeric_limits<double>::infinity()}) const;
};

}  // namespace imars::serve
