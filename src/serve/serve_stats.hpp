// Serving telemetry, following the StreamReport idioms of
// core/query_engine.hpp: per-query records plus aggregate QPS, latency
// percentiles, cache hit rate and per-shard utilization — but over the
// *concurrent* runtime, so latencies include queueing/batching delay and
// throughput is makespan-based rather than derived from mean stage times.
#pragma once

#include <cstddef>
#include <vector>

#include "device/units.hpp"
#include "recsys/types.hpp"
#include "serve/hot_cache.hpp"

namespace imars::serve {

/// One served query's record.
struct ServedQuery {
  std::size_t id = 0;
  std::size_t user = 0;
  std::size_t client = 0;
  std::size_t batch = 0;
  std::size_t batch_size = 0;
  std::size_t home_shard = 0;   ///< shard that ran the replicated filter
  std::size_t candidates = 0;
  device::Ns enqueue;           ///< simulated arrival
  device::Ns dispatch;          ///< batch close
  device::Ns complete;          ///< top-k merged
  device::Ns filter_latency;    ///< cache-adjusted filter service time
  device::Ns rank_latency;      ///< cache-adjusted critical-path rank time
  device::Pj energy;            ///< cache-adjusted query energy
};

/// Busy time of one shard's pipeline units over the run, one entry per
/// pipeline stage (two for the filter/rank pipeline, one for CTR scoring).
struct ShardUsage {
  std::vector<device::Ns> stage_busy;

  /// Busy time of the first stage (the replicated filter in the two-stage
  /// pipeline); zero for single-stage pipelines.
  device::Ns first_stage_busy() const {
    return stage_busy.size() > 1 ? stage_busy.front() : device::Ns{0.0};
  }
  /// Busy time of the last stage (the sharded rank / scoring stage — the
  /// figure of merit for load balance).
  device::Ns last_stage_busy() const {
    return stage_busy.empty() ? device::Ns{0.0} : stage_busy.back();
  }
};

/// Aggregated results of one serving run.
struct ServeReport {
  std::vector<ServedQuery> queries;
  std::vector<ShardUsage> shards;
  CacheStats cache;
  recsys::StageStats filter_stats;  ///< summed, cache-adjusted
  recsys::StageStats rank_stats;
  device::Ns makespan;              ///< last completion time
  std::size_t batches = 0;

  std::size_t size() const noexcept { return queries.size(); }

  /// Per-query end-to-end latencies (ns), enqueue to merged top-k —
  /// queueing and batching delay included.
  std::vector<double> latencies_ns() const;

  double mean_latency_ns() const;
  double p50_latency_ns() const;
  double p95_latency_ns() const;
  double p99_latency_ns() const;

  /// Served queries per second of simulated hardware time.
  double qps() const;

  double mean_batch_size() const;
  double mean_energy_pj() const;

  /// Fraction of the makespan shard `s` kept its rank units busy (the
  /// sharded stage; the figure of merit for load balance).
  double rank_utilization(std::size_t s) const;
  double filter_utilization(std::size_t s) const;
};

}  // namespace imars::serve
