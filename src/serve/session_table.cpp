#include "serve/session_table.hpp"

#include "util/error.hpp"

namespace imars::serve {

namespace {

constexpr std::uint64_t kBucketSeed = 0x73657373696f6e31ULL;  // "session1"
constexpr std::uint64_t kAltSeed = 0x73657373696f6e32ULL;     // "session2"
constexpr std::uint64_t kProfileSeed = 0x70726f66696c65ULL;   // "profile"

std::size_t next_pow2(std::size_t v) {
  std::size_t p = 1;
  while (p < v) p <<= 1;
  return p;
}

}  // namespace

SessionTable::SessionTable(const SessionTableConfig& cfg)
    : seed_(cfg.seed),
      max_kicks_(cfg.max_kicks),
      kick_rng_(util::hash64(cfg.seed, 0x6b69636bULL)) {
  IMARS_REQUIRE(cfg.capacity >= 2 * kSlotsPerBucket,
                "SessionTable: capacity must cover at least two buckets");
  IMARS_REQUIRE(cfg.max_kicks >= 1, "SessionTable: max_kicks must be >= 1");
  buckets_ = next_pow2((cfg.capacity + kSlotsPerBucket - 1) / kSlotsPerBucket);
  mask_ = buckets_ - 1;
  slots_.resize(buckets_ * kSlotsPerBucket);
}

std::size_t SessionTable::bucket_of(std::uint64_t user) const noexcept {
  return static_cast<std::size_t>(util::hash64(seed_ ^ kBucketSeed, user)) &
         mask_;
}

std::size_t SessionTable::alt_bucket(std::size_t bucket,
                                     std::uint64_t user) const noexcept {
  // XOR displacement keeps alt(alt(b)) == b, so a displaced victim's other
  // bucket is computable without knowing which of its two homes it held.
  // A zero displacement would pin alt == bucket and make kicks loop in
  // place, so it is bumped to 1.
  std::size_t d =
      static_cast<std::size_t>(util::hash64(seed_ ^ kAltSeed, user)) & mask_;
  if (d == 0) d = 1;
  return bucket ^ d;
}

std::size_t SessionTable::find_in(std::size_t bucket,
                                  std::uint64_t user) const noexcept {
  const std::size_t base = bucket * kSlotsPerBucket;
  for (std::size_t i = 0; i < kSlotsPerBucket; ++i) {
    const Slot& s = slots_[base + i];
    if (s.occupied && s.state.user == user) return i;
  }
  return kSlotsPerBucket;
}

bool SessionTable::place_if_free(std::size_t bucket, const SessionState& s) {
  const std::size_t base = bucket * kSlotsPerBucket;
  for (std::size_t i = 0; i < kSlotsPerBucket; ++i) {
    if (!slots_[base + i].occupied) {
      slots_[base + i].occupied = true;
      slots_[base + i].state = s;
      return true;
    }
  }
  return false;
}

bool SessionTable::contains(std::uint64_t user) const {
  const std::size_t b1 = bucket_of(user);
  if (find_in(b1, user) < kSlotsPerBucket) return true;
  return find_in(alt_bucket(b1, user), user) < kSlotsPerBucket;
}

void SessionTable::insert(const SessionState& s) {
  const std::size_t b1 = bucket_of(s.user);
  const std::size_t b2 = alt_bucket(b1, s.user);
  if (place_if_free(b1, s) || place_if_free(b2, s)) {
    ++occupancy_;
    return;
  }
  // Both buckets full: displace. The chain is bounded at max_kicks_; if it
  // runs out, the session left in hand departs (a forced eviction) rather
  // than the insert retrying unboundedly — per-insert work is O(max_kicks)
  // worst case.
  SessionState carry = s;
  std::size_t bucket = kick_rng_.bernoulli(0.5) ? b1 : b2;
  for (std::size_t kick = 0; kick < max_kicks_; ++kick) {
    const std::size_t slot =
        bucket * kSlotsPerBucket +
        static_cast<std::size_t>(kick_rng_.below(kSlotsPerBucket));
    std::swap(carry, slots_[slot].state);
    ++stats_.kicks;
    if (kick + 1 > max_kick_chain_) max_kick_chain_ = kick + 1;
    bucket = alt_bucket(bucket, carry.user);
    if (place_if_free(bucket, carry)) {
      ++occupancy_;
      return;
    }
  }
  // carry departs; the incoming session is already placed somewhere along
  // the chain, so occupancy is unchanged (+1 arrival, -1 eviction).
  ++stats_.forced_evictions;
  ++stats_.departures;
}

SessionState SessionTable::touch(std::uint64_t user, device::Ns now) {
  ++stats_.lookups;
  const std::size_t b1 = bucket_of(user);
  std::size_t bucket = b1;
  std::size_t slot = find_in(b1, user);
  if (slot == kSlotsPerBucket) {
    bucket = alt_bucket(b1, user);
    slot = find_in(bucket, user);
  }
  if (slot < kSlotsPerBucket) {
    SessionState& st = slots_[bucket * kSlotsPerBucket + slot].state;
    ++st.sequence;
    st.last_seen = now;
    ++stats_.hits;
    return st;
  }
  SessionState fresh;
  fresh.user = user;
  fresh.sequence = 1;
  fresh.profile =
      static_cast<std::uint32_t>(util::hash64(seed_ ^ kProfileSeed, user));
  fresh.first_seen = now;
  fresh.last_seen = now;
  ++stats_.arrivals;
  insert(fresh);
  return fresh;
}

bool SessionTable::evict_random(util::Xoshiro256& rng) {
  if (occupancy_ == 0) return false;
  // Rejection-sample an occupied slot; expected attempts = 1/load_factor,
  // and churn only runs on tables held near steady-state occupancy.
  for (;;) {
    const std::size_t idx =
        static_cast<std::size_t>(rng.below(slots_.size()));
    if (!slots_[idx].occupied) continue;
    slots_[idx].occupied = false;
    --occupancy_;
    ++stats_.departures;
    return true;
  }
}

}  // namespace imars::serve
