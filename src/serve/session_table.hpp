// User-session state layer for million-user steady-state workloads.
//
// Real serving fleets do not see a static user population: sessions arrive,
// issue a handful of queries, and depart, with the live set orders of
// magnitude smaller than the registered population. SNIPPETS.md's cuckoo-lb
// exemplar sustains 1M flows with per-second replacement through a cuckoo
// connection table; this is the analogous layer for recommendation
// serving. A bucketized cuckoo hash table keyed by user id holds one
// SessionState per live session:
//
//   * O(1) lookup — a key lives in one of two buckets (4 slots each), so a
//     probe touches at most 8 slots regardless of capacity or load.
//   * bounded kicks — an insert displaces at most `max_kicks` victims; if
//     the kick chain runs out, the last displaced session departs (a
//     forced eviction, counted) instead of the insert looping. Per-insert
//     work is therefore O(max_kicks) worst case, not amortized.
//   * seeded churn — all placement/kick/eviction randomness comes from
//     seeded generators, so a given seed reproduces the exact
//     arrival/departure/lookup sequence (test_session_table pins this).
//
// The load generator's session mode (LoadGenConfig::session_mode) routes
// every drawn user through touch(): a hit bumps the session's query
// sequence, a miss is a session arrival, and a per-query Bernoulli churn
// draw retires a random live session (departure). The resulting
// SessionState feeds Request::session_seq / session_fresh — per-session
// personalization state the servables can condition on.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "device/units.hpp"
#include "util/rng.hpp"

namespace imars::serve {

/// Per-session personalization state.
struct SessionState {
  std::uint64_t user = 0;      ///< key: user-context index
  std::uint32_t sequence = 0;  ///< queries this session has issued (1 = first)
  std::uint32_t profile = 0;   ///< session personalization tag (seeded hash)
  device::Ns first_seen{0.0};  ///< arrival time (simulated)
  device::Ns last_seen{0.0};   ///< newest query time (simulated)
};

struct SessionTableConfig {
  /// Target live-session capacity; rounded up to a power-of-two bucket
  /// count times 4 slots per bucket.
  std::size_t capacity = 1 << 16;
  /// Kick-chain bound per insert (the O(1) guarantee).
  std::size_t max_kicks = 32;
  std::uint64_t seed = 7;
};

class SessionTable {
 public:
  static constexpr std::size_t kSlotsPerBucket = 4;

  struct Stats {
    std::uint64_t lookups = 0;
    std::uint64_t hits = 0;        ///< lookup found a live session
    std::uint64_t arrivals = 0;    ///< sessions created
    std::uint64_t departures = 0;  ///< churn retirements + forced evictions
    std::uint64_t forced_evictions = 0;  ///< kick chain exhausted
    std::uint64_t kicks = 0;             ///< total cuckoo displacements
    double hit_rate() const noexcept {
      return lookups == 0 ? 0.0
                          : static_cast<double>(hits) /
                                static_cast<double>(lookups);
    }
  };

  explicit SessionTable(const SessionTableConfig& cfg);

  /// Slot capacity after rounding (buckets * kSlotsPerBucket).
  std::size_t capacity() const noexcept { return slots_.size(); }
  std::size_t occupancy() const noexcept { return occupancy_; }
  double load_factor() const noexcept {
    return static_cast<double>(occupancy_) /
           static_cast<double>(slots_.size());
  }
  const Stats& stats() const noexcept { return stats_; }
  /// Longest kick chain any insert has walked (<= cfg.max_kicks always).
  std::size_t max_kick_chain() const noexcept { return max_kick_chain_; }

  /// Looks up `user`'s live session: a hit bumps its query sequence and
  /// last_seen; a miss creates the session (cuckoo insert with bounded
  /// kicks — a full table along the kick path forcibly retires the last
  /// displaced session). Returns the post-bump state by value (the slot
  /// may move on later inserts).
  SessionState touch(std::uint64_t user, device::Ns now);

  /// True if `user` has a live session (no stats side effects).
  bool contains(std::uint64_t user) const;

  /// Churn departure: retires one uniformly random live session using
  /// `rng`. Returns false when the table is empty.
  bool evict_random(util::Xoshiro256& rng);

 private:
  struct Slot {
    bool occupied = false;
    SessionState state;
  };

  std::size_t bucket_of(std::uint64_t user) const noexcept;
  /// The key's other bucket, computable from either one (cuckoo property).
  std::size_t alt_bucket(std::size_t bucket, std::uint64_t user) const noexcept;
  /// Slot index of `user` in `bucket`, or kSlotsPerBucket if absent.
  std::size_t find_in(std::size_t bucket, std::uint64_t user) const noexcept;
  /// Places into a free slot of `bucket` if any; true on success.
  bool place_if_free(std::size_t bucket, const SessionState& s);
  void insert(const SessionState& s);

  std::size_t buckets_ = 0;  ///< power of two
  std::size_t mask_ = 0;
  std::uint64_t seed_ = 0;
  std::size_t max_kicks_ = 0;
  std::vector<Slot> slots_;  ///< buckets_ * kSlotsPerBucket, bucket-major
  util::Xoshiro256 kick_rng_;
  std::size_t occupancy_ = 0;
  std::size_t max_kick_chain_ = 0;
  Stats stats_;
};

}  // namespace imars::serve
