#include "serve/shard_map.hpp"

#include <algorithm>
#include <cmath>

#include "util/error.hpp"

namespace imars::serve {

ShardMap ShardMap::uniform(std::size_t shards) {
  IMARS_REQUIRE(shards >= 1, "ShardMap::uniform: need at least one shard");
  ShardMap m;
  m.table_.resize(shards);
  for (std::size_t s = 0; s < shards; ++s)
    m.table_[s] = static_cast<std::uint32_t>(s);
  m.share_.assign(shards, 1.0 / static_cast<double>(shards));
  return m;
}

ShardMap ShardMap::weighted(std::span<const double> weights,
                            std::size_t granularity) {
  IMARS_REQUIRE(!weights.empty(), "ShardMap::weighted: no shards");
  IMARS_REQUIRE(granularity >= 1, "ShardMap::weighted: zero granularity");
  double total = 0.0;
  for (double w : weights) {
    IMARS_REQUIRE(w >= 0.0, "ShardMap::weighted: negative weight");
    total += w;
  }
  IMARS_REQUIRE(total > 0.0, "ShardMap::weighted: all weights zero");

  const std::size_t ns = weights.size();
  const std::size_t buckets = granularity * ns;
  // Largest-remainder apportionment of `buckets` among the shards.
  std::vector<std::size_t> count(ns, 0);
  std::vector<std::pair<double, std::size_t>> remainder;  // (frac, shard)
  std::size_t assigned = 0;
  for (std::size_t s = 0; s < ns; ++s) {
    const double exact =
        weights[s] / total * static_cast<double>(buckets);
    count[s] = static_cast<std::size_t>(std::floor(exact));
    assigned += count[s];
    remainder.emplace_back(exact - std::floor(exact), s);
  }
  std::sort(remainder.begin(), remainder.end(),
            [](const auto& a, const auto& b) {
              if (a.first != b.first) return a.first > b.first;
              return a.second < b.second;  // deterministic tie-break
            });
  for (std::size_t i = 0; assigned < buckets; ++i, ++assigned)
    ++count[remainder[i % ns].second];

  ShardMap m;
  m.table_.reserve(buckets);
  // Interleave bucket ownership (smooth weighted round-robin) rather than
  // laying out contiguous runs: serving keys are often *sequential*
  // (request ids, dense item ranges), and contiguous runs would hand a
  // short sequential burst entirely to the first shard. Interleaving keeps
  // any window of the ring proportional to the weights. With uniform
  // weights this degenerates to [0, 1, ..., N-1] — exactly `key % N`.
  std::vector<double> score(ns, 0.0);
  for (std::size_t b = 0; b < buckets; ++b) {
    std::size_t best = 0;
    for (std::size_t s = 0; s < ns; ++s) {
      score[s] += static_cast<double>(count[s]);
      if (score[s] > score[best]) best = s;
    }
    score[best] -= static_cast<double>(buckets);
    m.table_.push_back(static_cast<std::uint32_t>(best));
  }
  m.share_.resize(ns);
  for (std::size_t s = 0; s < ns; ++s)
    m.share_[s] =
        static_cast<double>(count[s]) / static_cast<double>(buckets);
  return m;
}

ShardMap ShardMap::from_costs(std::span<const device::Ns> per_item_cost,
                              std::size_t granularity) {
  IMARS_REQUIRE(!per_item_cost.empty(), "ShardMap::from_costs: no shards");
  std::vector<double> weights(per_item_cost.size(), 0.0);
  bool any = false;
  for (std::size_t s = 0; s < per_item_cost.size(); ++s) {
    if (per_item_cost[s].value > 0.0) {
      weights[s] = 1.0 / per_item_cost[s].value;
      any = true;
    }
  }
  if (!any) return uniform(per_item_cost.size());
  // A shard whose cost could not be measured gets the mean capability
  // rather than zero (it can still serve).
  double sum = 0.0;
  std::size_t measured = 0;
  for (double w : weights)
    if (w > 0.0) {
      sum += w;
      ++measured;
    }
  const double mean = sum / static_cast<double>(measured);
  for (double& w : weights)
    if (w == 0.0) w = mean;
  return weighted(weights, granularity);
}

void ShardMap::set_pins(
    std::vector<std::pair<std::size_t, std::uint32_t>> pins) {
  IMARS_REQUIRE(!table_.empty(), "ShardMap::set_pins: empty map");
  pins_.clear();
  pins_.reserve(pins.size());
  for (const auto& [key, shard] : pins) {
    IMARS_REQUIRE(shard < shards(), "ShardMap::set_pins: shard out of range");
    pins_[key] = shard;  // later entries win (deterministic for callers)
  }
}

std::vector<HotKey> PlacementPolicy::top_keys(std::vector<HotKey> profile,
                                              std::size_t max_pins) {
  std::erase_if(profile, [](const HotKey& k) { return k.freq == 0; });
  std::sort(profile.begin(), profile.end(),
            [](const HotKey& a, const HotKey& b) {
              if (a.freq != b.freq) return a.freq > b.freq;
              return a.key < b.key;  // deterministic tie-break
            });
  if (profile.size() > max_pins) profile.resize(max_pins);
  return profile;
}

std::vector<HotKey> PlacementPolicy::top_keys(
    const std::unordered_map<std::size_t, std::uint64_t>& counts,
    std::size_t max_pins) {
  std::vector<HotKey> keys;
  keys.reserve(counts.size());
  for (const auto& [key, freq] : counts) keys.push_back({key, freq});
  return top_keys(std::move(keys), max_pins);
}

ShardMap PlacementPolicy::pin_hot(const ShardMap& base,
                                  std::span<const HotKey> hot,
                                  std::span<const device::Ns> shard_row_cost,
                                  std::size_t max_pins) {
  IMARS_REQUIRE(!base.empty(), "PlacementPolicy::pin_hot: empty base map");
  IMARS_REQUIRE(!base.has_pins(),
                "PlacementPolicy::pin_hot: base map already has pins (the "
                "policy would replace them — clear or merge explicitly)");
  const std::size_t ns = base.shards();
  IMARS_REQUIRE(shard_row_cost.empty() || shard_row_cost.size() == ns,
                "PlacementPolicy::pin_hot: one row cost per shard");
  std::vector<double> cost(ns, 1.0);
  if (!shard_row_cost.empty()) {
    // Non-positive entries (unmeasured / zero-cost oracle shards) take the
    // uniform cost so they still attract their share of pins.
    for (std::size_t s = 0; s < ns; ++s)
      if (shard_row_cost[s].value > 0.0) cost[s] = shard_row_cost[s].value;
  }

  // Greedy hottest-first weighted load balance (LPT on popularity mass
  // scaled by per-row cost): the first key lands on the cheapest shard,
  // later keys fill in wherever the pinned busy-time estimate stays
  // lowest. Deterministic: the profile is pre-sorted and ties break to the
  // lower shard index.
  std::vector<double> load(ns, 0.0);
  std::vector<std::pair<std::size_t, std::uint32_t>> pins;
  const std::size_t n = std::min(hot.size(), max_pins);
  pins.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    if (hot[i].freq == 0) break;  // profile is sorted: nothing hot follows
    std::size_t best = 0;
    double best_key = 0.0;
    for (std::size_t s = 0; s < ns; ++s) {
      const double k =
          (load[s] + static_cast<double>(hot[i].freq)) * cost[s];
      if (s == 0 || k < best_key) {
        best = s;
        best_key = k;
      }
    }
    load[best] += static_cast<double>(hot[i].freq);
    pins.emplace_back(hot[i].key, static_cast<std::uint32_t>(best));
  }

  ShardMap pinned = base;
  pinned.set_pins(std::move(pins));
  return pinned;
}

double ShardMap::share(std::size_t s) const {
  IMARS_REQUIRE(s < share_.size(), "ShardMap::share: shard out of range");
  return share_[s];
}

std::vector<std::vector<std::size_t>> ShardMap::partition(
    std::span<const std::size_t> keys) const {
  IMARS_REQUIRE(!table_.empty(), "ShardMap::partition: empty map");
  std::vector<std::vector<std::size_t>> slices(shards());
  for (std::size_t key : keys) slices[shard_of(key)].push_back(key);
  return slices;
}

void ShardMap::partition_into(
    std::span<const std::size_t> keys,
    std::vector<std::vector<std::size_t>>& slices) const {
  IMARS_REQUIRE(!table_.empty(), "ShardMap::partition_into: empty map");
  slices.resize(shards());
  for (auto& slice : slices) slice.clear();
  for (std::size_t key : keys) slices[shard_of(key)].push_back(key);
}

}  // namespace imars::serve
