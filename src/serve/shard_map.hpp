// Capability-weighted item placement across accelerator shards, with an
// optional frequency-aware pin layer.
//
// PR 1 placed items with a hard-coded `item % N`, which assumes every shard
// ranks at the same speed. Mixed-technology fabrics (e.g. FeFET-45 next to
// ReRAM-45 or FeFET-22 replicas) violate that: a slow shard on the critical
// path drags the whole batch. A ShardMap generalizes the placement to any
// disjoint cover of the key space: the key space is folded onto a fixed
// bucket ring (`key % buckets`) and buckets are apportioned to shards
// proportionally to capability weights (largest-remainder rounding), so a
// shard with twice the measured rank-stage throughput owns twice the items.
// Zero-weight shards own no buckets and legitimately receive empty slices.
//
// The uniform map uses exactly `shards` buckets, making `shard_of(key)`
// bit-identical to the old `key % N` — the refactor cannot perturb PR 1's
// timing with identical shards.
//
// Frequency-aware placement (PlacementPolicy, cf. RecFlash
// arXiv:2604.25338): the bucket ring is frequency-blind, so a Zipf-hot key
// lands wherever `key % buckets` happens to fall — possibly on the slowest
// technology. A *pin* overrides the ring for an individual key; the
// PlacementPolicy pins the hottest keys of a measured (or offline)
// frequency profile onto low-row-latency shards, balancing the pinned
// popularity mass by each shard's per-row cost. Pins never change which
// keys are served (any map is a disjoint cover), only where — results are
// placement-invariant by construction, timing is not.
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>
#include <unordered_map>
#include <utility>
#include <vector>

#include "device/units.hpp"
#include "util/error.hpp"

namespace imars::serve {

class ShardMap {
 public:
  /// Empty map (no shards); placeholder until a real map is assigned.
  ShardMap() = default;

  /// Uniform placement over `shards` shards: one bucket per shard, so
  /// `shard_of(key) == key % shards` exactly.
  static ShardMap uniform(std::size_t shards);

  /// Capability-weighted placement: `granularity * shards` buckets are
  /// apportioned by largest remainder. Weights must be non-negative with a
  /// positive sum; a zero-weight shard owns no buckets.
  static ShardMap weighted(std::span<const double> weights,
                           std::size_t granularity = 64);

  /// Weights derived from measured per-item stage cost: capability is the
  /// reciprocal of cost, so faster shards own proportionally more keys.
  /// Non-positive costs (e.g. the zero-cost CPU oracle) fall back to the
  /// uniform weight.
  static ShardMap from_costs(std::span<const device::Ns> per_item_cost,
                             std::size_t granularity = 64);

  bool empty() const noexcept { return table_.empty(); }
  std::size_t shards() const noexcept { return share_.size(); }
  std::size_t buckets() const noexcept { return table_.size(); }

  /// The shard owning WORK-ITEM `key`: its pin when one exists, the bucket
  /// ring otherwise. Every key maps to exactly one shard, so the per-shard
  /// slices of any key set are disjoint and cover it.
  std::size_t shard_of(std::size_t key) const {
    IMARS_REQUIRE(!table_.empty(), "ShardMap::shard_of: empty map");
    if (!pins_.empty()) {
      const auto it = pins_.find(key);
      if (it != pins_.end()) return it->second;
    }
    return ring_of(key);
  }

  /// The bucket-ring shard of `key`, IGNORING pins. Query-home placement
  /// (and update-home routing) uses this: pins express where embedding
  /// ROWS live, and request ids share the key space with item keys — a
  /// pinned hot item must not drag every request whose id collides with it
  /// onto the pin's shard.
  std::size_t ring_of(std::size_t key) const {
    IMARS_REQUIRE(!table_.empty(), "ShardMap::ring_of: empty map");
    return table_[key % table_.size()];
  }

  /// Fraction of the bucket ring shard `s` owns (normalized weight).
  double share(std::size_t s) const;

  /// Splits `keys` into per-shard slices, preserving input order within
  /// each slice. Slices are disjoint by construction and their union is
  /// `keys`.
  std::vector<std::vector<std::size_t>> partition(
      std::span<const std::size_t> keys) const;

  /// partition() into caller-owned storage: `slices` is resized to the
  /// shard count and each slice cleared (capacity kept) and refilled, so a
  /// hot scheduling loop reuses its slice buffers instead of allocating a
  /// vector-of-vectors per (query, stage). Contents match partition().
  void partition_into(std::span<const std::size_t> keys,
                      std::vector<std::vector<std::size_t>>& slices) const;

  // --- frequency-aware pins -------------------------------------------

  /// Replaces the pin table: each (key, shard) entry overrides the bucket
  /// ring for that key. Shard indices must be in range.
  void set_pins(std::vector<std::pair<std::size_t, std::uint32_t>> pins);

  bool has_pins() const noexcept { return !pins_.empty(); }
  std::size_t pinned_rows() const noexcept { return pins_.size(); }
  /// True when `key` routes through a pin rather than the bucket ring.
  bool is_pinned(std::size_t key) const {
    return !pins_.empty() && pins_.find(key) != pins_.end();
  }

 private:
  std::vector<std::uint32_t> table_;  ///< bucket -> shard
  std::vector<double> share_;         ///< per-shard fraction of buckets
  std::unordered_map<std::size_t, std::uint32_t> pins_;  ///< key overrides
};

/// One entry of a key-frequency profile (warmup window or offline
/// histogram), ordered hottest-first by the policy.
struct HotKey {
  std::size_t key = 0;
  std::uint64_t freq = 0;
};

/// Builds frequency-aware pin layers over a base ShardMap.
class PlacementPolicy {
 public:
  /// The `max_pins` hottest keys of `counts`, hottest first (frequency
  /// descending, key ascending on ties — deterministic regardless of the
  /// map's iteration order).
  static std::vector<HotKey> top_keys(
      const std::unordered_map<std::size_t, std::uint64_t>& counts,
      std::size_t max_pins);

  /// Same ordering/truncation contract over an unsorted profile (e.g. an
  /// offline histogram); zero-frequency entries are dropped.
  static std::vector<HotKey> top_keys(std::vector<HotKey> profile,
                                      std::size_t max_pins);

  /// `base` with up to `max_pins` of the hottest profiled keys pinned to
  /// low-latency shards. Keys are assigned hottest-first by greedy weighted
  /// load balance: key k goes to the shard minimizing
  /// (pinned_mass + freq_k) * row_cost — so the hottest rows land on the
  /// fastest CMA technology while no shard accumulates a disproportionate
  /// share of the hot mass. `shard_row_cost` holds one per-row latency per
  /// shard (e.g. each shard's PerfModel::row_fetch); empty or non-positive
  /// entries fall back to uniform cost. Zero-frequency keys are never
  /// pinned. `base` must be pin-free: the policy would otherwise silently
  /// replace hand-set pins, so that conflict is an error.
  static ShardMap pin_hot(const ShardMap& base, std::span<const HotKey> hot,
                          std::span<const device::Ns> shard_row_cost,
                          std::size_t max_pins);
};

}  // namespace imars::serve
