// Capability-weighted item placement across accelerator shards.
//
// PR 1 placed items with a hard-coded `item % N`, which assumes every shard
// ranks at the same speed. Mixed-technology fabrics (e.g. FeFET-45 next to
// ReRAM-45 or FeFET-22 replicas) violate that: a slow shard on the critical
// path drags the whole batch. A ShardMap generalizes the placement to any
// disjoint cover of the key space: the key space is folded onto a fixed
// bucket ring (`key % buckets`) and buckets are apportioned to shards
// proportionally to capability weights (largest-remainder rounding), so a
// shard with twice the measured rank-stage throughput owns twice the items.
// Zero-weight shards own no buckets and legitimately receive empty slices.
//
// The uniform map uses exactly `shards` buckets, making `shard_of(key)`
// bit-identical to the old `key % N` — the refactor cannot perturb PR 1's
// timing with identical shards.
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>
#include <vector>

#include "device/units.hpp"
#include "util/error.hpp"

namespace imars::serve {

class ShardMap {
 public:
  /// Empty map (no shards); placeholder until a real map is assigned.
  ShardMap() = default;

  /// Uniform placement over `shards` shards: one bucket per shard, so
  /// `shard_of(key) == key % shards` exactly.
  static ShardMap uniform(std::size_t shards);

  /// Capability-weighted placement: `granularity * shards` buckets are
  /// apportioned by largest remainder. Weights must be non-negative with a
  /// positive sum; a zero-weight shard owns no buckets.
  static ShardMap weighted(std::span<const double> weights,
                           std::size_t granularity = 64);

  /// Weights derived from measured per-item stage cost: capability is the
  /// reciprocal of cost, so faster shards own proportionally more keys.
  /// Non-positive costs (e.g. the zero-cost CPU oracle) fall back to the
  /// uniform weight.
  static ShardMap from_costs(std::span<const device::Ns> per_item_cost,
                             std::size_t granularity = 64);

  bool empty() const noexcept { return table_.empty(); }
  std::size_t shards() const noexcept { return share_.size(); }
  std::size_t buckets() const noexcept { return table_.size(); }

  /// The shard owning `key`. Every key maps to exactly one shard, so the
  /// per-shard slices of any key set are disjoint and cover it.
  std::size_t shard_of(std::size_t key) const {
    IMARS_REQUIRE(!table_.empty(), "ShardMap::shard_of: empty map");
    return table_[key % table_.size()];
  }

  /// Fraction of the bucket ring shard `s` owns (normalized weight).
  double share(std::size_t s) const;

  /// Splits `keys` into per-shard slices, preserving input order within
  /// each slice. Slices are disjoint by construction and their union is
  /// `keys`.
  std::vector<std::vector<std::size_t>> partition(
      std::span<const std::size_t> keys) const;

 private:
  std::vector<std::uint32_t> table_;  ///< bucket -> shard
  std::vector<double> share_;         ///< per-shard fraction of buckets
};

}  // namespace imars::serve
