#include "serve/shard_router.hpp"

#include <algorithm>
#include <cmath>
#include <future>

#include "util/error.hpp"

namespace imars::serve {

using recsys::OpCost;
using recsys::OpKind;
using recsys::StageStats;

ShardRouter::ShardRouter(const core::BackendFactory& factory,
                         std::size_t shards,
                         const device::DeviceProfile& profile,
                         TrafficSpec traffic)
    : profile_(profile),
      traffic_(std::move(traffic)),
      executors_(shards),
      usage_(shards) {
  IMARS_REQUIRE(shards >= 1, "ShardRouter: need at least one shard");
  shards_.resize(shards);
  // Replicas are built on their own executor threads (construction — table
  // loading, crossbar programming — is the expensive part and parallelizes).
  std::vector<std::future<void>> built;
  for (std::size_t s = 0; s < shards; ++s) {
    built.push_back(executors_.at(s).submit(
        [this, s, &factory] { shards_[s].backend = factory(); }));
  }
  ExecutorPool::wait_all(built);
  for (auto& st : shards_)
    IMARS_REQUIRE(st.backend != nullptr, "ShardRouter: factory returned null");
}

recsys::FilterRankBackend& ShardRouter::backend(std::size_t shard) {
  IMARS_REQUIRE(shard < shards_.size(), "ShardRouter: shard out of range");
  return *shards_[shard].backend;
}

void ShardRouter::reset_clock() {
  for (auto& st : shards_)
    st.filter_free = st.rank_free = st.et_free = device::Ns{0.0};
  for (auto& u : usage_) u = ShardUsage{};
}

namespace {

/// Appends one pooled pass over the user's feature rows + history. The
/// first row of each table's chain is marked (its in-array cost is a bare
/// read, not a read+write+add increment).
void append_pooled_pass(const recsys::UserContext& user,
                        std::span<const std::size_t> features,
                        std::vector<RowAccess>& out) {
  auto add_feature = [&](std::size_t f) {
    bool first = true;
    for (std::size_t idx : user.sparse[f]) {
      out.push_back({ShardRouter::kUietTableBase + static_cast<std::uint32_t>(f),
                     static_cast<std::uint32_t>(idx), true, first});
      first = false;
    }
  };
  if (features.empty()) {
    for (std::size_t f = 0; f < user.sparse.size(); ++f) add_feature(f);
  } else {
    for (std::size_t f : features) add_feature(f);
  }
  bool first = true;
  for (std::size_t item : user.history) {
    out.push_back({ShardRouter::kItetTable, static_cast<std::uint32_t>(item),
                   true, first});
    first = false;
  }
}

}  // namespace

std::vector<RowAccess> ShardRouter::filter_accesses(
    const recsys::UserContext& user) const {
  std::vector<RowAccess> out;
  append_pooled_pass(user, traffic_.filter_features, out);
  return out;
}

std::vector<RowAccess> ShardRouter::rank_accesses(
    const recsys::UserContext& user,
    std::span<const std::size_t> slice) const {
  // The backend re-runs the pooled rank lookups once per candidate item
  // (backend.cpp (2b)); mirror that so the adjustment matches the measured
  // per-candidate ET cost.
  std::vector<RowAccess> out;
  for (std::size_t item : slice) {
    append_pooled_pass(user, traffic_.rank_features, out);
    out.push_back({kItetTable, static_cast<std::uint32_t>(item), false});
  }
  return out;
}

StageStats ShardRouter::adjust_stage(const StageStats& measured,
                                     std::span<const RowAccess> accesses,
                                     HotEmbeddingCache* cache,
                                     const CacheTiming& timing) const {
  if (cache == nullptr) return measured;

  std::size_t pooled_hits = 0, pooled_first_hits = 0, row_hits = 0;
  for (const auto& a : accesses) {
    if (cache->access(a.table, a.row)) {
      if (!a.pooled)
        ++row_hits;
      else if (a.first_in_table)
        ++pooled_first_hits;
      else
        ++pooled_hits;
    }
  }
  if (pooled_hits == 0 && pooled_first_hits == 0 && row_hits == 0)
    return measured;

  // Replace each hit's CMA+bus cost with the hot-buffer cost, clamped so an
  // adjustment can never drive the measured ET cost negative (the CPU
  // oracle charges no hardware cost at all).
  const double ph = static_cast<double>(pooled_hits);
  const double pfh = static_cast<double>(pooled_first_hits);
  const double rh = static_cast<double>(row_hits);
  StageStats adjusted = measured;
  OpCost& et = adjusted.at(OpKind::kEtLookup);
  const device::Ns lat_removed = timing.pooled_miss.latency * ph +
                                 timing.pooled_first_miss.latency * pfh +
                                 timing.row_miss.latency * rh;
  const device::Pj pj_removed = timing.pooled_miss.energy * ph +
                                timing.pooled_first_miss.energy * pfh +
                                timing.row_miss.energy * rh;
  const double hits = ph + pfh + rh;
  et.latency = device::max(et.latency - lat_removed, device::Ns{0.0}) +
               timing.hit.latency * hits;
  et.energy = device::Pj{std::max(0.0, (et.energy - pj_removed).value)} +
              timing.hit.energy * hits;
  return adjusted;
}

OpCost ShardRouter::merge_cost(std::size_t slices, std::size_t k) const {
  // Each contributing shard ships k (id, score) pairs (8 bytes each) over
  // the RSC bus; the controller then runs a k-way tournament across slices.
  const std::size_t bytes = 8 * std::max<std::size_t>(k, 1);
  const std::size_t cycles_per_shard =
      (bytes * 8 + profile_.rsc_bus_bits - 1) / profile_.rsc_bus_bits;
  const double transfers =
      static_cast<double>(cycles_per_shard) * static_cast<double>(slices);
  // ceil(log2(slices)) tournament rounds; a single slice needs no merge.
  double rounds = 0.0;
  for (std::size_t span = 1; span < slices; span *= 2) rounds += 1.0;
  const double selects = static_cast<double>(k) * rounds;
  OpCost cost;
  cost.latency = profile_.rsc_cycle * transfers +
                 profile_.controller_cycle * selects;
  cost.energy = profile_.rsc_energy * transfers +
                profile_.controller_energy * selects;
  return cost;
}

std::vector<ShardRouter::QueryResult> ShardRouter::execute_batch(
    const Batch& batch, std::span<const recsys::UserContext> users,
    std::size_t k, HotEmbeddingCache* cache, const CacheTiming& timing) {
  const std::size_t n = batch.size();
  const std::size_t ns = shards_.size();
  IMARS_REQUIRE(n >= 1, "ShardRouter::execute_batch: empty batch");
  for (const auto& r : batch.requests)
    IMARS_REQUIRE(r.user < users.size(),
                  "ShardRouter::execute_batch: user out of range");

  // Phase A — replicated filter stage, queries round-robin over shards;
  // each shard's worker thread runs its queries in order.
  std::vector<std::size_t> home(n);
  std::vector<std::vector<std::size_t>> candidates(n);
  std::vector<StageStats> fstats(n);
  {
    std::vector<std::future<void>> pending;
    for (std::size_t i = 0; i < n; ++i) {
      home[i] = batch.requests[i].id % ns;
      const recsys::UserContext* user = &users[batch.requests[i].user];
      const std::size_t shard = home[i];
      pending.push_back(
          executors_.at(shard).submit([this, i, shard, user, &candidates,
                                       &fstats] {
            candidates[i] =
                shards_[shard].backend->filter(*user, &fstats[i]);
          }));
    }
    ExecutorPool::wait_all(pending);
  }

  // Phase B — sharded rank stage: each shard ranks the candidates it owns.
  std::vector<std::vector<std::vector<std::size_t>>> slices(
      n, std::vector<std::vector<std::size_t>>(ns));
  for (std::size_t i = 0; i < n; ++i)
    for (std::size_t item : candidates[i])
      slices[i][shard_of_item(item)].push_back(item);

  std::vector<std::vector<std::vector<recsys::ScoredItem>>> scored(
      n, std::vector<std::vector<recsys::ScoredItem>>(ns));
  std::vector<std::vector<StageStats>> rstats(n,
                                              std::vector<StageStats>(ns));
  {
    std::vector<std::future<void>> pending;
    for (std::size_t i = 0; i < n; ++i) {
      const recsys::UserContext* user = &users[batch.requests[i].user];
      for (std::size_t s = 0; s < ns; ++s) {
        if (slices[i][s].empty()) continue;
        pending.push_back(executors_.at(s).submit([this, i, s, user, &slices,
                                                   &scored, &rstats, k] {
          scored[i][s] = shards_[s].backend->rank(*user, slices[i][s], k,
                                                  &rstats[i][s]);
        }));
      }
    }
    ExecutorPool::wait_all(pending);
  }

  // Phase C — deterministic accounting in batch order: cache rewrite of ET
  // costs, then the event model (per-shard two-stage pipeline with ET-bank
  // contention, as in core/throughput.hpp) composes hardware time.
  std::vector<QueryResult> results(n);
  for (std::size_t i = 0; i < n; ++i) {
    const auto& req = batch.requests[i];
    const auto& user = users[req.user];
    QueryResult& out = results[i];
    out.home_shard = home[i];
    out.candidates = candidates[i].size();

    const auto f_acc = filter_accesses(user);
    out.filter_stats = adjust_stage(fstats[i], f_acc, cache, timing);
    const device::Ns f_time = out.filter_stats.total().latency;
    const device::Ns f_et = out.filter_stats.at(OpKind::kEtLookup).latency;

    ShardState& h = shards_[home[i]];
    const device::Ns f_start =
        std::max({batch.dispatch, h.filter_free, h.et_free});
    const device::Ns f_end = f_start + f_time;
    h.filter_free = f_end;
    h.et_free = f_start + f_et;
    usage_[home[i]].filter_busy += f_time;
    out.filter_latency = f_time;

    // Rank slices run concurrently across shards; each occupies its shard's
    // rank unit and ET banks.
    device::Ns rank_end = f_end;
    std::size_t contributing = 0;
    for (std::size_t s = 0; s < ns; ++s) {
      if (slices[i][s].empty()) continue;
      ++contributing;
      const auto r_acc = rank_accesses(user, slices[i][s]);
      const StageStats adj = adjust_stage(rstats[i][s], r_acc, cache, timing);
      out.rank_stats.merge(adj);
      const device::Ns r_time = adj.total().latency;
      const device::Ns r_et = adj.at(OpKind::kEtLookup).latency;

      ShardState& st = shards_[s];
      const device::Ns r_start = std::max({f_end, st.rank_free, st.et_free});
      const device::Ns r_end = r_start + r_time;
      st.rank_free = r_end;
      st.et_free = r_start + r_et;
      usage_[s].rank_busy += r_time;
      rank_end = device::max(rank_end, r_end);
    }

    // Merge unit: global top-k from the per-shard top-k lists.
    const OpCost merge =
        merge_cost(std::max<std::size_t>(contributing, 1), k);
    out.rank_stats.at(OpKind::kComm) += merge;
    out.complete = rank_end + merge.latency;
    out.rank_latency = out.complete - f_end;

    std::vector<recsys::ScoredItem> all;
    for (std::size_t s = 0; s < ns; ++s)
      all.insert(all.end(), scored[i][s].begin(), scored[i][s].end());
    std::sort(all.begin(), all.end(), [](const auto& a, const auto& b) {
      if (a.score != b.score) return a.score > b.score;
      return a.item < b.item;
    });
    if (all.size() > k) all.resize(k);
    out.topk = std::move(all);
  }
  return results;
}

}  // namespace imars::serve
