#include "serve/shard_router.hpp"

#include "util/error.hpp"

namespace imars::serve {

using recsys::StageStats;

PipelineSpec ShardRouter::pipeline_spec() {
  PipelineSpec spec;
  spec.stages = {{"filter", StageKind::kReplicated, {}},
                 {"rank", StageKind::kSharded, {}}};
  spec.merge_topk = true;
  return spec;
}

ShardRouter::ShardRouter(const core::BackendFactory& factory,
                         std::size_t shards, TrafficSpec traffic)
    : spec_(pipeline_spec()), traffic_(std::move(traffic)) {
  IMARS_REQUIRE(shards >= 1, "ShardRouter: need at least one shard");
  // Uniform replicas ignore the slot; any profile placeholder works.
  const std::vector<device::DeviceProfile> slots(shards,
                                                 device::DeviceProfile{});
  shards_ = core::build_replicas(core::per_slot(factory), slots);
}

ShardRouter::ShardRouter(const core::ShardedBackendFactory& factory,
                         std::span<const device::DeviceProfile> profiles,
                         TrafficSpec traffic)
    : spec_(pipeline_spec()), traffic_(std::move(traffic)) {
  IMARS_REQUIRE(!profiles.empty(), "ShardRouter: need at least one shard");
  shards_ = core::build_replicas(factory, profiles);
}

void ShardRouter::bind_users(std::span<const recsys::UserContext> users) {
  IMARS_REQUIRE(!users.empty(), "ShardRouter: empty user population");
  users_ = users;
}

void ShardRouter::override_spec(PipelineSpec spec) {
  IMARS_REQUIRE(spec.stage_count() == spec_.stage_count() &&
                    spec.merge_topk == spec_.merge_topk &&
                    spec.resolve() == spec_.resolve(),
                "ShardRouter::override_spec: spec must resolve to the "
                "canonical filter->rank graph");
  for (std::size_t s = 0; s < spec.stage_count(); ++s)
    IMARS_REQUIRE(spec.stages[s].kind == spec_.stages[s].kind,
                  "ShardRouter::override_spec: stage kind mismatch");
  spec_ = std::move(spec);
}

recsys::FilterRankBackend& ShardRouter::backend(std::size_t shard) {
  IMARS_REQUIRE(shard < shards_.size(), "ShardRouter: shard out of range");
  return *shards_[shard];
}

const recsys::UserContext& ShardRouter::user_of(const Request& req) const {
  IMARS_REQUIRE(req.user < users_.size(),
                "ShardRouter: user out of range (bind_users first)");
  return users_[req.user];
}

std::vector<device::Ns> ShardRouter::probe_rank_cost(
    const recsys::UserContext& probe, std::span<const std::size_t> items) {
  std::vector<device::Ns> costs;
  costs.reserve(shards_.size());
  for (auto& shard : shards_) {
    StageStats stats;
    (void)shard->rank(probe, items, std::max<std::size_t>(items.size(), 1),
                      &stats);
    costs.push_back(stats.total().latency);
  }
  return costs;
}

std::vector<device::Ns> ShardRouter::stage_cost_estimate(std::size_t k) {
  if (users_.empty()) return {};
  const auto& probe = users_.front();
  auto& shard = *shards_.front();
  StageStats filter_stats;
  const auto candidates = shard.filter(probe, &filter_stats);
  StageStats rank_stats;
  if (!candidates.empty())
    (void)shard.rank(probe, candidates, std::max<std::size_t>(k, 1),
                     &rank_stats);
  return {filter_stats.total().latency, rank_stats.total().latency};
}

std::vector<std::size_t> ShardRouter::run_replicated(std::size_t stage,
                                                     std::size_t shard,
                                                     const Request& req,
                                                     StageStats* stats) {
  IMARS_REQUIRE(stage == 0, "ShardRouter: filter is stage 0");
  return shards_[shard]->filter(user_of(req), stats);
}

std::vector<recsys::ScoredItem> ShardRouter::run_sharded(
    std::size_t stage, std::size_t shard, const Request& req,
    std::span<const std::size_t> slice, std::size_t k, StageStats* stats) {
  IMARS_REQUIRE(stage == 1, "ShardRouter: rank is stage 1");
  return shards_[shard]->rank(user_of(req), slice, k, stats);
}

namespace {

/// Appends one pooled pass over the user's feature rows + history. The
/// first row of each table's chain is marked (its in-array cost is a bare
/// read, not a read+write+add increment).
void append_pooled_pass(const recsys::UserContext& user,
                        std::span<const std::size_t> features,
                        std::vector<RowAccess>& out) {
  auto add_feature = [&](std::size_t f) {
    bool first = true;
    for (std::size_t idx : user.sparse[f]) {
      out.push_back({ShardRouter::kUietTableBase + static_cast<std::uint32_t>(f),
                     static_cast<std::uint32_t>(idx), true, first});
      first = false;
    }
  };
  if (features.empty()) {
    for (std::size_t f = 0; f < user.sparse.size(); ++f) add_feature(f);
  } else {
    for (std::size_t f : features) add_feature(f);
  }
  bool first = true;
  for (std::size_t item : user.history) {
    out.push_back({ShardRouter::kItetTable, static_cast<std::uint32_t>(item),
                   true, first});
    first = false;
  }
}

}  // namespace

std::vector<RowAccess> ShardRouter::filter_accesses(
    const recsys::UserContext& user) const {
  std::vector<RowAccess> out;
  append_pooled_pass(user, traffic_.filter_features, out);
  return out;
}

std::vector<RowAccess> ShardRouter::rank_accesses(
    const recsys::UserContext& user,
    std::span<const std::size_t> slice) const {
  // The backend re-runs the pooled rank lookups once per candidate item
  // (backend.cpp (2b)); mirror that so the adjustment matches the measured
  // per-candidate ET cost.
  std::vector<RowAccess> out;
  for (std::size_t item : slice) {
    append_pooled_pass(user, traffic_.rank_features, out);
    out.push_back({kItetTable, static_cast<std::uint32_t>(item), false});
  }
  return out;
}

std::vector<RowAccess> ShardRouter::accesses(
    std::size_t stage, const Request& req,
    std::span<const std::size_t> slice) const {
  std::vector<RowAccess> out;
  accesses_into(stage, req, slice, out);
  return out;
}

void ShardRouter::accesses_into(std::size_t stage, const Request& req,
                                std::span<const std::size_t> slice,
                                std::vector<RowAccess>& out) const {
  const auto& user = user_of(req);
  if (stage == 0) {
    append_pooled_pass(user, traffic_.filter_features, out);
    return;
  }
  for (std::size_t item : slice) {
    append_pooled_pass(user, traffic_.rank_features, out);
    out.push_back({kItetTable, static_cast<std::uint32_t>(item), false});
  }
}

std::vector<RowAccess> ShardRouter::update_accesses(const Request& req) const {
  return filter_accesses(user_of(req));
}

std::vector<std::size_t> ShardRouter::profile_items(const Request& req) {
  StageStats stats;  // observational probe; costs discarded
  return shards_.front()->filter(user_of(req), &stats);
}

}  // namespace imars::serve
