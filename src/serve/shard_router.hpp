// The two-stage (YouTubeDNN filter/rank) servable: FilterRankBackend
// replicas behind the generic staged-pipeline engine.
//
// The filter stage is *replicated* — any shard can run any query's
// filtering pass over the full catalog (queries spread over shards by the
// ShardMap), while the rank stage is *sharded* — each shard ranks only the
// candidate items it owns under the ShardMap's disjoint cover and ships its
// local top-k to the merge unit. Because the slices are disjoint and cover
// all candidates, merged results equal single-backend results for ANY
// capability weighting, including empty slices on zero-weight shards.
//
// This class is the workload adapter only; execution (worker threads,
// event-model clocks, cache rewriting, merge timing) lives in
// serve/stage_pipeline.*. PR 1's ShardRouter fused the two and hard-coded
// `item % N` placement; the modulo is gone from the public API — every
// item→shard decision routes through the engine's ShardMap.
#pragma once

#include <cstddef>
#include <memory>
#include <span>
#include <vector>

#include "core/backend_factory.hpp"
#include "serve/stage_pipeline.hpp"

namespace imars::serve {

/// Which ET rows each stage touches, mirroring ImarsBackend's computation
/// flow so cache adjustments rewrite exactly the traffic that was measured:
/// the filter stage pools its feature subset + history once; the rank stage
/// re-runs its pooled lookups *per candidate* (Table III's ranking lookup
/// is "for one item input") and row-fetches each candidate's embedding.
struct TrafficSpec {
  std::vector<std::size_t> filter_features;  ///< empty = all sparse features
  std::vector<std::size_t> rank_features;    ///< empty = all sparse features
};

class ShardRouter final : public ServableBackend {
 public:
  /// Table-key namespace of RowAccess: the ItET plus one UIET per sparse
  /// feature (filter and rank replicas share the hot buffer).
  static constexpr std::uint32_t kItetTable = 0;
  static constexpr std::uint32_t kUietTableBase = 1;

  /// The filter/rank stage graph this servable implements.
  static PipelineSpec pipeline_spec();

  /// Uniform fabric: `shards` identical replicas from `factory` (built in
  /// parallel). `traffic` describes the per-stage ET row accesses for cache
  /// bookkeeping.
  ShardRouter(const core::BackendFactory& factory, std::size_t shards,
              TrafficSpec traffic = {});

  /// Heterogeneous fabric: one replica per slot, each built on its own
  /// device profile (mixed technologies).
  ShardRouter(const core::ShardedBackendFactory& factory,
              std::span<const device::DeviceProfile> profiles,
              TrafficSpec traffic = {});

  /// Binds the user-context population `Request::user` indexes. Must be
  /// called before serving and while no batch is in flight; the span must
  /// outlive the serving run.
  void bind_users(std::span<const recsys::UserContext> users);

  /// Replaces the spec with an equivalent declaration of the same
  /// filter->rank graph (must resolve identically — e.g. the chain with
  /// its edge declared explicitly instead of implied). Exists so tests can
  /// assert implicit-linear and explicit-DAG specs are interchangeable.
  void override_spec(PipelineSpec spec);

  recsys::FilterRankBackend& backend(std::size_t shard);

  /// Measures each shard's rank-stage cost on `probe` over `items`
  /// (hardware latency per slice), for capability-weighted ShardMaps.
  /// Purely observational: replicas are not mutated functionally. Runs the
  /// replicas on the calling thread, so it must NOT be called while a
  /// batch is in flight (probe before serving, like the benches do).
  std::vector<device::Ns> probe_rank_cost(
      const recsys::UserContext& probe, std::span<const std::size_t> items);

  // --- ServableBackend -----------------------------------------------------
  std::string_view name() const override { return "filter-rank"; }
  const PipelineSpec& spec() const override { return spec_; }
  std::size_t shards() const override { return shards_.size(); }

  std::vector<std::size_t> run_replicated(
      std::size_t stage, std::size_t shard, const Request& req,
      recsys::StageStats* stats) override;

  std::vector<recsys::ScoredItem> run_sharded(
      std::size_t stage, std::size_t shard, const Request& req,
      std::span<const std::size_t> slice, std::size_t k,
      recsys::StageStats* stats) override;

  std::vector<RowAccess> accesses(
      std::size_t stage, const Request& req,
      std::span<const std::size_t> slice) const override;

  /// Hot-path form: appends the same rows into `out` (the pipeline's
  /// per-batch scratch) without a fresh allocation; accesses() is
  /// implemented on top of it.
  void accesses_into(std::size_t stage, const Request& req,
                     std::span<const std::size_t> slice,
                     std::vector<RowAccess>& out) const override;

  /// An embedding update writes the user's profile rows: the filter-feature
  /// sparse rows plus the interaction history (the rows an online trainer
  /// refreshes after the user acts on a recommendation).
  std::vector<RowAccess> update_accesses(const Request& req) const override;

  /// Candidate items of the request's filter pass, probed on replica 0 —
  /// the keys its rank stage routes through the ShardMap (placement
  /// frequency profiling).
  std::vector<std::size_t> profile_items(const Request& req) override;

  /// {filter, rank} hardware-latency estimates probed on shard 0 against
  /// the first bound user (empty before bind_users). The rank estimate
  /// covers the full candidate set of the probe's filter pass at top-`k`.
  std::vector<device::Ns> stage_cost_estimate(std::size_t k) override;

  /// ET rows a query's filter pass touches (filter-feature sparse rows +
  /// history, pooled once).
  std::vector<RowAccess> filter_accesses(const recsys::UserContext& user) const;

  /// ET rows one shard's rank pass touches: per candidate in the slice, the
  /// rank-feature sparse rows + history (the backend re-pools them for
  /// every item) plus the candidate's own ItET row fetch.
  std::vector<RowAccess> rank_accesses(
      const recsys::UserContext& user,
      std::span<const std::size_t> slice) const;

 private:
  const recsys::UserContext& user_of(const Request& req) const;

  PipelineSpec spec_;
  TrafficSpec traffic_;
  std::vector<std::unique_ptr<recsys::FilterRankBackend>> shards_;
  std::span<const recsys::UserContext> users_;
};

}  // namespace imars::serve
