// Sharded accelerator fabric: N independent backend replicas serving one
// catalog.
//
// The filter stage is *replicated* — any shard can run any query's
// filtering pass over the full catalog (queries spread round-robin), while
// the rank stage is *sharded* — each shard ranks only the candidates it
// owns (item id mod N) and ships its local top-k to the merge unit, which
// produces the global top-k. Because the slices are disjoint and cover all
// candidates, merged results equal single-backend results.
//
// Execution is hybrid: the *functional* work runs concurrently on real
// per-shard worker threads (ShardExecutor), while *hardware time* is
// composed deterministically from the backends' measured per-stage costs by
// a small event model: each shard is a two-stage pipeline (filter unit,
// rank unit) plus an ET-bank resource both stages contend for — the same
// contention rule as core/throughput.hpp's pipelined bound. The
// hot-embedding cache rewrites per-row ET costs (core::PerfModel row costs)
// before times enter the event model, so cached rows neither occupy the
// CMA arrays nor the contended ET banks.
#pragma once

#include <cstddef>
#include <memory>
#include <span>
#include <vector>

#include "core/backend_factory.hpp"
#include "core/perf_model.hpp"
#include "recsys/types.hpp"
#include "serve/batcher.hpp"
#include "serve/executor.hpp"
#include "serve/hot_cache.hpp"
#include "serve/serve_stats.hpp"

namespace imars::serve {

/// Device-anchored costs the cache substitutes per ET row access.
struct CacheTiming {
  recsys::OpCost hit;          ///< hot-row buffer read
  recsys::OpCost row_miss;     ///< RAM-mode row fetch + RSC transfer
  recsys::OpCost pooled_miss;  ///< per-row in-array accumulate increment
  /// The first row of a table's pooled chain costs only the read (no
  /// write-back + add yet; PerfModel::et_lookup charges read*L +
  /// (write+add)*(L-1)).
  recsys::OpCost pooled_first_miss;

  static CacheTiming from_model(const core::PerfModel& model) {
    const auto& read = model.profile().cma_read;
    return CacheTiming{model.cached_row(), model.row_fetch(),
                       model.pooled_row(),
                       recsys::OpCost{read.latency, read.energy}};
  }
};

/// One ET row touched by a query (cache bookkeeping granularity).
struct RowAccess {
  std::uint32_t table = 0;  ///< kItetTable or kUietTableBase + feature
  std::uint32_t row = 0;
  bool pooled = false;  ///< pooled lookup (vs RAM-mode row fetch)
  bool first_in_table = false;  ///< first row of its table's pooled chain
};

/// Which ET rows each stage touches, mirroring ImarsBackend's computation
/// flow so cache adjustments rewrite exactly the traffic that was measured:
/// the filter stage pools its feature subset + history once; the rank stage
/// re-runs its pooled lookups *per candidate* (Table III's ranking lookup
/// is "for one item input") and row-fetches each candidate's embedding.
struct TrafficSpec {
  std::vector<std::size_t> filter_features;  ///< empty = all sparse features
  std::vector<std::size_t> rank_features;    ///< empty = all sparse features
};

class ShardRouter {
 public:
  /// Table-key namespace of RowAccess: the ItET plus one UIET per sparse
  /// feature (filter and rank replicas share the hot buffer).
  static constexpr std::uint32_t kItetTable = 0;
  static constexpr std::uint32_t kUietTableBase = 1;

  /// Builds `shards` backend replicas from the factory (each on its own
  /// worker thread). `profile` supplies the merge-unit communication
  /// timing (stored by value); `traffic` describes the per-stage ET row
  /// accesses for cache bookkeeping.
  ShardRouter(const core::BackendFactory& factory, std::size_t shards,
              const device::DeviceProfile& profile,
              TrafficSpec traffic = {});

  std::size_t shards() const noexcept { return shards_.size(); }
  std::size_t shard_of_item(std::size_t item) const noexcept {
    return item % shards_.size();
  }
  recsys::FilterRankBackend& backend(std::size_t shard);

  /// Per-query outcome of a batch execution.
  struct QueryResult {
    std::vector<recsys::ScoredItem> topk;
    std::size_t candidates = 0;
    std::size_t home_shard = 0;
    device::Ns complete;         ///< simulated merge-done time
    device::Ns filter_latency;   ///< filter service time (cache-adjusted)
    device::Ns rank_latency;     ///< end-of-filter to merge-done
    recsys::StageStats filter_stats;  ///< cache-adjusted
    recsys::StageStats rank_stats;    ///< summed over slices + merge comm
  };

  /// Runs one closed batch: replicated filters (round-robin home shards),
  /// sharded ranks, per-shard top-k merge. `users` is the context
  /// population indexed by Request::user. When `cache` is non-null every
  /// ET row access flows through it and stage costs are rewritten with
  /// `timing`. Shard pipeline state persists across calls, so consecutive
  /// batches overlap exactly as the hardware would.
  std::vector<QueryResult> execute_batch(
      const Batch& batch, std::span<const recsys::UserContext> users,
      std::size_t k, HotEmbeddingCache* cache, const CacheTiming& timing);

  /// Cumulative per-shard busy time (for utilization reporting).
  const std::vector<ShardUsage>& usage() const noexcept { return usage_; }

  /// Resets the event clocks and usage counters (not the replicas).
  void reset_clock();

  /// ET rows a query's filter pass touches (filter-feature sparse rows +
  /// history, pooled once).
  std::vector<RowAccess> filter_accesses(const recsys::UserContext& user) const;

  /// ET rows one shard's rank pass touches: per candidate in the slice, the
  /// rank-feature sparse rows + history (the backend re-pools them for
  /// every item) plus the candidate's own ItET row fetch.
  std::vector<RowAccess> rank_accesses(
      const recsys::UserContext& user,
      std::span<const std::size_t> slice) const;

 private:
  struct ShardState {
    std::unique_ptr<recsys::FilterRankBackend> backend;
    device::Ns filter_free;  ///< filter pipeline unit available
    device::Ns rank_free;    ///< rank pipeline unit available
    device::Ns et_free;      ///< shared ET banks available
  };

  /// Applies the cache to `accesses` and rewrites the stage's ET-lookup
  /// cost; returns the adjusted stats and the adjusted ET-bank occupancy.
  recsys::StageStats adjust_stage(const recsys::StageStats& measured,
                                  std::span<const RowAccess> accesses,
                                  HotEmbeddingCache* cache,
                                  const CacheTiming& timing) const;

  /// Merge-unit cost: each contributing shard ships its top-k over the RSC
  /// bus, the controller runs the k-way tournament.
  recsys::OpCost merge_cost(std::size_t slices, std::size_t k) const;

  device::DeviceProfile profile_;
  TrafficSpec traffic_;
  std::vector<ShardState> shards_;
  ExecutorPool executors_;
  std::vector<ShardUsage> usage_;
};

}  // namespace imars::serve
