#include "serve/stage_pipeline.hpp"

#include <algorithm>
#include <cmath>
#include <map>

#include "util/error.hpp"

namespace imars::serve {

using recsys::OpCost;
using recsys::OpKind;
using recsys::StageStats;

/// Functional scratch of one in-flight batch. Tasks on the shard executors
/// fill the per-(query, stage) records; collect() reads them single-threaded
/// after the done promise fires (the promise provides the happens-before).
struct StagePipeline::BatchHandle::State {
  Batch batch;
  std::size_t k = 0;
  std::size_t spec_idx = 0;  ///< co-resident servable slot
  bool urgent = false;       ///< latency-critical: use the executor fast band
  std::uint64_t seq = 0;  ///< submission order (collect() enforces it)

  struct StageRec {
    StageStats rep_stats;  ///< replicated-stage measured costs
    std::vector<std::vector<std::size_t>> slices;  ///< sharded: per shard
    std::vector<StageStats> shard_stats;           ///< sharded: per shard
  };

  std::vector<std::size_t> home;                  ///< per query
  std::vector<std::vector<std::size_t>> items;    ///< current work-item set
  std::vector<std::vector<StageRec>> rec;         ///< [query][stage]
  /// Partial scored results of the last sharded stage, [query][shard].
  std::vector<std::vector<std::vector<recsys::ScoredItem>>> partials;
  std::unique_ptr<std::atomic<std::size_t>[]> fan_in;  ///< per query

  std::atomic<std::size_t> outstanding{0};
  std::atomic<bool> failed{false};
  std::promise<void> done;
  std::shared_future<void> done_future;
  std::mutex err_mu;
  std::exception_ptr error;

  void fail(std::exception_ptr e) {
    std::lock_guard lock(err_mu);
    if (!error) error = std::move(e);
    failed.store(true, std::memory_order_release);
  }
};

StagePipeline::StagePipeline(std::size_t shards, PipelineSpec spec,
                             const device::DeviceProfile& profile,
                             ShardMap map)
    : StagePipeline(shards,
                    std::vector<PipelineSpec>{std::move(spec)}, profile,
                    std::move(map)) {}

StagePipeline::StagePipeline(std::size_t shards,
                             std::vector<PipelineSpec> specs,
                             const device::DeviceProfile& profile,
                             ShardMap map)
    : specs_(std::move(specs)),
      profile_(profile),
      map_(map.empty() ? ShardMap::uniform(shards) : std::move(map)),
      executors_(shards),
      clocks_(shards),
      usage_(shards) {
  IMARS_REQUIRE(shards >= 1, "StagePipeline: need at least one shard");
  IMARS_REQUIRE(!specs_.empty(), "StagePipeline: need at least one spec");
  IMARS_REQUIRE(map_.shards() == shards,
                "StagePipeline: ShardMap covers a different shard count");
  for (const auto& spec : specs_) {
    IMARS_REQUIRE(spec.stage_count() >= 1, "StagePipeline: empty stage graph");
    // Partial results are kept per shard, not per (stage, shard): a second
    // sharded stage would mix its partials with the first's in the final
    // merge. Guard the engine's current envelope explicitly.
    std::size_t sharded_stages = 0;
    for (const auto& s : spec.stages)
      if (s.kind == StageKind::kSharded) ++sharded_stages;
    IMARS_REQUIRE(sharded_stages <= 1,
                  "StagePipeline: at most one sharded stage per graph");
    offsets_.push_back(total_stages_);
    total_stages_ += spec.stage_count();
  }
  for (auto& c : clocks_) c.stage_free.resize(total_stages_);
  for (auto& u : usage_) u.stage_busy.resize(total_stages_);
}

StagePipeline::~StagePipeline() {
  // A caller unwinding past uncollected handles (e.g. one overlapped batch
  // of several threw) leaves their stage-chaining tasks running; those
  // tasks submit follow-up work to the executors, so the executors must
  // outlive them. done fires once every query of a batch has finished
  // chaining, after which no further submissions can occur.
  std::vector<std::shared_ptr<BatchHandle::State>> live;
  {
    std::lock_guard lock(pending_mu_);
    for (auto& wp : pending_)
      if (auto sp = wp.lock()) live.push_back(std::move(sp));
  }
  for (const auto& st : live) st->done_future.wait();
}

void StagePipeline::reset_clock() {
  for (auto& c : clocks_) {
    c.stage_free.assign(total_stages_, device::Ns{0.0});
    c.shared_free = device::Ns{0.0};
  }
  for (auto& u : usage_)
    u.stage_busy.assign(total_stages_, device::Ns{0.0});
  // Handles abandoned before collection (e.g. a caller unwound past them
  // after another batch's error) left their sequence numbers unconsumed;
  // realign so the next run starts clean — stale handles then fail
  // collect()'s order check instead of corrupting the fresh clocks.
  next_collect_seq_ = next_submit_seq_;
}

device::Ns StagePipeline::frontier() const {
  device::Ns latest{0.0};
  for (const auto& c : clocks_) {
    for (const auto& t : c.stage_free) latest = device::max(latest, t);
    latest = device::max(latest, c.shared_free);
  }
  return latest;
}

StagePipeline::BatchHandle StagePipeline::submit(const Batch& batch,
                                                 ServableBackend& servable,
                                                 std::size_t k,
                                                 std::size_t spec_idx,
                                                 bool urgent) {
  const std::size_t n = batch.size();
  const std::size_t ns = shards();
  IMARS_REQUIRE(n >= 1, "StagePipeline::submit: empty batch");
  IMARS_REQUIRE(servable.shards() == ns,
                "StagePipeline::submit: servable shard count mismatch");
  IMARS_REQUIRE(k >= 1, "StagePipeline::submit: k must be >= 1");
  IMARS_REQUIRE(spec_idx < specs_.size(),
                "StagePipeline::submit: spec slot out of range");
  const PipelineSpec& spec = specs_[spec_idx];
  const PipelineSpec& sspec = servable.spec();
  IMARS_REQUIRE(sspec.stage_count() == spec.stage_count() &&
                    sspec.merge_topk == spec.merge_topk,
                "StagePipeline::submit: servable stage graph mismatch");
  for (std::size_t s = 0; s < spec.stage_count(); ++s)
    IMARS_REQUIRE(sspec.stages[s].kind == spec.stages[s].kind,
                  "StagePipeline::submit: servable stage kind mismatch");

  auto st = std::make_shared<BatchHandle::State>();
  st->batch = batch;
  st->k = k;
  st->spec_idx = spec_idx;
  st->urgent = urgent;
  st->seq = next_submit_seq_++;
  st->home.resize(n);
  st->items.resize(n);
  st->rec.assign(n, std::vector<BatchHandle::State::StageRec>(
                        spec.stage_count()));
  for (auto& query_rec : st->rec)
    for (std::size_t s = 0; s < spec.stage_count(); ++s)
      if (spec.stages[s].kind == StageKind::kSharded)
        query_rec[s].shard_stats.resize(ns);
  st->partials.assign(
      n, std::vector<std::vector<recsys::ScoredItem>>(ns));
  st->fan_in = std::make_unique<std::atomic<std::size_t>[]>(n);
  st->outstanding.store(n);
  st->done_future = st->done.get_future().share();
  {
    std::lock_guard lock(pending_mu_);
    std::erase_if(pending_, [](const auto& wp) { return wp.expired(); });
    pending_.push_back(st);
  }

  for (std::size_t qi = 0; qi < n; ++qi) {
    const Request& req = st->batch.requests[qi];
    // All placement routes through the ShardMap: queries spread over the
    // replicated stage's replicas by id, proportionally to capability.
    st->home[qi] = map_.shard_of(req.id);
    if (spec.stages.front().kind == StageKind::kSharded)
      st->items[qi] = servable.initial_items(req);
    advance(st, servable, qi, 0);
  }

  BatchHandle handle;
  handle.state_ = std::move(st);
  return handle;
}

void StagePipeline::advance(const std::shared_ptr<BatchHandle::State>& st,
                            ServableBackend& servable, std::size_t qi,
                            std::size_t stage) {
  // Nothing in the chain may leak an exception: a throw between the
  // counter updates (e.g. bad_alloc in partition or task submission)
  // would leave `outstanding` above zero and hang collect() forever, so
  // any such failure terminates the query here instead.
  try {
    advance_unchecked(st, servable, qi, stage);
  } catch (...) {
    st->fail(std::current_exception());
    if (st->outstanding.fetch_sub(1) == 1) st->done.set_value();
  }
}

void StagePipeline::advance_unchecked(
    const std::shared_ptr<BatchHandle::State>& st, ServableBackend& servable,
    std::size_t qi, std::size_t stage) {
  const PipelineSpec& spec = specs_[st->spec_idx];
  // A failed query skips its remaining stages (collect() rethrows).
  if (stage >= spec.stage_count() ||
      st->failed.load(std::memory_order_acquire)) {
    if (st->outstanding.fetch_sub(1) == 1) st->done.set_value();
    return;
  }

  if (spec.stages[stage].kind == StageKind::kReplicated) {
    const std::size_t shard = st->home[qi];
    executors_.at(shard).submit(
        [this, st, &servable, qi, stage, shard] {
          try {
            st->items[qi] = servable.run_replicated(
                stage, shard, st->batch.requests[qi],
                &st->rec[qi][stage].rep_stats);
          } catch (...) {
            st->fail(std::current_exception());
          }
          advance(st, servable, qi, stage + 1);
        },
        st->urgent);
    return;
  }

  // Sharded stage: partition the query's work items, fan out to the owning
  // shards, join on the last slice.
  auto& rec = st->rec[qi][stage];
  rec.slices = map_.partition(st->items[qi]);
  std::size_t nonempty = 0;
  for (const auto& s : rec.slices)
    if (!s.empty()) ++nonempty;
  if (nonempty == 0) {
    advance(st, servable, qi, stage + 1);
    return;
  }
  st->fan_in[qi].store(nonempty);
  for (std::size_t shard = 0; shard < rec.slices.size(); ++shard) {
    if (rec.slices[shard].empty()) continue;
    executors_.at(shard).submit(
        [this, st, &servable, qi, stage, shard] {
          auto& r = st->rec[qi][stage];
          try {
            st->partials[qi][shard] = servable.run_sharded(
                stage, shard, st->batch.requests[qi], r.slices[shard], st->k,
                &r.shard_stats[shard]);
          } catch (...) {
            st->fail(std::current_exception());
          }
          if (st->fan_in[qi].fetch_sub(1) == 1)
            advance(st, servable, qi, stage + 1);
        },
        st->urgent);
  }
}

StageStats StagePipeline::adjust_stage(const StageStats& measured,
                                       std::span<const RowAccess> accesses,
                                       HotEmbeddingCache* cache,
                                       const CacheTiming& timing,
                                       std::uint32_t table_base) const {
  if (cache == nullptr) return measured;

  std::size_t pooled_hits = 0, pooled_first_hits = 0, row_hits = 0;
  std::size_t parallel_hits = 0;
  // Per parallel group: (accesses, hits) — a group's bank-max latency term
  // vanishes only when every one of its banks hits.
  std::map<std::uint32_t, std::pair<std::size_t, std::size_t>> groups;
  for (const auto& a : accesses) {
    const bool hit = cache->access(table_base + a.table, a.row);
    if (a.parallel_bank) {
      auto& g = groups[a.parallel_group];
      ++g.first;
      if (hit) {
        ++g.second;
        ++parallel_hits;
      }
      continue;
    }
    if (hit) {
      if (!a.pooled)
        ++row_hits;
      else if (a.first_in_table)
        ++pooled_first_hits;
      else
        ++pooled_hits;
    }
  }
  std::size_t full_groups = 0;
  for (const auto& [id, g] : groups)
    if (g.first > 0 && g.second == g.first) ++full_groups;
  if (pooled_hits == 0 && pooled_first_hits == 0 && row_hits == 0 &&
      parallel_hits == 0)
    return measured;

  // Replace each hit's CMA+bus cost with the hot-buffer cost, clamped so an
  // adjustment can never drive the measured ET cost negative (the CPU
  // oracle charges no hardware cost at all).
  const double ph = static_cast<double>(pooled_hits);
  const double pfh = static_cast<double>(pooled_first_hits);
  const double rh = static_cast<double>(row_hits);
  StageStats adjusted = measured;
  OpCost& et = adjusted.at(OpKind::kEtLookup);
  const device::Ns lat_removed = timing.pooled_miss.latency * ph +
                                 timing.pooled_first_miss.latency * pfh +
                                 timing.row_miss.latency * rh;
  const device::Pj pj_removed = timing.pooled_miss.energy * ph +
                                timing.pooled_first_miss.energy * pfh +
                                timing.row_miss.energy * rh;
  const double hits = ph + pfh + rh;
  // Parallel-bank hits (RowAccess::parallel_bank): the stage's measured
  // latency holds one bank-max term per group, so latency is credited
  // only for groups whose EVERY bank hit — that group's array read
  // vanishes and the buffer reads that replace it stay parallel (one
  // hit-latency term per group). Energy is credited per hit (banks are
  // summed there).
  const device::Ns parallel_lat_removed =
      timing.row_miss.latency * static_cast<double>(full_groups);
  const device::Ns parallel_lat_added =
      timing.hit.latency * static_cast<double>(full_groups);
  et.latency = device::max(et.latency - lat_removed - parallel_lat_removed,
                           device::Ns{0.0}) +
               timing.hit.latency * hits + parallel_lat_added;
  const double pll = static_cast<double>(parallel_hits);
  et.energy = device::Pj{std::max(
                  0.0, (et.energy - pj_removed -
                        timing.row_miss.energy * pll)
                           .value)} +
              timing.hit.energy * (hits + pll);
  return adjusted;
}

OpCost StagePipeline::merge_cost(std::size_t slices, std::size_t k) const {
  // Each contributing shard ships k (id, score) pairs (8 bytes each) over
  // the RSC bus; the controller then runs a k-way tournament across slices.
  const std::size_t bytes = 8 * std::max<std::size_t>(k, 1);
  const std::size_t cycles_per_shard =
      (bytes * 8 + profile_.rsc_bus_bits - 1) / profile_.rsc_bus_bits;
  const double transfers =
      static_cast<double>(cycles_per_shard) * static_cast<double>(slices);
  // ceil(log2(slices)) tournament rounds; a single slice needs no merge.
  double rounds = 0.0;
  for (std::size_t span = 1; span < slices; span *= 2) rounds += 1.0;
  const double selects = static_cast<double>(k) * rounds;
  OpCost cost;
  cost.latency = profile_.rsc_cycle * transfers +
                 profile_.controller_cycle * selects;
  cost.energy = profile_.rsc_energy * transfers +
                profile_.controller_energy * selects;
  return cost;
}

std::vector<StagePipeline::QueryResult> StagePipeline::collect(
    BatchHandle handle, ServableBackend& servable, HotEmbeddingCache* cache,
    std::span<const CacheTiming> timing) {
  IMARS_REQUIRE(handle.valid(), "StagePipeline::collect: invalid handle");
  IMARS_REQUIRE(handle.state_->seq == next_collect_seq_,
                "StagePipeline::collect: handles must be collected in "
                "submission order");
  ++next_collect_seq_;
  IMARS_REQUIRE(timing.size() == 1 || timing.size() == shards(),
                "StagePipeline::collect: one CacheTiming, or one per shard");
  const auto timing_of = [&](std::size_t shard) -> const CacheTiming& {
    return timing.size() == 1 ? timing.front() : timing[shard];
  };
  auto st = std::move(handle.state_);
  st->done_future.wait();
  {
    std::lock_guard lock(st->err_mu);
    if (st->error) std::rethrow_exception(st->error);
  }

  const std::size_t n = st->batch.size();
  const std::size_t ns = shards();
  const PipelineSpec& spec = specs_[st->spec_idx];
  const std::size_t base = offsets_[st->spec_idx];
  // Co-resident servables must never alias each other's hot-cache rows.
  const std::uint32_t table_base =
      static_cast<std::uint32_t>(st->spec_idx) << 16;
  const std::size_t stages = spec.stage_count();
  const std::size_t last_sharded = [&] {
    std::size_t last = stages;  // `stages` = none
    for (std::size_t s = 0; s < stages; ++s)
      if (spec.stages[s].kind == StageKind::kSharded) last = s;
    return last;
  }();

  // Deterministic accounting in batch order: cache rewrite of ET costs,
  // then the event model (per-shard multi-stage pipeline with shared
  // ET-bank contention, as in core/throughput.hpp) composes hardware time.
  std::vector<QueryResult> results(n);
  for (std::size_t qi = 0; qi < n; ++qi) {
    const Request& req = st->batch.requests[qi];
    QueryResult& out = results[qi];
    out.request = req;
    out.batch_id = st->batch.id;
    out.batch_size = n;
    out.dispatch = st->batch.dispatch;
    out.home_shard = st->home[qi];
    out.work_items = st->items[qi].size();
    out.stage_latency.resize(stages);
    out.stage_stats.resize(stages);

    device::Ns prev_end = st->batch.dispatch;
    for (std::size_t s = 0; s < stages; ++s) {
      const auto& rec = st->rec[qi][s];
      if (spec.stages[s].kind == StageKind::kReplicated) {
        const std::size_t home = st->home[qi];
        // accesses() vectors exist only to feed the cache; skip them when
        // no cache is configured.
        const StageStats adj = adjust_stage(
            rec.rep_stats,
            cache != nullptr ? servable.accesses(s, req, {})
                             : std::vector<RowAccess>{},
            cache, timing_of(home), table_base);
        out.stage_stats[s] = adj;
        const device::Ns t = adj.total().latency;
        const device::Ns et = adj.at(OpKind::kEtLookup).latency;
        ShardClocks& c = clocks_[home];
        const device::Ns start =
            std::max({prev_end, c.stage_free[base + s], c.shared_free});
        const device::Ns end = start + t;
        c.stage_free[base + s] = end;
        c.shared_free = start + et;
        usage_[home].stage_busy[base + s] += t;
        out.stage_latency[s] = t;
        prev_end = end;
        continue;
      }

      // Sharded stage: slices run concurrently across shards; each occupies
      // its shard's stage unit and ET banks.
      device::Ns stage_end = prev_end;
      std::size_t contributing = 0;
      for (std::size_t shard = 0; shard < ns; ++shard) {
        if (rec.slices.empty() || rec.slices[shard].empty()) continue;
        ++contributing;
        const StageStats adj = adjust_stage(
            rec.shard_stats[shard],
            cache != nullptr ? servable.accesses(s, req, rec.slices[shard])
                             : std::vector<RowAccess>{},
            cache, timing_of(shard), table_base);
        out.stage_stats[s].merge(adj);
        const device::Ns t = adj.total().latency;
        const device::Ns et = adj.at(OpKind::kEtLookup).latency;
        ShardClocks& c = clocks_[shard];
        const device::Ns start =
            std::max({prev_end, c.stage_free[base + s], c.shared_free});
        const device::Ns end = start + t;
        c.stage_free[base + s] = end;
        c.shared_free = start + et;
        usage_[shard].stage_busy[base + s] += t;
        stage_end = device::max(stage_end, end);
      }
      if (s == last_sharded && spec.merge_topk) {
        // Merge unit: global top-k from the per-shard top-k lists.
        const OpCost merge =
            merge_cost(std::max<std::size_t>(contributing, 1), st->k);
        out.stage_stats[s].at(OpKind::kComm) += merge;
        stage_end = stage_end + merge.latency;
      }
      out.stage_latency[s] = stage_end - prev_end;
      prev_end = stage_end;
    }
    out.complete = prev_end;

    std::vector<recsys::ScoredItem> all;
    for (std::size_t shard = 0; shard < ns; ++shard)
      all.insert(all.end(), st->partials[qi][shard].begin(),
                 st->partials[qi][shard].end());
    std::sort(all.begin(), all.end(), [](const auto& a, const auto& b) {
      if (a.score != b.score) return a.score > b.score;
      return a.item < b.item;
    });
    if (all.size() > st->k) all.resize(st->k);
    out.topk = std::move(all);
  }
  return results;
}

std::vector<StagePipeline::QueryResult> StagePipeline::execute(
    const Batch& batch, ServableBackend& servable, std::size_t k,
    HotEmbeddingCache* cache, std::span<const CacheTiming> timing) {
  return collect(submit(batch, servable, k), servable, cache, timing);
}

}  // namespace imars::serve
