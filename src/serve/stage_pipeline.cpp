#include "serve/stage_pipeline.hpp"

#include <algorithm>
#include <cmath>
#include <unordered_map>

#include "util/error.hpp"

namespace imars::serve {

using recsys::OpCost;
using recsys::OpKind;
using recsys::StageStats;

// --- PipelineSpec: graph resolution ----------------------------------------

PipelineSpec::Graph PipelineSpec::resolve() const {
  IMARS_REQUIRE(!stages.empty(), "PipelineSpec: empty stage graph");
  const std::size_t n = stages.size();
  Graph g;
  g.preds.resize(n);
  g.succs.resize(n);
  g.item_sources.resize(n);

  const bool linear = linear_chain();
  if (linear) {
    for (std::size_t s = 1; s < n; ++s) {
      g.preds[s].push_back(s - 1);
      g.succs[s - 1].push_back(s);
    }
  } else {
    // Edges are declared by name, so names must be unique and non-empty.
    // Every rejection names the offending stage — a spec assembled from
    // config has to be debuggable from the error text alone.
    std::unordered_map<std::string_view, std::size_t> by_name;
    for (std::size_t s = 0; s < n; ++s) {
      IMARS_REQUIRE(!stages[s].name.empty(),
                    "PipelineSpec: stage #" + std::to_string(s) +
                        " of a dependency graph must be named");
      IMARS_REQUIRE(by_name.emplace(stages[s].name, s).second,
                    "PipelineSpec: duplicate stage name '" + stages[s].name +
                        "'");
    }
    for (std::size_t s = 0; s < n; ++s) {
      for (const auto& dep : stages[s].deps) {
        const auto it = by_name.find(dep);
        IMARS_REQUIRE(it != by_name.end(),
                      "PipelineSpec: stage '" + stages[s].name +
                          "' depends on unknown stage '" + dep + "'");
        IMARS_REQUIRE(it->second != s,
                      "PipelineSpec: stage '" + stages[s].name +
                          "' depends on itself");
        g.preds[s].push_back(it->second);
        g.succs[it->second].push_back(s);
      }
    }
  }

  // Deterministic topological order: Kahn's algorithm, always taking the
  // lowest ready stage index, so a linear chain yields 0,1,2,... and the
  // event-model accounting walks every graph in a reproducible order.
  std::vector<std::size_t> pending(n);
  for (std::size_t s = 0; s < n; ++s) pending[s] = g.preds[s].size();
  std::vector<bool> placed(n, false);
  g.order.reserve(n);
  while (g.order.size() < n) {
    std::size_t next = n;
    for (std::size_t s = 0; s < n; ++s) {
      if (!placed[s] && pending[s] == 0) {
        next = s;
        break;
      }
    }
    if (next == n) {
      // Name a stage on (or downstream of) the cycle: the lowest-index
      // stage still waiting on a predecessor.
      std::size_t stuck = 0;
      while (placed[stuck]) ++stuck;
      IMARS_REQUIRE(false,
                    "PipelineSpec: dependency cycle in stage graph "
                    "involving stage '" +
                        stages[stuck].name + "'");
    }
    placed[next] = true;
    g.order.push_back(next);
    for (std::size_t succ : g.succs[next]) --pending[succ];
  }

  // Produced-item-set plumbing (emit_topk / consume_items) only makes
  // sense on an explicitly declared graph: an implicit linear chain has no
  // edges to say WHICH stage feeds which.
  for (std::size_t s = 0; s < n; ++s) {
    IMARS_REQUIRE(stages[s].emit_topk == 0 ||
                      stages[s].kind == StageKind::kSharded,
                  "PipelineSpec: emit_topk on non-sharded stage #" +
                      std::to_string(s));
    IMARS_REQUIRE(!stages[s].consume_items ||
                      stages[s].kind == StageKind::kReplicated,
                  "PipelineSpec: consume_items on non-replicated stage #" +
                      std::to_string(s));
    IMARS_REQUIRE(!linear ||
                      (stages[s].emit_topk == 0 && !stages[s].consume_items),
                  "PipelineSpec: emit_topk/consume_items require an "
                  "explicit dependency graph (stage #" + std::to_string(s) +
                      ")");
  }

  // Work-item routing. Explicit graphs: a stage consumes its PRODUCING
  // direct predecessors — replicated stages and emitting (emit_topk)
  // sharded stages — in declared edge order; sharded stages always
  // consume, replicated stages only when consume_items opts in. Implicit
  // linear chains: the nearest preceding replicated stage — the pre-DAG
  // "replicated stages (re)define the item set" rule.
  for (std::size_t s = 0; s < n; ++s) {
    const bool consumes = stages[s].kind == StageKind::kSharded ||
                          stages[s].consume_items;
    if (!consumes) continue;
    if (linear) {
      for (std::size_t p = s; p-- > 0;) {
        if (stages[p].kind == StageKind::kReplicated) {
          g.item_sources[s].push_back(p);
          break;
        }
      }
    } else {
      for (std::size_t p : g.preds[s])
        if (stages[p].kind == StageKind::kReplicated ||
            stages[p].emit_topk > 0)
          g.item_sources[s].push_back(p);
    }
    IMARS_REQUIRE(!stages[s].consume_items || !g.item_sources[s].empty(),
                  "PipelineSpec: consume_items stage '" + stages[s].name +
                      "' has no producing predecessor");
  }

  // The output stage: the last sharded stage in topological order produces
  // the query's scored partials (and feeds the merge unit).
  for (std::size_t s : g.order)
    if (stages[s].kind == StageKind::kSharded) g.output_stage = s;
  IMARS_REQUIRE(!merge_topk || g.output_stage != kNoStage,
                "PipelineSpec: merge_topk requires a sharded stage");
  // An emitting stage's merged item list must feed SOMEONE — and the
  // output stage's partials already go to the top-k merge, so emitting
  // there would double-merge the same lists.
  for (std::size_t s = 0; s < n; ++s) {
    if (stages[s].emit_topk == 0) continue;
    IMARS_REQUIRE(!g.succs[s].empty(),
                  "PipelineSpec: emitting stage '" + stages[s].name +
                      "' has no successor to consume its items");
    IMARS_REQUIRE(s != g.output_stage,
                  "PipelineSpec: emitting stage '" + stages[s].name +
                      "' cannot be the output stage");
  }
  return g;
}

device::Ns PipelineSpec::critical_path(
    std::span<const device::Ns> stage_cost) const {
  IMARS_REQUIRE(stage_cost.size() == stages.size(),
                "PipelineSpec::critical_path: one cost per stage");
  const Graph g = resolve();
  std::vector<device::Ns> done(stages.size(), device::Ns{0.0});
  device::Ns longest{0.0};
  for (std::size_t s : g.order) {
    device::Ns ready{0.0};
    for (std::size_t p : g.preds[s]) ready = device::max(ready, done[p]);
    done[s] = ready + stage_cost[s];
    longest = device::max(longest, done[s]);
  }
  return longest;
}

// --- StagePipeline ----------------------------------------------------------

namespace {

/// The engine-wide scored-item order: score desc, item asc — a strict
/// total order over distinct items, so every merge (output top-k and
/// emitting-stage item lists) has exactly one answer regardless of the
/// sorting algorithm or shard arrival order.
bool score_order(const recsys::ScoredItem& a, const recsys::ScoredItem& b) {
  if (a.score != b.score) return a.score > b.score;
  return a.item < b.item;
}

}  // namespace

/// Functional scratch of one in-flight batch. Tasks on the shard executors
/// fill the per-(query, stage) records; collect() reads them single-threaded
/// after the done promise fires (the promise provides the happens-before).
struct StagePipeline::BatchHandle::State {
  Batch batch;
  std::size_t k = 0;
  std::size_t spec_idx = 0;  ///< co-resident servable slot
  bool urgent = false;       ///< latency-critical: use the executor fast band
  std::uint64_t seq = 0;  ///< submission order (collect() enforces it)

  struct StageRec {
    StageStats rep_stats;  ///< replicated-stage measured costs
    /// The stage's produced item set: a replicated stage's output, or an
    /// emitting sharded stage's merged global top-emit_topk item list.
    std::vector<std::size_t> out_items;
    std::vector<std::vector<std::size_t>> slices;  ///< sharded: per shard
    std::vector<StageStats> shard_stats;           ///< sharded: per shard
    /// Emitting (emit_topk) sharded stage: per-shard scored partials held
    /// until the last slice joins, then merged into out_items.
    std::vector<std::vector<recsys::ScoredItem>> emit;
  };

  std::vector<std::size_t> home;                  ///< per query
  std::vector<std::vector<std::size_t>> init_items;  ///< per query
  std::vector<std::vector<StageRec>> rec;         ///< [query][stage]
  /// Partial scored results of the OUTPUT sharded stage, [query][shard].
  std::vector<std::vector<std::vector<recsys::ScoredItem>>> partials;
  std::size_t stages = 0;  ///< stage count of the slot's graph
  /// Per (query, stage), flattened qi * stages + s: slice fan-in of a
  /// running sharded stage / pending predecessor edges of a not-yet-ready
  /// stage.
  std::unique_ptr<std::atomic<std::size_t>[]> fan_in;
  std::unique_ptr<std::atomic<std::size_t>[]> deps_left;
  std::unique_ptr<std::atomic<std::size_t>[]> stages_left;  ///< per query
  /// Allocated extents of the atomic arrays — a pooled State reallocates
  /// them only when a later batch outgrows what it already holds.
  std::size_t atomic_cap = 0;  ///< fan_in / deps_left entries
  std::size_t query_cap = 0;   ///< stages_left entries

  std::atomic<std::size_t> outstanding{0};
  std::atomic<bool> failed{false};
  std::promise<void> done;
  std::shared_future<void> done_future;
  std::mutex err_mu;
  std::exception_ptr error;

  std::atomic<std::size_t>& fan(std::size_t qi, std::size_t s) {
    return fan_in[qi * stages + s];
  }
  std::atomic<std::size_t>& deps(std::size_t qi, std::size_t s) {
    return deps_left[qi * stages + s];
  }

  void fail(std::exception_ptr e) {
    std::lock_guard lock(err_mu);
    if (!error) error = std::move(e);
    failed.store(true, std::memory_order_release);
  }
};

StagePipeline::StagePipeline(std::size_t shards, PipelineSpec spec,
                             const device::DeviceProfile& profile,
                             ShardMap map)
    : StagePipeline(shards,
                    std::vector<PipelineSpec>{std::move(spec)}, profile,
                    std::move(map)) {}

StagePipeline::StagePipeline(std::size_t shards,
                             std::vector<PipelineSpec> specs,
                             const device::DeviceProfile& profile,
                             ShardMap map)
    : specs_(std::move(specs)),
      profile_(profile),
      map_(map.empty() ? ShardMap::uniform(shards) : std::move(map)),
      executors_(shards),
      clocks_(shards),
      usage_(shards) {
  IMARS_REQUIRE(shards >= 1, "StagePipeline: need at least one shard");
  IMARS_REQUIRE(!specs_.empty(), "StagePipeline: need at least one spec");
  IMARS_REQUIRE(map_.shards() == shards,
                "StagePipeline: ShardMap covers a different shard count");
  for (const auto& spec : specs_) {
    graphs_.push_back(spec.resolve());  // validates the stage graph
    offsets_.push_back(total_stages_);
    total_stages_ += spec.stage_count();
  }
  for (auto& c : clocks_) c.stage_free.resize(total_stages_);
  for (auto& u : usage_) u.stage_busy.resize(total_stages_);
}

StagePipeline::~StagePipeline() {
  // A caller unwinding past uncollected handles (e.g. one overlapped batch
  // of several threw) leaves their stage-chaining tasks running; those
  // tasks submit follow-up work to the executors, so the executors must
  // outlive them. done fires once every query of a batch has finished
  // chaining, after which no further submissions can occur.
  std::vector<std::shared_ptr<BatchHandle::State>> live;
  {
    std::lock_guard lock(pending_mu_);
    for (auto& wp : pending_)
      if (auto sp = wp.lock()) live.push_back(std::move(sp));
  }
  for (const auto& st : live) st->done_future.wait();
}

void StagePipeline::BatchHandle::wait() const {
  if (state_ != nullptr) state_->done_future.wait();
}

void StagePipeline::reset_clock() {
  for (auto& c : clocks_) {
    c.stage_free.assign(total_stages_, device::Ns{0.0});
    c.shared_free = device::Ns{0.0};
  }
  for (auto& u : usage_) {
    u.stage_busy.assign(total_stages_, device::Ns{0.0});
    u.write_busy = device::Ns{0.0};
  }
  frontier_ = device::Ns{0.0};
  // Handles abandoned before collection (e.g. a caller unwound past them
  // after another batch's error) left their sequence numbers unconsumed;
  // realign so the next run starts clean — stale handles then fail
  // collect()'s order check instead of corrupting the fresh clocks.
  next_collect_seq_ = next_submit_seq_;
}

void StagePipeline::set_shard_map(ShardMap map) {
  IMARS_REQUIRE(map.shards() == shards(),
                "StagePipeline::set_shard_map: shard count mismatch");
  IMARS_REQUIRE(next_submit_seq_ == next_collect_seq_,
                "StagePipeline::set_shard_map: batches in flight");
  map_ = std::move(map);
}

void StagePipeline::charge_write(std::size_t shard,
                                 const recsys::OpCost& cost, device::Ns at) {
  IMARS_REQUIRE(shard < shards(),
                "StagePipeline::charge_write: shard out of range");
  ShardClocks& c = clocks_[shard];
  const device::Ns start = device::max(at, c.shared_free);
  c.shared_free = start + cost.latency;
  frontier_ = device::max(frontier_, c.shared_free);
  usage_[shard].write_busy += cost.latency;
  if (sink_ != nullptr && cost.latency.value > 0.0)
    sink_->on_write(shard, start, start + cost.latency);
}

device::Ns StagePipeline::frontier() const {
  // Every clock commit (collect's stage/ET claims, charge_write) only moves
  // a clock forward, so the running maximum maintained at each commit
  // equals the full O(shards * stages) scan this used to perform — and the
  // admission-gated runtime probes the frontier per pump iteration.
  return frontier_;
}

void StagePipeline::set_reference_mode(bool on) {
  IMARS_REQUIRE(next_submit_seq_ == next_collect_seq_,
                "StagePipeline::set_reference_mode: batches in flight");
  reference_mode_ = on;
}

device::Ns StagePipeline::service_estimate(
    std::size_t slot, std::span<const device::Ns> stage_cost, std::size_t k,
    std::size_t batch) const {
  IMARS_REQUIRE(slot < specs_.size(),
                "StagePipeline::service_estimate: slot out of range");
  const PipelineSpec& spec = specs_[slot];
  device::Ns est = spec.critical_path(stage_cost);
  // The remaining batch pipelines behind the first query, paced by the
  // slowest stage unit.
  device::Ns bottleneck{0.0};
  for (const auto& c : stage_cost) bottleneck = device::max(bottleneck, c);
  if (batch > 1) est += bottleneck * static_cast<double>(batch - 1);
  if (spec.merge_topk) est += merge_cost(shards(), k).latency;
  return est;
}

device::Ns StagePipeline::service_floor(std::size_t slot,
                                        std::size_t k) const {
  IMARS_REQUIRE(slot < specs_.size(),
                "StagePipeline::service_floor: slot out of range");
  // A merging graph pays the single-slice merge latency on its output
  // stage no matter how idle the units are; a merge-free graph has no
  // structural minimum we can prove, so it claims nothing.
  if (!specs_[slot].merge_topk) return device::Ns{0.0};
  return merge_cost(1, k).latency;
}

std::shared_ptr<StagePipeline::BatchHandle::State>
StagePipeline::acquire_state(std::size_t queries, std::size_t stages,
                             const PipelineSpec& spec) {
  const std::size_t ns = shards();
  std::shared_ptr<BatchHandle::State> st;
  if (!reference_mode_ && !state_pool_.empty()) {
    st = std::move(state_pool_.back());
    state_pool_.pop_back();
  } else {
    st = std::make_shared<BatchHandle::State>();
  }
  st->stages = stages;
  // Structure-preserving reset: every inner vector of a pooled State keeps
  // its capacity (StageStats is a plain array, so the assigns below
  // allocate nothing), which makes the steady-state submit path
  // allocation-free. A fresh State allocates exactly what the former
  // assign-based setup did.
  st->home.resize(queries);
  st->init_items.resize(queries);
  for (auto& items : st->init_items) items.clear();
  st->rec.resize(queries);
  for (auto& query_rec : st->rec) {
    query_rec.resize(stages);
    for (std::size_t s = 0; s < stages; ++s) {
      auto& r = query_rec[s];
      r.rep_stats = StageStats{};
      r.out_items.clear();
      if (spec.stages[s].kind == StageKind::kSharded)
        r.shard_stats.assign(ns, StageStats{});
      else
        r.shard_stats.clear();
      for (auto& slice : r.slices) slice.clear();
      if (spec.stages[s].emit_topk > 0) {
        r.emit.resize(ns);
        for (auto& e : r.emit) e.clear();
      } else {
        r.emit.clear();
      }
    }
  }
  st->partials.resize(queries);
  for (auto& per_shard : st->partials) {
    per_shard.resize(ns);
    for (auto& partial : per_shard) partial.clear();
  }
  if (st->atomic_cap < queries * stages) {
    st->fan_in =
        std::make_unique<std::atomic<std::size_t>[]>(queries * stages);
    st->deps_left =
        std::make_unique<std::atomic<std::size_t>[]>(queries * stages);
    st->atomic_cap = queries * stages;
  }
  if (st->query_cap < queries) {
    st->stages_left = std::make_unique<std::atomic<std::size_t>[]>(queries);
    st->query_cap = queries;
  }
  // A pooled State's promise has already fired; re-arm it for this batch.
  st->done = std::promise<void>();
  st->done_future = st->done.get_future().share();
  st->failed.store(false);
  {
    std::lock_guard lock(st->err_mu);
    st->error = nullptr;
  }
  return st;
}

StagePipeline::BatchHandle StagePipeline::submit(Batch batch,
                                                 ServableBackend& servable,
                                                 std::size_t k,
                                                 std::size_t spec_idx,
                                                 bool urgent) {
  const std::size_t n = batch.size();
  const std::size_t ns = shards();
  IMARS_REQUIRE(n >= 1, "StagePipeline::submit: empty batch");
  IMARS_REQUIRE(servable.shards() == ns,
                "StagePipeline::submit: servable shard count mismatch");
  IMARS_REQUIRE(k >= 1, "StagePipeline::submit: k must be >= 1");
  IMARS_REQUIRE(spec_idx < specs_.size(),
                "StagePipeline::submit: spec slot out of range");
  const PipelineSpec& spec = specs_[spec_idx];
  const PipelineSpec::Graph& graph = graphs_[spec_idx];
  const PipelineSpec& sspec = servable.spec();
  IMARS_REQUIRE(sspec.stage_count() == spec.stage_count() &&
                    sspec.merge_topk == spec.merge_topk,
                "StagePipeline::submit: servable stage graph mismatch");
  for (std::size_t s = 0; s < spec.stage_count(); ++s)
    IMARS_REQUIRE(sspec.stages[s].kind == spec.stages[s].kind,
                  "StagePipeline::submit: servable stage kind mismatch");
  // The servable's declared edges must resolve to the slot's graph (an
  // implicit linear chain and its explicit declaration are interchangeable
  // — both resolve to the same Graph). Two linear chains with matching
  // stage count, kinds and merge flag resolve identically by construction,
  // so the hot per-batch path skips the re-resolution entirely.
  if (!sspec.linear_chain() || !spec.linear_chain())
    IMARS_REQUIRE(sspec.resolve() == graph,
                  "StagePipeline::submit: servable stage graph mismatch");

  const std::size_t stages = spec.stage_count();
  auto st = acquire_state(n, stages, spec);
  st->batch = std::move(batch);
  st->k = k;
  st->spec_idx = spec_idx;
  st->urgent = urgent;
  st->seq = next_submit_seq_++;
  for (std::size_t qi = 0; qi < n; ++qi) {
    st->stages_left[qi].store(stages);
    for (std::size_t s = 0; s < stages; ++s)
      st->deps(qi, s).store(graph.preds[s].size());
  }
  st->outstanding.store(n);
  {
    std::lock_guard lock(pending_mu_);
    std::erase_if(pending_, [](const auto& wp) { return wp.expired(); });
    pending_.push_back(st);
  }

  // Does any sharded stage partition the request's own item set?
  const bool needs_initial = [&] {
    for (std::size_t s = 0; s < stages; ++s)
      if (spec.stages[s].kind == StageKind::kSharded &&
          graph.item_sources[s].empty())
        return true;
    return false;
  }();

  // Optimized dispatch buffers the batch's source-stage tasks per shard
  // and hands each shard ONE composite task — one queue lock and worker
  // wake per shard per batch instead of per query (the futex wake is the
  // dominant host cost of fine-grained dispatch). The reference path keeps
  // the historical per-query enqueues. Host-side granularity only: tasks
  // run in the same per-shard order, and every timing decision is composed
  // later in collect().
  DeferredTasks* defer = nullptr;
  if (!reference_mode_) {
    dispatch_scratch_.resize(ns);
    for (auto& tasks : dispatch_scratch_) tasks.clear();
    defer = &dispatch_scratch_;
  }

  for (std::size_t qi = 0; qi < n; ++qi) {
    const Request& req = st->batch.requests[qi];
    // All placement routes through the ShardMap: queries spread over the
    // replicated stage's replicas by id, proportionally to capability.
    // Homes use the bucket ring only — row pins must not capture requests
    // whose ids collide with pinned item keys.
    st->home[qi] = map_.ring_of(req.id);
    if (needs_initial) st->init_items[qi] = servable.initial_items(req);
    // Kick off every source stage; the rest chain along the graph edges.
    for (std::size_t s = 0; s < stages; ++s)
      if (graph.preds[s].empty()) schedule_stage(st, servable, qi, s, defer);
  }

  if (defer != nullptr)
    for (std::size_t shard = 0; shard < ns; ++shard) {
      if (dispatch_scratch_[shard].empty()) continue;
      executors_.at(shard).submit(
          [this, st, &servable, shard,
           tasks = std::move(dispatch_scratch_[shard])] {
            for (const auto& [qi, stage] : tasks)
              run_stage_task(st, servable, qi, stage, shard);
          },
          st->urgent);
    }

  BatchHandle handle;
  handle.state_ = std::move(st);
  return handle;
}

void StagePipeline::schedule_stage(
    const std::shared_ptr<BatchHandle::State>& st, ServableBackend& servable,
    std::size_t qi, std::size_t stage, DeferredTasks* defer) {
  // Nothing in the chain may leak an exception: a throw between the
  // counter updates (e.g. bad_alloc in partition or task submission)
  // would leave the batch's counters above zero and hang collect()
  // forever, so any such failure marks the batch failed and structurally
  // completes the stage instead.
  try {
    schedule_stage_unchecked(st, servable, qi, stage, defer);
  } catch (...) {
    st->fail(std::current_exception());
    finish_stage(st, servable, qi, stage);
  }
}

void StagePipeline::run_stage_task(
    const std::shared_ptr<BatchHandle::State>& st, ServableBackend& servable,
    std::size_t qi, std::size_t stage, std::size_t shard) {
  const PipelineSpec& spec = specs_[st->spec_idx];
  const PipelineSpec::Graph& graph = graphs_[st->spec_idx];
  if (spec.stages[stage].kind == StageKind::kReplicated) {
    auto& r = st->rec[qi][stage];
    const auto& sources = graph.item_sources[stage];
    try {
      if (sources.empty()) {
        r.out_items = servable.run_replicated(
            stage, shard, st->batch.requests[qi], &r.rep_stats);
      } else if (sources.size() == 1) {
        // consume_items: the predecessor's produced items feed the stage.
        r.out_items = servable.run_replicated_fed(
            stage, shard, st->batch.requests[qi],
            st->rec[qi][sources.front()].out_items, &r.rep_stats);
      } else {
        std::vector<std::size_t> fed;
        for (std::size_t src : sources) {
          const auto& out = st->rec[qi][src].out_items;
          fed.insert(fed.end(), out.begin(), out.end());
        }
        r.out_items = servable.run_replicated_fed(
            stage, shard, st->batch.requests[qi], fed, &r.rep_stats);
      }
    } catch (...) {
      st->fail(std::current_exception());
    }
    finish_stage(st, servable, qi, stage);
    return;
  }

  const bool is_output = stage == graph.output_stage;
  const std::size_t emit_k = spec.stages[stage].emit_topk;
  auto& r = st->rec[qi][stage];
  try {
    auto partial = servable.run_sharded(
        stage, shard, st->batch.requests[qi], r.slices[shard],
        emit_k > 0 ? emit_k : st->k, &r.shard_stats[shard]);
    // Only the output stage's partials reach the top-k merge; an emitting
    // interior stage holds them per shard for the item-list merge below;
    // any other interior sharded stage (e.g. an embedding-gather tower)
    // feeds timing and successors, not results.
    if (is_output)
      st->partials[qi][shard] = std::move(partial);
    else if (emit_k > 0)
      r.emit[shard] = std::move(partial);
  } catch (...) {
    st->fail(std::current_exception());
  }
  if (st->fan(qi, stage).fetch_sub(1) == 1) {
    if (emit_k > 0 && !st->failed.load(std::memory_order_acquire)) {
      // Last slice joined: merge the per-shard partials (shard-order
      // concat, engine score order, truncate) into the stage's produced
      // item list — the work-item set its successors partition. The same
      // merge regardless of slice arrival order, so overlap cannot change
      // downstream routing.
      try {
        std::vector<recsys::ScoredItem> all;
        for (const auto& e : r.emit) all.insert(all.end(), e.begin(), e.end());
        std::sort(all.begin(), all.end(), score_order);
        if (all.size() > emit_k) all.resize(emit_k);
        r.out_items.clear();
        r.out_items.reserve(all.size());
        for (const auto& si : all) r.out_items.push_back(si.item);
      } catch (...) {
        st->fail(std::current_exception());
      }
    }
    finish_stage(st, servable, qi, stage);
  }
}

void StagePipeline::schedule_stage_unchecked(
    const std::shared_ptr<BatchHandle::State>& st, ServableBackend& servable,
    std::size_t qi, std::size_t stage, DeferredTasks* defer) {
  const PipelineSpec& spec = specs_[st->spec_idx];
  const PipelineSpec::Graph& graph = graphs_[st->spec_idx];
  // A failed batch skips its remaining functional work; stages still
  // complete structurally so the done promise fires (collect() rethrows).
  if (st->failed.load(std::memory_order_acquire)) {
    finish_stage(st, servable, qi, stage);
    return;
  }

  if (spec.stages[stage].kind == StageKind::kReplicated) {
    const std::size_t shard = st->home[qi];
    if (defer != nullptr) {
      (*defer)[shard].emplace_back(qi, stage);
      return;
    }
    executors_.at(shard).submit(
        [this, st, &servable, qi, stage, shard] {
          run_stage_task(st, servable, qi, stage, shard);
        },
        st->urgent);
    return;
  }

  // Sharded stage: partition the stage's input items (the replicated
  // source stages' outputs, or the request's own item set), fan out to
  // the owning shards, join on the last slice.
  auto& rec = st->rec[qi][stage];
  const auto& sources = graph.item_sources[stage];
  if (sources.empty()) {
    if (reference_mode_)
      rec.slices = map_.partition(st->init_items[qi]);
    else
      map_.partition_into(st->init_items[qi], rec.slices);
  } else if (sources.size() == 1) {
    const auto& items = st->rec[qi][sources.front()].out_items;
    if (reference_mode_)
      rec.slices = map_.partition(items);
    else
      map_.partition_into(items, rec.slices);
  } else {
    // A join over several replicated feeders consumes the concatenation
    // of their outputs, in declared edge order (deterministic).
    std::vector<std::size_t> items;
    for (std::size_t src : sources) {
      const auto& out = st->rec[qi][src].out_items;
      items.insert(items.end(), out.begin(), out.end());
    }
    if (reference_mode_)
      rec.slices = map_.partition(items);
    else
      map_.partition_into(items, rec.slices);
  }
  std::size_t nonempty = 0;
  for (const auto& s : rec.slices)
    if (!s.empty()) ++nonempty;
  if (nonempty == 0) {
    finish_stage(st, servable, qi, stage);
    return;
  }
  st->fan(qi, stage).store(nonempty);
  for (std::size_t shard = 0; shard < rec.slices.size(); ++shard) {
    if (rec.slices[shard].empty()) continue;
    if (defer != nullptr) {
      (*defer)[shard].emplace_back(qi, stage);
      continue;
    }
    executors_.at(shard).submit(
        [this, st, &servable, qi, stage, shard] {
          run_stage_task(st, servable, qi, stage, shard);
        },
        st->urgent);
  }
}

void StagePipeline::finish_stage(
    const std::shared_ptr<BatchHandle::State>& st, ServableBackend& servable,
    std::size_t qi, std::size_t stage) {
  const PipelineSpec::Graph& graph = graphs_[st->spec_idx];
  for (std::size_t succ : graph.succs[stage])
    if (st->deps(qi, succ).fetch_sub(1) == 1)
      schedule_stage(st, servable, qi, succ);
  if (st->stages_left[qi].fetch_sub(1) == 1)
    if (st->outstanding.fetch_sub(1) == 1) st->done.set_value();
}

StageStats StagePipeline::adjust_stage(
    const StageStats& measured, std::span<const RowAccess> accesses,
    HotEmbeddingCache* cache, const CacheTiming& timing,
    std::uint32_t table_base, bool reduce,
    HotEmbeddingCache::TierFlush* flushed_out) const {
  if (flushed_out != nullptr) *flushed_out = {};
  if (cache == nullptr) return measured;

  std::size_t pooled_hits = 0, pooled_first_hits = 0, row_hits = 0;
  std::size_t parallel_hits = 0;
  // Per parallel group: {id, accesses, hits} — a group's bank-max latency
  // term vanishes only when every one of its banks hits. Groups per stage
  // are few (scored impressions in flight), so a reused flat tally with a
  // linear scan replaces the former per-call std::map (node allocation per
  // group per stage per query); only the full-group COUNT feeds the
  // adjustment, so the tally order cannot affect results.
  group_scratch_.clear();
  // Pooled-workload in-crossbar reduction: rows can only accumulate on the
  // bitlines of the array they are RESIDENT IN, so a pooling scope — one
  // pooled feature chain (bag of rows walked first_in_table..), or one
  // parallel bank group — merges only the missed rows that land in the
  // same (table, CMA array) cell; each such cell returns ONE reduced
  // vector over the serialized RSC bus, saving the result return of every
  // missed row past the cell's first. Hits are excluded (they never
  // crossed the bus). The former model credited misses per scope without
  // the array split, overstating savings for scopes spread across arrays
  // (e.g. one-hot lookups in 26 distinct tables, which can never merge).
  reduce_scratch_.clear();
  const bool reduce_active = reduce &&
                             timing.reduce_saving.latency > device::Ns{0.0} &&
                             timing.array_rows > 0;
  // Pooled chain id: increments at each chain head (first_in_table), so
  // distinct features' bags never merge even when they alias a table.
  std::uint64_t chain = 0;
  const auto tally_reduce = [&](std::uint64_t scope, std::uint32_t table,
                                std::uint32_t row) {
    const auto array =
        static_cast<std::uint32_t>(row / timing.array_rows);
    auto it = std::find_if(reduce_scratch_.begin(), reduce_scratch_.end(),
                           [&](const ReduceCell& c) {
                             return c.scope == scope && c.table == table &&
                                    c.array == array;
                           });
    if (it == reduce_scratch_.end())
      reduce_scratch_.push_back({scope, table, array, 1});
    else
      ++it->misses;
  };
  for (const auto& a : accesses) {
    if (a.pooled && a.first_in_table) ++chain;
    const bool hit = cache->access(table_base + a.table, a.row);
    if (a.parallel_bank) {
      auto it = std::find_if(
          group_scratch_.begin(), group_scratch_.end(),
          [&](const auto& g) { return g[0] == a.parallel_group; });
      if (it == group_scratch_.end()) {
        group_scratch_.push_back({a.parallel_group, 0, 0});
        it = group_scratch_.end() - 1;
      }
      ++(*it)[1];
      if (hit) {
        ++(*it)[2];
        ++parallel_hits;
      } else if (reduce_active) {
        tally_reduce((std::uint64_t{a.parallel_group} << 1) | 1, a.table,
                     a.row);
      }
      continue;
    }
    if (hit) {
      if (!a.pooled)
        ++row_hits;
      else if (a.first_in_table)
        ++pooled_first_hits;
      else
        ++pooled_hits;
    } else if (a.pooled && reduce_active) {
      tally_reduce(chain << 1, a.table, a.row);
    }
  }
  std::size_t full_groups = 0;
  for (const auto& g : group_scratch_)
    if (g[1] > 0 && g[2] == g[1]) ++full_groups;
  std::uint64_t merged_rows = 0;
  for (const auto& c : reduce_scratch_)
    if (c.misses > 1) merged_rows += c.misses - 1;
  // Tiered memory: misses whose block was not warm-resident faulted whole
  // cold-tier blocks in — charge each at the block-fetch cost, in the new
  // ET-block category so the flat store's accounting is untouched.
  const std::uint64_t block_faults = cache->take_block_faults();
  // Write-back model: a miss admission above may have evicted a dirty row,
  // whose deferred array write happens NOW — charge the flush into this
  // stage's ET-write cost so it lands in hardware time. Read-only streams
  // never dirty a row, so flushed stays 0 and the accounting is untouched.
  const HotEmbeddingCache::TierFlush tier_flush = cache->take_flushed_tiers();
  if (flushed_out != nullptr) *flushed_out = tier_flush;
  const double flushed = static_cast<double>(tier_flush.rows);
  if (pooled_hits == 0 && pooled_first_hits == 0 && row_hits == 0 &&
      parallel_hits == 0 && flushed == 0.0 && block_faults == 0 &&
      merged_rows == 0)
    return measured;

  // Replace each hit's CMA+bus cost with the hot-buffer cost, clamped so an
  // adjustment can never drive the measured ET cost negative (the CPU
  // oracle charges no hardware cost at all).
  const double ph = static_cast<double>(pooled_hits);
  const double pfh = static_cast<double>(pooled_first_hits);
  const double rh = static_cast<double>(row_hits);
  StageStats adjusted = measured;
  OpCost& et = adjusted.at(OpKind::kEtLookup);
  const device::Ns lat_removed = timing.pooled_miss.latency * ph +
                                 timing.pooled_first_miss.latency * pfh +
                                 timing.row_miss.latency * rh;
  const device::Pj pj_removed = timing.pooled_miss.energy * ph +
                                timing.pooled_first_miss.energy * pfh +
                                timing.row_miss.energy * rh;
  const double hits = ph + pfh + rh;
  // Parallel-bank hits (RowAccess::parallel_bank): the stage's measured
  // latency holds one bank-max term per group, so latency is credited
  // only for groups whose EVERY bank hit — that group's array read
  // vanishes and the buffer reads that replace it stay parallel (one
  // hit-latency term per group). Energy is credited per hit (banks are
  // summed there).
  const device::Ns parallel_lat_removed =
      timing.row_miss.latency * static_cast<double>(full_groups);
  const device::Ns parallel_lat_added =
      timing.hit.latency * static_cast<double>(full_groups);
  et.latency = device::max(et.latency - lat_removed - parallel_lat_removed,
                           device::Ns{0.0}) +
               timing.hit.latency * hits + parallel_lat_added;
  const double pll = static_cast<double>(parallel_hits);
  et.energy = device::Pj{std::max(
                  0.0, (et.energy - pj_removed -
                        timing.row_miss.energy * pll)
                           .value)} +
              timing.hit.energy * (hits + pll);
  if (merged_rows > 0) {
    // Subtract the reduced-away result returns, clamped like the hit
    // credits above so the ET cost can never go negative.
    const double m = static_cast<double>(merged_rows);
    et.latency = device::max(et.latency - timing.reduce_saving.latency * m,
                             device::Ns{0.0});
    et.energy = device::Pj{std::max(
        0.0, (et.energy - timing.reduce_saving.energy * m).value)};
  }
  if (flushed > 0.0) {
    OpCost& wr = adjusted.at(OpKind::kEtWrite);
    wr.latency += timing.row_write.latency * flushed;
    wr.energy += timing.row_write.energy * flushed;
    if (tier_flush.cold > 0) {
      // Flushes landing in the cold tier stream past the warm arrays.
      const double cold = static_cast<double>(tier_flush.cold);
      wr.latency += timing.cold_flush.latency * cold;
      wr.energy += timing.cold_flush.energy * cold;
    }
  }
  if (block_faults > 0) {
    OpCost& bf = adjusted.at(OpKind::kEtBlock);
    const double f = static_cast<double>(block_faults);
    bf.latency += timing.block_fetch.latency * f;
    bf.energy += timing.block_fetch.energy * f;
  }
  return adjusted;
}

OpCost StagePipeline::merge_cost(std::size_t slices, std::size_t k) const {
  // Each contributing shard ships k (id, score) pairs (8 bytes each) over
  // the RSC bus; the controller then runs a k-way tournament across slices.
  const std::size_t bytes = 8 * std::max<std::size_t>(k, 1);
  const std::size_t cycles_per_shard =
      (bytes * 8 + profile_.rsc_bus_bits - 1) / profile_.rsc_bus_bits;
  const double transfers =
      static_cast<double>(cycles_per_shard) * static_cast<double>(slices);
  // ceil(log2(slices)) tournament rounds; a single slice needs no merge.
  double rounds = 0.0;
  for (std::size_t span = 1; span < slices; span *= 2) rounds += 1.0;
  const double selects = static_cast<double>(k) * rounds;
  OpCost cost;
  cost.latency = profile_.rsc_cycle * transfers +
                 profile_.controller_cycle * selects;
  cost.energy = profile_.rsc_energy * transfers +
                profile_.controller_energy * selects;
  return cost;
}

std::vector<StagePipeline::QueryResult> StagePipeline::collect(
    BatchHandle handle, ServableBackend& servable, HotEmbeddingCache* cache,
    std::span<const CacheTiming> timing) {
  std::vector<QueryResult> results;
  collect_into(std::move(handle), servable, cache, timing, results);
  return results;
}

void StagePipeline::collect_into(BatchHandle handle,
                                 ServableBackend& servable,
                                 HotEmbeddingCache* cache,
                                 std::span<const CacheTiming> timing,
                                 std::vector<QueryResult>& results) {
  IMARS_REQUIRE(handle.valid(), "StagePipeline::collect: invalid handle");
  IMARS_REQUIRE(handle.state_->seq == next_collect_seq_,
                "StagePipeline::collect: handles must be collected in "
                "submission order");
  ++next_collect_seq_;
  IMARS_REQUIRE(timing.size() == 1 || timing.size() == shards(),
                "StagePipeline::collect: one CacheTiming, or one per shard");
  const auto timing_of = [&](std::size_t shard) -> const CacheTiming& {
    return timing.size() == 1 ? timing.front() : timing[shard];
  };
  auto st = std::move(handle.state_);
  st->done_future.wait();
  {
    std::lock_guard lock(st->err_mu);
    if (st->error) std::rethrow_exception(st->error);
  }

  const std::size_t n = st->batch.size();
  const std::size_t ns = shards();
  const PipelineSpec& spec = specs_[st->spec_idx];
  const PipelineSpec::Graph& graph = graphs_[st->spec_idx];
  const std::size_t base = offsets_[st->spec_idx];
  // Co-resident servables must never alias each other's hot-cache rows.
  const std::uint32_t table_base =
      static_cast<std::uint32_t>(st->spec_idx) << 16;
  const std::size_t stages = spec.stage_count();

  // Deterministic accounting in batch order: cache rewrite of ET costs,
  // then the event model (per-shard multi-stage pipeline with shared
  // ET-bank contention, as in core/throughput.hpp) composes hardware time.
  // Each query's stages are walked in topological order; a stage becomes
  // ready when its last predecessor ends, so the query's completion is its
  // critical path through the graph (bit-identical to the old chain walk
  // on linear specs, where ready is simply the previous stage's end).
  results.resize(n);
  stage_end_scratch_.resize(stages);
  auto& stage_end = stage_end_scratch_;
  // The top-k tie-break (score_order: score desc, item asc) is a strict
  // total order over distinct items, so any correct sorting algorithm
  // yields one answer — the optimized partial_sort below is
  // value-identical to the reference full sort.
  for (std::size_t qi = 0; qi < n; ++qi) {
    const Request& req = st->batch.requests[qi];
    QueryResult& out = results[qi];
    // Reused QueryResult slots carry the previous batch's values; every
    // field is either assigned below or reset here (the sharded walk
    // ACCUMULATES into stage_stats / routed counters, so those must start
    // from zero).
    out.request = req;
    out.batch_id = st->batch.id;
    out.batch_size = n;
    out.dispatch = st->batch.dispatch;
    out.home_shard = st->home[qi];
    out.stage_latency.resize(stages);
    out.stage_stats.assign(stages, StageStats{});
    out.work_items = 0;
    out.routed_items = 0;
    out.pinned_items = 0;

    device::Ns complete = st->batch.dispatch;
    for (std::size_t s : graph.order) {
      const auto& rec = st->rec[qi][s];
      device::Ns ready = st->batch.dispatch;
      for (std::size_t p : graph.preds[s])
        ready = device::max(ready, stage_end[p]);

      // Row-access lists exist only to feed the cache; skip them when no
      // cache is configured. The optimized path appends into a reused
      // scratch buffer (accesses_into); the reference path materializes
      // the pre-optimization per-stage vector.
      const auto stage_accesses =
          [&](std::size_t stage, std::span<const std::size_t> slice,
              std::vector<RowAccess>& ref_store)
          -> std::span<const RowAccess> {
        if (cache == nullptr) return {};
        if (reference_mode_) {
          ref_store = servable.accesses(stage, req, slice);
          return ref_store;
        }
        access_scratch_.clear();
        servable.accesses_into(stage, req, slice, access_scratch_);
        return access_scratch_;
      };

      if (spec.stages[s].kind == StageKind::kReplicated) {
        const std::size_t home = st->home[qi];
        // A consume_items stage's row traffic depends on WHICH candidates
        // its predecessors produced, so its fed item set doubles as the
        // accesses() slice (empty for ordinary replicated stages — the
        // pre-funnel contract).
        std::span<const std::size_t> fed{};
        const auto& fed_sources = graph.item_sources[s];
        if (fed_sources.size() == 1) {
          fed = st->rec[qi][fed_sources.front()].out_items;
        } else if (fed_sources.size() > 1) {
          fed_scratch_.clear();
          for (std::size_t src : fed_sources) {
            const auto& items = st->rec[qi][src].out_items;
            fed_scratch_.insert(fed_scratch_.end(), items.begin(),
                                items.end());
          }
          fed = fed_scratch_;
        }
        HotEmbeddingCache::TierFlush flushed;
        std::vector<RowAccess> ref_rows;
        const StageStats adj =
            adjust_stage(rec.rep_stats, stage_accesses(s, fed, ref_rows),
                         cache, timing_of(home), table_base,
                         spec.stages[s].reduce, &flushed);
        out.stage_stats[s] = adj;
        const device::Ns t = adj.total().latency;
        // Flush write-backs (kEtWrite) occupy the same in-memory arrays as
        // the lookups, so they extend the shared ET-bank claim — as do
        // cold-tier block fetches (kEtBlock), which stream through the
        // same banks; both are zero outside their features.
        const device::Ns et = adj.at(OpKind::kEtLookup).latency +
                              adj.at(OpKind::kEtWrite).latency +
                              adj.at(OpKind::kEtBlock).latency;
        ShardClocks& c = clocks_[home];
        const device::Ns unit_free = c.stage_free[base + s];
        const device::Ns shared_free = c.shared_free;
        // A stage with no ET traffic (e.g. a pure crossbar tower) neither
        // waits on nor claims the shard's shared ET banks — that is what
        // lets parallel feature towers genuinely overlap. Every pre-DAG
        // stage carries ET cost, so their timing is unchanged.
        const device::Ns start =
            et.value > 0.0 ? std::max({ready, unit_free, shared_free})
                           : std::max(ready, unit_free);
        const device::Ns end = start + t;
        c.stage_free[base + s] = end;
        if (et.value > 0.0) c.shared_free = start + et;
        // et <= t, so `end` dominates both commits.
        frontier_ = device::max(frontier_, end);
        usage_[home].stage_busy[base + s] += t;
        out.stage_latency[s] = end - ready;
        stage_end[s] = end;
        complete = device::max(complete, end);
        if (sink_ != nullptr) {
          if (flushed.rows > 0)
            sink_->on_cache_flush(home, start, flushed.rows, flushed.warm,
                                  flushed.cold);
          StageSpan span;
          span.slot = st->spec_idx;
          span.stage = s;
          span.name = spec.stages[s].name;
          span.shard = home;
          span.query = req.id;
          span.batch = st->batch.id;
          span.ready = ready;
          span.start = start;
          span.end = end;
          span.unit_wait = device::max(unit_free - ready, device::Ns{0.0});
          span.et_wait =
              et.value > 0.0
                  ? device::max(shared_free - device::max(ready, unit_free),
                                device::Ns{0.0})
                  : device::Ns{0.0};
          span.et_busy = et;
          sink_->on_stage(span);
        }
        continue;
      }

      // Sharded stage: slices run concurrently across shards; each occupies
      // its shard's stage unit and ET banks.
      device::Ns end = ready;
      std::size_t contributing = 0;
      for (std::size_t shard = 0; shard < ns; ++shard) {
        if (rec.slices.empty() || rec.slices[shard].empty()) continue;
        ++contributing;
        HotEmbeddingCache::TierFlush flushed;
        std::vector<RowAccess> ref_rows;
        const StageStats adj = adjust_stage(
            rec.shard_stats[shard],
            stage_accesses(s, rec.slices[shard], ref_rows), cache,
            timing_of(shard), table_base, spec.stages[s].reduce, &flushed);
        out.stage_stats[s].merge(adj);
        const device::Ns t = adj.total().latency;
        const device::Ns et = adj.at(OpKind::kEtLookup).latency +
                              adj.at(OpKind::kEtWrite).latency +
                              adj.at(OpKind::kEtBlock).latency;
        ShardClocks& c = clocks_[shard];
        const device::Ns unit_free = c.stage_free[base + s];
        const device::Ns shared_free = c.shared_free;
        const device::Ns start =
            et.value > 0.0 ? std::max({ready, unit_free, shared_free})
                           : std::max(ready, unit_free);
        const device::Ns slice_end = start + t;
        c.stage_free[base + s] = slice_end;
        if (et.value > 0.0) c.shared_free = start + et;
        frontier_ = device::max(frontier_, slice_end);
        usage_[shard].stage_busy[base + s] += t;
        end = device::max(end, slice_end);
        if (sink_ != nullptr) {
          if (flushed.rows > 0)
            sink_->on_cache_flush(shard, start, flushed.rows, flushed.warm,
                                  flushed.cold);
          StageSpan span;
          span.slot = st->spec_idx;
          span.stage = s;
          span.name = spec.stages[s].name;
          span.shard = shard;
          span.query = req.id;
          span.batch = st->batch.id;
          span.ready = ready;
          span.start = start;
          span.end = slice_end;
          span.unit_wait = device::max(unit_free - ready, device::Ns{0.0});
          span.et_wait =
              et.value > 0.0
                  ? device::max(shared_free - device::max(ready, unit_free),
                                device::Ns{0.0})
                  : device::Ns{0.0};
          span.et_busy = et;
          sink_->on_stage(span);
        }
      }
      // Placement telemetry: how much of the routed traffic the pin layer
      // placed. Skipped entirely on pin-free maps (read-only parity).
      if (map_.has_pins()) {
        for (const auto& slice : rec.slices)
          for (std::size_t key : slice) {
            ++out.routed_items;
            if (map_.is_pinned(key)) ++out.pinned_items;
          }
      }
      if (spec.stages[s].emit_topk > 0) {
        // Emitting stage: the per-shard partials ship to the controller
        // and merge into the global top-emit_topk item list BEFORE any
        // successor can start — the merge latency is on the produced item
        // set's critical path, so it lands in stage_end[s].
        const OpCost merge = merge_cost(
            std::max<std::size_t>(contributing, 1), spec.stages[s].emit_topk);
        out.stage_stats[s].at(OpKind::kComm) += merge;
        const device::Ns merge_start = end;
        end = end + merge.latency;
        if (sink_ != nullptr)
          sink_->on_stage_merge(st->spec_idx, s, spec.stages[s].name, req.id,
                                st->batch.id, merge_start, end);
      }
      if (s == graph.output_stage) {
        out.work_items = 0;
        for (const auto& slice : rec.slices) out.work_items += slice.size();
        if (spec.merge_topk) {
          // Merge unit: global top-k from the per-shard top-k lists.
          const OpCost merge =
              merge_cost(std::max<std::size_t>(contributing, 1), st->k);
          out.stage_stats[s].at(OpKind::kComm) += merge;
          end = end + merge.latency;
        }
      }
      out.stage_latency[s] = end - ready;
      stage_end[s] = end;
      complete = device::max(complete, end);
    }
    out.complete = complete;
    // Graphs without a sharded stage report the last replicated stage's
    // item output (the pre-DAG "current item set" semantics).
    if (graph.output_stage == PipelineSpec::kNoStage) {
      for (std::size_t s : graph.order)
        if (spec.stages[s].kind == StageKind::kReplicated)
          out.work_items = st->rec[qi][s].out_items.size();
    }

    if (reference_mode_) {
      std::vector<recsys::ScoredItem> all;
      for (std::size_t shard = 0; shard < ns; ++shard)
        all.insert(all.end(), st->partials[qi][shard].begin(),
                   st->partials[qi][shard].end());
      std::sort(all.begin(), all.end(), score_order);
      if (all.size() > st->k) all.resize(st->k);
      out.topk = std::move(all);
    } else {
      // Concat into reused scratch, order only the k survivors.
      topk_scratch_.clear();
      for (std::size_t shard = 0; shard < ns; ++shard)
        topk_scratch_.insert(topk_scratch_.end(),
                             st->partials[qi][shard].begin(),
                             st->partials[qi][shard].end());
      const std::size_t keep = std::min(st->k, topk_scratch_.size());
      std::partial_sort(topk_scratch_.begin(),
                        topk_scratch_.begin() +
                            static_cast<std::ptrdiff_t>(keep),
                        topk_scratch_.end(), score_order);
      out.topk.assign(topk_scratch_.begin(),
                      topk_scratch_.begin() +
                          static_cast<std::ptrdiff_t>(keep));
    }
  }

  if (!reference_mode_) {
    // Close the allocate/free cycle: the batch's request storage flows back
    // to its producer (set_request_recycler), and the State — with all its
    // per-query buffers — parks in the pool for the next submit. Its
    // pending_ entry is erased NOW: a pooled State never expires, so
    // leaving the weak pointer behind would grow the list without bound.
    if (request_recycler_) request_recycler_(std::move(st->batch.requests));
    st->batch.requests.clear();
    {
      std::lock_guard lock(pending_mu_);
      std::erase_if(pending_, [&](const auto& wp) {
        return wp.expired() || wp.lock() == st;
      });
    }
    state_pool_.push_back(std::move(st));
  }
}

std::vector<StagePipeline::QueryResult> StagePipeline::execute(
    const Batch& batch, ServableBackend& servable, std::size_t k,
    HotEmbeddingCache* cache, std::span<const CacheTiming> timing) {
  return collect(submit(batch, servable, k), servable, cache, timing);
}

}  // namespace imars::serve
