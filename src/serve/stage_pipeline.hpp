// Backend-agnostic staged-pipeline serving engine.
//
// PR 1's ShardRouter hard-coded one workload: a two-unit filter/rank
// pipeline over FilterRankBackend replicas with `item % N` placement. This
// engine generalizes all three axes:
//
//   * the *stage graph* is a descriptor (PipelineSpec): a DAG of stages,
//     each either replicated (the whole query runs on its home shard) or
//     sharded (the query's work items are partitioned across shards and
//     the partial results merged). Each stage declares its predecessor
//     stages; a stage's task becomes ready when ALL predecessors complete,
//     so independent branches (e.g. DLRM's dense bottom-MLP tower next to
//     the 26 embedding gathers) dispatch concurrently and a join waits on
//     its last arriving edge. A spec that declares no edges is a linear
//     chain (each stage depends on the previous one) and is timed exactly
//     as the pre-DAG engine timed it. Each stage owns one event-model unit
//     per shard; every stage with embedding-table traffic contends for its
//     shard's shared ET banks — the same contention rule as
//     core/throughput.hpp — while ET-free stages (pure crossbar towers)
//     overlap freely.
//   * the *workload* is an abstract ServableBackend: the two-stage
//     YouTubeDNN flow (serve/shard_router.hpp) and the single-stage
//     DLRM/Criteo CTR flow (serve/servable_ctr.hpp) both serve through the
//     identical batcher/cache/engine/report path.
//   * *placement* routes through a ShardMap (capability-weighted disjoint
//     cover) instead of a modulo, so heterogeneous fabrics get item slices
//     proportional to measured stage throughput.
//
// Execution is split into submit() and collect(). submit() enqueues the
// batch's functional work onto the per-shard worker threads and returns
// immediately: a query's stages chain along the graph edges — when a
// stage's task finishes it decrements each successor's pending-edge count
// and schedules the ones that became ready, with no batch-wide barrier —
// so fan-out branches run concurrently and a later batch's early stages
// overlap an earlier batch's late stages on the host threads (the hardware
// event model already pipelines; PR 1 only phased the host loop).
// collect() then composes hardware time deterministically in submission
// order: cache rewrite of ET costs first, then the per-shard pipeline
// clocks walked in deterministic topological order — a query's completion
// is its critical path through the graph. Because every timing decision
// happens in collect(), overlapped and phased execution produce
// bit-identical reports.
//
// Multi-tenant fabrics (PR 3): one pipeline can host SEVERAL co-resident
// servables — e.g. an interactive filter/rank tenant next to a bulk CTR
// tenant — by constructing it with one PipelineSpec per servable and
// passing the servable's slot to submit(). Each servable's stages own
// their own per-shard event-model units (the stage clocks concatenate in
// slot order), but ALL slots of a shard contend for its single shared
// ET-bank clock: co-resident tenants really fight over the in-memory
// arrays, which is what the QoS batcher arbitrates. Hot-cache bookkeeping
// namespaces RowAccess table keys per slot so tenants never alias rows.
#pragma once

#include <array>
#include <atomic>
#include <cstddef>
#include <functional>
#include <future>
#include <memory>
#include <mutex>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "core/perf_model.hpp"
#include "device/profile.hpp"
#include "recsys/types.hpp"
#include "serve/batcher.hpp"
#include "serve/executor.hpp"
#include "serve/hot_cache.hpp"
#include "serve/observe.hpp"
#include "serve/serve_stats.hpp"
#include "serve/shard_map.hpp"

namespace imars::serve {

/// Device-anchored costs the cache substitutes per ET row access.
struct CacheTiming {
  recsys::OpCost hit;          ///< hot-row buffer read
  recsys::OpCost row_miss;     ///< RAM-mode row fetch + RSC transfer
  recsys::OpCost pooled_miss;  ///< per-row in-array accumulate increment
  /// The first row of a table's pooled chain costs only the read (no
  /// write-back + add yet; PerfModel::et_lookup charges read*L +
  /// (write+add)*(L-1)).
  recsys::OpCost pooled_first_miss;
  /// One ET row written to its CMA array + RSC transfer: the update
  /// write-through cost and the dirty-row flush cost (write-back model).
  recsys::OpCost row_write;
  /// One update absorbed into the periphery hot-row buffer (dirty fill).
  recsys::OpCost buffer_fill;
  /// One cold-tier block fault (PerfModel::cold_block_fetch over the
  /// cache's cold_block_rows); zero with tiering disabled.
  recsys::OpCost block_fetch;
  /// Extra stream-out of a dirty row flushed past the warm arrays into
  /// the cold bulk tier (on top of row_write); zero with tiering disabled.
  recsys::OpCost cold_flush;
  /// Per-merged-row saving of in-crossbar embedding reduction
  /// (PerfModel::reduction_saving); zero unless the device profile
  /// declares the capability.
  recsys::OpCost reduce_saving;
  /// Rows per CMA array (ArchConfig::cma_rows): in-crossbar reduction can
  /// only merge rows RESIDENT IN THE SAME ARRAY (the accumulate happens on
  /// the array's bitlines), so the pooled-workload model groups a feature's
  /// missed rows by `row / array_rows` under the sequential row placement.
  /// Zero disables reduction accounting entirely.
  std::size_t array_rows = 0;

  static CacheTiming from_model(const core::PerfModel& model,
                                std::size_t cold_block_rows = 0) {
    const auto& read = model.profile().cma_read;
    return CacheTiming{model.cached_row(),
                       model.row_fetch(),
                       model.pooled_row(),
                       recsys::OpCost{read.latency, read.energy},
                       model.row_write(),
                       model.buffer_fill(),
                       model.cold_block_fetch(cold_block_rows),
                       cold_block_rows > 0 ? model.cold_flush_extra()
                                           : recsys::OpCost{},
                       model.reduction_saving(),
                       model.arch().cma_rows};
  }
};

/// One ET row touched by a query (cache bookkeeping granularity).
struct RowAccess {
  std::uint32_t table = 0;
  std::uint32_t row = 0;
  bool pooled = false;  ///< pooled lookup (vs RAM-mode row fetch)
  bool first_in_table = false;  ///< first row of its table's pooled chain
  /// The row was read by one of several banks operating in parallel (the
  /// stage latency holds the max over banks, not the sum — e.g. DLRM's 26
  /// one-hot lookups). A hit then credits energy per row, but latency only
  /// when EVERY access of the row's `parallel_group` hits (the bank max
  /// vanishes only once no bank reads an array).
  bool parallel_bank = false;
  /// Groups parallel accesses that share one bank-max term (e.g. one
  /// scored impression); meaningful only when `parallel_bank` is set.
  std::uint32_t parallel_group = 0;
};

/// How one pipeline stage spreads over the shard fabric.
enum class StageKind : std::uint8_t {
  kReplicated,  ///< whole query on its home shard (any replica can serve)
  kSharded,     ///< work items partitioned across shards via the ShardMap
};

struct StageSpec {
  std::string name;
  StageKind kind = StageKind::kReplicated;
  /// Names of predecessor stages. If NO stage of the graph declares any,
  /// the spec is a linear chain — stage s depends on stage s-1, the
  /// pre-DAG behavior, timed identically. Otherwise the edges are exactly
  /// as declared and a stage with an empty list is a source (ready at
  /// batch dispatch).
  std::vector<std::string> deps;
  /// The stage's lookups may be pooled inside the array (in-crossbar
  /// embedding reduction): with a device profile declaring
  /// in_crossbar_reduction, each pooling scope's missed rows that land in
  /// the SAME CMA array return one reduced vector over the RSC bus instead
  /// of one transfer per row (pooled-workload model — rows of a pooled
  /// feature chain or a parallel bank group merge only with same-array
  /// neighbours). Inert (timed identically) unless the profile opts in.
  bool reduce = false;
  /// Non-zero on a SHARDED stage makes it a *producing* stage: its per-
  /// shard partials are merged (score desc, item asc) into a global
  /// top-`emit_topk` ITEM LIST that downstream stages consume as their
  /// work-item set — the funnel's "retrieval output feeds rank" shape.
  /// The merge is charged like the output merge (RSC ship + tournament)
  /// and the stage may not be the graph's output stage. Requires an
  /// explicit dependency graph. Zero (default) = ordinary sharded stage.
  std::size_t emit_topk = 0;
  /// On a REPLICATED stage: the stage consumes the item sets produced by
  /// its predecessors (replicated outputs and/or emitted top-k lists,
  /// declared edge order) instead of deriving work from the request alone;
  /// the engine routes the fed items through run_replicated_fed() and
  /// passes them as the accesses() slice. Requires an explicit dependency
  /// graph with at least one producing predecessor. Default off.
  bool consume_items = false;
};

/// Stage graph of a workload: a DAG of replicated/sharded stages. A
/// sharded stage partitions the work items produced by its replicated
/// direct predecessors (concatenated in declared edge order) — or, with no
/// replicated predecessor, the servable's initial_items(); on implicit
/// linear chains the nearest preceding replicated stage feeds it, exactly
/// the pre-DAG "replicated stages (re)define the item set" rule.
struct PipelineSpec {
  static constexpr std::size_t kNoStage = static_cast<std::size_t>(-1);

  std::vector<StageSpec> stages;
  /// The output stage's partials ship to the merge unit for a k-way
  /// tournament (the filter/rank flow); single-shot workloads (CTR) skip it.
  bool merge_topk = false;

  std::size_t stage_count() const noexcept { return stages.size(); }

  /// True when no stage declares dependencies (the implicit linear chain).
  bool linear_chain() const noexcept {
    for (const auto& s : stages)
      if (!s.deps.empty()) return false;
    return true;
  }

  /// The resolved, validated dependency structure of a spec.
  struct Graph {
    std::vector<std::vector<std::size_t>> preds;  ///< per stage, resolved
    std::vector<std::vector<std::size_t>> succs;
    /// Deterministic topological order (Kahn's algorithm, lowest stage
    /// index first among ready stages); a linear chain yields 0,1,2,...
    std::vector<std::size_t> order;
    /// Per stage: the producing stages whose output items the stage
    /// consumes — for a sharded stage the replicated and emitting
    /// (emit_topk) direct predecessors it partitions (empty =
    /// servable.initial_items); for a consume_items replicated stage the
    /// producing predecessors feeding run_replicated_fed(). Empty for
    /// ordinary replicated stages.
    std::vector<std::vector<std::size_t>> item_sources;
    /// The stage producing the query's scored partials (and feeding the
    /// merge unit): the last sharded stage in topological order, or
    /// kNoStage when the graph has none.
    std::size_t output_stage = kNoStage;

    bool operator==(const Graph&) const = default;
  };

  /// Resolves and validates the graph. Throws imars::Error on: an empty
  /// graph, duplicate or empty stage names (when edges are declared),
  /// edges naming unknown stages, dependency cycles, or `merge_topk` on a
  /// graph with no sharded stage.
  Graph resolve() const;

  /// Longest dispatch-to-done path through the graph under the given
  /// per-stage costs (one entry per stage, spec order; merge excluded).
  /// A linear chain reduces to the plain stage-cost sum.
  device::Ns critical_path(std::span<const device::Ns> stage_cost) const;
};

/// A workload adapter served by the engine. Implementations own one backend
/// replica per shard; the engine guarantees each replica is only ever
/// touched from its shard's worker thread. All methods must be safe to call
/// concurrently for *distinct* shards.
class ServableBackend {
 public:
  virtual ~ServableBackend() = default;

  virtual std::string_view name() const = 0;
  virtual const PipelineSpec& spec() const = 0;
  virtual std::size_t shards() const = 0;

  /// Work-item keys entering the pipeline when the FIRST stage is sharded
  /// (derived from the request alone; e.g. the impression itself for CTR).
  /// Ignored when the first stage is replicated.
  virtual std::vector<std::size_t> initial_items(const Request& req) const {
    (void)req;
    return {};
  }

  /// Runs replicated stage `stage` of `req` on shard `shard`'s replica and
  /// returns the work-item keys the following sharded stage partitions
  /// (empty when no sharded stage follows). Appends measured hardware costs
  /// to `stats`.
  virtual std::vector<std::size_t> run_replicated(
      std::size_t stage, std::size_t shard, const Request& req,
      recsys::StageStats* stats) = 0;

  /// Runs replicated stage `stage` of `req` over the item set `fed`
  /// produced by the stage's graph predecessors (StageSpec::consume_items):
  /// the funnel's filter narrowing the retrieval stage's candidates. Only
  /// called for stages with resolved item sources; the default ignores the
  /// fed items and delegates to run_replicated().
  virtual std::vector<std::size_t> run_replicated_fed(
      std::size_t stage, std::size_t shard, const Request& req,
      std::span<const std::size_t> fed, recsys::StageStats* stats) {
    (void)fed;
    return run_replicated(stage, shard, req, stats);
  }

  /// Runs sharded stage `stage` over `slice` on shard `shard`'s replica and
  /// returns the slice's scored partial results (best first, at most `k` —
  /// the merge unit builds the global top-k from the per-shard lists).
  virtual std::vector<recsys::ScoredItem> run_sharded(
      std::size_t stage, std::size_t shard, const Request& req,
      std::span<const std::size_t> slice, std::size_t k,
      recsys::StageStats* stats) = 0;

  /// ET rows stage `stage` of `req` touches (hot-cache bookkeeping).
  /// `slice` is the shard's slice for sharded stages, empty for replicated
  /// ones. Called from collect() — single-threaded, deterministic order.
  virtual std::vector<RowAccess> accesses(
      std::size_t stage, const Request& req,
      std::span<const std::size_t> slice) const = 0;

  /// Appends the same rows accesses() would return to `out` — the engine's
  /// optimized collect() path feeds a reused scratch buffer so the per-
  /// (stage, shard, query) vector allocation disappears from the host hot
  /// path. The default delegates to accesses() (still one allocation);
  /// servables serving high-rate streams should override it to append
  /// directly and implement accesses() on top of it.
  virtual void accesses_into(std::size_t stage, const Request& req,
                             std::span<const std::size_t> slice,
                             std::vector<RowAccess>& out) const {
    const auto rows = accesses(stage, req, slice);
    out.insert(out.end(), rows.begin(), rows.end());
  }

  /// ET rows an embedding-update request (Request::is_update) writes —
  /// e.g. the user's profile rows after an interaction. The runtime routes
  /// them through the write-back cache model instead of dispatching the
  /// request as a query. Default: no update traffic (updates are inert).
  virtual std::vector<RowAccess> update_accesses(const Request& req) const {
    (void)req;
    return {};
  }

  /// Work-item keys `req` would route through the ShardMap, for
  /// frequency-profiling a PlacementPolicy warmup window (e.g. the filter
  /// stage's candidate items). May run replica 0 functionally on the
  /// calling thread, so it must NOT be called while a batch is in flight —
  /// the runtime profiles before serving, like stage_cost_estimate().
  /// Default: the request's initial item set.
  virtual std::vector<std::size_t> profile_items(const Request& req) {
    return initial_items(req);
  }

  /// Per-stage hardware-latency estimate of one query's pass through each
  /// stage (index-aligned with spec().stages) when served at top-`k`,
  /// typically probed on shard 0's replica against the bound population.
  /// Empty = unknown (callers keep their configured constants). Runs the
  /// replica on the calling thread, so it must NOT be called while a batch
  /// is in flight — the runtime probes before serving, which keeps the
  /// derived QoS service estimates completion-independent.
  virtual std::vector<device::Ns> stage_cost_estimate(std::size_t k) {
    (void)k;
    return {};
  }
};

/// The generic engine: per-shard worker threads + per-stage event clocks.
class StagePipeline {
 public:
  /// Per-query outcome of a batch execution. Carries the originating
  /// request and batch coordinates so callers need not retain their own
  /// copy of the submitted batch.
  struct QueryResult {
    Request request;             ///< the request this result answers
    std::size_t batch_id = 0;
    std::size_t batch_size = 0;
    device::Ns dispatch;         ///< batch close/dispatch time
    std::vector<recsys::ScoredItem> topk;  ///< merged, best first, <= k
    std::size_t work_items = 0;  ///< items entering the output sharded stage
    std::size_t home_shard = 0;  ///< shard that ran the replicated stage(s)
    device::Ns complete;  ///< critical path through the graph (merge done)
    /// Per stage (spec order): completion minus graph-ready time — on a
    /// linear chain exactly the stage's serial latency share.
    std::vector<device::Ns> stage_latency;
    std::vector<recsys::StageStats> stage_stats;  ///< cache-adjusted
    /// Work items this query routed through the ShardMap across ALL
    /// sharded stages, and how many of them a PlacementPolicy pin placed
    /// (both zero when the map has no pins — the count is skipped).
    std::size_t routed_items = 0;
    std::size_t pinned_items = 0;
  };

  /// An in-flight batch: functional work enqueued, accounting pending.
  class BatchHandle {
   public:
    BatchHandle() = default;
    BatchHandle(BatchHandle&&) = default;
    BatchHandle& operator=(BatchHandle&&) = default;
    bool valid() const noexcept { return state_ != nullptr; }
    /// Blocks until the batch's functional work has finished on the shard
    /// executors. collect() waits implicitly; calling this first lets the
    /// driver separate worker-completion wait from host composition time
    /// in its self-profile.
    void wait() const;

   private:
    friend class StagePipeline;
    struct State;
    std::shared_ptr<State> state_;
  };

  /// `profile` supplies the merge-unit / controller timing (stored by
  /// value; on heterogeneous fabrics pass the controller-side technology).
  /// An empty `map` defaults to the uniform (modulo-compatible) placement.
  StagePipeline(std::size_t shards, PipelineSpec spec,
                const device::DeviceProfile& profile, ShardMap map = {});

  /// Multi-tenant fabric: one spec per co-resident servable slot. Each
  /// slot's stages get their own event-model units; all slots share each
  /// shard's ET banks.
  StagePipeline(std::size_t shards, std::vector<PipelineSpec> specs,
                const device::DeviceProfile& profile, ShardMap map = {});

  /// Waits out any still-running functional work of uncollected batches
  /// (e.g. handles abandoned by an unwinding caller) before the worker
  /// threads are torn down.
  ~StagePipeline();

  std::size_t shards() const noexcept { return executors_.size(); }
  const PipelineSpec& spec() const noexcept { return specs_.front(); }
  const PipelineSpec& spec(std::size_t slot) const { return specs_.at(slot); }
  std::size_t spec_count() const noexcept { return specs_.size(); }
  /// First index of `slot`'s stages in the concatenated clock/usage layout.
  std::size_t stage_offset(std::size_t slot) const {
    return offsets_.at(slot);
  }
  const ShardMap& shard_map() const noexcept { return map_; }

  /// Replaces the item placement (e.g. with a PlacementPolicy pin layer).
  /// Only legal while no batch is in flight — item routing must not change
  /// under a submitted batch's feet.
  void set_shard_map(ShardMap map);

  /// Attaches a pure-observer sink (nullptr detaches): collect() reports
  /// every (stage, shard) execution span with its unit/ET-bank wait
  /// decomposition, charge_write() reports write-back claims, and dirty
  /// flushes surface as cache events. The sink only ever receives copies
  /// of decisions already made — timing is bit-identical with or without
  /// one attached.
  void set_observer(ObserverSink* sink) noexcept { sink_ = sink; }
  ObserverSink* observer() const noexcept { return sink_; }

  /// Charges embedding-update write traffic to shard `shard`'s shared ET
  /// banks, starting no earlier than `at` (the update's arrival): row
  /// writes really occupy the in-memory arrays, so subsequent batches see
  /// the contention. Accounted into ShardUsage::write_busy.
  void charge_write(std::size_t shard, const recsys::OpCost& cost,
                    device::Ns at);

  /// Device backlog frontier: the latest time any stage unit or ET bank is
  /// already committed to. The admission-gated runtime holds ready batches
  /// until the frontier comes within its admit window of simulated now.
  device::Ns frontier() const;

  /// Graph-aware batch service estimate for slot `slot`: one query's
  /// critical path through the stage DAG under `stage_cost` (one entry per
  /// stage) plus pipelined occupancy of the bottleneck stage for the
  /// remaining `batch - 1` queries, plus the top-k merge when the graph
  /// merges. The runtime uses this to default an unset
  /// QosClassConfig::service_estimate.
  device::Ns service_estimate(std::size_t slot,
                              std::span<const device::Ns> stage_cost,
                              std::size_t k, std::size_t batch) const;

  /// Provable lower bound on any batch's dispatch-to-complete time for
  /// slot `slot` with top-k `k`: when the graph merges, collect() composes
  /// the output stage as `end = start + t + merge_cost(1, k).latency` with
  /// start >= dispatch and t >= 0 (IEEE addition of non-negatives is
  /// monotone), so the single-slice merge latency is a floor no schedule
  /// can undercut; a merge-free graph proves nothing (0). The speculative
  /// dispatch window builds its safe horizon from this.
  device::Ns service_floor(std::size_t slot, std::size_t k) const;

  /// Enqueues the batch's functional work; returns immediately. Stages
  /// chain across the shard executors with no inter-stage barrier.
  /// `servable` must outlive the handle and its spec must match slot
  /// `spec_idx`; `batch` is taken by value (move it in to skip the request
  /// copy — lvalue callers keep the pre-existing copy semantics). Urgent
  /// batches (latency-critical tenants) overtake queued normal work on the
  /// shard threads — host-side ordering only, reported hardware time is
  /// unaffected.
  BatchHandle submit(Batch batch, ServableBackend& servable,
                     std::size_t k, std::size_t spec_idx = 0,
                     bool urgent = false);

  /// Waits for the batch's functional work, then runs the deterministic
  /// event-model accounting (cache rewrite, per-stage pipeline clocks with
  /// shared ET-bank contention, top-k merge). Handles MUST be collected in
  /// submission order — the pipeline clocks advance batch by batch.
  /// `timing` holds either one CacheTiming shared by all shards or one per
  /// shard (heterogeneous fabrics: hits must credit back the *owning*
  /// shard's miss cost, not the controller profile's).
  std::vector<QueryResult> collect(BatchHandle handle,
                                   ServableBackend& servable,
                                   HotEmbeddingCache* cache,
                                   std::span<const CacheTiming> timing);

  /// collect() into caller-owned storage: `results` is resized to the batch
  /// and refilled in place, so a steady-state drain loop reuses one result
  /// buffer (and its per-query vectors) instead of allocating a fresh
  /// std::vector<QueryResult> per batch. Values are identical to collect().
  void collect_into(BatchHandle handle, ServableBackend& servable,
                    HotEmbeddingCache* cache,
                    std::span<const CacheTiming> timing,
                    std::vector<QueryResult>& results);

  /// Reference mode re-enacts the engine's pre-optimization host hot path
  /// for A/B wall-clock comparison and report-parity gating (bench_scaling):
  /// every batch allocates a fresh State (no pooling), item partitions and
  /// row-access lists materialize as fresh vectors, and the top-k merge
  /// full-sorts a fresh concatenation. Simulated-time results are
  /// bit-identical in both modes — only host-side allocation behavior
  /// differs. Only legal while no batch is in flight.
  void set_reference_mode(bool on);
  bool reference_mode() const noexcept { return reference_mode_; }

  /// Optimized-path hook: after collect() has accounted a batch, its
  /// request storage is handed to `recycler` (e.g. QosBatcher::recycle)
  /// instead of being freed, closing the allocate/free cycle between the
  /// batcher and the engine. Ignored in reference mode.
  void set_request_recycler(
      std::function<void(std::vector<Request>&&)> recycler) {
    request_recycler_ = std::move(recycler);
  }

  /// submit() + collect() in one step (no cross-batch overlap).
  std::vector<QueryResult> execute(const Batch& batch,
                                   ServableBackend& servable, std::size_t k,
                                   HotEmbeddingCache* cache,
                                   std::span<const CacheTiming> timing);

  /// Convenience for homogeneous fabrics: one CacheTiming for all shards.
  std::vector<QueryResult> execute(const Batch& batch,
                                   ServableBackend& servable, std::size_t k,
                                   HotEmbeddingCache* cache,
                                   const CacheTiming& timing) {
    return execute(batch, servable, k, cache,
                   std::span<const CacheTiming>(&timing, 1));
  }

  /// Cumulative per-shard, per-stage busy time (multi-tenant fabrics
  /// concatenate each slot's stages in slot order; see stage_offset()).
  const std::vector<ShardUsage>& usage() const noexcept { return usage_; }

  /// Resets the event clocks and usage counters (not the replicas).
  void reset_clock();

 private:
  struct ShardClocks {
    std::vector<device::Ns> stage_free;  ///< per-stage unit available
    device::Ns shared_free;              ///< shared ET banks available
  };

  /// Per-shard buffer of (query, stage) tasks deferred during submit() so
  /// each shard receives ONE composite task per batch — one queue lock and
  /// one worker wake — instead of one per query (the dominant host cost of
  /// fine-grained dispatch is the futex wake per enqueue).
  using DeferredTasks = std::vector<std::vector<std::pair<std::size_t,
                                                          std::size_t>>>;

  /// Schedules stage `stage` of query `qi` (all its graph predecessors
  /// have completed); never leaks an exception (a failure marks the batch
  /// failed and structurally completes the stage so every counter still
  /// drains and the done promise fires). With `defer` non-null the task is
  /// buffered per shard instead of enqueued (submit()'s batched initial
  /// dispatch); graph-chained scheduling from finish_stage passes null.
  void schedule_stage(const std::shared_ptr<BatchHandle::State>& st,
                      ServableBackend& servable, std::size_t qi,
                      std::size_t stage, DeferredTasks* defer = nullptr);
  void schedule_stage_unchecked(const std::shared_ptr<BatchHandle::State>& st,
                                ServableBackend& servable, std::size_t qi,
                                std::size_t stage,
                                DeferredTasks* defer = nullptr);
  /// The functional body of one (query, stage) task on `shard`'s worker
  /// thread — shared by the per-query and composite dispatch paths.
  void run_stage_task(const std::shared_ptr<BatchHandle::State>& st,
                      ServableBackend& servable, std::size_t qi,
                      std::size_t stage, std::size_t shard);
  /// Marks stage `stage` of query `qi` complete: schedules successors whose
  /// last pending edge this was, and fires the batch's done promise when
  /// the last stage of the last query finishes.
  void finish_stage(const std::shared_ptr<BatchHandle::State>& st,
                    ServableBackend& servable, std::size_t qi,
                    std::size_t stage);

  /// Applies the cache to `accesses` and rewrites the stage's ET-lookup
  /// cost; returns the adjusted stats. `table_base` namespaces the cache
  /// keys (co-resident servables must not alias each other's tables).
  /// `reduce` marks a stage declaring the in-crossbar reduction
  /// capability (effective only when the device profile opts in).
  /// `flushed` (optional) receives the dirty-row flush counts (with their
  /// tier split) charged into the stage's kEtWrite cost, for the
  /// observer's cache-flush events. Cold-tier block faults raised by the
  /// accesses are drained here and charged into kEtBlock.
  recsys::StageStats adjust_stage(const recsys::StageStats& measured,
                                  std::span<const RowAccess> accesses,
                                  HotEmbeddingCache* cache,
                                  const CacheTiming& timing,
                                  std::uint32_t table_base,
                                  bool reduce = false,
                                  HotEmbeddingCache::TierFlush* flushed =
                                      nullptr) const;

  /// Acquires a batch State: pooled (structure-preserving reset, steady
  /// state allocates nothing) or fresh in reference mode.
  std::shared_ptr<BatchHandle::State> acquire_state(std::size_t queries,
                                                    std::size_t stages,
                                                    const PipelineSpec& spec);

  /// Merge-unit cost: each contributing shard ships its top-k over the RSC
  /// bus, the controller runs the k-way tournament.
  recsys::OpCost merge_cost(std::size_t slices, std::size_t k) const;

  std::vector<PipelineSpec> specs_;   ///< one per co-resident servable slot
  std::vector<PipelineSpec::Graph> graphs_;  ///< resolved, one per slot
  std::vector<std::size_t> offsets_;  ///< per slot, into the stage layout
  std::size_t total_stages_ = 0;
  device::DeviceProfile profile_;
  ShardMap map_;
  ObserverSink* sink_ = nullptr;  ///< pure observer; never feeds back
  ExecutorPool executors_;
  std::vector<ShardClocks> clocks_;
  std::vector<ShardUsage> usage_;
  /// In-flight batch scratch, tracked so the destructor can drain tasks
  /// that would otherwise chain onto executors mid-teardown.
  std::mutex pending_mu_;
  std::vector<std::weak_ptr<BatchHandle::State>> pending_;
  /// Submission-order enforcement for collect() (the clocks advance batch
  /// by batch, so out-of-order collection would corrupt them silently).
  std::uint64_t next_submit_seq_ = 0;
  std::uint64_t next_collect_seq_ = 0;
  /// Pre-optimization host path for A/B comparison (set_reference_mode).
  bool reference_mode_ = false;
  /// Collected States parked for reuse (never in reference mode). Their
  /// pending_ entries are erased at collect, so pooling cannot grow the
  /// weak-pointer list.
  std::vector<std::shared_ptr<BatchHandle::State>> state_pool_;
  /// Optimized-path request-storage recycler (set_request_recycler).
  std::function<void(std::vector<Request>&&)> request_recycler_;
  /// Running maximum over every committed clock value — all clock updates
  /// are monotone non-decreasing, so this equals the full scan frontier()
  /// used to compute, without the O(shards * stages) walk per admission
  /// probe. Reset with the clocks.
  device::Ns frontier_{0.0};
  /// collect()-scope scratch (single-threaded there by the submission-order
  /// contract): per-stage completion times, row-access lists, and the top-k
  /// merge buffer, reused across queries and batches.
  std::vector<device::Ns> stage_end_scratch_;
  std::vector<RowAccess> access_scratch_;
  std::vector<recsys::ScoredItem> topk_scratch_;
  /// adjust_stage() parallel-group tally {group id, accesses, hits} —
  /// groups per stage are few (e.g. DLRM impressions in flight), so a flat
  /// linear-scan vector beats the former per-call std::map.
  mutable std::vector<std::array<std::uint64_t, 3>> group_scratch_;
  /// adjust_stage() pooled-workload reduction tally: one cell per
  /// (pooling scope, table, CMA array) holding the scope's missed-row
  /// count in that array — only same-array rows of one scope can merge.
  struct ReduceCell {
    std::uint64_t scope;
    std::uint32_t table;
    std::uint32_t array;
    std::uint64_t misses;
  };
  mutable std::vector<ReduceCell> reduce_scratch_;
  /// collect()-scope scratch for the fed-item concatenation of a
  /// multi-source consume_items stage (single-threaded there).
  std::vector<std::size_t> fed_scratch_;
  /// submit()-scope buffer for the batched initial dispatch (submission is
  /// single-threaded by the collect-order contract).
  DeferredTasks dispatch_scratch_;
};

}  // namespace imars::serve
