// Backend-agnostic staged-pipeline serving engine.
//
// PR 1's ShardRouter hard-coded one workload: a two-unit filter/rank
// pipeline over FilterRankBackend replicas with `item % N` placement. This
// engine generalizes all three axes:
//
//   * the *stage graph* is a descriptor (PipelineSpec): a linear sequence
//     of stages, each either replicated (the whole query runs on its home
//     shard) or sharded (the query's work items are partitioned across
//     shards and the partial results merged). Each stage owns one event-
//     model unit per shard; all stages of a shard contend for its shared
//     ET banks — the same contention rule as core/throughput.hpp.
//   * the *workload* is an abstract ServableBackend: the two-stage
//     YouTubeDNN flow (serve/shard_router.hpp) and the single-stage
//     DLRM/Criteo CTR flow (serve/servable_ctr.hpp) both serve through the
//     identical batcher/cache/engine/report path.
//   * *placement* routes through a ShardMap (capability-weighted disjoint
//     cover) instead of a modulo, so heterogeneous fabrics get item slices
//     proportional to measured stage throughput.
//
// Execution is split into submit() and collect(). submit() enqueues the
// batch's functional work onto the per-shard worker threads and returns
// immediately: a query's stages chain — when its stage-s task finishes it
// schedules the stage-s+1 tasks itself, with no batch-wide barrier — so a
// later batch's early stages overlap an earlier batch's late stages on the
// host threads (the hardware event model already pipelines; PR 1 only
// phased the host loop). collect() then composes hardware time
// deterministically in submission order: cache rewrite of ET costs first,
// then the per-shard pipeline clocks. Because every timing decision happens
// in collect(), overlapped and phased execution produce bit-identical
// reports.
//
// Multi-tenant fabrics (PR 3): one pipeline can host SEVERAL co-resident
// servables — e.g. an interactive filter/rank tenant next to a bulk CTR
// tenant — by constructing it with one PipelineSpec per servable and
// passing the servable's slot to submit(). Each servable's stages own
// their own per-shard event-model units (the stage clocks concatenate in
// slot order), but ALL slots of a shard contend for its single shared
// ET-bank clock: co-resident tenants really fight over the in-memory
// arrays, which is what the QoS batcher arbitrates. Hot-cache bookkeeping
// namespaces RowAccess table keys per slot so tenants never alias rows.
#pragma once

#include <atomic>
#include <cstddef>
#include <future>
#include <memory>
#include <mutex>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "core/perf_model.hpp"
#include "device/profile.hpp"
#include "recsys/types.hpp"
#include "serve/batcher.hpp"
#include "serve/executor.hpp"
#include "serve/hot_cache.hpp"
#include "serve/serve_stats.hpp"
#include "serve/shard_map.hpp"

namespace imars::serve {

/// Device-anchored costs the cache substitutes per ET row access.
struct CacheTiming {
  recsys::OpCost hit;          ///< hot-row buffer read
  recsys::OpCost row_miss;     ///< RAM-mode row fetch + RSC transfer
  recsys::OpCost pooled_miss;  ///< per-row in-array accumulate increment
  /// The first row of a table's pooled chain costs only the read (no
  /// write-back + add yet; PerfModel::et_lookup charges read*L +
  /// (write+add)*(L-1)).
  recsys::OpCost pooled_first_miss;

  static CacheTiming from_model(const core::PerfModel& model) {
    const auto& read = model.profile().cma_read;
    return CacheTiming{model.cached_row(), model.row_fetch(),
                       model.pooled_row(),
                       recsys::OpCost{read.latency, read.energy}};
  }
};

/// One ET row touched by a query (cache bookkeeping granularity).
struct RowAccess {
  std::uint32_t table = 0;
  std::uint32_t row = 0;
  bool pooled = false;  ///< pooled lookup (vs RAM-mode row fetch)
  bool first_in_table = false;  ///< first row of its table's pooled chain
  /// The row was read by one of several banks operating in parallel (the
  /// stage latency holds the max over banks, not the sum — e.g. DLRM's 26
  /// one-hot lookups). A hit then credits energy per row, but latency only
  /// when EVERY access of the row's `parallel_group` hits (the bank max
  /// vanishes only once no bank reads an array).
  bool parallel_bank = false;
  /// Groups parallel accesses that share one bank-max term (e.g. one
  /// scored impression); meaningful only when `parallel_bank` is set.
  std::uint32_t parallel_group = 0;
};

/// How one pipeline stage spreads over the shard fabric.
enum class StageKind : std::uint8_t {
  kReplicated,  ///< whole query on its home shard (any replica can serve)
  kSharded,     ///< work items partitioned across shards via the ShardMap
};

struct StageSpec {
  std::string name;
  StageKind kind = StageKind::kReplicated;
};

/// Linear stage graph of a workload. A replicated stage (re)defines the
/// query's work-item set; a sharded stage consumes it.
struct PipelineSpec {
  std::vector<StageSpec> stages;
  /// Last sharded stage's partials ship to the merge unit for a k-way
  /// tournament (the filter/rank flow); single-shot workloads (CTR) skip it.
  bool merge_topk = false;

  std::size_t stage_count() const noexcept { return stages.size(); }
};

/// A workload adapter served by the engine. Implementations own one backend
/// replica per shard; the engine guarantees each replica is only ever
/// touched from its shard's worker thread. All methods must be safe to call
/// concurrently for *distinct* shards.
class ServableBackend {
 public:
  virtual ~ServableBackend() = default;

  virtual std::string_view name() const = 0;
  virtual const PipelineSpec& spec() const = 0;
  virtual std::size_t shards() const = 0;

  /// Work-item keys entering the pipeline when the FIRST stage is sharded
  /// (derived from the request alone; e.g. the impression itself for CTR).
  /// Ignored when the first stage is replicated.
  virtual std::vector<std::size_t> initial_items(const Request& req) const {
    (void)req;
    return {};
  }

  /// Runs replicated stage `stage` of `req` on shard `shard`'s replica and
  /// returns the work-item keys the following sharded stage partitions
  /// (empty when no sharded stage follows). Appends measured hardware costs
  /// to `stats`.
  virtual std::vector<std::size_t> run_replicated(
      std::size_t stage, std::size_t shard, const Request& req,
      recsys::StageStats* stats) = 0;

  /// Runs sharded stage `stage` over `slice` on shard `shard`'s replica and
  /// returns the slice's scored partial results (best first, at most `k` —
  /// the merge unit builds the global top-k from the per-shard lists).
  virtual std::vector<recsys::ScoredItem> run_sharded(
      std::size_t stage, std::size_t shard, const Request& req,
      std::span<const std::size_t> slice, std::size_t k,
      recsys::StageStats* stats) = 0;

  /// ET rows stage `stage` of `req` touches (hot-cache bookkeeping).
  /// `slice` is the shard's slice for sharded stages, empty for replicated
  /// ones. Called from collect() — single-threaded, deterministic order.
  virtual std::vector<RowAccess> accesses(
      std::size_t stage, const Request& req,
      std::span<const std::size_t> slice) const = 0;
};

/// The generic engine: per-shard worker threads + per-stage event clocks.
class StagePipeline {
 public:
  /// Per-query outcome of a batch execution. Carries the originating
  /// request and batch coordinates so callers need not retain their own
  /// copy of the submitted batch.
  struct QueryResult {
    Request request;             ///< the request this result answers
    std::size_t batch_id = 0;
    std::size_t batch_size = 0;
    device::Ns dispatch;         ///< batch close/dispatch time
    std::vector<recsys::ScoredItem> topk;  ///< merged, best first, <= k
    std::size_t work_items = 0;  ///< items entering the sharded stage(s)
    std::size_t home_shard = 0;  ///< shard that ran the replicated stage(s)
    device::Ns complete;         ///< simulated completion (merge done)
    std::vector<device::Ns> stage_latency;        ///< per stage
    std::vector<recsys::StageStats> stage_stats;  ///< cache-adjusted
  };

  /// An in-flight batch: functional work enqueued, accounting pending.
  class BatchHandle {
   public:
    BatchHandle() = default;
    BatchHandle(BatchHandle&&) = default;
    BatchHandle& operator=(BatchHandle&&) = default;
    bool valid() const noexcept { return state_ != nullptr; }

   private:
    friend class StagePipeline;
    struct State;
    std::shared_ptr<State> state_;
  };

  /// `profile` supplies the merge-unit / controller timing (stored by
  /// value; on heterogeneous fabrics pass the controller-side technology).
  /// An empty `map` defaults to the uniform (modulo-compatible) placement.
  StagePipeline(std::size_t shards, PipelineSpec spec,
                const device::DeviceProfile& profile, ShardMap map = {});

  /// Multi-tenant fabric: one spec per co-resident servable slot. Each
  /// slot's stages get their own event-model units; all slots share each
  /// shard's ET banks.
  StagePipeline(std::size_t shards, std::vector<PipelineSpec> specs,
                const device::DeviceProfile& profile, ShardMap map = {});

  /// Waits out any still-running functional work of uncollected batches
  /// (e.g. handles abandoned by an unwinding caller) before the worker
  /// threads are torn down.
  ~StagePipeline();

  std::size_t shards() const noexcept { return executors_.size(); }
  const PipelineSpec& spec() const noexcept { return specs_.front(); }
  const PipelineSpec& spec(std::size_t slot) const { return specs_.at(slot); }
  std::size_t spec_count() const noexcept { return specs_.size(); }
  /// First index of `slot`'s stages in the concatenated clock/usage layout.
  std::size_t stage_offset(std::size_t slot) const {
    return offsets_.at(slot);
  }
  const ShardMap& shard_map() const noexcept { return map_; }

  /// Device backlog frontier: the latest time any stage unit or ET bank is
  /// already committed to. The admission-gated runtime holds ready batches
  /// until the frontier comes within its admit window of simulated now.
  device::Ns frontier() const;

  /// Enqueues the batch's functional work; returns immediately. Stages
  /// chain across the shard executors with no inter-stage barrier.
  /// `servable` must outlive the handle and its spec must match slot
  /// `spec_idx`; `batch` is copied. Urgent batches (latency-critical
  /// tenants) overtake queued normal work on the shard threads — host-side
  /// ordering only, reported hardware time is unaffected.
  BatchHandle submit(const Batch& batch, ServableBackend& servable,
                     std::size_t k, std::size_t spec_idx = 0,
                     bool urgent = false);

  /// Waits for the batch's functional work, then runs the deterministic
  /// event-model accounting (cache rewrite, per-stage pipeline clocks with
  /// shared ET-bank contention, top-k merge). Handles MUST be collected in
  /// submission order — the pipeline clocks advance batch by batch.
  /// `timing` holds either one CacheTiming shared by all shards or one per
  /// shard (heterogeneous fabrics: hits must credit back the *owning*
  /// shard's miss cost, not the controller profile's).
  std::vector<QueryResult> collect(BatchHandle handle,
                                   ServableBackend& servable,
                                   HotEmbeddingCache* cache,
                                   std::span<const CacheTiming> timing);

  /// submit() + collect() in one step (no cross-batch overlap).
  std::vector<QueryResult> execute(const Batch& batch,
                                   ServableBackend& servable, std::size_t k,
                                   HotEmbeddingCache* cache,
                                   std::span<const CacheTiming> timing);

  /// Convenience for homogeneous fabrics: one CacheTiming for all shards.
  std::vector<QueryResult> execute(const Batch& batch,
                                   ServableBackend& servable, std::size_t k,
                                   HotEmbeddingCache* cache,
                                   const CacheTiming& timing) {
    return execute(batch, servable, k, cache,
                   std::span<const CacheTiming>(&timing, 1));
  }

  /// Cumulative per-shard, per-stage busy time (multi-tenant fabrics
  /// concatenate each slot's stages in slot order; see stage_offset()).
  const std::vector<ShardUsage>& usage() const noexcept { return usage_; }

  /// Resets the event clocks and usage counters (not the replicas).
  void reset_clock();

 private:
  struct ShardClocks {
    std::vector<device::Ns> stage_free;  ///< per-stage unit available
    device::Ns shared_free;              ///< shared ET banks available
  };

  /// Schedules stage `stage` of query `qi`; never leaks an exception (a
  /// failure terminates the query so the batch's done promise still
  /// fires).
  void advance(const std::shared_ptr<BatchHandle::State>& st,
               ServableBackend& servable, std::size_t qi, std::size_t stage);
  void advance_unchecked(const std::shared_ptr<BatchHandle::State>& st,
                         ServableBackend& servable, std::size_t qi,
                         std::size_t stage);

  /// Applies the cache to `accesses` and rewrites the stage's ET-lookup
  /// cost; returns the adjusted stats. `table_base` namespaces the cache
  /// keys (co-resident servables must not alias each other's tables).
  recsys::StageStats adjust_stage(const recsys::StageStats& measured,
                                  std::span<const RowAccess> accesses,
                                  HotEmbeddingCache* cache,
                                  const CacheTiming& timing,
                                  std::uint32_t table_base) const;

  /// Merge-unit cost: each contributing shard ships its top-k over the RSC
  /// bus, the controller runs the k-way tournament.
  recsys::OpCost merge_cost(std::size_t slices, std::size_t k) const;

  std::vector<PipelineSpec> specs_;   ///< one per co-resident servable slot
  std::vector<std::size_t> offsets_;  ///< per slot, into the stage layout
  std::size_t total_stages_ = 0;
  device::DeviceProfile profile_;
  ShardMap map_;
  ExecutorPool executors_;
  std::vector<ShardClocks> clocks_;
  std::vector<ShardUsage> usage_;
  /// In-flight batch scratch, tracked so the destructor can drain tasks
  /// that would otherwise chain onto executors mid-teardown.
  std::mutex pending_mu_;
  std::vector<std::weak_ptr<BatchHandle::State>> pending_;
  /// Submission-order enforcement for collect() (the clocks advance batch
  /// by batch, so out-of-order collection would corrupt them silently).
  std::uint64_t next_submit_seq_ = 0;
  std::uint64_t next_collect_seq_ = 0;
};

}  // namespace imars::serve
